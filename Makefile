GO ?= go

.PHONY: all build vet test race check figures clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The observability layer is exercised from many rank goroutines; keep it
# (and everything else) race-clean.
race:
	$(GO) test -race ./...

check: build vet race

figures:
	$(GO) run ./cmd/figures

clean:
	$(GO) clean ./...
