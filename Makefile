GO ?= go

.PHONY: all build vet test race check figures report clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The observability layer is exercised from many rank goroutines; keep it
# (and everything else) race-clean.
race:
	$(GO) test -race ./...

check: build vet race

figures:
	$(GO) run ./cmd/figures

# Run a failure-injected Heatdis cell with event streaming and print its
# recovery-timeline report.
report:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/heatdis -ranks 8 -data-mb 64 -iters 30 -interval 5 \
		-fail -stream -events "$$tmp/events.jsonl" && \
	$(GO) run ./cmd/obsreport "$$tmp/events.jsonl"

clean:
	$(GO) clean ./...
