GO ?= go

.PHONY: all build lint vet test race bench perf check chaos sweep figures report clean

all: check

build:
	$(GO) build ./...

# gofmt + go vet + staticcheck (skipped gracefully when not installed);
# the same section CI's lint job runs.
lint:
	sh scripts/check.sh lint

vet: lint

test:
	$(GO) test ./...

# The observability layer is exercised from many rank goroutines; keep it
# (and everything else) race-clean.
race:
	$(GO) test -race ./...

# Single-iteration sweep of the observability-overhead and flush-scheduler
# benchmarks (virtual-time metrics; host ns/op is incidental), plus the
# simulator-throughput benchmark (host-time metrics; see PERFORMANCE.md).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkHeatdisObs|BenchmarkHeatdisFlushSched' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'BenchmarkSimThroughput' -benchtime 1s ./internal/mpi/

# Simulator-throughput regression gate: fails if BenchmarkSimThroughput
# falls more than 20% below the checked-in, machine-speed-normalized
# baseline, or if the tree engine's speedup over the flat engine drops
# below 5x at 256 ranks.
perf:
	sh scripts/bench_gate.sh

# Full verification, shared with CI. Sections and the CHAOS_SEEDS override
# are documented in scripts/check.sh.
check:
	sh scripts/check.sh

# Short adversarial campaign under the race detector: fixed seeds sweeping
# the full mode × app matrix (kills inside checkpoint regions and flush
# windows, nested failures, spare-pool exhaustion with and without
# shrinking, multi-wave exhaustion storms). Fails on any hang or
# cross-layer invariant violation; replay a finding with
# `go run ./cmd/chaos -seed <k>`. CHAOS_SCALE widens the storm-wave
# cells' world (e.g. `make chaos CHAOS_SCALE=64` for the 64-rank storm).
CHAOS_SCALE ?= 32
chaos:
	$(GO) run -race ./cmd/chaos -seeds 36 -storm-ranks $(CHAOS_SCALE)

# Cross-run sweep analytics: persist a 12-seed campaign's event logs
# (plus manifest.json) and aggregate them into the per-(mode × app)
# phase-duration table, then render one seed's recovery Gantt.
sweep:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/chaos -seeds 12 -out "$$tmp/runs" && \
	$(GO) run ./cmd/obsreport -sweep "$$tmp/runs" && \
	$(GO) run ./cmd/obsreport -timeline "$$tmp/runs/seed-7.jsonl"

figures:
	$(GO) run ./cmd/figures

# Run a failure-injected Heatdis cell with event streaming and print its
# recovery-timeline report.
report:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/heatdis -ranks 8 -data-mb 64 -iters 30 -interval 5 \
		-fail -stream -events "$$tmp/events.jsonl" && \
	$(GO) run ./cmd/obsreport "$$tmp/events.jsonl"

clean:
	$(GO) clean ./...
