// Ablation benchmarks for the simulation's design choices (DESIGN.md §5):
// each isolates one mechanism the paper's analysis depends on and reports
// the effect of removing or sweeping it.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/apps/heatdis"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

// BenchmarkAblationCongestion toggles the MPI congestion multiplier
// applied while asynchronous VeloC flushes are in flight — the mechanism
// behind the paper's "application MPI calls are delayed" observation.
func BenchmarkAblationCongestion(b *testing.B) {
	for _, factor := range []float64{1.0, 2.5, 5.0} {
		b.Run(fmt.Sprintf("factor=%.1f", factor), func(b *testing.B) {
			m := sim.DefaultMachine()
			m.CongestionFactor = factor
			// MiniMD's communication-bound section makes the congestion
			// visible, as in the paper's Figure 6 discussion.
			opts := harness.MiniMDOptions{Machine: m, Steps: 60, Interval: 10, Seed: 43}
			var pt harness.MiniMDPoint
			for i := 0; i < b.N; i++ {
				pt = harness.MiniMDCell(core.StrategyFenixKRVeloC, 32, opts)
			}
			b.ReportMetric(pt.Overhead.Get(trace.Communicator), "comm_s")
			b.ReportMetric(pt.OverheadWall, "overhead_s")
		})
	}
}

// BenchmarkAblationCheckpointInterval sweeps checkpoint cadence: frequent
// checkpoints raise overhead but cut the recompute lost to a failure (the
// classic Young/Daly trade-off the control-flow layer manages).
func BenchmarkAblationCheckpointInterval(b *testing.B) {
	for _, interval := range []int{5, 10, 20, 30} {
		b.Run(fmt.Sprintf("interval=%d", interval), func(b *testing.B) {
			opts := harness.HeatdisOptions{Iterations: 60, Interval: interval, Seed: 42, ActualRows: 8, ActualCols: 16}
			var pt harness.HeatdisPoint
			for i := 0; i < b.N; i++ {
				pt = harness.HeatdisCell(core.StrategyFenixKRVeloC, 16, 512*harness.MB, opts)
			}
			b.ReportMetric(pt.OverheadWall, "overhead_s")
			b.ReportMetric(pt.FailureTimes.Get(trace.Recompute), "recompute_s")
			b.ReportMetric(pt.FailureCost(), "failcost_s")
		})
	}
}

// BenchmarkAblationPFSBandwidth sweeps the parallel file system's
// aggregate bandwidth: the management-node bottleneck that makes IMR
// attractive at small sizes and bounds VeloC's congestion at large ones.
func BenchmarkAblationPFSBandwidth(b *testing.B) {
	for _, gbps := range []float64{1.5, 6, 24} {
		b.Run(fmt.Sprintf("aggregate=%.1fGBps", gbps), func(b *testing.B) {
			m := sim.DefaultMachine()
			m.PFSAggregateBandwidth = gbps * 1e9
			opts := harness.HeatdisOptions{Machine: m, Iterations: 60, Interval: 10, Seed: 42, ActualRows: 8, ActualCols: 16}
			var veloc, imr harness.HeatdisPoint
			for i := 0; i < b.N; i++ {
				veloc = harness.HeatdisCell(core.StrategyFenixKRVeloC, 32, 512*harness.MB, opts)
				imr = harness.HeatdisCell(core.StrategyFenixIMR, 32, 512*harness.MB, opts)
			}
			b.ReportMetric(veloc.FailureCost(), "veloc_failcost_s")
			b.ReportMetric(imr.FailureCost(), "imr_failcost_s")
			b.ReportMetric(veloc.OverheadWall, "veloc_overhead_s")
			b.ReportMetric(imr.OverheadWall, "imr_overhead_s")
		})
	}
}

// BenchmarkAblationSparePool sweeps the number of spare ranks Fenix holds
// out: the cost of insurance (idle nodes) against multi-failure coverage.
func BenchmarkAblationSparePool(b *testing.B) {
	for _, spares := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("spares=%d", spares), func(b *testing.B) {
			opts := harness.HeatdisOptions{Iterations: 60, Interval: 10, Spares: spares, Seed: 42, ActualRows: 8, ActualCols: 16}
			var pt harness.HeatdisPoint
			for i := 0; i < b.N; i++ {
				pt = harness.HeatdisCell(core.StrategyFenixKRVeloC, 32, 256*harness.MB, opts)
			}
			b.ReportMetric(pt.OverheadWall, "overhead_s")
			b.ReportMetric(pt.FailureCost(), "failcost_s")
		})
	}
}

// BenchmarkAblationRelaunchCost sweeps the per-node job launch cost: the
// knob that controls how much Fenix's online recovery saves over
// fail-restart (the "Other" category gap).
func BenchmarkAblationRelaunchCost(b *testing.B) {
	for _, perNode := range []float64{0.01, 0.05, 0.2} {
		b.Run(fmt.Sprintf("launch=%.2fs_per_node", perNode), func(b *testing.B) {
			m := sim.DefaultMachine()
			m.LaunchPerNode = perNode
			opts := harness.HeatdisOptions{Machine: m, Iterations: 60, Interval: 10, Seed: 42, ActualRows: 8, ActualCols: 16}
			var fenixPt, relaunchPt harness.HeatdisPoint
			for i := 0; i < b.N; i++ {
				fenixPt = harness.HeatdisCell(core.StrategyFenixKRVeloC, 32, 256*harness.MB, opts)
				relaunchPt = harness.HeatdisCell(core.StrategyKRVeloC, 32, 256*harness.MB, opts)
			}
			b.ReportMetric(fenixPt.FailureCost(), "fenix_failcost_s")
			b.ReportMetric(relaunchPt.FailureCost(), "relaunch_failcost_s")
			if fenixPt.FailureCost() > 0 {
				b.ReportMetric(relaunchPt.FailureCost()/fenixPt.FailureCost(), "fenix_advantage_x")
			}
		})
	}
}

// BenchmarkAblationDecomposition compares the 1-D slab and 2-D block
// decompositions of Heatdis at the same per-rank data size: slabs exchange
// two full-width halos, blocks exchange four smaller edges.
func BenchmarkAblationDecomposition(b *testing.B) {
	const ranks = 16
	const dataMB = 512
	run1D := func() *core.Result {
		sink := heatdis.NewSink()
		cfg := heatdis.Config{BytesPerRank: dataMB * harness.MB, Iterations: 60, CheckpointInterval: 10, ActualRows: 8, ActualCols: 16}
		return core.Run(mpi.JobConfig{Ranks: ranks, Seed: 3},
			core.Config{Strategy: core.StrategyFenixKRVeloC, Spares: 0, CheckpointInterval: 10, CheckpointName: "d1"},
			heatdis.App(cfg, sink))
	}
	run2D := func() *core.Result {
		sink := heatdis.NewSink()
		cfg := heatdis.Config2D{BytesPerRank: dataMB * harness.MB, Iterations: 60, CheckpointInterval: 10}
		return core.Run(mpi.JobConfig{Ranks: ranks, Seed: 3},
			core.Config{Strategy: core.StrategyFenixKRVeloC, Spares: 0, CheckpointInterval: 10, CheckpointName: "d2"},
			heatdis.App2D(cfg, sink))
	}
	var r1, r2 *core.Result
	for i := 0; i < b.N; i++ {
		r1 = run1D()
		r2 = run2D()
	}
	b.ReportMetric(r1.WallTime, "slab_wall_s")
	b.ReportMetric(r2.WallTime, "block_wall_s")
	b.ReportMetric(r1.MeanAppTimes().Get(trace.AppMPI), "slab_mpi_s")
	b.ReportMetric(r2.MeanAppTimes().Get(trace.AppMPI), "block_mpi_s")
}
