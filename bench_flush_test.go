// Flush-scheduler benchmarks: the same short-checkpoint-interval,
// failure-injected Heatdis cell with classic unmanaged flushing versus the
// windowed, coalescing flush scheduler. Checkpointing every iteration with
// four ranks per node oversubscribes the PFS: the flush windows outlive
// the interval, so unscheduled runs accumulate a growing flush backlog and
// the post-failure restore stalls on a PFS copy still deep in it; the
// scheduler bounds in-flight flushes and cancels superseded queued
// versions before their bytes reach the PFS.
//
// The headline metric is flushwait_s: cumulative MPI-visible flush wait
// (veloc_flush_wait_seconds) — congestion inflation of communication plus
// restore stalls on not-yet-flushed checkpoints after the mid-run failure.
//
// Run with: go test -bench BenchmarkHeatdisFlushSched -benchtime 1x .
package repro_test

import (
	"testing"

	"repro/internal/apps/heatdis"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/sim"
)

// benchFlushCell runs one flush-stressed Heatdis job: 16 ranks + 1 spare
// packed four per node, 64 MB/rank, checkpoints every iteration, one
// failure at iteration 28 forcing a restore while flushes are backlogged.
// With ~16 concurrent writers the PFS aggregate share drops below what the
// per-iteration checkpoint rate produces, so the unscheduled backlog grows
// for the whole run and the replacement rank's restore stalls on a flush
// still deep in the queue.
func benchFlushCell(b *testing.B, policy cluster.FlushPolicy) (*core.Result, *obs.Recorder) {
	b.Helper()
	const (
		ranks    = 16
		iters    = 30
		interval = 1
	)
	cfg := heatdis.Config{
		BytesPerRank:       64 << 20,
		Iterations:         iters,
		CheckpointInterval: interval,
	}
	cc := core.Config{
		Strategy:           core.StrategyFenixKRVeloC,
		Spares:             1,
		CheckpointInterval: interval,
		CheckpointName:     "heatdis",
		Failures:           []*core.FailurePlan{{Slot: 1, Iteration: 28}},
	}
	rec := obs.New()
	res := core.Run(mpi.JobConfig{
		Ranks: ranks + 1, RanksPerNode: 4, Machine: sim.DefaultMachine(), Seed: 42,
		Obs: rec, Flush: policy,
	}, cc, heatdis.App(cfg, heatdis.NewSink()))
	if res.Failed || res.Err() != nil {
		b.Fatalf("heatdis flush cell failed: %v", res.Err())
	}
	return res, rec
}

func benchFlushSched(b *testing.B, policy cluster.FlushPolicy) {
	var res *core.Result
	var rec *obs.Recorder
	for i := 0; i < b.N; i++ {
		res, rec = benchFlushCell(b, policy)
	}
	reg := rec.Registry()
	b.ReportMetric(res.WallTime, "virtwall_s")
	b.ReportMetric(reg.CounterValue(obs.MFlushWaitSeconds), "flushwait_s")
	b.ReportMetric(reg.CounterValue(obs.MFlushCoalesced), "coalesced/op")
}

// BenchmarkHeatdisFlushSched compares unscheduled flushing against
// scheduler windows on the same cell. Timing is real host ns/op; the
// decision metrics are the virtual-time flushwait_s and coalesced/op.
func BenchmarkHeatdisFlushSched(b *testing.B) {
	b.Run("unscheduled", func(b *testing.B) {
		benchFlushSched(b, cluster.FlushPolicy{})
	})
	b.Run("window2", func(b *testing.B) {
		benchFlushSched(b, cluster.FlushPolicy{Window: 2, Coalesce: true})
	})
	b.Run("window4", func(b *testing.B) {
		benchFlushSched(b, cluster.FlushPolicy{Window: 4, Coalesce: true})
	})
}

// TestFlushSchedReducesWait is the deterministic form of the benchmark's
// acceptance criterion: on the flush-stressed cell, scheduling must strictly
// reduce cumulative MPI-visible flush wait, and coalescing must cancel at
// least one superseded version.
func TestFlushSchedReducesWait(t *testing.T) {
	run := func(policy cluster.FlushPolicy) (wait, coalesced float64) {
		b := &testing.B{N: 1}
		_, rec := benchFlushCell(b, policy)
		reg := rec.Registry()
		return reg.CounterValue(obs.MFlushWaitSeconds), reg.CounterValue(obs.MFlushCoalesced)
	}
	unschedWait, unschedCoal := run(cluster.FlushPolicy{})
	schedWait, schedCoal := run(cluster.FlushPolicy{Window: 2, Coalesce: true})
	if unschedCoal != 0 {
		t.Fatalf("unscheduled run coalesced %v flushes; coalescing requires the scheduler", unschedCoal)
	}
	if schedCoal == 0 {
		t.Fatalf("scheduled run coalesced nothing; per-iteration checkpoints must supersede queued versions")
	}
	if schedWait >= unschedWait {
		t.Fatalf("scheduled flush wait %.4fs not below unscheduled %.4fs", schedWait, unschedWait)
	}
	t.Logf("flush wait: unscheduled %.4fs, window2 %.4fs (%.1f%% less), coalesced %v",
		unschedWait, schedWait, 100*(1-schedWait/unschedWait), schedCoal)
}
