// Observability-overhead benchmarks: the same failure-injected Heatdis
// cell with recording disabled (nil recorder), enabled, and enabled with
// incremental JSONL streaming. Comparing ns/op across the three isolates
// the host-side cost of the instrumentation; events/op sizes the log.
//
// Run with: go test -bench 'BenchmarkHeatdisObs' -benchtime 10x .
package repro_test

import (
	"io"
	"testing"

	"repro/internal/apps/heatdis"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/sim"
)

// benchObsCell runs one failure-injected Heatdis job (8 ranks + 1 spare,
// 64 MB/rank, 6 checkpoint generations, kill at iteration 28) with the
// given recorder and stream sink.
func benchObsCell(b *testing.B, rec *obs.Recorder, stream io.Writer) *core.Result {
	b.Helper()
	const (
		ranks    = 8
		iters    = 30
		interval = 5
	)
	cfg := heatdis.Config{
		BytesPerRank:       64 << 20,
		Iterations:         iters,
		CheckpointInterval: interval,
	}
	cc := core.Config{
		Strategy:           core.StrategyFenixKRVeloC,
		Spares:             1,
		CheckpointInterval: interval,
		CheckpointName:     "heatdis",
		Failures:           []*core.FailurePlan{{Slot: 1, Iteration: 28}},
	}
	res := core.Run(mpi.JobConfig{
		Ranks: ranks + 1, Machine: sim.DefaultMachine(), Seed: 42,
		Obs: rec, ObsStream: stream,
	}, cc, heatdis.App(cfg, heatdis.NewSink()))
	if res.Failed || res.Err() != nil {
		b.Fatalf("heatdis cell failed: %v", res.Err())
	}
	return res
}

// BenchmarkHeatdisObsOff is the baseline: the nil-recorder no-op path
// through every instrumentation site.
func BenchmarkHeatdisObsOff(b *testing.B) {
	var res *core.Result
	for i := 0; i < b.N; i++ {
		res = benchObsCell(b, nil, nil)
	}
	b.ReportMetric(res.WallTime, "virtwall_s")
}

// BenchmarkHeatdisObsOn records the full event log and metrics in memory.
func BenchmarkHeatdisObsOn(b *testing.B) {
	var rec *obs.Recorder
	var res *core.Result
	for i := 0; i < b.N; i++ {
		rec = obs.New()
		res = benchObsCell(b, rec, nil)
	}
	b.ReportMetric(res.WallTime, "virtwall_s")
	b.ReportMetric(float64(rec.Len()), "events/op")
}

// BenchmarkHeatdisObsStream additionally streams the log as JSONL through
// the reorder window while the job runs (the long-run export mode).
func BenchmarkHeatdisObsStream(b *testing.B) {
	var rec *obs.Recorder
	for i := 0; i < b.N; i++ {
		rec = obs.New()
		benchObsCell(b, rec, io.Discard)
	}
	b.ReportMetric(float64(rec.StreamWritten()), "events/op")
	if rec.StreamLate() != 0 {
		b.Fatalf("%d events overflowed the reorder window", rec.StreamLate())
	}
}
