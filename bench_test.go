// Benchmarks regenerating every table and figure of the paper's
// evaluation section. Each benchmark runs the corresponding experiment
// cell on the simulated cluster and reports the paper's quantities as
// custom metrics (virtual seconds, not host nanoseconds):
//
//	overhead_s      failure-free wall time
//	failcost_s      wall-time cost of one injected failure
//	ckptfunc_s      synchronous checkpoint-function time
//	recovery_s      data recovery time
//	recompute_s     recomputation time
//
// Run with: go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/trace"
)

// benchHeatdisOpts keeps the paper's 6-checkpoint cadence on a modest real
// grid (the simulated sizes drive all costs).
func benchHeatdisOpts() harness.HeatdisOptions {
	return harness.HeatdisOptions{Iterations: 60, Interval: 10, Seed: 42, ActualRows: 8, ActualCols: 16}
}

func reportHeatdis(b *testing.B, pt harness.HeatdisPoint) {
	b.ReportMetric(pt.OverheadWall, "overhead_s")
	b.ReportMetric(pt.FailureCost(), "failcost_s")
	b.ReportMetric(pt.Overhead.Get(trace.CheckpointFunc), "ckptfunc_s")
	b.ReportMetric(pt.FailureTimes.Get(trace.DataRecovery), "recovery_s")
	b.ReportMetric(pt.FailureTimes.Get(trace.Recompute), "recompute_s")
}

// BenchmarkFig5DataScaling regenerates the left panel of Figure 5:
// Heatdis on 64 nodes, checkpointed data size swept per rank, every
// resilience strategy, with and without an injected failure.
func BenchmarkFig5DataScaling(b *testing.B) {
	for _, mb := range []int{64, 256, 1024, 4096} {
		for _, s := range harness.Fig5Strategies {
			b.Run(fmt.Sprintf("size=%dMB/strategy=%s", mb, s), func(b *testing.B) {
				var pt harness.HeatdisPoint
				for i := 0; i < b.N; i++ {
					pt = harness.HeatdisCell(s, 64, mb*harness.MB, benchHeatdisOpts())
				}
				reportHeatdis(b, pt)
			})
		}
	}
}

// BenchmarkFig5WeakScaling regenerates the right panel of Figure 5:
// Heatdis with 1 GB of data per rank, node count swept.
func BenchmarkFig5WeakScaling(b *testing.B) {
	for _, nodes := range []int{4, 8, 16, 32, 64} {
		for _, s := range harness.Fig5Strategies {
			b.Run(fmt.Sprintf("nodes=%d/strategy=%s", nodes, s), func(b *testing.B) {
				var pt harness.HeatdisPoint
				for i := 0; i < b.N; i++ {
					pt = harness.HeatdisCell(s, nodes, harness.GB, benchHeatdisOpts())
				}
				reportHeatdis(b, pt)
			})
		}
	}
}

// BenchmarkFig6MiniMD regenerates Figure 6: MiniMD weak scaling with the
// per-section breakdown (Force Compute / Neighboring / Communicator).
func BenchmarkFig6MiniMD(b *testing.B) {
	for _, ranks := range []int{8, 16, 32, 64} {
		for _, s := range harness.Fig6Strategies {
			b.Run(fmt.Sprintf("ranks=%d/strategy=%s", ranks, s), func(b *testing.B) {
				var pt harness.MiniMDPoint
				for i := 0; i < b.N; i++ {
					pt = harness.MiniMDCell(s, ranks, harness.MiniMDOptions{Steps: 60, Interval: 10, Seed: 43})
				}
				b.ReportMetric(pt.OverheadWall, "overhead_s")
				b.ReportMetric(pt.FailureCost(), "failcost_s")
				b.ReportMetric(pt.Overhead.Get(trace.ForceCompute), "force_s")
				b.ReportMetric(pt.Overhead.Get(trace.Neighboring), "neigh_s")
				b.ReportMetric(pt.Overhead.Get(trace.Communicator), "comm_s")
				b.ReportMetric(pt.Overhead.Get(trace.CheckpointFunc), "ckptfunc_s")
			})
		}
	}
}

// BenchmarkFig7ViewCensus regenerates Figure 7: the MiniMD view census at
// each simulation size, reporting the per-class memory shares.
func BenchmarkFig7ViewCensus(b *testing.B) {
	for _, size := range []int{100, 200, 300, 400} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			var pts []harness.Fig7Point
			for i := 0; i < b.N; i++ {
				pts = harness.Fig7ViewCensus([]int{size})
			}
			p := pts[0]
			b.ReportMetric(p.CheckpointedPct, "checkpointed_pct")
			b.ReportMetric(p.AliasPct, "alias_pct")
			b.ReportMetric(p.SkippedPct, "skipped_pct")
			b.ReportMetric(float64(p.Views), "views")
		})
	}
}

// BenchmarkPartialRollback regenerates the Section VI-D2 result: the
// recovery speedup from keeping survivors' in-progress data.
func BenchmarkPartialRollback(b *testing.B) {
	opts := benchHeatdisOpts()
	var full, part harness.HeatdisPoint
	for i := 0; i < b.N; i++ {
		full = harness.HeatdisCell(core.StrategyFenixKRVeloC, 16, 256*harness.MB, opts)
		part = harness.HeatdisCell(core.StrategyPartialRollback, 16, 256*harness.MB, opts)
	}
	fr := full.FailureTimes.Get(trace.Recompute)
	pr := part.FailureTimes.Get(trace.Recompute)
	b.ReportMetric(fr, "full_recompute_s")
	b.ReportMetric(pr, "partial_recompute_s")
	if pr > 0 {
		b.ReportMetric(fr/pr, "recompute_speedup_x")
	}
	// The paper's headline: "a nearly 2x speedup of recovery".
	if part.FailureCost() > 0 {
		b.ReportMetric(full.FailureCost()/part.FailureCost(), "recovery_speedup_x")
	}
}

// BenchmarkAvailability runs the Section I motivation quantitatively:
// long jobs under Poisson failures (Blue Waters-style MTBF pressure),
// reporting each strategy's efficiency (ideal wall / actual wall).
func BenchmarkAvailability(b *testing.B) {
	for _, mtbf := range []float64{5, 15, 45} {
		for _, strat := range []core.Strategy{core.StrategyKRVeloC, core.StrategyFenixKRVeloC, core.StrategyFenixIMR} {
			b.Run(fmt.Sprintf("mtbf=%.0fs/strategy=%s", mtbf, strat), func(b *testing.B) {
				var pts []harness.AvailabilityPoint
				for i := 0; i < b.N; i++ {
					pts = harness.AvailabilityStudy([]core.Strategy{strat}, harness.AvailabilityOptions{
						Ranks: 16, Iterations: 240, Interval: 10,
						BytesPerRank: 128 * harness.MB, MTBF: mtbf, Seed: 5,
					})
				}
				p := pts[0]
				b.ReportMetric(p.Efficiency, "efficiency")
				b.ReportMetric(float64(p.Failures), "failures")
				b.ReportMetric(p.ActualWall, "wall_s")
			})
		}
	}
}

// BenchmarkComplexityCensus regenerates the Section VI-E numbers.
func BenchmarkComplexityCensus(b *testing.B) {
	var c harness.Complexity
	var err error
	for i := 0; i < b.N; i++ {
		c, err = harness.ComplexityReport()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(c.Views), "views")
	b.ReportMetric(float64(c.MPICallSites), "mpi_sites")
	b.ReportMetric(float64(c.ResilienceLines), "resilience_lines")
}
