// Command chaos sweeps the seeded adversarial fault-injection campaign
// across the resilience stack and reports invariant violations.
//
// A sweep runs N seeds, each deriving a (mode × app) cell and a kill
// schedule from the seed alone:
//
//	chaos -seeds 50
//
// Any finding is replayed exactly — same schedule, same virtual-time
// outcome, byte-identical JSON report — by re-running its seed:
//
//	chaos -seed 17 -json -
//
// The process exits nonzero if any run hangs or violates an invariant.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/chaos"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 50, "number of seeds to sweep, starting at -start")
		start    = flag.Uint64("start", 0, "first seed of the sweep")
		seed     = flag.Int64("seed", -1, "replay a single seed instead of sweeping (prints its JSON report)")
		mode     = flag.String("mode", "", "pin every run to one campaign mode (default: sweep the matrix)")
		app      = flag.String("app", "", "pin every run to one application: heatdis or minimd")
		stormN   = flag.Int("storm-ranks", 0, "storm-wave world size override (0 = the 32-rank default; 64 via make chaos CHAOS_SCALE=64)")
		execMode = flag.String("exec", "", "override the execution scheduling mode: goroutine or pool (default: each cell's own; the virtual outcome is identical either way)")
		timeout  = flag.Duration("timeout", chaos.DefaultTimeout, "per-run real-time hang watchdog")
		jsonPath = flag.String("json", "", "write the JSON campaign report to this file ('-' for stdout)")
		events   = flag.String("events", "", "with -seed: stream the run's event log as JSONL to this file (obsreport input)")
		outDir   = flag.String("out", "", "sweep only: write per-seed event logs plus a manifest.json to this directory (obsreport -sweep input)")
		verbose  = flag.Bool("v", false, "print one line per run, not just failures")
	)
	flag.Parse()
	if err := run(*seeds, *start, *seed, *mode, *app, *execMode, *stormN, *timeout, *jsonPath, *events, *outDir, *verbose); err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		os.Exit(1)
	}
}

func run(seeds int, start uint64, seed int64, mode, app, execMode string, stormRanks int, timeout time.Duration, jsonPath, events, outDir string, verbose bool) error {
	if seed >= 0 {
		if outDir != "" {
			return fmt.Errorf("-out is a sweep flag; with -seed use -events to stream the single run's log")
		}
		return replay(uint64(seed), mode, app, execMode, stormRanks, timeout, jsonPath, events)
	}
	if events != "" {
		return fmt.Errorf("-events requires -seed (stream one replayed run's log)")
	}
	camp, err := chaos.RunCampaign(chaos.CampaignConfig{
		Seeds:      chaos.SeedRange(start, seeds),
		Mode:       mode,
		App:        app,
		Exec:       execMode,
		StormRanks: stormRanks,
		Timeout:    timeout,
		EventsDir:  outDir,
		Progress: func(r *chaos.RunReport) {
			if verbose || !r.OK() {
				fmt.Println(r.Line())
			}
			for _, v := range r.Violations {
				fmt.Printf("    %s\n", v)
			}
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("chaos: %d seeds, %d passed, %d violated, %d hung\n",
		camp.Seeds, camp.Passed, camp.Violated, camp.Hangs)
	if err := writeJSON(jsonPath, camp.WriteJSON); err != nil {
		return err
	}
	if !camp.OK() {
		return fmt.Errorf("campaign found %d violated and %d hung runs (replay with -seed <k>)",
			camp.Violated, camp.Hangs)
	}
	return nil
}

// replay runs one seed and prints its full report, the debugging loop for
// a campaign finding.
func replay(seed uint64, mode, app, execMode string, stormRanks int, timeout time.Duration, jsonPath, events string) error {
	cfg, err := chaos.ConfigForSeedScaled(seed, mode, app, stormRanks)
	if err != nil {
		return err
	}
	if execMode != "" {
		cfg.Exec = execMode
	}
	var stream io.Writer
	if events != "" {
		f, err := os.Create(events)
		if err != nil {
			return err
		}
		defer f.Close()
		stream = f
	}
	rep := chaos.RunOneStreaming(cfg, chaos.NewRefCache(), timeout, stream)
	fmt.Println(rep.Line())
	for _, v := range rep.Violations {
		fmt.Printf("    %s\n", v)
	}
	if jsonPath == "" {
		jsonPath = "-"
	}
	if err := writeJSON(jsonPath, rep.WriteJSON); err != nil {
		return err
	}
	if !rep.OK() {
		return fmt.Errorf("seed %d violated %d invariants", seed, len(rep.Violations))
	}
	return nil
}

func writeJSON(path string, write func(w io.Writer) error) error {
	switch path {
	case "":
		return nil
	case "-":
		return write(os.Stdout)
	default:
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
}
