// Command figures regenerates every figure and table of the paper's
// evaluation section (Figures 5, 6, 7 and the Section VI-E complexity
// census) as tab-separated tables on stdout.
//
// Usage:
//
//	figures -fig all            # everything (several minutes)
//	figures -fig 5a             # Figure 5, data scaling panel
//	figures -fig 5b             # Figure 5, node weak-scaling panel
//	figures -fig 6              # Figure 6, MiniMD weak scaling
//	figures -fig 7              # Figure 7, view census
//	figures -fig complexity     # Section VI-E complexity census
//	figures -fig timeline       # SVG Gantt of one chaos run (-seed)
//	figures -fig recovery-cost  # localized vs global-rollback recompute
//	figures -quick              # smaller sweeps for a fast smoke run
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro/internal/chaos"
	"repro/internal/harness"
	"repro/internal/obs/analyze"
	"repro/internal/sim"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 5, 5a, 5b, 6, 7, complexity, timeline, recovery-cost, all")
	quick := flag.Bool("quick", false, "smaller sweeps (fewer sizes/node counts)")
	format := flag.String("format", "table", "output format: table or csv")
	machine := flag.String("machine", "xc40", "machine preset: xc40, commodity, exascale")
	seed := flag.Uint64("seed", 7, "with -fig timeline: chaos seed whose run is rendered")
	flag.Parse()

	mk, ok := sim.Presets[*machine]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown machine preset %q\n", *machine)
		os.Exit(2)
	}
	m := mk()
	hOpts := harness.HeatdisOptions{Machine: m}
	mOpts := harness.MiniMDOptions{Machine: m}
	csvOut := *format == "csv"

	var (
		sizesMB = []int{64, 256, 1024, 4096}
		nodes   = []int{4, 8, 16, 32, 64}
		ranks   = []int{8, 16, 32, 64}
	)
	if *quick {
		sizesMB = []int{64, 1024}
		nodes = []int{4, 16}
		ranks = []int{8, 16}
	}

	emit5 := func(title string, pts []harness.HeatdisPoint) {
		if csvOut {
			if err := harness.WriteFig5CSV(os.Stdout, pts); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		harness.RenderFig5(os.Stdout, title, pts)
		fmt.Println()
	}

	did := false
	run5a := func() {
		emit5("Figure 5 (left): Heatdis 64-node data scaling", harness.Fig5DataScaling(sizesMB, hOpts))
	}
	run5b := func() {
		emit5("Figure 5 (right): Heatdis 1GB-data node weak scaling", harness.Fig5WeakScaling(nodes, hOpts))
	}
	run6 := func() {
		pts := harness.Fig6MiniMD(ranks, mOpts)
		if csvOut {
			if err := harness.WriteFig6CSV(os.Stdout, pts); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		harness.RenderFig6(os.Stdout, pts)
	}
	run7 := func() {
		pts := harness.Fig7ViewCensus(nil)
		if csvOut {
			if err := harness.WriteFig7CSV(os.Stdout, pts); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		harness.RenderFig7(os.Stdout, pts)
	}

	switch *fig {
	case "5":
		run5a()
		run5b()
		did = true
	case "5a":
		run5a()
		did = true
	case "5b":
		run5b()
		did = true
	case "6":
		run6()
		did = true
	case "7":
		run7()
		did = true
	case "timeline":
		// SVG artifact, not a table — excluded from "all". The seed's event
		// log is replayed in-process, analyzed, and rendered as the per-rank
		// recovery Gantt; deterministic replay makes the SVG reproducible.
		cfg, err := chaos.ConfigForSeed(*seed, "", "")
		if err != nil {
			fmt.Fprintln(os.Stderr, "timeline:", err)
			os.Exit(1)
		}
		var buf bytes.Buffer
		rep := chaos.RunOneStreaming(cfg, chaos.NewRefCache(), 0, &buf)
		if rep.Hung {
			fmt.Fprintf(os.Stderr, "timeline: seed %d hung\n", *seed)
			os.Exit(1)
		}
		events, err := analyze.ReadJSONL(&buf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timeline:", err)
			os.Exit(1)
		}
		arep, err := analyze.Analyze(events)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timeline:", err)
			os.Exit(1)
		}
		tl := analyze.BuildTimeline(events, arep)
		title := fmt.Sprintf("recovery timeline: chaos seed %d (%s/%s)", *seed, cfg.Mode, cfg.App)
		fmt.Print(tl.RenderSVG(title))
		did = true
	case "sdc":
		seedsPerCell := 3
		if *quick {
			seedsPerCell = 1
		}
		pts := harness.SDCMatrix(harness.SDCOptions{SeedsPerCell: seedsPerCell})
		harness.RenderSDC(os.Stdout, pts)
		if errs := harness.CheckSDCLadder(pts); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "sdc:", e)
			}
			os.Exit(1)
		}
		did = true
	case "recovery-cost":
		rcOpts := harness.RecoveryCostOptions{Machine: m}
		if *quick {
			rcOpts.KillIters = []int{11}
		}
		pts := harness.RecoveryCostStudy(rcOpts)
		harness.RenderRecoveryCost(os.Stdout, pts)
		if errs := harness.CheckRecoveryCost(pts); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "recovery-cost:", e)
			}
			os.Exit(1)
		}
		did = true
	case "complexity":
		c, err := harness.ComplexityReport()
		if err != nil {
			fmt.Fprintln(os.Stderr, "complexity census:", err)
			os.Exit(1)
		}
		harness.RenderComplexity(os.Stdout, c)
		did = true
	case "availability":
		fmt.Println("Availability study: Heatdis under Poisson failures (efficiency = ideal/actual wall)")
		fmt.Println("mtbf_s\tstrategy\tfailures\tideal_s\tactual_s\tefficiency")
		for _, mtbf := range []float64{5, 15, 45} {
			pts := harness.AvailabilityStudy(nil, harness.AvailabilityOptions{
				Machine: m, Ranks: 16, Iterations: 240, Interval: 10,
				BytesPerRank: 128 * harness.MB, MTBF: mtbf, Seed: 5,
			})
			for _, p := range pts {
				fmt.Printf("%.0f\t%s\t%d\t%.2f\t%.2f\t%.3f\n",
					p.MTBF, p.Strategy, p.Failures, p.IdealWall, p.ActualWall, p.Efficiency)
			}
		}
		did = true
	case "all":
		run5a()
		run5b()
		run6()
		fmt.Println()
		run7()
		fmt.Println()
		if c, err := harness.ComplexityReport(); err == nil {
			harness.RenderComplexity(os.Stdout, c)
		} else {
			fmt.Fprintln(os.Stderr, "complexity census:", err)
		}
		did = true
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
}
