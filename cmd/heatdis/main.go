// Command heatdis runs the heat-distribution benchmark under a chosen
// resilience strategy on the simulated cluster, optionally injecting a
// process failure, and prints the category time breakdown.
//
// Example:
//
//	heatdis -strategy fenix-kr-veloc -ranks 16 -data-mb 256 -fail
//	heatdis -strategy partial-rollback -converge -fail
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/apps/heatdis"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/kokkos"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// writeObs exports the observability recorder's event log and metrics
// snapshot. A path of "-" selects stdout; an empty path skips that output.
func writeObs(rec *obs.Recorder, eventsPath, metricsPath string) error {
	write := func(path string, fn func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		if path == "-" {
			return fn(os.Stdout)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(eventsPath, rec.WriteJSONL); err != nil {
		return err
	}
	return write(metricsPath, rec.Registry().WritePrometheus)
}

func main() {
	strategyName := flag.String("strategy", "fenix-kr-veloc", "resilience strategy: none, veloc, kr-veloc, fenix-veloc, fenix-kr-veloc, fenix-imr, partial-rollback")
	ranks := flag.Int("ranks", 16, "application ranks (one per node)")
	dataMB := flag.Int("data-mb", 256, "application data per rank in MB")
	iters := flag.Int("iters", 60, "iterations (fixed variant)")
	interval := flag.Int("interval", 10, "checkpoint interval in iterations")
	spares := flag.Int("spares", 2, "spare ranks (Fenix strategies)")
	fail := flag.Bool("fail", false, "inject a failure ~95% between the last two checkpoints")
	failRank := flag.Int("fail-rank", 1, "logical rank to kill")
	converge := flag.Bool("converge", false, "run the convergence variant")
	epsilon := flag.Float64("epsilon", 0.05, "convergence threshold")
	decomp := flag.String("decomp", "1d", "domain decomposition: 1d (row slabs) or 2d (Cartesian blocks)")
	machinePreset := flag.String("machine", "xc40", "machine preset: xc40, commodity, exascale")
	seed := flag.Uint64("seed", 42, "jitter seed")
	eventsPath := flag.String("events", "", `write the structured resilience event log as JSONL to this path ("-" for stdout)`)
	metricsPath := flag.String("metrics", "", `write the metrics snapshot in Prometheus text format to this path ("-" for stdout)`)
	streamEvents := flag.Bool("stream", false, "stream the -events JSONL incrementally during the run instead of writing it at the end")
	obsWindow := flag.Float64("obs-window", 0, "reorder window in virtual seconds for -stream (0 selects the default)")
	ringCap := flag.Int("ring", 0, "bound the in-memory event log to the newest N events (0 = unbounded; combine with -stream to keep the full export)")
	flushWindow := flag.Int("flush-window", 0, "bound in-flight checkpoint flushes per node to this many (0 = unscheduled: every flush starts immediately)")
	flushCoalesce := flag.Bool("flush-coalesce", true, "with -flush-window, cancel queued flushes superseded by a newer version of the same checkpoint")
	sdcPolicy := flag.String("sdc", "", "SDC detection policy for resilient regions: none, checksum, replay, vote (also enables checkpoint-blob verification)")
	flag.Parse()

	strategy, err := core.ParseStrategy(*strategyName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mk, ok := sim.Presets[*machinePreset]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown machine preset %q\n", *machinePreset)
		os.Exit(2)
	}
	machine := mk()
	if !strategy.UsesFenix() {
		*spares = 0
	}
	// When "-" routes the event log (or metrics) to stdout, the human
	// summary moves to stderr so the machine stream stays parseable:
	// `heatdis -fail -events - | obsreport` must deliver pure JSONL.
	out := io.Writer(os.Stdout)
	if *eventsPath == "-" || *metricsPath == "-" {
		out = os.Stderr
	}

	cfg := heatdis.Config{
		BytesPerRank:       *dataMB << 20,
		Iterations:         *iters,
		CheckpointInterval: *interval,
		Convergence:        *converge || strategy.PartialRollback(),
		Epsilon:            *epsilon,
		MaxIterations:      20 * *iters,
	}
	cc := core.Config{
		Strategy:           strategy,
		Spares:             *spares,
		CheckpointInterval: *interval,
		CheckpointName:     "heatdis",
	}
	if *sdcPolicy != "" {
		pol, err := kokkos.ParseSDCPolicy(*sdcPolicy)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		// Replay-validator bounds: temperatures live in [0, sourceTemp].
		cc.SDC = core.SDCConfig{Policy: pol, MinVal: 0, MaxVal: 100}
	}
	if *fail {
		it := (*iters / *interval)**interval - 1 - *interval + int(0.95*float64(*interval))
		cc.Failures = []*core.FailurePlan{{Slot: *failRank, Iteration: it}}
		fmt.Fprintf(out, "injecting failure: logical rank %d exits before iteration %d\n", *failRank, it)
	}

	var app core.App
	sink := heatdis.NewSink()
	switch *decomp {
	case "1d":
		app = heatdis.App(cfg, sink)
	case "2d":
		if *converge {
			fmt.Fprintln(os.Stderr, "the 2d decomposition supports the fixed-iteration variant only")
			os.Exit(2)
		}
		app = heatdis.App2D(heatdis.Config2D{
			BytesPerRank:       cfg.BytesPerRank,
			Iterations:         cfg.Iterations,
			CheckpointInterval: cfg.CheckpointInterval,
		}, sink)
	default:
		fmt.Fprintf(os.Stderr, "unknown decomposition %q\n", *decomp)
		os.Exit(2)
	}
	var rec *obs.Recorder
	if *eventsPath != "" || *metricsPath != "" {
		rec = obs.New()
		rec.SetRingCapacity(*ringCap)
	}
	job := mpi.JobConfig{
		Ranks: *ranks + *spares, Machine: machine, Seed: *seed, Obs: rec,
		Flush: cluster.FlushPolicy{Window: *flushWindow, Coalesce: *flushCoalesce},
	}

	// -stream exports the event log incrementally through the reorder
	// window while the job runs; the post-hoc export is then skipped.
	postHocEvents := *eventsPath
	var streamBuf *bufio.Writer
	var streamFile *os.File
	if *streamEvents {
		if *eventsPath == "" {
			fmt.Fprintln(os.Stderr, "-stream requires -events")
			os.Exit(2)
		}
		w := io.Writer(os.Stdout)
		if *eventsPath != "-" {
			f, err := os.Create(*eventsPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			streamFile, w = f, f
		}
		streamBuf = bufio.NewWriter(w)
		job.ObsStream = streamBuf
		job.ObsWindow = *obsWindow
		postHocEvents = ""
	}

	res := core.Run(job, cc, app)

	fmt.Fprintf(out, "strategy=%s ranks=%d data=%dMB launches=%d wall=%.3fs failed=%v\n",
		strategy, *ranks, *dataMB, res.Launches, res.WallTime, res.Failed)
	times := res.TimesWithOther()
	for _, c := range []trace.Category{
		trace.AppCompute, trace.AppMPI, trace.ResilienceInit,
		trace.CheckpointFunc, trace.DataRecovery, trace.Recompute, trace.Other,
	} {
		fmt.Fprintf(out, "  %-26s %8.3f s\n", c, times.Get(c))
	}
	if r, ok := sink.Get(0); ok {
		fmt.Fprintf(out, "rank 0: iterations=%d residual=%.6f checksum=%.6g\n", r.Iterations, r.Delta, r.Checksum)
	}
	if rec != nil {
		if streamBuf != nil {
			err := rec.FlushStream()
			if err == nil {
				err = streamBuf.Flush()
			}
			if err == nil && streamFile != nil {
				err = streamFile.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "streaming events:", err)
				os.Exit(1)
			}
		}
		if err := writeObs(rec, postHocEvents, *metricsPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if res.Failed {
		os.Exit(1)
	}
}
