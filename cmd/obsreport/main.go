// Command obsreport analyzes resilience events JSONL (the output of the
// -events flag on cmd/heatdis, cmd/minimd and cmd/chaos, or of
// obs.Recorder.WriteJSONL/StreamJSONL) and prints the recovery-timeline
// breakdown the paper's evaluation reports: one span per repaired failure
// episode, segmented into detection / communicator repair / rebuild /
// state restoration / recompute phases, plus per-generation
// checkpoint/flush accounting and flush-latency quantiles.
//
// Beyond the single-run report it renders the run as a per-rank Gantt
// timeline (-timeline, ASCII; -svg for the figure form) and aggregates a
// whole directory of runs (-sweep) into per-(mode × app) phase-duration
// statistics — the output layout of `chaos -seeds N -out dir/`.
//
// Examples:
//
//	heatdis -fail -events events.jsonl && obsreport events.jsonl
//	obsreport -json events.jsonl                  # machine-readable report
//	obsreport -baseline free.jsonl events.jsonl   # overhead deltas
//	heatdis -fail -events - | obsreport           # no arg: read stdin
//	obsreport -timeline -width 120 events.jsonl   # ASCII Gantt
//	obsreport -timeline -svg events.jsonl > t.svg # SVG Gantt
//	chaos -seeds 12 -out runs/ && obsreport -sweep runs/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "obsreport:", err)
	os.Exit(1)
}

func readEvents(path string) ([]obs.Event, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return analyze.ReadJSONL(r)
}

func readReport(path string) (*analyze.Report, error) {
	events, err := readEvents(path)
	if err != nil {
		return nil, err
	}
	rep, err := analyze.Analyze(events)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

func main() {
	jsonOut := flag.Bool("json", false, "emit the machine-readable JSON report instead of the table")
	baselinePath := flag.String("baseline", "", "events JSONL of a baseline run; appends overhead deltas (run - baseline)")
	sweepDir := flag.String("sweep", "", "aggregate a directory of events JSONL files (chaos -out layout) instead of one run")
	timeline := flag.Bool("timeline", false, "render the run as a per-rank Gantt timeline instead of the report table")
	width := flag.Int("width", 100, "with -timeline: plot width in columns")
	svgOut := flag.Bool("svg", false, "with -timeline: emit SVG instead of ASCII")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: obsreport [-json] [-baseline base.jsonl] [-timeline [-width N] [-svg]] [<events.jsonl | ->]\n")
		fmt.Fprintf(os.Stderr, "       obsreport [-json] -sweep <dir>\n")
		fmt.Fprintf(os.Stderr, "With no positional argument (or '-'), events are read from stdin.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *sweepDir != "" {
		if flag.NArg() != 0 {
			fail(fmt.Errorf("-sweep reads a whole directory; drop the positional events argument"))
		}
		sweep, err := analyze.LoadSweep(*sweepDir)
		if err != nil {
			fail(err)
		}
		if *jsonOut {
			if err := sweep.WriteJSON(os.Stdout); err != nil {
				fail(err)
			}
			return
		}
		if err := sweep.WriteTable(os.Stdout); err != nil {
			fail(err)
		}
		return
	}

	if flag.NArg() > 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := "-" // no positional argument: read the event stream from stdin
	if flag.NArg() == 1 {
		path = flag.Arg(0)
	}
	if *baselinePath == "-" && path == "-" {
		fail(fmt.Errorf("-baseline - and stdin input cannot both read the same stream; give one of them a file"))
	}

	events, err := readEvents(path)
	if err != nil {
		fail(err)
	}
	rep, err := analyze.Analyze(events)
	if err != nil {
		fail(err)
	}

	if *timeline {
		tl := analyze.BuildTimeline(events, rep)
		if *svgOut {
			title := path
			if title == "-" {
				title = "recovery timeline"
			}
			fmt.Print(tl.RenderSVG(title))
			return
		}
		fmt.Print(tl.RenderASCII(*width))
		return
	}

	if *jsonOut && *baselinePath == "" {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fail(err)
		}
		return
	}

	var delta *analyze.Delta
	if *baselinePath != "" {
		base, err := readReport(*baselinePath)
		if err != nil {
			fail(err)
		}
		d := analyze.Diff(rep, base)
		delta = &d
	}

	if *jsonOut {
		out := struct {
			Report *analyze.Report `json:"report"`
			Delta  *analyze.Delta  `json:"delta,omitempty"`
		}{rep, delta}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail(err)
		}
		return
	}

	if err := rep.WriteTable(os.Stdout); err != nil {
		fail(err)
	}
	if delta != nil {
		if err := delta.WriteTable(os.Stdout); err != nil {
			fail(err)
		}
	}
}
