// Command obsreport analyzes a resilience events JSONL file (the output
// of the -events flag on cmd/heatdis and cmd/minimd, or of
// obs.Recorder.WriteJSONL/StreamJSONL) and prints the recovery-timeline
// breakdown the paper's evaluation reports: one span per repaired failure
// episode, segmented into detection / communicator repair / rebuild /
// state restoration / recompute phases, plus per-generation
// checkpoint/flush accounting.
//
// Examples:
//
//	heatdis -fail -events events.jsonl && obsreport events.jsonl
//	obsreport -json events.jsonl            # machine-readable report
//	obsreport -baseline free.jsonl events.jsonl   # overhead deltas
//	heatdis -fail -events - | obsreport -   # read from stdin
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs/analyze"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "obsreport:", err)
	os.Exit(1)
}

func readReport(path string) (*analyze.Report, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	events, err := analyze.ReadJSONL(r)
	if err != nil {
		return nil, err
	}
	return analyze.Analyze(events)
}

func main() {
	jsonOut := flag.Bool("json", false, "emit the machine-readable JSON report instead of the table")
	baselinePath := flag.String("baseline", "", "events JSONL of a baseline run; appends overhead deltas (run - baseline)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: obsreport [-json] [-baseline base.jsonl] <events.jsonl | ->\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	rep, err := readReport(flag.Arg(0))
	if err != nil {
		fail(err)
	}

	if *jsonOut && *baselinePath == "" {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fail(err)
		}
		return
	}

	var delta *analyze.Delta
	if *baselinePath != "" {
		base, err := readReport(*baselinePath)
		if err != nil {
			fail(err)
		}
		d := analyze.Diff(rep, base)
		delta = &d
	}

	if *jsonOut {
		out := struct {
			Report *analyze.Report `json:"report"`
			Delta  *analyze.Delta  `json:"delta,omitempty"`
		}{rep, delta}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fail(err)
		}
		return
	}

	if err := rep.WriteTable(os.Stdout); err != nil {
		fail(err)
	}
	if delta != nil {
		if err := delta.WriteTable(os.Stdout); err != nil {
			fail(err)
		}
	}
}
