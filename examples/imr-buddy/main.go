// IMR buddy checkpointing with the low-level Fenix API.
//
// This example skips the core.Session convenience layer and uses Fenix
// directly — fenix.Run, roles, the resilient communicator, and the
// in-memory-redundancy buddy store — the way an application hand-tuning
// its process resilience would (Section V-A). Ranks pair up (0,1), (2,3),
// ... and hold each other's checkpoints in memory; when a rank dies, its
// replacement pulls the data from the surviving buddy over the network
// instead of touching the file system.
package main

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync"

	"repro/internal/cluster"
	"repro/internal/fenix"
	"repro/internal/mpi"
	"repro/internal/sim"
)

const (
	appRanks = 4
	spares   = 1
	steps    = 30
	ckEvery  = 10
	failStep = 17
)

func body(results *sync.Map) fenix.Body {
	return func(ctx *fenix.Context) error {
		p := ctx.Proc()
		im, err := fenix.NewIMR(ctx, "demo")
		if err != nil {
			return err
		}

		// Local state: a single accumulating value.
		value := float64(ctx.Rank() + 1)
		start := 0
		if ctx.Role() != fenix.RoleInitial {
			// Recover: agree on the newest common version, restore it.
			v, err := im.LatestCommon()
			if err = ctx.Check(err); err != nil {
				return err
			}
			blob, err := im.Restore(v)
			if err = ctx.Check(err); err != nil {
				return err
			}
			value = math.Float64frombits(binary.LittleEndian.Uint64(blob))
			start = v + 1
			fmt.Printf("[%v] logical rank %d restored version %d (value %.4f)\n",
				ctx.Role(), ctx.Rank(), v, value)
		}

		for i := start; i < steps; i++ {
			if ctx.Role() == fenix.RoleInitial && ctx.Rank() == 1 && i == failStep {
				p.Exit() // simulate a process failure
			}
			sum, err := ctx.Comm().AllreduceF64(p, []float64{value}, mpi.OpSum)
			if err = ctx.Check(err); err != nil {
				return err
			}
			value += 1e-2 * sum[0]
			p.Compute(1e6)

			if (i+1)%ckEvery == 0 {
				var blob [8]byte
				binary.LittleEndian.PutUint64(blob[:], math.Float64bits(value))
				if err = ctx.Check(im.Checkpoint(i, blob[:])); err != nil {
					return err
				}
			}
		}
		results.Store(ctx.Rank(), value)
		return nil
	}
}

func runJob() map[int]float64 {
	var results sync.Map
	cl := cluster.New(appRanks+spares, sim.DefaultMachine())
	w := mpi.NewWorld(cl, appRanks+spares, 1, false, 9, 0)
	var wg sync.WaitGroup
	for i := 0; i < w.Size(); i++ {
		wg.Add(1)
		go func(p *mpi.Proc) {
			defer wg.Done()
			defer func() { recover() }() // absorb the injected Exit unwind
			if err := fenix.Run(p, fenix.Config{Spares: spares}, body(&results)); err != nil {
				fmt.Fprintf(os.Stderr, "rank %d: %v\n", p.Rank(), err)
			}
		}(w.Proc(i))
	}
	wg.Wait()
	out := map[int]float64{}
	results.Range(func(k, v any) bool {
		out[k.(int)] = v.(float64)
		return true
	})
	return out
}

func main() {
	fmt.Printf("IMR buddy demo: %d ranks + %d spare, checkpoint every %d steps, rank 1 dies at step %d\n",
		appRanks, spares, ckEvery, failStep)
	got := runJob()
	for r := 0; r < appRanks; r++ {
		fmt.Printf("logical rank %d: final value %.6f (buddy of rank %d)\n", r, got[r], fenix.BuddyOf(r))
	}
	if len(got) != appRanks {
		fmt.Println("FAILURE: some ranks missing")
		os.Exit(1)
	}
	fmt.Println("rank 1's data was recovered from rank 0's in-memory copy — no file system involved")
}
