// MiniMD made resilient: the paper's Section VI-E workflow.
//
// The mini-app's main loop is wrapped in one checkpoint region; Kokkos
// Resilience automatically classifies the 61 captured views (39
// checkpointed, 3 swap-space aliases, 19 duplicate captures serialized
// only once) and the Fenix resilient communicator removes the need to add
// error handling at any of the MPI call sites. This example runs MiniMD
// with an injected failure and prints the per-section time breakdown of
// Figure 6 plus the live view census of Figure 7.
package main

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/apps/minimd"
	"repro/internal/core"
	"repro/internal/kr"
	"repro/internal/mpi"
	"repro/internal/trace"
)

func main() {
	cfg := minimd.Config{
		Size:               100, // 100^3 unit cells simulated
		Steps:              60,
		CheckpointInterval: 10,
	}
	cc := core.Config{
		Strategy:           core.StrategyFenixKRVeloC,
		Spares:             2,
		CheckpointInterval: 10,
		CheckpointName:     "minimd",
		Failures:           []*core.FailurePlan{{Slot: 3, Iteration: 48}},
	}

	var mu sync.Mutex
	var census kr.Census
	sink := minimd.NewSink()
	app := minimd.App(cfg, sink)
	res := core.Run(mpi.JobConfig{Ranks: 16 + 2, Seed: 7}, cc, func(s *core.Session) error {
		err := app(s)
		if s.Rank() == 0 {
			mu.Lock()
			census = s.Census()
			mu.Unlock()
		}
		return err
	})

	fmt.Printf("MiniMD %d^3 on 16 ranks, failure at step 48: launches=%d wall=%.3fs failed=%v\n\n",
		cfg.Size, res.Launches, res.WallTime, res.Failed)

	fmt.Println("per-section times (Figure 6 categories):")
	times := res.TimesWithOther()
	for _, c := range []trace.Category{
		trace.ForceCompute, trace.Neighboring, trace.Communicator,
		trace.CheckpointFunc, trace.DataRecovery, trace.Recompute, trace.Other,
	} {
		fmt.Printf("  %-22s %8.3f s\n", c, times.Get(c))
	}

	ck, al, sk := census.Counts()
	ckB, alB, skB := census.Bytes()
	total := float64(ckB+alB+skB) / 100
	fmt.Printf("\nview census (Figure 7): %d views — %d checkpointed (%.0f%% of memory), "+
		"%d aliases (%.0f%%), %d skipped duplicates (%.0f%%)\n",
		census.TotalViews(), ck, float64(ckB)/total, al, float64(alB)/total, sk, float64(skB)/total)

	if res.Failed {
		os.Exit(1)
	}
}
