// Partial rollback: the paper's Section V-A demonstration on the
// convergence variant of Heatdis.
//
// A failed rank's replacement restores the last checkpoint, but the
// surviving ranks keep their newer in-progress data: an iterative solver
// tolerates the temporarily inconsistent state and simply re-converges.
// This example runs the same failure under full rollback and under partial
// rollback and prints the recompute time saved (the paper reports a ~2x
// recovery speedup).
package main

import (
	"fmt"

	"repro/internal/apps/heatdis"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/trace"
)

func run(strategy core.Strategy) *core.Result {
	cfg := heatdis.Config{
		BytesPerRank:       64 << 20,
		Iterations:         60,
		CheckpointInterval: 10,
		Convergence:        true,
		Epsilon:            0.05,
		MaxIterations:      2000,
	}
	cc := core.Config{
		Strategy:           strategy,
		Spares:             2,
		CheckpointInterval: 10,
		CheckpointName:     "heatdis",
		Failures:           []*core.FailurePlan{{Slot: 1, Iteration: 28}},
	}
	sink := heatdis.NewSink()
	res := core.Run(mpi.JobConfig{Ranks: 8 + 2, Seed: 42}, cc, heatdis.App(cfg, sink))
	if r, ok := sink.Get(0); ok {
		fmt.Printf("%-18s converged after %d iterations (residual %.4f), wall %.3fs\n",
			strategy.String()+":", r.Iterations, r.Delta, res.WallTime)
	}
	return res
}

func main() {
	fmt.Println("Heatdis (convergence variant), failure injected at iteration 28:")
	full := run(core.StrategyFenixKRVeloC)
	part := run(core.StrategyPartialRollback)

	fr := full.MeanAppTimes().Get(trace.Recompute)
	pr := part.MeanAppTimes().Get(trace.Recompute)
	fmt.Printf("\nrecompute time: full rollback %.3fs, partial rollback %.3fs (%.1fx less)\n",
		fr, pr, fr/max(pr, 1e-9))
	fmt.Println("survivors kept their in-progress data; only the recovered rank rolled back")
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
