// Quickstart: the paper's Figure 4 use pattern on a toy iterative solver.
//
// The application wraps its loop body in Session.Checkpoint and otherwise
// writes ordinary message-passing code against Session.Comm(). The
// integrated system (Fenix process recovery + Kokkos Resilience control
// flow + VeloC data checkpointing) handles everything else: we inject a
// process failure mid-run and the job completes with the exact same answer
// as a failure-free run, without a relaunch.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/kokkos"
	"repro/internal/mpi"
)

const (
	ranks  = 4
	spares = 1
	iters  = 40
	vecLen = 8
)

func solver(results chan<- string) core.App {
	return func(s *core.Session) error {
		fmt.Printf("[world rank %d] entering body: role=%v logical rank=%d of %d\n",
			s.Proc().Rank(), s.Role(), s.Rank(), s.Size())

		// Allocate state on first entry; survivors keep theirs across
		// recoveries via s.Store, and a restored checkpoint realigns it.
		var x *kokkos.F64View
		if v, ok := s.Store["x"]; ok {
			x = v.(*kokkos.F64View)
		} else {
			x = kokkos.NewF64("x", vecLen)
			for i := 0; i < vecLen; i++ {
				x.Set(i, float64(s.Rank()))
			}
			s.Store["x"] = x
		}

		start := 0
		if r := s.ResumeIteration(); r >= 0 {
			fmt.Printf("[world rank %d] resuming from checkpoint version %d\n", s.Proc().Rank(), r)
			start = r
		}
		for i := start; i < iters; i++ {
			err := s.Checkpoint("solver", i, []kokkos.View{x}, func() error {
				s.Proc().Compute(1e6)
				sum, err := s.Comm().AllreduceF64(s.Proc(), []float64{x.At(0)}, mpi.OpSum)
				if err != nil {
					return err
				}
				for j := 0; j < vecLen; j++ {
					x.Set(j, x.At(j)+1e-3*sum[0])
				}
				return nil
			})
			if err != nil {
				return err
			}
		}
		results <- fmt.Sprintf("logical rank %d finished: x[0]=%.6f", s.Rank(), x.At(0))
		return nil
	}
}

func main() {
	results := make(chan string, ranks)

	cfg := core.Config{
		Strategy:           core.StrategyFenixKRVeloC,
		Spares:             spares,
		CheckpointInterval: 10,
		CheckpointName:     "quickstart",
		// Logical rank 2 dies just before iteration 27 (95% of the way
		// between the checkpoints at iterations 19 and 29).
		Failures: []*core.FailurePlan{{Slot: 2, Iteration: 27}},
	}
	res := core.Run(mpi.JobConfig{Ranks: ranks + spares, Seed: 1}, cfg, solver(results))

	close(results)
	for line := range results {
		fmt.Println(line)
	}
	fmt.Printf("job: launches=%d wall=%.3fs failed=%v\n", res.Launches, res.WallTime, res.Failed)
	if res.Failed {
		os.Exit(1)
	}
	fmt.Println("recovered online: one process was killed, a spare took its place, no relaunch")
}
