// Strategy comparison: one table, all seven resilience configurations.
//
// Runs the Heatdis benchmark under every strategy of the paper's Section
// V-A — with and without an injected failure — and prints a compact
// comparison: overhead of checkpointing, cost of one failure, and where
// the time goes. This is the quickest way to see the paper's conclusions
// in one place.
package main

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/trace"
)

func main() {
	const nodes = 16
	const dataMB = 256
	opts := harness.HeatdisOptions{}

	fmt.Printf("Heatdis: %d nodes, %d MB/rank, 6 checkpoints, one failure at 95%% between the last two\n\n", nodes, dataMB)
	fmt.Printf("%-18s %12s %12s %12s %12s %12s\n",
		"strategy", "overhead_s", "failcost_s", "ckptfunc_s", "recompute_s", "other_fail_s")

	var ref harness.HeatdisPoint
	for i, s := range harness.Fig5Strategies {
		pt := harness.HeatdisCell(s, nodes, dataMB*harness.MB, opts)
		if i == 0 {
			ref = pt
		}
		fmt.Printf("%-18s %12.3f %12.3f %12.3f %12.3f %12.3f\n",
			s,
			pt.OverheadWall-ref.OverheadWall,
			pt.FailureCost(),
			pt.Overhead.Get(trace.CheckpointFunc),
			pt.FailureTimes.Get(trace.Recompute),
			pt.FailureTimes.Get(trace.Other),
		)
	}

	fmt.Println("\nreading the table like the paper does:")
	fmt.Println(" - kr-veloc ~ veloc:             Kokkos Resilience adds no overhead as a VeloC manager")
	fmt.Println(" - fenix-kr-veloc ~ kr-veloc:    adding Fenix is also free when nothing fails")
	fmt.Println(" - fenix rows, failcost + other: online recovery skips the relaunch entirely")
	fmt.Println(" - fenix-imr, ckptfunc:          buddy checkpointing pays the network cost up front")
	fmt.Println(" - partial-rollback, recompute:  survivors keep their progress; only the lost rank redoes work")
}
