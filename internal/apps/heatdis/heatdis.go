// Package heatdis reproduces the VeloC heat-distribution benchmark
// (Heatdis) ported to Kokkos parallelism, the first of the paper's two
// evaluation applications: a 2-D Jacobi stencil distributed across ranks by
// row blocks, with halo exchanges between neighbours and a global residual
// reduction each iteration.
//
// Two variants mirror Section VI-A:
//
//   - Fixed-iteration: runs a static number of iterations and checkpoints
//     by iteration count; all tests perform 6 checkpoints, each half the
//     size of the application's data (one of the two grids).
//   - Convergence: runs until the residual drops below epsilon, the
//     variant that demonstrates partial rollback — survivors keep their
//     in-progress data and the solver simply re-converges.
//
// The grid has a simulated size (the paper's 64 MB – 4 GB per rank, which
// drives every cost model) and a small real allocation on which the actual
// arithmetic runs, keeping results bit-exact and testable.
package heatdis

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/kokkos"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// Config parameterizes a Heatdis run.
type Config struct {
	// BytesPerRank is the simulated application data size per rank (two
	// grids); checkpoints cover one grid, i.e. half of it.
	BytesPerRank int
	// Iterations is the fixed iteration count (fixed variant).
	Iterations int
	// CheckpointInterval checkpoints every k-th iteration.
	CheckpointInterval int
	// Convergence selects the run-until-converged variant.
	Convergence bool
	// Epsilon is the convergence threshold on the global residual.
	Epsilon float64
	// MaxIterations caps the convergence variant.
	MaxIterations int
	// ActualRows and ActualCols size the real allocation per rank
	// (defaults 32x64). The simulated grid is BytesPerRank/16 cells wide
	// by simCols columns.
	ActualRows, ActualCols int
}

// simCols is the simulated grid width in cells (one halo row is
// 8*simCols bytes on the wire).
const simCols = 4096

func (c *Config) normalize() {
	if c.ActualRows <= 0 {
		c.ActualRows = 32
	}
	if c.ActualCols <= 0 {
		c.ActualCols = 64
	}
	if c.BytesPerRank <= 0 {
		c.BytesPerRank = 16 * c.ActualRows * c.ActualCols
	}
	if c.Iterations <= 0 {
		c.Iterations = 60
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 10
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 1e-2
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 10000
	}
}

// SimRows returns the simulated row count per rank.
func (c Config) SimRows() int {
	cc := c
	cc.normalize()
	return cc.BytesPerRank / (2 * 8 * simCols)
}

// Result is one rank's final state.
type Result struct {
	Rank       int
	Iterations int
	Delta      float64
	Checksum   float64
}

// Sink collects per-logical-rank results across a job.
type Sink struct {
	mu      sync.Mutex
	results map[int]Result
}

// NewSink returns an empty sink.
func NewSink() *Sink { return &Sink{results: make(map[int]Result)} }

// Put records rank's result (last write wins).
func (s *Sink) Put(r Result) {
	s.mu.Lock()
	s.results[r.Rank] = r
	s.mu.Unlock()
}

// Get returns rank's result.
func (s *Sink) Get(rank int) (Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.results[rank]
	return r, ok
}

// GlobalChecksum sums the per-rank checksums over n ranks.
func (s *Sink) GlobalChecksum(n int) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum float64
	for r := 0; r < n; r++ {
		res, ok := s.results[r]
		if !ok {
			return 0, fmt.Errorf("heatdis: rank %d produced no result", r)
		}
		sum += res.Checksum
	}
	return sum, nil
}

// state is one rank's solver state, persisted across Fenix re-entries.
type state struct {
	h, g    *kokkos.F64View // current and next grid (with ghost rows)
	capture []kokkos.View   // the views the checkpoint lambda captures
	rows    int             // interior rows
	cols    int
}

const (
	sourceTemp = 100.0
	haloUpTag  = 11
	haloDnTag  = 12
)

// newState allocates and initializes the solver state. Grids carry two
// ghost rows (index 0 and rows+1).
func newState(cfg *Config, s *core.Session) *state {
	st := &state{rows: cfg.ActualRows, cols: cfg.ActualCols}
	st.h = kokkos.NewF64("heat", st.rows+2, st.cols)
	st.g = kokkos.NewF64("heat_next", st.rows+2, st.cols)
	half := cfg.BytesPerRank / 2
	st.h.SetSimBytes(half)
	st.g.SetSimBytes(half)
	// Heat source along the global top edge: rank 0's upper ghost row,
	// which the stencil reads but never updates (a Dirichlet boundary).
	if s.Rank() == 0 {
		for j := 0; j < st.cols; j++ {
			st.h.Set2(0, j, sourceTemp)
			st.g.Set2(0, j, sourceTemp)
		}
	}
	// The checkpoint lambda captures the current grid, a duplicate
	// reference to it (reachable through another object, as the compiler
	// copies it), and the swap-space grid declared as an alias.
	st.capture = []kokkos.View{st.h, st.h.Ref("heat_captured"), st.g}
	s.DeclareAliases("heat", "heat_next")

	// Application initialization cost: allocating and first-touching the
	// two grids plus fixed setup. Under fail-restart recovery every rank
	// pays this again on relaunch; under Fenix only the replacement does —
	// one of the savings the paper attributes to process-level recovery.
	initTime := 2*float64(cfg.BytesPerRank)/s.Proc().Machine().MemBandwidth + 0.2
	s.Proc().ChargeTime(trace.Other, initTime)
	return st
}

// exchangeHalos swaps boundary rows with the up/down neighbours. Transfer
// costs are charged at the simulated row width.
func (st *state) exchangeHalos(s *core.Session) error {
	comm, p := s.Comm(), s.Proc()
	me, n := s.Rank(), s.Size()
	rowBytes := func(i int) []byte {
		return mpi.EncodeF64(st.h.Data()[i*st.cols : (i+1)*st.cols])
	}
	setRow := func(i int, b []byte) error {
		row, err := mpi.DecodeF64(b)
		if err != nil {
			return err
		}
		copy(st.h.Data()[i*st.cols:(i+1)*st.cols], row)
		return nil
	}
	simRow := 8 * simCols

	if me > 0 { // exchange with up neighbour
		got, err := comm.SendrecvSized(p, me-1, haloUpTag, rowBytes(1), simRow, me-1, haloDnTag)
		if err != nil {
			return err
		}
		if err := setRow(0, got); err != nil {
			return err
		}
	}
	if me < n-1 { // exchange with down neighbour
		got, err := comm.SendrecvSized(p, me+1, haloDnTag, rowBytes(st.rows), simRow, me+1, haloUpTag)
		if err != nil {
			return err
		}
		if err := setRow(st.rows+1, got); err != nil {
			return err
		}
	}
	return nil
}

// step runs one Jacobi update and returns the local residual. The real
// arithmetic covers the actual allocation; the compute cost is charged for
// the simulated cell count.
func (st *state) step(cfg *Config, s *core.Session) float64 {
	h, g := st.h, st.g
	rows, cols := st.rows, st.cols
	var delta float64
	for i := 1; i <= rows; i++ {
		for j := 0; j < cols; j++ {
			left, right := j-1, j+1
			if left < 0 {
				left = 0
			}
			if right >= cols {
				right = cols - 1
			}
			v := 0.25 * (h.At2(i-1, j) + h.At2(i+1, j) + h.At2(i, left) + h.At2(i, right))
			g.Set2(i, j, v)
			if d := math.Abs(v - h.At2(i, j)); d > delta {
				delta = d
			}
		}
	}
	kokkos.DeepCopyF64(h, g)
	s.Proc().Compute(opsPerCell * float64(cfg.SimRows()) * simCols)
	return delta
}

// opsPerCell is the cost-model work per stencil cell per iteration. It is
// calibrated so that a checkpoint interval comfortably exceeds the
// asynchronous flush time at the paper's data scales — the regime the
// paper tests (failures are injected only after flushes complete).
const opsPerCell = 30

func (st *state) checksum() float64 {
	var sum float64
	for i := 1; i <= st.rows; i++ {
		for j := 0; j < st.cols; j++ {
			sum += st.h.At2(i, j) * float64(i*31+j)
		}
	}
	return sum
}

// App builds the Heatdis application body for core.Run. Results land in
// sink keyed by logical rank.
func App(cfg Config, sink *Sink) core.App {
	cfg.normalize()
	return func(s *core.Session) error {
		resume := s.ResumeIteration()
		// Reuse the survivor's grids only when a checkpoint will realign
		// them; a failure before any checkpoint exists means every rank
		// starts over from the initial condition.
		var st *state
		if v, ok := s.Store["heatdis"]; ok && resume >= 0 {
			st = v.(*state)
		} else {
			st = newState(&cfg, s)
			s.Store["heatdis"] = st
		}

		limit := cfg.Iterations
		if cfg.Convergence {
			limit = cfg.MaxIterations
		}
		start := 0
		if resume >= 0 {
			start = resume
		}

		var lastDelta float64 = math.Inf(1)
		iters := 0
		for i := start; i < limit; i++ {
			var localDelta float64
			err := s.Checkpoint("heatdis", i, st.capture, func() error {
				if err := st.exchangeHalos(s); err != nil {
					return err
				}
				// The stencil update runs as a resilient region: it is
				// communication-free (halos already exchanged), so the SDC
				// layer may replay or duplicate it locally without desyncing
				// the job's collectives.
				return s.Region("heatdis.step", []kokkos.View{st.h, st.g}, func() {
					localDelta = st.step(&cfg, s)
				})
			})
			if err != nil {
				return err
			}
			// Global residual: an allreduce every iteration, as in the
			// VeloC benchmark. Must run outside the region body so the
			// recovery iteration (restored, body skipped) stays aligned.
			global, err := s.Comm().AllreduceF64(s.Proc(), []float64{localDelta}, mpi.OpMax)
			if err != nil {
				return s.Check(err)
			}
			lastDelta = global[0]
			iters = i + 1
			// Never conclude convergence on the recovery iteration itself:
			// under full rollback the region body is skipped there and the
			// residual is not meaningful.
			if cfg.Convergence && lastDelta < cfg.Epsilon && i >= 1 && i != resume {
				break
			}
		}
		sink.Put(Result{Rank: s.Rank(), Iterations: iters, Delta: lastDelta, Checksum: st.checksum()})
		return nil
	}
}
