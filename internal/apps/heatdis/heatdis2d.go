package heatdis

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kokkos"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// This file adds a 2-D block decomposition of the heat-distribution
// benchmark over a Cartesian process topology (mpi.Cart): ranks form a
// near-square grid and exchange row halos vertically and column halos
// horizontally. The physics and the resilience wiring are identical to
// the 1-D variant; the point is (a) exercising the topology machinery a
// production stencil code would use and (b) the decomposition-invariance
// property: the same global problem computed on 1 rank and on a P-rank
// grid yields the same field.
type Config2D struct {
	// BytesPerRank is the simulated data size per rank (two grids).
	BytesPerRank int
	// Iterations and CheckpointInterval as in Config.
	Iterations         int
	CheckpointInterval int
	// GlobalRows/GlobalCols size the real global grid; they are rounded
	// up to multiples of the process grid.
	GlobalRows, GlobalCols int
}

func (c *Config2D) normalize() {
	if c.GlobalRows <= 0 {
		c.GlobalRows = 32
	}
	if c.GlobalCols <= 0 {
		c.GlobalCols = 32
	}
	if c.Iterations <= 0 {
		c.Iterations = 60
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 10
	}
	if c.BytesPerRank <= 0 {
		c.BytesPerRank = 16 * c.GlobalRows * c.GlobalCols
	}
}

// state2D is one rank's block: a (br+2) x (bc+2) grid with a ghost frame.
type state2D struct {
	h, g    *kokkos.F64View
	capture []kokkos.View
	br, bc  int // interior block size
	pr, pc  int // process grid
	cr, cc  int // this rank's grid coordinates
}

func newState2D(cfg *Config2D, s *core.Session, cart *mpi.Cart) (*state2D, error) {
	dims := cart.Dims()
	coords := cart.Coords(s.Rank())
	st := &state2D{pr: dims[0], pc: dims[1], cr: coords[0], cc: coords[1]}

	gr := roundUp(cfg.GlobalRows, st.pr)
	gc := roundUp(cfg.GlobalCols, st.pc)
	st.br = gr / st.pr
	st.bc = gc / st.pc

	st.h = kokkos.NewF64("heat2d", st.br+2, st.bc+2)
	st.g = kokkos.NewF64("heat2d_next", st.br+2, st.bc+2)
	half := cfg.BytesPerRank / 2
	st.h.SetSimBytes(half)
	st.g.SetSimBytes(half)

	// Heat source along the global top edge.
	if st.cr == 0 {
		for j := 0; j < st.bc+2; j++ {
			st.h.Set2(0, j, sourceTemp)
			st.g.Set2(0, j, sourceTemp)
		}
	}
	st.capture = []kokkos.View{st.h, st.h.Ref("heat2d_captured"), st.g}
	s.DeclareAliases("heat2d", "heat2d_next")

	initTime := 2*float64(cfg.BytesPerRank)/s.Proc().Machine().MemBandwidth + 0.2
	s.Proc().ChargeTime(trace.Other, initTime)
	return st, nil
}

func roundUp(n, m int) int { return (n + m - 1) / m * m }

const (
	tag2dRow = 31
	tag2dCol = 32
)

// exchange swaps halos with the four neighbors. Row halos are contiguous;
// column halos are packed/unpacked with a stride. Simulated transfer
// sizes scale with the simulated block edge.
func (st *state2D) exchange(s *core.Session, cart *mpi.Cart, simEdgeBytes int) error {
	comm, p := s.Comm(), s.Proc()
	me := s.Rank()
	w := st.bc + 2

	row := func(i int) []float64 { return st.h.Data()[i*w : (i+1)*w] }
	col := func(j int) []float64 {
		out := make([]float64, st.br+2)
		for i := 0; i < st.br+2; i++ {
			out[i] = st.h.At2(i, j)
		}
		return out
	}
	setCol := func(j int, v []float64) {
		for i := 0; i < st.br+2; i++ {
			st.h.Set2(i, j, v[i])
		}
	}

	// Vertical: dim 0. Send the top interior row up, bottom interior row
	// down; receive into the ghost rows.
	up, down := cart.Shift(me, 0, 1) // up = src(above? ) -- Shift returns (src, dst)
	// Shift(me, 0, 1): dst is the neighbor at +1 in dim 0 (below in grid
	// numbering), src at -1 (above).
	above, below := up, down
	if above >= 0 {
		got, err := comm.SendrecvSized(p, above, tag2dRow, mpi.EncodeF64(row(1)), simEdgeBytes, above, tag2dRow)
		if err != nil {
			return err
		}
		v, err := mpi.DecodeF64(got)
		if err != nil {
			return err
		}
		copy(row(0), v)
	}
	if below >= 0 {
		got, err := comm.SendrecvSized(p, below, tag2dRow, mpi.EncodeF64(row(st.br)), simEdgeBytes, below, tag2dRow)
		if err != nil {
			return err
		}
		v, err := mpi.DecodeF64(got)
		if err != nil {
			return err
		}
		copy(row(st.br+1), v)
	}

	// Horizontal: dim 1.
	left, right := cart.Shift(me, 1, 1)
	if left >= 0 {
		got, err := comm.SendrecvSized(p, left, tag2dCol, mpi.EncodeF64(col(1)), simEdgeBytes, left, tag2dCol)
		if err != nil {
			return err
		}
		v, err := mpi.DecodeF64(got)
		if err != nil {
			return err
		}
		setCol(0, v)
	}
	if right >= 0 {
		got, err := comm.SendrecvSized(p, right, tag2dCol, mpi.EncodeF64(col(st.bc)), simEdgeBytes, right, tag2dCol)
		if err != nil {
			return err
		}
		v, err := mpi.DecodeF64(got)
		if err != nil {
			return err
		}
		setCol(st.bc+1, v)
	}
	return nil
}

// step2D runs one Jacobi update on the block interior and returns the
// local residual.
func (st *state2D) step2D(cfg *Config2D, s *core.Session) float64 {
	var delta float64
	for i := 1; i <= st.br; i++ {
		for j := 1; j <= st.bc; j++ {
			v := 0.25 * (st.h.At2(i-1, j) + st.h.At2(i+1, j) + st.h.At2(i, j-1) + st.h.At2(i, j+1))
			st.g.Set2(i, j, v)
			if d := abs(v - st.h.At2(i, j)); d > delta {
				delta = d
			}
		}
	}
	kokkos.DeepCopyF64(st.h, st.g)
	simCells := float64(cfg.BytesPerRank) / 16
	s.Proc().Compute(opsPerCell * simCells)
	return delta
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// checksum2D digests the interior using GLOBAL cell indices so results
// are comparable across decompositions.
func (st *state2D) checksum2D() float64 {
	var sum float64
	for i := 1; i <= st.br; i++ {
		for j := 1; j <= st.bc; j++ {
			gi := st.cr*st.br + i
			gj := st.cc*st.bc + j
			sum += st.h.At2(i, j) * float64(gi*31+gj)
		}
	}
	return sum
}

// App2D builds the 2-D decomposed application body.
func App2D(cfg Config2D, sink *Sink) core.App {
	cfg.normalize()
	return func(s *core.Session) error {
		dims := mpi.BalancedDims(s.Size(), 2)
		cart, err := mpi.NewCart(s.Comm(), dims, []bool{false, false})
		if err != nil {
			return fmt.Errorf("heatdis2d: %w", err)
		}

		resume := s.ResumeIteration()
		var st *state2D
		if v, ok := s.Store["heatdis2d"]; ok && resume >= 0 {
			st = v.(*state2D)
		} else {
			st, err = newState2D(&cfg, s, cart)
			if err != nil {
				return err
			}
			s.Store["heatdis2d"] = st
		}

		// Simulated halo edge: one side of a square simulated block.
		simEdgeBytes := isqrt(cfg.BytesPerRank/16) * 8

		start := 0
		if resume >= 0 {
			start = resume
		}
		var lastDelta float64
		for i := start; i < cfg.Iterations; i++ {
			var local float64
			err := s.Checkpoint("heatdis2d", i, st.capture, func() error {
				if err := st.exchange(s, cart, simEdgeBytes); err != nil {
					return err
				}
				local = st.step2D(&cfg, s)
				return nil
			})
			if err != nil {
				return err
			}
			global, err := s.Comm().AllreduceF64(s.Proc(), []float64{local}, mpi.OpMax)
			if err != nil {
				return s.Check(err)
			}
			lastDelta = global[0]
		}
		sink.Put(Result{Rank: s.Rank(), Iterations: cfg.Iterations, Delta: lastDelta, Checksum: st.checksum2D()})
		return nil
	}
}

func isqrt(n int) int {
	if n <= 0 {
		return 1
	}
	x := 1
	for x*x < n {
		x++
	}
	return x
}
