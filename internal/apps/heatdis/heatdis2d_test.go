package heatdis

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
)

var testCfg2D = Config2D{
	BytesPerRank:       1 << 24,
	Iterations:         30,
	CheckpointInterval: 10,
	GlobalRows:         32,
	GlobalCols:         32,
}

func run2D(t *testing.T, strat core.Strategy, ranks, spares int, fail *core.FailurePlan) (*core.Result, *Sink) {
	t.Helper()
	sink := NewSink()
	cc := core.Config{
		Strategy:           strat,
		Spares:             spares,
		CheckpointInterval: testCfg2D.CheckpointInterval,
		CheckpointName:     "heatdis2d",
	}
	if fail != nil {
		cc.Failures = []*core.FailurePlan{fail}
	}
	job := mpi.JobConfig{Ranks: ranks + spares, Machine: quietMachine(), Seed: 17}
	res := core.Run(job, cc, App2D(testCfg2D, sink))
	return res, sink
}

func globalSum2D(t *testing.T, sink *Sink, ranks int) float64 {
	t.Helper()
	sum, err := sink.GlobalChecksum(ranks)
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

func TestDecompositionInvariance(t *testing.T) {
	// The same 32x32 global problem on 1, 2, and 4 ranks must produce the
	// same field (checksums agree to FP-summation tolerance).
	res1, sink1 := run2D(t, core.StrategyNone, 1, 0, nil)
	if res1.Failed {
		t.Fatal("1-rank run failed")
	}
	ref := globalSum2D(t, sink1, 1)
	if ref == 0 {
		t.Fatal("zero reference checksum")
	}
	for _, ranks := range []int{2, 4, 8} {
		res, sink := run2D(t, core.StrategyNone, ranks, 0, nil)
		if res.Failed {
			t.Fatalf("%d-rank run failed", ranks)
		}
		got := globalSum2D(t, sink, ranks)
		if rel := math.Abs(got-ref) / math.Abs(ref); rel > 1e-12 {
			t.Fatalf("%d-rank checksum %v deviates from 1-rank %v (rel %v)", ranks, got, ref, rel)
		}
	}
}

func TestHeatFlowsDownward2D(t *testing.T) {
	// On a 2x2 grid, the top-row blocks (ranks with grid row 0) must be
	// hotter than the bottom-row blocks.
	res, sink := run2D(t, core.StrategyNone, 4, 0, nil)
	if res.Failed {
		t.Fatal("run failed")
	}
	// BalancedDims(4,2) = [2,2]: ranks 0,1 are grid row 0; 2,3 row 1.
	top0, _ := sink.Get(0)
	bot0, _ := sink.Get(2)
	if top0.Checksum <= 0 || bot0.Checksum < 0 {
		t.Fatalf("checksums %v / %v", top0.Checksum, bot0.Checksum)
	}
	if bot0.Checksum >= top0.Checksum {
		t.Fatalf("bottom block (%v) hotter than top block (%v)", bot0.Checksum, top0.Checksum)
	}
}

func TestRecovery2DBitwise(t *testing.T) {
	resRef, sinkRef := run2D(t, core.StrategyNone, 4, 0, nil)
	if resRef.Failed {
		t.Fatal("reference failed")
	}
	ref := globalSum2D(t, sinkRef, 4)

	for _, strat := range []core.Strategy{core.StrategyKRVeloC, core.StrategyFenixKRVeloC} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			spares := 0
			if strat.UsesFenix() {
				spares = 2
			}
			fail := &core.FailurePlan{Slot: 2, Iteration: 28}
			res, sink := run2D(t, strat, 4, spares, fail)
			if res.Failed || res.Err() != nil {
				t.Fatalf("failed: %v", res.Err())
			}
			if !fail.Fired() {
				t.Fatal("failure never fired")
			}
			if got := globalSum2D(t, sink, 4); got != ref {
				t.Fatalf("recovered checksum %v != %v (bitwise)", got, ref)
			}
		})
	}
}

func TestOddRankCount2D(t *testing.T) {
	// 6 ranks -> 3x2 grid.
	res, sink := run2D(t, core.StrategyNone, 6, 0, nil)
	if res.Failed {
		t.Fatal("6-rank run failed")
	}
	for r := 0; r < 6; r++ {
		if _, ok := sink.Get(r); !ok {
			t.Fatalf("rank %d missing", r)
		}
	}
}

func TestRoundUp(t *testing.T) {
	cases := []struct{ n, m, want int }{{32, 2, 32}, {33, 2, 34}, {10, 3, 12}, {1, 1, 1}}
	for _, c := range cases {
		if got := roundUp(c.n, c.m); got != c.want {
			t.Errorf("roundUp(%d,%d)=%d want %d", c.n, c.m, got, c.want)
		}
	}
}

func TestIsqrt(t *testing.T) {
	if isqrt(0) != 1 || isqrt(1) != 1 || isqrt(16) != 4 || isqrt(17) != 5 {
		t.Fatal("isqrt wrong")
	}
}

func TestRecovery2DWithIMR(t *testing.T) {
	// The 2-D decomposition over the in-memory buddy store: 4 app ranks
	// (even, so buddy pairing works), one failure, bitwise recovery with
	// nothing written to the PFS.
	resRef, sinkRef := run2D(t, core.StrategyNone, 4, 0, nil)
	if resRef.Failed {
		t.Fatal("reference failed")
	}
	ref := globalSum2D(t, sinkRef, 4)

	fail := &core.FailurePlan{Slot: 1, Iteration: 28}
	res, sink := run2D(t, core.StrategyFenixIMR, 4, 2, fail)
	if res.Failed || res.Err() != nil {
		t.Fatalf("failed: %v", res.Err())
	}
	if got := globalSum2D(t, sink, 4); got != ref {
		t.Fatalf("IMR 2-D recovered checksum %v != %v", got, ref)
	}
	if res.Cluster.PFS().SimBytes() != 0 {
		t.Fatalf("IMR wrote %d bytes to the PFS", res.Cluster.PFS().SimBytes())
	}
}
