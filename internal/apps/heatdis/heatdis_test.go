package heatdis

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

func quietMachine() *sim.Machine {
	m := sim.DefaultMachine()
	m.NoiseAmplitude = 0
	return m
}

func runHeatdis(t *testing.T, strat core.Strategy, spares int, cfg Config, fail *core.FailurePlan) (*core.Result, *Sink) {
	t.Helper()
	sink := NewSink()
	cc := core.Config{
		Strategy:           strat,
		Spares:             spares,
		CheckpointInterval: cfg.CheckpointInterval,
		CheckpointName:     "heatdis",
	}
	if fail != nil {
		cc.Failures = []*core.FailurePlan{fail}
	}
	job := mpi.JobConfig{Ranks: 4 + spares, Machine: quietMachine(), Seed: 11}
	res := core.Run(job, cc, App(cfg, sink))
	return res, sink
}

var testCfg = Config{
	BytesPerRank:       1 << 24, // 16 MB simulated
	Iterations:         30,
	CheckpointInterval: 10,
	ActualRows:         16,
	ActualCols:         32,
}

func refChecksum(t *testing.T) float64 {
	t.Helper()
	res, sink := runHeatdis(t, core.StrategyNone, 0, testCfg, nil)
	if res.Failed || res.Err() != nil {
		t.Fatalf("reference failed: %v", res.Err())
	}
	sum, err := sink.GlobalChecksum(4)
	if err != nil {
		t.Fatal(err)
	}
	if sum == 0 {
		t.Fatal("reference checksum is zero; solver did nothing")
	}
	return sum
}

func TestPhysicsHeatPropagates(t *testing.T) {
	res, sink := runHeatdis(t, core.StrategyNone, 0, testCfg, nil)
	if res.Failed {
		t.Fatal("run failed")
	}
	// Rank 0 holds the heat source; its checksum must dominate, and
	// downstream ranks must have received some heat through halos.
	r0, _ := sink.Get(0)
	r1, _ := sink.Get(1)
	if r0.Checksum <= 0 {
		t.Fatalf("rank 0 checksum %v", r0.Checksum)
	}
	if r1.Checksum <= 0 {
		t.Fatalf("heat did not propagate to rank 1 (checksum %v)", r1.Checksum)
	}
	if r1.Checksum >= r0.Checksum {
		t.Fatalf("rank 1 (%v) hotter than source rank 0 (%v)", r1.Checksum, r0.Checksum)
	}
}

func TestDeltaDecreasesMonotonically(t *testing.T) {
	cfg := testCfg
	cfg.Iterations = 5
	_, sinkShort := runHeatdis(t, core.StrategyNone, 0, cfg, nil)
	cfg.Iterations = 50
	_, sinkLong := runHeatdis(t, core.StrategyNone, 0, cfg, nil)
	s5, _ := sinkShort.Get(0)
	s50, _ := sinkLong.Get(0)
	if s50.Delta >= s5.Delta {
		t.Fatalf("residual did not decrease: %v (5 iters) vs %v (50 iters)", s5.Delta, s50.Delta)
	}
}

func TestAllStrategiesMatchReferenceNoFailure(t *testing.T) {
	ref := refChecksum(t)
	for _, strat := range core.Strategies() {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			spares := 0
			if strat.UsesFenix() {
				spares = 2 // keep resilient comm even (4) for IMR
			}
			res, sink := runHeatdis(t, strat, spares, testCfg, nil)
			if res.Failed || res.Err() != nil {
				t.Fatalf("failed: %v", res.Err())
			}
			sum, err := sink.GlobalChecksum(4)
			if err != nil {
				t.Fatal(err)
			}
			if sum != ref {
				t.Fatalf("checksum %v != reference %v", sum, ref)
			}
		})
	}
}

func TestRecoveryMatchesReference(t *testing.T) {
	ref := refChecksum(t)
	for _, strat := range []core.Strategy{core.StrategyVeloC, core.StrategyKRVeloC,
		core.StrategyFenixVeloC, core.StrategyFenixKRVeloC, core.StrategyFenixIMR} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			spares := 0
			if strat.UsesFenix() {
				spares = 2
			}
			// Checkpoints at iterations 9, 19, 29; fail at 19+9 = 28 (95%
			// of the way from checkpoint 19 to 29).
			fail := &core.FailurePlan{Slot: 2, Iteration: 28}
			res, sink := runHeatdis(t, strat, spares, testCfg, fail)
			if res.Failed || res.Err() != nil {
				t.Fatalf("failed: %v", res.Err())
			}
			if !fail.Fired() {
				t.Fatal("failure never fired")
			}
			sum, err := sink.GlobalChecksum(4)
			if err != nil {
				t.Fatal(err)
			}
			if sum != ref {
				t.Fatalf("recovered checksum %v != reference %v (bitwise)", sum, ref)
			}
		})
	}
}

func TestConvergenceVariant(t *testing.T) {
	cfg := testCfg
	cfg.Convergence = true
	cfg.Epsilon = 0.05
	cfg.MaxIterations = 2000
	res, sink := runHeatdis(t, core.StrategyNone, 0, cfg, nil)
	if res.Failed {
		t.Fatal("run failed")
	}
	r, _ := sink.Get(0)
	if r.Delta >= cfg.Epsilon {
		t.Fatalf("did not converge: delta %v", r.Delta)
	}
	if r.Iterations >= cfg.MaxIterations {
		t.Fatal("hit iteration cap")
	}
}

func TestPartialRollbackConverges(t *testing.T) {
	cfg := testCfg
	cfg.Convergence = true
	cfg.Epsilon = 0.05
	cfg.MaxIterations = 2000

	// Reference: converged failure-free run.
	resRef, sinkRef := runHeatdis(t, core.StrategyNone, 0, cfg, nil)
	if resRef.Failed {
		t.Fatal("ref failed")
	}
	rRef, _ := sinkRef.Get(0)

	fail := &core.FailurePlan{Slot: 1, Iteration: 28}
	res, sink := runHeatdis(t, core.StrategyPartialRollback, 2, cfg, fail)
	if res.Failed || res.Err() != nil {
		t.Fatalf("partial rollback failed: %v", res.Err())
	}
	r, _ := sink.Get(0)
	if r.Delta >= cfg.Epsilon {
		t.Fatalf("did not re-converge after partial rollback: delta %v", r.Delta)
	}
	// The recovered answer approximates the reference (inconsistent state
	// is tolerated, not bitwise-identical).
	if math.Abs(r.Checksum-rRef.Checksum) > 0.05*math.Abs(rRef.Checksum)+1 {
		t.Fatalf("partial-rollback checksum %v too far from reference %v", r.Checksum, rRef.Checksum)
	}
}

func TestPartialRollbackCheaperRecomputeThanFull(t *testing.T) {
	cfg := testCfg
	cfg.Convergence = true
	cfg.Epsilon = 0.05
	cfg.MaxIterations = 2000

	failFull := &core.FailurePlan{Slot: 1, Iteration: 28}
	full, _ := runHeatdis(t, core.StrategyFenixKRVeloC, 2, cfg, failFull)
	failPart := &core.FailurePlan{Slot: 1, Iteration: 28}
	part, _ := runHeatdis(t, core.StrategyPartialRollback, 2, cfg, failPart)
	if full.Failed || part.Failed {
		t.Fatal("runs failed")
	}
	fullRe := full.MeanAppTimes().Get(trace.Recompute)
	partRe := part.MeanAppTimes().Get(trace.Recompute)
	if fullRe <= 0 {
		t.Fatal("full rollback recorded no recompute")
	}
	if partRe >= fullRe {
		t.Fatalf("partial rollback recompute (%v) not below full rollback (%v)", partRe, fullRe)
	}
}

func TestCheckpointSizeIsHalfAppData(t *testing.T) {
	cfg := testCfg
	sink := NewSink()
	cc := core.Config{Strategy: core.StrategyFenixKRVeloC, Spares: 1, CheckpointInterval: 10, CheckpointName: "h"}
	var mu sync.Mutex
	var captured int
	app := App(cfg, sink)
	res := core.Run(mpi.JobConfig{Ranks: 5, Machine: quietMachine(), Seed: 1}, cc, func(s *core.Session) error {
		err := app(s)
		if s.Rank() == 0 {
			ck, _, _ := s.Census().Bytes()
			mu.Lock()
			captured = ck
			mu.Unlock()
		}
		return err
	})
	if res.Failed {
		t.Fatal("run failed")
	}
	if captured != cfg.BytesPerRank/2 {
		t.Fatalf("checkpointed bytes %d, want half of %d", captured, cfg.BytesPerRank)
	}
}

func TestCensusHasAliasAndSkipped(t *testing.T) {
	cfg := testCfg
	sink := NewSink()
	cc := core.Config{Strategy: core.StrategyKRVeloC, CheckpointInterval: 10, CheckpointName: "h"}
	var mu sync.Mutex
	var ck, al, sk int
	app := App(cfg, sink)
	res := core.Run(mpi.JobConfig{Ranks: 2, Machine: quietMachine(), Seed: 1}, cc, func(s *core.Session) error {
		err := app(s)
		if s.Rank() == 0 {
			mu.Lock()
			ck, al, sk = s.Census().Counts()
			mu.Unlock()
		}
		return err
	})
	if res.Failed {
		t.Fatal("run failed")
	}
	if ck != 1 || al != 1 || sk != 1 {
		t.Fatalf("census = %d/%d/%d, want 1/1/1", ck, al, sk)
	}
}

func TestSimRows(t *testing.T) {
	cfg := Config{BytesPerRank: 1 << 30}
	if got := cfg.SimRows(); got != (1<<30)/(2*8*simCols) {
		t.Fatalf("SimRows = %d", got)
	}
}

func TestSingleRankRun(t *testing.T) {
	cfg := testCfg
	sink := NewSink()
	cc := core.Config{Strategy: core.StrategyNone, CheckpointInterval: 10}
	res := core.Run(mpi.JobConfig{Ranks: 1, Machine: quietMachine(), Seed: 1}, cc, App(cfg, sink))
	if res.Failed {
		t.Fatal("single-rank run failed")
	}
	if _, ok := sink.Get(0); !ok {
		t.Fatal("no result")
	}
}

func TestMultipleRanksPerNode(t *testing.T) {
	// 8 ranks packed 4-per-node: scratch keys, congestion windows, and
	// recovery all operate per node. The result must still match the
	// one-rank-per-node reference bitwise.
	sink1 := NewSink()
	cc := core.Config{Strategy: core.StrategyFenixKRVeloC, Spares: 2, CheckpointInterval: 10, CheckpointName: "pack"}
	cc.Failures = []*core.FailurePlan{{Slot: 3, Iteration: 28}}
	res := core.Run(mpi.JobConfig{Ranks: 10, RanksPerNode: 4, Machine: quietMachine(), Seed: 11},
		cc, App(testCfg, sink1))
	if res.Failed || res.Err() != nil {
		t.Fatalf("packed run failed: %v", res.Err())
	}
	sum1, err := sink1.GlobalChecksum(8)
	if err != nil {
		t.Fatal(err)
	}

	sink2 := NewSink()
	cc2 := core.Config{Strategy: core.StrategyNone, CheckpointInterval: 10}
	res2 := core.Run(mpi.JobConfig{Ranks: 8, Machine: quietMachine(), Seed: 11}, cc2, App(testCfg, sink2))
	if res2.Failed {
		t.Fatal("reference failed")
	}
	sum2, err := sink2.GlobalChecksum(8)
	if err != nil {
		t.Fatal(err)
	}
	if sum1 != sum2 {
		t.Fatalf("packed checksum %v != reference %v", sum1, sum2)
	}
}
