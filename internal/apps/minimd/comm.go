package minimd

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
)

// Halo bookkeeping lives in the haloSizes view so it is checkpointed and
// restored with the rest of the state: a recovered rank resumes with
// exactly the border lists that were active at the checkpoint.
const (
	hsDownSend = iota // atoms we send to the down neighbour
	hsUpSend          // atoms we send to the up neighbour
	// ghost counts received are symmetric: ghosts from down precede
	// ghosts from up in ghostX.
	hsDownRecv
	hsUpRecv
)

const (
	tagCounts = 21
	tagDown   = 22
	tagUp     = 23
)

func (st *state) nGhosts() int {
	sv := st.views
	return int(sv.haloSizes.At(hsDownRecv) + sv.haloSizes.At(hsUpRecv))
}

// setupBorders re-selects the border atoms on a neighbor-rebuild step and
// exchanges counts and positions with both z-neighbours. Runs inside the
// Communicator profiling section.
func (st *state) setupBorders(s *core.Session) error {
	if s.Size() == 1 {
		st.nGhost = 0
		return nil
	}
	sv := st.views
	down, up := st.packBorders()
	if (down+up)*3 > sv.sendBuf.Len() {
		return fmt.Errorf("minimd: border overflow: %d atoms > capacity %d", down+up, sv.sendBuf.Len()/3)
	}
	sv.haloSizes.Set(hsDownSend, int32(down))
	sv.haloSizes.Set(hsUpSend, int32(up))

	comm, p := s.Comm(), s.Proc()
	me, n := s.Rank(), s.Size()
	dn, upN := (me-1+n)%n, (me+1)%n

	// Exchange counts.
	cnts, err := comm.Sendrecv(p, dn, tagCounts, []byte{byte(down), byte(down >> 8)}, upN, tagCounts)
	if err != nil {
		return err
	}
	fromUp := int(cnts[0]) | int(cnts[1])<<8
	cnts, err = comm.Sendrecv(p, upN, tagCounts, []byte{byte(up), byte(up >> 8)}, dn, tagCounts)
	if err != nil {
		return err
	}
	fromDown := int(cnts[0]) | int(cnts[1])<<8
	if fromDown+fromUp > sv.ghostX.Len()/3 {
		return fmt.Errorf("minimd: ghost overflow: %d > capacity %d", fromDown+fromUp, sv.ghostX.Len()/3)
	}
	sv.haloSizes.Set(hsDownRecv, int32(fromDown))
	sv.haloSizes.Set(hsUpRecv, int32(fromUp))
	st.nGhost = fromDown + fromUp

	return st.communicate(s)
}

// communicate re-sends the positions of the established border atoms and
// refreshes ghostX — MiniMD's per-step comm.communicate. Runs inside the
// Communicator profiling section.
func (st *state) communicate(s *core.Session) error {
	if s.Size() == 1 {
		return nil
	}
	sv := st.views
	comm, p := s.Comm(), s.Proc()
	me, n := s.Rank(), s.Size()
	dn, upN := (me-1+n)%n, (me+1)%n
	down := int(sv.haloSizes.At(hsDownSend))
	up := int(sv.haloSizes.At(hsUpSend))
	fromDown := int(sv.haloSizes.At(hsDownRecv))
	fromUp := int(sv.haloSizes.At(hsUpRecv))
	st.nGhost = fromDown + fromUp

	// Repack current positions of the established border lists.
	for k := 0; k < down+up; k++ {
		i := int(sv.borderIdx.At(k))
		sv.sendBuf.Set(k*3+0, sv.x.At2(i, 0))
		sv.sendBuf.Set(k*3+1, sv.x.At2(i, 1))
		sv.sendBuf.Set(k*3+2, sv.x.At2(i, 2))
	}
	simHalf := st.simGhosts * 3 * 8 / 2
	if simHalf < 8 {
		simHalf = 8
	}

	// Both directions exchange with nonblocking operations, as MiniMD's
	// comm.communicate does: post receives, post sends, wait for all.
	// Down-borders travel to the down neighbour (we receive our up
	// neighbour's — the atoms just above our slab); up-borders travel up.
	rUp, err := comm.Irecv(p, upN, tagDown)
	if err != nil {
		return err
	}
	rDown, err := comm.Irecv(p, dn, tagUp)
	if err != nil {
		return err
	}
	sDown, err := comm.IsendSized(p, dn, tagDown, mpi.EncodeF64(sv.sendBuf.Data()[:down*3]), simHalf)
	if err != nil {
		return err
	}
	sUp, err := comm.IsendSized(p, upN, tagUp, mpi.EncodeF64(sv.sendBuf.Data()[down*3:(down+up)*3]), simHalf)
	if err != nil {
		return err
	}
	payloads, err := mpi.WaitAll([]*mpi.Request{rUp, rDown, sDown, sUp})
	if err != nil {
		return err
	}
	fromUpPos, err := mpi.DecodeF64(payloads[0])
	if err != nil {
		return err
	}
	fromDownPos, err := mpi.DecodeF64(payloads[1])
	if err != nil {
		return err
	}

	if len(fromDownPos) != fromDown*3 || len(fromUpPos) != fromUp*3 {
		return fmt.Errorf("minimd: ghost payload mismatch: got %d/%d, want %d/%d",
			len(fromDownPos)/3, len(fromUpPos)/3, fromDown, fromUp)
	}

	// Store ghosts: from-down first, then from-up, with periodic z shifts
	// at the global box boundaries.
	for g := 0; g < fromDown; g++ {
		z := fromDownPos[g*3+2]
		if me == 0 {
			z -= st.lzGlob
		}
		sv.ghostX.Set2(g, 0, fromDownPos[g*3+0])
		sv.ghostX.Set2(g, 1, fromDownPos[g*3+1])
		sv.ghostX.Set2(g, 2, z)
	}
	for g := 0; g < fromUp; g++ {
		z := fromUpPos[g*3+2]
		if me == n-1 {
			z += st.lzGlob
		}
		sv.ghostX.Set2(fromDown+g, 0, fromUpPos[g*3+0])
		sv.ghostX.Set2(fromDown+g, 1, fromUpPos[g*3+1])
		sv.ghostX.Set2(fromDown+g, 2, z)
	}

	// Pack/unpack compute cost at simulated scale.
	s.Proc().Compute(10 * float64(st.simGhosts))
	return nil
}
