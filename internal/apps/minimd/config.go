// Package minimd reproduces Sandia's MiniMD molecular-dynamics mini-app,
// the paper's second evaluation application: a Lennard-Jones solid on an
// FCC lattice, slab-decomposed across ranks, with the three profiled
// phases the paper reports in Figure 6 — the compute-bound "Force
// Compute", the mostly-local "Neighboring" (binning and neighbor-list
// builds), and the communication-bound "Communicator" (border/ghost
// exchanges).
//
// As with Heatdis, the simulation size (e.g. 200^3 unit cells) drives the
// cost model while the actual arithmetic runs on a small per-rank lattice,
// keeping runs fast and results bit-exact for recovery testing. The view
// inventory matches the census in the paper's Figure 7: 61 captured view
// objects — 39 checkpointed, 3 user-declared aliases (swap space), and 19
// duplicate captures detected and skipped automatically.
package minimd

// Config parameterizes a MiniMD run.
type Config struct {
	// Size is the simulated problem edge in unit cells: the global system
	// is Size^3 cells with 4 atoms each, split into rank slabs.
	Size int
	// Steps is the number of timesteps.
	Steps int
	// CheckpointInterval checkpoints every k-th step.
	CheckpointInterval int
	// NeighborEvery rebuilds neighbor lists every k-th step.
	NeighborEvery int
	// ActualCells is the real per-rank lattice edge in unit cells
	// (ActualCells^3 cells, 4 atoms each). Defaults to 3 (108 atoms).
	ActualCells int
	// Dt is the integration timestep.
	Dt float64
	// Cutoff is the LJ interaction cutoff in lattice units.
	Cutoff float64
}

func (c *Config) normalize() {
	if c.Size <= 0 {
		c.Size = 100
	}
	if c.Steps <= 0 {
		c.Steps = 60
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 10
	}
	if c.NeighborEvery <= 0 {
		c.NeighborEvery = 10
	}
	if c.ActualCells <= 0 {
		c.ActualCells = 3
	}
	if c.Dt <= 0 {
		c.Dt = 0.002
	}
	if c.Cutoff <= 0 {
		c.Cutoff = 1.6
	}
}

// SimAtomsPerRank returns the simulated atom count per rank for p ranks.
func (c Config) SimAtomsPerRank(p int) int {
	cc := c
	cc.normalize()
	total := 4 * cc.Size * cc.Size * cc.Size
	return total / p
}

// SimBorderAtoms returns the simulated ghost/border atom count per rank: a
// one-cutoff-deep layer of the slab's two faces.
func (c Config) SimBorderAtoms(p int) int {
	cc := c
	cc.normalize()
	// A slab face holds 4*Size^2 atoms per cell layer; two faces, and a
	// cutoff under two lattice units deep keeps it to ~2 layers per face.
	perFace := 4 * cc.Size * cc.Size * 2
	if p == 1 {
		return 0
	}
	return 2 * perFace
}

// simNeighborsPerAtom is the average LJ neighbor count used for cost
// scaling (a 2.5-sigma cutoff in an FCC solid sees ~76 neighbors).
const simNeighborsPerAtom = 76

// opsPerNeighbor is the cost-model work per neighbor interaction in the
// force kernel (~one LJ pair evaluation). Calibrated so the checkpoint
// interval comfortably exceeds the asynchronous flush time at the paper's
// scales.
const opsPerNeighbor = 25

// neighborBuildOps is the cost-model work per atom for one neighbor-list
// rebuild (binning, sorting, candidate scans); amortized over
// NeighborEvery steps it keeps Neighboring at roughly a tenth of the
// force-compute time, as MiniMD's own profile shows.
const neighborBuildOps = 2000
