package minimd

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/kokkos"
	"repro/internal/kr"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// Result is one rank's final state.
type Result struct {
	Rank     int
	Steps    int
	Checksum float64
	Temp     float64
	PE       float64
}

// Sink collects per-logical-rank results.
type Sink struct {
	mu      sync.Mutex
	results map[int]Result
}

// NewSink returns an empty sink.
func NewSink() *Sink { return &Sink{results: make(map[int]Result)} }

// Put records rank's result.
func (s *Sink) Put(r Result) {
	s.mu.Lock()
	s.results[r.Rank] = r
	s.mu.Unlock()
}

// Get returns rank's result.
func (s *Sink) Get(rank int) (Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.results[rank]
	return r, ok
}

// GlobalChecksum sums per-rank checksums over n ranks.
func (s *Sink) GlobalChecksum(n int) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum float64
	for r := 0; r < n; r++ {
		res, ok := s.results[r]
		if !ok {
			return 0, fmt.Errorf("minimd: rank %d produced no result", r)
		}
		sum += res.Checksum
	}
	return sum, nil
}

// thermoEvery controls how often global thermodynamics are reduced.
const thermoEvery = 10

// App builds the MiniMD application body for core.Run.
func App(cfg Config, sink *Sink) core.App {
	cfg.normalize()
	return func(s *core.Session) error {
		resume := s.ResumeIteration()
		p := s.Proc()
		rec := p.Recorder()
		dt := cfg.Dt

		// Reuse the survivor's state only when a checkpoint will realign
		// it at the resume iteration; otherwise (fresh start, recovered
		// replacement, or a failure before any checkpoint existed) every
		// rank rebuilds from scratch so the collective schedule matches.
		var st *state
		if v, ok := s.Store["minimd"]; ok && resume >= 0 {
			st = v.(*state)
		} else {
			st = newState(&cfg, s.Rank(), s.Size())
			s.Store["minimd"] = st
			for alias, primary := range map[string]string{"x_swap": "x", "v_swap": "v", "f_swap": "f"} {
				s.DeclareAliases(primary, alias)
			}
			// Application setup cost at the simulated scale: lattice
			// construction, large allocations, input parsing. MiniMD's
			// higher initialization cost (vs Heatdis) is why the paper sees
			// larger Fenix savings for it — a relaunch re-pays this on
			// every rank, Fenix only on the replacement.
			p.ChargeTime(trace.Other, 50*float64(st.simAtoms)/p.Machine().ComputeRate+1.0)
			if resume < 0 {
				// Initial borders / neighbor lists / forces. Skipped when
				// resuming: the restore at the resume iteration supplies
				// all of this state.
				rec.BeginSection(trace.Communicator)
				err := st.setupBorders(s)
				rec.EndSection()
				if err != nil {
					return s.Check(err)
				}
				rec.BeginSection(trace.Neighboring)
				st.buildNeighbors()
				p.Compute(neighborBuildOps * float64(st.simAtoms))
				rec.EndSection()
				rec.BeginSection(trace.ForceCompute)
				st.ljForce()
				p.Compute(opsPerNeighbor * simNeighborsPerAtom * float64(st.simAtoms))
				rec.EndSection()
			}
		}
		sv := st.views

		start := 0
		if resume >= 0 {
			start = resume
		}
		var lastPE, lastKE float64
		for i := start; i < cfg.Steps; i++ {
			err := s.Checkpoint("minimd", i, sv.capture, func() error {
				// Velocity Verlet: first half-kick + drift.
				for a := 0; a < st.n; a++ {
					for d := 0; d < 3; d++ {
						sv.v.Set2(a, d, sv.v.At2(a, d)+0.5*dt*sv.f.At2(a, d))
						sv.x.Set2(a, d, sv.x.At2(a, d)+dt*sv.v.At2(a, d))
					}
				}
				st.wrapXY()
				p.Compute(12 * float64(st.simAtoms))

				// Communication / neighboring phase. Rebuild steps first
				// spatially sort the atoms (cache locality, MiniMD's
				// atom->bin sort), which invalidates borders and lists.
				if i%cfg.NeighborEvery == 0 {
					rec.BeginSection(trace.Neighboring)
					st.sortAtoms()
					p.Compute(8 * float64(st.simAtoms))
					rec.EndSection()
					rec.BeginSection(trace.Communicator)
					err := st.setupBorders(s)
					rec.EndSection()
					if err != nil {
						return err
					}
					rec.BeginSection(trace.Neighboring)
					st.buildNeighbors()
					p.Compute(neighborBuildOps * float64(st.simAtoms))
					rec.EndSection()
				} else {
					rec.BeginSection(trace.Communicator)
					err := st.communicate(s)
					rec.EndSection()
					if err != nil {
						return err
					}
				}

				// Force computation, run as a resilient region: it is the
				// step's compute-bound, communication-free kernel, so the SDC
				// layer may replay or duplicate it locally. Positions are
				// included because a flip there corrupts forces on every
				// subsequent step.
				rec.BeginSection(trace.ForceCompute)
				rerr := s.Region("minimd.force", []kokkos.View{sv.x, sv.f}, func() {
					lastPE = st.ljForce()
					p.Compute(opsPerNeighbor * simNeighborsPerAtom * float64(st.simAtoms))
				})
				rec.EndSection()
				if rerr != nil {
					return rerr
				}

				// Second half-kick.
				for a := 0; a < st.n; a++ {
					for d := 0; d < 3; d++ {
						sv.v.Set2(a, d, sv.v.At2(a, d)+0.5*dt*sv.f.At2(a, d))
					}
				}
				p.Compute(6 * float64(st.simAtoms))
				lastKE = st.kineticEnergy()
				sv.peAcc.Set(0, lastPE)
				sv.keAcc.Set(0, lastKE)
				sv.stepCounter.Set(0, int32(i))
				return nil
			})
			if err != nil {
				return err
			}

			// Periodic global thermodynamics (outside the region body so
			// the recovery iteration stays aligned across ranks).
			if (i+1)%thermoEvery == 0 {
				vals, err := s.Comm().AllreduceF64(p, []float64{sv.peAcc.At(0), sv.keAcc.At(0)}, mpi.OpSum)
				if err != nil {
					return s.Check(err)
				}
				slot := (i / thermoEvery) % sv.energyHist.Len()
				sv.energyHist.Set(slot, vals[0]+vals[1])
				sv.tempHist.Set(slot, 2*vals[1]/(3*float64(st.simAtoms)*float64(s.Size())))
			}
		}

		sink.Put(Result{
			Rank:     s.Rank(),
			Steps:    cfg.Steps,
			Checksum: st.checksum(),
			Temp:     2 * lastKE / (3 * float64(st.n)),
			PE:       lastPE,
		})
		return nil
	}
}

// ViewCensus returns the Figure 7 census for a simulated problem of edge
// `size` unit cells on `ranks` ranks, using dry (metadata-only) views so
// arbitrarily large sizes can be classified.
func ViewCensus(size, ranks int) kr.Census {
	cfg := Config{Size: size}
	cfg.normalize()
	simAtoms := cfg.SimAtomsPerRank(ranks)
	simGhosts := cfg.SimBorderAtoms(ranks)
	if ranks == 1 {
		simGhosts = 2 * 4 * size * size * 2 // census convention: count the border layers
	}
	sv := buildViews(true, 4, 1, 1, simAtoms, simGhosts)
	return kr.CensusOf(sv.capture, aliasSet())
}
