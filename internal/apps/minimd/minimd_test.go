package minimd

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

func quietMachine() *sim.Machine {
	m := sim.DefaultMachine()
	m.NoiseAmplitude = 0
	return m
}

var testCfg = Config{
	Size:               50,
	Steps:              30,
	CheckpointInterval: 10,
	NeighborEvery:      10,
	ActualCells:        3,
}

func runMiniMD(t *testing.T, strat core.Strategy, spares int, cfg Config, fail *core.FailurePlan) (*core.Result, *Sink) {
	t.Helper()
	sink := NewSink()
	cc := core.Config{
		Strategy:           strat,
		Spares:             spares,
		CheckpointInterval: cfg.CheckpointInterval,
		CheckpointName:     "minimd",
	}
	if fail != nil {
		cc.Failures = []*core.FailurePlan{fail}
	}
	job := mpi.JobConfig{Ranks: 4 + spares, Machine: quietMachine(), Seed: 23}
	res := core.Run(job, cc, App(cfg, sink))
	return res, sink
}

func refChecksum(t *testing.T) float64 {
	t.Helper()
	res, sink := runMiniMD(t, core.StrategyNone, 0, testCfg, nil)
	if res.Failed || res.Err() != nil {
		t.Fatalf("reference failed: %v", res.Err())
	}
	sum, err := sink.GlobalChecksum(4)
	if err != nil {
		t.Fatal(err)
	}
	if sum == 0 {
		t.Fatal("zero checksum")
	}
	return sum
}

func TestLatticeConstruction(t *testing.T) {
	cfg := testCfg
	cfg.normalize()
	st := newState(&cfg, 0, 4)
	if st.n != 4*27 {
		t.Fatalf("atoms = %d", st.n)
	}
	// All atoms inside the slab.
	for i := 0; i < st.n; i++ {
		z := st.views.x.At2(i, 2)
		if z < st.zlo-0.1 || z > st.zlo+st.lzLocal+0.1 {
			t.Fatalf("atom %d z=%v outside slab [%v,%v]", i, z, st.zlo, st.zlo+st.lzLocal)
		}
	}
	// Distinct ranks get distinct slabs.
	st1 := newState(&cfg, 1, 4)
	if st1.zlo <= st.zlo {
		t.Fatal("rank 1 slab not above rank 0")
	}
}

func TestForcesNearZeroAtEquilibrium(t *testing.T) {
	// An unperturbed FCC lattice at the equilibrium constant experiences
	// near-zero net force per atom.
	cfg := testCfg
	cfg.normalize()
	st := newState(&cfg, 0, 1)
	// Remove the random perturbation for this check.
	i := 0
	for cx := 0; cx < cfg.ActualCells; cx++ {
		for cy := 0; cy < cfg.ActualCells; cy++ {
			for cz := 0; cz < cfg.ActualCells; cz++ {
				for _, off := range fccOffsets {
					st.views.x.Set2(i, 0, (float64(cx)+off[0])*latticeA)
					st.views.x.Set2(i, 1, (float64(cy)+off[1])*latticeA)
					st.views.x.Set2(i, 2, (float64(cz)+off[2])*latticeA)
					i++
				}
			}
		}
	}
	st.nGhost = 0
	st.buildNeighbors()
	pe := st.ljForce()
	if pe >= 0 {
		t.Fatalf("lattice PE %v not negative (not bound)", pe)
	}
	var maxF float64
	for a := 0; a < st.n; a++ {
		for d := 0; d < 3; d++ {
			if f := math.Abs(st.views.f.At2(a, d)); f > maxF {
				maxF = f
			}
		}
	}
	if maxF > 1e-6 {
		t.Fatalf("max |F| = %v on perfect lattice, want ~0", maxF)
	}
}

func TestNeighborCountsReasonable(t *testing.T) {
	cfg := testCfg
	cfg.normalize()
	st := newState(&cfg, 0, 1)
	st.nGhost = 0
	st.buildNeighbors()
	// With cutoff+skin 1.9 and a=1.5874, interior atoms see 12 (first
	// shell) + 6 (second shell) = 18 neighbors; edges see fewer due to
	// the non-periodic z faces of a single rank... (z IS periodic via
	// minimum image for 1 rank, x/y periodic) so all see 18.
	for i := 0; i < st.n; i++ {
		nn := int(st.views.neighNum.At(i))
		if nn < 12 || nn > maxNeighbors {
			t.Fatalf("atom %d has %d neighbors", i, nn)
		}
	}
}

func TestEnergyBounded(t *testing.T) {
	// The solid must not blow up over the run: kinetic energy stays
	// bounded (no NaN, no explosion).
	res, sink := runMiniMD(t, core.StrategyNone, 0, testCfg, nil)
	if res.Failed {
		t.Fatal("run failed")
	}
	for r := 0; r < 4; r++ {
		got, ok := sink.Get(r)
		if !ok {
			t.Fatalf("rank %d missing", r)
		}
		if math.IsNaN(got.Checksum) || math.IsInf(got.Checksum, 0) {
			t.Fatalf("rank %d checksum %v", r, got.Checksum)
		}
		if got.Temp < 0 || got.Temp > 10 {
			t.Fatalf("rank %d temperature %v diverged", r, got.Temp)
		}
		if got.PE >= 0 {
			t.Fatalf("rank %d PE %v: solid melted or exploded", r, got.PE)
		}
	}
}

func TestSectionsRecorded(t *testing.T) {
	res, _ := runMiniMD(t, core.StrategyNone, 0, testCfg, nil)
	mean := res.MeanAppTimes()
	for _, c := range []trace.Category{trace.ForceCompute, trace.Neighboring, trace.Communicator} {
		if mean.Get(c) <= 0 {
			t.Fatalf("section %v has no recorded time", c)
		}
	}
	// Force compute dominates neighbor time (76 neighbors * 6 ops vs 30).
	if mean.Get(trace.ForceCompute) <= mean.Get(trace.Neighboring) {
		t.Fatalf("force (%v) not above neighboring (%v)",
			mean.Get(trace.ForceCompute), mean.Get(trace.Neighboring))
	}
}

func TestAllStrategiesMatchReferenceNoFailure(t *testing.T) {
	ref := refChecksum(t)
	for _, strat := range []core.Strategy{core.StrategyVeloC, core.StrategyKRVeloC,
		core.StrategyFenixVeloC, core.StrategyFenixKRVeloC, core.StrategyFenixIMR} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			spares := 0
			if strat.UsesFenix() {
				spares = 2
			}
			res, sink := runMiniMD(t, strat, spares, testCfg, nil)
			if res.Failed || res.Err() != nil {
				t.Fatalf("failed: %v", res.Err())
			}
			sum, err := sink.GlobalChecksum(4)
			if err != nil {
				t.Fatal(err)
			}
			if sum != ref {
				t.Fatalf("checksum %v != %v", sum, ref)
			}
		})
	}
}

func TestRecoveryMatchesReference(t *testing.T) {
	ref := refChecksum(t)
	for _, strat := range []core.Strategy{core.StrategyKRVeloC, core.StrategyFenixKRVeloC, core.StrategyFenixIMR} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			spares := 0
			if strat.UsesFenix() {
				spares = 2
			}
			// Checkpoints at steps 9, 19, 29; fail at 28.
			fail := &core.FailurePlan{Slot: 1, Iteration: 28}
			res, sink := runMiniMD(t, strat, spares, testCfg, fail)
			if res.Failed || res.Err() != nil {
				t.Fatalf("failed: %v", res.Err())
			}
			if !fail.Fired() {
				t.Fatal("failure never fired")
			}
			sum, err := sink.GlobalChecksum(4)
			if err != nil {
				t.Fatal(err)
			}
			if sum != ref {
				t.Fatalf("recovered checksum %v != %v (bitwise)", sum, ref)
			}
		})
	}
}

func TestFailureBeforeFirstCheckpoint(t *testing.T) {
	ref := refChecksum(t)
	fail := &core.FailurePlan{Slot: 2, Iteration: 5} // before checkpoint at 9
	res, sink := runMiniMD(t, core.StrategyFenixKRVeloC, 2, testCfg, fail)
	if res.Failed || res.Err() != nil {
		t.Fatalf("failed: %v", res.Err())
	}
	sum, err := sink.GlobalChecksum(4)
	if err != nil {
		t.Fatal(err)
	}
	if sum != ref {
		t.Fatalf("restart-from-scratch checksum %v != %v", sum, ref)
	}
}

func TestViewCensusMatchesFigure7Counts(t *testing.T) {
	for _, size := range []int{100, 200, 300, 400} {
		c := ViewCensus(size, 64)
		ck, al, sk := c.Counts()
		if c.TotalViews() != 61 || ck != 39 || al != 3 || sk != 19 {
			t.Fatalf("size %d: census %d views %d/%d/%d, want 61 total 39/3/19", size, c.TotalViews(), ck, al, sk)
		}
		ckB, alB, skB := c.Bytes()
		total := float64(ckB + alB + skB)
		if total <= 0 {
			t.Fatalf("size %d: zero census bytes", size)
		}
		// Shape from the paper's Figure 7: checkpointed data is the
		// majority-ish share, skipped is substantial (big duplicated
		// views), alias is the smallest slice.
		if float64(ckB)/total < 0.35 {
			t.Fatalf("size %d: checkpointed share %.2f too small", size, float64(ckB)/total)
		}
		if float64(skB)/total < 0.1 {
			t.Fatalf("size %d: skipped share %.2f too small", size, float64(skB)/total)
		}
		if alB >= ckB || alB >= skB {
			t.Fatalf("size %d: alias share not smallest (%d/%d/%d)", size, ckB, alB, skB)
		}
	}
}

func TestCensusSingleViewDominates(t *testing.T) {
	// "A single view contains the majority of the data" among the
	// checkpointed views: the neighbor list.
	c := ViewCensus(200, 64)
	var biggest, totalCk int
	for _, r := range c.Records {
		if r.Class.String() == "Checkpointed" {
			totalCk += r.Bytes
			if r.Bytes > biggest {
				biggest = r.Bytes
			}
		}
	}
	if float64(biggest)/float64(totalCk) < 0.5 {
		t.Fatalf("largest checkpointed view holds %.2f of checkpointed bytes, want majority",
			float64(biggest)/float64(totalCk))
	}
}

func TestSimSizing(t *testing.T) {
	cfg := Config{Size: 100}
	if got := cfg.SimAtomsPerRank(4); got != 4*100*100*100/4 {
		t.Fatalf("SimAtomsPerRank = %d", got)
	}
	if cfg.SimBorderAtoms(1) != 0 {
		t.Fatal("single rank should have no border atoms")
	}
	if cfg.SimBorderAtoms(4) <= 0 {
		t.Fatal("no border atoms for 4 ranks")
	}
}

func TestTwoRankRun(t *testing.T) {
	sink := NewSink()
	cc := core.Config{Strategy: core.StrategyNone, CheckpointInterval: 10}
	cfg := testCfg
	res := core.Run(mpi.JobConfig{Ranks: 2, Machine: quietMachine(), Seed: 5}, cc, App(cfg, sink))
	if res.Failed || res.Err() != nil {
		t.Fatalf("2-rank run failed: %v", res.Err())
	}
}

func TestSingleRankRun(t *testing.T) {
	sink := NewSink()
	cc := core.Config{Strategy: core.StrategyNone, CheckpointInterval: 10}
	res := core.Run(mpi.JobConfig{Ranks: 1, Machine: quietMachine(), Seed: 5}, cc, App(testCfg, sink))
	if res.Failed || res.Err() != nil {
		t.Fatalf("1-rank run failed: %v", res.Err())
	}
	if _, ok := sink.Get(0); !ok {
		t.Fatal("no result")
	}
}
