package minimd

import (
	"math"

	"repro/internal/sim"
)

// lattice constant: nearest-neighbour distance a/sqrt(2) equals the LJ
// equilibrium separation 2^(1/6), so the FCC solid is near its energy
// minimum and the dynamics stay bounded.
const latticeA = 1.5874

// fccOffsets are the four atom positions within a unit cell (in units of
// the lattice constant).
var fccOffsets = [4][3]float64{
	{0, 0, 0}, {0.5, 0.5, 0}, {0.5, 0, 0.5}, {0, 0.5, 0.5},
}

// state is one rank's MD state: the view inventory plus run geometry.
type state struct {
	views *systemViews
	cfg   *Config

	n       int     // owned atoms
	nGhost  int     // current ghost count
	lx, ly  float64 // box edge in x,y (periodic per rank)
	lzLocal float64 // slab thickness
	lzGlob  float64 // global box height
	zlo     float64 // slab lower bound (global coords)

	simAtoms  int
	simGhosts int
}

// newState builds the per-rank lattice for logical rank `rank` of `p`
// ranks. The jitter stream is keyed by logical rank so a recovered
// replacement reconstructs the identical initial state before restoring.
func newState(cfg *Config, rank, p int) *state {
	cells := cfg.ActualCells
	n := 4 * cells * cells * cells
	// Ghost capacity: two full boundary layers (one per face) plus slack.
	ghostCap := 2 * 4 * cells * cells * 2
	if p == 1 {
		ghostCap = 1
	}
	nbins := cells * cells * (cells + 2) // slab plus ghost margin
	st := &state{
		cfg:       cfg,
		n:         n,
		lx:        float64(cells) * latticeA,
		ly:        float64(cells) * latticeA,
		lzLocal:   float64(cells) * latticeA,
		simAtoms:  cfg.SimAtomsPerRank(p),
		simGhosts: cfg.SimBorderAtoms(p),
	}
	st.lzGlob = st.lzLocal * float64(p)
	st.zlo = st.lzLocal * float64(rank)
	st.views = buildViews(false, n, nbins, ghostCap, st.simAtoms, st.simGhosts)

	sv := st.views
	rng := sim.NewRNG(0xD1CE).Split(uint64(rank))
	i := 0
	for cx := 0; cx < cells; cx++ {
		for cy := 0; cy < cells; cy++ {
			for cz := 0; cz < cells; cz++ {
				for _, off := range fccOffsets {
					x := (float64(cx) + off[0]) * latticeA
					y := (float64(cy) + off[1]) * latticeA
					z := st.zlo + (float64(cz)+off[2])*latticeA
					// Tiny deterministic perturbation to break symmetry.
					sv.x.Set2(i, 0, x+0.01*(rng.Float64()-0.5))
					sv.x.Set2(i, 1, y+0.01*(rng.Float64()-0.5))
					sv.x.Set2(i, 2, z+0.01*(rng.Float64()-0.5))
					sv.v.Set2(i, 0, 0.1*(rng.Float64()-0.5))
					sv.v.Set2(i, 1, 0.1*(rng.Float64()-0.5))
					sv.v.Set2(i, 2, 0.1*(rng.Float64()-0.5))
					sv.atomID.Set(i, int32(i))
					i++
				}
			}
		}
	}
	for i := 0; i < 4; i++ {
		sv.mass.Set(i, 1)
	}
	sv.boxLo.Set(0, 0)
	sv.boxLo.Set(1, 0)
	sv.boxLo.Set(2, st.zlo)
	sv.boxHi.Set(0, st.lx)
	sv.boxHi.Set(1, st.ly)
	sv.boxHi.Set(2, st.zlo+st.lzLocal)
	sv.latticeParams.Set(0, latticeA)
	sv.dtParams.Set(0, cfg.Dt)
	sv.cutoffParams.Set(0, cfg.Cutoff)
	return st
}

// minImage applies the minimum-image convention along a periodic axis.
func minImage(d, l float64) float64 {
	if d > l/2 {
		d -= l
	} else if d < -l/2 {
		d += l
	}
	return d
}

// packBorders collects the atoms within one cutoff of each z face into the
// send buffer and returns the per-face counts (down-face first).
func (st *state) packBorders() (downCount, upCount int) {
	sv := st.views
	rc := st.cfg.Cutoff + 0.3 // cutoff + skin
	idx := 0
	put := func(i int) {
		sv.borderIdx.Set(idx, int32(i))
		sv.sendBuf.Set(idx*3+0, sv.x.At2(i, 0))
		sv.sendBuf.Set(idx*3+1, sv.x.At2(i, 1))
		sv.sendBuf.Set(idx*3+2, sv.x.At2(i, 2))
		idx++
	}
	for i := 0; i < st.n; i++ {
		if sv.x.At2(i, 2)-st.zlo < rc {
			put(i)
		}
	}
	downCount = idx
	for i := 0; i < st.n; i++ {
		if st.zlo+st.lzLocal-sv.x.At2(i, 2) < rc {
			put(i)
		}
	}
	upCount = idx - downCount
	return downCount, upCount
}

// ljForce computes Lennard-Jones forces on owned atoms from the current
// neighbor lists (which index owned atoms in [0,n) and ghosts in [n,
// n+nGhost)), and returns the potential energy. Interactions are truncated
// and shifted at the cutoff. Forces on owned atoms only: each pair is
// visited from both sides (full neighbor lists), matching MiniMD's default
// half=false mode and keeping results independent of rank count.
func (st *state) ljForce() float64 {
	sv := st.views
	rc2 := st.cfg.Cutoff * st.cfg.Cutoff
	// Energy shift so U(rc) = 0.
	sr2c := 1.0 / rc2
	sr6c := sr2c * sr2c * sr2c
	eShift := 4 * (sr6c*sr6c - sr6c)

	pos := func(j int) (float64, float64, float64) {
		if j < st.n {
			return sv.x.At2(j, 0), sv.x.At2(j, 1), sv.x.At2(j, 2)
		}
		g := j - st.n
		return sv.ghostX.At2(g, 0), sv.ghostX.At2(g, 1), sv.ghostX.At2(g, 2)
	}

	var pe float64
	for i := 0; i < st.n; i++ {
		xi, yi, zi := sv.x.At2(i, 0), sv.x.At2(i, 1), sv.x.At2(i, 2)
		var fx, fy, fz, pei float64
		nn := int(sv.neighNum.At(i))
		for k := 0; k < nn; k++ {
			j := int(sv.neighList.At(i*maxNeighbors + k))
			xj, yj, zj := pos(j)
			dx := minImage(xi-xj, st.lx)
			dy := minImage(yi-yj, st.ly)
			dz := zi - zj
			if st.nGhost == 0 {
				dz = minImage(dz, st.lzGlob)
			}
			r2 := dx*dx + dy*dy + dz*dz
			if r2 >= rc2 || r2 == 0 {
				continue
			}
			sr2 := 1.0 / r2
			sr6 := sr2 * sr2 * sr2
			fpair := 24 * sr2 * sr6 * (2*sr6 - 1)
			fx += fpair * dx
			fy += fpair * dy
			fz += fpair * dz
			pei += 0.5 * (4*(sr6*sr6-sr6) - eShift)
		}
		sv.f.Set2(i, 0, fx)
		sv.f.Set2(i, 1, fy)
		sv.f.Set2(i, 2, fz)
		pe += pei
	}
	return pe
}

// buildNeighbors rebuilds the neighbor lists by binning owned and ghost
// atoms along z and scanning adjacent bins. Bin side >= cutoff+skin.
func (st *state) buildNeighbors() {
	sv := st.views
	rc := st.cfg.Cutoff + 0.3
	rc2 := rc * rc
	total := st.n + st.nGhost

	pos := func(j int) (float64, float64, float64) {
		if j < st.n {
			return sv.x.At2(j, 0), sv.x.At2(j, 1), sv.x.At2(j, 2)
		}
		g := j - st.n
		return sv.ghostX.At2(g, 0), sv.ghostX.At2(g, 1), sv.ghostX.At2(g, 2)
	}

	if st.nGhost == 0 {
		// Single rank: the box is fully periodic (minimum image in z as
		// well), which slab bins cannot express; with the small real
		// lattice an all-pairs scan is cheap and exact.
		for i := 0; i < st.n; i++ {
			xi, yi, zi := sv.x.At2(i, 0), sv.x.At2(i, 1), sv.x.At2(i, 2)
			cnt := 0
			for j := 0; j < total; j++ {
				if j == i {
					continue
				}
				xj, yj, zj := pos(j)
				dx := minImage(xi-xj, st.lx)
				dy := minImage(yi-yj, st.ly)
				dz := minImage(zi-zj, st.lzGlob)
				if dx*dx+dy*dy+dz*dz < rc2 && cnt < maxNeighbors {
					sv.neighList.Set(i*maxNeighbors+cnt, int32(j))
					cnt++
				}
			}
			sv.neighNum.Set(i, int32(cnt))
		}
		return
	}

	// Bin along z only (slab geometry): simple, deterministic, and O(N *
	// atoms-in-nearby-slabs) with the small real lattices in use. The bin
	// contents live in the binCount/binAtoms views so they are part of the
	// checkpointed state, like MiniMD's own bin arrays.
	zmin := st.zlo - rc
	binH := rc
	nbins := int((st.lzLocal+2*rc)/binH) + 2
	if nbins > st.views.binCount.Len() {
		nbins = st.views.binCount.Len()
	}
	perBin := sv.binAtoms.Len() / sv.binCount.Len()
	binOf := func(z float64) int {
		b := int((z - zmin) / binH)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		return b
	}
	for b := 0; b < nbins; b++ {
		sv.binCount.Set(b, 0)
	}
	// Overflow atoms (beyond a bin's capacity) spill to a side list so no
	// pair is ever lost.
	var spill []int32
	for j := 0; j < total; j++ {
		_, _, z := pos(j)
		b := binOf(z)
		cnt := int(sv.binCount.At(b))
		if cnt < perBin {
			sv.binAtoms.Set(b*perBin+cnt, int32(j))
			sv.binCount.Set(b, int32(cnt+1))
		} else {
			spill = append(spill, int32(j))
		}
	}
	bins := make([][]int32, nbins)
	for b := 0; b < nbins; b++ {
		cnt := int(sv.binCount.At(b))
		bins[b] = make([]int32, cnt)
		for k := 0; k < cnt; k++ {
			bins[b][k] = sv.binAtoms.At(b*perBin + k)
		}
	}
	for _, j := range spill {
		_, _, z := pos(int(j))
		bins[binOf(z)] = append(bins[binOf(z)], j)
	}

	for i := 0; i < st.n; i++ {
		xi, yi, zi := sv.x.At2(i, 0), sv.x.At2(i, 1), sv.x.At2(i, 2)
		cnt := 0
		b := binOf(zi)
		for db := -1; db <= 1; db++ {
			bb := b + db
			if bb < 0 || bb >= nbins {
				continue
			}
			for _, j32 := range bins[bb] {
				j := int(j32)
				if j == i {
					continue
				}
				xj, yj, zj := pos(j)
				dx := minImage(xi-xj, st.lx)
				dy := minImage(yi-yj, st.ly)
				dz := zi - zj
				if st.nGhost == 0 {
					dz = minImage(dz, st.lzGlob)
				}
				if dx*dx+dy*dy+dz*dz < rc2 && cnt < maxNeighbors {
					sv.neighList.Set(i*maxNeighbors+cnt, int32(j))
					cnt++
				}
			}
		}
		sv.neighNum.Set(i, int32(cnt))
	}
}

// sortAtoms reorders the owned atoms by z position (MiniMD's spatial sort
// for cache locality), permuting every per-atom view consistently. The
// sort is stable and deterministic; atom IDs track original identities.
// Neighbor lists and border lists are invalidated and must be rebuilt —
// the caller runs it only on neighbor-rebuild steps, before setupBorders.
func (st *state) sortAtoms() {
	sv := st.views
	n := st.n
	// Keys: z quantized to bins; stable order within a bin preserves
	// determinism.
	for i := 0; i < n; i++ {
		sv.sortKeys.Set(i, int32(sv.x.At2(i, 2)*1024))
		sv.sortPerm.Set(i, int32(i))
	}
	// Stable insertion sort on (key, original index): n is small and the
	// lattice is nearly sorted already.
	perm := sv.sortPerm.Data()
	keys := sv.sortKeys.Data()
	for i := 1; i < n; i++ {
		p, k := perm[i], keys[int(perm[i])]
		j := i - 1
		for j >= 0 && keys[int(perm[j])] > k {
			perm[j+1] = perm[j]
			j--
		}
		perm[j+1] = p
	}
	// Apply the permutation to every per-atom view.
	applyF64 := func(v []float64, comps int) {
		tmp := make([]float64, n*comps)
		for newI := 0; newI < n; newI++ {
			old := int(perm[newI])
			copy(tmp[newI*comps:(newI+1)*comps], v[old*comps:(old+1)*comps])
		}
		copy(v, tmp)
	}
	applyI32 := func(v []int32) {
		tmp := make([]int32, n)
		for newI := 0; newI < n; newI++ {
			tmp[newI] = v[int(perm[newI])]
		}
		copy(v, tmp)
	}
	applyF64(sv.x.Data(), 3)
	applyF64(sv.v.Data(), 3)
	applyF64(sv.f.Data(), 3)
	applyF64(sv.xold.Data(), 3)
	applyI32(sv.atomType.Data())
	applyI32(sv.atomID.Data())
}

// kineticEnergy returns the total kinetic energy of owned atoms.
func (st *state) kineticEnergy() float64 {
	sv := st.views
	var ke float64
	for i := 0; i < st.n; i++ {
		vx, vy, vz := sv.v.At2(i, 0), sv.v.At2(i, 1), sv.v.At2(i, 2)
		ke += 0.5 * (vx*vx + vy*vy + vz*vz)
	}
	return ke
}

// wrapXY applies periodic wrapping in the rank-local x,y directions.
func (st *state) wrapXY() {
	sv := st.views
	for i := 0; i < st.n; i++ {
		for d, l := range [2]float64{st.lx, st.ly} {
			v := math.Mod(sv.x.At2(i, d), l)
			if v < 0 {
				v += l
			}
			sv.x.Set2(i, d, v)
		}
	}
}

// checksum returns a deterministic digest of positions and velocities.
func (st *state) checksum() float64 {
	sv := st.views
	var sum float64
	for i := 0; i < st.n; i++ {
		w := float64(i%97 + 1)
		sum += w * (sv.x.At2(i, 0) + 2*sv.x.At2(i, 1) + 3*sv.x.At2(i, 2))
		sum += 0.5 * w * (sv.v.At2(i, 0) + sv.v.At2(i, 1) + sv.v.At2(i, 2))
	}
	return sum
}
