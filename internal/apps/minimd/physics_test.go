package minimd

import (
	"math"
	"testing"
)

// singleRankState builds a 1-rank state with neighbor lists ready.
func singleRankState(t *testing.T) *state {
	t.Helper()
	cfg := testCfg
	cfg.normalize()
	st := newState(&cfg, 0, 1)
	st.nGhost = 0
	st.buildNeighbors()
	return st
}

func TestNewtonThirdLawNetForce(t *testing.T) {
	// With full periodic boundaries every pair is counted from both
	// sides, so the total force must vanish (momentum conservation).
	st := singleRankState(t)
	st.ljForce()
	var fx, fy, fz float64
	for i := 0; i < st.n; i++ {
		fx += st.views.f.At2(i, 0)
		fy += st.views.f.At2(i, 1)
		fz += st.views.f.At2(i, 2)
	}
	if math.Abs(fx) > 1e-9 || math.Abs(fy) > 1e-9 || math.Abs(fz) > 1e-9 {
		t.Fatalf("net force (%v, %v, %v) != 0", fx, fy, fz)
	}
}

func TestEnergyConservationOverVerletSteps(t *testing.T) {
	// Velocity Verlet on the LJ solid conserves total energy to a small
	// drift over a few hundred steps.
	cfg := testCfg
	cfg.normalize()
	st := newState(&cfg, 0, 1)
	st.nGhost = 0
	st.buildNeighbors()
	pe := st.ljForce()
	e0 := pe + st.kineticEnergy()
	sv := st.views
	dt := cfg.Dt
	for step := 0; step < 300; step++ {
		for a := 0; a < st.n; a++ {
			for d := 0; d < 3; d++ {
				sv.v.Set2(a, d, sv.v.At2(a, d)+0.5*dt*sv.f.At2(a, d))
				sv.x.Set2(a, d, sv.x.At2(a, d)+dt*sv.v.At2(a, d))
			}
		}
		st.wrapXY()
		if step%10 == 0 {
			st.buildNeighbors()
		}
		pe = st.ljForce()
		for a := 0; a < st.n; a++ {
			for d := 0; d < 3; d++ {
				sv.v.Set2(a, d, sv.v.At2(a, d)+0.5*dt*sv.f.At2(a, d))
			}
		}
	}
	e1 := pe + st.kineticEnergy()
	drift := math.Abs(e1-e0) / math.Abs(e0)
	if drift > 0.02 {
		t.Fatalf("energy drift %.4f (E %v -> %v) exceeds 2%%", drift, e0, e1)
	}
}

func TestForceSymmetryUnderTranslation(t *testing.T) {
	// Rigidly translating all atoms (mod the box) leaves forces invariant.
	st := singleRankState(t)
	st.ljForce()
	f0 := make([]float64, st.n)
	for i := 0; i < st.n; i++ {
		f0[i] = st.views.f.At2(i, 0)
	}
	for i := 0; i < st.n; i++ {
		st.views.x.Set2(i, 1, st.views.x.At2(i, 1)+0.25)
	}
	st.wrapXY()
	st.buildNeighbors()
	st.ljForce()
	for i := 0; i < st.n; i++ {
		if math.Abs(st.views.f.At2(i, 0)-f0[i]) > 1e-9 {
			t.Fatalf("atom %d x-force changed under y-translation: %v vs %v",
				i, st.views.f.At2(i, 0), f0[i])
		}
	}
}

func TestMinImage(t *testing.T) {
	cases := []struct{ d, l, want float64 }{
		{0.4, 1.0, 0.4},
		{0.6, 1.0, -0.4},
		{-0.6, 1.0, 0.4},
		{0.5, 1.0, 0.5}, // boundary: |d| == l/2 stays
		{-0.5, 1.0, -0.5},
		{0, 1, 0},
	}
	for _, c := range cases {
		if got := minImage(c.d, c.l); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("minImage(%v,%v) = %v, want %v", c.d, c.l, got, c.want)
		}
	}
}

func TestPackBordersSelectsFaces(t *testing.T) {
	cfg := testCfg
	cfg.normalize()
	st := newState(&cfg, 1, 4) // middle rank of 4
	down, up := st.packBorders()
	if down <= 0 || up <= 0 {
		t.Fatalf("border counts %d/%d", down, up)
	}
	rc := cfg.Cutoff + 0.3
	sv := st.views
	// Every selected down-border atom is within rc of the lower face.
	for k := 0; k < down; k++ {
		i := int(sv.borderIdx.At(k))
		if sv.x.At2(i, 2)-st.zlo >= rc {
			t.Fatalf("down-border atom %d at depth %v >= %v", i, sv.x.At2(i, 2)-st.zlo, rc)
		}
	}
	for k := down; k < down+up; k++ {
		i := int(sv.borderIdx.At(k))
		if st.zlo+st.lzLocal-sv.x.At2(i, 2) >= rc {
			t.Fatalf("up-border atom %d too deep", i)
		}
	}
}

func TestGhostConsistencyAcrossRanks(t *testing.T) {
	// Build two adjacent rank states and verify that the ghosts rank 0
	// would receive from rank 1's down-border match rank 1's atoms.
	cfg := testCfg
	cfg.normalize()
	st0 := newState(&cfg, 0, 2)
	st1 := newState(&cfg, 1, 2)
	down1, _ := st1.packBorders()
	// st1's down-border atoms are just above st0's slab.
	for k := 0; k < down1; k++ {
		i := int(st1.views.borderIdx.At(k))
		z := st1.views.x.At2(i, 2)
		if z < st0.zlo+st0.lzLocal-0.01 {
			t.Fatalf("rank 1 down-border atom %d at z=%v inside rank 0's slab", i, z)
		}
		if z-st0.zlo-st0.lzLocal > cfg.Cutoff+0.31 {
			t.Fatalf("rank 1 down-border atom %d at z=%v too far from the boundary", i, z)
		}
	}
}

func TestChecksumSensitivity(t *testing.T) {
	st := singleRankState(t)
	c0 := st.checksum()
	st.views.x.Set2(3, 1, st.views.x.At2(3, 1)+1e-9)
	if st.checksum() == c0 {
		t.Fatal("checksum insensitive to a position perturbation")
	}
}

func TestSortAtomsPermutesConsistently(t *testing.T) {
	cfg := testCfg
	cfg.normalize()
	st := newState(&cfg, 0, 1)
	sv := st.views

	// Record (id -> position/velocity) before sorting.
	type atom struct{ x, y, z, vx float64 }
	before := map[int32]atom{}
	for i := 0; i < st.n; i++ {
		before[sv.atomID.At(i)] = atom{sv.x.At2(i, 0), sv.x.At2(i, 1), sv.x.At2(i, 2), sv.v.At2(i, 0)}
	}

	st.sortAtoms()

	// Sorted by z (non-decreasing keys).
	for i := 1; i < st.n; i++ {
		if int32(sv.x.At2(i, 2)*1024) < int32(sv.x.At2(i-1, 2)*1024) {
			t.Fatalf("atoms not z-sorted at %d", i)
		}
	}
	// Every atom's data moved together with its id.
	seen := map[int32]bool{}
	for i := 0; i < st.n; i++ {
		id := sv.atomID.At(i)
		if seen[id] {
			t.Fatalf("duplicate id %d after sort", id)
		}
		seen[id] = true
		b := before[id]
		if sv.x.At2(i, 0) != b.x || sv.x.At2(i, 1) != b.y || sv.x.At2(i, 2) != b.z || sv.v.At2(i, 0) != b.vx {
			t.Fatalf("atom id %d data scrambled by sort", id)
		}
	}
}

func TestSortAtomsDeterministic(t *testing.T) {
	cfg := testCfg
	cfg.normalize()
	a := newState(&cfg, 0, 1)
	b := newState(&cfg, 0, 1)
	a.sortAtoms()
	b.sortAtoms()
	for i := 0; i < a.n; i++ {
		if a.views.atomID.At(i) != b.views.atomID.At(i) {
			t.Fatalf("sort nondeterministic at %d", i)
		}
	}
}

func TestBinViewsPopulated(t *testing.T) {
	cfg := testCfg
	cfg.normalize()
	st := newState(&cfg, 1, 4)
	// Fake a small ghost set so the binned path runs.
	st.nGhost = 0
	st.views.haloSizes.Set(hsDownRecv, 0)
	st.views.haloSizes.Set(hsUpRecv, 0)
	// Multi-rank state but no ghosts: force the binned path by setting one.
	st.nGhost = 1
	st.views.ghostX.Set2(0, 0, 0)
	st.views.ghostX.Set2(0, 1, 0)
	st.views.ghostX.Set2(0, 2, st.zlo-0.5)
	st.buildNeighbors()
	total := 0
	for b := 0; b < st.views.binCount.Len(); b++ {
		total += int(st.views.binCount.At(b))
	}
	if total == 0 {
		t.Fatal("bin views not populated by neighbor build")
	}
	if total > st.n+st.nGhost {
		t.Fatalf("bin views hold %d entries for %d atoms", total, st.n+st.nGhost)
	}
}
