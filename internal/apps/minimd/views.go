package minimd

import (
	"repro/internal/kokkos"
)

// maxNeighbors bounds the real per-atom neighbor list.
const maxNeighbors = 96

// systemViews is the full Kokkos view inventory of the mini-app. Its
// capture list reproduces the census in the paper's Figure 7: 61 view
// objects reachable from the checkpoint lambda, of which 39 are unique
// allocations to checkpoint, 3 are user-declared swap-space aliases, and
// 19 are duplicate captures (the same allocation reachable through the
// force, communication, thermo, and neighbor objects).
type systemViews struct {
	// Primary state (large views).
	x, v, f, xold *kokkos.F64View
	// Swap space (aliases, never checkpointed).
	xSwap, vSwap, fSwap *kokkos.F64View
	// Neighbor machinery.
	neighList          *kokkos.I32View
	neighNum           *kokkos.I32View
	binCount, binAtoms *kokkos.I32View
	// Communication machinery.
	ghostX                 *kokkos.F64View
	sendBuf, recvBuf       *kokkos.F64View
	borderIdx              *kokkos.I32View
	commPlanUp, commPlanDn *kokkos.I32View
	haloSizes              *kokkos.I32View
	// Atom metadata.
	atomType           *kokkos.I32View
	atomID             *kokkos.I32View
	mass               *kokkos.F64View
	sortKeys, sortPerm *kokkos.I32View
	// Thermo / bookkeeping.
	peAcc, keAcc    *kokkos.F64View
	tempHist        *kokkos.F64View
	pressHist       *kokkos.F64View
	energyHist      *kokkos.F64View
	virialAcc       *kokkos.F64View
	stressTensor    *kokkos.F64View
	boxLo, boxHi    *kokkos.F64View
	latticeParams   *kokkos.F64View
	dtParams        *kokkos.F64View
	cutoffParams    *kokkos.F64View
	forceParams     *kokkos.F64View
	integrateParams *kokkos.F64View
	neighStats      *kokkos.F64View
	rngState        *kokkos.F64View
	binDims         *kokkos.I32View
	thermoStep      *kokkos.I32View
	stepCounter     *kokkos.I32View

	capture []kokkos.View // the 61-entry Figure 7 capture list
}

// buildViews constructs the inventory. n is the real per-rank atom count,
// nbins the real bin count, ghosts the real ghost capacity. When dry is
// true no storage is allocated (Figure 7 census at 400^3 scales). simAtoms
// and simGhosts size the cost model.
func buildViews(dry bool, n, nbins, ghosts, simAtoms, simGhosts int) *systemViews {
	f64 := func(label string, shape ...int) *kokkos.F64View {
		if dry {
			return kokkos.NewF64Dry(label, shape...)
		}
		return kokkos.NewF64(label, shape...)
	}
	i32 := func(label string, shape ...int) *kokkos.I32View {
		if dry {
			return kokkos.NewI32Dry(label, shape...)
		}
		return kokkos.NewI32(label, shape...)
	}

	sv := &systemViews{}
	sv.x = f64("x", n, 3)
	sv.v = f64("v", n, 3)
	sv.f = f64("f", n, 3)
	sv.xold = f64("xold", n, 3)
	sv.xSwap = f64("x_swap", n, 3)
	sv.vSwap = f64("v_swap", n, 3)
	sv.fSwap = f64("f_swap", n, 3)

	sv.neighList = i32("neigh_list", n, maxNeighbors)
	sv.neighNum = i32("neigh_num", n)
	sv.binCount = i32("bin_count", nbins)
	sv.binAtoms = i32("bin_atoms", nbins, 32)

	sv.ghostX = f64("ghost_x", ghosts, 3)
	sv.sendBuf = f64("send_buf", ghosts*3)
	sv.recvBuf = f64("recv_buf", ghosts*3)
	sv.borderIdx = i32("border_idx", ghosts)
	sv.commPlanUp = i32("comm_plan_up", 8)
	sv.commPlanDn = i32("comm_plan_dn", 8)
	sv.haloSizes = i32("halo_sizes", 4)

	sv.atomType = i32("type", n)
	sv.atomID = i32("atom_id", n)
	sv.mass = f64("mass", 4)
	sv.sortKeys = i32("sort_keys", n)
	sv.sortPerm = i32("sort_perm", n)

	sv.peAcc = f64("pe_acc", 1)
	sv.keAcc = f64("ke_acc", 1)
	sv.tempHist = f64("temp_hist", 64)
	sv.pressHist = f64("press_hist", 64)
	sv.energyHist = f64("energy_hist", 64)
	sv.virialAcc = f64("virial_acc", 6)
	sv.stressTensor = f64("stress_tensor", 9)
	sv.boxLo = f64("box_lo", 3)
	sv.boxHi = f64("box_hi", 3)
	sv.latticeParams = f64("lattice_params", 4)
	sv.dtParams = f64("dt_params", 2)
	sv.cutoffParams = f64("cutoff_params", 2)
	sv.forceParams = f64("force_params", 3)
	sv.integrateParams = f64("integrate_params", 3)
	sv.neighStats = f64("neigh_stats", 4)
	sv.rngState = f64("rng_state", 2)
	sv.binDims = i32("bin_dims", 3)
	sv.thermoStep = i32("thermo_step", 1)
	sv.stepCounter = i32("step_counter", 1)

	// Cost-model sizing: N-proportional views carry the simulated atom
	// count, ghost views the simulated border count.
	perAtomF64 := func(v *kokkos.F64View, comps int) { v.SetSimBytes(simAtoms * comps * 8) }
	perAtomF64(sv.x, 3)
	perAtomF64(sv.v, 3)
	perAtomF64(sv.f, 3)
	perAtomF64(sv.xold, 3)
	perAtomF64(sv.xSwap, 3)
	perAtomF64(sv.vSwap, 3)
	perAtomF64(sv.fSwap, 3)
	sv.neighList.SetSimBytes(simAtoms * simNeighborsPerAtom * 4)
	sv.neighNum.SetSimBytes(simAtoms * 4)
	sv.binCount.SetSimBytes(simAtoms / 2 * 4)
	sv.binAtoms.SetSimBytes(simAtoms * 4)
	sv.atomType.SetSimBytes(simAtoms * 4)
	sv.atomID.SetSimBytes(simAtoms * 4)
	sv.sortKeys.SetSimBytes(simAtoms * 4)
	sv.sortPerm.SetSimBytes(simAtoms * 4)
	gb := simGhosts * 3 * 8
	if gb < 8 {
		gb = 8
	}
	sv.ghostX.SetSimBytes(gb)
	sv.sendBuf.SetSimBytes(gb)
	sv.recvBuf.SetSimBytes(gb)
	sv.borderIdx.SetSimBytes(simGhosts*4 + 4)

	// The Figure 7 capture list: 39 unique + 3 aliases + 19 duplicates.
	sv.capture = []kokkos.View{
		// 39 unique allocations, checkpointed.
		sv.x, sv.v, sv.f, sv.xold,
		sv.neighList, sv.neighNum, sv.binCount, sv.binAtoms,
		sv.ghostX, sv.sendBuf, sv.recvBuf, sv.borderIdx,
		sv.commPlanUp, sv.commPlanDn, sv.haloSizes,
		sv.atomType, sv.atomID, sv.mass, sv.sortKeys, sv.sortPerm,
		sv.peAcc, sv.keAcc, sv.tempHist, sv.pressHist, sv.energyHist,
		sv.virialAcc, sv.stressTensor, sv.boxLo, sv.boxHi,
		sv.latticeParams, sv.dtParams, sv.cutoffParams, sv.forceParams,
		sv.integrateParams, sv.neighStats, sv.rngState, sv.binDims,
		sv.thermoStep, sv.stepCounter,
		// 3 swap-space aliases (declared via DeclareAliases).
		sv.xSwap, sv.vSwap, sv.fSwap,
		// 19 duplicate captures: the same allocations reachable through
		// the force, communication, thermo, neighbor, and sort objects.
		sv.x.Ref("x@force"), sv.x.Ref("x@comm"), sv.x.Ref("x@thermo"),
		sv.x.Ref("x@neighbor"), sv.x.Ref("x@sort"),
		sv.v.Ref("v@force"), sv.v.Ref("v@comm"), sv.v.Ref("v@thermo"),
		sv.v.Ref("v@integrate"),
		sv.f.Ref("f@force"), sv.f.Ref("f@comm"),
		sv.xold.Ref("xold@neighbor"), sv.xold.Ref("xold@comm"),
		sv.neighNum.Ref("neigh_num@force"), sv.atomType.Ref("type@force"),
		sv.binCount.Ref("bin_count@neighbor"), sv.ghostX.Ref("ghost_x@force"),
		sv.latticeParams.Ref("lattice@setup"), sv.dtParams.Ref("dt@integrate"),
	}
	return sv
}

// aliasSet returns the alias labels for DeclareAliases / census calls.
func aliasSet() map[string]bool {
	return map[string]bool{"x_swap": true, "v_swap": true, "f_swap": true}
}
