package chaos

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs/analyze"
	"repro/internal/sim"
)

// Campaign modes: each derives a different adversarial schedule shape.
const (
	// ModeIteration kills one member at an iteration boundary — the
	// baseline the core.FailurePlan harness already covers.
	ModeIteration = "iteration"
	// ModeRegion kills one member inside the checkpoint path: at region
	// entry, at the KR commit handoff, or inside the VeloC client.
	ModeRegion = "region"
	// ModeCollective kills one member on entry to an MPI collective, so
	// peers are blocked in the same rendezvous when it dies.
	ModeCollective = "collective"
	// ModeFlush crashes a member's whole node while its checkpoint flush
	// window is open: the PFS copy never completes and restart must fall
	// back to an older complete version.
	ModeFlush = "flush"
	// ModeNested kills a second member the moment it enters Fenix recovery
	// for the first kill — a failure during an in-progress rebuild.
	ModeNested = "nested"
	// ModeSpare kills a spare while it is still blocked in Fenix
	// initialization, then kills a member so the pruned pool is exercised.
	ModeSpare = "spare"
	// ModeNode crashes one node hosting two members: correlated
	// simultaneous kills plus loss of the node's storage.
	ModeNode = "node"
	// ModeStormShrink kills more members than there are spares with
	// shrink-on-exhaustion enabled: the job must finish on a compacted
	// communicator.
	ModeStormShrink = "storm-shrink"
	// ModeStormFail kills more members than there are spares with
	// shrinking disabled: the only correct outcome is ErrOutOfSpares.
	ModeStormFail = "storm-fail"
	// ModeStormWave is the spare-exhaustion storm at scale: 2-3 kill waves
	// against a 32-rank (or larger, via the scale override) world with two
	// spares and shrink-on-exhaustion. The first wave fires one more kill
	// than there are spares — both spares are consumed and the first shrink
	// happens in the same storm — and every later wave kills two more
	// members of the already-compacted world, forcing a further shrink with
	// the pool empty.
	ModeStormWave = "storm-wave"
	// ModeSDCRegion flips one bit in a resilient parallel region's views
	// under the replay policy: the bounds validator catches wild flips
	// (exponent/sign) and a clean re-execution repairs them; small mantissa
	// flips stay in-bounds and escape — both outcomes must account exactly.
	ModeSDCRegion = "sdc-region"
	// ModeSDCVote is the same view flip under duplicate-and-vote: the
	// bitwise duplicate comparison detects any flip, and the element-wise
	// majority over a tie-break execution repairs it.
	ModeSDCVote = "sdc-vote"
	// ModeSDCBlob flips one bit in a serialized checkpoint blob on its way
	// to scratch, under the checksum policy: read-back verification detects
	// the corruption and one clean re-write repairs it before commit.
	ModeSDCBlob = "sdc-blob"
	// ModeSDCMixed lands a view flip and a process kill in the same run:
	// the SDC layer must resolve the flip locally, independent of (and
	// without perturbing) the Fenix rebuild the kill triggers.
	ModeSDCMixed = "sdc-mixed"
	// ModeLocalized kills one member under the localized message-logging
	// strategy (core.StrategyLocalized, DESIGN.md §12): only the
	// replacement rolls back and recomputes, served from the sender-based
	// log, while survivors pause in place — and the final answer must still
	// match the failure-free reference bitwise.
	ModeLocalized = "localized"
	// ModeLocalizedShrink exhausts the spare pool under localized recovery
	// with shrink-on-exhaustion enabled and a two-rank rehost reserve
	// behind the single spare: reserve substitutions absorb the storm
	// without compacting the communicator, so the message log stays live
	// across all three kills and byte-identity still binds.
	ModeLocalizedShrink = "localized-shrink"
)

// Modes lists every campaign mode, in matrix order. New modes are appended
// so existing (seed -> cell) assignments — including the replay seeds
// pinned in scripts/check.sh — keep deriving the same configurations.
var Modes = []string{
	ModeIteration, ModeRegion, ModeCollective, ModeFlush, ModeNested,
	ModeSpare, ModeNode, ModeStormShrink, ModeStormFail, ModeStormWave,
	ModeSDCRegion, ModeSDCVote, ModeSDCBlob, ModeSDCMixed,
	ModeLocalized, ModeLocalizedShrink,
}

// Apps lists the campaign applications, in matrix order.
var Apps = []string{AppHeatdis, AppMiniMD}

// Campaign geometry: small enough that a 50-seed sweep takes seconds,
// large enough that every kill lands mid-run with checkpoints before and
// iterations after it.
const (
	cRanks    = 4
	cIters    = 24
	cInterval = 6
	// cStormRanks is the storm-wave world size when no scale override is
	// given: large enough that two shrink waves still leave a wide world to
	// re-decompose, small enough for the per-commit CI sweep.
	cStormRanks = 32
)

// BaseRunConfig returns the campaign's standard small-cell geometry for
// app with an empty fault schedule: the starting point for custom
// experiments (e.g. the SDC coverage matrix) that draw their own faults
// instead of the seed-derived matrix cell.
func BaseRunConfig(seed uint64, app string) RunConfig {
	return RunConfig{
		Seed: seed, App: app,
		Ranks: cRanks, Spares: 2, RanksPerNode: 1,
		Iters: cIters, Interval: cInterval,
		Flush: cluster.FlushPolicy{Window: 2, Coalesce: true},
	}
}

// ConfigForSeed derives a full run configuration from a seed. The matrix
// cell (mode × app) comes from the seed itself so a sweep over seeds
// 0..N-1 covers all cells evenly; victims and kill timing come from a
// deterministic RNG stream. Non-empty mode/app override the matrix cell
// (for filtered campaigns and replay experiments) without changing the
// rest of the derivation.
func ConfigForSeed(seed uint64, mode, app string) (RunConfig, error) {
	return ConfigForSeedScaled(seed, mode, app, 0)
}

// ConfigForSeedScaled is ConfigForSeed with a storm-scale override:
// stormRanks (when positive) replaces the default 32-rank world of the
// storm-wave mode, e.g. 64 for the large cell behind `make chaos
// CHAOS_SCALE=64`. Victim draws depend on the world size, so each scale is
// its own deterministic family; all other modes ignore the override
// entirely and derive identically at every scale.
func ConfigForSeedScaled(seed uint64, mode, app string, stormRanks int) (RunConfig, error) {
	cell := int(seed % uint64(len(Modes)*len(Apps)))
	if mode == "" {
		mode = Modes[cell%len(Modes)]
	}
	if app == "" {
		app = Apps[cell/len(Modes)]
	}
	if app != AppHeatdis && app != AppMiniMD {
		return RunConfig{}, fmt.Errorf("chaos: unknown app %q", app)
	}

	cfg := RunConfig{
		Seed: seed, App: app, Mode: mode,
		Ranks: cRanks, Spares: 2, RanksPerNode: 1,
		Iters: cIters, Interval: cInterval,
		// Every campaign run exercises the flush scheduler. The policy is a
		// cell constant — not drawn from the RNG stream — so kill schedules
		// are identical to unscheduled sweeps of the same seeds.
		Flush: cluster.FlushPolicy{Window: 2, Coalesce: true},
	}
	// An RNG stream decoupled from the cell index, so the same seed
	// replayed with a mode override draws the same victims/timing.
	rng := sim.NewRNG(seed).Split(0xc4a05)
	member := func() int { return rng.Intn(cfg.Ranks) }
	// Member kills fire at iteration-ish hits well inside the run: after
	// the first checkpoint epoch, with iterations left to recompute.
	iterHit := func() int { return 2 + rng.Intn(18) }
	// Commit-path points are visited once per checkpoint epoch (4 epochs
	// at interval 6 over 24 iterations); stay off the last epoch.
	epochHit := func() int { return rng.Intn(3) }

	switch mode {
	case ModeIteration:
		cfg.Schedule.Kills = []Kill{{Rank: member(), Point: PointIteration, Hit: iterHit()}}
	case ModeRegion:
		points := []string{PointKRRegion, PointKRCommit, PointVeloCCheckpoint}
		pt := points[rng.Intn(len(points))]
		hit := epochHit()
		if pt == PointKRRegion { // visited every iteration, not per epoch
			hit = iterHit()
		}
		cfg.Schedule.Kills = []Kill{{Rank: member(), Point: pt, Hit: hit}}
	case ModeCollective:
		// Hit 0 is the victim's first collective — the version-discovery
		// allreduce during session setup, before any iteration ran.
		cfg.Schedule.Kills = []Kill{{Rank: member(), Point: PointCollective, Hit: 0}}
	case ModeFlush:
		cfg.Schedule.Kills = []Kill{{Rank: member(), Point: PointVeloCFlush, Hit: epochHit(), NodeCrash: true}}
	case ModeNested:
		a := member()
		b := (a + 1 + rng.Intn(cfg.Ranks-1)) % cfg.Ranks
		cfg.Schedule.Kills = []Kill{
			{Rank: a, Point: PointIteration, Hit: 4 + rng.Intn(12)},
			// b's first entry into Fenix recovery is triggered by a's
			// death, so this is a kill inside the in-progress rebuild.
			{Rank: b, Point: PointFenixRecover, Hit: 0},
		}
	case ModeSpare:
		spare := cfg.Ranks + rng.Intn(cfg.Spares)
		cfg.Schedule.Kills = []Kill{
			{Rank: spare, Point: PointFenixSpareWait, Hit: 0},
			{Rank: member(), Point: PointIteration, Hit: iterHit()},
		}
	case ModeNode:
		// Two ranks per node: node 1 hosts members 2 and 3, the spares
		// land on node 2. Killing both members at the same iteration with
		// NodeCrash models the whole node disappearing.
		cfg.RanksPerNode = 2
		hit := iterHit()
		cfg.Schedule.Kills = []Kill{
			{Rank: 2, Point: PointIteration, Hit: hit, NodeCrash: true},
			{Rank: 3, Point: PointIteration, Hit: hit, NodeCrash: true},
		}
	case ModeStormShrink:
		cfg.Spares = 1
		cfg.Shrink = true
		v := rng.Intn(cfg.Ranks)
		h := 2 + rng.Intn(5)
		var kills []Kill
		for i := 0; i < 3; i++ {
			kills = append(kills, Kill{Rank: (v + i) % cfg.Ranks, Point: PointIteration, Hit: h})
			h += 4 + rng.Intn(2)
		}
		cfg.Schedule.Kills = kills
	case ModeStormFail:
		cfg.Spares = 1
		cfg.ExpectFail = true
		v := rng.Intn(cfg.Ranks)
		h := 2 + rng.Intn(7)
		cfg.Schedule.Kills = []Kill{
			{Rank: v, Point: PointIteration, Hit: h},
			{Rank: (v + 1 + rng.Intn(cfg.Ranks-1)) % cfg.Ranks, Point: PointIteration, Hit: h + 4 + rng.Intn(2)},
		}
	case ModeStormWave:
		if stormRanks > 0 {
			cfg.Ranks = stormRanks
		} else {
			cfg.Ranks = cStormRanks
		}
		cfg.Spares = 2
		cfg.Shrink = true
		waves := 2 + rng.Intn(2)
		// Victims are drawn without replacement: every kill targets an
		// original member that is still alive when its wave arrives (world
		// ranks are stable identities; compaction only retires dead slots).
		picked := make(map[int]bool)
		victim := func() int {
			for {
				v := rng.Intn(cfg.Ranks)
				if !picked[v] {
					picked[v] = true
					return v
				}
			}
		}
		// Wave hits are visit counts at core.iteration, spaced far enough
		// apart that each wave's repairs complete (and its recomputed
		// iterations replay) before the next wave lands, and low enough
		// that the last wave still fires before the 24-iteration run ends.
		h := 2 + rng.Intn(3)
		var kills []Kill
		for w := 0; w < waves; w++ {
			n := 2
			if w == 0 {
				n = cfg.Spares + 1 // exhaust the pool and shrink in one storm
			}
			for i := 0; i < n; i++ {
				kills = append(kills, Kill{Rank: victim(), Point: PointIteration, Hit: h})
			}
			h += 5 + rng.Intn(2)
		}
		cfg.Schedule.Kills = kills
	case ModeSDCRegion:
		// One flip in the region's views under replay. High bits (sign +
		// exponent) mostly produce out-of-bounds values the validator
		// catches; the occasional in-bounds result escapes, which the
		// accounting invariants absorb (escaped runs skip the bitwise
		// reference comparison).
		cfg.SDC = "replay"
		cfg.Schedule.Flips = []Flip{{
			Rank: member(), Point: PointKokkosRegion, Hit: iterHit(),
			Frac: rng.Float64(), Bit: 52 + rng.Intn(12),
		}}
	case ModeSDCVote:
		// Any bit — mantissa included — under duplicate-and-vote; the
		// bitwise duplicate comparison must detect it regardless.
		cfg.SDC = "vote"
		cfg.Schedule.Flips = []Flip{{
			Rank: member(), Point: PointKokkosRegion, Hit: iterHit(),
			Frac: rng.Float64(), Bit: rng.Intn(64),
		}}
	case ModeSDCBlob:
		// One byte flipped in a checkpoint blob on its way to scratch; the
		// checksum policy's read-back verification detects it and a clean
		// re-write repairs it before the version commits.
		cfg.SDC = "checksum"
		cfg.Schedule.Flips = []Flip{{
			Rank: member(), Point: PointScratchBlob, Hit: epochHit(),
			Frac: rng.Float64(), Bit: rng.Intn(8),
		}}
	case ModeLocalized:
		cfg.Localized = true
		// The kill lands after the first checkpoint epoch committed
		// (interval 6 → first commit at iteration 5), so the replacement
		// takes the restore-and-replay path rather than the from-scratch
		// reset that fires when no version exists yet.
		cfg.Schedule.Kills = []Kill{{Rank: member(), Point: PointIteration, Hit: 7 + rng.Intn(13)}}
	case ModeLocalizedShrink:
		cfg.Localized = true
		cfg.Shrink = true
		cfg.Spares = 1
		cfg.Rehost = 2
		first := rng.Intn(cfg.Ranks)
		h := 7 + rng.Intn(4)
		var kills []Kill
		for i := 0; i < 3; i++ {
			kills = append(kills, Kill{Rank: (first + i) % cfg.Ranks, Point: PointIteration, Hit: h})
			h += 4 + rng.Intn(2)
		}
		cfg.Schedule.Kills = kills
	case ModeSDCMixed:
		// A view flip early and a member kill later in the same run, on
		// different ranks so both always fire: SDC resolution is local and
		// must neither delay nor depend on the Fenix rebuild.
		cfg.SDC = "vote"
		fr := member()
		kr := (fr + 1 + rng.Intn(cfg.Ranks-1)) % cfg.Ranks
		cfg.Schedule.Flips = []Flip{{
			Rank: fr, Point: PointKokkosRegion, Hit: 2 + rng.Intn(4),
			Frac: rng.Float64(), Bit: rng.Intn(64),
		}}
		cfg.Schedule.Kills = []Kill{{Rank: kr, Point: PointIteration, Hit: 8 + rng.Intn(8)}}
	default:
		return RunConfig{}, fmt.Errorf("chaos: unknown mode %q", mode)
	}
	return cfg, nil
}

// CampaignConfig parameterizes a seed sweep.
type CampaignConfig struct {
	// Seeds to run; each derives its cell via ConfigForSeed.
	Seeds []uint64
	// Mode and App, when non-empty, pin every run to that mode/app instead
	// of sweeping the matrix.
	Mode, App string
	// Exec, when non-empty, overrides every cell's execution scheduling
	// mode ("goroutine" or "pool"; see mpi.ExecMode). Host scheduling
	// only: the virtual outcome of every run is identical across values,
	// which the exec-mode equivalence tests pin.
	Exec string
	// StormRanks, when positive, overrides the storm-wave world size
	// (ConfigForSeedScaled); zero keeps the 32-rank default.
	StormRanks int
	// Timeout is the per-run real-time watchdog (DefaultTimeout if zero).
	Timeout time.Duration
	// EventsDir, when non-empty, streams each run's event log to
	// <EventsDir>/seed-<seed>.jsonl and writes an analyze.Manifest tagging
	// every file with its (mode × app) cell — the input layout
	// `obsreport -sweep` aggregates. The directory is created if absent.
	EventsDir string
	// Progress, if non-nil, receives each finished run as it completes.
	Progress func(*RunReport)
}

// RunCampaign sweeps the seeds sequentially (runs are internally parallel —
// one goroutine per simulated rank) and aggregates the reports.
func RunCampaign(cc CampaignConfig) (*CampaignReport, error) {
	if cc.EventsDir != "" {
		if err := os.MkdirAll(cc.EventsDir, 0o755); err != nil {
			return nil, fmt.Errorf("chaos: %w", err)
		}
	}
	refs := NewRefCache()
	camp := &CampaignReport{ByMode: make(map[string]int)}
	var manifest analyze.Manifest
	for _, seed := range cc.Seeds {
		cfg, err := ConfigForSeedScaled(seed, cc.Mode, cc.App, cc.StormRanks)
		if err != nil {
			return nil, err
		}
		if cc.Exec != "" {
			cfg.Exec = cc.Exec
		}
		var stream io.Writer
		var eventsFile *os.File
		if cc.EventsDir != "" {
			name := fmt.Sprintf("seed-%d.jsonl", seed)
			eventsFile, err = os.Create(filepath.Join(cc.EventsDir, name))
			if err != nil {
				return nil, fmt.Errorf("chaos: %w", err)
			}
			stream = eventsFile
			manifest.Runs = append(manifest.Runs, analyze.RunMeta{
				Seed: seed, Mode: cfg.Mode, App: cfg.App, Ranks: cfg.Ranks,
				Events: name,
			})
		}
		rep := RunOneStreaming(cfg, refs, cc.Timeout, stream)
		if eventsFile != nil {
			if err := eventsFile.Close(); err != nil {
				return nil, fmt.Errorf("chaos: %w", err)
			}
		}
		camp.Seeds++
		camp.ByMode[cfg.Mode]++
		switch {
		case rep.Hung:
			camp.Hangs++
		case rep.OK():
			camp.Passed++
		default:
			camp.Violated++
		}
		camp.Runs = append(camp.Runs, rep)
		if cc.Progress != nil {
			cc.Progress(rep)
		}
	}
	if cc.EventsDir != "" {
		f, err := os.Create(filepath.Join(cc.EventsDir, analyze.ManifestName))
		if err != nil {
			return nil, fmt.Errorf("chaos: %w", err)
		}
		if err := manifest.WriteManifest(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("chaos: %w", err)
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("chaos: %w", err)
		}
	}
	return camp, nil
}

// SeedRange returns [start, start+n) for sweep construction.
func SeedRange(start uint64, n int) []uint64 {
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = start + uint64(i)
	}
	return seeds
}
