package chaos

import (
	"bytes"
	"fmt"
	"testing"
)

// TestCampaignMatrix sweeps one full pass over the mode × app matrix
// (seeds 0..17 hit every cell exactly once) and requires a clean campaign:
// no hangs, no invariant violations, in any mode, on either application.
func TestCampaignMatrix(t *testing.T) {
	camp, err := RunCampaign(CampaignConfig{Seeds: SeedRange(0, len(Modes)*len(Apps))})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range camp.Runs {
		for _, v := range r.Violations {
			t.Errorf("seed %d (%s/%s): %s", r.Seed, r.App, r.Mode, v)
		}
	}
	if !camp.OK() {
		t.Fatalf("campaign failed: %d violated, %d hung of %d", camp.Violated, camp.Hangs, camp.Seeds)
	}
	// The matrix sweep must actually cover every mode.
	for _, m := range Modes {
		if camp.ByMode[m] == 0 {
			t.Errorf("mode %s never ran", m)
		}
	}
}

// TestSeedReplayIsByteStable replays seeds twice and requires the JSON
// report to be identical byte for byte — the property that makes a
// campaign finding debuggable with `chaos -seed <k>`.
func TestSeedReplayIsByteStable(t *testing.T) {
	for _, seed := range []uint64{3, 6, 7, 16} { // flush, node, storm-shrink, storm-fail cells
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			var out [2]bytes.Buffer
			for i := 0; i < 2; i++ {
				cfg, err := ConfigForSeed(seed, "", "")
				if err != nil {
					t.Fatal(err)
				}
				rep := RunOne(cfg, NewRefCache(), 0)
				if err := rep.WriteJSON(&out[i]); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
				t.Errorf("replay differs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", out[0].String(), out[1].String())
			}
		})
	}
}

// TestConfigForSeedDeterministic checks schedule derivation is a pure
// function of the seed, and that overrides pin the cell without changing
// the drawn victims/timing.
func TestConfigForSeedDeterministic(t *testing.T) {
	a, err := ConfigForSeed(42, "", "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ConfigForSeed(42, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Errorf("same seed derived different configs:\n%+v\n%+v", a, b)
	}
	forced, err := ConfigForSeed(42, ModeIteration, AppMiniMD)
	if err != nil {
		t.Fatal(err)
	}
	if forced.Mode != ModeIteration || forced.App != AppMiniMD {
		t.Errorf("override ignored: %+v", forced)
	}
	if _, err := ConfigForSeed(1, "no-such-mode", ""); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := ConfigForSeed(1, "", "no-such-app"); err == nil {
		t.Error("unknown app accepted")
	}
}

// TestExpectFailOutcome pins the storm-fail contract: spare exhaustion
// with shrinking disabled must fail the job with ErrOutOfSpares, repair
// the first kill, and leave exactly one failure unrepaired.
func TestExpectFailOutcome(t *testing.T) {
	for _, app := range Apps {
		cfg, err := ConfigForSeed(8, ModeStormFail, app)
		if err != nil {
			t.Fatal(err)
		}
		rep := RunOne(cfg, NewRefCache(), 0)
		for _, v := range rep.Violations {
			t.Errorf("%s: %s", app, v)
		}
		if !rep.JobFailed || rep.Error != "out-of-spares" {
			t.Errorf("%s: failed=%v error=%q, want out-of-spares failure", app, rep.JobFailed, rep.Error)
		}
		if rep.Repaired != 1 || rep.Unrepaired != 1 {
			t.Errorf("%s: repaired %d unrepaired %d, want 1 and 1", app, rep.Repaired, rep.Unrepaired)
		}
	}
}

// TestShrinkCampaignCoverage pins the storm-shrink contract: with one
// spare and three kills the job must finish on a compacted communicator,
// with the spans recording one replacement and two shrunk slots.
func TestShrinkCampaignCoverage(t *testing.T) {
	cfg, err := ConfigForSeed(8, ModeStormShrink, AppHeatdis)
	if err != nil {
		t.Fatal(err)
	}
	rep := RunOne(cfg, NewRefCache(), 0)
	for _, v := range rep.Violations {
		t.Error(v)
	}
	if rep.Shrunk != 2 || rep.FinalSize != cfg.Ranks-2 {
		t.Errorf("shrunk %d final size %d, want 2 and %d", rep.Shrunk, rep.FinalSize, cfg.Ranks-2)
	}
	if rep.SparesActivated != 1 {
		t.Errorf("spares activated %d, want 1", rep.SparesActivated)
	}
}
