package chaos

import (
	"bytes"
	"fmt"
	"testing"
)

// TestCampaignMatrix sweeps one full pass over the mode × app matrix
// (seeds 0..17 hit every cell exactly once) and requires a clean campaign:
// no hangs, no invariant violations, in any mode, on either application.
func TestCampaignMatrix(t *testing.T) {
	camp, err := RunCampaign(CampaignConfig{Seeds: SeedRange(0, len(Modes)*len(Apps))})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range camp.Runs {
		for _, v := range r.Violations {
			t.Errorf("seed %d (%s/%s): %s", r.Seed, r.App, r.Mode, v)
		}
	}
	if !camp.OK() {
		t.Fatalf("campaign failed: %d violated, %d hung of %d", camp.Violated, camp.Hangs, camp.Seeds)
	}
	// The matrix sweep must actually cover every mode.
	for _, m := range Modes {
		if camp.ByMode[m] == 0 {
			t.Errorf("mode %s never ran", m)
		}
	}
}

// TestSeedReplayIsByteStable replays seeds twice and requires the JSON
// report to be identical byte for byte — the property that makes a
// campaign finding debuggable with `chaos -seed <k>`.
func TestSeedReplayIsByteStable(t *testing.T) {
	// flush, node, storm-shrink, storm-wave, collective, spare, sdc-vote,
	// and sdc-mixed cells (the last two exercise flip accounting and the
	// checksum-skip path in the byte-stable report).
	for _, seed := range []uint64{3, 6, 7, 9, 16, 19, 11, 13} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			var out [2]bytes.Buffer
			for i := 0; i < 2; i++ {
				cfg, err := ConfigForSeed(seed, "", "")
				if err != nil {
					t.Fatal(err)
				}
				rep := RunOne(cfg, NewRefCache(), 0)
				if err := rep.WriteJSON(&out[i]); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
				t.Errorf("replay differs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", out[0].String(), out[1].String())
			}
		})
	}
}

// TestConfigForSeedDeterministic checks schedule derivation is a pure
// function of the seed, and that overrides pin the cell without changing
// the drawn victims/timing.
func TestConfigForSeedDeterministic(t *testing.T) {
	a, err := ConfigForSeed(42, "", "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ConfigForSeed(42, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Errorf("same seed derived different configs:\n%+v\n%+v", a, b)
	}
	forced, err := ConfigForSeed(42, ModeIteration, AppMiniMD)
	if err != nil {
		t.Fatal(err)
	}
	if forced.Mode != ModeIteration || forced.App != AppMiniMD {
		t.Errorf("override ignored: %+v", forced)
	}
	if _, err := ConfigForSeed(1, "no-such-mode", ""); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := ConfigForSeed(1, "", "no-such-app"); err == nil {
		t.Error("unknown app accepted")
	}
}

// TestExpectFailOutcome pins the storm-fail contract: spare exhaustion
// with shrinking disabled must fail the job with ErrOutOfSpares, repair
// the first kill, and leave exactly one failure unrepaired.
func TestExpectFailOutcome(t *testing.T) {
	for _, app := range Apps {
		cfg, err := ConfigForSeed(8, ModeStormFail, app)
		if err != nil {
			t.Fatal(err)
		}
		rep := RunOne(cfg, NewRefCache(), 0)
		for _, v := range rep.Violations {
			t.Errorf("%s: %s", app, v)
		}
		if !rep.JobFailed || rep.Error != "out-of-spares" {
			t.Errorf("%s: failed=%v error=%q, want out-of-spares failure", app, rep.JobFailed, rep.Error)
		}
		if rep.Repaired != 1 || rep.Unrepaired != 1 {
			t.Errorf("%s: repaired %d unrepaired %d, want 1 and 1", app, rep.Repaired, rep.Unrepaired)
		}
	}
}

// TestStormWaveMatrix pins the spare-exhaustion storm contract at scale,
// on both applications and at both world sizes: cumulative kills exceed
// the spare pool mid-campaign, so the run must survive at least two
// separate shrink waves — the first wave consumes both spares AND shrinks
// in the same rebuild (a mixed spare-repair/shrink-repair generation),
// every later wave repairs by shrinking alone — and finish on a
// communicator compacted by exactly the slots the storm took.
func TestStormWaveMatrix(t *testing.T) {
	for _, ranks := range []int{32, 64} {
		if ranks > 32 && testing.Short() {
			continue // the 64-rank cells ride behind `make chaos CHAOS_SCALE=64`
		}
		for _, app := range Apps {
			// Seeds 9 and 19 are the storm-wave cells of the natural matrix
			// (also pinned as replay seeds in scripts/check.sh).
			seed := uint64(9)
			if app == AppMiniMD {
				seed = 19
			}
			t.Run(fmt.Sprintf("%s-%dranks", app, ranks), func(t *testing.T) {
				cfg, err := ConfigForSeedScaled(seed, ModeStormWave, app, ranks)
				if err != nil {
					t.Fatal(err)
				}
				if len(cfg.Schedule.Kills) <= cfg.Spares+1 {
					t.Fatalf("storm too small: %d kills for %d spares", len(cfg.Schedule.Kills), cfg.Spares)
				}
				rep := RunOne(cfg, NewRefCache(), 0)
				for _, v := range rep.Violations {
					t.Error(v)
				}
				if rep.JobFailed {
					t.Fatalf("storm killed the job: %s", rep.Error)
				}
				if rep.Shrinks < 2 {
					t.Errorf("mpi_shrinks %d, want >= 2 (a shrink per post-exhaustion wave)", rep.Shrinks)
				}
				if rep.SparesActivated != cfg.Spares {
					t.Errorf("spares activated %d, want the whole pool (%d)", rep.SparesActivated, cfg.Spares)
				}
				if want := cfg.Ranks - rep.Shrunk; rep.FinalSize != want {
					t.Errorf("final size %d, want %d (%d ranks - %d shrunk)", rep.FinalSize, want, cfg.Ranks, rep.Shrunk)
				}
				if rep.Survived != rep.Injected || rep.Unrepaired != 0 {
					t.Errorf("survived %d of %d injected (unrepaired %d), want all survived",
						rep.Survived, rep.Injected, rep.Unrepaired)
				}
				// One span per rebuild, generations strictly increasing, and
				// the mix: at least one generation must combine spare
				// substitution with shrinking, and at least one must shrink
				// with the pool already empty.
				if len(rep.Spans) != rep.Rebuilds {
					t.Fatalf("%d spans for %d rebuilds, want one per rebuild", len(rep.Spans), rep.Rebuilds)
				}
				var mixed, shrinkOnly bool
				for i, sp := range rep.Spans {
					if i > 0 && sp.Generation <= rep.Spans[i-1].Generation {
						t.Errorf("span %d generation %d not after %d", i, sp.Generation, rep.Spans[i-1].Generation)
					}
					if sp.Replaced > 0 && sp.Shrunk > 0 {
						mixed = true
					}
					if sp.Replaced == 0 && sp.Shrunk > 0 {
						shrinkOnly = true
					}
				}
				if !mixed || !shrinkOnly {
					t.Errorf("span mix mixed=%v shrinkOnly=%v, want both (spans %+v)", mixed, shrinkOnly, rep.Spans)
				}
			})
		}
	}
}

// TestShrinkCampaignCoverage pins the storm-shrink contract: with one
// spare and three kills the job must finish on a compacted communicator,
// with the spans recording one replacement and two shrunk slots.
func TestShrinkCampaignCoverage(t *testing.T) {
	cfg, err := ConfigForSeed(8, ModeStormShrink, AppHeatdis)
	if err != nil {
		t.Fatal(err)
	}
	rep := RunOne(cfg, NewRefCache(), 0)
	for _, v := range rep.Violations {
		t.Error(v)
	}
	if rep.Shrunk != 2 || rep.FinalSize != cfg.Ranks-2 {
		t.Errorf("shrunk %d final size %d, want 2 and %d", rep.Shrunk, rep.FinalSize, cfg.Ranks-2)
	}
	if rep.SparesActivated != 1 {
		t.Errorf("spares activated %d, want 1", rep.SparesActivated)
	}
}
