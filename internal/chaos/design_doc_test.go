package chaos

import (
	"os"
	"strings"
	"testing"
)

// TestInjectionPointsDocumented cross-checks the machine-readable injection
// point constants against DESIGN.md: the engine's determinism contract
// (§10) promises that every point sits before any engine state change, so
// the full point set must be spelled out there. Adding a point without
// documenting its placement fails this test.
func TestInjectionPointsDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatalf("reading DESIGN.md: %v", err)
	}
	text := string(doc)
	for _, point := range []string{
		PointCollective,
		PointIteration,
		PointKRRegion,
		PointKRCommit,
		PointVeloCCheckpoint,
		PointVeloCFlush,
		PointFenixRecover,
		PointFenixSpareWait,
		PointFenixSpareActivate,
		PointKokkosRegion,
		PointScratchBlob,
	} {
		if !strings.Contains(text, "`"+point+"`") {
			t.Errorf("injection point %s is not documented in DESIGN.md", point)
		}
	}
}
