package chaos

import (
	"bytes"
	"fmt"
	"testing"
)

// Exec-mode equivalence matrix over the pinned replay seeds. The chaos
// engine's pinned seeds (3: flush scheduler + node crash, 7: storm
// shrink, 9/19: storm-wave spare exhaustion on heatdis/minimd) exercise
// every recovery path in the stack; running each cell under both
// execution modes and requiring identical reports and identical event
// streams pins the execution-mode contract end to end — through Fenix
// repairs, the flush scheduler, and the SDC/chaos accounting — not just
// at the MPI layer.
func TestExecModeEquivalenceMatrix(t *testing.T) {
	for _, seed := range []uint64{3, 7, 9, 19} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			var reports, events [2]bytes.Buffer
			for i, exec := range []string{"goroutine", "pool"} {
				cfg, err := ConfigForSeed(seed, "", "")
				if err != nil {
					t.Fatal(err)
				}
				cfg.Exec = exec
				rep := RunOneStreaming(cfg, NewRefCache(), 0, &events[i])
				for _, v := range rep.Violations {
					t.Errorf("exec=%s: %v", exec, v)
				}
				// The report embeds the config, so normalize the one field
				// that legitimately differs before comparing bytes.
				rep.Exec = ""
				if err := rep.WriteJSON(&reports[i]); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(reports[0].Bytes(), reports[1].Bytes()) {
				t.Errorf("seed %d: reports differ between execution modes:\n--- goroutine ---\n%s\n--- pool ---\n%s",
					seed, reports[0].String(), reports[1].String())
			}
			if !bytes.Equal(events[0].Bytes(), events[1].Bytes()) {
				t.Errorf("seed %d: event streams differ between execution modes (goroutine %d bytes, pool %d bytes)",
					seed, events[0].Len(), events[1].Len())
			}
		})
	}
}

// TestExecModeUnknownRejected pins that a bad exec value is a reported
// violation, not a panic or a silent fallback.
func TestExecModeUnknownRejected(t *testing.T) {
	cfg, err := ConfigForSeed(3, "", "")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Exec = "fibers"
	rep := RunOne(cfg, NewRefCache(), 0)
	if len(rep.Violations) == 0 {
		t.Fatal("unknown exec mode accepted")
	}
}
