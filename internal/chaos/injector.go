package chaos

import (
	"sync"

	"repro/internal/mpi"
)

// Injector executes a Schedule: it counts each rank's visits to each
// injection point and kills the rank when a scheduled (rank, point, hit)
// triple is reached. Visit counting is per-rank program order, which is
// deterministic under the simulator's virtual clocks, so a schedule fires
// identically on every run with the same seed.
type Injector struct {
	mu         sync.Mutex
	hits       map[pointKey]int
	kills      map[pointKey][]*scheduledKill
	flips      map[pointKey][]*scheduledFlip
	fired      int
	firedSpare int
	flipsFired int
}

type pointKey struct {
	rank  int
	point string
}

type scheduledKill struct {
	kill  Kill
	fired bool
}

type scheduledFlip struct {
	flip  Flip
	fired bool
}

// NewInjector builds an injector for one run of the given schedule.
// Injectors are single-use: visit counters persist for the life of the run.
func NewInjector(s Schedule) *Injector {
	inj := &Injector{
		hits:  make(map[pointKey]int),
		kills: make(map[pointKey][]*scheduledKill),
		flips: make(map[pointKey][]*scheduledFlip),
	}
	for _, k := range s.Kills {
		key := pointKey{rank: k.Rank, point: k.Point}
		inj.kills[key] = append(inj.kills[key], &scheduledKill{kill: k})
	}
	for _, f := range s.Flips {
		key := pointKey{rank: f.Rank, point: f.Point}
		inj.flips[key] = append(inj.flips[key], &scheduledFlip{flip: f})
	}
	return inj
}

// At implements mpi.Injector. It runs on the visiting rank's goroutine;
// when a scheduled kill matches, the rank never returns from this call.
func (inj *Injector) At(p *mpi.Proc, point string) {
	key := pointKey{rank: p.Rank(), point: point}
	inj.mu.Lock()
	hit := inj.hits[key]
	inj.hits[key] = hit + 1
	var victim *scheduledKill
	for _, sk := range inj.kills[key] {
		if !sk.fired && sk.kill.Hit == hit {
			victim = sk
			sk.fired = true
			inj.fired++
			if sk.kill.Spare() {
				inj.firedSpare++
			}
			break
		}
	}
	inj.mu.Unlock()
	if victim == nil {
		return
	}
	if victim.kill.NodeCrash {
		p.CrashNode()
	}
	p.ExitInjected(point, victim.kill.Spare())
}

// FlipAt implements mpi.Corruptor: it counts the rank's visit to the named
// corruption point and, when a scheduled (rank, point, hit) flip matches,
// hands its abstract site back to the visiting layer. Corruption points
// and kill points share the per-rank visit-counting discipline but use
// disjoint point names, so a schedule can mix kills and flips freely.
func (inj *Injector) FlipAt(rank int, point string) (frac float64, bit int, ok bool) {
	key := pointKey{rank: rank, point: point}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	hit := inj.hits[key]
	inj.hits[key] = hit + 1
	for _, sf := range inj.flips[key] {
		if !sf.fired && sf.flip.Hit == hit {
			sf.fired = true
			inj.flipsFired++
			return sf.flip.Frac, sf.flip.Bit, true
		}
	}
	return 0, 0, false
}

// FlipsFired returns how many scheduled flips actually triggered; a flip
// whose (rank, point, hit) is never visited does not fire.
func (inj *Injector) FlipsFired() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.flipsFired
}

// Fired returns how many scheduled kills actually triggered. A kill whose
// (rank, point, hit) is never visited — e.g. a storm kill scheduled after
// the job already failed — does not fire.
func (inj *Injector) Fired() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.fired
}

// FiredSpare returns how many fired kills targeted blocked spares; such
// kills do not count as failures the repair protocol must survive.
func (inj *Injector) FiredSpare() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.firedSpare
}

var (
	_ mpi.Injector  = (*Injector)(nil)
	_ mpi.Corruptor = (*Injector)(nil)
)
