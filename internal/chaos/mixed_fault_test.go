package chaos

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/obs"
)

// streamedEvent is the subset of the obs JSONL schema the mixed-fault
// ordering checks need.
type streamedEvent struct {
	Time  float64 `json:"t"`
	Rank  int     `json:"rank"`
	Event string  `json:"event"`
}

func parseEventStream(t *testing.T, raw []byte) []streamedEvent {
	t.Helper()
	var out []streamedEvent
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev streamedEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMixedFaultStorm pins the sdc-mixed contract: a bit flip and a
// process kill land in the same run, and the two fault classes must
// resolve through disjoint machinery — the flip locally inside the
// resilient region (duplicate-and-vote), the kill globally through the
// Fenix rebuild — without interfering with each other's accounting or
// with the final answer.
func TestMixedFaultStorm(t *testing.T) {
	// Seeds 13 and 29 are the natural sdc-mixed cells of the 16x2 matrix.
	for _, tc := range []struct {
		seed uint64
		app  string
	}{{13, AppHeatdis}, {29, AppMiniMD}} {
		tc := tc
		t.Run(fmt.Sprintf("seed%d-%s", tc.seed, tc.app), func(t *testing.T) {
			cfg, err := ConfigForSeed(tc.seed, "", "")
			if err != nil {
				t.Fatal(err)
			}
			if cfg.Mode != ModeSDCMixed || cfg.App != tc.app {
				t.Fatalf("seed %d maps to %s/%s, want %s/%s", tc.seed, cfg.Mode, cfg.App, ModeSDCMixed, tc.app)
			}
			if len(cfg.Schedule.Kills) == 0 || len(cfg.Schedule.Flips) == 0 {
				t.Fatalf("mixed schedule missing a fault class: %+v", cfg.Schedule)
			}
			var events bytes.Buffer
			rep := RunOneStreaming(cfg, NewRefCache(), 0, &events)
			for _, v := range rep.Violations {
				t.Error(v)
			}
			if rep.JobFailed {
				t.Fatalf("mixed run failed the job: %s", rep.Error)
			}
			// Both fault classes fired and resolved: the kill through a Fenix
			// repair, the flip through the vote policy (which detects every
			// bitwise divergence, so nothing may escape).
			if rep.KillsFired != 1 || rep.Repaired != 1 {
				t.Errorf("kills fired %d repaired %d, want 1 and 1", rep.KillsFired, rep.Repaired)
			}
			if rep.FlipsFired != 1 || rep.SDCInjected != 1 {
				t.Errorf("flips fired %d injected %d, want 1 and 1", rep.FlipsFired, rep.SDCInjected)
			}
			if rep.SDCDetected != 1 || rep.SDCCorrected != 1 || rep.SDCEscaped != 0 {
				t.Errorf("sdc det/corr/esc = %d/%d/%d, want 1/1/0",
					rep.SDCDetected, rep.SDCCorrected, rep.SDCEscaped)
			}

			// Ordering: SDC resolution is local to the region. On the flip
			// rank the injected -> detected -> corrected sequence must run in
			// program order, and no Fenix rebuild (a job-level event that
			// requires the flip rank at a collective) may complete inside
			// that window — the flip never rides the process-recovery path.
			evs := parseEventStream(t, events.Bytes())
			flipRank := cfg.Schedule.Flips[0].Rank
			stage := 0
			sawRebuild := false
			for _, ev := range evs {
				switch {
				case ev.Event == obs.EvFenixRebuild:
					sawRebuild = true
					if stage == 1 || stage == 2 {
						t.Error("fenix rebuild completed inside the SDC resolution window")
					}
				case ev.Rank != flipRank:
					continue
				case ev.Event == obs.EvSDCInjected:
					stage = 1
				case ev.Event == obs.EvSDCDetected:
					if stage != 1 {
						t.Errorf("sdc_detected out of order (stage %d)", stage)
					}
					stage = 2
				case ev.Event == obs.EvSDCCorrected:
					if stage != 2 {
						t.Errorf("sdc_corrected out of order (stage %d)", stage)
					}
					stage = 3
				}
			}
			if stage != 3 {
				t.Errorf("flip rank %d never completed the SDC sequence (stage %d)", flipRank, stage)
			}
			if !sawRebuild {
				t.Error("no Fenix rebuild in the event stream despite a scheduled kill")
			}
		})
	}
}

// TestMixedFaultReplayByteStable replays the sdc-mixed cells twice and
// requires both the JSON report and the full event stream to match byte
// for byte — SDC injection must not perturb the engine's determinism.
func TestMixedFaultReplayByteStable(t *testing.T) {
	for _, seed := range []uint64{13, 29} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			var reports, streams [2]bytes.Buffer
			for i := 0; i < 2; i++ {
				cfg, err := ConfigForSeed(seed, "", "")
				if err != nil {
					t.Fatal(err)
				}
				rep := RunOneStreaming(cfg, NewRefCache(), 0, &streams[i])
				if err := rep.WriteJSON(&reports[i]); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(reports[0].Bytes(), reports[1].Bytes()) {
				t.Errorf("report replay differs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
					reports[0].String(), reports[1].String())
			}
			if !bytes.Equal(streams[0].Bytes(), streams[1].Bytes()) {
				t.Error("event stream replay differs")
			}
		})
	}
}
