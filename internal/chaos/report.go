package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// SpanBrief is the deterministic slice of an analyzer recovery span a run
// report carries: failed slots are sorted (simultaneous kills have
// scheduling-dependent event order) and only virtual-time fields appear,
// so a replayed seed reproduces the report byte for byte.
type SpanBrief struct {
	Kind        string  `json:"kind"`
	Generation  int     `json:"generation"`
	FailedSlots []int   `json:"failed_slots,omitempty"`
	Replaced    int     `json:"replaced"`
	Shrunk      int     `json:"shrunk"`
	Start       float64 `json:"start_s"`
	End         float64 `json:"end_s"`
}

// RunReport is the outcome of one chaos run: the exact configuration that
// produced it (sufficient to replay), the cross-layer accounting, and any
// invariant violations. An empty Violations slice means the stack survived
// the schedule and every layer's story reconciled.
type RunReport struct {
	RunConfig

	Hung        bool    `json:"hung,omitempty"`
	JobFailed   bool    `json:"job_failed"`
	Error       string  `json:"error,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
	Launches    int     `json:"launches"`

	KillsFired      int `json:"kills_fired"`
	SpareKillsFired int `json:"spare_kills_fired,omitempty"`
	Injected        int `json:"failures_injected"`
	Repaired        int `json:"failures_repaired"`
	Unrepaired      int `json:"failures_unrepaired"`
	Survived        int `json:"failures_survived"`
	Rebuilds        int `json:"rebuilds"`
	SparesActivated int `json:"spares_activated"`
	Shrunk          int `json:"shrunk"`
	Shrinks         int `json:"mpi_shrinks,omitempty"`
	FinalSize       int `json:"final_size"`

	// Flush-scheduler accounting (zero when cfg.Flush is the zero policy).
	// Queued counts flush_queued events, Started flush_start events; every
	// queued flush that never started was either coalesced away by a newer
	// version or discarded with its node (crash, or owner shrunk away
	// mid-queue): Queued - Started = Coalesced + Discarded.
	FlushesQueued    int `json:"flushes_queued,omitempty"`
	FlushesStarted   int `json:"flushes_started,omitempty"`
	FlushesCoalesced int `json:"flushes_coalesced,omitempty"`
	FlushesDiscarded int `json:"flushes_discarded,omitempty"`

	// Message-log accounting (all zero unless cfg.Localized). MsgsLogged
	// counts sends and collective completions captured into the sender-based
	// log, MsgsReplayed log serves consumed during localized recovery, and
	// MsgsTrimmed entries garbage-collected when checkpoint commits advanced
	// the watermark. Rehosts counts substitutions drawn from the second-line
	// rehost reserve (spare exhaustion absorbed without compaction), and
	// FlushReorders deep-skew submissions the flush scheduler observed
	// arriving after a virtually-later same-node commit.
	MsgsLogged    int `json:"msgs_logged,omitempty"`
	MsgsReplayed  int `json:"msgs_replayed,omitempty"`
	MsgsTrimmed   int `json:"msgs_trimmed,omitempty"`
	Rehosts       int `json:"rehosts,omitempty"`
	FlushReorders int `json:"flush_reorders,omitempty"`

	// SDC accounting (zero when the schedule carries no flips). FlipsFired
	// counts scheduled bit flips the injector actually applied; the sdc_*
	// counters mirror the obs metrics and satisfy
	// SDCInjected == SDCDetected + SDCEscaped on every non-hung run.
	FlipsFired   int `json:"flips_fired,omitempty"`
	SDCInjected  int `json:"sdc_injected,omitempty"`
	SDCDetected  int `json:"sdc_detected,omitempty"`
	SDCCorrected int `json:"sdc_corrected,omitempty"`
	SDCEscaped   int `json:"sdc_escaped,omitempty"`
	SDCReplays   int `json:"sdc_replays,omitempty"`
	SDCVotes     int `json:"sdc_votes,omitempty"`

	Checksum float64     `json:"checksum,omitempty"`
	Spans    []SpanBrief `json:"spans,omitempty"`

	Violations []string `json:"violations,omitempty"`
}

func (r *RunReport) addViolation(msg string) { r.Violations = append(r.Violations, msg) }

// OK reports whether the run satisfied every invariant.
func (r *RunReport) OK() bool { return len(r.Violations) == 0 }

// WriteJSON writes the report as indented JSON.
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Line is the one-line campaign summary of this run.
func (r *RunReport) Line() string {
	status := "ok"
	switch {
	case r.Hung:
		status = "HUNG"
	case !r.OK():
		status = fmt.Sprintf("VIOLATED(%d)", len(r.Violations))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed %-6d %-8s %-12s kills %d/%d inj %d rep %d unrep %d shrunk %d",
		r.Seed, r.App, r.Mode, r.KillsFired, len(r.Schedule.Kills),
		r.Injected, r.Repaired, r.Unrepaired, r.Shrunk)
	if len(r.Schedule.Flips) > 0 {
		fmt.Fprintf(&b, " sdc %d/%d det %d corr %d esc %d",
			r.FlipsFired, len(r.Schedule.Flips), r.SDCDetected, r.SDCCorrected, r.SDCEscaped)
	}
	fmt.Fprintf(&b, "  %s", status)
	return b.String()
}

// CampaignReport aggregates a seed sweep.
type CampaignReport struct {
	Seeds    int            `json:"seeds"`
	Passed   int            `json:"passed"`
	Violated int            `json:"violated"`
	Hangs    int            `json:"hangs"`
	ByMode   map[string]int `json:"by_mode"`
	Runs     []*RunReport   `json:"runs"`
}

// OK reports whether every run in the campaign passed.
func (c *CampaignReport) OK() bool { return c.Violated == 0 && c.Hangs == 0 }

// WriteJSON writes the campaign report as indented JSON.
func (c *CampaignReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// WriteSummary writes the human-readable sweep summary: one line per run
// plus totals, with full violation text for any failing run.
func (c *CampaignReport) WriteSummary(w io.Writer, verbose bool) error {
	var b strings.Builder
	for _, r := range c.Runs {
		if verbose || !r.OK() {
			fmt.Fprintf(&b, "%s\n", r.Line())
		}
		for _, viol := range r.Violations {
			fmt.Fprintf(&b, "    %s\n", viol)
		}
	}
	fmt.Fprintf(&b, "chaos: %d seeds, %d passed, %d violated, %d hung\n",
		c.Seeds, c.Passed, c.Violated, c.Hangs)
	_, err := io.WriteString(w, b.String())
	return err
}
