package chaos

import (
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/apps/heatdis"
	"repro/internal/apps/minimd"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fenix"
	"repro/internal/kokkos"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// Application names the campaign can run.
const (
	AppHeatdis = "heatdis"
	AppMiniMD  = "minimd"
)

// RunConfig fully determines one chaos run. Together with the simulator's
// virtual clocks it makes the run reproducible: the same RunConfig always
// produces the same RunReport.
type RunConfig struct {
	Seed         uint64 `json:"seed"`
	App          string `json:"app"`
	Mode         string `json:"mode"`
	Ranks        int    `json:"ranks"` // application ranks (excludes spares)
	Spares       int    `json:"spares"`
	Shrink       bool   `json:"shrink"`
	RanksPerNode int    `json:"ranks_per_node"`
	Iters        int    `json:"iters"`
	Interval     int    `json:"interval"`
	// Flush is the per-node flush-scheduling policy applied to every node
	// (zero = classic unscheduled flushing). Derived from the cell, never
	// from the RNG stream, so kill schedules are unchanged by it.
	Flush    cluster.FlushPolicy `json:"flush"`
	Schedule Schedule            `json:"schedule"`
	// SDC names the silent-data-corruption detection policy (none, checksum,
	// replay, vote); empty means none. Like Flush it is a cell constant,
	// never drawn from the RNG stream.
	SDC string `json:"sdc,omitempty"`
	// ExpectFail marks schedules designed to exhaust the spare pool with
	// shrinking disabled: the only correct outcome is a job failure with
	// fenix.ErrOutOfSpares.
	ExpectFail bool `json:"expect_fail"`
	// Exec selects the execution scheduling mode ("", "goroutine", or
	// "pool"; see mpi.ExecMode). A cell constant like Flush/SDC: it may
	// change only host scheduling, never the virtual outcome — the
	// exec-mode equivalence tests compare reports across both values.
	Exec string `json:"exec,omitempty"`
	// Localized runs the cell under core.StrategyLocalized (sender-based
	// message logging, DESIGN.md §12) instead of the default global-rollback
	// integrated stack: after a kill only the replacement recomputes, served
	// from the log, while survivors pause in place. Localized runs must be
	// byte-identical to the failure-free reference like any other cell.
	Localized bool `json:"localized,omitempty"`
	// Rehost holds that many extra ranks in Fenix's second-line rehost
	// reserve behind the spares. Reserve substitutions keep the lineage
	// width stable (no compaction, so the message log — and the bitwise
	// reference comparison — survive spare exhaustion in shrink cells).
	Rehost int `json:"rehost,omitempty"`
}

// appRun adapts one application to the chaos runner: body to execute under
// the resilience stack, and a checksum over the first n logical ranks'
// results (erroring if any of them produced none).
type appRun struct {
	app      core.App
	checksum func(n int) (float64, error)
}

func buildApp(cfg RunConfig) (appRun, error) {
	switch cfg.App {
	case AppHeatdis:
		sink := heatdis.NewSink()
		// Large enough that checkpoint flush windows stay open for several
		// iterations, so flush-window kills have something to interrupt. The
		// storm-wave cells run 32-64 ranks; scale the per-rank footprint
		// down there so a -race sweep stays within CI memory while the
		// aggregate problem stays big enough to keep flush windows open.
		bytesPerRank := 8 << 20
		if cfg.Ranks > 8 {
			bytesPerRank = 512 << 10
		}
		if cfg.Ranks > 1024 {
			// O(4k)-rank scale cells: keep the aggregate problem (and the
			// per-rank checkpoint payload the scratch layer copies) small
			// enough that a -race replay pair fits CI memory; the collective
			// and flush machinery being exercised is size-independent.
			bytesPerRank = 64 << 10
		}
		hc := heatdis.Config{
			BytesPerRank:       bytesPerRank,
			Iterations:         cfg.Iters,
			CheckpointInterval: cfg.Interval,
		}
		return appRun{app: heatdis.App(hc, sink), checksum: sink.GlobalChecksum}, nil
	case AppMiniMD:
		sink := minimd.NewSink()
		mc := minimd.Config{
			Steps:              cfg.Iters,
			CheckpointInterval: cfg.Interval,
		}
		return appRun{app: minimd.App(mc, sink), checksum: sink.GlobalChecksum}, nil
	default:
		return appRun{}, fmt.Errorf("chaos: unknown app %q", cfg.App)
	}
}

// RefCache lazily computes and caches the failure-free reference checksum
// per (app, ranks, iters, interval) cell, by running the same application
// under core.StrategyNone with no injection. Non-shrink chaos runs must
// reproduce this answer bitwise.
type RefCache struct {
	mu   sync.Mutex
	refs map[string]float64
}

// NewRefCache returns an empty reference cache.
func NewRefCache() *RefCache { return &RefCache{refs: make(map[string]float64)} }

// Checksum returns the failure-free global checksum for the cell.
func (rc *RefCache) Checksum(cfg RunConfig) (float64, error) {
	key := fmt.Sprintf("%s/%d/%d/%d", cfg.App, cfg.Ranks, cfg.Iters, cfg.Interval)
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if v, ok := rc.refs[key]; ok {
		return v, nil
	}
	run, err := buildApp(cfg)
	if err != nil {
		return 0, err
	}
	res := core.Run(
		mpi.JobConfig{Ranks: cfg.Ranks, Seed: cfg.Seed},
		core.Config{Strategy: core.StrategyNone, CheckpointInterval: cfg.Interval, CheckpointName: "chaos"},
		run.app,
	)
	if res.Failed || res.Err() != nil {
		return 0, fmt.Errorf("chaos: reference run failed: %v", res.Err())
	}
	v, err := run.checksum(cfg.Ranks)
	if err != nil {
		return 0, fmt.Errorf("chaos: reference checksum: %v", err)
	}
	rc.refs[key] = v
	return v, nil
}

// DefaultTimeout is the real-time watchdog per run; the virtual-clock
// simulation finishes in well under a second, so hitting it means a
// deadlock in the stack under test.
const DefaultTimeout = 30 * time.Second

// RunOne executes one chaos run and checks every invariant, returning the
// report. It never panics on invariant violations; they are recorded in
// Report.Violations so a campaign can keep sweeping.
func RunOne(cfg RunConfig, refs *RefCache, timeout time.Duration) *RunReport {
	return RunOneStreaming(cfg, refs, timeout, nil)
}

// RunOneStreaming is RunOne with the run's structured event log streamed
// to events as JSONL (obsreport's input format), for post-mortem analysis
// of a replayed seed. A nil writer disables streaming.
func RunOneStreaming(cfg RunConfig, refs *RefCache, timeout time.Duration, events io.Writer) *RunReport {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	rep := &RunReport{RunConfig: cfg}
	run, err := buildApp(cfg)
	if err != nil {
		rep.addViolation(err.Error())
		return rep
	}

	inj := NewInjector(cfg.Schedule)
	rec := obs.New()
	exec, err := mpi.ParseExecMode(cfg.Exec)
	if err != nil {
		rep.addViolation(err.Error())
		return rep
	}
	job := mpi.JobConfig{
		Ranks:        cfg.Ranks + cfg.Spares + cfg.Rehost,
		RanksPerNode: cfg.RanksPerNode,
		Seed:         cfg.Seed,
		Obs:          rec,
		ObsStream:    events,
		Inject:       inj,
		Flush:        cfg.Flush,
		Exec:         exec,
	}
	ccfg := core.Config{
		Strategy:           core.StrategyFenixKRVeloC,
		Spares:             cfg.Spares,
		RehostReserve:      cfg.Rehost,
		ShrinkOnExhaustion: cfg.Shrink,
		CheckpointInterval: cfg.Interval,
		CheckpointName:     "chaos",
	}
	if cfg.Localized {
		ccfg.Strategy = core.StrategyLocalized
	}
	if cfg.SDC != "" {
		pol, err := kokkos.ParseSDCPolicy(cfg.SDC)
		if err != nil {
			rep.addViolation(err.Error())
			return rep
		}
		ccfg.SDC = core.SDCConfig{Policy: pol}
		// Replay-validator bounds are the app's physical ranges: Heatdis
		// temperatures live in [0, sourceTemp]; MiniMD forces/positions are
		// finite but unbounded a priori, so only wild exponent flips and
		// NaN/Inf are caught there.
		switch cfg.App {
		case AppHeatdis:
			ccfg.SDC.MinVal, ccfg.SDC.MaxVal = 0, 100
		case AppMiniMD:
			ccfg.SDC.MinVal, ccfg.SDC.MaxVal = -1e12, 1e12
		}
	}

	baseline := runtime.NumGoroutine()
	done := make(chan *core.Result, 1)
	go func() { done <- core.Run(job, ccfg, run.app) }()
	var res *core.Result
	select {
	case res = <-done:
	case <-time.After(timeout):
		// Deadlock in the stack under test. The run's goroutines are still
		// live, so do not touch the recorder (it is being written to);
		// report the hang and bail.
		rep.Hung = true
		rep.addViolation(fmt.Sprintf("hang: run exceeded the %s watchdog", timeout))
		return rep
	}

	rep.JobFailed = res.Failed
	rep.Error = classifyErr(res.Err())
	rep.WallSeconds = res.WallTime
	rep.Launches = res.Launches
	rep.KillsFired = inj.Fired()
	rep.SpareKillsFired = inj.FiredSpare()
	rep.FlipsFired = inj.FlipsFired()

	reg := rec.Registry()
	rep.SDCInjected = int(reg.CounterValue(obs.MSDCInjected))
	rep.SDCDetected = int(reg.CounterValue(obs.MSDCDetected))
	rep.SDCCorrected = int(reg.CounterValue(obs.MSDCCorrected))
	rep.SDCEscaped = int(reg.CounterValue(obs.MSDCEscaped))
	rep.SDCReplays = int(reg.CounterValue(obs.MSDCReplays))
	rep.SDCVotes = int(reg.CounterValue(obs.MSDCVotes))
	rep.Injected = int(reg.CounterValue(obs.MFailuresInjected))
	rep.Survived = int(reg.CounterValue(obs.MFailuresSurvived))
	rep.Rebuilds = int(reg.CounterValue(obs.MRebuilds))
	rep.SparesActivated = int(reg.CounterValue(obs.MSparesActivated))
	rep.Shrinks = int(reg.CounterValue(obs.MShrinks))
	rep.FlushesCoalesced = int(reg.CounterValue(obs.MFlushCoalesced))
	rep.FlushesDiscarded = int(reg.CounterValue(obs.MFlushDiscarded))
	rep.MsgsLogged = int(reg.CounterValue(obs.MMsgLogged))
	rep.MsgsReplayed = int(reg.CounterValue(obs.MMsgReplayed))
	rep.MsgsTrimmed = int(reg.CounterValue(obs.MMsgLogTrimmed))
	rep.Rehosts = int(reg.CounterValue(obs.MRehosts))
	rep.FlushReorders = int(reg.CounterValue(obs.MFlushReorders))

	arep, err := analyze.Analyze(rec.Events())
	if err != nil {
		rep.addViolation(fmt.Sprintf("analyze: %v", err))
		return rep
	}
	rep.Repaired = arep.FailuresRepaired
	rep.Unrepaired = arep.FailuresUnrepaired
	for _, sp := range arep.Spans {
		slots := append([]int(nil), sp.FailedSlots...)
		// Simultaneous kills (correlated node loss) land at the same
		// virtual time and their event order is scheduling-dependent; sort
		// so the report is byte-stable across replays.
		sort.Ints(slots)
		rep.Spans = append(rep.Spans, SpanBrief{
			Kind: sp.Kind, Generation: sp.Generation, FailedSlots: slots,
			Replaced: sp.Replaced, Shrunk: sp.Shrunk,
			Start: sp.Start, End: sp.End,
		})
		rep.Shrunk += sp.Shrunk
	}
	rep.FinalSize = cfg.Ranks - rep.Shrunk
	for _, g := range arep.Checkpoints {
		rep.FlushesQueued += g.FlushesQueued
		rep.FlushesStarted += g.FlushesStarted
	}

	checkInvariants(rep, cfg, arep, refs, run)
	checkGoroutines(rep, baseline)
	return rep
}

func classifyErr(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, fenix.ErrOutOfSpares):
		return "out-of-spares"
	case errors.Is(err, fenix.ErrNoSurvivors):
		return "no-survivors"
	default:
		return err.Error()
	}
}

// checkInvariants cross-checks the outcome, the obs counters, the span
// analyzer, and the application answer against what the schedule demands.
func checkInvariants(rep *RunReport, cfg RunConfig, arep *analyze.Report, refs *RefCache, run appRun) {
	v := rep.addViolation

	// Outcome matches intent.
	if cfg.ExpectFail {
		if !rep.JobFailed {
			v("schedule exhausts spares with shrink disabled, but the job succeeded")
		}
		if rep.Error != "out-of-spares" {
			v(fmt.Sprintf("expected out-of-spares failure, got error %q", rep.Error))
		}
	} else {
		if rep.JobFailed || rep.Error != "" {
			v(fmt.Sprintf("job failed (error %q); every failure should have been survivable", rep.Error))
		}
	}
	if rep.Launches != 1 {
		v(fmt.Sprintf("launches = %d; ULFM recovery must not relaunch", rep.Launches))
	}

	// Every scheduled kill fired (campaign schedules are designed so each
	// kill's execution point is reached).
	if rep.KillsFired != len(cfg.Schedule.Kills) {
		v(fmt.Sprintf("fired %d of %d scheduled kills", rep.KillsFired, len(cfg.Schedule.Kills)))
	}
	if rep.FlipsFired != len(cfg.Schedule.Flips) {
		v(fmt.Sprintf("fired %d of %d scheduled flips", rep.FlipsFired, len(cfg.Schedule.Flips)))
	}

	// SDC accounting is exact: every fired flip was recorded as injected,
	// and every injected flip was resolved — caught by a detection layer or
	// escaped past all of them. Corrections can never exceed detections.
	if rep.SDCInjected != rep.FlipsFired {
		v(fmt.Sprintf("%s = %d, but the injector fired %d flips", obs.MSDCInjected, rep.SDCInjected, rep.FlipsFired))
	}
	if rep.SDCInjected != rep.SDCDetected+rep.SDCEscaped {
		v(fmt.Sprintf("sdc_injected %d != sdc_detected %d + sdc_escaped %d",
			rep.SDCInjected, rep.SDCDetected, rep.SDCEscaped))
	}
	if rep.SDCCorrected > rep.SDCDetected {
		v(fmt.Sprintf("sdc_corrected %d > sdc_detected %d", rep.SDCCorrected, rep.SDCDetected))
	}
	if arep.SDCInjected != rep.SDCInjected || arep.SDCDetected != rep.SDCDetected ||
		arep.SDCCorrected != rep.SDCCorrected || arep.SDCEscaped != rep.SDCEscaped {
		v(fmt.Sprintf("analyzer saw SDC inj/det/corr/esc %d/%d/%d/%d, counters say %d/%d/%d/%d",
			arep.SDCInjected, arep.SDCDetected, arep.SDCCorrected, arep.SDCEscaped,
			rep.SDCInjected, rep.SDCDetected, rep.SDCCorrected, rep.SDCEscaped))
	}

	// Failure accounting reconciles across layers:
	// injector == failures_injected_total == analyzer, and every injected
	// failure is either repaired or (only in expect-fail runs) unrepaired.
	wantInjected := rep.KillsFired - rep.SpareKillsFired
	if rep.Injected != wantInjected {
		v(fmt.Sprintf("%s = %d, but the injector fired %d non-spare kills", obs.MFailuresInjected, rep.Injected, wantInjected))
	}
	if arep.FailuresInjected != rep.Injected {
		v(fmt.Sprintf("analyzer saw %d injected failures, counter says %d", arep.FailuresInjected, rep.Injected))
	}
	if arep.SpareKills != rep.SpareKillsFired {
		v(fmt.Sprintf("analyzer saw %d spare kills, injector fired %d", arep.SpareKills, rep.SpareKillsFired))
	}
	if rep.Injected != rep.Repaired+rep.Unrepaired {
		v(fmt.Sprintf("injected %d != repaired %d + unrepaired %d", rep.Injected, rep.Repaired, rep.Unrepaired))
	}
	if rep.Repaired != rep.Survived {
		v(fmt.Sprintf("analyzer repaired %d, %s = %d", rep.Repaired, obs.MFailuresSurvived, rep.Survived))
	}
	if !cfg.ExpectFail && rep.Unrepaired != 0 {
		v(fmt.Sprintf("%d failures unrepaired in a run that should survive everything", rep.Unrepaired))
	}

	// Span reconstruction reconciles with the Fenix layer's own counters.
	if len(rep.Spans) != rep.Rebuilds {
		v(fmt.Sprintf("analyzer reconstructed %d spans, %s = %d", len(rep.Spans), obs.MRebuilds, rep.Rebuilds))
	}
	replaced, shrinkSpans := 0, 0
	for _, sp := range rep.Spans {
		if sp.Kind != "fenix" {
			v(fmt.Sprintf("span kind %q; ULFM recovery must not produce relaunch spans", sp.Kind))
		}
		replaced += sp.Replaced
		if sp.Shrunk > 0 {
			shrinkSpans++
		}
	}
	if replaced != rep.SparesActivated {
		v(fmt.Sprintf("spans replaced %d slots, %s = %d", replaced, obs.MSparesActivated, rep.SparesActivated))
	}
	// Shrink accounting reconciles across layers: Fenix emits exactly one
	// mpi.shrink per compacting rebuild, the analyzer counts those events,
	// and compaction only ever happens with shrinking enabled.
	if arep.Shrinks != rep.Shrinks {
		v(fmt.Sprintf("analyzer saw %d shrink events, %s = %d", arep.Shrinks, obs.MShrinks, rep.Shrinks))
	}
	if rep.Shrinks != shrinkSpans {
		v(fmt.Sprintf("%s = %d, but %d spans compacted slots (one shrink per compacting rebuild)", obs.MShrinks, rep.Shrinks, shrinkSpans))
	}
	if !cfg.Shrink && (rep.Shrunk != 0 || rep.Shrinks != 0) {
		v(fmt.Sprintf("shrinking disabled but %d slots shrunk away over %d shrink events", rep.Shrunk, rep.Shrinks))
	}
	// Message-log accounting: capture is exclusive to localized cells, and a
	// localized recovery of a member kill must actually be served from the
	// log — unless compaction disabled it (Shrunk > 0), which degrades to
	// ordinary global rollback by design.
	if !cfg.Localized && rep.MsgsLogged != 0 {
		v(fmt.Sprintf("%s = %d in a non-localized run; the message log must stay off", obs.MMsgLogged, rep.MsgsLogged))
	}
	if cfg.Localized {
		if rep.MsgsLogged == 0 {
			v("localized run captured nothing into the message log")
		}
		if !cfg.ExpectFail && rep.Injected > 0 && rep.Shrunk == 0 && rep.MsgsReplayed == 0 {
			v(fmt.Sprintf("localized recovery repaired %d failures without serving a single logged message", rep.Injected))
		}
	}
	if cfg.Rehost == 0 && rep.Rehosts != 0 {
		v(fmt.Sprintf("%s = %d with no rehost reserve configured", obs.MRehosts, rep.Rehosts))
	}
	// Flush-scheduler accounting reconciles with the event stream: every
	// checkpoint's flush is queued exactly once, a flush starts at most
	// once, and every queued flush that never started is accounted as
	// either a coalesce (counted by the submitter) or a discard (the
	// owner's node crashed or lost its scratch with the flush mid-queue,
	// counted by veloc.flush_discarded) — the finalize drain commits
	// everything else, so the reconciliation is exact.
	totalFlushes := 0
	for _, g := range arep.Checkpoints {
		totalFlushes += g.Flushes
	}
	if cfg.Flush.Enabled() {
		if rep.FlushesQueued != totalFlushes {
			v(fmt.Sprintf("scheduler queued %d flushes, but %d flush_begin events were emitted", rep.FlushesQueued, totalFlushes))
		}
		if rep.FlushesStarted > rep.FlushesQueued {
			v(fmt.Sprintf("scheduler started %d flushes but only %d were queued", rep.FlushesStarted, rep.FlushesQueued))
		}
		analyzerDiscarded := 0
		for _, g := range arep.Checkpoints {
			analyzerDiscarded += g.FlushesDiscarded
		}
		if analyzerDiscarded != rep.FlushesDiscarded {
			v(fmt.Sprintf("analyzer saw %d discarded flushes, %s = %d", analyzerDiscarded, obs.MFlushDiscarded, rep.FlushesDiscarded))
		}
		if cancelled := rep.FlushesQueued - rep.FlushesStarted; rep.FlushesCoalesced+rep.FlushesDiscarded != cancelled {
			v(fmt.Sprintf("%d flushes never started, but %d were coalesced and %d discarded", cancelled, rep.FlushesCoalesced, rep.FlushesDiscarded))
		}
	} else if rep.FlushesQueued != 0 || rep.FlushesCoalesced != 0 || rep.FlushesDiscarded != 0 {
		v(fmt.Sprintf("scheduling disabled but saw %d queued / %d coalesced / %d discarded flushes",
			rep.FlushesQueued, rep.FlushesCoalesced, rep.FlushesDiscarded))
	}
	if cfg.ExpectFail {
		return // no final answer to check
	}

	// The application answer: non-shrink runs must reproduce the
	// failure-free reference bitwise; shrink runs must cover exactly the
	// compacted rank set with a finite answer.
	sum, err := run.checksum(rep.FinalSize)
	if err != nil {
		v(fmt.Sprintf("result coverage: %v (final size %d)", err, rep.FinalSize))
		return
	}
	rep.Checksum = sum
	// A flip that escaped every detection layer is free to corrupt the
	// final answer (that is what "escaped" means), so the bitwise reference
	// comparison — and even finiteness — only binds when nothing escaped.
	// Detected-and-corrected runs get no such license: they must reproduce
	// the failure-free answer exactly.
	if rep.SDCEscaped > 0 {
		return
	}
	if math.IsNaN(sum) || math.IsInf(sum, 0) {
		v(fmt.Sprintf("global checksum is not finite: %v", sum))
	}
	if rep.Shrunk == 0 {
		ref, err := refs.Checksum(cfg)
		if err != nil {
			v(err.Error())
		} else if sum != ref {
			v(fmt.Sprintf("checksum %v differs from failure-free reference %v", sum, ref))
		}
	}
}

// checkGoroutines verifies the run leaked no goroutines: every rank, spare,
// and helper goroutine must have unwound once the job returned.
func checkGoroutines(rep *RunReport, baseline int) {
	deadline := time.Now().Add(2 * time.Second)
	for {
		// The runner's own watchdog goroutine has already exited (buffered
		// send); anything above the pre-run baseline is a leak in the stack
		// under test.
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			rep.addViolation(fmt.Sprintf("goroutine leak: %d alive, %d before the run", n, baseline))
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
