package chaos

import (
	"bytes"
	"os"
	"testing"
	"time"

	"repro/internal/cluster"
)

// scaleTimeout replaces the default 30s watchdog for the O(1k-4k)-rank
// cells: a 4096-rank replay pair legitimately needs a few minutes under
// -race, and a hang still fails fast relative to the test binary timeout.
const scaleTimeout = 5 * time.Minute

// Scale cells: the tree collective engine's acceptance runs. A 4096-rank
// heatdis job with a mid-run failure must complete — repair, recompute,
// and converge to the failure-free checksum — and produce a byte-identical
// report across two replays of the same seed. These ride behind -short so
// the quick edit loop stays quick; CI and scripts/check.sh run them in
// full (plus `make chaos CHAOS_SCALE=1024` for the storm-wave smoke).

// scale4096Config is a hand-built 4096-rank heatdis cell: one rank per
// node (the campaign's standard topology — co-resident ranks with deep
// virtual skew make flush coalescing wall-order dependent, see the
// determinism notes in cluster/flushsched.go), one spare, the flush
// scheduler on, and one mid-run rank kill so the repair path (failure
// detection, spare substitution, rollback, recompute) runs at full width.
func scale4096Config() RunConfig {
	return RunConfig{
		Seed: 4096, App: AppHeatdis, Mode: ModeIteration,
		Ranks: 4096, Spares: 1, RanksPerNode: 1,
		Iters: 6, Interval: 2,
		Flush:    cluster.FlushPolicy{Window: 2, Coalesce: true},
		Schedule: Schedule{Kills: []Kill{{Rank: 1234, Point: PointIteration, Hit: 3}}},
	}
}

func TestScale4096HeatdisReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("4096-rank cell skipped in -short mode")
	}
	var out [2]bytes.Buffer
	for i := 0; i < 2; i++ {
		rep := RunOne(scale4096Config(), NewRefCache(), scaleTimeout)
		for _, v := range rep.Violations {
			t.Error(v)
		}
		if rep.JobFailed {
			t.Fatalf("4096-rank run failed: %s", rep.Error)
		}
		if rep.Survived != 1 || rep.Unrepaired != 0 {
			t.Fatalf("survived %d, unrepaired %d; want the mid-run kill repaired", rep.Survived, rep.Unrepaired)
		}
		if err := rep.WriteJSON(&out[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Errorf("4096-rank replay differs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			out[0].String(), out[1].String())
	}
}

// TestScale8192HeatdisReplay is the O(10k) acceptance cell for the
// worker-pool execution mode: 8192 ranks under ExecPool with a mid-run
// kill, repaired online, byte-identical across two replays. A
// goroutine-per-rank world this size is what the pool exists to avoid,
// so the cell runs pool-only; its virtual outcome is pinned to goroutine
// mode by the equivalence matrix at smaller widths. It is gated behind
// CHAOS_NIGHTLY=1 (the nightly CI tier and `scripts/check.sh nightly`)
// so the per-commit tier-1 sweep stays fast.
func TestScale8192HeatdisReplay(t *testing.T) {
	if os.Getenv("CHAOS_NIGHTLY") == "" {
		t.Skip("8192-rank cell runs in the nightly tier (set CHAOS_NIGHTLY=1)")
	}
	if testing.Short() {
		t.Skip("8192-rank cell skipped in -short mode")
	}
	cfg := RunConfig{
		Seed: 8192, App: AppHeatdis, Mode: ModeIteration,
		Ranks: 8192, Spares: 1, RanksPerNode: 1,
		Iters: 6, Interval: 2,
		Flush:    cluster.FlushPolicy{Window: 2, Coalesce: true},
		Schedule: Schedule{Kills: []Kill{{Rank: 5678, Point: PointIteration, Hit: 3}}},
		Exec:     "pool",
	}
	var out [2]bytes.Buffer
	for i := 0; i < 2; i++ {
		rep := RunOne(cfg, NewRefCache(), 4*scaleTimeout)
		for _, v := range rep.Violations {
			t.Error(v)
		}
		if rep.JobFailed {
			t.Fatalf("8192-rank run failed: %s", rep.Error)
		}
		if rep.Survived != 1 || rep.Unrepaired != 0 {
			t.Fatalf("survived %d, unrepaired %d; want the mid-run kill repaired", rep.Survived, rep.Unrepaired)
		}
		if err := rep.WriteJSON(&out[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Errorf("8192-rank replay differs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			out[0].String(), out[1].String())
	}
}

// TestScale1024StormWaveReplay pins replay determinism for the 1024-rank
// storm-wave family (the CHAOS_SCALE=1024 smoke cell): multiple shrink
// waves, spare exhaustion, and a world-sized flush storm must all be a
// pure function of the seed at this width too.
func TestScale1024StormWaveReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-rank storm cell skipped in -short mode")
	}
	var out [2]bytes.Buffer
	for i := 0; i < 2; i++ {
		cfg, err := ConfigForSeedScaled(9, ModeStormWave, AppHeatdis, 1024)
		if err != nil {
			t.Fatal(err)
		}
		rep := RunOne(cfg, NewRefCache(), scaleTimeout)
		for _, v := range rep.Violations {
			t.Error(v)
		}
		if rep.JobFailed {
			t.Fatalf("1024-rank storm failed: %s", rep.Error)
		}
		if err := rep.WriteJSON(&out[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Errorf("1024-rank storm replay differs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			out[0].String(), out[1].String())
	}
}

// TestScale1024LocalizedStormReplay is the nightly localized-recovery
// storm cell: 1024 ranks under the worker-pool execution mode, three
// staggered kills absorbed by one spare plus a two-rank rehost reserve,
// so the sender-based message log stays live across every repair and
// each replacement recovers by restore-and-replay while 1023 survivors
// pause in place. The report — including the replay ledger and the
// byte-identity invariant against the failure-free reference — must be
// a pure function of the seed across two replays. Gated behind
// CHAOS_NIGHTLY=1 like the O(10k) pool cell so the per-commit tier
// stays fast.
func TestScale1024LocalizedStormReplay(t *testing.T) {
	if os.Getenv("CHAOS_NIGHTLY") == "" {
		t.Skip("1024-rank localized storm runs in the nightly tier (set CHAOS_NIGHTLY=1)")
	}
	if testing.Short() {
		t.Skip("1024-rank localized storm skipped in -short mode")
	}
	cfg := RunConfig{
		Seed: 1025, App: AppHeatdis, Mode: ModeLocalizedShrink,
		Ranks: 1024, Spares: 1, Rehost: 2, Shrink: true, RanksPerNode: 1,
		Localized: true,
		Iters:     16, Interval: 4,
		Flush: cluster.FlushPolicy{Window: 2, Coalesce: true},
		Schedule: Schedule{Kills: []Kill{
			{Rank: 100, Point: PointIteration, Hit: 5},
			{Rank: 500, Point: PointIteration, Hit: 9},
			{Rank: 900, Point: PointIteration, Hit: 13},
		}},
		Exec: "pool",
	}
	var out [2]bytes.Buffer
	for i := 0; i < 2; i++ {
		rep := RunOne(cfg, NewRefCache(), scaleTimeout)
		for _, v := range rep.Violations {
			t.Error(v)
		}
		if rep.JobFailed {
			t.Fatalf("1024-rank localized storm failed: %s", rep.Error)
		}
		if rep.Repaired != 3 || rep.Unrepaired != 0 {
			t.Fatalf("repaired %d, unrepaired %d; want all three kills repaired", rep.Repaired, rep.Unrepaired)
		}
		if rep.MsgsReplayed == 0 {
			t.Error("localized storm replayed no logged messages (degraded to global rollback?)")
		}
		if rep.Rehosts != 2 {
			t.Errorf("rehosts %d, want the two-rank reserve fully drawn", rep.Rehosts)
		}
		if rep.Shrunk != 0 {
			t.Errorf("shrunk %d, want the reserve to absorb every kill without compaction", rep.Shrunk)
		}
		if err := rep.WriteJSON(&out[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Errorf("1024-rank localized storm replay differs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			out[0].String(), out[1].String())
	}
}
