// Package chaos is a seeded, reproducible adversarial fault-injection
// engine for the integrated resilience stack. It generalizes the harness's
// core.FailurePlan (which can only kill a logical rank at an iteration
// boundary) to kills at arbitrary named execution points inside the MPI,
// Fenix, KR, and VeloC layers — inside checkpoint regions, during
// asynchronous flush windows, while a rebuild is in progress (nested
// failures), while a spare is still blocked in Fenix initialization — plus
// correlated node-loss kills and kill storms that exhaust the spare pool.
//
// Every run is driven purely by (seed, schedule) and the simulation's
// virtual clocks, so any campaign finding is replayed exactly by re-running
// its seed. After each run the engine checks cross-layer invariants: the
// job outcome matches the schedule's intent, failure accounting reconciles
// across the obs counters and the span analyzer, non-shrink runs reproduce
// the failure-free answer bitwise, and no goroutines leak.
package chaos

// Injection point names, matching the mpi.Injector points threaded through
// the resilience layers (each layer documents its own call site).
const (
	// PointCollective is visited on entry to every MPI collective.
	PointCollective = "mpi.collective"
	// PointIteration is visited at every core.Session.Checkpoint entry,
	// after FailurePlan dispatch — one visit per protected iteration.
	PointIteration = "core.iteration"
	// PointKRRegion is visited at every kr.Context.Checkpoint entry.
	PointKRRegion = "kr.region"
	// PointKRCommit is visited just before the KR layer hands a serialized
	// checkpoint to the data backend (checkpoint iterations only).
	PointKRCommit = "kr.commit"
	// PointVeloCCheckpoint is visited at veloc.Client.Checkpoint entry.
	PointVeloCCheckpoint = "veloc.checkpoint"
	// PointVeloCFlush is visited while the checkpoint's asynchronous PFS
	// flush window is still open.
	PointVeloCFlush = "veloc.flush"
	// PointFenixRecover is visited when a survivor enters Fenix recovery,
	// before it revokes the communicator — a kill here is a nested failure
	// folded into the in-progress rebuild.
	PointFenixRecover = "fenix.recover"
	// PointFenixSpareWait is visited by a spare just before it registers as
	// an activation waiter — a kill here models a spare lost while blocked
	// in Fenix initialization.
	PointFenixSpareWait = "fenix.spare_wait"
	// PointFenixSpareActivate is visited by a freshly activated spare — a
	// kill here is a member failure immediately after substitution.
	PointFenixSpareActivate = "fenix.spare_activate"

	// PointKokkosRegion is the corruption point visited after a resilient
	// parallel region's primary execution: a scheduled flip lands in the
	// region's views (see mpi.Corruptor).
	PointKokkosRegion = "kokkos.region"
	// PointScratchBlob is the corruption point visited as a serialized
	// checkpoint blob is written to node-local scratch: a scheduled flip
	// corrupts the stored bytes.
	PointScratchBlob = "veloc.scratch_blob"
)

// Kill schedules one process kill: world rank Rank exits on its Hit-th
// visit (0-based, counted per rank per point across the whole job) of the
// named injection point.
type Kill struct {
	Rank  int    `json:"rank"`
	Point string `json:"point"`
	Hit   int    `json:"hit"`
	// NodeCrash additionally destroys the victim's node storage
	// (mpi.Proc.CrashNode): node-local scratch is lost and in-flight
	// checkpoint flushes by the node's ranks never complete on the PFS.
	NodeCrash bool `json:"node_crash,omitempty"`
}

// Spare reports whether this kill targets a spare that has not yet joined
// the resilient communicator; such kills are not failures the repair
// protocol must survive and are accounted separately.
func (k Kill) Spare() bool { return k.Point == PointFenixSpareWait }

// Flip schedules one silent-data-corruption bit flip: on world rank Rank's
// Hit-th visit (0-based, same per-rank per-point counting as kills) of the
// named corruption point, one bit is flipped in the visiting layer's
// payload. The site is declared abstractly — Frac in [0,1) selects the
// position proportionally within the payload (a view element for
// kokkos.region, a byte for veloc.scratch_blob) and Bit the bit within it —
// so the schedule is payload-agnostic and replays byte-identically.
type Flip struct {
	Rank  int     `json:"rank"`
	Point string  `json:"point"`
	Hit   int     `json:"hit"`
	Frac  float64 `json:"frac"`
	Bit   int     `json:"bit"`
}

// Schedule is one run's complete fault plan: process kills and SDC flips.
type Schedule struct {
	Kills []Kill `json:"kills"`
	Flips []Flip `json:"flips,omitempty"`
}
