package chaos

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs/analyze"
)

var update = flag.Bool("update", false, "rewrite golden files from the current output")

// renderSeedASCII replays one chaos seed and renders its ASCII Gantt.
func renderSeedASCII(t *testing.T, seed uint64, width int) string {
	t.Helper()
	cfg, err := ConfigForSeed(seed, "", "")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep := RunOneStreaming(cfg, NewRefCache(), 0, &buf)
	if rep.Hung {
		t.Fatalf("seed %d hung", seed)
	}
	events, err := analyze.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	arep, err := analyze.Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	return analyze.BuildTimeline(events, arep).RenderASCII(width)
}

// TestTimelineGoldenSeed7 pins the ASCII Gantt of chaos seed 7 (the
// storm-shrink/heatdis cell): two fresh replays must render byte-identical
// output, and that output must match the checked-in golden file.
// Regenerate with `go test ./internal/chaos -run TimelineGolden -update`.
func TestTimelineGoldenSeed7(t *testing.T) {
	first := renderSeedASCII(t, 7, 100)
	second := renderSeedASCII(t, 7, 100)
	if first != second {
		t.Fatalf("timeline render differs across replays:\n--- run 1 ---\n%s--- run 2 ---\n%s", first, second)
	}

	golden := filepath.Join("testdata", "timeline_seed7.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(first), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if first != string(want) {
		t.Errorf("timeline diverged from golden file (run with -update if intended):\n--- got ---\n%s--- want ---\n%s", first, want)
	}
	// The storm-shrink cell must visibly compact: shrink markers on the
	// world lane and at least one shrunk-away slot label.
	for _, wantStr := range []string{"world", "(shrunk g", "legend:"} {
		if !strings.Contains(first, wantStr) {
			t.Errorf("seed 7 timeline missing %q:\n%s", wantStr, first)
		}
	}
}

// TestCampaignSweepDirectory runs a 3-seed mixed spare/shrink campaign
// with -out semantics (EventsDir) and aggregates it with LoadSweep: the
// manifest must tag every run, the (mode × app) groups must match the
// seeds' derived cells, and the shrink cell must contribute shrink-
// disposition spans whose timeline labels the compacted ranks.
func TestCampaignSweepDirectory(t *testing.T) {
	dir := t.TempDir()
	seeds := []uint64{0, 3, 7, 11} // iteration, flush, storm-shrink, and sdc-vote cells
	camp, err := RunCampaign(CampaignConfig{Seeds: seeds, EventsDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !camp.OK() {
		t.Fatalf("campaign failed: %+v", camp)
	}

	sweep, err := analyze.LoadSweep(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !sweep.Manifest || sweep.Runs != len(seeds) {
		t.Fatalf("sweep = %d runs, manifest %v; want %d manifested runs",
			sweep.Runs, sweep.Manifest, len(seeds))
	}

	// Expected (mode × app) cells derive from the seeds themselves.
	wantCells := map[string]bool{}
	shrinkModes := map[string]bool{}
	for _, seed := range seeds {
		cfg, err := ConfigForSeed(seed, "", "")
		if err != nil {
			t.Fatal(err)
		}
		wantCells[cfg.Mode+"/"+cfg.App] = true
		if cfg.Mode == ModeStormShrink {
			shrinkModes[cfg.Mode+"/"+cfg.App] = true
		}
	}
	gotCells := map[string]bool{}
	for _, g := range sweep.Groups {
		gotCells[g.Mode+"/"+g.App] = true
		if shrinkModes[g.Mode+"/"+g.App] && g.ShrinkSpans+g.MixedSpans == 0 {
			t.Errorf("storm-shrink group %s/%s has no compacting spans: %+v", g.Mode, g.App, g)
		}
	}
	if fmt.Sprint(wantCells) != fmt.Sprint(gotCells) {
		t.Errorf("groups = %v, want cells %v", gotCells, wantCells)
	}
	if sweep.Overall.SlotsShrunk == 0 {
		t.Errorf("mixed spare/shrink sweep reports no shrunk slots: %+v", sweep.Overall)
	}
	if sweep.Overall.Spans == 0 || sweep.Overall.CriticalPath.Count != sweep.Overall.Spans {
		t.Errorf("critical-path stats do not cover every span: %+v", sweep.Overall)
	}

	// The sdc-vote run's flip must land in the sweep's SDC ledger, fully
	// detected (vote catches every bitwise divergence), and the table must
	// render the per-cell SDC breakdown.
	if sweep.Overall.SDCInjected == 0 || sweep.Overall.SDCDetected != sweep.Overall.SDCInjected {
		t.Errorf("sdc ledger injected %d detected %d, want all detected",
			sweep.Overall.SDCInjected, sweep.Overall.SDCDetected)
	}
	var table bytes.Buffer
	if err := sweep.WriteTable(&table); err != nil {
		t.Fatal(err)
	}
	for _, wantStr := range []string{"sdc: injected", "SDC ledger"} {
		if !strings.Contains(table.String(), wantStr) {
			t.Errorf("sweep table missing %q:\n%s", wantStr, table.String())
		}
	}

	// The shrink run's event file must rebuild into a timeline that labels
	// the compacted ranks.
	f, err := os.Open(filepath.Join(dir, "seed-7.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := analyze.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := analyze.Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	tl := analyze.BuildTimeline(events, rep)
	var shrunkLanes int
	for _, l := range tl.Lanes {
		if strings.Contains(l.Label, "(shrunk g") {
			shrunkLanes++
		}
	}
	if shrunkLanes == 0 {
		t.Errorf("seed 7 timeline has no shrunk-rank lane labels: %+v", tl.Lanes)
	}
}
