// Package cluster models the simulated machine: compute nodes with local
// scratch storage (the memory-mapped folder VeloC uses for synchronous
// checkpoint copies), an interconnect, and a Lustre-like parallel file
// system whose aggregate bandwidth is shared by all concurrent writers.
//
// The PFS model reproduces the two effects the paper's evaluation hinges on:
//
//  1. A fixed number of filesystem management nodes caps aggregate flush
//     throughput, so N nodes flushing simultaneously each see ~1/N of it —
//     but this same cap bounds the total congestion checkpointing can
//     generate (Section VI-D1).
//  2. While a node's asynchronous flush is in flight, MPI operations issued
//     from that node are inflated by the machine's congestion factor,
//     reproducing the delayed application MPI calls the paper observes.
package cluster

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

// Cluster is a set of nodes sharing one parallel file system.
type Cluster struct {
	machine *sim.Machine
	nodes   []*Node
	pfs     *PFS
}

// New creates a cluster of n nodes using the given cost model.
func New(n int, machine *sim.Machine) *Cluster {
	if n <= 0 {
		panic("cluster: node count must be positive")
	}
	c := &Cluster{machine: machine, pfs: NewPFS(machine)}
	c.nodes = make([]*Node, n)
	for i := range c.nodes {
		c.nodes[i] = newNode(i, machine, c.pfs)
	}
	return c
}

// Machine returns the cluster's cost model.
func (c *Cluster) Machine() *sim.Machine { return c.machine }

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns node i.
func (c *Cluster) Node(i int) *Node {
	if i < 0 || i >= len(c.nodes) {
		panic(fmt.Sprintf("cluster: node %d out of range [0,%d)", i, len(c.nodes)))
	}
	return c.nodes[i]
}

// PFS returns the shared parallel file system.
func (c *Cluster) PFS() *PFS { return c.pfs }

// window is a half-open virtual-time interval [start, end).
type window struct{ start, end float64 }

func (w window) contains(t float64) bool { return t >= w.start && t < w.end }

// Node is one compute node. Node state persists across job relaunches on
// the same allocation, which is how VeloC scratch checkpoints survive a
// fail-restart recovery.
type Node struct {
	id      int
	machine *sim.Machine
	pfs     *PFS

	mu      sync.Mutex
	scratch map[string]stored
	flushes []window
	// Flush scheduling state (see flushsched.go). policy zero = unscheduled;
	// pending holds queued, not-yet-started flushes; flushSeq numbers
	// submissions (a last-resort queue tie-break only — queue order is
	// derived from virtual-time-deterministic request fields, never from
	// the wall-clock order in which racing ranks reached the scheduler).
	policy   FlushPolicy
	pending  []*pendingFlush
	flushSeq int
	// lastCommit remembers, per CoalesceKey, the most recent committed
	// flush (version and window start). FlushSubmit consults it to detect
	// the deep-skew reorder: a superseding submission arriving virtually at
	// or before a start that a virtually-later co-resident observer already
	// committed (see FlushRequest.OnReorder).
	lastCommit map[string]flushCommit
}

// stored is a scratch or PFS object: real contents plus the simulated size
// used by the cost model (experiments back paper-scale data with small real
// buffers; see kokkos.View.SimBytes).
type stored struct {
	data     []byte
	simBytes int
}

func newNode(id int, machine *sim.Machine, pfs *PFS) *Node {
	return &Node{id: id, machine: machine, pfs: pfs, scratch: make(map[string]stored)}
}

// ID returns the node index within its cluster.
func (n *Node) ID() int { return n.id }

// ScratchWrite stores data under key in node-local scratch and returns the
// virtual duration of the copy (a memory-bandwidth-bound memcpy). The caller
// charges this duration to its clock.
func (n *Node) ScratchWrite(key string, data []byte) float64 {
	return n.ScratchWriteSized(key, data, len(data))
}

// ScratchWriteSized is ScratchWrite with the cost model charged for
// simBytes instead of the real buffer length.
func (n *Node) ScratchWriteSized(key string, data []byte, simBytes int) float64 {
	cp := make([]byte, len(data))
	copy(cp, data)
	n.mu.Lock()
	n.scratch[key] = stored{data: cp, simBytes: simBytes}
	n.mu.Unlock()
	return n.machine.MemcpyTime(simBytes)
}

// ScratchRead returns a copy of the data stored under key and the virtual
// duration of the read, or ok=false if absent.
func (n *Node) ScratchRead(key string) (data []byte, cost float64, ok bool) {
	n.mu.Lock()
	s, ok := n.scratch[key]
	n.mu.Unlock()
	if !ok {
		return nil, 0, false
	}
	cp := make([]byte, len(s.data))
	copy(cp, s.data)
	return cp, n.machine.MemcpyTime(s.simBytes), true
}

// ScratchSimBytesOf returns the cost-model size of the scratch entry under
// key, or ok=false if absent.
func (n *Node) ScratchSimBytesOf(key string) (simBytes int, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.scratch[key]
	return s.simBytes, ok
}

// ScratchDelete removes key from scratch storage.
func (n *Node) ScratchDelete(key string) {
	n.mu.Lock()
	delete(n.scratch, key)
	n.mu.Unlock()
}

// ScratchKeys returns the number of scratch entries (for tests).
func (n *Node) ScratchKeys() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.scratch)
}

// ScratchSimBytes returns the cost-model footprint of all scratch entries,
// quantifying the node-memory cost of checkpoint staging.
func (n *Node) ScratchSimBytes() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	for _, s := range n.scratch {
		total += s.simBytes
	}
	return total
}

// ScratchClear drops all scratch contents, modeling node memory loss. A
// node crash also takes the VeloC server's flush queue with it: queued
// flushes read from the scratch that was just lost, so they are discarded
// (their OnStart callbacks never fire; OnCancel fires with reason
// "scratch-lost", stamped at each request's submission time — the loss has
// no clock of its own here, and CrashNode has already settled the queue as
// of the crash instant before calling this).
func (n *Node) ScratchClear() {
	var fire []func()
	n.mu.Lock()
	n.scratch = make(map[string]stored)
	for i, e := range n.pending {
		if cb := e.req.OnCancel; cb != nil {
			at := e.enqueued
			fire = append(fire, func() { cb(at, "scratch-lost", 0) })
		}
		n.pending[i] = nil
	}
	n.pending = n.pending[:0]
	n.mu.Unlock()
	for _, f := range fire {
		f()
	}
}

// FlushAsync starts an asynchronous flush of the scratch entry under key to
// the parallel file system as pfsKey, beginning at virtual time start. It
// returns the virtual completion time. The caller does NOT block: the flush
// is performed by the simulated VeloC server thread; only the returned
// completion time matters for later reads and congestion.
func (n *Node) FlushAsync(key, pfsKey string, start float64) (end float64, err error) {
	return n.FlushAsyncFor(key, pfsKey, start, NoOwner)
}

// FlushAsyncFor is FlushAsync with the write attributed to an owner (a
// world rank). If the owner process fails before the returned completion
// time, PFS.FailPending marks the write incomplete and it never becomes
// readable — the flush was interrupted by the failure.
func (n *Node) FlushAsyncFor(key, pfsKey string, start float64, owner int) (end float64, err error) {
	n.mu.Lock()
	s, ok := n.scratch[key]
	n.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("cluster: flush of missing scratch key %q on node %d", key, n.id)
	}
	end = n.pfs.WriteSizedFor(pfsKey, s.data, start, s.simBytes, owner)
	n.mu.Lock()
	n.recordFlushLocked(start, end)
	n.mu.Unlock()
	return end, nil
}

// CongestedAt reports whether an asynchronous flush from this node is in
// flight at virtual time t. MPI operations issued while congested are
// inflated by the machine's CongestionFactor. The query first advances the
// node's flush scheduler to t, so queued flushes whose start times have
// been reached count as in flight.
func (n *Node) CongestedAt(t float64) bool {
	var fire []func()
	n.mu.Lock()
	n.advanceLocked(t, &fire)
	congested := n.openAtLocked(t) > 0
	n.mu.Unlock()
	for _, f := range fire {
		f()
	}
	return congested
}

// InFlightAt returns the number of asynchronous flushes from this node
// still in flight at virtual time t (the flush queue depth the
// observability layer samples). Like CongestedAt, it advances the
// scheduler to t first.
func (n *Node) InFlightAt(t float64) int {
	var fire []func()
	n.mu.Lock()
	n.advanceLocked(t, &fire)
	depth := n.openAtLocked(t)
	n.mu.Unlock()
	for _, f := range fire {
		f()
	}
	return depth
}

// LastFlushEnd returns the latest flush completion time recorded on this
// node, or 0 if none.
func (n *Node) LastFlushEnd() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	var end float64
	for _, w := range n.flushes {
		if w.end > end {
			end = w.end
		}
	}
	return end
}

// NoOwner marks a PFS write not attributed to any process; it can never be
// interrupted by a failure.
const NoOwner = -1

// file is a PFS object: contents plus the virtual time it becomes readable.
// owner is the world rank whose server wrote it (NoOwner if unattributed);
// incomplete marks a write whose owner failed before availableAt — the
// file exists in the namespace but its contents are not trustworthy, so
// readers treat it as absent.
type file struct {
	data        []byte
	simBytes    int
	availableAt float64
	owner       int
	incomplete  bool
}

// PFS is the shared parallel file system.
type PFS struct {
	machine *sim.Machine

	mu     sync.Mutex
	files  map[string]file
	active []window
}

// NewPFS creates an empty parallel file system with the given cost model.
func NewPFS(machine *sim.Machine) *PFS {
	return &PFS{machine: machine, files: make(map[string]file)}
}

// Write stores data under key starting at virtual time start and returns
// the completion time. Effective bandwidth is the per-client cap reduced by
// sharing the aggregate cap with every other flush overlapping the start
// time, which is the management-node bottleneck.
func (p *PFS) Write(key string, data []byte, start float64) (end float64) {
	return p.WriteSized(key, data, start, len(data))
}

// WriteSized is Write with the cost model charged for simBytes instead of
// the real buffer length.
func (p *PFS) WriteSized(key string, data []byte, start float64, simBytes int) (end float64) {
	return p.WriteSizedFor(key, data, start, simBytes, NoOwner)
}

// WriteSizedFor is WriteSized with the write attributed to an owner world
// rank, allowing FailPending to invalidate it if the owner dies mid-write.
func (p *PFS) WriteSizedFor(key string, data []byte, start float64, simBytes int, owner int) (end float64) {
	return p.write(key, data, start, simBytes, owner, 0)
}

// WriteSharedFor is WriteSizedFor with the congestion divisor fixed by the
// caller: share is the number of writers known to contend for the aggregate
// bandwidth — for a synchronized checkpoint, every rank of the committing
// communicator. The arrival-count model below depends on the real-time
// order in which concurrent writers reach the PFS, which is fine for the
// unmanaged legacy path but a replay-determinism hazard once a world-sized
// flush storm ties on virtual time (32 scheduler goroutines racing for the
// ladder of congestion shares); scheduled flushes therefore carry an
// explicit share instead.
func (p *PFS) WriteSharedFor(key string, data []byte, start float64, simBytes int, owner, share int) (end float64) {
	return p.write(key, data, start, simBytes, owner, share)
}

// write stores data under key. With share > 0 the effective bandwidth is
// the aggregate cap split share ways (capped per client); otherwise the
// divisor is counted from already-recorded writes overlapping start.
func (p *PFS) write(key string, data []byte, start float64, simBytes int, owner, share int) (end float64) {
	cp := make([]byte, len(data))
	copy(cp, data)

	p.mu.Lock()
	defer p.mu.Unlock()

	concurrent := share
	if concurrent <= 0 {
		concurrent = 1
		for _, w := range p.active {
			if w.end > start {
				concurrent++
			}
		}
	}
	bw := p.machine.PFSAggregateBandwidth / float64(concurrent)
	if bw > p.machine.PFSPerClientBandwidth {
		bw = p.machine.PFSPerClientBandwidth
	}
	end = start + p.machine.PFSLatency + float64(simBytes)/bw
	p.active = append(p.active, window{start: start, end: end})
	if len(p.active) > 4096 {
		kept := p.active[:0]
		for _, w := range p.active {
			if w.end > start-1.0 {
				kept = append(kept, w)
			}
		}
		p.active = kept
	}

	if existing, ok := p.files[key]; !ok || existing.incomplete || end >= existing.availableAt {
		p.files[key] = file{data: cp, simBytes: simBytes, availableAt: end, owner: owner}
	}
	return end
}

// FailPending marks every still-in-flight write owned by the given world
// rank incomplete, as of the owner's death time t: a write whose
// availability lies in the future was being performed by the owner's
// (now dead) node server and never finishes. Incomplete files are
// invisible to Read/Exists/SimBytesOf; restore paths must fall back to an
// older complete version.
func (p *PFS) FailPending(owner int, t float64) {
	if owner == NoOwner {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for key, f := range p.files {
		if f.owner == owner && !f.incomplete && f.availableAt > t {
			f.incomplete = true
			p.files[key] = f
		}
	}
}

// Incomplete reports whether key names a write that was interrupted by its
// owner's failure (for tests and invariant checks).
func (p *PFS) Incomplete(key string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.files[key].incomplete
}

// Read returns a copy of the data under key. ready is the virtual time at
// which the read completes for a caller starting at time start: if the file
// is still being flushed the reader waits for availability, then pays the
// read latency and bandwidth cost. ok is false if the key does not exist.
func (p *PFS) Read(key string, start float64) (data []byte, ready float64, ok bool) {
	p.mu.Lock()
	f, ok := p.files[key]
	p.mu.Unlock()
	if !ok || f.incomplete {
		return nil, 0, false
	}
	begin := start
	if f.availableAt > begin {
		begin = f.availableAt
	}
	cp := make([]byte, len(f.data))
	copy(cp, f.data)
	ready = begin + p.machine.PFSLatency + float64(f.simBytes)/p.machine.PFSReadBandwidth
	return cp, ready, true
}

// SimBytesOf returns the cost-model size of the file under key, or
// ok=false if absent.
func (p *PFS) SimBytesOf(key string) (simBytes int, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.files[key]
	return f.simBytes, ok && !f.incomplete
}

// Exists reports whether key is present (regardless of availability time)
// and the virtual time at which it becomes readable.
func (p *PFS) Exists(key string) (availableAt float64, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.files[key]
	return f.availableAt, ok && !f.incomplete
}

// Delete removes key.
func (p *PFS) Delete(key string) {
	p.mu.Lock()
	delete(p.files, key)
	p.mu.Unlock()
}

// Len returns the number of stored files (for tests).
func (p *PFS) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.files)
}

// SimBytes returns the cost-model footprint of all stored files, the
// persistent-storage cost of a checkpointing strategy.
func (p *PFS) SimBytes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, f := range p.files {
		total += f.simBytes
	}
	return total
}
