package cluster

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testMachine() *sim.Machine {
	m := sim.DefaultMachine()
	return m
}

func TestNewClusterSizing(t *testing.T) {
	c := New(4, testMachine())
	if c.Size() != 4 {
		t.Fatalf("Size() = %d, want 4", c.Size())
	}
	for i := 0; i < 4; i++ {
		if c.Node(i).ID() != i {
			t.Fatalf("node %d has ID %d", i, c.Node(i).ID())
		}
	}
}

func TestNewClusterPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0, testMachine())
}

func TestNodeOutOfRangePanics(t *testing.T) {
	c := New(2, testMachine())
	defer func() {
		if recover() == nil {
			t.Fatal("Node(5) did not panic")
		}
	}()
	c.Node(5)
}

func TestScratchRoundTrip(t *testing.T) {
	n := New(1, testMachine()).Node(0)
	data := []byte("hello checkpoint")
	cost := n.ScratchWrite("k", data)
	if cost <= 0 {
		t.Fatal("scratch write cost should be positive")
	}
	got, rcost, ok := n.ScratchRead("k")
	if !ok {
		t.Fatal("scratch read missed")
	}
	if rcost <= 0 {
		t.Fatal("scratch read cost should be positive")
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %q", got)
	}
}

func TestScratchIsolation(t *testing.T) {
	n := New(1, testMachine()).Node(0)
	data := []byte{1, 2, 3}
	n.ScratchWrite("k", data)
	data[0] = 99 // mutate caller's buffer
	got, _, _ := n.ScratchRead("k")
	if got[0] != 1 {
		t.Fatal("scratch aliases caller buffer on write")
	}
	got[1] = 99 // mutate returned buffer
	got2, _, _ := n.ScratchRead("k")
	if got2[1] != 2 {
		t.Fatal("scratch aliases returned buffer on read")
	}
}

func TestScratchMissingAndDelete(t *testing.T) {
	n := New(1, testMachine()).Node(0)
	if _, _, ok := n.ScratchRead("nope"); ok {
		t.Fatal("read of missing key succeeded")
	}
	n.ScratchWrite("k", []byte{1})
	n.ScratchDelete("k")
	if _, _, ok := n.ScratchRead("k"); ok {
		t.Fatal("read after delete succeeded")
	}
	n.ScratchWrite("a", []byte{1})
	n.ScratchWrite("b", []byte{2})
	n.ScratchClear()
	if n.ScratchKeys() != 0 {
		t.Fatal("ScratchClear left entries")
	}
}

func TestFlushAsyncMissingKey(t *testing.T) {
	n := New(1, testMachine()).Node(0)
	if _, err := n.FlushAsync("missing", "pfs/x", 0); err == nil {
		t.Fatal("flush of missing key did not error")
	}
}

func TestFlushCreatesCongestionWindow(t *testing.T) {
	c := New(1, testMachine())
	n := c.Node(0)
	data := make([]byte, 1<<27) // 128 MB
	n.ScratchWrite("ck", data)
	end, err := n.FlushAsync("ck", "pfs/ck", 10.0)
	if err != nil {
		t.Fatal(err)
	}
	if end <= 10.0 {
		t.Fatalf("flush end %v not after start", end)
	}
	if !n.CongestedAt(10.0) || !n.CongestedAt((10.0+end)/2) {
		t.Fatal("node not congested during flush")
	}
	if n.CongestedAt(end + 1) {
		t.Fatal("node congested after flush end")
	}
	if n.CongestedAt(9.9) {
		t.Fatal("node congested before flush start")
	}
	if got := n.LastFlushEnd(); got != end {
		t.Fatalf("LastFlushEnd = %v, want %v", got, end)
	}
}

func TestPFSWriteReadRoundTrip(t *testing.T) {
	p := NewPFS(testMachine())
	data := []byte("persistent bytes")
	end := p.Write("f", data, 0)
	got, ready, ok := p.Read("f", end)
	if !ok {
		t.Fatal("read missed")
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if ready <= end {
		t.Fatal("read must cost time")
	}
}

func TestPFSReadWaitsForAvailability(t *testing.T) {
	p := NewPFS(testMachine())
	end := p.Write("f", make([]byte, 1<<26), 5.0)
	// Reader arrives before the flush completes: must wait until end.
	_, ready, ok := p.Read("f", 5.1)
	if !ok {
		t.Fatal("read missed")
	}
	if ready <= end {
		t.Fatalf("ready %v should be after flush end %v", ready, end)
	}
}

func TestPFSReadMissing(t *testing.T) {
	p := NewPFS(testMachine())
	if _, _, ok := p.Read("missing", 0); ok {
		t.Fatal("read of missing file succeeded")
	}
}

func TestPFSConcurrentWritersShareBandwidth(t *testing.T) {
	m := testMachine()
	size := 1 << 24 // 16 MB

	solo := NewPFS(m)
	soloEnd := solo.Write("a", make([]byte, size), 0)

	shared := NewPFS(m)
	// 8 concurrent writers starting at the same virtual time.
	var last float64
	for i := 0; i < 8; i++ {
		end := shared.Write(key(i), make([]byte, size), 0)
		if end > last {
			last = end
		}
	}
	if last <= soloEnd {
		t.Fatalf("8 concurrent writers (%v) not slower than solo (%v)", last, soloEnd)
	}
}

func key(i int) string { return string(rune('a' + i)) }

func TestPFSPerClientCap(t *testing.T) {
	m := testMachine()
	p := NewPFS(m)
	size := 1 << 24
	end := p.Write("a", make([]byte, size), 0)
	minTime := float64(size) / m.PFSPerClientBandwidth
	if end < minTime {
		t.Fatalf("solo write %v faster than per-client cap %v", end, minTime)
	}
}

func TestPFSOverwriteKeepsLatest(t *testing.T) {
	p := NewPFS(testMachine())
	p.Write("f", []byte("v1"), 0)
	end2 := p.Write("f", []byte("v2"), 10)
	got, _, _ := p.Read("f", end2+1)
	if string(got) != "v2" {
		t.Fatalf("read %q, want v2", got)
	}
}

func TestPFSExistsAndDelete(t *testing.T) {
	p := NewPFS(testMachine())
	end := p.Write("f", []byte("x"), 0)
	at, ok := p.Exists("f")
	if !ok || at != end {
		t.Fatalf("Exists = (%v,%v), want (%v,true)", at, ok, end)
	}
	p.Delete("f")
	if _, ok := p.Exists("f"); ok {
		t.Fatal("file exists after delete")
	}
	if p.Len() != 0 {
		t.Fatal("Len != 0 after delete")
	}
}

func TestPFSIsolation(t *testing.T) {
	p := NewPFS(testMachine())
	data := []byte{1, 2, 3}
	end := p.Write("f", data, 0)
	data[0] = 9
	got, _, _ := p.Read("f", end)
	if got[0] != 1 {
		t.Fatal("PFS aliases writer buffer")
	}
}

func TestPFSConcurrencySafety(t *testing.T) {
	p := NewPFS(testMachine())
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := key(g % 8)
				p.Write(k, []byte{byte(i)}, float64(i))
				p.Read(k, float64(i+1))
				p.Exists(k)
			}
		}(g)
	}
	wg.Wait()
}

func TestScratchConcurrencySafety(t *testing.T) {
	n := New(1, testMachine()).Node(0)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := key(g % 8)
				n.ScratchWrite(k, []byte{byte(i)})
				n.ScratchRead(k)
				n.CongestedAt(float64(i))
			}
		}(g)
	}
	wg.Wait()
}

func TestPFSRoundTripProperty(t *testing.T) {
	f := func(data []byte, start float64) bool {
		if start < 0 {
			start = -start
		}
		p := NewPFS(testMachine())
		end := p.Write("prop", data, start)
		got, _, ok := p.Read("prop", end)
		return ok && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFlushWindowPruning(t *testing.T) {
	c := New(1, testMachine())
	n := c.Node(0)
	n.ScratchWrite("k", make([]byte, 1024))
	// Many flushes far apart in virtual time: list must stay bounded.
	for i := 0; i < 500; i++ {
		if _, err := n.FlushAsync("k", "p", float64(i)*100); err != nil {
			t.Fatal(err)
		}
	}
	n.mu.Lock()
	count := len(n.flushes)
	n.mu.Unlock()
	if count > 128 {
		t.Fatalf("flush windows not pruned: %d retained", count)
	}
}
