// Per-node checkpoint flush scheduling.
//
// Without a policy (FlushPolicy{}), every flush starts the instant it is
// submitted — the classic VeloC server behaviour, in which short checkpoint
// intervals pile up concurrent PFS writes that share the aggregate
// bandwidth and keep the node's congestion window open for the whole run.
//
// With a policy, each node runs a small scheduler over its own flush
// queue:
//
//   - Window bounds the number of concurrently in-flight flushes the node
//     starts; excess requests wait in a queue.
//   - The queue is ordered deadline-aware: the request whose completion
//     gates the earliest next checkpoint commit starts first. Ties are
//     broken by virtual-time-deterministic request fields (enqueue time,
//     owner rank, coalesce key, version) — never by the wall-clock order
//     in which racing rank goroutines reached the scheduler, which is the
//     difference between a replayable schedule and a flaky one (see
//     flushBefore).
//   - Coalesce cancels a queued, not-yet-started flush when a newer
//     version of the same checkpoint (same CoalesceKey) is submitted: the
//     superseded version's bytes never reach the PFS at all.
//
// Scheduling is lazy in virtual time: a queued request's start time is
// computed analytically, and the PFS write is performed ("committed") the
// first time any observer — a congestion query, another submission, or a
// restore path calling Cluster.AdvanceFlushes — advances the node's
// scheduler strictly past that start time. Until then the request remains
// cancellable, which is what makes coalescing possible in a model where
// PFS writes compute their full window eagerly. The strictness matters:
// committing at start == t would hand window slots to whichever of several
// virtually-tied co-resident ranks raced into the scheduler first in
// wall-clock time (see advanceLocked).
package cluster

import (
	"fmt"
	"sort"
)

// FlushPolicy configures the per-node flush scheduler.
type FlushPolicy struct {
	// Window bounds the number of concurrently in-flight flushes per node.
	// Zero (the default) disables scheduling entirely: every flush starts
	// at submission time, unmanaged.
	Window int `json:"window"`
	// Coalesce cancels a queued, not-yet-started flush when a newer
	// version with the same CoalesceKey is submitted.
	Coalesce bool `json:"coalesce,omitempty"`
}

// Enabled reports whether the policy activates the scheduler.
func (p FlushPolicy) Enabled() bool { return p.Window > 0 }

// FlushRequest is one scheduled flush: a scratch entry to copy to the PFS
// on behalf of an owner rank, with the scheduling inputs the policy layer
// (internal/veloc) computed.
type FlushRequest struct {
	// Key is the scratch entry to flush; PFSKey names the PFS object.
	Key    string
	PFSKey string
	// Owner is the world rank whose server performs the write (NoOwner if
	// unattributed); PFS.FailPending invalidates the write if the owner
	// dies mid-window.
	Owner int
	// Deadline orders the queue: earlier deadlines start first. The policy
	// layer sets it to the estimated time of the owner's next checkpoint.
	Deadline float64
	// CoalesceKey groups requests that supersede one another (one
	// checkpoint name + logical rank). Empty disables coalescing for this
	// request.
	CoalesceKey string
	// Version orders requests within a CoalesceKey: a submission cancels
	// queued requests with the same key and Version <= its own.
	Version int
	// Share, when positive, fixes the PFS congestion divisor for this write
	// (PFS.WriteSharedFor): the number of ranks flushing the same
	// synchronized checkpoint. Zero falls back to the arrival-count model,
	// whose bandwidth shares depend on the real-time order in which racing
	// writers reach the PFS — not replay-deterministic under world-sized
	// flush storms that tie on virtual time.
	Share int
	// OnStart, if non-nil, is invoked — outside all cluster locks — when
	// the flush is committed, with its window [start, end) and the node's
	// flush queue depth (in-flight + queued) at end. It is never invoked
	// for a cancelled request.
	OnStart func(start, end float64, depthAtEnd int)
	// OnCancel, if non-nil, is invoked — outside all cluster locks — when
	// the queued request is dropped without ever starting for any reason
	// other than coalescing (which FlushSubmit reports to the submitter):
	// the node's flush daemon crashed ("crash"), node scratch was lost
	// ("scratch-lost"), or the scratch entry was GC'd while queued
	// ("scratch-gone"). t is the discard's virtual time and depth the
	// node's remaining flush queue depth (in-flight + queued). Exactly one
	// of OnStart/OnCancel fires for every request a scheduler accepted,
	// except requests cancelled by coalescing, which fire neither.
	OnCancel func(t float64, reason string, depth int)
	// OnReorder, if non-nil, is invoked — outside all cluster locks — when
	// this submission supersedes (same CoalesceKey, Version at or above) a
	// flush the node has already committed at a window start at or after
	// `now`. That is the deep virtual-time skew corner of the lazy
	// scheduler: a virtually-later co-resident observer advanced the queue
	// and committed the older version before this virtually-earlier
	// superseding submission arrived, so the superseded bytes reached the
	// PFS even though a faithful virtual-order replay would have coalesced
	// them. The commitment is not undone — PFS writes are final — but the
	// miss is surfaced so the policy layer can account for it
	// (cluster.flush_reorder). Arguments: the submission time, and the
	// committed flush's window start and version.
	OnReorder func(now, committedStart float64, committedVersion int)
}

// flushCommit is the per-CoalesceKey record of the latest committed flush,
// kept for reorder detection.
type flushCommit struct {
	version int
	start   float64
}

// pendingFlush is one queued, not-yet-started flush.
type pendingFlush struct {
	req      FlushRequest
	enqueued float64
	seq      int

	started    bool
	start, end float64
}

// flushBefore is the queue priority: earlier deadline first, then earlier
// (virtual) enqueue time, then owner rank, coalesce key, and version. Every
// component is a pure function of virtual time and request identity, so the
// committed schedule does not depend on the wall-clock order in which
// same-node ranks — each at its own virtual clock — raced into FlushSubmit.
// seq (submission order) remains only as a last resort for requests
// identical in all deterministic fields, which a single rank can only
// produce by submitting the same key twice at one virtual instant.
func flushBefore(a, b *pendingFlush) bool {
	if a.req.Deadline != b.req.Deadline {
		return a.req.Deadline < b.req.Deadline
	}
	if a.enqueued != b.enqueued {
		return a.enqueued < b.enqueued
	}
	if a.req.Owner != b.req.Owner {
		return a.req.Owner < b.req.Owner
	}
	if a.req.CoalesceKey != b.req.CoalesceKey {
		return a.req.CoalesceKey < b.req.CoalesceKey
	}
	if a.req.Version != b.req.Version {
		return a.req.Version < b.req.Version
	}
	return a.seq < b.seq
}

// SetFlushPolicy installs the flush policy on every node.
func (c *Cluster) SetFlushPolicy(p FlushPolicy) {
	for _, n := range c.nodes {
		n.SetFlushPolicy(p)
	}
}

// AdvanceFlushes advances every node's flush scheduler to virtual time t,
// committing queued flushes whose start times have been reached. Restore
// paths call it before reading the PFS so flushes that "have started" by
// the reader's clock are visible.
func (c *Cluster) AdvanceFlushes(t float64) {
	for _, n := range c.nodes {
		n.AdvanceFlushes(t)
	}
}

// SetFlushPolicy installs the node's flush policy. It must be set before
// the job's ranks start issuing checkpoints.
func (n *Node) SetFlushPolicy(p FlushPolicy) {
	n.mu.Lock()
	n.policy = p
	n.mu.Unlock()
}

// FlushPolicy returns the node's flush policy.
func (n *Node) FlushPolicy() FlushPolicy {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.policy
}

// QueuedFlushes returns the number of flushes queued but not yet started.
func (n *Node) QueuedFlushes() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.pending)
}

// AdvanceFlushes advances this node's scheduler to virtual time t.
func (n *Node) AdvanceFlushes(t float64) {
	var fire []func()
	n.mu.Lock()
	n.advanceLocked(t, &fire)
	n.mu.Unlock()
	for _, f := range fire {
		f()
	}
}

// CrashFlushes models the node's flush daemon dying at virtual time t:
// queued flushes whose scheduled start had been reached by t are committed
// first — their PFS writes were in flight and fail through PFS.FailPending
// like any interrupted window — and the remainder of the queue is
// discarded, their OnStart callbacks never invoked (OnCancel fires with
// reason "crash" instead, so the policy layer can reconcile its flush
// accounting). Committing before discarding keeps the started/discarded
// split a pure function of virtual time, independent of which rank's
// goroutine last observed the scheduler.
func (n *Node) CrashFlushes(t float64) {
	var fire []func()
	n.mu.Lock()
	n.advanceLocked(t, &fire)
	n.discardPendingLocked(t, "crash", &fire)
	n.mu.Unlock()
	for _, f := range fire {
		f()
	}
}

// discardPendingLocked drops every queued flush, appending their OnCancel
// callbacks (depth = the in-flight count at t; the queue itself is now
// empty) to fire. Caller holds n.mu.
func (n *Node) discardPendingLocked(t float64, reason string, fire *[]func()) {
	depth := n.openAtLocked(t)
	for i, e := range n.pending {
		if cb := e.req.OnCancel; cb != nil {
			at := t
			*fire = append(*fire, func() { cb(at, reason, depth) })
		}
		n.pending[i] = nil
	}
	n.pending = n.pending[:0]
}

// FlushSubmit routes one flush through the node's scheduler. With
// scheduling disabled it behaves exactly like FlushAsyncFor: the flush
// starts at now, and started is true with end its completion time. With
// scheduling enabled the request always joins the queue (started is false)
// and commits at the first observation strictly after its computed start —
// commitment is strictly lazy, so a window slot free at `now` is granted
// by flushBefore priority over every request enqueued by then, not to
// whichever racing submitter reached the scheduler first in wall-clock
// time; the window is reported only through req.OnStart. coalesced counts
// queued requests with the same CoalesceKey and an older-or-equal Version
// that this submission cancelled; their OnStart callbacks are never
// invoked and their bytes never reach the PFS.
func (n *Node) FlushSubmit(req FlushRequest, now float64) (started bool, end float64, coalesced int, err error) {
	if !n.FlushPolicy().Enabled() {
		end, err = n.FlushAsyncFor(req.Key, req.PFSKey, now, req.Owner)
		if err != nil {
			return false, 0, 0, err
		}
		if req.OnStart != nil {
			req.OnStart(now, end, n.InFlightAt(end))
		}
		return true, end, 0, nil
	}

	var fire []func()
	n.mu.Lock()
	if _, ok := n.scratch[req.Key]; !ok {
		n.mu.Unlock()
		return false, 0, 0, fmt.Errorf("cluster: flush of missing scratch key %q on node %d", req.Key, n.id)
	}
	n.advanceLocked(now, &fire)
	if n.policy.Coalesce && req.CoalesceKey != "" {
		kept := n.pending[:0]
		for _, e := range n.pending {
			if e.req.CoalesceKey == req.CoalesceKey && e.req.Version <= req.Version {
				coalesced++
				continue
			}
			kept = append(kept, e)
		}
		for i := len(kept); i < len(n.pending); i++ {
			n.pending[i] = nil
		}
		n.pending = kept
		// Deep-skew reorder detection: commitment is strictly lazy, so any
		// submission at or before a committed window's start would have been
		// queued — and coalesced — before that commit in faithful virtual
		// order. If a superseding version arrives now <= committedStart, a
		// virtually-later observer beat it to the commit. Entries committed
		// by the advance above always have start < now and can never match.
		if cb := req.OnReorder; cb != nil {
			if c, ok := n.lastCommit[req.CoalesceKey]; ok && c.version <= req.Version && now <= c.start {
				at, cs, cv := now, c.start, c.version
				fire = append(fire, func() { cb(at, cs, cv) })
			}
		}
	}
	n.flushSeq++
	entry := &pendingFlush{req: req, enqueued: now, seq: n.flushSeq}
	n.pending = append(n.pending, entry)
	n.advanceLocked(now, &fire)
	started, end = entry.started, entry.end
	n.mu.Unlock()
	for _, f := range fire {
		f()
	}
	return started, end, coalesced, nil
}

// advanceLocked commits every queued flush whose scheduled start has been
// reached by virtual time t, in flushBefore priority order. Committing
// performs the PFS write at the computed start; entries still queued
// afterwards remain cancellable. OnStart callbacks are appended to fire
// for invocation after the node lock is released. Caller holds n.mu.
func (n *Node) advanceLocked(t float64, fire *[]func()) {
	for len(n.pending) > 0 {
		best := 0
		for i, e := range n.pending {
			if flushBefore(e, n.pending[best]) {
				best = i
			}
		}
		e := n.pending[best]
		start := n.nextStartLocked(e.enqueued)
		if start >= t {
			// Strictly-lazy commitment: an entry whose start equals the
			// observation time stays queued until a strictly later virtual
			// observation. Committing at start == t would let wall-clock
			// submission order pick the window slots among co-resident
			// ranks tied at one virtual instant — the racing submitters
			// that arrived first would commit before their virtually-tied,
			// higher-priority peers ever reached the queue. Ties come from
			// synchronization (every tied rank submits before it can enter
			// the collective that advances anyone's clock past t), so by
			// the first strictly-later observation all tied peers are
			// queued and flushBefore resolves them deterministically.
			return
		}
		copy(n.pending[best:], n.pending[best+1:])
		n.pending[len(n.pending)-1] = nil
		n.pending = n.pending[:len(n.pending)-1]
		s, ok := n.scratch[e.req.Key]
		if !ok {
			// The scratch entry was dropped (GC) while queued; nothing to
			// flush.
			if cb := e.req.OnCancel; cb != nil {
				at := start
				depth := n.openAtLocked(start) + len(n.pending)
				*fire = append(*fire, func() { cb(at, "scratch-gone", depth) })
			}
			continue
		}
		end := n.pfs.WriteSharedFor(e.req.PFSKey, s.data, start, s.simBytes, e.req.Owner, e.req.Share)
		n.recordFlushLocked(start, end)
		e.started, e.start, e.end = true, start, end
		if k := e.req.CoalesceKey; k != "" {
			if c, ok := n.lastCommit[k]; !ok || e.req.Version >= c.version {
				if n.lastCommit == nil {
					n.lastCommit = make(map[string]flushCommit)
				}
				n.lastCommit[k] = flushCommit{version: e.req.Version, start: start}
			}
		}
		if e.req.OnStart != nil {
			depth := n.openAtLocked(end) + len(n.pending)
			cb, st, en := e.req.OnStart, start, end
			*fire = append(*fire, func() { cb(st, en, depth) })
		}
	}
}

// nextStartLocked returns the earliest virtual time no earlier than
// `after` at which the number of in-flight flushes is below the policy
// window. The start is a function of the request's own enqueue time and
// the committed windows — deliberately NOT of a global "latest assigned
// start" frontier: a frontier makes the schedule depend on the wall-clock
// order in which same-node ranks (each at its own virtual clock) commit,
// so a rank that is virtually earlier but arrives later in real time
// would be pushed behind its peer in one run and not the other. Without
// it, a virtually-stale submission can transiently exceed the window
// bound by overlapping an already-committed later window — accepted, as
// same-node ranks resynchronize every collective and the skew is bounded
// by one compute step, while the determinism is what seeded replays pin.
// Caller holds n.mu.
func (n *Node) nextStartLocked(after float64) float64 {
	t := after
	for {
		var ends []float64
		for _, w := range n.flushes {
			if w.contains(t) {
				ends = append(ends, w.end)
			}
		}
		if len(ends) < n.policy.Window {
			return t
		}
		sort.Float64s(ends)
		// Move to the completion that frees enough slots: past
		// ends[len-Window], at most Window-1 of these windows remain open.
		t = ends[len(ends)-n.policy.Window]
	}
}

// openAtLocked counts flush windows containing t. Caller holds n.mu.
func (n *Node) openAtLocked(t float64) int {
	depth := 0
	for _, w := range n.flushes {
		if w.contains(t) {
			depth++
		}
	}
	return depth
}

// recordFlushLocked appends a committed flush window, pruning windows that
// ended well before the new flush began to bound memory over long runs.
// Caller holds n.mu.
func (n *Node) recordFlushLocked(start, end float64) {
	n.flushes = append(n.flushes, window{start: start, end: end})
	if len(n.flushes) > 64 {
		kept := n.flushes[:0]
		for _, w := range n.flushes {
			if w.end > start-1.0 {
				kept = append(kept, w)
			}
		}
		n.flushes = kept
	}
}
