package cluster

import (
	"testing"
)

// flushCancel is one recorded OnCancel invocation.
type flushCancel struct {
	t      float64
	reason string
	depth  int
}

// flushRecorder collects committed windows through OnStart callbacks and
// discards through OnCancel.
type flushRecorder struct {
	starts  map[string]float64
	ends    map[string]float64
	cancels map[string]flushCancel
}

func newFlushRecorder() *flushRecorder {
	return &flushRecorder{
		starts:  map[string]float64{},
		ends:    map[string]float64{},
		cancels: map[string]flushCancel{},
	}
}

func (r *flushRecorder) req(key string, deadline float64, ckey string, version int) FlushRequest {
	return FlushRequest{
		Key: key, PFSKey: key, Owner: NoOwner,
		Deadline: deadline, CoalesceKey: ckey, Version: version,
		OnStart: func(start, end float64, depth int) {
			r.starts[key] = start
			r.ends[key] = end
		},
		OnCancel: func(t float64, reason string, depth int) {
			r.cancels[key] = flushCancel{t: t, reason: reason, depth: depth}
		},
	}
}

// checkExactlyOne asserts the exactly-one-of OnStart/OnCancel contract for
// a request the scheduler accepted (not coalesced away).
func (r *flushRecorder) checkExactlyOne(t *testing.T, key string) {
	t.Helper()
	_, started := r.starts[key]
	_, cancelled := r.cancels[key]
	if started == cancelled {
		t.Errorf("flush %s: started=%v cancelled=%v, want exactly one of OnStart/OnCancel",
			key, started, cancelled)
	}
}

// schedNode returns a single node with the given window, plus scratch
// entries k0..k<n-1> of simBytes each (~0.1s per flush at the default
// machine's 1.5 GB/s per-client PFS bandwidth for 150 MB).
func schedNode(t *testing.T, window, entries, simBytes int) *Node {
	t.Helper()
	n := New(1, testMachine()).Node(0)
	n.SetFlushPolicy(FlushPolicy{Window: window, Coalesce: true})
	for i := 0; i < entries; i++ {
		n.ScratchWriteSized(fkey(i), []byte{byte(i)}, simBytes)
	}
	return n
}

func fkey(i int) string { return string(rune('a' + i)) }

func TestFlushSubmitUnscheduledStartsImmediately(t *testing.T) {
	n := New(1, testMachine()).Node(0)
	n.ScratchWriteSized("a", []byte{1}, 150_000_000)
	rec := newFlushRecorder()
	started, end, coalesced, err := n.FlushSubmit(rec.req("a", 1.0, "", 0), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if !started || coalesced != 0 {
		t.Fatalf("started=%v coalesced=%d; unscheduled submit must start at once", started, coalesced)
	}
	if rec.starts["a"] != 2.0 {
		t.Fatalf("unscheduled flush started at %v, want submission time 2.0", rec.starts["a"])
	}
	if end <= 2.0 {
		t.Fatalf("flush end %v not after start", end)
	}
	if avail, ok := n.pfs.Exists("a"); !ok || avail != end {
		t.Fatalf("PFS entry availableAt=%v ok=%v, want %v", avail, ok, end)
	}
}

func TestFlushWindowBoundsInFlight(t *testing.T) {
	const sim = 150_000_000
	n := schedNode(t, 1, 3, sim)
	rec := newFlushRecorder()
	for i := 0; i < 3; i++ {
		started, _, _, err := n.FlushSubmit(rec.req(fkey(i), float64(i), "", 0), 0)
		if err != nil {
			t.Fatal(err)
		}
		// Commitment is strictly lazy: no scheduled flush starts at its own
		// submission instant, so window slots go by queue priority over all
		// requests enqueued by the next observation, never by wall-clock
		// submission order.
		if started {
			t.Fatalf("submit %d: started=true, want lazy commitment", i)
		}
	}
	if q := n.QueuedFlushes(); q != 3 {
		t.Fatalf("QueuedFlushes = %d, want 3", q)
	}
	n.AdvanceFlushes(1e9)
	if q := n.QueuedFlushes(); q != 0 {
		t.Fatalf("QueuedFlushes = %d after full drain", q)
	}
	// Window 1: the three flushes must be strictly serialized.
	for i := 1; i < 3; i++ {
		prev, cur := key(i-1), fkey(i)
		if rec.starts[cur] < rec.ends[prev] {
			t.Fatalf("flush %s started at %v before %s ended at %v (window 1)",
				cur, rec.starts[cur], prev, rec.ends[prev])
		}
	}
}

func TestFlushDeadlineOrdersQueue(t *testing.T) {
	const sim = 150_000_000
	n := schedNode(t, 1, 3, sim)
	rec := newFlushRecorder()
	// "a" occupies the window; "b" is submitted before "c" but has the
	// later deadline, so "c" must start first.
	for i, deadline := range []float64{0, 9.0, 1.0} {
		if _, _, _, err := n.FlushSubmit(rec.req(fkey(i), deadline, "", 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	n.AdvanceFlushes(1e9)
	if rec.starts["c"] >= rec.starts["b"] {
		t.Fatalf("deadline order violated: c (deadline 1.0) started at %v, b (deadline 9.0) at %v",
			rec.starts["c"], rec.starts["b"])
	}
}

func TestFlushCoalesceCancelsSupersededVersion(t *testing.T) {
	const sim = 150_000_000
	n := schedNode(t, 1, 3, sim)
	rec := newFlushRecorder()
	// "a" in flight; "b" (version 1) queued; "c" (version 2, same coalesce
	// key) supersedes it.
	if _, _, _, err := n.FlushSubmit(rec.req("a", 0, "", 0), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := n.FlushSubmit(rec.req("b", 1, "ck/rank0", 1), 0); err != nil {
		t.Fatal(err)
	}
	_, _, coalesced, err := n.FlushSubmit(rec.req("c", 2, "ck/rank0", 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1 (version 1 superseded)", coalesced)
	}
	n.AdvanceFlushes(1e9)
	if _, fired := rec.starts["b"]; fired {
		t.Fatal("cancelled flush b fired OnStart")
	}
	if _, fired := rec.cancels["b"]; fired {
		t.Fatal("coalesced flush b fired OnCancel; coalescing is reported to the submitter, not the callback")
	}
	if _, ok := n.pfs.Exists("b"); ok {
		t.Fatal("cancelled flush b reached the PFS")
	}
	if _, ok := n.pfs.Exists("c"); !ok {
		t.Fatal("superseding flush c missing from the PFS")
	}
	// An older version must never cancel a newer queued one.
	n.ScratchWriteSized("d", []byte{4}, sim)
	n.ScratchWriteSized("e", []byte{5}, sim)
	if _, _, _, err := n.FlushSubmit(rec.req("d", 3, "ck/rank0", 5), n.pfs.mustAvail("c")); err != nil {
		t.Fatal(err)
	}
	_, _, coalesced, err = n.FlushSubmit(rec.req("e", 4, "ck/rank0", 4), n.pfs.mustAvail("c"))
	if err != nil {
		t.Fatal(err)
	}
	if coalesced != 0 {
		t.Fatalf("older version 4 coalesced %d newer entries", coalesced)
	}
}

// mustAvail returns key's availability time (test helper).
func (p *PFS) mustAvail(key string) float64 {
	avail, ok := p.Exists(key)
	if !ok {
		panic("missing PFS key " + key)
	}
	return avail
}

func TestCrashFlushesCommitsReachedThenDiscardsRest(t *testing.T) {
	const sim = 150_000_000 // ~0.1s per flush
	n := schedNode(t, 1, 3, sim)
	rec := newFlushRecorder()
	for i := 0; i < 3; i++ {
		if _, _, _, err := n.FlushSubmit(rec.req(fkey(i), float64(i), "", 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Crash mid-way through flush b's window: a (started at 0) and b
	// (started around 0.1) had started; c (start around 0.2) had not.
	n.CrashFlushes(0.15)
	if _, fired := rec.starts["b"]; !fired {
		t.Fatal("flush b's start had been reached by the crash; it must commit (and then fail as interrupted)")
	}
	if _, fired := rec.starts["c"]; fired {
		t.Fatal("flush c started after the crash discarded the queue")
	}
	if q := n.QueuedFlushes(); q != 0 {
		t.Fatalf("QueuedFlushes = %d after crash, want 0", q)
	}
	if _, ok := n.pfs.Exists("c"); ok {
		t.Fatal("discarded flush c reached the PFS")
	}
	n.AdvanceFlushes(1e9) // must be a no-op
	if _, fired := rec.starts["c"]; fired {
		t.Fatal("discarded flush c fired OnStart after a later advance")
	}
	// Exactly one of OnStart/OnCancel per accepted request: a and b
	// started, c was discarded with the crash's clock and reason.
	for _, k := range []string{"a", "b", "c"} {
		rec.checkExactlyOne(t, k)
	}
	c, ok := rec.cancels["c"]
	if !ok {
		t.Fatal("discarded flush c never fired OnCancel")
	}
	if c.reason != "crash" || c.t != 0.15 {
		t.Fatalf("flush c cancelled (t=%v, reason=%q), want (0.15, crash)", c.t, c.reason)
	}
	// b's window (started ~0.1) still spans the crash instant: the
	// reported remaining queue depth must count it.
	if c.depth != 1 {
		t.Fatalf("flush c cancel depth = %d, want 1 (b in flight at the crash)", c.depth)
	}
}

func TestScratchClearDiscardsQueuedFlushes(t *testing.T) {
	n := schedNode(t, 1, 2, 150_000_000)
	rec := newFlushRecorder()
	for i := 0; i < 2; i++ {
		if _, _, _, err := n.FlushSubmit(rec.req(fkey(i), float64(i), "", 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	n.ScratchClear()
	if q := n.QueuedFlushes(); q != 0 {
		t.Fatalf("QueuedFlushes = %d after ScratchClear, want 0", q)
	}
	n.AdvanceFlushes(1e9)
	if _, fired := rec.starts["b"]; fired {
		t.Fatal("queued flush b survived ScratchClear")
	}
	// a had started (window 1, submitted first); b is discarded with
	// reason "scratch-lost" stamped at its submission time.
	rec.checkExactlyOne(t, "a")
	rec.checkExactlyOne(t, "b")
	c, ok := rec.cancels["b"]
	if !ok {
		t.Fatal("queued flush b never fired OnCancel")
	}
	if c.reason != "scratch-lost" || c.t != 0 {
		t.Fatalf("flush b cancelled (t=%v, reason=%q), want (0, scratch-lost)", c.t, c.reason)
	}
}

// TestScratchDeleteDiscardsQueuedFlush drops a single scratch entry while
// its flush is still queued: when the scheduler reaches the request's
// start there is nothing left to flush, so OnCancel fires with reason
// "scratch-gone" at the would-be start time and the PFS never sees the
// key.
func TestScratchDeleteDiscardsQueuedFlush(t *testing.T) {
	const sim = 150_000_000
	n := schedNode(t, 1, 2, sim)
	rec := newFlushRecorder()
	for i := 0; i < 2; i++ {
		if _, _, _, err := n.FlushSubmit(rec.req(fkey(i), float64(i), "", 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	n.ScratchDelete("b") // GC'd while queued behind a
	n.AdvanceFlushes(1e9)
	if _, fired := rec.starts["b"]; fired {
		t.Fatal("flush of deleted scratch entry b fired OnStart")
	}
	if _, ok := n.pfs.Exists("b"); ok {
		t.Fatal("flush of deleted scratch entry b reached the PFS")
	}
	rec.checkExactlyOne(t, "a")
	rec.checkExactlyOne(t, "b")
	c, ok := rec.cancels["b"]
	if !ok {
		t.Fatal("flush of deleted scratch entry b never fired OnCancel")
	}
	if c.reason != "scratch-gone" {
		t.Fatalf("flush b cancel reason = %q, want scratch-gone", c.reason)
	}
	// The discard is noticed at b's scheduled start: a's completion.
	if want := rec.ends["a"]; c.t != want {
		t.Fatalf("flush b cancelled at %v, want a's end %v", c.t, want)
	}
	if c.depth != 0 {
		t.Fatalf("flush b cancel depth = %d, want 0 (nothing in flight at a's end)", c.depth)
	}
}

// TestFlushReorderDetectedOnDeepSkew pins the DESIGN §10 deep-skew corner
// with two ranks sharing a node: the owner submits version 1 while another
// flush occupies the window, a virtually-later co-resident observer (its
// clock far ahead) advances the scheduler and commits v1 at its deferred
// start, and only then does the owner — still virtually *before* that
// start — submit the superseding version 2. The commit cannot be undone,
// so the scheduler must report the missed coalesce through OnReorder. A
// superseding version arriving virtually after the committed start is
// ordinary coalescing timing and must stay silent.
func TestFlushReorderDetectedOnDeepSkew(t *testing.T) {
	type reorder struct {
		at, start float64
		version   int
	}
	n := schedNode(t, 1, 3, 150_000_000) // entries a, b, c
	// Filler flush occupying the window for ~7s (owner rank 1).
	n.ScratchWriteSized("x", []byte{9}, 10_500_000_000)
	rec := newFlushRecorder()
	var reorders []reorder
	submit := func(key string, version int, owner int, now float64) {
		t.Helper()
		r := rec.req(key, 100, "mini/rank0", version)
		r.Owner = owner
		r.OnReorder = func(at, cs float64, cv int) {
			reorders = append(reorders, reorder{at: at, start: cs, version: cv})
		}
		if _, _, _, err := n.FlushSubmit(r, now); err != nil {
			t.Fatal(err)
		}
	}
	fr := rec.req("x", 0, "", 0)
	fr.Owner = 1
	if _, _, _, err := n.FlushSubmit(fr, 0); err != nil {
		t.Fatal(err)
	}
	// Owner rank 0 submits v1 at its clock 2.0; the filler holds the window
	// until ~7.0, so v1's start is deferred there.
	submit("a", 1, 0, 2.0)
	// A co-resident observer whose clock has run ahead advances the
	// scheduler: the filler commits at [0, ~7) and v1 at ~7.
	n.AdvanceFlushes(9.0)
	v1start, ok := rec.starts["a"]
	if !ok {
		t.Fatal("v1 never committed under the observer's advance")
	}
	if v1start < 6.9 || v1start > 7.1 {
		t.Fatalf("v1 start = %v, want ~7.0 (deferred behind the filler window)", v1start)
	}
	if len(reorders) != 0 {
		t.Fatalf("reorder fired before any superseding submission: %+v", reorders)
	}
	// Owner rank 0, virtually still before v1's committed start, submits the
	// superseding v2: in faithful virtual order it would have coalesced v1
	// away, so the scheduler must flag the reorder.
	submit("b", 2, 0, 5.0)
	if len(reorders) != 1 {
		t.Fatalf("got %d reorder callbacks, want 1", len(reorders))
	}
	if r := reorders[0]; r.at != 5.0 || r.start != v1start || r.version != 1 {
		t.Fatalf("reorder = %+v, want {at:5 start:%v version:1}", r, v1start)
	}
	// Both versions reached the PFS: the reorder is detected, not prevented.
	if _, ok := n.pfs.Exists("a"); !ok {
		t.Fatal("committed v1 missing from the PFS")
	}
	// Negative case: after v2 commits, a superseding v3 arriving virtually
	// after v2's committed start is normal operation — no reorder.
	n.AdvanceFlushes(20.0)
	if _, ok := rec.starts["b"]; !ok {
		t.Fatal("v2 never committed")
	}
	submit("c", 3, 0, 8.0)
	if len(reorders) != 1 {
		t.Fatalf("superseding submission after the committed start fired a reorder: %+v", reorders)
	}
}

func TestAdvanceFlushesIsLazyInVirtualTime(t *testing.T) {
	const sim = 150_000_000
	n := schedNode(t, 1, 2, sim)
	rec := newFlushRecorder()
	for i := 0; i < 2; i++ {
		if _, _, _, err := n.FlushSubmit(rec.req(fkey(i), float64(i), "", 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	// b's start is a's end (~0.1005); an advance short of it commits
	// nothing, an advance past it commits b.
	if n.AdvanceFlushes(0.05); rec.starts["b"] != 0 {
		t.Fatalf("flush b committed at advance t=0.05, before its start")
	}
	if _, ok := n.pfs.Exists("b"); ok {
		t.Fatal("queued flush b visible in the PFS before its start")
	}
	n.AdvanceFlushes(0.2)
	start, fired := rec.starts["b"]
	if !fired {
		t.Fatal("flush b not committed by advance past its start")
	}
	if want := rec.ends["a"]; start != want {
		t.Fatalf("flush b started at %v, want a's end %v (window 1)", start, want)
	}
	if _, ok := n.pfs.Exists("b"); !ok {
		t.Fatal("committed flush b missing from the PFS")
	}
}
