package cluster

import "testing"

func TestScratchWriteSizedChargesSimSize(t *testing.T) {
	m := testMachine()
	n := New(1, m).Node(0)
	small := n.ScratchWrite("a", make([]byte, 64))
	big := n.ScratchWriteSized("b", make([]byte, 64), 1<<30)
	if big <= small {
		t.Fatalf("sized write cost %v not above unsized %v", big, small)
	}
	want := m.MemcpyTime(1 << 30)
	if big != want {
		t.Fatalf("sized write cost %v, want %v", big, want)
	}
	// Read cost follows the simulated size too.
	_, rc, ok := n.ScratchRead("b")
	if !ok || rc != want {
		t.Fatalf("sized read cost %v, want %v", rc, want)
	}
	// Contents stay the real 64 bytes.
	data, _, _ := n.ScratchRead("b")
	if len(data) != 64 {
		t.Fatalf("stored %d real bytes", len(data))
	}
}

func TestPFSWriteSizedChargesSimSize(t *testing.T) {
	m := testMachine()
	p := NewPFS(m)
	endSmall := p.Write("a", make([]byte, 64), 0)
	endBig := p.WriteSized("b", make([]byte, 64), 0, 1<<30)
	if endBig <= endSmall {
		t.Fatalf("sized flush end %v not after unsized %v", endBig, endSmall)
	}
	// Read cost follows the simulated size.
	_, readySmall, _ := p.Read("a", endBig)
	_, readyBig, _ := p.Read("b", endBig)
	if readyBig-endBig <= readySmall-endBig {
		t.Fatal("sized read not slower")
	}
}

func TestFlushAsyncUsesSimSize(t *testing.T) {
	m := testMachine()
	c := New(1, m)
	n := c.Node(0)
	n.ScratchWriteSized("k", make([]byte, 64), 1<<30) // 1 GB simulated
	end, err := n.FlushAsync("k", "pfs/k", 0)
	if err != nil {
		t.Fatal(err)
	}
	minTime := float64(1<<30) / m.PFSPerClientBandwidth
	if end < minTime {
		t.Fatalf("flush of 1GB simulated completed in %v, want >= %v", end, minTime)
	}
}

func TestStorageAccounting(t *testing.T) {
	m := testMachine()
	c := New(2, m)
	n := c.Node(0)
	n.ScratchWriteSized("a", make([]byte, 16), 1000)
	n.ScratchWriteSized("b", make([]byte, 16), 2000)
	if got := n.ScratchSimBytes(); got != 3000 {
		t.Fatalf("ScratchSimBytes = %d", got)
	}
	n.ScratchDelete("a")
	if got := n.ScratchSimBytes(); got != 2000 {
		t.Fatalf("after delete = %d", got)
	}

	p := c.PFS()
	p.WriteSized("x", make([]byte, 8), 0, 500)
	p.WriteSized("y", make([]byte, 8), 0, 700)
	if got := p.SimBytes(); got != 1200 {
		t.Fatalf("PFS SimBytes = %d", got)
	}
	p.Delete("x")
	if got := p.SimBytes(); got != 700 {
		t.Fatalf("after delete = %d", got)
	}
}
