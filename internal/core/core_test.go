package core

import (
	"sync"
	"testing"

	"repro/internal/fenix"
	"repro/internal/kokkos"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

func quietMachine() *sim.Machine {
	m := sim.DefaultMachine()
	m.NoiseAmplitude = 0
	return m
}

// miniApp is a tiny deterministic iterative solver: each rank holds a
// vector, every iteration adds a neighbour-dependent increment obtained
// via an allreduce. Its final state is a pure function of (ranks, iters),
// so recovery correctness is checked by comparing against a failure-free
// run bit for bit.
func miniApp(iters, vecLen int, sink *resultSink) App {
	return func(s *Session) error {
		// Reuse survivor state only when a checkpoint realigns it at the
		// resume iteration; a failure before the first checkpoint means
		// every rank starts over (the application contract).
		resume := s.ResumeIteration()
		var x *kokkos.F64View
		if v, ok := s.Store["x"]; ok && resume >= 0 {
			x = v.(*kokkos.F64View)
		} else {
			x = kokkos.NewF64("x", vecLen)
			for i := 0; i < vecLen; i++ {
				x.Set(i, float64(s.Rank()*vecLen+i))
			}
			s.Store["x"] = x
		}
		views := []kokkos.View{x}

		start := 0
		if resume >= 0 {
			start = resume
		}
		for i := start; i < iters; i++ {
			err := s.Checkpoint("loop", i, views, func() error {
				s.Proc().ComputeExact(float64(vecLen) * 100)
				sum, err := s.Comm().AllreduceF64(s.Proc(), []float64{x.At(0)}, mpi.OpSum)
				if err != nil {
					return err
				}
				for j := 0; j < vecLen; j++ {
					x.Set(j, x.At(j)+sum[0]*1e-3+float64(j))
				}
				return nil
			})
			if err != nil {
				return err
			}
		}
		sink.put(s.Rank(), append([]float64(nil), x.Data()...))
		return nil
	}
}

// resultSink collects final per-logical-rank vectors.
type resultSink struct {
	mu   sync.Mutex
	data map[int][]float64
}

func newSink() *resultSink { return &resultSink{data: make(map[int][]float64)} }

func (r *resultSink) put(rank int, v []float64) {
	r.mu.Lock()
	r.data[rank] = v
	r.mu.Unlock()
}

func (r *resultSink) get(rank int) []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.data[rank]
}

const (
	tIters  = 20
	tVecLen = 16
	tRanks  = 4
)

func runStrategy(t *testing.T, strat Strategy, spares int, fail *FailurePlan) (*Result, *resultSink) {
	t.Helper()
	sink := newSink()
	cfg := Config{
		Strategy:           strat,
		Spares:             spares,
		CheckpointInterval: 5,
		CheckpointName:     "mini",
	}
	if fail != nil {
		cfg.Failures = []*FailurePlan{fail}
	}
	job := mpi.JobConfig{Ranks: tRanks + spares, Machine: quietMachine(), Seed: 7}
	res := Run(job, cfg, miniApp(tIters, tVecLen, sink))
	return res, sink
}

// reference computes the failure-free result per rank.
func reference(t *testing.T) map[int][]float64 {
	t.Helper()
	res, sink := runStrategy(t, StrategyNone, 0, nil)
	if res.Failed || res.Err() != nil {
		t.Fatalf("reference run failed: %v", res.Err())
	}
	out := make(map[int][]float64)
	for r := 0; r < tRanks; r++ {
		out[r] = sink.get(r)
		if out[r] == nil {
			t.Fatalf("reference rank %d missing", r)
		}
	}
	return out
}

func checkMatchesReference(t *testing.T, sink *resultSink, ref map[int][]float64) {
	t.Helper()
	for r := 0; r < tRanks; r++ {
		got := sink.get(r)
		if got == nil {
			t.Fatalf("rank %d produced no result", r)
		}
		for j := range ref[r] {
			if got[j] != ref[r][j] {
				t.Fatalf("rank %d element %d: got %v want %v (not bitwise identical)", r, j, got[j], ref[r][j])
			}
		}
	}
}

func TestAllStrategiesFailureFree(t *testing.T) {
	ref := reference(t)
	for _, strat := range Strategies() {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			spares := 0
			if strat.UsesFenix() {
				spares = 1
			}
			res, sink := runStrategy(t, strat, spares, nil)
			if res.Failed || res.Err() != nil {
				t.Fatalf("run failed: %v", res.Err())
			}
			if res.Launches != 1 {
				t.Fatalf("failure-free run launched %d times", res.Launches)
			}
			checkMatchesReference(t, sink, ref)
		})
	}
}

func TestRecoveryBitwiseIdentical(t *testing.T) {
	ref := reference(t)
	// Every strategy that restores all ranks must reproduce the reference
	// exactly despite an injected failure. Partial rollback is exempt by
	// design (survivors keep newer data), and StrategyNone cannot recover.
	for _, strat := range []Strategy{StrategyVeloC, StrategyKRVeloC, StrategyFenixVeloC, StrategyFenixKRVeloC, StrategyFenixIMR} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			spares := 0
			if strat.UsesFenix() {
				spares = 1
			}
			// Fail logical rank 1 at ~95% between checkpoints 1 and 2
			// (interval 5 -> checkpoints at iters 4, 9, 14, 19; fail at 13).
			fail := &FailurePlan{Slot: 1, Iteration: 13}
			res, sink := runStrategy(t, strat, spares, fail)
			if res.Failed || res.Err() != nil {
				t.Fatalf("run failed: %v (launches=%d)", res.Err(), res.Launches)
			}
			if !fail.Fired() {
				t.Fatal("failure plan never fired")
			}
			if strat.UsesRelaunch() && res.Launches != 2 {
				t.Fatalf("relaunch strategy launched %d times", res.Launches)
			}
			if strat.UsesFenix() && res.Launches != 1 {
				t.Fatalf("Fenix strategy launched %d times", res.Launches)
			}
			checkMatchesReference(t, sink, ref)
		})
	}
}

func TestFailureCostIncludesRecompute(t *testing.T) {
	fail := &FailurePlan{Slot: 1, Iteration: 13}
	res, _ := runStrategy(t, StrategyFenixKRVeloC, 1, fail)
	if res.Failed {
		t.Fatal("run failed")
	}
	mean := res.MeanAppTimes()
	if mean.Get(trace.Recompute) <= 0 {
		t.Fatal("no recompute time recorded after failure")
	}
	if mean.Get(trace.DataRecovery) <= 0 {
		t.Fatal("no data recovery time recorded after failure")
	}
}

func TestNoRecomputeWithoutFailure(t *testing.T) {
	res, _ := runStrategy(t, StrategyFenixKRVeloC, 1, nil)
	if got := res.MeanAppTimes().Get(trace.Recompute); got != 0 {
		t.Fatalf("failure-free run recorded %v recompute", got)
	}
}

func TestFenixAvoidsRelaunchCost(t *testing.T) {
	fail1 := &FailurePlan{Slot: 1, Iteration: 13}
	fenixRes, _ := runStrategy(t, StrategyFenixKRVeloC, 1, fail1)
	fail2 := &FailurePlan{Slot: 1, Iteration: 13}
	relaunchRes, _ := runStrategy(t, StrategyKRVeloC, 0, fail2)
	if fenixRes.Failed || relaunchRes.Failed {
		t.Fatal("runs failed")
	}
	fOther := fenixRes.TimesWithOther().Get(trace.Other)
	rOther := relaunchRes.TimesWithOther().Get(trace.Other)
	if fOther >= rOther {
		t.Fatalf("Fenix Other (%v) not below relaunch Other (%v)", fOther, rOther)
	}
}

func TestPartialRollbackSurvivorsKeepData(t *testing.T) {
	// Under partial rollback the survivors' results differ from the
	// reference (they never rolled back), while the job still completes.
	ref := reference(t)
	fail := &FailurePlan{Slot: 1, Iteration: 13}
	res, sink := runStrategy(t, StrategyPartialRollback, 1, fail)
	if res.Failed || res.Err() != nil {
		t.Fatalf("run failed: %v", res.Err())
	}
	diverged := false
	for r := 0; r < tRanks; r++ {
		got := sink.get(r)
		if got == nil {
			t.Fatalf("rank %d missing", r)
		}
		for j := range got {
			if got[j] != ref[r][j] {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("partial rollback produced the fully-rolled-back result; survivors should have kept newer data")
	}
}

func TestStrategyParseRoundTrip(t *testing.T) {
	for _, s := range Strategies() {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("bogus strategy accepted")
	}
}

func TestStrategyPredicates(t *testing.T) {
	cases := []struct {
		s                             Strategy
		fenixP, krP, velocP, imrP, rl bool
	}{
		{StrategyNone, false, false, false, false, false},
		{StrategyVeloC, false, false, true, false, true},
		{StrategyKRVeloC, false, true, true, false, true},
		{StrategyFenixVeloC, true, false, true, false, false},
		{StrategyFenixKRVeloC, true, true, true, false, false},
		{StrategyFenixIMR, true, true, false, true, false},
		{StrategyPartialRollback, true, true, true, false, false},
	}
	for _, c := range cases {
		if c.s.UsesFenix() != c.fenixP || c.s.UsesKR() != c.krP || c.s.UsesVeloC() != c.velocP ||
			c.s.UsesIMR() != c.imrP || c.s.UsesRelaunch() != c.rl {
			t.Fatalf("predicates wrong for %v", c.s)
		}
	}
	if !StrategyPartialRollback.PartialRollback() || StrategyFenixKRVeloC.PartialRollback() {
		t.Fatal("PartialRollback predicate wrong")
	}
	if StrategyNone.Checkpoints() || !StrategyVeloC.Checkpoints() {
		t.Fatal("Checkpoints predicate wrong")
	}
}

func TestSparesRejectedWithoutFenix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("spares without Fenix accepted")
		}
	}()
	runStrategy(t, StrategyVeloC, 1, nil)
}

func TestRoleVisibleToApp(t *testing.T) {
	var mu sync.Mutex
	roles := map[int][]fenix.Role{}
	cfg := Config{Strategy: StrategyFenixKRVeloC, Spares: 1, CheckpointInterval: 5, CheckpointName: "r",
		Failures: []*FailurePlan{{Slot: 0, Iteration: 7}}}
	job := mpi.JobConfig{Ranks: 3, Machine: quietMachine(), Seed: 3}
	sink := newSink()
	inner := miniApp(tIters, 4, sink)
	res := Run(job, cfg, func(s *Session) error {
		mu.Lock()
		roles[s.Proc().Rank()] = append(roles[s.Proc().Rank()], s.Role())
		mu.Unlock()
		return inner(s)
	})
	if res.Failed {
		t.Fatalf("failed: %v", res.Err())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(roles[1]) != 2 || roles[1][1] != fenix.RoleSurvivor {
		t.Fatalf("rank 1 roles %v", roles[1])
	}
	if len(roles[2]) != 1 || roles[2][0] != fenix.RoleRecovered {
		t.Fatalf("spare roles %v", roles[2])
	}
}

func TestSessionAccessors(t *testing.T) {
	cfg := Config{Strategy: StrategyFenixKRVeloC, Spares: 1, CheckpointInterval: 5, CheckpointName: "acc"}
	job := mpi.JobConfig{Ranks: 3, Machine: quietMachine(), Seed: 9}
	res := Run(job, cfg, func(s *Session) error {
		if s.Size() != 2 {
			t.Errorf("Size = %d", s.Size())
		}
		if s.Strategy() != StrategyFenixKRVeloC {
			t.Errorf("Strategy = %v", s.Strategy())
		}
		if err := s.Check(nil); err != nil {
			t.Errorf("Check(nil) = %v", err)
		}
		s.DeclareAliases("a", "b") // must not panic with KR
		x := kokkos.NewF64("a", 2)
		y := kokkos.NewF64("b", 2)
		if err := s.Checkpoint("r", 0, []kokkos.View{x, y}, func() error { return nil }); err != nil {
			return err
		}
		if _, al, _ := s.Census().Counts(); al != 1 {
			t.Errorf("alias count %d", al)
		}
		return nil
	})
	if res.Failed {
		t.Fatalf("failed: %v", res.Err())
	}
}

func TestSessionAccessorsNoKR(t *testing.T) {
	cfg := Config{Strategy: StrategyNone, CheckpointInterval: 5}
	job := mpi.JobConfig{Ranks: 1, Machine: quietMachine(), Seed: 9}
	res := Run(job, cfg, func(s *Session) error {
		s.DeclareAliases("a", "b") // no-op without KR or manual
		if s.Census().TotalViews() != 0 {
			t.Error("census non-empty without KR")
		}
		if s.ResumeIteration() != -1 {
			t.Error("fresh resume != -1")
		}
		return nil
	})
	if res.Failed {
		t.Fatal("failed")
	}
}
