package core

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/obs"
)

// runLocalized runs the miniApp under StrategyLocalized with an obs
// recorder attached, so the message-log counters and events are visible to
// the assertions.
func runLocalized(t *testing.T, spares int, exec mpi.ExecMode, fails ...*FailurePlan) (*Result, *resultSink, *obs.Recorder) {
	t.Helper()
	sink := newSink()
	rec := obs.New()
	cfg := Config{
		Strategy:           StrategyLocalized,
		Spares:             spares,
		CheckpointInterval: 5,
		CheckpointName:     "mini",
		Failures:           fails,
	}
	job := mpi.JobConfig{Ranks: tRanks + spares, Machine: quietMachine(), Seed: 7, Obs: rec, Exec: exec}
	res := Run(job, cfg, miniApp(tIters, tVecLen, sink))
	return res, sink, rec
}

// TestLocalizedRecoveryBitwiseIdentical is the tentpole contract: a kill
// between checkpoints recovers through the sender-based message log — only
// the replacement rolls back and replays — and the final state is still
// bitwise identical to a failure-free run.
func TestLocalizedRecoveryBitwiseIdentical(t *testing.T) {
	ref := reference(t)
	fail := &FailurePlan{Slot: 1, Iteration: 13}
	res, sink, rec := runLocalized(t, 1, mpi.ExecGoroutine, fail)
	if res.Failed || res.Err() != nil {
		t.Fatalf("run failed: %v", res.Err())
	}
	if !fail.Fired() {
		t.Fatal("failure plan never fired")
	}
	if res.Launches != 1 {
		t.Fatalf("launched %d times; localized recovery must not relaunch", res.Launches)
	}
	checkMatchesReference(t, sink, ref)

	reg := rec.Registry()
	if logged := reg.CounterValue(obs.MMsgLogged); logged == 0 {
		t.Fatal("nothing was captured into the message log")
	}
	if replayed := reg.CounterValue(obs.MMsgReplayed); replayed == 0 {
		t.Fatal("recovery consumed no logged messages; it was not localized")
	}

	// Only the replacement recomputes: the restored iteration plus the
	// iterations its predecessor had executed past the checkpoint (V=9,
	// predecessor reached iteration 12 before dying at the iteration-13
	// boundary → recompute covers 9..12 on one rank). A global rollback
	// re-executes those on every rank.
	wantRecompute := 4.0
	if got := reg.CounterValue(obs.MRecomputeIters); got != wantRecompute {
		t.Fatalf("recompute iterations = %v, want %v (replacement only)", got, wantRecompute)
	}

	// The replay duration was measured exactly once, on the replacement.
	if n := histCount(rec, obs.MReplaySeconds); n != 1 {
		t.Fatalf("replay duration observed %d times, want 1", n)
	}
}

// histCount returns the total observation count of a named histogram.
func histCount(rec *obs.Recorder, name string) int {
	return int(rec.Registry().Histogram(name, obs.TimeBuckets).Count())
}

// TestLocalizedRecoveryPoolExec pins the same contract under the worker
// pool execution mode: replay paths never block the caller, so pool
// scheduling must not change the virtual outcome.
func TestLocalizedRecoveryPoolExec(t *testing.T) {
	ref := reference(t)
	fail := &FailurePlan{Slot: 1, Iteration: 13}
	res, sink, rec := runLocalized(t, 1, mpi.ExecPool, fail)
	if res.Failed || res.Err() != nil {
		t.Fatalf("run failed: %v", res.Err())
	}
	checkMatchesReference(t, sink, ref)
	if replayed := rec.Registry().CounterValue(obs.MMsgReplayed); replayed == 0 {
		t.Fatal("pool-mode recovery consumed no logged messages")
	}
}

// TestLocalizedFailureBeforeFirstCheckpoint covers the no-committed-version
// corner: the victim dies before any checkpoint exists, the log of the
// aborted epoch is dropped on every rank, and the whole job re-executes
// live from scratch — still bitwise identical.
func TestLocalizedFailureBeforeFirstCheckpoint(t *testing.T) {
	ref := reference(t)
	fail := &FailurePlan{Slot: 2, Iteration: 2}
	res, sink, _ := runLocalized(t, 1, mpi.ExecGoroutine, fail)
	if res.Failed || res.Err() != nil {
		t.Fatalf("run failed: %v", res.Err())
	}
	if !fail.Fired() {
		t.Fatal("failure plan never fired")
	}
	checkMatchesReference(t, sink, ref)
}

// TestLocalizedLogGCWatermark drives a three-kill storm and asserts the
// message-log garbage collector holds the line: every committed epoch
// advances the watermark and trims entries below it, and at the end of the
// run the resident log is exactly appends minus trims — the log never
// grows monotonically.
func TestLocalizedLogGCWatermark(t *testing.T) {
	ref := reference(t)
	fails := []*FailurePlan{
		{Slot: 1, Iteration: 7},
		{Slot: 2, Iteration: 13},
		{Slot: 3, Iteration: 18},
	}
	res, sink, rec := runLocalized(t, 3, mpi.ExecGoroutine, fails...)
	if res.Failed || res.Err() != nil {
		t.Fatalf("run failed: %v", res.Err())
	}
	for _, fp := range fails {
		if !fp.Fired() {
			t.Fatalf("failure plan %+v never fired", fp)
		}
	}
	checkMatchesReference(t, sink, ref)

	reg := rec.Registry()
	logged := reg.CounterValue(obs.MMsgLogged)
	trimmed := reg.CounterValue(obs.MMsgLogTrimmed)
	entries := reg.GaugeValue(obs.MMsgLogEntries)
	if trimmed == 0 {
		t.Fatal("no log entries were ever trimmed across four committed epochs")
	}
	if entries != logged-trimmed {
		t.Fatalf("resident entries %v != logged %v - trimmed %v", entries, logged, trimmed)
	}
	if entries >= logged/2 {
		t.Fatalf("resident log (%v entries) retains most of the %v captured; GC is not keeping up", entries, logged)
	}

	// The trim events' watermark must be non-decreasing: each committed
	// epoch moves the frontier forward, never back.
	last := -1
	trims := 0
	for _, ev := range rec.Events() {
		if ev.Name != obs.EvMsgLogTrim {
			continue
		}
		trims++
		for _, a := range ev.Attrs {
			if a.Key == "watermark" {
				w, ok := a.Value.(int)
				if !ok {
					t.Fatalf("watermark attr has type %T", a.Value)
				}
				if w < last {
					t.Fatalf("watermark went backwards: %d after %d", w, last)
				}
				last = w
			}
		}
	}
	if trims == 0 {
		t.Fatal("no mpi.msglog_trim events emitted")
	}
	if last < 14 {
		t.Fatalf("final watermark %d; the iteration-14 checkpoint must have committed on every slot", last)
	}
}
