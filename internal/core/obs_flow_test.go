package core

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/obs"
)

// TestObsFailureEventOrdering runs the integrated stack with an injected
// failure and asserts the observability stream tells the recovery story in
// causal order: failure injection → detection → revoke → Fenix rebuild →
// spare activation → checkpoint restore → recompute.
func TestObsFailureEventOrdering(t *testing.T) {
	rec := obs.New()
	sink := newSink()
	failIter := 18 // ~95% between the last two checkpoints (interval 5)
	cfg := Config{
		Strategy:           StrategyFenixKRVeloC,
		Spares:             1,
		CheckpointInterval: 5,
		CheckpointName:     "mini",
		Failures:           []*FailurePlan{{Slot: 1, Iteration: failIter}},
	}
	job := mpi.JobConfig{Ranks: tRanks + 1, Machine: quietMachine(), Seed: 7, Obs: rec}
	res := Run(job, cfg, miniApp(tIters, tVecLen, sink))
	if res.Failed || res.Err() != nil {
		t.Fatalf("run failed: %v", res.Err())
	}

	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}

	// The sorted log must be non-decreasing in (time, seq), and every name
	// must come from the documented taxonomy.
	known := map[string]bool{}
	for _, n := range obs.EventNames() {
		known[n] = true
	}
	for i, e := range events {
		if !known[e.Name] {
			t.Errorf("undocumented event name %q", e.Name)
		}
		if i > 0 {
			prev := events[i-1]
			if e.Time < prev.Time || (e.Time == prev.Time && e.Seq < prev.Seq) {
				t.Fatalf("event %d out of order: (%v,%d) after (%v,%d)", i, e.Time, e.Seq, prev.Time, prev.Seq)
			}
		}
	}

	// Index of the first occurrence of each name in the ordered stream.
	first := map[string]int{}
	count := map[string]int{}
	for i, e := range events {
		if _, ok := first[e.Name]; !ok {
			first[e.Name] = i
		}
		count[e.Name]++
	}
	need := func(name string) int {
		t.Helper()
		i, ok := first[name]
		if !ok {
			t.Fatalf("event %s never emitted", name)
		}
		return i
	}

	// Recovery-only events must not predate the failure, so their first
	// occurrences order the whole episode.
	chain := []string{
		obs.EvFailureInjected,
		obs.EvFailureDetected,
		obs.EvRevoke,
		obs.EvFenixRebuild,
		obs.EvKRRestoreBegin,
		obs.EvVeloCRestart,
		obs.EvKRRestoreEnd,
	}
	for i := 1; i < len(chain); i++ {
		if need(chain[i-1]) >= need(chain[i]) {
			t.Errorf("causal order violated: %s (index %d) should precede %s (index %d)",
				chain[i-1], first[chain[i-1]], chain[i], first[chain[i]])
		}
	}
	if need(obs.EvRecomputeBegin) <= need(obs.EvFenixRebuild) {
		t.Errorf("recompute (index %d) should follow the rebuild (index %d)",
			first[obs.EvRecomputeBegin], first[obs.EvFenixRebuild])
	}
	if count[obs.EvRecomputeEnd] == 0 {
		t.Error("no recompute_end events")
	}

	// The spare's promotion must be visible and carry the failed slot.
	promoted := false
	for _, e := range events {
		if e.Name != obs.EvFenixRoleChange {
			continue
		}
		attrs := map[string]any{}
		for _, a := range e.Attrs {
			attrs[a.Key] = a.Value
		}
		if attrs["to"] == "recovered" {
			promoted = true
			if attrs["logical_rank"] != 1 {
				t.Errorf("recovered rank adopted logical rank %v, want 1", attrs["logical_rank"])
			}
			if e.Time < events[first[obs.EvFenixRebuild]].Time {
				t.Error("spare promotion predates the rebuild")
			}
		}
	}
	if !promoted {
		t.Error("no spare→recovered role change observed")
	}

	// Counters must agree with the story the events tell.
	reg := rec.Registry()
	for name, want := range map[string]float64{
		obs.MFailuresInjected: 1,
		obs.MFailuresSurvived: 1,
		obs.MRebuilds:         1,
		obs.MSparesActivated:  1,
		obs.MJobLaunches:      1,
	} {
		if got := reg.CounterValue(name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if got := reg.CounterValue(obs.MFailuresDetected); got < 1 {
		t.Errorf("%s = %v, want >= 1", obs.MFailuresDetected, got)
	}
	layer := obs.L("layer", "veloc")
	// 4 ranks checkpoint at iterations 4, 9, 14 before the failure and
	// re-checkpoint at 19 after recovery.
	if got := reg.CounterValue(obs.MCheckpoints, layer); got < 12 {
		t.Errorf("%s = %v, want >= 12", obs.MCheckpoints, got)
	}
	if got := reg.CounterValue(obs.MCheckpointBytes, layer); got <= 0 {
		t.Errorf("%s = %v, want > 0", obs.MCheckpointBytes, got)
	}
	if got := reg.CounterValue(obs.MRestores, layer); got < 1 {
		t.Errorf("%s = %v, want >= 1", obs.MRestores, got)
	}
	if got := reg.CounterValue(obs.MRecomputeIters); got < 1 {
		t.Errorf("%s = %v, want >= 1", obs.MRecomputeIters, got)
	}
	if events[first[obs.EvVeloCRestart]].Time >= events[len(events)-1].Time {
		t.Error("restart is the last event; expected recompute and job end after it")
	}
}

// TestObsDisabledRunsClean checks a job with no recorder still runs (the
// nil no-op path through every instrumentation site).
func TestObsDisabledRunsClean(t *testing.T) {
	res, _ := runStrategy(t, StrategyFenixKRVeloC, 1, &FailurePlan{Slot: 1, Iteration: 18})
	if res.Failed || res.Err() != nil {
		t.Fatalf("uninstrumented run failed: %v", res.Err())
	}
}
