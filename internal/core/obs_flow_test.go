package core

import (
	"strings"
	"testing"

	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// TestObsFailureEventOrdering runs the integrated stack with an injected
// failure and asserts the observability stream tells the recovery story in
// causal order: failure injection → detection → revoke → Fenix rebuild →
// spare activation → checkpoint restore → recompute.
func TestObsFailureEventOrdering(t *testing.T) {
	rec := obs.New()
	sink := newSink()
	failIter := 18 // ~95% between the last two checkpoints (interval 5)
	cfg := Config{
		Strategy:           StrategyFenixKRVeloC,
		Spares:             1,
		CheckpointInterval: 5,
		CheckpointName:     "mini",
		Failures:           []*FailurePlan{{Slot: 1, Iteration: failIter}},
	}
	job := mpi.JobConfig{Ranks: tRanks + 1, Machine: quietMachine(), Seed: 7, Obs: rec}
	res := Run(job, cfg, miniApp(tIters, tVecLen, sink))
	if res.Failed || res.Err() != nil {
		t.Fatalf("run failed: %v", res.Err())
	}

	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}

	// The sorted log must be non-decreasing in (time, rank, seq) — rank
	// breaks same-instant ties between causally unordered emitters, seq is
	// the within-rank causal order — and every name must come from the
	// documented taxonomy.
	known := map[string]bool{}
	for _, n := range obs.EventNames() {
		known[n] = true
	}
	for i, e := range events {
		if !known[e.Name] {
			t.Errorf("undocumented event name %q", e.Name)
		}
		if i > 0 {
			prev := events[i-1]
			if e.Time < prev.Time ||
				(e.Time == prev.Time && e.Rank < prev.Rank) ||
				(e.Time == prev.Time && e.Rank == prev.Rank && e.Seq < prev.Seq) {
				t.Fatalf("event %d out of order: (%v,r%d,%d) after (%v,r%d,%d)",
					i, e.Time, e.Rank, e.Seq, prev.Time, prev.Rank, prev.Seq)
			}
		}
	}

	// Index of the first occurrence of each name in the ordered stream.
	first := map[string]int{}
	count := map[string]int{}
	for i, e := range events {
		if _, ok := first[e.Name]; !ok {
			first[e.Name] = i
		}
		count[e.Name]++
	}
	need := func(name string) int {
		t.Helper()
		i, ok := first[name]
		if !ok {
			t.Fatalf("event %s never emitted", name)
		}
		return i
	}

	// Recovery-only events must not predate the failure, so their first
	// occurrences order the whole episode.
	chain := []string{
		obs.EvFailureInjected,
		obs.EvFailureDetected,
		obs.EvRevoke,
		obs.EvFenixRebuild,
		obs.EvKRRestoreBegin,
		obs.EvVeloCRestart,
		obs.EvKRRestoreEnd,
	}
	for i := 1; i < len(chain); i++ {
		if need(chain[i-1]) >= need(chain[i]) {
			t.Errorf("causal order violated: %s (index %d) should precede %s (index %d)",
				chain[i-1], first[chain[i-1]], chain[i], first[chain[i]])
		}
	}
	if need(obs.EvRecomputeBegin) <= need(obs.EvFenixRebuild) {
		t.Errorf("recompute (index %d) should follow the rebuild (index %d)",
			first[obs.EvRecomputeBegin], first[obs.EvFenixRebuild])
	}
	if count[obs.EvRecomputeEnd] == 0 {
		t.Error("no recompute_end events")
	}

	// The spare's promotion must be visible and carry the failed slot.
	promoted := false
	for _, e := range events {
		if e.Name != obs.EvFenixRoleChange {
			continue
		}
		attrs := map[string]any{}
		for _, a := range e.Attrs {
			attrs[a.Key] = a.Value
		}
		if attrs["to"] == "recovered" {
			promoted = true
			if attrs["logical_rank"] != 1 {
				t.Errorf("recovered rank adopted logical rank %v, want 1", attrs["logical_rank"])
			}
			if e.Time < events[first[obs.EvFenixRebuild]].Time {
				t.Error("spare promotion predates the rebuild")
			}
		}
	}
	if !promoted {
		t.Error("no spare→recovered role change observed")
	}

	// Counters must agree with the story the events tell.
	reg := rec.Registry()
	for name, want := range map[string]float64{
		obs.MFailuresInjected: 1,
		obs.MFailuresSurvived: 1,
		obs.MRebuilds:         1,
		obs.MSparesActivated:  1,
		obs.MJobLaunches:      1,
	} {
		if got := reg.CounterValue(name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if got := reg.CounterValue(obs.MFailuresDetected); got < 1 {
		t.Errorf("%s = %v, want >= 1", obs.MFailuresDetected, got)
	}
	layer := obs.L("layer", "veloc")
	// 4 ranks checkpoint at iterations 4, 9, 14 before the failure and
	// re-checkpoint at 19 after recovery.
	if got := reg.CounterValue(obs.MCheckpoints, layer); got < 12 {
		t.Errorf("%s = %v, want >= 12", obs.MCheckpoints, got)
	}
	if got := reg.CounterValue(obs.MCheckpointBytes, layer); got <= 0 {
		t.Errorf("%s = %v, want > 0", obs.MCheckpointBytes, got)
	}
	if got := reg.CounterValue(obs.MRestores, layer); got < 1 {
		t.Errorf("%s = %v, want >= 1", obs.MRestores, got)
	}
	if got := reg.CounterValue(obs.MRecomputeIters); got < 1 {
		t.Errorf("%s = %v, want >= 1", obs.MRecomputeIters, got)
	}
	if events[first[obs.EvVeloCRestart]].Time >= events[len(events)-1].Time {
		t.Error("restart is the last event; expected recompute and job end after it")
	}
}

// TestObsFailureStorm stresses the observability pipeline with a failure
// storm — two simultaneous kills in one iteration plus a repeated kill of
// the same slot in a later generation — while streaming the log
// incrementally, and cross-checks the reconstructed recovery spans
// against the metrics the layers report.
func TestObsFailureStorm(t *testing.T) {
	ref := reference(t)
	rec := obs.New()
	var stream strings.Builder
	rec.StreamJSONL(&stream, 0) // default reorder window
	sink := newSink()
	cfg := Config{
		Strategy:           StrategyFenixKRVeloC,
		Spares:             3,
		CheckpointInterval: 5,
		CheckpointName:     "mini",
		Failures: []*FailurePlan{
			{Slot: 1, Iteration: 8},
			{Slot: 2, Iteration: 8},  // simultaneous with the first
			{Slot: 1, Iteration: 14}, // repeated kill, next generation
		},
	}
	job := mpi.JobConfig{Ranks: tRanks + 3, Machine: quietMachine(), Seed: 11, Obs: rec}
	res := Run(job, cfg, miniApp(tIters, tVecLen, sink))
	if res.Failed || res.Err() != nil {
		t.Fatalf("storm run failed: %v (launches %d)", res.Err(), res.Launches)
	}
	for i, fp := range cfg.Failures {
		if !fp.Fired() {
			t.Fatalf("failure plan %d never fired", i)
		}
	}
	checkMatchesReference(t, sink, ref)

	// The streamed export must equal the post-hoc export byte for byte:
	// the reorder window absorbed every async flush completion stamp.
	if err := rec.FlushStream(); err != nil {
		t.Fatalf("stream flush: %v", err)
	}
	var post strings.Builder
	if err := rec.WriteJSONL(&post); err != nil {
		t.Fatal(err)
	}
	if stream.String() != post.String() {
		t.Error("streamed JSONL differs from post-hoc WriteJSONL")
	}
	if got := rec.StreamLate(); got != 0 {
		t.Errorf("%d events overflowed the reorder window", got)
	}

	// Every event documented, and the storm's interleaved recovery still
	// yields a causally ordered stream (Events() is (time, seq)-sorted;
	// the byte comparison above proves the stream saw the same order).
	known := map[string]bool{}
	for _, n := range obs.EventNames() {
		known[n] = true
	}
	events := rec.Events()
	for _, e := range events {
		if !known[e.Name] {
			t.Errorf("undocumented event name %q", e.Name)
		}
	}

	// Span reconstruction: one span per communicator rebuild, and the
	// spans' repair accounting must match the Fenix layer's own counters.
	rep, err := analyze.Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	reg := rec.Registry()
	rebuilds := int(reg.CounterValue(obs.MRebuilds))
	if rebuilds < 2 {
		t.Errorf("rebuilds = %d, want >= 2 (storm spans two generations)", rebuilds)
	}
	if len(rep.Spans) != rebuilds {
		t.Errorf("got %d spans, want one per rebuild (%d)", len(rep.Spans), rebuilds)
	}
	if rep.FailuresInjected != 3 || rep.FailuresUnrepaired != 0 {
		t.Errorf("injected %d unrepaired %d, want 3 and 0",
			rep.FailuresInjected, rep.FailuresUnrepaired)
	}
	repaired := 0
	for _, sp := range rep.Spans {
		repaired += sp.Replaced + sp.Shrunk
	}
	if repaired != 3 {
		t.Errorf("spans repair %d failures, want 3", repaired)
	}
	if got := reg.CounterValue(obs.MFailuresSurvived); got != float64(repaired) {
		t.Errorf("%s = %v, but spans account for %d", obs.MFailuresSurvived, got, repaired)
	}
	for i, sp := range rep.Spans {
		if sp.Kind != "fenix" {
			t.Errorf("span %d kind = %q, want fenix", i, sp.Kind)
		}
		if sp.Repair < sp.Start || sp.End < sp.Repair {
			t.Errorf("span %d timeline inverted: %+v", i, sp)
		}
		if i > 0 {
			if sp.Generation <= rep.Spans[i-1].Generation {
				t.Errorf("span %d generation %d not increasing", i, sp.Generation)
			}
			if sp.Start < rep.Spans[i-1].Start {
				t.Errorf("span %d starts before span %d", i, i-1)
			}
		}
	}
	// The storm's episodes restored checkpoints and re-executed lost
	// iterations; both phases must be visible in the aggregate.
	if rep.PhaseTotals.Restore <= 0 {
		t.Errorf("no restore time attributed: %+v", rep.PhaseTotals)
	}
	if rep.PhaseTotals.Recompute <= 0 {
		t.Errorf("no recompute time attributed: %+v", rep.PhaseTotals)
	}
	last := rep.Spans[len(rep.Spans)-1]
	if last.RecomputedIters == 0 {
		t.Error("final span recomputed no iterations")
	}
}

// TestObsFailureStormShrink extends the storm matrix past spare
// exhaustion: three kills against a single spare with ShrinkOnExhaustion
// enabled. The first failure is repaired by substitution, the next two by
// compacting the communicator, and the span reconstruction must tell
// exactly that story — one span per rebuild with correct Replaced/Shrunk
// disposition — while the job still completes on the smaller world.
func TestObsFailureStormShrink(t *testing.T) {
	rec := obs.New()
	sink := newSink()
	cfg := Config{
		Strategy:           StrategyFenixKRVeloC,
		Spares:             1,
		ShrinkOnExhaustion: true,
		CheckpointInterval: 5,
		CheckpointName:     "mini",
		Failures: []*FailurePlan{
			{Slot: 1, Iteration: 8},  // repaired by the only spare
			{Slot: 3, Iteration: 14}, // pool exhausted: shrink to 3 slots
			{Slot: 2, Iteration: 18}, // shrink again to 2 slots
		},
	}
	job := mpi.JobConfig{Ranks: tRanks + 1, Machine: quietMachine(), Seed: 13, Obs: rec}
	res := Run(job, cfg, miniApp(tIters, tVecLen, sink))
	if res.Failed || res.Err() != nil {
		t.Fatalf("shrink storm failed: %v (launches %d)", res.Err(), res.Launches)
	}
	for i, fp := range cfg.Failures {
		if !fp.Fired() {
			t.Fatalf("failure plan %d never fired", i)
		}
	}
	// The compacted world has two slots left; both must deliver a final
	// result (the values legitimately differ from the 4-rank reference:
	// the app folds an allreduce over the live communicator into its data).
	for r := 0; r < tRanks-2; r++ {
		if sink.get(r) == nil {
			t.Errorf("slot %d produced no result after shrink", r)
		}
	}

	rep, err := analyze.Analyze(rec.Events())
	if err != nil {
		t.Fatal(err)
	}
	reg := rec.Registry()
	if got := int(reg.CounterValue(obs.MRebuilds)); got != 3 {
		t.Errorf("rebuilds = %d, want 3", got)
	}
	if len(rep.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(rep.Spans))
	}
	wantDisposition := []struct{ replaced, shrunk int }{{1, 0}, {0, 1}, {0, 1}}
	for i, sp := range rep.Spans {
		if sp.Kind != "fenix" {
			t.Errorf("span %d kind = %q, want fenix", i, sp.Kind)
		}
		if sp.Replaced != wantDisposition[i].replaced || sp.Shrunk != wantDisposition[i].shrunk {
			t.Errorf("span %d disposed (replaced %d, shrunk %d), want (%d, %d)",
				i, sp.Replaced, sp.Shrunk, wantDisposition[i].replaced, wantDisposition[i].shrunk)
		}
		if i > 0 && sp.Generation <= rep.Spans[i-1].Generation {
			t.Errorf("span %d generation %d not increasing", i, sp.Generation)
		}
	}
	if rep.FailuresInjected != 3 || rep.FailuresRepaired != 3 || rep.FailuresUnrepaired != 0 {
		t.Errorf("injected %d repaired %d unrepaired %d, want 3/3/0",
			rep.FailuresInjected, rep.FailuresRepaired, rep.FailuresUnrepaired)
	}
	if got := reg.CounterValue(obs.MFailuresSurvived); got != 3 {
		t.Errorf("%s = %v, want 3", obs.MFailuresSurvived, got)
	}
	if got := reg.CounterValue(obs.MSparesActivated); got != 1 {
		t.Errorf("%s = %v, want 1 (the other two failures shrank the world)", obs.MSparesActivated, got)
	}
	if got := reg.CounterValue(obs.MShrinks); got < 2 {
		t.Errorf("%s = %v, want >= 2", obs.MShrinks, got)
	}
}

// TestObsFailureStormMixed is the storm matrix's mixed-generation cell:
// spare repairs and shrink repairs interleave across overlapping rebuilds.
// Generation 1 substitutes a spare; generation 2 takes two simultaneous
// kills with one spare left, so ONE rebuild both substitutes and shrinks;
// generation 3 then kills the previously recovered spare at its logical
// slot with the pool empty, forcing a second shrink. The streamed log,
// the span reconstruction, and the layer counters must all tell that
// story consistently.
func TestObsFailureStormMixed(t *testing.T) {
	rec := obs.New()
	var stream strings.Builder
	rec.StreamJSONL(&stream, 0)
	sink := newSink()
	cfg := Config{
		Strategy:           StrategyFenixKRVeloC,
		Spares:             2,
		ShrinkOnExhaustion: true,
		CheckpointInterval: 5,
		CheckpointName:     "mini",
		Failures: []*FailurePlan{
			{Slot: 1, Iteration: 8}, // repaired by the first spare
			// Simultaneous kills with one spare left: the lower failed slot
			// is substituted, the higher one shrunk away — a single rebuild
			// with mixed disposition.
			{Slot: 2, Iteration: 12},
			{Slot: 3, Iteration: 12},
			// The recovered spare now holds logical slot 1; killing it with
			// the pool empty forces a pure shrink of a previously
			// spare-repaired slot.
			{Slot: 1, Iteration: 17},
		},
	}
	job := mpi.JobConfig{Ranks: tRanks + 2, Machine: quietMachine(), Seed: 17, Obs: rec}
	res := Run(job, cfg, miniApp(tIters, tVecLen, sink))
	if res.Failed || res.Err() != nil {
		t.Fatalf("mixed storm failed: %v (launches %d)", res.Err(), res.Launches)
	}
	for i, fp := range cfg.Failures {
		if !fp.Fired() {
			t.Fatalf("failure plan %d never fired", i)
		}
	}
	// Two slots shrunk away (3 in gen 2, 1 in gen 3): the world ends at
	// tRanks-2 slots, each delivering a result.
	for r := 0; r < tRanks-2; r++ {
		if sink.get(r) == nil {
			t.Errorf("slot %d produced no result after the storm", r)
		}
	}

	// Streaming must survive the interleaved detection/revoke/shrink
	// traffic of overlapping rebuilds byte-for-byte.
	if err := rec.FlushStream(); err != nil {
		t.Fatalf("stream flush: %v", err)
	}
	var post strings.Builder
	if err := rec.WriteJSONL(&post); err != nil {
		t.Fatal(err)
	}
	if stream.String() != post.String() {
		t.Error("streamed JSONL differs from post-hoc WriteJSONL")
	}
	if got := rec.StreamLate(); got != 0 {
		t.Errorf("%d events overflowed the reorder window", got)
	}

	rep, err := analyze.Analyze(rec.Events())
	if err != nil {
		t.Fatal(err)
	}
	reg := rec.Registry()
	rebuilds := int(reg.CounterValue(obs.MRebuilds))
	if rebuilds != 3 {
		t.Errorf("rebuilds = %d, want 3", rebuilds)
	}
	if len(rep.Spans) != rebuilds {
		t.Fatalf("got %d spans for %d rebuilds, want one per rebuild", len(rep.Spans), rebuilds)
	}
	wantDisposition := []struct{ replaced, shrunk int }{{1, 0}, {1, 1}, {0, 1}}
	shrinkSpans := 0
	for i, sp := range rep.Spans {
		if sp.Kind != "fenix" {
			t.Errorf("span %d kind = %q, want fenix", i, sp.Kind)
		}
		if sp.Replaced != wantDisposition[i].replaced || sp.Shrunk != wantDisposition[i].shrunk {
			t.Errorf("span %d disposed (replaced %d, shrunk %d), want (%d, %d)",
				i, sp.Replaced, sp.Shrunk, wantDisposition[i].replaced, wantDisposition[i].shrunk)
		}
		if sp.Shrunk > 0 {
			shrinkSpans++
		}
		// Phase ordering must hold within every span, including the mixed
		// substitute-and-shrink rebuild.
		if sp.Repair < sp.Start || sp.End < sp.Repair {
			t.Errorf("span %d phases inverted: start %v repair %v end %v",
				i, sp.Start, sp.Repair, sp.End)
		}
		if i > 0 {
			if sp.Generation <= rep.Spans[i-1].Generation {
				t.Errorf("span %d generation %d not increasing", i, sp.Generation)
			}
			if sp.Start < rep.Spans[i-1].Start {
				t.Errorf("span %d starts before span %d", i, i-1)
			}
		}
	}
	// failures_survived_total and mpi_shrinks must agree with the spans:
	// every injected failure survived (4 = 2 replaced + 2 shrunk), and one
	// mpi.shrink per compacting rebuild.
	if rep.FailuresInjected != 4 || rep.FailuresRepaired != 4 || rep.FailuresUnrepaired != 0 {
		t.Errorf("injected %d repaired %d unrepaired %d, want 4/4/0",
			rep.FailuresInjected, rep.FailuresRepaired, rep.FailuresUnrepaired)
	}
	if got := reg.CounterValue(obs.MFailuresSurvived); got != 4 {
		t.Errorf("%s = %v, want 4", obs.MFailuresSurvived, got)
	}
	if got := reg.CounterValue(obs.MSparesActivated); got != 2 {
		t.Errorf("%s = %v, want 2 (the whole pool)", obs.MSparesActivated, got)
	}
	if got := int(reg.CounterValue(obs.MShrinks)); got != shrinkSpans || got != 2 {
		t.Errorf("%s = %d, want 2 (= spans with shrunk slots, got %d)",
			obs.MShrinks, got, shrinkSpans)
	}
	if rep.Shrinks != int(reg.CounterValue(obs.MShrinks)) {
		t.Errorf("analyzer shrinks %d != %s %v",
			rep.Shrinks, obs.MShrinks, reg.CounterValue(obs.MShrinks))
	}
}

// TestObsDisabledRunsClean checks a job with no recorder still runs (the
// nil no-op path through every instrumentation site).
func TestObsDisabledRunsClean(t *testing.T) {
	res, _ := runStrategy(t, StrategyFenixKRVeloC, 1, &FailurePlan{Slot: 1, Iteration: 18})
	if res.Failed || res.Err() != nil {
		t.Fatalf("uninstrumented run failed: %v", res.Err())
	}
}
