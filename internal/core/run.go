package core

import (
	"fmt"

	"repro/internal/fenix"
	"repro/internal/kokkos"
	"repro/internal/kr"
	"repro/internal/mpi"
	"repro/internal/trace"
	"repro/internal/veloc"
)

// App is the application body written against the Session API. It is
// invoked once per rank per (re-)entry: after a relaunch (fail-restart
// strategies) or a Fenix recovery (online strategies), exactly as the code
// between Fenix_Init and Fenix_Finalize in Figure 4.
type App func(s *Session) error

// Result is the outcome of a strategy run.
type Result struct {
	*mpi.JobResult
	Strategy Strategy
	// AppRanks is the number of application (non-spare) ranks.
	AppRanks int
}

// MeanAppTimes averages category times over application ranks only; spare
// ranks spend the run blocked in Fenix initialization and would dilute the
// per-rank averages the paper plots.
func (r *Result) MeanAppTimes() trace.Times {
	var sum trace.Times
	n := r.AppRanks
	if n > len(r.PerRank) {
		n = len(r.PerRank)
	}
	// Under Fenix, a spare that replaced a failed rank carries that logical
	// rank's post-recovery time; fold every world rank's time in but divide
	// by the number of application ranks.
	for _, t := range r.PerRank {
		sum = sum.Add(t)
	}
	return sum.Scale(1 / float64(n))
}

// TimesWithOther returns the mean per-rank category times with the Other
// category derived from job wall time, the paper's presentation.
func (r *Result) TimesWithOther() trace.Times {
	return r.MeanAppTimes().WithOther(r.WallTime)
}

// Run executes app under the given strategy on a simulated job.
func Run(job mpi.JobConfig, cfg Config, app App) *Result {
	cfg.normalize()
	if cfg.Strategy.UsesRelaunch() {
		job.FailRestart = true
		job.MaxRestarts = cfg.MaxRestarts
	}
	if !cfg.Strategy.UsesFenix() && (cfg.Spares != 0 || cfg.RehostReserve != 0) {
		panic(fmt.Sprintf("core: strategy %v cannot use spares", cfg.Strategy))
	}
	if cfg.Strategy.Localized() {
		// Localized recovery needs the sender-based message log capturing
		// from the first iteration on.
		job.MsgLog = true
	}
	appRanks := job.Ranks - cfg.Spares - cfg.RehostReserve
	if appRanks <= 0 {
		panic("core: no application ranks left after spares")
	}
	prog := newProgress()
	res := mpi.RunJob(job, func(p *mpi.Proc) error {
		return runRank(p, &cfg, prog, app)
	})
	return &Result{JobResult: res, Strategy: cfg.Strategy, AppRanks: appRanks}
}

func runRank(p *mpi.Proc, cfg *Config, prog *progress, app App) error {
	if !cfg.Strategy.UsesFenix() {
		s, err := newPlainSession(p, cfg, prog)
		if err != nil {
			return err
		}
		s.noteStart()
		return app(s)
	}

	var held *Session // survives Fenix re-entries for survivors
	fcfg := fenix.Config{
		Spares:             cfg.Spares,
		ShrinkOnExhaustion: cfg.ShrinkOnExhaustion,
		RehostReserve:      cfg.RehostReserve,
	}
	return fenix.Run(p, fcfg, func(fctx *fenix.Context) error {
		s, err := sessionForEntry(held, fctx, cfg, prog)
		if err != nil {
			return err
		}
		held = s
		s.noteStart()
		return app(s)
	})
}

// newPlainSession builds the session for non-Fenix strategies. For
// fail-restart strategies this runs afresh on every relaunch, and the
// VeloC version query performs the recovery discovery.
func newPlainSession(p *mpi.Proc, cfg *Config, prog *progress) (*Session, error) {
	comm := p.World().CommWorld()
	s := &Session{p: p, cfg: cfg, prog: prog, comm: comm, role: fenix.RoleInitial, Store: make(map[string]any), liveIter: -1, shadowIter: -1}
	switch cfg.Strategy {
	case StrategyNone:
		return s, nil
	case StrategyVeloC:
		client, err := veloc.New(p, veloc.Config{Mode: veloc.Collective, Comm: comm, Verify: cfg.SDC.Policy != kokkos.SDCNone})
		if err != nil {
			return nil, err
		}
		s.manual = &manualCtx{client: client, name: cfg.CheckpointName, interval: cfg.CheckpointInterval, latest: -1}
		return s, s.manual.resync(comm, p)
	case StrategyKRVeloC:
		client, err := veloc.New(p, veloc.Config{Mode: veloc.Collective, Comm: comm, Verify: cfg.SDC.Policy != kokkos.SDCNone})
		if err != nil {
			return nil, err
		}
		ctx, err := kr.MakeContext(p, comm, kr.NewVeloCBackend(client, cfg.CheckpointName),
			kr.Config{Interval: cfg.CheckpointInterval, RestoreSurvivors: true})
		if err != nil {
			return nil, err
		}
		s.krctx = ctx
		return s, nil
	default:
		return nil, fmt.Errorf("core: strategy %v is not a plain strategy", cfg.Strategy)
	}
}

// sessionForEntry builds or refreshes the session on each entry into the
// Fenix-protected body, implementing the role dispatch of Figure 4:
// initial ranks create contexts, survivors reset them against the repaired
// communicator, and recovered ranks (substituted spares) create fresh ones.
func sessionForEntry(held *Session, fctx *fenix.Context, cfg *Config, prog *progress) (*Session, error) {
	p := fctx.Proc()
	if held != nil && fctx.Role() == fenix.RoleSurvivor {
		// Survivor: memory (and Store) intact; re-point everything at the
		// repaired communicator per the paper's ctx.reset(res_comm).
		held.comm = fctx.Comm()
		held.role = fenix.RoleSurvivor
		held.fctx = fctx
		switch {
		case held.krctx != nil:
			if err := held.krctx.Reset(fctx.Comm()); err != nil {
				return nil, err
			}
			if cfg.Strategy.Localized() {
				if held.krctx.RecoveryPending() {
					held.collInstallPending = p.MsgLogActive()
				} else {
					// No committed checkpoint survives the failure: every
					// rank rebuilds from scratch and re-executes live, so
					// the aborted epoch's log is garbage everywhere.
					held.collInstallPending = false
					held.liveIter = -1
					held.shadow, held.shadowIter = nil, -1
					p.MsgLogResetOnce(fctx.Generation())
				}
			}
		case held.manual != nil:
			held.manual.client.SetComm(fctx.Comm())
			held.manual.client.SetRank(fctx.Rank())
			if err := held.manual.resync(fctx.Comm(), p); err != nil {
				return nil, err
			}
		}
		return held, nil
	}

	// Initial entry or a recovered replacement: build everything fresh.
	s := &Session{
		p: p, cfg: cfg, prog: prog,
		comm: fctx.Comm(), role: fctx.Role(), fctx: fctx,
		Store: make(map[string]any), liveIter: -1, shadowIter: -1,
	}
	switch cfg.Strategy {
	case StrategyFenixVeloC:
		client, err := veloc.New(p, veloc.Config{Mode: veloc.Single, Rank: fctx.Rank(), RankSet: true, Verify: cfg.SDC.Policy != kokkos.SDCNone})
		if err != nil {
			return nil, err
		}
		// The comm is not used for collectives in Single mode, but the flush
		// scheduler needs it for the PFS congestion share.
		client.SetComm(fctx.Comm())
		s.manual = &manualCtx{client: client, name: cfg.CheckpointName, interval: cfg.CheckpointInterval, latest: -1}
		return s, s.manual.resync(fctx.Comm(), p)
	case StrategyFenixKRVeloC, StrategyPartialRollback, StrategyLocalized:
		client, err := veloc.New(p, veloc.Config{Mode: veloc.Single, Rank: fctx.Rank(), RankSet: true, Verify: cfg.SDC.Policy != kokkos.SDCNone})
		if err != nil {
			return nil, err
		}
		krCfg := kr.Config{Interval: cfg.CheckpointInterval, RestoreSurvivors: true}
		if cfg.Strategy.PartialRollback() || cfg.Strategy.Localized() {
			krCfg.RestoreSurvivors = false
			krCfg.Recovered = func() bool { return fctx.Role() == fenix.RoleRecovered }
			krCfg.Localized = cfg.Strategy.Localized()
		}
		ctx, err := kr.MakeContext(p, fctx.Comm(), kr.NewVeloCBackend(client, cfg.CheckpointName), krCfg)
		if err != nil {
			return nil, err
		}
		s.krctx = ctx
		if cfg.Strategy.Localized() && fctx.Role() == fenix.RoleRecovered {
			if ctx.RecoveryPending() {
				// The replacement's replay clock starts at re-entry; it
				// stops when forward re-execution crosses the log frontier.
				s.replayStarted, s.replayStart = true, p.Now()
			} else {
				// Predecessor died before any commit: full re-execution
				// from scratch for everyone; drop the aborted epoch's log.
				p.MsgLogResetOnce(fctx.Generation())
			}
		}
		return s, nil
	case StrategyFenixIMR:
		im, err := fenix.NewIMR(fctx, cfg.CheckpointName)
		if err != nil {
			return nil, err
		}
		ctx, err := kr.MakeContext(p, fctx.Comm(), kr.NewIMRBackend(im),
			kr.Config{Interval: cfg.CheckpointInterval, RestoreSurvivors: true})
		if err != nil {
			return nil, err
		}
		s.krctx = ctx
		return s, nil
	default:
		return nil, fmt.Errorf("core: strategy %v is not a Fenix strategy", cfg.Strategy)
	}
}
