package core

import (
	"fmt"
	"math"

	"repro/internal/kokkos"
	"repro/internal/obs"
	"repro/internal/trace"
)

// SDCConfig configures the silent-data-corruption detection layer: the
// policy resilient regions run under and the bounds the replay validator
// checks view contents against.
type SDCConfig struct {
	// Policy selects the detection strategy (none, checksum, replay, vote).
	Policy kokkos.SDCPolicy
	// Retries bounds replay re-executions (default 2).
	Retries int
	// MinVal/MaxVal are the physical bounds the replay validator accepts
	// for F64 view elements. Both zero means unbounded (finiteness only).
	MinVal, MaxVal float64
}

// sdcScanSecondsPerByte is the virtual cost of one streaming pass over a
// region's views (snapshot, restore, validate, or compare), modeling a
// ~12 GiB/s memory-bandwidth-bound scan. The dominant detection overhead —
// duplicate and replay executions of the body itself — is charged by the
// body's own compute model; this covers only the bookkeeping passes.
const sdcScanSecondsPerByte = 1.0 / float64(12<<30)

// Region executes a communication-free parallel region under the session's
// SDC policy — the integration point between the chaos corruptor (which
// may flip a bit in the views after the primary execution) and the Kokkos
// resilient-execution wrapper (which may detect and repair it). views must
// list every view the body reads or writes; body must be deterministic.
// The error, if any, is ErrSDCUnrecoverable escalation: the region could
// not self-repair and the control-flow layer must roll back.
func (s *Session) Region(label string, views []kokkos.View, body func()) error {
	pol := s.cfg.SDC.Policy
	corrupt := func(vs []kokkos.View) int {
		frac, bit, ok := s.p.FlipAt("kokkos.region")
		if !ok {
			return 0
		}
		vlabel, elem := kokkos.FlipBit(vs, frac, bit)
		if elem < 0 {
			return 0
		}
		s.p.Event(obs.LayerChaos, obs.EvSDCInjected,
			obs.KV("point", "kokkos.region"), obs.KV("region", label),
			obs.KV("view", vlabel), obs.KV("elem", elem), obs.KV("bit", bit))
		s.p.Obs().Registry().Counter(obs.MSDCInjected).Inc()
		return 1
	}
	var validate func([]kokkos.View) bool
	if pol == kokkos.SDCReplay {
		min, max := s.cfg.SDC.MinVal, s.cfg.SDC.MaxVal
		if min == 0 && max == 0 {
			min, max = math.Inf(-1), math.Inf(1)
		}
		validate = kokkos.BoundsValidator(min, max)
	}
	reg := kokkos.Region{Policy: pol, Retries: s.cfg.SDC.Retries, Validate: validate, Corrupt: corrupt}
	rep, err := reg.Run(views, body)

	r := s.p.Obs().Registry()
	attrs := func() []obs.Attr {
		return []obs.Attr{
			obs.KV("point", "kokkos.region"), obs.KV("region", label),
			obs.KV("replays", rep.Replays), obs.KV("votes", rep.Votes),
		}
	}
	if rep.Detected > 0 {
		s.p.Event(obs.LayerChaos, obs.EvSDCDetected, attrs()...)
		r.Counter(obs.MSDCDetected).Add(float64(rep.Detected))
	}
	if rep.Corrected > 0 {
		s.p.Event(obs.LayerChaos, obs.EvSDCCorrected, attrs()...)
		r.Counter(obs.MSDCCorrected).Add(float64(rep.Corrected))
	}
	if rep.Escaped > 0 {
		s.p.Event(obs.LayerChaos, obs.EvSDCEscaped, attrs()...)
		r.Counter(obs.MSDCEscaped).Add(float64(rep.Escaped))
	}
	if rep.Replays > 0 {
		r.Counter(obs.MSDCReplays).Add(float64(rep.Replays))
	}
	if rep.Votes > 0 {
		r.Counter(obs.MSDCVotes).Add(float64(rep.Votes))
	}
	if pol.Detects() {
		simBytes := 0
		for _, v := range views {
			simBytes += v.SimBytes()
		}
		scans := 0
		switch pol {
		case kokkos.SDCReplay:
			scans = 2 + 2*rep.Replays
		case kokkos.SDCVote:
			scans = 1 + 2*rep.Votes
		}
		s.p.ChargeTime(trace.ResilienceInit, float64(scans)*float64(simBytes)*sdcScanSecondsPerByte)
	}
	if err != nil {
		return fmt.Errorf("region %s: %w", label, err)
	}
	return nil
}
