package core

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/fenix"
	"repro/internal/kokkos"
	"repro/internal/kr"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/veloc"
)

// FailurePlan schedules one injected process failure: the process holding
// logical rank Slot exits just before executing iteration Iteration. The
// harness places Iteration ~95% of the way between two checkpoints so that
// asynchronous flushes have completed, matching the paper's protocol. A
// plan fires at most once per job, including across relaunches.
type FailurePlan struct {
	Slot      int
	Iteration int
	fired     atomic.Bool
}

func (fp *FailurePlan) matches(slot, iter int) bool {
	return fp != nil && slot == fp.Slot && iter == fp.Iteration && fp.fired.CompareAndSwap(false, true)
}

// Fired reports whether the plan has triggered.
func (fp *FailurePlan) Fired() bool { return fp.fired.Load() }

// Config selects and parameterizes a resilience strategy.
type Config struct {
	// Strategy is the layer combination to run.
	Strategy Strategy
	// Spares is the number of spare ranks Fenix holds out (Fenix
	// strategies only).
	Spares int
	// ShrinkOnExhaustion, when true, lets Fenix continue with a smaller
	// resilient communicator once the spare pool is exhausted instead of
	// failing the job (Fenix strategies only).
	ShrinkOnExhaustion bool
	// CheckpointInterval checkpoints every k-th iteration.
	CheckpointInterval int
	// CheckpointName names the checkpoint set.
	CheckpointName string
	// MaxRestarts bounds relaunches for fail-restart strategies.
	MaxRestarts int
	// Failures lists the injected failures (nil for overhead-only runs).
	Failures []*FailurePlan
	// SDC configures the silent-data-corruption detection layer; the zero
	// value (policy none) runs regions bare and skips blob verification.
	SDC SDCConfig
}

func (c *Config) normalize() {
	if c.CheckpointName == "" {
		c.CheckpointName = "app"
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 1 << 30 // effectively never
	}
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 4
	}
}

// progress tracks the furthest iteration each logical rank has executed,
// across failures and relaunches, so re-executed iterations are attributed
// to the Recompute category.
type progress struct {
	mu      sync.Mutex
	maxIter map[int]int
}

func newProgress() *progress { return &progress{maxIter: make(map[int]int)} }

func (g *progress) isRecompute(slot, iter int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	max, ok := g.maxIter[slot]
	return ok && iter <= max
}

func (g *progress) update(slot, iter int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if max, ok := g.maxIter[slot]; !ok || iter > max {
		g.maxIter[slot] = iter
	}
}

// Session is one rank's handle on the integrated resilience system. It is
// recreated on relaunch (process memory is lost) and persists across Fenix
// re-entries for survivors (memory intact).
type Session struct {
	p    *mpi.Proc
	cfg  *Config
	prog *progress

	comm   *mpi.Comm
	role   fenix.Role
	fctx   *fenix.Context // nil without Fenix
	krctx  *kr.Context    // nil without KR
	manual *manualCtx     // nil without hand-written control flow

	// Store persists application state (views, solver data) across Fenix
	// re-entries of the same process.
	Store map[string]any
}

// noteStart records the session (re-)entry in the observability stream:
// once per plain session, and once per entry into the Fenix-protected body
// (so recoveries show up as fresh session_start events with the new role).
func (s *Session) noteStart() {
	s.p.Event(obs.LayerCore, obs.EvSessionStart,
		obs.KV("strategy", s.cfg.Strategy.String()),
		obs.KV("role", s.role.String()),
		obs.KV("logical_rank", s.Rank()))
}

// Proc returns the underlying MPI process.
func (s *Session) Proc() *mpi.Proc { return s.p }

// Comm returns the communicator application code must use: the resilient
// communicator under Fenix, MPI_COMM_WORLD otherwise.
func (s *Session) Comm() *mpi.Comm { return s.comm }

// Role returns the Fenix role (RoleInitial for non-Fenix strategies, since
// a relaunched process starts fresh).
func (s *Session) Role() fenix.Role { return s.role }

// Rank returns this rank's logical ID (resilient comm rank under Fenix).
func (s *Session) Rank() int { return s.comm.Rank(s.p) }

// Size returns the number of application ranks.
func (s *Session) Size() int { return s.comm.Size() }

// Strategy returns the active strategy.
func (s *Session) Strategy() Strategy { return s.cfg.Strategy }

// Check routes an MPI error to the Fenix recovery jump when running under
// Fenix, and returns it unchanged otherwise.
func (s *Session) Check(err error) error {
	if s.fctx != nil {
		return s.fctx.Check(err)
	}
	return err
}

// ResumeIteration returns the iteration the application loop should start
// from: -1 for a fresh start, or the latest checkpoint version when
// recovering (the Checkpoint call at that iteration restores data instead
// of executing, per Figure 4).
func (s *Session) ResumeIteration() int {
	switch {
	case s.krctx != nil:
		if s.krctx.RecoveryPending() {
			return s.krctx.LatestVersion()
		}
	case s.manual != nil:
		if s.manual.pending {
			return s.manual.latest
		}
	}
	return -1
}

// DeclareAliases forwards a swap-space alias declaration to the
// control-flow layer, or to the hand-written control flow for strategies
// without KR (a manual VeloC user would simply not register the swap
// buffer).
func (s *Session) DeclareAliases(primary, alias string) {
	if s.krctx != nil {
		s.krctx.DeclareAliases(primary, alias)
	}
	if s.manual != nil {
		if s.manual.aliases == nil {
			s.manual.aliases = make(map[string]bool)
		}
		s.manual.aliases[alias] = true
	}
}

// Census returns the most recent view classification (zero value without
// KR).
func (s *Session) Census() kr.Census {
	if s.krctx != nil {
		return s.krctx.Census()
	}
	return kr.Census{}
}

// Checkpoint wraps one iteration of the application's checkpoint region:
// failure injection, recompute attribution, recovery-or-execute, and
// checkpoint writing are all handled according to the strategy.
func (s *Session) Checkpoint(label string, iter int, views []kokkos.View, body func() error) error {
	slot := s.Rank()
	for _, fp := range s.cfg.Failures {
		if fp.matches(slot, iter) {
			s.p.Event(obs.LayerCore, obs.EvFailureInjected,
				obs.KV("slot", slot), obs.KV("iter", iter))
			s.p.Obs().Registry().Counter(obs.MFailuresInjected).Inc()
			s.p.Exit()
		}
	}
	s.p.Inject("core.iteration")
	if s.prog != nil {
		re := s.prog.isRecompute(slot, iter)
		// Under partial rollback survivors never roll their data back, so
		// re-executed loop indices are not wasted work — they advance the
		// solver. Only the recovered rank truly recomputes.
		if s.cfg.Strategy.PartialRollback() && s.role != fenix.RoleRecovered {
			re = false
		}
		s.p.Recorder().SetRecompute(re)
		defer s.p.Recorder().SetRecompute(false)
		if re {
			s.p.Event(obs.LayerCore, obs.EvRecomputeBegin,
				obs.KV("slot", slot), obs.KV("iter", iter))
			s.p.Obs().Registry().Counter(obs.MRecomputeIters).Inc()
			defer func() {
				s.p.Event(obs.LayerCore, obs.EvRecomputeEnd,
					obs.KV("slot", slot), obs.KV("iter", iter))
			}()
		}
	}
	var err error
	switch {
	case s.krctx != nil:
		err = s.krctx.Checkpoint(label, iter, views, body)
	case s.manual != nil:
		err = s.manual.checkpoint(iter, views, body)
	default:
		err = body()
	}
	if err != nil {
		return s.Check(err)
	}
	if s.prog != nil {
		s.prog.update(slot, iter)
	}
	return nil
}

// manualCtx is the hand-written control flow a developer would pair with
// raw VeloC: protect the views once, restore at the resume iteration, and
// checkpoint on the interval. It exists so the no-KR configurations
// (StrategyVeloC, StrategyFenixVeloC) exercise the same application code.
type manualCtx struct {
	client   *veloc.Client
	name     string
	interval int
	latest   int
	pending  bool
	guarded  bool // views protected
	aliases  map[string]bool
}

// viewRegion adapts a kokkos view as a VeloC region.
type viewRegion struct{ v kokkos.View }

func (r viewRegion) Bytes() []byte          { return r.v.Serialize() }
func (r viewRegion) Restore(b []byte) error { return r.v.Deserialize(b) }
func (r viewRegion) SimBytes() int          { return r.v.SimBytes() }

func (m *manualCtx) resync(comm *mpi.Comm, p *mpi.Proc) error {
	var v int
	var err error
	if m.client.Mode() == veloc.Collective {
		v, err = m.client.LatestVersion(m.name)
	} else {
		v, err = m.client.BestCommonVersion(m.name, comm)
	}
	switch {
	case err == nil:
		m.latest, m.pending = v, true
		return nil
	case errors.Is(err, veloc.ErrNoCheckpoint):
		m.latest, m.pending = -1, false
		return nil
	default:
		return err
	}
}

func (m *manualCtx) protect(views []kokkos.View) {
	if m.guarded {
		return
	}
	unique := kr.CensusOf(views, m.aliases).CheckpointedViews()
	for i, v := range unique {
		m.client.Protect(i, viewRegion{v})
	}
	m.guarded = true
}

func (m *manualCtx) checkpoint(iter int, views []kokkos.View, body func() error) error {
	m.protect(views)
	if m.pending && iter == m.latest {
		m.pending = false
		return m.client.Restart(m.name, iter)
	}
	if err := body(); err != nil {
		return err
	}
	if (iter+1)%m.interval == 0 {
		if err := m.client.Checkpoint(m.name, iter); err != nil {
			return err
		}
		m.latest = iter
	}
	return nil
}
