package core

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/fenix"
	"repro/internal/kokkos"
	"repro/internal/kr"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/veloc"
)

// FailurePlan schedules one injected process failure: the process holding
// logical rank Slot exits just before executing iteration Iteration. The
// harness places Iteration ~95% of the way between two checkpoints so that
// asynchronous flushes have completed, matching the paper's protocol. A
// plan fires at most once per job, including across relaunches.
type FailurePlan struct {
	Slot      int
	Iteration int
	fired     atomic.Bool
}

func (fp *FailurePlan) matches(slot, iter int) bool {
	return fp != nil && slot == fp.Slot && iter == fp.Iteration && fp.fired.CompareAndSwap(false, true)
}

// Fired reports whether the plan has triggered.
func (fp *FailurePlan) Fired() bool { return fp.fired.Load() }

// Config selects and parameterizes a resilience strategy.
type Config struct {
	// Strategy is the layer combination to run.
	Strategy Strategy
	// Spares is the number of spare ranks Fenix holds out (Fenix
	// strategies only).
	Spares int
	// ShrinkOnExhaustion, when true, lets Fenix continue with a smaller
	// resilient communicator once the spare pool is exhausted instead of
	// failing the job (Fenix strategies only).
	ShrinkOnExhaustion bool
	// CheckpointInterval checkpoints every k-th iteration.
	CheckpointInterval int
	// CheckpointName names the checkpoint set.
	CheckpointName string
	// MaxRestarts bounds relaunches for fail-restart strategies.
	MaxRestarts int
	// RehostReserve is the number of extra world ranks Fenix holds behind
	// the spare pool as a second-line replacement reserve; drawing on it
	// re-hosts a failed slot instead of shrinking, keeping the lineage
	// width (and message-log slot identity) stable (Fenix strategies only).
	RehostReserve int
	// Failures lists the injected failures (nil for overhead-only runs).
	Failures []*FailurePlan
	// SDC configures the silent-data-corruption detection layer; the zero
	// value (policy none) runs regions bare and skips blob verification.
	SDC SDCConfig
}

func (c *Config) normalize() {
	if c.CheckpointName == "" {
		c.CheckpointName = "app"
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 1 << 30 // effectively never
	}
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 4
	}
}

// progress tracks the furthest iteration each logical rank has executed,
// across failures and relaunches, so re-executed iterations are attributed
// to the Recompute category.
type progress struct {
	mu      sync.Mutex
	maxIter map[int]int
}

func newProgress() *progress { return &progress{maxIter: make(map[int]int)} }

func (g *progress) isRecompute(slot, iter int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	max, ok := g.maxIter[slot]
	return ok && iter <= max
}

func (g *progress) update(slot, iter int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if max, ok := g.maxIter[slot]; !ok || iter > max {
		g.maxIter[slot] = iter
	}
}

// Session is one rank's handle on the integrated resilience system. It is
// recreated on relaunch (process memory is lost) and persists across Fenix
// re-entries for survivors (memory intact).
type Session struct {
	p    *mpi.Proc
	cfg  *Config
	prog *progress

	comm   *mpi.Comm
	role   fenix.Role
	fctx   *fenix.Context // nil without Fenix
	krctx  *kr.Context    // nil without KR
	manual *manualCtx     // nil without hand-written control flow

	// Store persists application state (views, solver data) across Fenix
	// re-entries of the same process.
	Store map[string]any

	// liveIter is the highest iteration whose effects this process's live
	// data reflects in its current incarnation (-1 for none): advanced by
	// executed bodies and by checkpoint restores. Under localized recovery
	// it drives the survivor skip — a survivor pauses through iterations
	// its data already contains while the replacement replays. It is
	// per-process, NOT per-slot progress: an ex-replacement that survives
	// a second failure mid-replay holds data well behind its slot's
	// recorded maximum.
	liveIter int
	// collInstallPending marks a survivor that must rewind its collective
	// log cursor at the first boundary after a Fenix re-entry, so that
	// loop-level collectives re-executed across the skipped region are
	// served from the logged lineage.
	collInstallPending bool
	// replayStart is the virtual time a recovered rank's localized replay
	// began; consumed into mpi_replay_seconds when it crosses the log
	// frontier.
	replayStart   float64
	replayStarted bool
	// shadow is the boundary-entry image of the captured views for the
	// iteration last entered (shadowIter), kept only under localized
	// recovery. A failure can surface inside a body that already mutated
	// live data (e.g. MiniMD's half-kick and drift precede its halo
	// exchange); the surviving rank re-executes that iteration from the
	// shadow so the partial mutations are not applied twice.
	shadow     [][]byte
	shadowIter int
}

// noteStart records the session (re-)entry in the observability stream:
// once per plain session, and once per entry into the Fenix-protected body
// (so recoveries show up as fresh session_start events with the new role).
func (s *Session) noteStart() {
	s.p.Event(obs.LayerCore, obs.EvSessionStart,
		obs.KV("strategy", s.cfg.Strategy.String()),
		obs.KV("role", s.role.String()),
		obs.KV("logical_rank", s.Rank()))
}

// Proc returns the underlying MPI process.
func (s *Session) Proc() *mpi.Proc { return s.p }

// Comm returns the communicator application code must use: the resilient
// communicator under Fenix, MPI_COMM_WORLD otherwise.
func (s *Session) Comm() *mpi.Comm { return s.comm }

// Role returns the Fenix role (RoleInitial for non-Fenix strategies, since
// a relaunched process starts fresh).
func (s *Session) Role() fenix.Role { return s.role }

// Rank returns this rank's logical ID (resilient comm rank under Fenix).
func (s *Session) Rank() int { return s.comm.Rank(s.p) }

// Size returns the number of application ranks.
func (s *Session) Size() int { return s.comm.Size() }

// Strategy returns the active strategy.
func (s *Session) Strategy() Strategy { return s.cfg.Strategy }

// Check routes an MPI error to the Fenix recovery jump when running under
// Fenix, and returns it unchanged otherwise.
func (s *Session) Check(err error) error {
	if s.fctx != nil {
		return s.fctx.Check(err)
	}
	return err
}

// ResumeIteration returns the iteration the application loop should start
// from: -1 for a fresh start, or the latest checkpoint version when
// recovering (the Checkpoint call at that iteration restores data instead
// of executing, per Figure 4).
func (s *Session) ResumeIteration() int {
	switch {
	case s.krctx != nil:
		if s.krctx.RecoveryPending() {
			return s.krctx.LatestVersion()
		}
	case s.manual != nil:
		if s.manual.pending {
			return s.manual.latest
		}
	}
	return -1
}

// DeclareAliases forwards a swap-space alias declaration to the
// control-flow layer, or to the hand-written control flow for strategies
// without KR (a manual VeloC user would simply not register the swap
// buffer).
func (s *Session) DeclareAliases(primary, alias string) {
	if s.krctx != nil {
		s.krctx.DeclareAliases(primary, alias)
	}
	if s.manual != nil {
		if s.manual.aliases == nil {
			s.manual.aliases = make(map[string]bool)
		}
		s.manual.aliases[alias] = true
	}
}

// Census returns the most recent view classification (zero value without
// KR).
func (s *Session) Census() kr.Census {
	if s.krctx != nil {
		return s.krctx.Census()
	}
	return kr.Census{}
}

// localizedActive reports whether message-log localized recovery is in
// force: the strategy selects it, KR manages control flow, and the log has
// not been disabled by a shrink compaction.
func (s *Session) localizedActive() bool {
	return s.cfg.Strategy.Localized() && s.krctx != nil && s.p.MsgLogActive()
}

// msgLogBoundary runs the DESIGN.md §12 checkpoint-region boundary
// protocol before iteration iter: record this slot's log cursors for a
// first-reached boundary, or install previously recorded ones when
// re-executing (replacement) or resuming (survivor).
func (s *Session) msgLogBoundary(slot, iter int) {
	if !s.localizedActive() {
		return
	}
	switch s.role {
	case fenix.RoleRecovered:
		// Replaying replacement: adopt the predecessor's cursors at every
		// boundary it recorded, so re-executed sends are suppressed and
		// receives/collectives are served from the log.
		if s.p.MsgLogInstall(slot, iter, true) {
			return
		}
		// No snapshot: the replay has crossed the log frontier and this
		// boundary is genuinely new.
		s.noteReplayDone()
		s.p.MsgLogRecord(slot, iter)
	case fenix.RoleSurvivor:
		if s.collInstallPending {
			// First boundary after re-entry: rewind only the collective
			// cursor so loop-level collectives re-executed across the
			// skipped region replay the logged lineage. The live p2p
			// cursors are ground truth for a survivor and stay put.
			s.collInstallPending = false
			s.p.MsgLogInstall(slot, iter, false)
		}
		if iter == s.liveIter+1 {
			// First live iteration. If this boundary was recorded, the
			// failure interrupted the iteration mid-body (or a previous
			// incarnation got further): rewind fully, so the partial
			// re-execution's sends are suppressed and its receives are
			// served from the log instead of double-delivering.
			if s.p.MsgLogInstall(slot, iter, true) {
				return
			}
		}
		if iter > s.liveIter {
			s.p.MsgLogRecord(slot, iter)
		}
	default:
		s.p.MsgLogRecord(slot, iter)
	}
}

// localizedSkip reports whether a survivor pauses through iteration iter
// under localized recovery: its live data already reflects the body, so
// nothing executes while the replacement replays. A pending restore at the
// restored iteration is consumed without touching data.
func (s *Session) localizedSkip(slot, iter int) bool {
	if !s.localizedActive() || s.role != fenix.RoleSurvivor || iter > s.liveIter {
		return false
	}
	if s.krctx.RecoveryPending() && iter == s.krctx.LatestVersion() {
		s.krctx.SkipRestore()
	}
	return true
}

// boundaryShadow maintains the localized-recovery boundary image of the
// captured views. Reaching the same boundary twice without completing it
// means the failure surfaced inside the body after it had already mutated
// live data (a survivor's partial iteration): the views are rewound to
// their boundary-entry image first, so the re-execution — whose sends are
// suppressed and receives log-served via the matching cursor snapshot —
// does not apply the body's leading mutations twice. First arrivals just
// record the image.
func (s *Session) boundaryShadow(iter int, views []kokkos.View) error {
	if !s.localizedActive() {
		return nil
	}
	if s.role == fenix.RoleSurvivor && s.shadowIter == iter && len(s.shadow) == len(views) {
		for i, v := range views {
			if err := v.Deserialize(s.shadow[i]); err != nil {
				return err
			}
		}
		return nil
	}
	s.shadow = s.shadow[:0]
	for _, v := range views {
		s.shadow = append(s.shadow, v.Serialize())
	}
	s.shadowIter = iter
	return nil
}

// noteReplayDone records the recovered rank's replay duration once, when
// its forward re-execution crosses the log frontier.
func (s *Session) noteReplayDone() {
	if !s.replayStarted {
		return
	}
	s.replayStarted = false
	s.p.Obs().Registry().Histogram(obs.MReplaySeconds, obs.TimeBuckets).
		Observe(s.p.Now() - s.replayStart)
}

// Checkpoint wraps one iteration of the application's checkpoint region:
// failure injection, recompute attribution, recovery-or-execute, and
// checkpoint writing are all handled according to the strategy.
func (s *Session) Checkpoint(label string, iter int, views []kokkos.View, body func() error) error {
	slot := s.Rank()
	s.msgLogBoundary(slot, iter)
	for _, fp := range s.cfg.Failures {
		if fp.matches(slot, iter) {
			s.p.Event(obs.LayerCore, obs.EvFailureInjected,
				obs.KV("slot", slot), obs.KV("iter", iter))
			s.p.Obs().Registry().Counter(obs.MFailuresInjected).Inc()
			s.p.Exit()
		}
	}
	s.p.Inject("core.iteration")
	if s.localizedSkip(slot, iter) {
		return nil
	}
	if err := s.boundaryShadow(iter, views); err != nil {
		return s.Check(err)
	}
	if s.prog != nil {
		re := s.prog.isRecompute(slot, iter)
		// Under partial rollback survivors never roll their data back, so
		// re-executed loop indices are not wasted work — they advance the
		// solver. Only the recovered rank truly recomputes.
		if s.cfg.Strategy.PartialRollback() && s.role != fenix.RoleRecovered {
			re = false
		}
		s.p.Recorder().SetRecompute(re)
		defer s.p.Recorder().SetRecompute(false)
		if re {
			s.p.Event(obs.LayerCore, obs.EvRecomputeBegin,
				obs.KV("slot", slot), obs.KV("iter", iter))
			s.p.Obs().Registry().Counter(obs.MRecomputeIters).Inc()
			defer func() {
				s.p.Event(obs.LayerCore, obs.EvRecomputeEnd,
					obs.KV("slot", slot), obs.KV("iter", iter))
			}()
		}
	}
	wasRestore := s.krctx != nil && s.krctx.RecoveryPending() && iter == s.krctx.LatestVersion()
	var err error
	switch {
	case s.krctx != nil:
		err = s.krctx.Checkpoint(label, iter, views, body)
	case s.manual != nil:
		err = s.manual.checkpoint(iter, views, body)
	default:
		err = body()
	}
	if err != nil {
		return s.Check(err)
	}
	if iter > s.liveIter {
		s.liveIter = iter
	}
	if wasRestore && s.localizedActive() && s.role == fenix.RoleRecovered &&
		!s.p.MsgLogHasSnapshot(slot, iter+1) {
		// The predecessor died after committing this version but before
		// entering the next iteration, so there is no successor boundary
		// snapshot to install — yet the restored iteration's traffic is
		// all in the log with this rank's fresh cursors behind it. Jump
		// the cursors to the stream frontiers so live execution resumes
		// without wrongly suppressing future sends.
		s.p.MsgLogFastForward(slot)
	}
	if s.prog != nil {
		s.prog.update(slot, iter)
	}
	return nil
}

// manualCtx is the hand-written control flow a developer would pair with
// raw VeloC: protect the views once, restore at the resume iteration, and
// checkpoint on the interval. It exists so the no-KR configurations
// (StrategyVeloC, StrategyFenixVeloC) exercise the same application code.
type manualCtx struct {
	client   *veloc.Client
	name     string
	interval int
	latest   int
	pending  bool
	guarded  bool // views protected
	aliases  map[string]bool
}

// viewRegion adapts a kokkos view as a VeloC region.
type viewRegion struct{ v kokkos.View }

func (r viewRegion) Bytes() []byte          { return r.v.Serialize() }
func (r viewRegion) Restore(b []byte) error { return r.v.Deserialize(b) }
func (r viewRegion) SimBytes() int          { return r.v.SimBytes() }

func (m *manualCtx) resync(comm *mpi.Comm, p *mpi.Proc) error {
	var v int
	var err error
	if m.client.Mode() == veloc.Collective {
		v, err = m.client.LatestVersion(m.name)
	} else {
		v, err = m.client.BestCommonVersion(m.name, comm)
	}
	switch {
	case err == nil:
		m.latest, m.pending = v, true
		return nil
	case errors.Is(err, veloc.ErrNoCheckpoint):
		m.latest, m.pending = -1, false
		return nil
	default:
		return err
	}
}

func (m *manualCtx) protect(views []kokkos.View) {
	if m.guarded {
		return
	}
	unique := kr.CensusOf(views, m.aliases).CheckpointedViews()
	for i, v := range unique {
		m.client.Protect(i, viewRegion{v})
	}
	m.guarded = true
}

func (m *manualCtx) checkpoint(iter int, views []kokkos.View, body func() error) error {
	m.protect(views)
	if m.pending && iter == m.latest {
		m.pending = false
		return m.client.Restart(m.name, iter)
	}
	if err := body(); err != nil {
		return err
	}
	if (iter+1)%m.interval == 0 {
		if err := m.client.Checkpoint(m.name, iter); err != nil {
			return err
		}
		m.latest = iter
	}
	return nil
}
