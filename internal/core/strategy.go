// Package core is the paper's integrated resilience system: it wires the
// process layer (Fenix), the control-flow layer (Kokkos Resilience), and
// the data layer (VeloC or Fenix IMR) into the per-application strategy
// configurations of Section V-A, exposing one uniform Session API so the
// same application code runs under every configuration.
package core

import "fmt"

// Strategy selects one of the resilience configurations evaluated in the
// paper (Figure 1 / Section V-A).
type Strategy int

const (
	// StrategyNone runs without any resilience (the reference).
	StrategyNone Strategy = iota
	// StrategyVeloC uses VeloC alone with hand-written control flow and
	// fail-restart (full job relaunch) recovery.
	StrategyVeloC
	// StrategyKRVeloC uses Kokkos Resilience managing VeloC, without
	// Fenix: failures still require a full job relaunch.
	StrategyKRVeloC
	// StrategyFenixVeloC uses Fenix process recovery with VeloC in
	// non-collective mode and hand-written control flow (no KR).
	StrategyFenixVeloC
	// StrategyFenixKRVeloC is the paper's integrated system: Fenix +
	// Kokkos Resilience + VeloC (non-collective), per Figure 4.
	StrategyFenixKRVeloC
	// StrategyFenixIMR replaces VeloC with Fenix's in-memory redundancy
	// (buddy rank) data policy, managed through Kokkos Resilience.
	StrategyFenixIMR
	// StrategyPartialRollback is Fenix + KR + VeloC where survivors skip
	// checkpoint restoration and keep their in-progress data; only the
	// recovered rank rolls back (for convergence-tolerant applications).
	StrategyPartialRollback
	// StrategyLocalized is Fenix + KR + VeloC with sender-based message
	// logging (DESIGN.md §12): after a failure only the replacement rank
	// rolls back and re-executes, served from the log, while survivors
	// pause in place — no global rollback, and bitwise-identical results.
	StrategyLocalized

	numStrategies
)

var strategyNames = [...]string{
	StrategyNone:            "none",
	StrategyVeloC:           "veloc",
	StrategyKRVeloC:         "kr-veloc",
	StrategyFenixVeloC:      "fenix-veloc",
	StrategyFenixKRVeloC:    "fenix-kr-veloc",
	StrategyFenixIMR:        "fenix-imr",
	StrategyPartialRollback: "partial-rollback",
	StrategyLocalized:       "localized",
}

// String returns the strategy's flag name.
func (s Strategy) String() string {
	if s < 0 || int(s) >= len(strategyNames) {
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
	return strategyNames[s]
}

// ParseStrategy resolves a flag name to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	for i, n := range strategyNames {
		if n == name {
			return Strategy(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown strategy %q", name)
}

// Strategies returns all strategies in presentation order.
func Strategies() []Strategy {
	out := make([]Strategy, numStrategies)
	for i := range out {
		out[i] = Strategy(i)
	}
	return out
}

// UsesFenix reports whether the strategy recovers processes online.
func (s Strategy) UsesFenix() bool {
	switch s {
	case StrategyFenixVeloC, StrategyFenixKRVeloC, StrategyFenixIMR, StrategyPartialRollback, StrategyLocalized:
		return true
	}
	return false
}

// UsesKR reports whether control flow is managed by Kokkos Resilience.
func (s Strategy) UsesKR() bool {
	switch s {
	case StrategyKRVeloC, StrategyFenixKRVeloC, StrategyFenixIMR, StrategyPartialRollback, StrategyLocalized:
		return true
	}
	return false
}

// UsesVeloC reports whether the data layer is VeloC.
func (s Strategy) UsesVeloC() bool {
	switch s {
	case StrategyVeloC, StrategyKRVeloC, StrategyFenixVeloC, StrategyFenixKRVeloC, StrategyPartialRollback, StrategyLocalized:
		return true
	}
	return false
}

// UsesIMR reports whether the data layer is in-memory redundancy.
func (s Strategy) UsesIMR() bool { return s == StrategyFenixIMR }

// UsesRelaunch reports whether failures are recovered by relaunching the
// whole job (classic checkpoint/restart).
func (s Strategy) UsesRelaunch() bool {
	return s == StrategyVeloC || s == StrategyKRVeloC
}

// PartialRollback reports whether survivors keep in-progress data.
func (s Strategy) PartialRollback() bool { return s == StrategyPartialRollback }

// Localized reports whether recovery is message-log localized: only the
// replacement rank recomputes while survivors pause in place.
func (s Strategy) Localized() bool { return s == StrategyLocalized }

// Checkpoints reports whether the strategy writes checkpoints at all.
func (s Strategy) Checkpoints() bool { return s != StrategyNone }
