package core

import (
	"fmt"
	"testing"

	"repro/internal/mpi"
)

// TestFailureSweepEveryIteration injects a failure at every possible
// iteration (including before the first checkpoint and at the final one)
// and at every slot, verifying that recovery always reproduces the
// reference bitwise. This is the strongest recovery-correctness property
// the system claims.
func TestFailureSweepEveryIteration(t *testing.T) {
	ref := reference(t)
	for _, strat := range []Strategy{StrategyFenixKRVeloC, StrategyKRVeloC} {
		for iter := 0; iter < tIters; iter += 3 {
			for slot := 0; slot < tRanks; slot += 3 {
				name := fmt.Sprintf("%s/iter=%d/slot=%d", strat, iter, slot)
				t.Run(name, func(t *testing.T) {
					spares := 0
					if strat.UsesFenix() {
						spares = 1
					}
					fail := &FailurePlan{Slot: slot, Iteration: iter}
					res, sink := runStrategy(t, strat, spares, fail)
					if res.Failed || res.Err() != nil {
						t.Fatalf("failed: %v (launches %d)", res.Err(), res.Launches)
					}
					if !fail.Fired() {
						t.Fatal("plan never fired")
					}
					checkMatchesReference(t, sink, ref)
				})
			}
		}
	}
}

// TestTwoFailuresDifferentIntervals injects two failures in different
// checkpoint intervals (two full recovery cycles) and checks bitwise
// correctness.
func TestTwoFailuresDifferentIntervals(t *testing.T) {
	ref := reference(t)
	sink := newSink()
	cfg := Config{
		Strategy:           StrategyFenixKRVeloC,
		Spares:             2,
		CheckpointInterval: 5,
		CheckpointName:     "mini",
		Failures: []*FailurePlan{
			{Slot: 1, Iteration: 8},
			{Slot: 3, Iteration: 17},
		},
	}
	job := jobCfg(tRanks + 2)
	res := Run(job, cfg, miniApp(tIters, tVecLen, sink))
	if res.Failed || res.Err() != nil {
		t.Fatalf("failed: %v", res.Err())
	}
	for _, fp := range cfg.Failures {
		if !fp.Fired() {
			t.Fatal("a failure plan never fired")
		}
	}
	checkMatchesReference(t, sink, ref)
}

// TestTwoFailuresSameIteration kills two ranks at the same iteration
// (simultaneous failures) and checks bitwise correctness.
func TestTwoFailuresSameIteration(t *testing.T) {
	ref := reference(t)
	sink := newSink()
	cfg := Config{
		Strategy:           StrategyFenixKRVeloC,
		Spares:             2,
		CheckpointInterval: 5,
		CheckpointName:     "mini",
		Failures: []*FailurePlan{
			{Slot: 0, Iteration: 13},
			{Slot: 2, Iteration: 13},
		},
	}
	res := Run(jobCfg(tRanks+2), cfg, miniApp(tIters, tVecLen, sink))
	if res.Failed || res.Err() != nil {
		t.Fatalf("failed: %v", res.Err())
	}
	checkMatchesReference(t, sink, ref)
}

// TestRelaunchTwoFailures exercises two relaunches under fail-restart.
func TestRelaunchTwoFailures(t *testing.T) {
	ref := reference(t)
	sink := newSink()
	cfg := Config{
		Strategy:           StrategyKRVeloC,
		CheckpointInterval: 5,
		CheckpointName:     "mini",
		MaxRestarts:        4,
		Failures: []*FailurePlan{
			{Slot: 1, Iteration: 8},
			{Slot: 2, Iteration: 17},
		},
	}
	res := Run(jobCfg(tRanks), cfg, miniApp(tIters, tVecLen, sink))
	if res.Failed || res.Err() != nil {
		t.Fatalf("failed: %v", res.Err())
	}
	if res.Launches != 3 {
		t.Fatalf("launches = %d, want 3", res.Launches)
	}
	checkMatchesReference(t, sink, ref)
}

func jobCfg(ranks int) mpi.JobConfig {
	return mpi.JobConfig{Ranks: ranks, Machine: quietMachine(), Seed: 7}
}
