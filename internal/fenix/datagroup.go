package fenix

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// This file implements Fenix's data-group API, the interface the real
// runtime exposes its in-memory redundancy policies through
// (Fenix_Data_group_create / member_create / member_store / commit /
// restore). Applications stage member buffers and commit them atomically:
// a commit either becomes fully visible as a recovery version or not at
// all. The storage policy underneath is the buddy-rank IMR store.

// ErrNoSuchMember is returned for operations on unregistered member ids.
var ErrNoSuchMember = errors.New("fenix: no such data group member")

// ErrNothingStaged is returned by Commit when no member has been stored
// since the last commit.
var ErrNothingStaged = errors.New("fenix: commit with no staged members")

// DataGroup is a named set of application buffers committed and restored
// as a unit through the IMR buddy store.
type DataGroup struct {
	im      *IMR
	members map[int][]byte // member id -> latest staged contents
	sizes   map[int]int    // member id -> cost-model size
	staged  bool
}

// NewDataGroup creates a data group over ctx using the buddy-rank policy.
// The resilient communicator must have even size.
func NewDataGroup(ctx *Context, name string) (*DataGroup, error) {
	im, err := NewIMR(ctx, name)
	if err != nil {
		return nil, err
	}
	return &DataGroup{
		im:      im,
		members: make(map[int][]byte),
		sizes:   make(map[int]int),
	}, nil
}

// CreateMember registers a member buffer id with its cost-model size.
// Re-creating an id resets its staged contents.
func (dg *DataGroup) CreateMember(id, simBytes int) {
	dg.members[id] = nil
	dg.sizes[id] = simBytes
}

// Store stages the current contents of member id for the next commit
// (Fenix_Data_member_store). The data is copied.
func (dg *DataGroup) Store(id int, data []byte) error {
	if _, ok := dg.members[id]; !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchMember, id)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	dg.members[id] = cp
	dg.staged = true
	return nil
}

// memberBlob layout: u32 count, then per member: u32 id, u32 len, bytes.
func (dg *DataGroup) serialize() ([]byte, int) {
	ids := make([]int, 0, len(dg.members))
	for id, data := range dg.members {
		if data != nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	var out []byte
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(ids)))
	out = append(out, hdr[:]...)
	simTotal := 4
	for _, id := range ids {
		binary.LittleEndian.PutUint32(hdr[:], uint32(id))
		out = append(out, hdr[:]...)
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(dg.members[id])))
		out = append(out, hdr[:]...)
		out = append(out, dg.members[id]...)
		simTotal += 8 + dg.sizes[id]
	}
	return out, simTotal
}

// Commit atomically persists all staged members as version v
// (Fenix_Data_commit): a local copy plus the buddy exchange. All ranks of
// the resilient communicator must commit collectively.
func (dg *DataGroup) Commit(v int) error {
	if !dg.staged {
		return ErrNothingStaged
	}
	blob, simTotal := dg.serialize()
	return dg.im.CheckpointSized(v, blob, simTotal)
}

// LatestCommit returns the newest version committed at every rank.
func (dg *DataGroup) LatestCommit() (int, error) {
	v, err := dg.im.LatestCommon()
	if errors.Is(err, ErrIMRNoCheckpoint) {
		return 0, err
	}
	return v, err
}

// Restore retrieves version v and returns the member contents by id
// (Fenix_Data_member_restore for every member). Collective, like
// IMR.Restore. The staged contents are replaced by the restored ones.
func (dg *DataGroup) Restore(v int) (map[int][]byte, error) {
	blob, err := dg.im.Restore(v)
	if err != nil {
		return nil, err
	}
	if len(blob) < 4 {
		return nil, errors.New("fenix: truncated data group commit")
	}
	count := int(binary.LittleEndian.Uint32(blob))
	off := 4
	out := make(map[int][]byte, count)
	for i := 0; i < count; i++ {
		if off+8 > len(blob) {
			return nil, errors.New("fenix: truncated member header")
		}
		id := int(binary.LittleEndian.Uint32(blob[off:]))
		n := int(binary.LittleEndian.Uint32(blob[off+4:]))
		off += 8
		if off+n > len(blob) {
			return nil, errors.New("fenix: truncated member data")
		}
		data := make([]byte, n)
		copy(data, blob[off:off+n])
		out[id] = data
		off += n
		if _, ok := dg.members[id]; ok {
			dg.members[id] = data
		}
	}
	dg.staged = true
	return out, nil
}

// Member returns the currently staged (or last restored) contents of id.
func (dg *DataGroup) Member(id int) ([]byte, error) {
	data, ok := dg.members[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchMember, id)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}
