package fenix

import (
	"errors"
	"fmt"
	"testing"
)

func TestDataGroupCommitRestore(t *testing.T) {
	errs, _ := runFenix(4, Config{Spares: 0}, func(ctx *Context) error {
		dg, err := NewDataGroup(ctx, "fields")
		if err != nil {
			return err
		}
		dg.CreateMember(1, 1024)
		dg.CreateMember(7, 2048)
		if err := dg.Store(1, []byte(fmt.Sprintf("x-%d", ctx.Rank()))); err != nil {
			return err
		}
		if err := dg.Store(7, []byte{byte(ctx.Rank()), 0xEE}); err != nil {
			return err
		}
		if err := dg.Commit(5); err != nil {
			return err
		}
		v, err := dg.LatestCommit()
		if err != nil {
			return err
		}
		if v != 5 {
			t.Errorf("latest commit %d", v)
		}
		got, err := dg.Restore(5)
		if err != nil {
			return err
		}
		if string(got[1]) != fmt.Sprintf("x-%d", ctx.Rank()) {
			t.Errorf("member 1 = %q", got[1])
		}
		if got[7][0] != byte(ctx.Rank()) || got[7][1] != 0xEE {
			t.Errorf("member 7 = %v", got[7])
		}
		m, err := dg.Member(7)
		if err != nil || m[1] != 0xEE {
			t.Errorf("Member(7) = %v, %v", m, err)
		}
		return nil
	})
	checkNoErrs(t, errs)
}

func TestDataGroupValidation(t *testing.T) {
	errs, _ := runFenix(2, Config{Spares: 0}, func(ctx *Context) error {
		dg, err := NewDataGroup(ctx, "g")
		if err != nil {
			return err
		}
		if err := dg.Store(9, []byte{1}); !errors.Is(err, ErrNoSuchMember) {
			t.Errorf("store to unknown member: %v", err)
		}
		if err := dg.Commit(0); !errors.Is(err, ErrNothingStaged) {
			t.Errorf("empty commit: %v", err)
		}
		if _, err := dg.Member(9); !errors.Is(err, ErrNoSuchMember) {
			t.Errorf("Member(9): %v", err)
		}
		if _, err := dg.LatestCommit(); !errors.Is(err, ErrIMRNoCheckpoint) {
			t.Errorf("LatestCommit with no commits: %v", err)
		}
		return nil
	})
	checkNoErrs(t, errs)
}

func TestDataGroupRecoveryAcrossFailure(t *testing.T) {
	// A full recovery cycle through the data-group API: commit, fail,
	// spare adopts the slot and restores its predecessor's members from
	// the buddy.
	errs, _ := runFenix(5, Config{Spares: 1}, func(ctx *Context) error {
		dg, err := NewDataGroup(ctx, "state")
		if err != nil {
			return err
		}
		dg.CreateMember(0, 64)
		payload := []byte(fmt.Sprintf("slot-%d-data", ctx.Rank()))
		if ctx.Role() == RoleInitial {
			if err := dg.Store(0, payload); err != nil {
				return err
			}
			if err := ctx.Check(dg.Commit(3)); err != nil {
				return err
			}
			if ctx.p.Rank() == 2 {
				ctx.p.Exit()
			}
		}
		if err := ctx.Check(ctx.Comm().Barrier(ctx.p)); err != nil {
			return err
		}
		v, err := dg.LatestCommit()
		if err = ctx.Check(err); err != nil {
			return err
		}
		got, err := dg.Restore(v)
		if err = ctx.Check(err); err != nil {
			return err
		}
		want := fmt.Sprintf("slot-%d-data", ctx.Rank())
		if string(got[0]) != want {
			t.Errorf("world %d logical %d restored %q, want %q", ctx.p.Rank(), ctx.Rank(), got[0], want)
		}
		return nil
	})
	checkNoErrs(t, errs)
}

func TestDataGroupCommitIsAtomic(t *testing.T) {
	// Members staged after a commit do not retroactively appear in it.
	errs, _ := runFenix(2, Config{Spares: 0}, func(ctx *Context) error {
		dg, err := NewDataGroup(ctx, "a")
		if err != nil {
			return err
		}
		dg.CreateMember(0, 8)
		if err := dg.Store(0, []byte("v1")); err != nil {
			return err
		}
		if err := dg.Commit(1); err != nil {
			return err
		}
		if err := dg.Store(0, []byte("v2")); err != nil {
			return err
		}
		if err := dg.Commit(2); err != nil {
			return err
		}
		got, err := dg.Restore(1)
		if err != nil {
			return err
		}
		if string(got[0]) != "v1" {
			t.Errorf("version 1 member = %q", got[0])
		}
		got, err = dg.Restore(2)
		if err != nil {
			return err
		}
		if string(got[0]) != "v2" {
			t.Errorf("version 2 member = %q", got[0])
		}
		return nil
	})
	checkNoErrs(t, errs)
}

func TestDataGroupOddSizeRejected(t *testing.T) {
	errs, _ := runFenix(3, Config{Spares: 0}, func(ctx *Context) error {
		if _, err := NewDataGroup(ctx, "g"); err == nil {
			t.Error("odd-size data group accepted")
		}
		return nil
	})
	checkNoErrs(t, errs)
}
