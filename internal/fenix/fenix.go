// Package fenix reproduces the Fenix process-resilience runtime on top of
// the simulated ULFM layer in internal/mpi.
//
// Fenix provides two things (Section IV of the paper):
//
//  1. A resilient communicator that appears to keep a constant process pool:
//     some world ranks are held out as spares, blocked inside Fenix
//     initialization, and substituted in place for failed ranks during
//     communicator repair.
//  2. A single control-flow exit point for failures: in C Fenix attaches an
//     error handler that longjmps back to Fenix_Init. In Go, Run re-invokes
//     the application body after recovery; application code escapes to that
//     point either by returning the MPI error (Go style) or by wrapping
//     calls in Context.Check, which panics and is recovered by Run —
//     matching the "no error handling at 148 MPI call sites" property the
//     paper measures.
//
// Recovery protocol, as in the paper: the first rank to observe a failure
// revokes the resilient communicator (propagating the failure to every
// rank, including those blocked in collectives); every survivor then enters
// communicator repair, where failed ranks are replaced in place by spares;
// finally control returns to the top of the application body with roles
// updated (Survivor / Recovered) so the C/R layers can reason about state.
package fenix

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Role describes a rank's state after (re-)entering the application body,
// matching the rank states in the paper's Figure 2.
type Role int

const (
	// RoleInitial: first entry, no failure has occurred.
	RoleInitial Role = iota
	// RoleSurvivor: the rank lived through a failure; its memory is intact.
	RoleSurvivor
	// RoleRecovered: the rank is a spare substituted for a failed rank; its
	// memory is fresh and must be restored from checkpoints.
	RoleRecovered
)

func (r Role) String() string {
	switch r {
	case RoleInitial:
		return "initial"
	case RoleSurvivor:
		return "survivor"
	case RoleRecovered:
		return "recovered"
	}
	return fmt.Sprintf("Role(%d)", int(r))
}

// ErrOutOfSpares is returned when a failure occurs and no spare ranks
// remain (and shrinking is not enabled).
var ErrOutOfSpares = errors.New("fenix: no spare ranks remain")

// ErrNoSurvivors is returned to blocked spares when every active rank has
// failed without finalizing: no survivor remains to run the recovery
// protocol, so the spares can never be activated and the job cannot
// complete.
var ErrNoSurvivors = errors.New("fenix: all active ranks failed with no survivor to run recovery")

// Config configures Fenix initialization.
type Config struct {
	// Spares is the number of world ranks held out of the resilient
	// communicator as replacements.
	Spares int
	// ShrinkOnExhaustion, when true, continues with a smaller resilient
	// communicator once spares run out instead of failing the job.
	ShrinkOnExhaustion bool
	// RehostReserve is the number of additional world ranks held out as a
	// second-line replacement pool behind Spares. When the regular spares
	// are exhausted, a failure that would otherwise shrink (or fail) the
	// job instead re-hosts the dead slot onto a reserve rank, keeping the
	// communicator width — and therefore logical-slot identity, which the
	// message log depends on — stable. Substitutions from the reserve are
	// surfaced as `rehosted` on the rebuild event.
	RehostReserve int
	// OnRecover, if set, runs on every rank after communicator repair,
	// before the application body is re-entered (Fenix recovery callback).
	OnRecover func(*Context)
}

// Context is one rank's Fenix handle, valid for the duration of Run.
type Context struct {
	p    *mpi.Proc
	rt   *runtime
	role Role
	comm *mpi.Comm
	gen  int
	// logicalRank is the rank's identity within the resilient
	// communicator; a Recovered rank adopts its failed predecessor's.
	logicalRank int
}

// Proc returns the underlying MPI process.
func (c *Context) Proc() *mpi.Proc { return c.p }

// Comm returns the current resilient communicator. It changes across
// recoveries; application code must always obtain it from the Context.
func (c *Context) Comm() *mpi.Comm { return c.comm }

// Role returns the rank's role as of the most recent (re-)entry.
func (c *Context) Role() Role { return c.role }

// Generation counts completed repairs (0 before any failure).
func (c *Context) Generation() int { return c.gen }

// Rank returns the rank's logical ID within the resilient communicator.
func (c *Context) Rank() int { return c.logicalRank }

// Size returns the resilient communicator size.
func (c *Context) Size() int { return c.comm.Size() }

// fenixJump is the panic payload emitted by Check, the analogue of the
// ULFM error handler's longjmp back to Fenix_Init.
type fenixJump struct{ err error }

// Check inspects err: nil passes through, ULFM errors trigger the Fenix
// recovery jump (panic recovered by Run), and other errors are returned
// for the application to handle.
func (c *Context) Check(err error) error {
	if err == nil {
		return nil
	}
	if mpi.IsULFMError(err) {
		panic(fenixJump{err: err})
	}
	return err
}

// Body is the application code protected by Fenix: everything that in an
// MPI program would sit between Fenix_Init and Fenix_Finalize.
type Body func(ctx *Context) error

// Run initializes Fenix on process p and executes body under its
// protection, re-entering it after each recovered failure. Spare ranks
// block inside Run until they are activated as replacements (or until the
// job finalizes without needing them, in which case Run returns nil).
//
// All ranks of the world must call Run with an equivalent Config.
func Run(p *mpi.Proc, cfg Config, body Body) error {
	rt, err := runtimeFor(p.World(), cfg)
	if err != nil {
		return err
	}
	ctx, active, err := rt.initRank(p)
	if err != nil {
		return err
	}
	if !active {
		return nil // unused spare: job completed without it
	}
	for {
		err := runBody(ctx, body)
		if err == nil {
			rt.finalize(ctx)
			return nil
		}
		if !mpi.IsULFMError(err) {
			rt.finalize(ctx)
			return err
		}
		if rerr := rt.recover(ctx); rerr != nil {
			rt.finalize(ctx)
			return rerr
		}
		if cfg.OnRecover != nil {
			cfg.OnRecover(ctx)
		}
	}
}

// runBody invokes body, converting Check's jump panic back into an error.
func runBody(ctx *Context, body Body) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if j, ok := r.(fenixJump); ok {
				err = j.err
				return
			}
			panic(r)
		}
	}()
	return body(ctx)
}

// runtime is the per-world Fenix coordinator shared by all rank
// goroutines. In a real deployment this state is distributed; the
// simulation centralizes it, with the corresponding communication costs
// charged through the machine model.
type runtime struct {
	world *mpi.World
	cfg   Config

	mu        sync.Mutex
	comm      *mpi.Comm // current resilient communicator
	gen       int
	spares    []int               // world ranks not yet activated
	slots     []int               // logical rank -> world rank
	waiters   map[int]chan sparse // blocked spares by world rank
	finalized map[int]bool        // world ranks done with the body
	repairs   map[int]*repair     // generation -> in-progress repair
	imr       map[int]*imrSlot    // logical rank -> IMR storage
	imrKeep   int
}

// jobDoneLocked reports whether every current member of the resilient
// communicator has finalized (or died): at that point unused spares will
// never be activated and can be released. Caller holds rt.mu.
func (rt *runtime) jobDoneLocked() bool {
	if rt.comm == nil {
		return false
	}
	deadSet := make(map[int]bool)
	for _, wr := range rt.world.DeadRanks() {
		deadSet[wr] = true
	}
	for _, wr := range rt.slots {
		if !rt.finalized[wr] && !deadSet[wr] {
			return false
		}
	}
	return true
}

// releaseSparesLocked unblocks all waiting spares with an inactive result
// carrying err (nil for a clean job completion). Caller holds rt.mu.
func (rt *runtime) releaseSparesLocked(err error) {
	for wr, ch := range rt.waiters {
		delete(rt.waiters, wr)
		ch <- sparse{err: err}
	}
}

// memberDiedUnfinalizedLocked reports whether any current member of the
// resilient communicator died before finalizing its body — work that will
// never be repaired once no live member remains. Caller holds rt.mu.
func (rt *runtime) memberDiedUnfinalizedLocked() bool {
	deadSet := make(map[int]bool)
	for _, wr := range rt.world.DeadRanks() {
		deadSet[wr] = true
	}
	for _, wr := range rt.slots {
		if deadSet[wr] && !rt.finalized[wr] {
			return true
		}
	}
	return false
}

// sparse is the activation message delivered to a blocked spare. The spare
// applies syncTime/repairCost to its own clock (the completing survivor
// must not touch another goroutine's clock).
type sparse struct {
	ctx        *Context
	err        error
	syncTime   float64
	repairCost float64
}

// repair coordinates one communicator recovery.
type repair struct {
	gen      int
	arrivals map[int]float64 // world rank -> arrival clock
	done     chan struct{}

	newComm  *mpi.Comm
	newSlots []int
	syncTime float64
	err      error
}

// registry maps worlds to their Fenix runtime (created by the first rank
// to call Run).
var registry sync.Map // *mpi.World -> *runtime

func runtimeFor(w *mpi.World, cfg Config) (*runtime, error) {
	if cfg.Spares < 0 || cfg.RehostReserve < 0 || cfg.Spares+cfg.RehostReserve >= w.Size() {
		return nil, fmt.Errorf("fenix: %d spares + %d reserve invalid for world size %d",
			cfg.Spares, cfg.RehostReserve, w.Size())
	}
	rt := &runtime{
		world:     w,
		cfg:       cfg,
		waiters:   make(map[int]chan sparse),
		finalized: make(map[int]bool),
		repairs:   make(map[int]*repair),
		imr:       make(map[int]*imrSlot),
		imrKeep:   2,
	}
	actual, loaded := registry.LoadOrStore(w, rt)
	got := actual.(*runtime)
	if loaded && (got.cfg.Spares != cfg.Spares || got.cfg.RehostReserve != cfg.RehostReserve) {
		return nil, fmt.Errorf("fenix: inconsistent spare counts across ranks (%d+%d vs %d+%d)",
			got.cfg.Spares, got.cfg.RehostReserve, cfg.Spares, cfg.RehostReserve)
	}
	if !loaded {
		// Re-evaluate pending repairs whenever a failure occurs: a rank
		// dying mid-recovery must not leave the repair waiting for it.
		w.RegisterDeathHook(func(wr int) {
			got.mu.Lock()
			// A dead spare can never be activated: prune it from the pool
			// and drop its waiter entry so repairs neither wait for its
			// registration nor substitute a corpse into the communicator.
			for i, sp := range got.spares {
				if sp == wr {
					got.spares = append(got.spares[:i], got.spares[i+1:]...)
					break
				}
			}
			delete(got.waiters, wr)
			for _, r := range got.repairs {
				got.tryCompleteRepairLocked(r)
			}
			if got.jobDoneLocked() {
				// Every member slot is finalized or dead, so blocked spares
				// can never be activated. If a member died without
				// finalizing there is no survivor left to run recovery:
				// fail the spares so the job reports the loss instead of
				// deadlocking (or silently succeeding with missing work).
				var err error
				if got.memberDiedUnfinalizedLocked() {
					err = ErrNoSurvivors
				}
				got.releaseSparesLocked(err)
			}
			got.mu.Unlock()
		})
	}
	return got, nil
}

// initCost is the virtual cost of Fenix initialization beyond the
// communicator split, in seconds.
const initCost = 10e-3

// initRank performs Fenix_Init for one rank. Members of the resilient
// communicator return immediately with an initial Context; spares block
// until activated or released.
func (rt *runtime) initRank(p *mpi.Proc) (*Context, bool, error) {
	rt.mu.Lock()
	if rt.comm == nil {
		n := rt.world.Size() - rt.cfg.Spares - rt.cfg.RehostReserve
		group := make([]int, n)
		for i := range group {
			group[i] = i
		}
		rt.slots = append([]int(nil), group...)
		// Reserve ranks sit behind the regular spares in the same pool;
		// substitution order makes them strictly second-line.
		for r := n; r < rt.world.Size(); r++ {
			rt.spares = append(rt.spares, r)
		}
		rt.comm = rt.world.NewComm(group)
		rt.world.RegisterLineageComm(rt.comm)
	}
	comm := rt.comm
	isSpare := comm.Rank(p) < 0

	if !isSpare {
		rt.mu.Unlock()
		p.ChargeTime(trace.ResilienceInit, initCost+p.Machine().CollectiveTime(rt.world.Size(), 8))
		p.Event(obs.LayerFenix, obs.EvFenixInit,
			obs.KV("role", "member"), obs.KV("logical_rank", comm.Rank(p)), obs.KV("spares", rt.cfg.Spares))
		return &Context{p: p, rt: rt, role: RoleInitial, comm: comm, logicalRank: comm.Rank(p)}, true, nil
	}

	if rt.jobDoneLocked() {
		// The members already finished; this spare will never be needed.
		rt.mu.Unlock()
		return nil, false, nil
	}
	rt.mu.Unlock()
	// Injection point preceding waiter registration: a spare killed here
	// models one lost while blocked in Fenix_Init. Because it has not yet
	// registered, no repair can have selected it; the death hook prunes it
	// from the spare pool, so repairs deterministically pass over it.
	p.Inject("fenix.spare_wait")
	rt.mu.Lock()
	if rt.jobDoneLocked() {
		rt.mu.Unlock()
		return nil, false, nil
	}
	ch := make(chan sparse, 1)
	rt.waiters[p.Rank()] = ch
	// A pending repair may have been waiting for this spare to register.
	for _, r := range rt.repairs {
		rt.tryCompleteRepairLocked(r)
	}
	rt.mu.Unlock()
	p.ChargeTime(trace.ResilienceInit, initCost+p.Machine().CollectiveTime(rt.world.Size(), 8))
	p.Event(obs.LayerFenix, obs.EvFenixInit, obs.KV("role", "spare"), obs.KV("spares", rt.cfg.Spares))

	// The spare blocks outside the MPI core, so under pool execution it
	// must hand its execution slot back while it waits for activation (or
	// job completion) and reacquire one afterwards.
	p.BlockBegin()
	act := <-ch
	p.BlockEnd()
	if act.ctx == nil {
		return nil, false, act.err
	}
	p.Clock().AdvanceTo(act.syncTime)
	p.Recorder().AddRaw(trace.ResilienceInit, act.repairCost)
	p.Event(obs.LayerFenix, obs.EvFenixRoleChange,
		obs.KV("from", "spare"), obs.KV("to", RoleRecovered.String()),
		obs.KV("logical_rank", act.ctx.logicalRank), obs.KV("generation", act.ctx.gen))
	p.Obs().Registry().Counter(obs.MSparesActivated).Inc()
	// A kill here models a replacement process failing immediately after
	// activation — it is already a communicator member, so its death is a
	// fresh member failure the survivors must repair.
	p.Inject("fenix.spare_activate")
	return act.ctx, true, nil
}

// finalize marks a rank's body as complete. When every active rank has
// finalized, blocked spares are released.
func (rt *runtime) finalize(ctx *Context) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.finalized[ctx.p.Rank()] {
		return
	}
	rt.finalized[ctx.p.Rank()] = true
	// A rank finalizing can complete a pending repair (it is no longer an
	// expected participant) or finish the job entirely.
	for _, r := range rt.repairs {
		rt.tryCompleteRepairLocked(r)
	}
	if rt.jobDoneLocked() {
		rt.releaseSparesLocked(nil)
	}
}

// recover runs the Fenix failure-recovery protocol for one survivor:
// revoke, repair rendezvous, communicator substitution, clock sync.
func (rt *runtime) recover(ctx *Context) error {
	p := ctx.p

	// A kill here models a nested failure: a survivor dying on its way into
	// an in-progress rebuild. The repair rendezvous waits for every live
	// member's arrival, so this death is folded into the same repair.
	p.Inject("fenix.recover")

	// Propagate the failure: revoke the resilient communicator so every
	// rank blocked in an operation on it reaches its own recover call.
	ctx.comm.Revoke(p)

	rt.mu.Lock()
	gen := ctx.gen
	r, ok := rt.repairs[gen]
	if !ok {
		r = &repair{gen: gen, arrivals: make(map[int]float64), done: make(chan struct{})}
		rt.repairs[gen] = r
	}
	r.arrivals[p.Rank()] = p.Now()
	rt.tryCompleteRepairLocked(r)
	rt.mu.Unlock()

	// The repair rendezvous is a wait on other survivors' progress held
	// outside the MPI core: release the execution slot across it so a
	// pool-mode world can funnel every survivor into the rendezvous.
	p.BlockBegin()
	<-r.done
	p.BlockEnd()

	if r.err != nil {
		return r.err
	}
	waited := p.Clock().AdvanceTo(r.syncTime)
	p.Recorder().Add(trace.ResilienceInit, waited)
	ctx.comm = r.newComm
	ctx.role = RoleSurvivor
	ctx.gen = r.gen + 1
	ctx.logicalRank = r.newComm.Rank(p)
	p.Event(obs.LayerFenix, obs.EvFenixRoleChange,
		obs.KV("from", "member"), obs.KV("to", RoleSurvivor.String()),
		obs.KV("logical_rank", ctx.logicalRank), obs.KV("generation", ctx.gen))
	return nil
}

// tryCompleteRepairLocked completes the repair once every live,
// non-finalized member of the current resilient communicator has arrived.
// Caller holds rt.mu.
func (rt *runtime) tryCompleteRepairLocked(r *repair) {
	if r.gen != rt.gen {
		return
	}
	deadSet := make(map[int]bool)
	for _, wr := range rt.world.DeadRanks() {
		deadSet[wr] = true
	}
	var expected []int
	for _, wr := range rt.comm.Group() {
		if !deadSet[wr] && !rt.finalized[wr] {
			expected = append(expected, wr)
		}
	}
	if len(expected) == 0 {
		return
	}
	maxClock := 0.0
	for _, wr := range expected {
		t, ok := r.arrivals[wr]
		if !ok {
			return
		}
		if t > maxClock {
			maxClock = t
		}
	}

	// Count failed slots and make sure every spare we are about to
	// activate has registered its waiter: the repair must not outrun the
	// spares still blocking into Fenix initialization.
	needed := 0
	var deadMembers []int
	for _, wr := range rt.slots {
		if deadSet[wr] {
			needed++
			deadMembers = append(deadMembers, wr)
		}
	}
	// A repair cannot complete before every death it disposes of was
	// detectable. Survivor arrivals usually dominate (they waited out the
	// detection latency before revoking), but a member that dies mid-repair
	// — a nested failure folded into this rebuild — can die after every
	// survivor arrived, and the rebuild stamp must not precede it.
	if floor := rt.world.DetectionFloor(deadMembers); floor > maxClock {
		maxClock = floor
	}
	avail := len(rt.spares)
	if avail > needed {
		avail = needed
	}
	for _, sp := range rt.spares[:avail] {
		if _, waiting := rt.waiters[sp]; !waiting {
			return // spare not yet blocked in init; its arrival re-triggers us
		}
	}

	// Build the new slot map, substituting spares for failed slots. A
	// substitution drawn from the rehost reserve (world ranks behind the
	// regular spares) counts as a re-host: same mechanism, but it is the
	// pool that exists specifically to avoid compaction.
	reserveStart := rt.world.Size() - rt.cfg.RehostReserve
	newSlots := append([]int(nil), rt.slots...)
	var activated []int // logical ranks filled by spares
	var shrunkOut []int
	rehosted := 0
	for slot, wr := range newSlots {
		if !deadSet[wr] {
			continue
		}
		if len(rt.spares) > 0 {
			sp := rt.spares[0]
			rt.spares = rt.spares[1:]
			newSlots[slot] = sp
			activated = append(activated, slot)
			if sp >= reserveStart {
				rehosted++
			}
		} else if rt.cfg.ShrinkOnExhaustion {
			shrunkOut = append(shrunkOut, slot)
		} else {
			r.err = ErrOutOfSpares
			rt.gen++
			close(r.done)
			// The repairs entry is deliberately KEPT: survivors racing into
			// recover for this generation must find the failed repair (and
			// its closed done channel) rather than create a fresh one that
			// can never complete. Release blocked spares (none remain, but
			// be thorough) and fail them too.
			rt.releaseSparesLocked(ErrOutOfSpares)
			return
		}
	}
	if len(shrunkOut) > 0 {
		compact := newSlots[:0:0]
		for slot, wr := range newSlots {
			if !containsInt(shrunkOut, slot) {
				compact = append(compact, wr)
			}
		}
		newSlots = compact
	}

	syncTime := maxClock + rt.world.Machine().RepairTime(len(newSlots))
	newComm := rt.world.NewComm(newSlots)
	if len(shrunkOut) > 0 {
		// Compaction changes logical-slot identity: the message log's
		// slot-keyed streams are meaningless, so localized recovery
		// degrades to global rollback from here on.
		rt.world.MsgLog().Disable()
	} else {
		rt.world.RegisterLineageComm(newComm)
	}

	rt.slots = newSlots
	rt.comm = newComm
	rt.gen++
	delete(rt.repairs, r.gen)

	r.newComm = newComm
	r.newSlots = newSlots
	r.syncTime = syncTime

	// One world-level rebuild record per completed repair (rank -1: the
	// repair is a collective outcome, not one rank's act), stamped with the
	// post-repair synchronization time.
	if rec := rt.world.Obs(); rec.Enabled() {
		if len(shrunkOut) > 0 {
			// Spare-pool exhaustion compacted the communicator: surface the
			// implicit MPIX_Comm_shrink the rebuild performed, as a single
			// world-level event (rank -1), mirroring the explicit collective.
			rec.Emit(syncTime, -1, obs.LayerMPI, obs.EvShrink,
				obs.KV("from_size", len(newSlots)+len(shrunkOut)),
				obs.KV("to_size", len(newSlots)))
			rec.Registry().Counter(obs.MShrinks).Inc()
		}
		rec.Emit(syncTime, -1, obs.LayerFenix, obs.EvFenixRebuild,
			obs.KV("generation", rt.gen),
			obs.KV("replaced", len(activated)),
			obs.KV("rehosted", rehosted),
			obs.KV("shrunk", len(shrunkOut)),
			obs.KV("size", len(newSlots)))
		rec.Registry().Counter(obs.MRebuilds).Inc()
		if rehosted > 0 {
			rec.Registry().Counter(obs.MRehosts).Add(float64(rehosted))
		}
		rec.Registry().Counter(obs.MFailuresSurvived).Add(float64(len(activated) + len(shrunkOut)))
	}

	// Activate the substituted spares.
	for _, slot := range activated {
		wr := newSlots[slot]
		ch, ok := rt.waiters[wr]
		if !ok {
			panic(fmt.Sprintf("fenix: spare %d activated but not waiting", wr))
		}
		delete(rt.waiters, wr)
		sp := rt.world.Proc(wr)
		ch <- sparse{
			ctx: &Context{
				p:           sp,
				rt:          rt,
				role:        RoleRecovered,
				comm:        newComm,
				gen:         rt.gen,
				logicalRank: slot,
			},
			syncTime:   syncTime,
			repairCost: rt.world.Machine().RepairTime(len(newSlots)),
		}
	}

	close(r.done)
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// SpareCount returns the number of unused spares remaining (for tests).
func SpareCount(p *mpi.Proc) int {
	v, ok := registry.Load(p.World())
	if !ok {
		return 0
	}
	rt := v.(*runtime)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.spares)
}
