package fenix

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

func quietMachine() *sim.Machine {
	m := sim.DefaultMachine()
	m.NoiseAmplitude = 0
	return m
}

func newWorld(n int) *mpi.World {
	cl := cluster.New(n, quietMachine())
	return mpi.NewWorld(cl, n, 1, false, 1, 0)
}

// runFenix runs body under Fenix on every rank of a fresh n-rank world and
// returns per-world-rank errors from Run.
func runFenix(n int, cfg Config, body Body) ([]error, *mpi.World) {
	w := newWorld(n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(p *mpi.Proc) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(interface{ killed() }); ok {
						return
					}
					// mpi.processKilled is unexported; swallow any unwind
					// from Exit, re-panic everything else by type name.
					if fmt.Sprintf("%T", r) != "mpi.processKilled" {
						panic(r)
					}
				}
			}()
			errs[p.Rank()] = Run(p, cfg, body)
		}(w.Proc(i))
	}
	wg.Wait()
	return errs, w
}

func checkNoErrs(t *testing.T, errs []error, skip ...int) {
	t.Helper()
	for i, e := range errs {
		skipped := false
		for _, s := range skip {
			if s == i {
				skipped = true
			}
		}
		if !skipped && e != nil {
			t.Fatalf("rank %d: %v", i, e)
		}
	}
}

func TestFailureFreeRun(t *testing.T) {
	var mu sync.Mutex
	roles := map[int]Role{}
	errs, _ := runFenix(4, Config{Spares: 1}, func(ctx *Context) error {
		mu.Lock()
		roles[ctx.Rank()] = ctx.Role()
		mu.Unlock()
		if ctx.Size() != 3 {
			t.Errorf("resilient comm size = %d, want 3", ctx.Size())
		}
		_, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum)
		return err
	})
	checkNoErrs(t, errs)
	if len(roles) != 3 {
		t.Fatalf("%d ranks entered the body, want 3 (spare must stay blocked)", len(roles))
	}
	for r, role := range roles {
		if role != RoleInitial {
			t.Fatalf("rank %d role %v", r, role)
		}
	}
}

func TestInitChargesResilienceInit(t *testing.T) {
	errs, w := runFenix(3, Config{Spares: 1}, func(ctx *Context) error { return nil })
	checkNoErrs(t, errs)
	if w.Proc(0).Recorder().Get(trace.ResilienceInit) <= 0 {
		t.Fatal("Fenix init cost not recorded")
	}
}

func TestSingleFailureRecovery(t *testing.T) {
	var mu sync.Mutex
	entries := []string{}
	record := func(ctx *Context, what string) {
		mu.Lock()
		entries = append(entries, fmt.Sprintf("w%d/l%d:%s", ctx.p.Rank(), ctx.Rank(), what))
		mu.Unlock()
	}
	errs, w := runFenix(4, Config{Spares: 1}, func(ctx *Context) error {
		record(ctx, ctx.Role().String())
		if ctx.Role() == RoleInitial && ctx.p.Rank() == 1 {
			ctx.p.Exit()
		}
		// Everyone else hits the failure through a collective.
		_, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum)
		if err != nil {
			return err
		}
		return nil
	})
	checkNoErrs(t, errs)

	mu.Lock()
	defer mu.Unlock()
	want := map[string]bool{
		"w0/l0:initial": true, "w1/l1:initial": true, "w2/l2:initial": true,
		"w0/l0:survivor": true, "w2/l2:survivor": true,
		"w3/l1:recovered": true, // spare (world 3) adopted logical rank 1
	}
	if len(entries) != len(want) {
		t.Fatalf("entries %v", entries)
	}
	for _, e := range entries {
		if !want[e] {
			t.Fatalf("unexpected entry %q in %v", e, entries)
		}
	}
	if got := w.Proc(3).Recorder().Get(trace.ResilienceInit); got <= 0 {
		t.Fatal("activated spare has no repair cost recorded")
	}
}

func TestRepairedCommPreservesSizeAndUsable(t *testing.T) {
	errs, _ := runFenix(4, Config{Spares: 1}, func(ctx *Context) error {
		if ctx.Role() == RoleInitial && ctx.p.Rank() == 0 {
			ctx.p.Exit()
		}
		sum, err := ctx.Comm().AllreduceInt(ctx.p, ctx.Rank(), mpi.OpSum)
		if err != nil {
			if !mpi.IsULFMError(err) {
				t.Errorf("unexpected err %v", err)
			}
			return err // jump to Fenix
		}
		if ctx.Size() != 3 {
			t.Errorf("size after repair = %d", ctx.Size())
		}
		if sum != 3 { // 0+1+2: logical ranks preserved
			t.Errorf("logical rank sum = %d, want 3", sum)
		}
		return nil
	})
	checkNoErrs(t, errs)
}

func TestCheckPanicsIntoRecovery(t *testing.T) {
	// Application code using ctx.Check never sees the error; Fenix
	// re-enters the body, exactly like the longjmp in C Fenix.
	reentries := make([]int, 4)
	var mu sync.Mutex
	errs, _ := runFenix(4, Config{Spares: 1}, func(ctx *Context) error {
		mu.Lock()
		reentries[ctx.p.Rank()]++
		mu.Unlock()
		if ctx.Role() == RoleInitial && ctx.p.Rank() == 2 {
			ctx.p.Exit()
		}
		_, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum)
		ctx.Check(err) // panics on ULFM error; recovered by Run
		return nil
	})
	checkNoErrs(t, errs)
	mu.Lock()
	defer mu.Unlock()
	if reentries[0] != 2 || reentries[1] != 2 {
		t.Fatalf("survivors re-entered %v times, want 2", reentries[:2])
	}
	if reentries[3] != 1 {
		t.Fatalf("spare entered %d times, want 1", reentries[3])
	}
}

func TestCheckPassesThroughAppErrors(t *testing.T) {
	appErr := errors.New("numerical blowup")
	errs, _ := runFenix(2, Config{Spares: 0}, func(ctx *Context) error {
		if err := ctx.Check(appErr); err != nil {
			return err
		}
		return nil
	})
	for _, e := range errs {
		if !errors.Is(e, appErr) {
			t.Fatalf("err = %v", e)
		}
	}
}

func TestTwoSequentialFailures(t *testing.T) {
	errs, _ := runFenix(6, Config{Spares: 2}, func(ctx *Context) error {
		if ctx.Role() == RoleInitial && ctx.p.Rank() == 1 && ctx.Generation() == 0 {
			ctx.p.Exit()
		}
		if _, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum); err != nil {
			return err
		}
		// Second failure: the survivor world rank 2 dies in generation 1.
		if ctx.Generation() == 1 && ctx.p.Rank() == 2 {
			ctx.p.Exit()
		}
		if _, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum); err != nil {
			return err
		}
		if ctx.Size() != 4 {
			t.Errorf("final size %d", ctx.Size())
		}
		return nil
	})
	checkNoErrs(t, errs)
}

func TestOutOfSparesFailsJob(t *testing.T) {
	errs, _ := runFenix(2, Config{Spares: 0}, func(ctx *Context) error {
		if ctx.Role() == RoleInitial && ctx.p.Rank() == 0 {
			ctx.p.Exit()
		}
		if _, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum); err != nil {
			return err
		}
		return nil
	})
	if !errors.Is(errs[1], ErrOutOfSpares) {
		t.Fatalf("rank 1 err = %v, want ErrOutOfSpares", errs[1])
	}
}

func TestShrinkOnExhaustion(t *testing.T) {
	errs, _ := runFenix(3, Config{Spares: 0, ShrinkOnExhaustion: true}, func(ctx *Context) error {
		if ctx.Role() == RoleInitial && ctx.p.Rank() == 1 {
			ctx.p.Exit()
		}
		if _, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum); err != nil {
			return err
		}
		if ctx.Size() != 2 {
			t.Errorf("shrunk size = %d, want 2", ctx.Size())
		}
		return nil
	})
	checkNoErrs(t, errs, 1)
}

func TestOnRecoverCallback(t *testing.T) {
	var mu sync.Mutex
	called := 0
	cfg := Config{Spares: 1, OnRecover: func(ctx *Context) {
		mu.Lock()
		called++
		mu.Unlock()
	}}
	errs, _ := runFenix(3, cfg, func(ctx *Context) error {
		if ctx.Role() == RoleInitial && ctx.p.Rank() == 0 {
			ctx.p.Exit()
		}
		if _, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum); err != nil {
			return err
		}
		return nil
	})
	checkNoErrs(t, errs)
	mu.Lock()
	defer mu.Unlock()
	// One survivor re-entry; the recovered spare's first entry goes
	// through activation, not recover, so only the survivor count is
	// guaranteed.
	if called == 0 {
		t.Fatal("OnRecover never called")
	}
}

func TestInvalidSpareCount(t *testing.T) {
	w := newWorld(2)
	err := Run(w.Proc(0), Config{Spares: 2}, func(ctx *Context) error { return nil })
	if err == nil {
		t.Fatal("Spares == world size accepted")
	}
}

func TestSpareCountDecreases(t *testing.T) {
	errs, w := runFenix(4, Config{Spares: 2}, func(ctx *Context) error {
		if ctx.Role() == RoleInitial && ctx.p.Rank() == 1 {
			ctx.p.Exit()
		}
		if _, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum); err != nil {
			return err
		}
		return nil
	})
	checkNoErrs(t, errs)
	if got := SpareCount(w.Proc(0)); got != 1 {
		t.Fatalf("SpareCount = %d, want 1", got)
	}
}

func TestRolesString(t *testing.T) {
	if RoleInitial.String() != "initial" || RoleSurvivor.String() != "survivor" || RoleRecovered.String() != "recovered" {
		t.Fatal("role strings wrong")
	}
}

// --- IMR ---

func TestBuddyOfIsInvolution(t *testing.T) {
	for r := 0; r < 64; r++ {
		b := BuddyOf(r)
		if b == r {
			t.Fatalf("rank %d is its own buddy", r)
		}
		if BuddyOf(b) != r {
			t.Fatalf("buddy not an involution at %d", r)
		}
	}
}

func TestIMRRequiresEvenSize(t *testing.T) {
	errs, _ := runFenix(3, Config{Spares: 0}, func(ctx *Context) error {
		_, err := NewIMR(ctx, "x")
		if err == nil {
			t.Error("odd-size IMR accepted")
		}
		return nil
	})
	checkNoErrs(t, errs)
}

func TestIMRCheckpointRestoreSurvivors(t *testing.T) {
	errs, w := runFenix(4, Config{Spares: 0}, func(ctx *Context) error {
		im, err := NewIMR(ctx, "x")
		if err != nil {
			return err
		}
		blob := []byte(fmt.Sprintf("data-of-%d", ctx.Rank()))
		if err := im.Checkpoint(3, blob); err != nil {
			return err
		}
		v, err := im.LatestCommon()
		if err != nil {
			return err
		}
		if v != 3 {
			t.Errorf("latest = %d", v)
		}
		got, err := im.Restore(3)
		if err != nil {
			return err
		}
		if string(got) != string(blob) {
			t.Errorf("restore = %q", got)
		}
		return nil
	})
	checkNoErrs(t, errs)
	if w.Proc(0).Recorder().Get(trace.CheckpointFunc) <= 0 {
		t.Fatal("IMR checkpoint cost not in CheckpointFunc")
	}
	if w.Proc(0).Recorder().Get(trace.DataRecovery) <= 0 {
		t.Fatal("IMR restore cost not in DataRecovery")
	}
	if w.Proc(0).Recorder().Get(trace.AppMPI) > 1e-4 {
		t.Fatalf("IMR left %v in AppMPI; exchange should be reattributed",
			w.Proc(0).Recorder().Get(trace.AppMPI))
	}
}

func TestIMRRecoveredRankRestoresFromBuddy(t *testing.T) {
	errs, _ := runFenix(5, Config{Spares: 1}, func(ctx *Context) error {
		im, err := NewIMR(ctx, "x")
		if err != nil {
			return err
		}
		blob := []byte(fmt.Sprintf("payload-%d", ctx.Rank()))
		if ctx.Role() == RoleInitial {
			if err := im.Checkpoint(1, blob); err != nil {
				return ctx.Check(err)
			}
			if ctx.p.Rank() == 2 {
				ctx.p.Exit()
			}
		}
		if err := ctx.Check(ctx.Comm().Barrier(ctx.p)); err != nil {
			return err
		}
		v, err := im.LatestCommon()
		if err = ctx.Check(err); err != nil {
			return err
		}
		got, err := im.Restore(v)
		if err = ctx.Check(err); err != nil {
			return err
		}
		want := fmt.Sprintf("payload-%d", ctx.Rank())
		if string(got) != want {
			t.Errorf("world %d logical %d restored %q, want %q", ctx.p.Rank(), ctx.Rank(), got, want)
		}
		return nil
	})
	checkNoErrs(t, errs)
}

func TestIMRVersionGC(t *testing.T) {
	errs, _ := runFenix(2, Config{Spares: 0}, func(ctx *Context) error {
		im, err := NewIMR(ctx, "x")
		if err != nil {
			return err
		}
		for v := 1; v <= 5; v++ {
			if err := im.Checkpoint(v, []byte{byte(v)}); err != nil {
				return err
			}
		}
		// Old versions are collected (keep = 2): restoring v=1 must fail.
		if _, err := im.Restore(1); err == nil {
			t.Error("restore of GC'd version succeeded")
		}
		if _, err := im.Restore(5); err != nil {
			t.Errorf("restore of latest failed: %v", err)
		}
		return nil
	})
	checkNoErrs(t, errs)
}
