package fenix

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/trace"
)

// This file implements Fenix's In-Memory Redundancy (IMR) data resiliency
// policy with the buddy-rank pairing the paper uses (Section V-A): logical
// ranks form pairs (0,1), (2,3), ... and store each other's checkpoint
// data in memory. A local copy is also kept, trading memory for quick
// node-local recovery on surviving ranks. Recovery of a failed rank's data
// requires one network transfer from its buddy; losing both members of a
// pair between checkpoints loses the data (ErrIMRDataLost).

// ErrIMRDataLost is returned when both members of a buddy pair failed and
// the checkpoint data is unrecoverable.
var ErrIMRDataLost = errors.New("fenix: IMR buddy data lost")

// ErrIMRNoCheckpoint is returned when no common IMR version exists.
var ErrIMRNoCheckpoint = errors.New("fenix: no IMR checkpoint available")

// imrSlot is the per-logical-rank IMR storage: recent versions of the
// rank's own data plus copies of its buddy's data. It lives in the
// runtime, surviving rank replacement: a spare adopting logical rank r can
// still use the surviving buddy's copy.
// imrBlob is one stored checkpoint: real contents plus the cost-model size.
type imrBlob struct {
	data     []byte
	simBytes int
}

type imrSlot struct {
	own   map[int]imrBlob // version -> this slot's data
	buddy map[int]imrBlob // version -> buddy slot's data
}

func newIMRSlot() *imrSlot {
	return &imrSlot{own: make(map[int]imrBlob), buddy: make(map[int]imrBlob)}
}

func gcVersions(m map[int]imrBlob, keep int) {
	if len(m) <= keep {
		return
	}
	vs := make([]int, 0, len(m))
	for v := range m {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	for _, v := range vs[:len(vs)-keep] {
		delete(m, v)
	}
}

// IMR is one rank's handle on the in-memory redundancy store.
type IMR struct {
	ctx  *Context
	name string
}

// NewIMR creates an IMR handle for ctx. The resilient communicator must
// have even size so every rank has a buddy.
func NewIMR(ctx *Context, name string) (*IMR, error) {
	if ctx.Size()%2 != 0 {
		return nil, fmt.Errorf("fenix: IMR buddy policy requires an even communicator size, got %d", ctx.Size())
	}
	return &IMR{ctx: ctx, name: name}, nil
}

// BuddyOf returns the buddy of logical rank r under the pair policy.
func BuddyOf(r int) int { return r ^ 1 }

// slotStore returns (creating if needed) the storage for logical rank r.
func (im *IMR) slotStore(r int) *imrSlot {
	rt := im.ctx.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	s, ok := rt.imr[r]
	if !ok {
		s = newIMRSlot()
		rt.imr[r] = s
	}
	return s
}

const imrTag = 0x1397

// Checkpoint stores blob as version v: a local in-memory copy plus a
// synchronous exchange with the buddy rank. The entire cost — memory copy
// and network transfer — is charged to the CheckpointFunc category, which
// is why the paper observes IMR checkpoint-function cost scaling directly
// with data size.
func (im *IMR) Checkpoint(v int, blob []byte) error {
	return im.CheckpointSized(v, blob, len(blob))
}

// CheckpointSized is Checkpoint with the cost model charged for simBytes
// instead of the real buffer length.
func (im *IMR) CheckpointSized(v int, blob []byte, simBytes int) error {
	ctx := im.ctx
	p := ctx.p
	me := ctx.Rank()
	buddy := BuddyOf(me)

	// Local copy.
	cp := make([]byte, len(blob))
	copy(cp, blob)
	copyCost := p.Machine().MemcpyTime(simBytes)
	p.ChargeTime(trace.CheckpointFunc, copyCost)

	// Buddy exchange; the comm charges AppMPI, which we reattribute.
	before := p.Recorder().Get(trace.AppMPI)
	start := p.Now()
	theirs, err := ctx.Comm().SendrecvSized(p, buddy, imrTag, blob, simBytes, buddy, imrTag)
	if err != nil {
		return err
	}
	p.Recorder().Move(trace.AppMPI, trace.CheckpointFunc, p.Recorder().Get(trace.AppMPI)-before)
	p.Event(obs.LayerFenix, obs.EvFenixIMRExchange,
		obs.KV("version", v), obs.KV("buddy", buddy), obs.KV("bytes", simBytes))
	if reg := p.Obs().Registry(); reg != nil {
		layer := obs.L("layer", "imr")
		reg.Counter(obs.MCheckpoints, layer).Inc()
		reg.Counter(obs.MCheckpointBytes, layer).Add(float64(simBytes))
		reg.Histogram(obs.MCheckpointSyncSeconds, obs.TimeBuckets, layer).Observe(copyCost + (p.Now() - start))
	}

	mine := im.slotStore(me)
	rt := ctx.rt
	rt.mu.Lock()
	mine.own[v] = imrBlob{data: cp, simBytes: simBytes}
	tb := make([]byte, len(theirs))
	copy(tb, theirs)
	mine.buddy[v] = imrBlob{data: tb, simBytes: simBytes}
	gcVersions(mine.own, rt.imrKeep)
	gcVersions(mine.buddy, rt.imrKeep)
	rt.mu.Unlock()
	return nil
}

// LatestCommon returns the newest version restorable at every rank: each
// rank offers the newest version of its own data it can reach (local for
// survivors, the buddy's copy for recovered ranks), reduced by a global
// minimum.
func (im *IMR) LatestCommon() (int, error) {
	ctx := im.ctx
	me := ctx.Rank()
	local := -1

	rt := ctx.rt
	rt.mu.Lock()
	if s, ok := rt.imr[me]; ok {
		for v := range s.own {
			if v > local {
				local = v
			}
		}
	}
	if ctx.Role() == RoleRecovered {
		// A replacement's own store is empty locally; its data lives in
		// the buddy's store.
		if bs, ok := rt.imr[BuddyOf(me)]; ok {
			for v := range bs.buddy {
				if v > local {
					local = v
				}
			}
		}
	}
	rt.mu.Unlock()

	global, err := ctx.Comm().AllreduceInt(ctx.p, local, mpi.OpMin)
	if err != nil {
		return 0, err
	}
	if global < 0 {
		return 0, ErrIMRNoCheckpoint
	}
	return global, nil
}

// Restore retrieves version v of this rank's data. Survivors restore from
// their local copy (a memory copy); recovered ranks receive their data
// from the buddy over the network. All ranks of the communicator must call
// Restore collectively (the buddy protocol requires the partner's
// participation). Costs are charged to DataRecovery.
func (im *IMR) Restore(v int) ([]byte, error) {
	ctx := im.ctx
	p := ctx.p
	me := ctx.Rank()
	buddy := BuddyOf(me)
	rt := ctx.rt

	rt.mu.Lock()
	var local []byte
	localSim := 0
	if s, ok := rt.imr[me]; ok {
		if b, ok := s.own[v]; ok {
			local = b.data
			localSim = b.simBytes
		}
	}
	rt.mu.Unlock()

	// Determine which side of the pair needs network recovery. Both
	// members must agree; exchange "do I hold my data locally" flags,
	// along with the cost-model size of the copy we hold for the buddy
	// (so a receiver can record its restored blob's simulated size).
	rt.mu.Lock()
	heldForBuddySim := 0
	if s, ok := rt.imr[me]; ok {
		if b, ok := s.buddy[v]; ok {
			heldForBuddySim = b.simBytes
		}
	}
	rt.mu.Unlock()
	flagMsg := make([]byte, 9)
	if local != nil {
		flagMsg[0] = 1
	}
	binary.LittleEndian.PutUint64(flagMsg[1:], uint64(heldForBuddySim))
	flags, err := ctx.Comm().Sendrecv(p, buddy, imrTag+1, flagMsg, buddy, imrTag+1)
	if err != nil {
		return nil, err
	}
	buddyHas := flags[0] == 1
	mySimAtBuddy := int(binary.LittleEndian.Uint64(flags[1:]))

	before := p.Recorder().Get(trace.AppMPI)
	restoreStart := p.Now()
	noteRestore := func(simBytes int, source string) {
		p.Event(obs.LayerFenix, obs.EvFenixIMRRestore, obs.KV("version", v),
			obs.KV("bytes", simBytes), obs.KV("source", source))
		if reg := p.Obs().Registry(); reg != nil {
			layer := obs.L("layer", "imr")
			reg.Counter(obs.MRestores, layer).Inc()
			reg.Counter(obs.MRestoreBytes, layer).Add(float64(simBytes))
			reg.Histogram(obs.MRestoreSeconds, obs.TimeBuckets, layer).Observe(p.Now() - restoreStart)
		}
	}
	defer func() {
		p.Recorder().Move(trace.AppMPI, trace.DataRecovery, p.Recorder().Get(trace.AppMPI)-before)
	}()

	if local != nil {
		cost := p.Machine().MemcpyTime(localSim)
		p.ChargeTime(trace.DataRecovery, cost)
		if !buddyHas {
			// Serve the buddy its data from our buddy-copy store.
			rt.mu.Lock()
			var theirs []byte
			theirsSim := 0
			if s, ok := rt.imr[me]; ok {
				if b, ok := s.buddy[v]; ok {
					theirs = b.data
					theirsSim = b.simBytes
				}
			}
			rt.mu.Unlock()
			if theirs == nil {
				return nil, fmt.Errorf("%w: version %d for rank %d", ErrIMRDataLost, v, buddy)
			}
			if err := ctx.Comm().SendSized(p, buddy, imrTag+2, theirs, theirsSim); err != nil {
				return nil, err
			}
		}
		out := make([]byte, len(local))
		copy(out, local)
		noteRestore(localSim, "local")
		return out, nil
	}

	if !buddyHas {
		return nil, fmt.Errorf("%w: version %d for rank %d (both pair members lost)", ErrIMRDataLost, v, me)
	}
	blob, err := ctx.Comm().Recv(p, buddy, imrTag+2)
	if err != nil {
		return nil, err
	}
	// Repopulate the local store so subsequent failures of the buddy can
	// be served.
	cp := make([]byte, len(blob))
	copy(cp, blob)
	rt.mu.Lock()
	s, ok := rt.imr[me]
	if !ok {
		s = newIMRSlot()
		rt.imr[me] = s
	}
	s.own[v] = imrBlob{data: cp, simBytes: mySimAtBuddy}
	gcVersions(s.own, rt.imrKeep)
	rt.mu.Unlock()
	noteRestore(mySimAtBuddy, "buddy")
	return blob, nil
}
