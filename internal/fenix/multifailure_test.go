package fenix

import (
	"sync"
	"testing"

	"repro/internal/mpi"
)

func TestSimultaneousDoubleFailure(t *testing.T) {
	// Two ranks die in the same generation, before either failure has
	// been recovered: one repair must substitute both spares at once.
	errs, _ := runFenix(6, Config{Spares: 2}, func(ctx *Context) error {
		if ctx.Role() == RoleInitial && (ctx.p.Rank() == 1 || ctx.p.Rank() == 3) {
			ctx.p.Exit()
		}
		sum, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum)
		if err != nil {
			return err
		}
		if ctx.Size() != 4 {
			t.Errorf("size = %d after double repair", ctx.Size())
		}
		if sum != 4 {
			t.Errorf("allreduce = %d", sum)
		}
		return nil
	})
	checkNoErrs(t, errs)
}

func TestSimultaneousFailuresExceedSpares(t *testing.T) {
	// Two die, one spare: the job must fail cleanly with ErrOutOfSpares,
	// not hang.
	errs, _ := runFenix(5, Config{Spares: 1}, func(ctx *Context) error {
		if ctx.Role() == RoleInitial && (ctx.p.Rank() == 0 || ctx.p.Rank() == 2) {
			ctx.p.Exit()
		}
		_, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum)
		return err
	})
	sawOut := false
	for i, e := range errs {
		if i == 0 || i == 2 {
			continue
		}
		if e != nil {
			sawOut = true
		}
	}
	if !sawOut {
		t.Fatal("no survivor reported ErrOutOfSpares")
	}
}

func TestSimultaneousFailuresWithShrink(t *testing.T) {
	// Two die, one spare, shrinking enabled: one slot is refilled, the
	// other is compacted away.
	var mu sync.Mutex
	sizes := map[int]int{}
	errs, _ := runFenix(5, Config{Spares: 1, ShrinkOnExhaustion: true}, func(ctx *Context) error {
		if ctx.Role() == RoleInitial && (ctx.p.Rank() == 0 && ctx.Generation() == 0 || ctx.p.Rank() == 2 && ctx.Generation() == 0) {
			ctx.p.Exit()
		}
		if _, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum); err != nil {
			return err
		}
		mu.Lock()
		sizes[ctx.p.Rank()] = ctx.Size()
		mu.Unlock()
		return nil
	})
	checkNoErrs(t, errs, 0, 2)
	mu.Lock()
	defer mu.Unlock()
	for wr, size := range sizes {
		if size != 3 { // 4 original - 2 dead + 1 spare
			t.Fatalf("world rank %d saw size %d, want 3", wr, size)
		}
	}
}

func TestThreeSequentialFailures(t *testing.T) {
	errs, _ := runFenix(8, Config{Spares: 3}, func(ctx *Context) error {
		kill := map[int]int{0: 1, 1: 2, 2: 3} // generation -> world rank to kill
		for gen := 0; gen < 3; gen++ {
			if ctx.Generation() == gen {
				if wr, ok := kill[gen]; ok && ctx.p.Rank() == wr && ctx.Role() != RoleRecovered {
					ctx.p.Exit()
				}
			}
			if _, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum); err != nil {
				return err
			}
		}
		if ctx.Size() != 5 {
			t.Errorf("final size %d", ctx.Size())
		}
		return nil
	})
	checkNoErrs(t, errs)
}

func TestRecoveredRankFailsAgain(t *testing.T) {
	// A spare takes over logical rank 1, then the replacement itself dies
	// and a second spare takes the same slot.
	errs, _ := runFenix(5, Config{Spares: 2}, func(ctx *Context) error {
		if ctx.Role() == RoleInitial && ctx.p.Rank() == 1 {
			ctx.p.Exit()
		}
		if _, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum); err != nil {
			return err
		}
		// The first replacement (world rank 3, logical 1) dies too.
		if ctx.Role() == RoleRecovered && ctx.p.Rank() == 3 {
			ctx.p.Exit()
		}
		if _, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum); err != nil {
			return err
		}
		if ctx.Size() != 3 {
			t.Errorf("size %d", ctx.Size())
		}
		return nil
	})
	checkNoErrs(t, errs)
}
