package fenix

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/mpi"
)

func TestSimultaneousDoubleFailure(t *testing.T) {
	// Two ranks die in the same generation, before either failure has
	// been recovered: one repair must substitute both spares at once.
	errs, _ := runFenix(6, Config{Spares: 2}, func(ctx *Context) error {
		if ctx.Role() == RoleInitial && (ctx.p.Rank() == 1 || ctx.p.Rank() == 3) {
			ctx.p.Exit()
		}
		sum, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum)
		if err != nil {
			return err
		}
		if ctx.Size() != 4 {
			t.Errorf("size = %d after double repair", ctx.Size())
		}
		if sum != 4 {
			t.Errorf("allreduce = %d", sum)
		}
		return nil
	})
	checkNoErrs(t, errs)
}

func TestSimultaneousFailuresExceedSpares(t *testing.T) {
	// Two die, one spare: the job must fail cleanly with ErrOutOfSpares,
	// not hang.
	errs, _ := runFenix(5, Config{Spares: 1}, func(ctx *Context) error {
		if ctx.Role() == RoleInitial && (ctx.p.Rank() == 0 || ctx.p.Rank() == 2) {
			ctx.p.Exit()
		}
		_, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum)
		return err
	})
	sawOut := false
	for i, e := range errs {
		if i == 0 || i == 2 {
			continue
		}
		if e != nil {
			sawOut = true
		}
	}
	if !sawOut {
		t.Fatal("no survivor reported ErrOutOfSpares")
	}
}

func TestSimultaneousFailuresWithShrink(t *testing.T) {
	// Two die, one spare, shrinking enabled: one slot is refilled, the
	// other is compacted away.
	var mu sync.Mutex
	sizes := map[int]int{}
	errs, _ := runFenix(5, Config{Spares: 1, ShrinkOnExhaustion: true}, func(ctx *Context) error {
		if ctx.Role() == RoleInitial && (ctx.p.Rank() == 0 && ctx.Generation() == 0 || ctx.p.Rank() == 2 && ctx.Generation() == 0) {
			ctx.p.Exit()
		}
		if _, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum); err != nil {
			return err
		}
		mu.Lock()
		sizes[ctx.p.Rank()] = ctx.Size()
		mu.Unlock()
		return nil
	})
	checkNoErrs(t, errs, 0, 2)
	mu.Lock()
	defer mu.Unlock()
	for wr, size := range sizes {
		if size != 3 { // 4 original - 2 dead + 1 spare
			t.Fatalf("world rank %d saw size %d, want 3", wr, size)
		}
	}
}

func TestThreeSequentialFailures(t *testing.T) {
	errs, _ := runFenix(8, Config{Spares: 3}, func(ctx *Context) error {
		kill := map[int]int{0: 1, 1: 2, 2: 3} // generation -> world rank to kill
		for gen := 0; gen < 3; gen++ {
			if ctx.Generation() == gen {
				if wr, ok := kill[gen]; ok && ctx.p.Rank() == wr && ctx.Role() != RoleRecovered {
					ctx.p.Exit()
				}
			}
			if _, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum); err != nil {
				return err
			}
		}
		if ctx.Size() != 5 {
			t.Errorf("final size %d", ctx.Size())
		}
		return nil
	})
	checkNoErrs(t, errs)
}

func TestRecoveredRankFailsAgain(t *testing.T) {
	// A spare takes over logical rank 1, then the replacement itself dies
	// and a second spare takes the same slot.
	errs, _ := runFenix(5, Config{Spares: 2}, func(ctx *Context) error {
		if ctx.Role() == RoleInitial && ctx.p.Rank() == 1 {
			ctx.p.Exit()
		}
		if _, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum); err != nil {
			return err
		}
		// The first replacement (world rank 3, logical 1) dies too.
		if ctx.Role() == RoleRecovered && ctx.p.Rank() == 3 {
			ctx.p.Exit()
		}
		if _, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum); err != nil {
			return err
		}
		if ctx.Size() != 3 {
			t.Errorf("size %d", ctx.Size())
		}
		return nil
	})
	checkNoErrs(t, errs)
}

// testInjector kills ranks at named injection points: a minimal in-package
// stand-in for the chaos engine's injector (importing internal/chaos here
// would cycle).
type testInjector struct {
	mu    sync.Mutex
	seen  map[string]map[int]int // point -> world rank -> visits so far
	kills map[string]map[int]int // point -> world rank -> visit to kill at
	spare map[int]bool           // world ranks whose kill is a spare kill
}

func (ti *testInjector) At(p *mpi.Proc, point string) {
	ti.mu.Lock()
	if ti.seen == nil {
		ti.seen = map[string]map[int]int{}
	}
	if ti.seen[point] == nil {
		ti.seen[point] = map[int]int{}
	}
	n := ti.seen[point][p.Rank()]
	ti.seen[point][p.Rank()] = n + 1
	hit, kill := 0, false
	if m := ti.kills[point]; m != nil {
		hit, kill = m[p.Rank()], true
		if _, ok := m[p.Rank()]; !ok {
			kill = false
		}
	}
	ti.mu.Unlock()
	if kill && hit == n {
		p.ExitInjected(point, ti.spare[p.Rank()])
	}
}

// runFenixInject is runFenix with a fault injector installed on the world.
func runFenixInject(n int, cfg Config, inj mpi.Injector, body Body) ([]error, *mpi.World) {
	w := newWorld(n)
	w.SetInjector(inj)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(p *mpi.Proc) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if fmt.Sprintf("%T", r) != "mpi.processKilled" {
						panic(r)
					}
				}
			}()
			errs[p.Rank()] = Run(p, cfg, body)
		}(w.Proc(i))
	}
	wg.Wait()
	return errs, w
}

// TestSpareKilledWhileBlockedInInit kills a spare while it is still
// blocked inside Fenix initialization, then a member. The dead spare must
// be pruned from the pool (never selected for activation), the surviving
// spare must repair the member failure, and nothing may hang.
func TestSpareKilledWhileBlockedInInit(t *testing.T) {
	inj := &testInjector{
		kills: map[string]map[int]int{"fenix.spare_wait": {4: 0}},
		spare: map[int]bool{4: true},
	}
	errs, _ := runFenixInject(6, Config{Spares: 2}, inj, func(ctx *Context) error {
		if ctx.Role() == RoleInitial && ctx.p.Rank() == 1 {
			ctx.p.Exit()
		}
		sum, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum)
		if err != nil {
			return err
		}
		if ctx.Size() != 4 {
			t.Errorf("size = %d after repair, want 4", ctx.Size())
		}
		if sum != 4 {
			t.Errorf("allreduce = %d, want 4", sum)
		}
		if ctx.Role() == RoleRecovered && ctx.p.Rank() != 5 {
			t.Errorf("world rank %d activated; the dead spare 4 must be skipped", ctx.p.Rank())
		}
		return nil
	})
	checkNoErrs(t, errs, 1, 4)
}

// TestSpareKilledNoFailures kills a blocked spare in an otherwise
// failure-free run: a dead spare is not an application failure, so the job
// must still complete cleanly and release the remaining spare with no
// error.
func TestSpareKilledNoFailures(t *testing.T) {
	inj := &testInjector{
		kills: map[string]map[int]int{"fenix.spare_wait": {4: 0}},
		spare: map[int]bool{4: true},
	}
	errs, _ := runFenixInject(6, Config{Spares: 2}, inj, func(ctx *Context) error {
		sum, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum)
		if err != nil {
			return err
		}
		if sum != 4 {
			t.Errorf("allreduce = %d, want 4", sum)
		}
		return nil
	})
	checkNoErrs(t, errs, 4)
}

// TestOutOfSparesWithConcurrentFailure drives spare exhaustion while yet
// another member dies on its way into the failing repair: two members die
// together against one spare, and a third member is killed the moment it
// enters recovery. The repair must fail every participant with
// ErrOutOfSpares — including the blocked spare — and must not hang or
// leave a survivor waiting on a repair that can never complete.
func TestOutOfSparesWithConcurrentFailure(t *testing.T) {
	inj := &testInjector{
		kills: map[string]map[int]int{"fenix.recover": {3: 0}},
	}
	errs, _ := runFenixInject(5, Config{Spares: 1}, inj, func(ctx *Context) error {
		if ctx.Role() == RoleInitial && (ctx.p.Rank() == 0 || ctx.p.Rank() == 2) {
			ctx.p.Exit()
		}
		_, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum)
		return err
	})
	// Ranks 0 and 2 were killed outright; rank 3 was killed entering
	// recovery. The remaining member (1) and the spare (4) must both see
	// the exhaustion, not a hang or a nil.
	for _, wr := range []int{1, 4} {
		if !errors.Is(errs[wr], ErrOutOfSpares) {
			t.Errorf("rank %d: err = %v, want ErrOutOfSpares", wr, errs[wr])
		}
	}
}

// TestShrinkOnExhaustionWithBlockedSpare is the same exhaustion storm with
// ShrinkOnExhaustion enabled: three members die against one spare while
// that spare is still blocked in Fenix initialization. Instead of failing
// the job, the single rebuild must pull the blocked spare out of its wait
// and substitute it into the lowest dead slot, shrink the other two slots
// away, and let the survivor and the activated spare finish cleanly on the
// compacted communicator.
func TestShrinkOnExhaustionWithBlockedSpare(t *testing.T) {
	inj := &testInjector{
		kills: map[string]map[int]int{"fenix.recover": {3: 0}},
	}
	var mu sync.Mutex
	sizes := map[int]int{}
	roles := map[int]Role{}
	errs, _ := runFenixInject(5, Config{Spares: 1, ShrinkOnExhaustion: true}, inj, func(ctx *Context) error {
		if ctx.Role() == RoleInitial && (ctx.p.Rank() == 0 || ctx.p.Rank() == 2) {
			ctx.p.Exit()
		}
		sum, err := ctx.Comm().AllreduceInt(ctx.p, 1, mpi.OpSum)
		if err != nil {
			return err
		}
		mu.Lock()
		sizes[ctx.p.Rank()] = ctx.Size()
		roles[ctx.p.Rank()] = ctx.Role()
		mu.Unlock()
		if sum != ctx.Size() {
			t.Errorf("rank %d: allreduce = %d over a %d-slot comm", ctx.p.Rank(), sum, ctx.Size())
		}
		return nil
	})
	// Member 1 survives and the spare (world rank 4) is recovered into the
	// lowest dead slot; slots for the other two dead members are shrunk
	// away. Neither may see an error: exhaustion resolved by compaction.
	checkNoErrs(t, errs, 0, 2, 3)
	for _, wr := range []int{1, 4} {
		if sizes[wr] != 2 {
			t.Errorf("rank %d finished on a %d-slot comm, want 2", wr, sizes[wr])
		}
	}
	if roles[1] != RoleSurvivor {
		t.Errorf("rank 1 role = %v, want survivor", roles[1])
	}
	if roles[4] != RoleRecovered {
		t.Errorf("rank 4 role = %v, want recovered (blocked spare must be activated)", roles[4])
	}
}
