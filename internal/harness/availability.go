package harness

import (
	"math"

	"repro/internal/apps/heatdis"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// This file adds the availability study motivated by the paper's
// introduction: the Blue Waters analysis found node failures every 4.2
// hours and ~9% of production hours lost. Here, long-running jobs are
// subjected to Poisson failures at a configurable MTBF and each strategy's
// *efficiency* — ideal failure-free time over actual wall time — is
// measured, quantifying how much machine the resilience stack gives back.

// OptimalInterval returns Young's approximation of the optimal checkpoint
// interval (in iterations) given the per-checkpoint cost, the
// per-iteration time, and the system MTBF, all in virtual seconds:
// T_opt = sqrt(2 * C * MTBF).
func OptimalInterval(ckptCost, iterTime, mtbf float64) int {
	if ckptCost <= 0 || iterTime <= 0 || mtbf <= 0 {
		return 1
	}
	t := math.Sqrt(2 * ckptCost * mtbf)
	n := int(math.Round(t / iterTime))
	if n < 1 {
		n = 1
	}
	return n
}

// AvailabilityPoint is one strategy's outcome under a failure process.
type AvailabilityPoint struct {
	Strategy   core.Strategy
	MTBF       float64 // virtual seconds
	Failures   int     // injected failures
	IdealWall  float64 // failure-free wall time
	ActualWall float64
	Efficiency float64 // IdealWall / ActualWall
	Completed  bool
}

// AvailabilityOptions configures the study.
type AvailabilityOptions struct {
	Machine *sim.Machine
	// Ranks is the application rank count.
	Ranks int
	// Iterations is the job length; longer jobs see more failures.
	Iterations int
	// Interval is the checkpoint cadence.
	Interval int
	// BytesPerRank is the Heatdis data size.
	BytesPerRank int
	// MTBF is the system mean time between failures in virtual seconds.
	MTBF float64
	// Seed drives both jitter and the failure process.
	Seed uint64
}

func (o *AvailabilityOptions) normalize() {
	if o.Machine == nil {
		o.Machine = sim.DefaultMachine()
	}
	if o.Ranks <= 0 {
		o.Ranks = 16
	}
	if o.Iterations <= 0 {
		o.Iterations = 300
	}
	if o.Interval <= 0 {
		o.Interval = 10
	}
	if o.BytesPerRank <= 0 {
		o.BytesPerRank = 256 * MB
	}
	if o.MTBF <= 0 {
		o.MTBF = 600
	}
	if o.Seed == 0 {
		o.Seed = 99
	}
}

// drawFailures samples a Poisson failure process over the job: exponential
// inter-arrival times at the given MTBF, mapped to (slot, iteration)
// injection points using the estimated per-iteration time. Failures
// falling on the same iteration are pushed apart; at most one failure per
// checkpoint interval keeps the study in the paper's regime (flush
// complete before the failure).
func drawFailures(o *AvailabilityOptions, iterTime float64) []*core.FailurePlan {
	rng := sim.NewRNG(o.Seed).Split(7)
	var plans []*core.FailurePlan
	t := 0.0
	horizon := float64(o.Iterations) * iterTime
	usedIntervals := map[int]bool{}
	for {
		// Exponential(MTBF) via inverse CDF.
		u := rng.Float64()
		if u <= 0 {
			u = 1e-12
		}
		t += -o.MTBF * math.Log(1-u)
		if t >= horizon {
			return plans
		}
		iter := int(t / iterTime)
		if iter >= o.Iterations {
			return plans
		}
		intv := iter / o.Interval
		if usedIntervals[intv] || intv == 0 {
			continue // one failure per interval; never before first checkpoint
		}
		usedIntervals[intv] = true
		slot := rng.Intn(o.Ranks)
		plans = append(plans, &core.FailurePlan{Slot: slot, Iteration: iter})
	}
}

// AvailabilityStudy measures each strategy's efficiency under the failure
// process. Fenix strategies get one spare per injected failure; relaunch
// strategies get unlimited restarts.
func AvailabilityStudy(strategies []core.Strategy, opts AvailabilityOptions) []AvailabilityPoint {
	opts.normalize()
	if len(strategies) == 0 {
		strategies = []core.Strategy{core.StrategyKRVeloC, core.StrategyFenixKRVeloC, core.StrategyFenixIMR}
	}
	cfg := heatdis.Config{
		BytesPerRank:       opts.BytesPerRank,
		Iterations:         opts.Iterations,
		CheckpointInterval: opts.Interval,
		ActualRows:         8,
		ActualCols:         16,
	}
	// Estimate per-iteration virtual time from the simulated stencil cost.
	iterTime := opts.Machine.ComputeTime(30 * float64(cfg.SimRows()) * 4096)

	var out []AvailabilityPoint
	for _, strat := range strategies {
		plans := drawFailures(&opts, iterTime)
		// Fresh plan copies per strategy (plans are one-shot).
		mine := make([]*core.FailurePlan, len(plans))
		for i, fp := range plans {
			mine[i] = &core.FailurePlan{Slot: fp.Slot, Iteration: fp.Iteration}
		}
		spares := 0
		if strat.UsesFenix() {
			spares = len(mine) + 1
			if (opts.Ranks+spares)%2 != (opts.Ranks)%2 && strat.UsesIMR() {
				spares++ // keep resilient comm even for buddy pairing
			}
		}
		run := func(failures []*core.FailurePlan) *core.Result {
			cc := core.Config{
				Strategy:           strat,
				Spares:             spares,
				CheckpointInterval: opts.Interval,
				CheckpointName:     "avail",
				MaxRestarts:        len(mine) + 2,
				Failures:           failures,
			}
			sink := heatdis.NewSink()
			return core.Run(mpi.JobConfig{Ranks: opts.Ranks + spares, Machine: opts.Machine, Seed: opts.Seed},
				cc, heatdis.App(cfg, sink))
		}
		ideal := run(nil)
		actual := run(mine)
		out = append(out, AvailabilityPoint{
			Strategy:   strat,
			MTBF:       opts.MTBF,
			Failures:   len(mine),
			IdealWall:  ideal.WallTime,
			ActualWall: actual.WallTime,
			Efficiency: ideal.WallTime / actual.WallTime,
			Completed:  !actual.Failed,
		})
	}
	return out
}
