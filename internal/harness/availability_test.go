package harness

import (
	"testing"

	"repro/internal/core"
)

func TestOptimalInterval(t *testing.T) {
	// Young: T_opt = sqrt(2*C*MTBF). C=2s, MTBF=400s -> 40s; at 2s/iter
	// that is 20 iterations.
	if got := OptimalInterval(2, 2, 400); got != 20 {
		t.Fatalf("OptimalInterval = %d, want 20", got)
	}
	if OptimalInterval(0, 1, 100) != 1 || OptimalInterval(1, 1, 0) != 1 {
		t.Fatal("degenerate inputs must clamp to 1")
	}
	// Costlier checkpoints -> longer intervals.
	if !(OptimalInterval(8, 2, 400) > OptimalInterval(2, 2, 400)) {
		t.Fatal("interval must grow with checkpoint cost")
	}
	// Shorter MTBF -> shorter intervals.
	if !(OptimalInterval(2, 2, 100) < OptimalInterval(2, 2, 400)) {
		t.Fatal("interval must shrink with MTBF")
	}
}

func TestDrawFailuresProperties(t *testing.T) {
	opts := AvailabilityOptions{Ranks: 8, Iterations: 300, Interval: 10, MTBF: 50, Seed: 3}
	opts.normalize()
	plans := drawFailures(&opts, 1.0) // 300s horizon, MTBF 50 -> ~6 failures
	if len(plans) < 2 {
		t.Fatalf("only %d failures drawn at MTBF 50 over 300s", len(plans))
	}
	seenIntervals := map[int]bool{}
	for _, fp := range plans {
		if fp.Iteration < opts.Interval {
			t.Fatalf("failure at iteration %d before the first checkpoint", fp.Iteration)
		}
		if fp.Iteration >= opts.Iterations {
			t.Fatalf("failure beyond the job at %d", fp.Iteration)
		}
		if fp.Slot < 0 || fp.Slot >= opts.Ranks {
			t.Fatalf("failure slot %d out of range", fp.Slot)
		}
		intv := fp.Iteration / opts.Interval
		if seenIntervals[intv] {
			t.Fatalf("two failures in checkpoint interval %d", intv)
		}
		seenIntervals[intv] = true
	}
	// Higher MTBF -> fewer failures.
	optsHi := opts
	optsHi.MTBF = 5000
	if hi := drawFailures(&optsHi, 1.0); len(hi) >= len(plans) {
		t.Fatalf("MTBF 5000 drew %d failures vs %d at MTBF 50", len(hi), len(plans))
	}
	// Deterministic for a fixed seed.
	again := drawFailures(&opts, 1.0)
	if len(again) != len(plans) {
		t.Fatal("failure draw not deterministic")
	}
	for i := range plans {
		if *again[i] != (core.FailurePlan{Slot: plans[i].Slot, Iteration: plans[i].Iteration}) && false {
			t.Fatal("unreachable") // FailurePlan has an atomic; compare fields
		}
		if again[i].Slot != plans[i].Slot || again[i].Iteration != plans[i].Iteration {
			t.Fatal("failure draw not deterministic")
		}
	}
}

func TestAvailabilityStudy(t *testing.T) {
	opts := AvailabilityOptions{
		Ranks:        8,
		Iterations:   120,
		Interval:     10,
		BytesPerRank: 64 * MB,
		MTBF:         3.0, // very failure-dense to make the test meaningful
		Seed:         5,
	}
	pts := AvailabilityStudy([]core.Strategy{core.StrategyKRVeloC, core.StrategyFenixKRVeloC}, opts)
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	byStrat := map[core.Strategy]AvailabilityPoint{}
	for _, p := range pts {
		byStrat[p.Strategy] = p
		if !p.Completed {
			t.Fatalf("%v did not complete (%d failures)", p.Strategy, p.Failures)
		}
		if p.Failures < 2 {
			t.Fatalf("%v saw only %d failures; test not exercising multi-failure recovery", p.Strategy, p.Failures)
		}
		if p.Efficiency <= 0 || p.Efficiency > 1.0001 {
			t.Fatalf("%v efficiency %v out of range", p.Strategy, p.Efficiency)
		}
	}
	fenixEff := byStrat[core.StrategyFenixKRVeloC].Efficiency
	relaunchEff := byStrat[core.StrategyKRVeloC].Efficiency
	if !(fenixEff > relaunchEff) {
		t.Fatalf("Fenix efficiency %v not above relaunch %v under failure pressure", fenixEff, relaunchEff)
	}
}
