package harness

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/apps/minimd"
	"repro/internal/kr"
)

// Fig7Point is one bar of Figure 7: the relative memory footprint of the
// Checkpointed / Alias / Skipped view classes at one simulation size.
type Fig7Point struct {
	Size                                   int // simulated edge, unit cells
	Views, CheckpointedN, AliasN, SkippedN int
	CheckpointedPct, AliasPct, SkippedPct  float64
	Census                                 kr.Census
}

// Fig7ViewCensus reproduces Figure 7 over the given simulation sizes
// (default 100^3..400^3) for a 64-rank decomposition.
func Fig7ViewCensus(sizes []int) []Fig7Point {
	if len(sizes) == 0 {
		sizes = []int{100, 200, 300, 400}
	}
	var out []Fig7Point
	for _, size := range sizes {
		c := minimd.ViewCensus(size, 64)
		ck, al, sk := c.Counts()
		ckB, alB, skB := c.Bytes()
		total := float64(ckB + alB + skB)
		out = append(out, Fig7Point{
			Size:            size,
			Views:           c.TotalViews(),
			CheckpointedN:   ck,
			AliasN:          al,
			SkippedN:        sk,
			CheckpointedPct: 100 * float64(ckB) / total,
			AliasPct:        100 * float64(alB) / total,
			SkippedPct:      100 * float64(skB) / total,
			Census:          c,
		})
	}
	return out
}

// Complexity is the Section VI-E ease-of-use census, measured against this
// repository's own MiniMD port (the analogue of the paper's numbers: 61
// views, 148 MPI call sites in 15 of 20+ files, under 20 added lines).
type Complexity struct {
	Views, Checkpointed, Aliases, Skipped int

	// MPICallSites counts communicator method call sites in the MiniMD
	// application sources; MPIFiles counts the files containing them and
	// TotalFiles the package's file count. With Fenix, none of these
	// sites needs ULFM error handling.
	MPICallSites int
	MPIFiles     int
	TotalFiles   int

	// ResilienceLines counts the application lines that integrate the
	// resilience system (session checkpoint regions, alias declarations,
	// resume logic) — the code a developer actually adds.
	ResilienceLines int
}

// mpiMethods are the communicator operations counted as MPI call sites.
var mpiMethods = map[string]bool{
	"Send": true, "Recv": true, "Sendrecv": true,
	"SendSized": true, "SendrecvSized": true,
	"SendF64": true, "RecvF64": true, "SendrecvF64": true,
	"Isend": true, "IsendSized": true, "Irecv": true,
	"Wait": true, "WaitAll": true,
	"Barrier": true, "Bcast": true,
	"AllreduceF64": true, "AllreduceInt": true, "ReduceF64": true,
	"AllgatherB": true, "AllgatherF64": true, "GatherB": true, "ScatterB": true,
}

// resilienceCalls are the session methods whose call sites constitute the
// resilience integration.
var resilienceCalls = map[string]bool{
	"Checkpoint": true, "DeclareAliases": true, "ResumeIteration": true,
	"Check": true, "Census": true,
}

// minimdSourceDir locates this repository's MiniMD sources relative to
// this file.
func minimdSourceDir() (string, bool) {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		return "", false
	}
	dir := filepath.Join(filepath.Dir(self), "..", "apps", "minimd")
	return dir, true
}

// ComplexityReport computes the Section VI-E census. The view numbers come
// from the live Figure 7 census; the call-site numbers from parsing the
// MiniMD application sources.
func ComplexityReport() (Complexity, error) {
	c := minimd.ViewCensus(200, 64)
	ck, al, sk := c.Counts()
	out := Complexity{
		Views:        c.TotalViews(),
		Checkpointed: ck,
		Aliases:      al,
		Skipped:      sk,
	}

	dir, ok := minimdSourceDir()
	if !ok {
		return out, fmt.Errorf("harness: cannot locate minimd sources")
	}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, 0)
	if err != nil {
		return out, fmt.Errorf("harness: parsing minimd sources: %w", err)
	}
	resLines := map[int]bool{}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		files := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			files = append(files, name)
		}
		sort.Strings(files)
		for _, name := range files {
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
			out.TotalFiles++
			f := pkg.Files[name]
			sites := 0
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if mpiMethods[sel.Sel.Name] {
					sites++
				}
				if resilienceCalls[sel.Sel.Name] {
					resLines[fset.Position(call.Pos()).Line] = true
				}
				return true
			})
			if sites > 0 {
				out.MPIFiles++
				out.MPICallSites += sites
			}
		}
	}
	out.ResilienceLines = len(resLines)
	return out, nil
}
