package harness

import (
	"encoding/csv"
	"fmt"
	"io"

	"repro/internal/trace"
)

// WriteFig5CSV emits Figure 5 data as CSV for external plotting.
func WriteFig5CSV(w io.Writer, points []HeatdisPoint) error {
	cw := csv.NewWriter(w)
	header := []string{"data_mb", "nodes", "strategy", "wall_ok_s", "wall_fail_s", "failure_cost_s"}
	for _, c := range fig5Categories {
		header = append(header, "ok_"+csvName(c))
	}
	for _, c := range fig5Categories {
		header = append(header, "fail_"+csvName(c))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range points {
		row := []string{
			fmt.Sprint(p.BytesPerRank / MB),
			fmt.Sprint(p.Nodes),
			p.Strategy.String(),
			fmt.Sprintf("%.6f", p.OverheadWall),
			fmt.Sprintf("%.6f", p.FailureWall),
			fmt.Sprintf("%.6f", p.FailureCost()),
		}
		for _, c := range fig5Categories {
			row = append(row, fmt.Sprintf("%.6f", p.Overhead.Get(c)))
		}
		for _, c := range fig5Categories {
			row = append(row, fmt.Sprintf("%.6f", p.FailureTimes.Get(c)))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig6CSV emits Figure 6 data as CSV.
func WriteFig6CSV(w io.Writer, points []MiniMDPoint) error {
	cw := csv.NewWriter(w)
	header := []string{"ranks", "sim_size", "strategy", "wall_ok_s", "wall_fail_s", "failure_cost_s"}
	for _, c := range fig6Categories {
		header = append(header, "ok_"+csvName(c))
	}
	for _, c := range fig6Categories {
		header = append(header, "fail_"+csvName(c))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range points {
		row := []string{
			fmt.Sprint(p.Ranks),
			fmt.Sprint(p.SimSize),
			p.Strategy.String(),
			fmt.Sprintf("%.6f", p.OverheadWall),
			fmt.Sprintf("%.6f", p.FailureWall),
			fmt.Sprintf("%.6f", p.FailureCost()),
		}
		for _, c := range fig6Categories {
			row = append(row, fmt.Sprintf("%.6f", p.Overhead.Get(c)))
		}
		for _, c := range fig6Categories {
			row = append(row, fmt.Sprintf("%.6f", p.FailureTimes.Get(c)))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig7CSV emits Figure 7 data as CSV.
func WriteFig7CSV(w io.Writer, points []Fig7Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"sim_size", "views", "checkpointed_n", "alias_n", "skipped_n",
		"checkpointed_pct", "alias_pct", "skipped_pct"}); err != nil {
		return err
	}
	for _, p := range points {
		if err := cw.Write([]string{
			fmt.Sprint(p.Size), fmt.Sprint(p.Views),
			fmt.Sprint(p.CheckpointedN), fmt.Sprint(p.AliasN), fmt.Sprint(p.SkippedN),
			fmt.Sprintf("%.3f", p.CheckpointedPct),
			fmt.Sprintf("%.3f", p.AliasPct),
			fmt.Sprintf("%.3f", p.SkippedPct),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// csvName converts a category label to a CSV-friendly identifier.
func csvName(c trace.Category) string {
	out := make([]rune, 0, len(c.String()))
	for _, r := range c.String() {
		switch {
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		case r == ' ':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}
