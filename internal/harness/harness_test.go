package harness

import (
	"strings"
	"testing"

	"repro/internal/apps/heatdis"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

// fastOpts shrinks the sweeps for unit testing while keeping the paper's
// 6-checkpoint cadence.
func fastOpts() HeatdisOptions {
	return HeatdisOptions{
		Machine:    sim.DefaultMachine(),
		Iterations: 60,
		Interval:   10,
		Seed:       7,
		ActualRows: 8,
		ActualCols: 16,
	}
}

func TestFailIterationPlacement(t *testing.T) {
	// 60 iterations, interval 10: checkpoints at 9..59; failure 95% of
	// the way from 49 to 59.
	if got := failIteration(60, 10); got != 58 {
		t.Fatalf("failIteration = %d, want 58", got)
	}
	if got := failIteration(30, 10); got != 28 {
		t.Fatalf("failIteration = %d, want 28", got)
	}
}

func TestHeatdisCellProducesSaneTimes(t *testing.T) {
	pt := HeatdisCell(core.StrategyFenixKRVeloC, 8, 64*MB, fastOpts())
	if pt.OverheadWall <= 0 || pt.FailureWall <= 0 {
		t.Fatalf("walls %v/%v", pt.OverheadWall, pt.FailureWall)
	}
	if pt.FailureCost() <= 0 {
		t.Fatalf("failure cost %v not positive", pt.FailureCost())
	}
	if pt.Overhead.Get(trace.AppCompute) <= 0 {
		t.Fatal("no compute time")
	}
	if pt.Overhead.Get(trace.CheckpointFunc) <= 0 {
		t.Fatal("no checkpoint function time")
	}
	if pt.FailureTimes.Get(trace.Recompute) <= 0 {
		t.Fatal("no recompute in failure run")
	}
	if pt.FailureTimes.Get(trace.DataRecovery) <= 0 {
		t.Fatal("no data recovery in failure run")
	}
}

func TestReferenceHasNoResilienceCosts(t *testing.T) {
	pt := HeatdisCell(core.StrategyNone, 4, 64*MB, fastOpts())
	for _, c := range []trace.Category{trace.ResilienceInit, trace.CheckpointFunc, trace.DataRecovery, trace.Recompute} {
		if pt.Overhead.Get(c) != 0 {
			t.Fatalf("reference has %v time in %v", pt.Overhead.Get(c), c)
		}
	}
	if pt.FailureCost() != 0 {
		t.Fatal("reference failure cost should be zero (no failure injected)")
	}
}

// TestFig5HeadlineShapes verifies the qualitative results the paper reads
// off Figure 5.
func TestFig5HeadlineShapes(t *testing.T) {
	opts := fastOpts()
	const nodes = 16
	size := 256 * MB

	cells := map[core.Strategy]HeatdisPoint{}
	for _, s := range Fig5Strategies {
		cells[s] = HeatdisCell(s, nodes, size, opts)
	}

	ref := cells[core.StrategyNone]
	krv := cells[core.StrategyKRVeloC]
	vel := cells[core.StrategyVeloC]
	fkr := cells[core.StrategyFenixKRVeloC]
	imr := cells[core.StrategyFenixIMR]

	// (1) KR as a VeloC manager adds no or negligible overhead (< 5%).
	if krv.OverheadWall > vel.OverheadWall*1.05 {
		t.Errorf("KR overhead: kr-veloc %v vs veloc %v", krv.OverheadWall, vel.OverheadWall)
	}
	// (2) Adding Fenix adds no or negligible overhead over KR+VeloC.
	if fkr.OverheadWall > krv.OverheadWall*1.05 {
		t.Errorf("Fenix overhead: fenix-kr-veloc %v vs kr-veloc %v", fkr.OverheadWall, krv.OverheadWall)
	}
	// (3) All checkpointing overheads exceed the reference.
	if !(vel.OverheadWall > ref.OverheadWall) {
		t.Errorf("checkpointing should cost something: %v vs ref %v", vel.OverheadWall, ref.OverheadWall)
	}
	// (4) Fenix recovers failures cheaper than relaunch-based recovery.
	if !(fkr.FailureCost() < krv.FailureCost()) {
		t.Errorf("Fenix failure cost %v not below relaunch %v", fkr.FailureCost(), krv.FailureCost())
	}
	// (5) The Fenix savings are concentrated in Other (no job relaunch).
	if !(fkr.FailureTimes.Get(trace.Other) < krv.FailureTimes.Get(trace.Other)) {
		t.Errorf("Fenix Other %v not below relaunch Other %v",
			fkr.FailureTimes.Get(trace.Other), krv.FailureTimes.Get(trace.Other))
	}
	// (6) IMR at this small size beats VeloC's total overhead impact on
	// wall time or at least recovers cheaper than relaunch.
	if !(imr.FailureCost() < krv.FailureCost()) {
		t.Errorf("IMR failure cost %v not below relaunch %v", imr.FailureCost(), krv.FailureCost())
	}
}

func TestIMRCheckpointScalesWithData(t *testing.T) {
	opts := fastOpts()
	small := HeatdisCell(core.StrategyFenixIMR, 8, 64*MB, opts)
	big := HeatdisCell(core.StrategyFenixIMR, 8, 512*MB, opts)
	cs, cb := small.Overhead.Get(trace.CheckpointFunc), big.Overhead.Get(trace.CheckpointFunc)
	if !(cb > cs*4) {
		t.Fatalf("IMR checkpoint function should scale ~linearly with data: %v -> %v", cs, cb)
	}
	// VeloC's synchronous cost is only the scratch memcpy: it grows much
	// more slowly than IMR's network exchange.
	vs := HeatdisCell(core.StrategyFenixKRVeloC, 8, 64*MB, opts)
	vb := HeatdisCell(core.StrategyFenixKRVeloC, 8, 512*MB, opts)
	if !(big.Overhead.Get(trace.CheckpointFunc) > vb.Overhead.Get(trace.CheckpointFunc)) {
		t.Fatalf("IMR ckpt func (%v) should exceed VeloC's memcpy-only cost (%v) at large sizes",
			big.Overhead.Get(trace.CheckpointFunc), vb.Overhead.Get(trace.CheckpointFunc))
	}
	_ = vs
}

func TestPartialRollbackReducesRecompute(t *testing.T) {
	opts := fastOpts()
	full := HeatdisCell(core.StrategyFenixKRVeloC, 8, 64*MB, opts)
	part := HeatdisCell(core.StrategyPartialRollback, 8, 64*MB, opts)
	if !(part.FailureTimes.Get(trace.Recompute) < full.FailureTimes.Get(trace.Recompute)) {
		t.Fatalf("partial rollback recompute %v not below full %v",
			part.FailureTimes.Get(trace.Recompute), full.FailureTimes.Get(trace.Recompute))
	}
}

func TestMiniMDCell(t *testing.T) {
	opts := MiniMDOptions{Steps: 30, Interval: 10, AtomsPerRank: 100_000, Seed: 3}
	pt := MiniMDCell(core.StrategyFenixKRVeloC, 4, opts)
	if pt.Overhead.Get(trace.ForceCompute) <= 0 ||
		pt.Overhead.Get(trace.Neighboring) <= 0 ||
		pt.Overhead.Get(trace.Communicator) <= 0 {
		t.Fatalf("missing section times: %v", pt.Overhead)
	}
	if pt.FailureCost() <= 0 {
		t.Fatalf("failure cost %v", pt.FailureCost())
	}
	// Fenix keeps "Other" small vs the relaunch configuration.
	rl := MiniMDCell(core.StrategyKRVeloC, 4, opts)
	if !(pt.FailureTimes.Get(trace.Other) < rl.FailureTimes.Get(trace.Other)) {
		t.Fatalf("Fenix Other %v not below relaunch %v",
			pt.FailureTimes.Get(trace.Other), rl.FailureTimes.Get(trace.Other))
	}
}

func TestWeakScaleSize(t *testing.T) {
	s8 := weakScaleSize(8, 500_000)
	s64 := weakScaleSize(64, 500_000)
	if !(s64 > s8) {
		t.Fatalf("weak scaling sizes %d, %d", s8, s64)
	}
	// Doubling ranks 8x should double the edge (cube root).
	if s64 < s8*19/10 || s64 > s8*21/10 {
		t.Fatalf("64-rank edge %d not ~2x 8-rank edge %d", s64, s8)
	}
}

func TestFig7ViewCensus(t *testing.T) {
	pts := Fig7ViewCensus(nil)
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.Views != 61 || p.CheckpointedN != 39 || p.AliasN != 3 || p.SkippedN != 19 {
			t.Fatalf("size %d census %d/%d/%d/%d", p.Size, p.Views, p.CheckpointedN, p.AliasN, p.SkippedN)
		}
		total := p.CheckpointedPct + p.AliasPct + p.SkippedPct
		if total < 99.9 || total > 100.1 {
			t.Fatalf("percentages sum to %v", total)
		}
	}
}

func TestComplexityReport(t *testing.T) {
	c, err := ComplexityReport()
	if err != nil {
		t.Fatal(err)
	}
	if c.Views != 61 || c.Checkpointed != 39 || c.Aliases != 3 || c.Skipped != 19 {
		t.Fatalf("views %d/%d/%d/%d", c.Views, c.Checkpointed, c.Aliases, c.Skipped)
	}
	if c.MPICallSites < 5 {
		t.Fatalf("MPI call sites %d suspiciously low", c.MPICallSites)
	}
	if c.MPIFiles < 1 || c.TotalFiles < 4 {
		t.Fatalf("files %d/%d", c.MPIFiles, c.TotalFiles)
	}
	if c.ResilienceLines <= 0 || c.ResilienceLines > 25 {
		t.Fatalf("resilience integration lines %d, want small and positive", c.ResilienceLines)
	}
}

func TestRenderers(t *testing.T) {
	opts := fastOpts()
	pt := HeatdisCell(core.StrategyFenixKRVeloC, 4, 64*MB, opts)
	var b strings.Builder
	RenderFig5(&b, "Figure 5 test", []HeatdisPoint{pt})
	if !strings.Contains(b.String(), "fenix-kr-veloc") || !strings.Contains(b.String(), "Checkpoint Function") {
		t.Fatalf("fig5 render missing content:\n%s", b.String())
	}

	mopts := MiniMDOptions{Steps: 20, Interval: 10, AtomsPerRank: 50_000, Seed: 3}
	mpt := MiniMDCell(core.StrategyNone, 2, mopts)
	b.Reset()
	RenderFig6(&b, []MiniMDPoint{mpt})
	if !strings.Contains(b.String(), "Force Compute") {
		t.Fatal("fig6 render missing sections")
	}

	b.Reset()
	RenderFig7(&b, Fig7ViewCensus([]int{100}))
	if !strings.Contains(b.String(), "100^3") {
		t.Fatal("fig7 render missing size")
	}

	c, err := ComplexityReport()
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	RenderComplexity(&b, c)
	if !strings.Contains(b.String(), "view objects captured") {
		t.Fatal("complexity render missing content")
	}
}

func TestCSVWriters(t *testing.T) {
	opts := fastOpts()
	pt := HeatdisCell(core.StrategyFenixKRVeloC, 4, 64*MB, opts)
	var b strings.Builder
	if err := WriteFig5CSV(&b, []HeatdisPoint{pt}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "fenix-kr-veloc") || !strings.Contains(b.String(), "ok_checkpoint_function") {
		t.Fatalf("fig5 csv missing content:\n%s", b.String())
	}
	lines := strings.Count(b.String(), "\n")
	if lines != 2 {
		t.Fatalf("fig5 csv has %d lines, want 2", lines)
	}

	mopts := MiniMDOptions{Steps: 20, Interval: 10, AtomsPerRank: 50_000, Seed: 3}
	mpt := MiniMDCell(core.StrategyNone, 2, mopts)
	b.Reset()
	if err := WriteFig6CSV(&b, []MiniMDPoint{mpt}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "ok_force_compute") {
		t.Fatal("fig6 csv missing section column")
	}

	b.Reset()
	if err := WriteFig7CSV(&b, Fig7ViewCensus([]int{100})); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "100") {
		t.Fatal("fig7 csv missing data")
	}
}

func TestStorageFootprintByStrategy(t *testing.T) {
	// VeloC leaves persistent checkpoints in the PFS; IMR keeps them in
	// rank memory and writes nothing persistent — the memory-for-speed
	// trade the paper describes.
	opts := fastOpts()
	cfg := heatdisConfigForFootprint()
	velocRes := runForFootprint(t, core.StrategyFenixKRVeloC, cfg, opts)
	imrRes := runForFootprint(t, core.StrategyFenixIMR, cfg, opts)

	if velocRes.Cluster.PFS().SimBytes() <= 0 {
		t.Fatal("VeloC run left nothing in the PFS")
	}
	if imrRes.Cluster.PFS().SimBytes() != 0 {
		t.Fatalf("IMR run wrote %d bytes to the PFS", imrRes.Cluster.PFS().SimBytes())
	}
}

func heatdisConfigForFootprint() heatdis.Config {
	return heatdis.Config{BytesPerRank: 64 * MB, Iterations: 30, CheckpointInterval: 10, ActualRows: 8, ActualCols: 16}
}

func runForFootprint(t *testing.T, strat core.Strategy, cfg heatdis.Config, opts HeatdisOptions) *core.Result {
	t.Helper()
	sink := heatdis.NewSink()
	cc := core.Config{Strategy: strat, Spares: 2, CheckpointInterval: cfg.CheckpointInterval, CheckpointName: "fp"}
	res := core.Run(mpi.JobConfig{Ranks: 6, Machine: opts.Machine, Seed: 3}, cc, heatdis.App(cfg, sink))
	if res.Failed {
		t.Fatalf("%v run failed", strat)
	}
	return res
}
