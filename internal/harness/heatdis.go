// Package harness runs the paper's experiments: every figure of the
// evaluation section (Figures 5, 6, 7) plus the Section VI-E complexity
// census, each as a parameter sweep over the strategy configurations of
// internal/core, and renders the results as text tables.
//
// Per the paper's protocol (Section VI-C): each configuration is run with
// and without an injected failure; the failure kills one rank ~95% of the
// way between two checkpoints (so asynchronous flushes have completed);
// and wall time is measured around the whole job (`time mpirun`), with
// "Other" derived as wall time minus the in-application categories.
package harness

import (
	"sync"

	"repro/internal/apps/heatdis"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

// MB is 2^20 bytes.
const MB = 1 << 20

// GB is 2^30 bytes.
const GB = 1 << 30

// HeatdisPoint is one cell of Figure 5: a (strategy, node count, data
// size) configuration measured with and without a failure.
type HeatdisPoint struct {
	Strategy      core.Strategy
	Nodes         int
	BytesPerRank  int
	Overhead      trace.Times // mean per-rank categories, failure-free, Other derived
	OverheadWall  float64
	FailureTimes  trace.Times // mean per-rank categories with one failure
	FailureWall   float64
	Iterations    int
	FailIteration int
}

// FailureCost is the wall-time cost of the failure: the paper's top panel.
func (p HeatdisPoint) FailureCost() float64 { return p.FailureWall - p.OverheadWall }

// HeatdisOptions tunes the sweep.
type HeatdisOptions struct {
	// Machine overrides the cost model (default sim.DefaultMachine).
	Machine *sim.Machine
	// Iterations and Interval control checkpoint cadence (defaults: 60
	// iterations, interval 10 -> 6 checkpoints, as in the paper).
	Iterations int
	Interval   int
	// Spares for Fenix strategies (default 2, keeping the resilient
	// communicator even for IMR buddy pairing).
	Spares int
	// Seed for deterministic jitter.
	Seed uint64
	// ActualRows/ActualCols size the real per-rank grid.
	ActualRows, ActualCols int
	// ConvergenceEpsilon for the partial-rollback variant.
	ConvergenceEpsilon float64
}

func (o *HeatdisOptions) normalize() {
	if o.Machine == nil {
		o.Machine = sim.DefaultMachine()
	}
	if o.Iterations <= 0 {
		o.Iterations = 60
	}
	if o.Interval <= 0 {
		o.Interval = 10
	}
	if o.Spares <= 0 {
		o.Spares = 2
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.ActualRows <= 0 {
		o.ActualRows = 16
	}
	if o.ActualCols <= 0 {
		o.ActualCols = 32
	}
	if o.ConvergenceEpsilon <= 0 {
		o.ConvergenceEpsilon = 0.05
	}
}

// failIteration places the injected failure ~95% of the way between the
// second-to-last and last checkpoints: with interval k and n iterations,
// checkpoints land at k-1, 2k-1, ...; the failure hits after the
// penultimate checkpoint at 95% of the following interval.
func failIteration(iterations, interval int) int {
	lastCkpt := (iterations/interval)*interval - 1 // final checkpoint iter
	prev := lastCkpt - interval
	return prev + int(0.95*float64(interval))
}

// epsCache memoizes convergence-threshold calibrations, keyed by the
// parameters the residual trajectory actually depends on (the real grid
// and rank count, not the simulated data size).
var epsCache sync.Map // epsKey -> float64

type epsKey struct{ rows, cols, nodes, iters int }

// calibrateEpsilon runs the fixed-iteration reference once and returns a
// threshold slightly above its final residual, so the convergence variant
// terminates after approximately the same number of iterations.
func calibrateEpsilon(cfg heatdis.Config, nodes int, opts HeatdisOptions) float64 {
	key := epsKey{cfg.ActualRows, cfg.ActualCols, nodes, opts.Iterations}
	if v, ok := epsCache.Load(key); ok {
		return v.(float64)
	}
	probe := cfg
	probe.Convergence = false
	probe.Iterations = opts.Iterations
	sink := heatdis.NewSink()
	res := core.Run(mpi.JobConfig{Ranks: nodes, Machine: opts.Machine, Seed: opts.Seed},
		core.Config{Strategy: core.StrategyNone, CheckpointInterval: opts.Interval},
		heatdis.App(probe, sink))
	eps := opts.ConvergenceEpsilon
	if !res.Failed {
		if r, ok := sink.Get(0); ok && r.Delta > 0 {
			eps = r.Delta * 1.001
		}
	}
	epsCache.Store(key, eps)
	return eps
}

// HeatdisCell measures one Figure 5 cell.
func HeatdisCell(strategy core.Strategy, nodes, bytesPerRank int, opts HeatdisOptions) HeatdisPoint {
	opts.normalize()
	cfg := heatdis.Config{
		BytesPerRank:       bytesPerRank,
		Iterations:         opts.Iterations,
		CheckpointInterval: opts.Interval,
		ActualRows:         opts.ActualRows,
		ActualCols:         opts.ActualCols,
	}
	if strategy.PartialRollback() {
		// The partial-rollback demonstration uses the convergence variant.
		// Calibrate epsilon so the failure-free convergence run lasts about
		// as long as the fixed-iteration runs, keeping the Figure 5 bars
		// comparable across strategies.
		cfg.Convergence = true
		cfg.Epsilon = calibrateEpsilon(cfg, nodes, opts)
		cfg.MaxIterations = 20 * opts.Iterations
	}

	pt := HeatdisPoint{
		Strategy:      strategy,
		Nodes:         nodes,
		BytesPerRank:  bytesPerRank,
		Iterations:    opts.Iterations,
		FailIteration: failIteration(opts.Iterations, opts.Interval),
	}

	run := func(fail *core.FailurePlan, seed uint64) (*core.Result, trace.Times) {
		spares := 0
		if strategy.UsesFenix() {
			spares = opts.Spares
		}
		cc := core.Config{
			Strategy:           strategy,
			Spares:             spares,
			CheckpointInterval: opts.Interval,
			CheckpointName:     "heatdis",
		}
		if fail != nil {
			cc.Failures = []*core.FailurePlan{fail}
		}
		sink := heatdis.NewSink()
		res := core.Run(mpi.JobConfig{
			Ranks:   nodes + spares,
			Machine: opts.Machine,
			Seed:    seed,
		}, cc, heatdis.App(cfg, sink))
		return res, res.TimesWithOther()
	}

	res, times := run(nil, opts.Seed)
	pt.Overhead = times
	pt.OverheadWall = res.WallTime

	if strategy.Checkpoints() {
		fres, ftimes := run(&core.FailurePlan{Slot: 1, Iteration: pt.FailIteration}, opts.Seed)
		pt.FailureTimes = ftimes
		pt.FailureWall = fres.WallTime
	} else {
		pt.FailureTimes = times
		pt.FailureWall = res.WallTime
	}
	return pt
}

// Fig5Strategies is the strategy set plotted in Figure 5.
var Fig5Strategies = []core.Strategy{
	core.StrategyNone,
	core.StrategyVeloC,
	core.StrategyKRVeloC,
	core.StrategyFenixVeloC,
	core.StrategyFenixKRVeloC,
	core.StrategyFenixIMR,
	core.StrategyPartialRollback,
}

// Fig5DataScaling reproduces the left panel of Figure 5: 64 ranks (one
// per node), checkpointed data size swept over sizesMB megabytes per rank.
func Fig5DataScaling(sizesMB []int, opts HeatdisOptions) []HeatdisPoint {
	if len(sizesMB) == 0 {
		sizesMB = []int{64, 256, 1024, 4096}
	}
	var out []HeatdisPoint
	for _, mb := range sizesMB {
		for _, s := range Fig5Strategies {
			out = append(out, HeatdisCell(s, 64, mb*MB, opts))
		}
	}
	return out
}

// Fig5WeakScaling reproduces the right panel of Figure 5: 1 GB of data
// per rank, node count swept.
func Fig5WeakScaling(nodes []int, opts HeatdisOptions) []HeatdisPoint {
	if len(nodes) == 0 {
		nodes = []int{4, 8, 16, 32, 64}
	}
	var out []HeatdisPoint
	for _, n := range nodes {
		for _, s := range Fig5Strategies {
			out = append(out, HeatdisCell(s, n, 1*GB, opts))
		}
	}
	return out
}
