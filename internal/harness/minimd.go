package harness

import (
	"math"

	"repro/internal/apps/minimd"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

// MiniMDPoint is one cell of Figure 6: a (strategy, rank count)
// configuration of the weak-scaled MiniMD run, measured with and without a
// failure.
type MiniMDPoint struct {
	Strategy      core.Strategy
	Ranks         int
	SimSize       int // simulated problem edge in unit cells
	Overhead      trace.Times
	OverheadWall  float64
	FailureTimes  trace.Times
	FailureWall   float64
	FailIteration int
}

// FailureCost is the wall-time cost of the failure.
func (p MiniMDPoint) FailureCost() float64 { return p.FailureWall - p.OverheadWall }

// MiniMDOptions tunes the Figure 6 sweep.
type MiniMDOptions struct {
	Machine *sim.Machine
	// Steps and Interval control checkpoint cadence (defaults 60/10).
	Steps    int
	Interval int
	// AtomsPerRank is the weak-scaling constant: the simulated problem
	// edge for p ranks is chosen so each rank holds ~AtomsPerRank atoms.
	AtomsPerRank int
	Spares       int
	Seed         uint64
}

func (o *MiniMDOptions) normalize() {
	if o.Machine == nil {
		o.Machine = sim.DefaultMachine()
	}
	if o.Steps <= 0 {
		o.Steps = 60
	}
	if o.Interval <= 0 {
		o.Interval = 10
	}
	if o.AtomsPerRank <= 0 {
		o.AtomsPerRank = 500_000
	}
	if o.Spares <= 0 {
		o.Spares = 2
	}
	if o.Seed == 0 {
		o.Seed = 43
	}
}

// weakScaleSize returns the simulated edge (unit cells) so p ranks hold
// ~atomsPerRank each.
func weakScaleSize(p, atomsPerRank int) int {
	return int(math.Round(math.Cbrt(float64(p) * float64(atomsPerRank) / 4)))
}

// MiniMDCell measures one Figure 6 cell.
func MiniMDCell(strategy core.Strategy, ranks int, opts MiniMDOptions) MiniMDPoint {
	opts.normalize()
	cfg := minimd.Config{
		Size:               weakScaleSize(ranks, opts.AtomsPerRank),
		Steps:              opts.Steps,
		CheckpointInterval: opts.Interval,
		NeighborEvery:      10,
		ActualCells:        3,
	}
	pt := MiniMDPoint{
		Strategy:      strategy,
		Ranks:         ranks,
		SimSize:       cfg.Size,
		FailIteration: failIteration(opts.Steps, opts.Interval),
	}

	run := func(fail *core.FailurePlan, seed uint64) (*core.Result, trace.Times) {
		spares := 0
		if strategy.UsesFenix() {
			spares = opts.Spares
		}
		cc := core.Config{
			Strategy:           strategy,
			Spares:             spares,
			CheckpointInterval: opts.Interval,
			CheckpointName:     "minimd",
		}
		if fail != nil {
			cc.Failures = []*core.FailurePlan{fail}
		}
		sink := minimd.NewSink()
		res := core.Run(mpi.JobConfig{
			Ranks:   ranks + spares,
			Machine: opts.Machine,
			Seed:    seed,
		}, cc, minimd.App(cfg, sink))
		return res, res.TimesWithOther()
	}

	res, times := run(nil, opts.Seed)
	pt.Overhead = times
	pt.OverheadWall = res.WallTime
	if strategy.Checkpoints() {
		fres, ftimes := run(&core.FailurePlan{Slot: 1, Iteration: pt.FailIteration}, opts.Seed)
		pt.FailureTimes = ftimes
		pt.FailureWall = fres.WallTime
	} else {
		pt.FailureTimes = times
		pt.FailureWall = res.WallTime
	}
	return pt
}

// Fig6Strategies is the strategy set plotted in Figure 6: the reference
// (no resilience), the relaunch-based KR+VeloC stack, and the paper's
// integrated Fenix framework.
var Fig6Strategies = []core.Strategy{
	core.StrategyNone,
	core.StrategyKRVeloC,
	core.StrategyFenixKRVeloC,
}

// Fig6MiniMD reproduces Figure 6: MiniMD weak scaling over rank counts.
func Fig6MiniMD(ranks []int, opts MiniMDOptions) []MiniMDPoint {
	if len(ranks) == 0 {
		ranks = []int{8, 16, 32, 64}
	}
	var out []MiniMDPoint
	for _, p := range ranks {
		for _, s := range Fig6Strategies {
			out = append(out, MiniMDCell(s, p, opts))
		}
	}
	return out
}
