package harness

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/apps/heatdis"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/sim"
)

// This file adds the recovery-cost figure: for a single kill landing after
// a committed checkpoint, how much work does each recovery scheme redo?
// Global rollback (the paper's Fenix/KR/VeloC stack) restores every rank to
// the best common version and re-executes the lost iterations world-wide;
// localized recovery replays the sender-based message log, so only the
// replacement recomputes while survivors pause in place. The figure plots
// the recompute-iteration totals side by side per kill point.

// RecoveryCostPoint is one (kill iteration, strategy) cell.
type RecoveryCostPoint struct {
	KillIter       int
	Strategy       core.Strategy
	RecomputeIters float64 // recompute_iterations_total over the whole job
	ReplayedMsgs   float64 // mpi_msgs_replayed_total (0 under global rollback)
	WallTime       float64
	Completed      bool
}

// RecoveryCostOptions configures the study.
type RecoveryCostOptions struct {
	Machine *sim.Machine
	// Ranks is the application rank count (one spare is added on top).
	Ranks int
	// Iterations is the job length.
	Iterations int
	// Interval is the checkpoint cadence; checkpoints commit at iterations
	// Interval-1, 2*Interval-1, ...
	Interval int
	// BytesPerRank is the Heatdis data size.
	BytesPerRank int
	// KillIters are the iterations at which the single kill lands. Each must
	// fall after the first committed checkpoint so both schemes recover from
	// data rather than re-executing from scratch.
	KillIters []int
	// Seed drives machine jitter.
	Seed uint64
}

func (o *RecoveryCostOptions) normalize() {
	if o.Machine == nil {
		o.Machine = sim.DefaultMachine()
	}
	if o.Ranks <= 0 {
		o.Ranks = 16
	}
	if o.Iterations <= 0 {
		o.Iterations = 30
	}
	if o.Interval <= 0 {
		o.Interval = 10
	}
	if o.BytesPerRank <= 0 {
		o.BytesPerRank = 64 * MB
	}
	if len(o.KillIters) == 0 {
		// Kill-after-checkpoint cells: just past the iteration-9 commit,
		// mid-epoch, and just before the iteration-19 commit.
		o.KillIters = []int{11, 15, 18}
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
}

// RecoveryCostStudy runs each kill point under global rollback
// (StrategyFenixKRVeloC) and localized recovery (StrategyLocalized) on the
// same Heatdis job and collects the recompute accounting from the obs
// registry.
func RecoveryCostStudy(opts RecoveryCostOptions) []RecoveryCostPoint {
	opts.normalize()
	cfg := heatdis.Config{
		BytesPerRank:       opts.BytesPerRank,
		Iterations:         opts.Iterations,
		CheckpointInterval: opts.Interval,
		ActualRows:         8,
		ActualCols:         16,
	}
	var out []RecoveryCostPoint
	for _, kill := range opts.KillIters {
		for _, strat := range []core.Strategy{core.StrategyFenixKRVeloC, core.StrategyLocalized} {
			rec := obs.New()
			cc := core.Config{
				Strategy:           strat,
				Spares:             1,
				CheckpointInterval: opts.Interval,
				CheckpointName:     "cost",
				Failures:           []*core.FailurePlan{{Slot: 1, Iteration: kill}},
			}
			sink := heatdis.NewSink()
			res := core.Run(
				mpi.JobConfig{Ranks: opts.Ranks + 1, Machine: opts.Machine, Seed: opts.Seed, Obs: rec},
				cc, heatdis.App(cfg, sink))
			reg := rec.Registry()
			out = append(out, RecoveryCostPoint{
				KillIter:       kill,
				Strategy:       strat,
				RecomputeIters: reg.CounterValue(obs.MRecomputeIters),
				ReplayedMsgs:   reg.CounterValue(obs.MMsgReplayed),
				WallTime:       res.WallTime,
				Completed:      !res.Failed,
			})
		}
	}
	return out
}

// RenderRecoveryCost writes the recovery-cost table.
func RenderRecoveryCost(w io.Writer, pts []RecoveryCostPoint) {
	fmt.Fprintln(w, "Recovery cost: recompute iterations after one kill (localized vs global rollback)")
	fmt.Fprintln(w, "kill_iter\tstrategy\trecompute_iters\treplayed_msgs\twall_s\tcompleted")
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%s\t%.0f\t%.0f\t%.3f\t%v\n",
			p.KillIter, p.Strategy, p.RecomputeIters, p.ReplayedMsgs, p.WallTime, p.Completed)
	}
}

// CheckRecoveryCost verifies the figure's acceptance property: on every
// kill-after-checkpoint cell the localized scheme recomputes strictly less
// than global rollback (it pays one rank's rollback instead of the
// world's), both runs complete, and localized recovery actually replayed
// the log rather than silently degrading to a global restore.
func CheckRecoveryCost(pts []RecoveryCostPoint) []error {
	global := map[int]RecoveryCostPoint{}
	localized := map[int]RecoveryCostPoint{}
	var errs []error
	for _, p := range pts {
		if !p.Completed {
			errs = append(errs, fmt.Errorf("kill %d: %s run did not complete", p.KillIter, p.Strategy))
		}
		switch p.Strategy {
		case core.StrategyLocalized:
			localized[p.KillIter] = p
		case core.StrategyFenixKRVeloC:
			global[p.KillIter] = p
		}
	}
	kills := make([]int, 0, len(localized))
	for kill := range localized {
		kills = append(kills, kill)
	}
	sort.Ints(kills)
	for _, kill := range kills {
		loc := localized[kill]
		glob, ok := global[kill]
		if !ok {
			continue
		}
		if loc.RecomputeIters >= glob.RecomputeIters {
			errs = append(errs, fmt.Errorf("kill %d: localized recompute %.0f >= global %.0f",
				kill, loc.RecomputeIters, glob.RecomputeIters))
		}
		if loc.ReplayedMsgs == 0 {
			errs = append(errs, fmt.Errorf("kill %d: localized run replayed no logged messages", kill))
		}
	}
	return errs
}
