package harness

import (
	"strings"
	"testing"
)

// TestRecoveryCostLocalizedBelowGlobal pins the figure's acceptance
// property on one kill-after-checkpoint cell: localized recovery recomputes
// strictly fewer iterations than global rollback, because only the
// replacement rolls back while survivors pause on the message log.
func TestRecoveryCostLocalizedBelowGlobal(t *testing.T) {
	pts := RecoveryCostStudy(RecoveryCostOptions{
		Ranks: 8, Iterations: 20, Interval: 6, KillIters: []int{9},
	})
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, err := range CheckRecoveryCost(pts) {
		t.Error(err)
	}
	var b strings.Builder
	RenderRecoveryCost(&b, pts)
	for _, want := range []string{"kill_iter", "localized", "fenix-kr-veloc"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("rendered table missing %q:\n%s", want, b.String())
		}
	}
}
