package harness

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/trace"
)

// fig5Categories are the stacked categories of Figure 5, in legend order.
var fig5Categories = []trace.Category{
	trace.AppCompute, trace.AppMPI, trace.ResilienceInit,
	trace.CheckpointFunc, trace.DataRecovery, trace.Recompute, trace.Other,
}

// fig6Categories are the stacked categories of Figure 6.
var fig6Categories = []trace.Category{
	trace.ForceCompute, trace.Neighboring, trace.Communicator,
	trace.CheckpointFunc, trace.DataRecovery, trace.Recompute, trace.Other,
}

func writeHeader(w io.Writer, title string, cols []string) {
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, strings.Repeat("=", len(title)))
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
}

// RenderFig5 writes Figure 5's data as a tab-separated table: one row per
// (size-or-nodes, strategy) with the stacked category times for the
// failure-free run and the failure run, plus the failure cost.
func RenderFig5(w io.Writer, title string, points []HeatdisPoint) {
	cols := []string{"data_MB", "nodes", "strategy"}
	for _, c := range fig5Categories {
		cols = append(cols, "ok:"+c.String())
	}
	for _, c := range fig5Categories {
		cols = append(cols, "fail:"+c.String())
	}
	cols = append(cols, "wall_ok_s", "wall_fail_s", "failure_cost_s")
	writeHeader(w, title, cols)
	for _, p := range points {
		fmt.Fprintf(w, "%d\t%d\t%s", p.BytesPerRank/MB, p.Nodes, p.Strategy)
		for _, c := range fig5Categories {
			fmt.Fprintf(w, "\t%.3f", p.Overhead.Get(c))
		}
		for _, c := range fig5Categories {
			fmt.Fprintf(w, "\t%.3f", p.FailureTimes.Get(c))
		}
		fmt.Fprintf(w, "\t%.3f\t%.3f\t%.3f\n", p.OverheadWall, p.FailureWall, p.FailureCost())
	}
}

// RenderFig6 writes Figure 6's data as a tab-separated table.
func RenderFig6(w io.Writer, points []MiniMDPoint) {
	cols := []string{"ranks", "sim_size", "strategy"}
	for _, c := range fig6Categories {
		cols = append(cols, "ok:"+c.String())
	}
	for _, c := range fig6Categories {
		cols = append(cols, "fail:"+c.String())
	}
	cols = append(cols, "wall_ok_s", "wall_fail_s", "failure_cost_s")
	writeHeader(w, "Figure 6: MiniMD resilience weak scaling", cols)
	for _, p := range points {
		fmt.Fprintf(w, "%d\t%d^3\t%s", p.Ranks, p.SimSize, p.Strategy)
		for _, c := range fig6Categories {
			fmt.Fprintf(w, "\t%.3f", p.Overhead.Get(c))
		}
		for _, c := range fig6Categories {
			fmt.Fprintf(w, "\t%.3f", p.FailureTimes.Get(c))
		}
		fmt.Fprintf(w, "\t%.3f\t%.3f\t%.3f\n", p.OverheadWall, p.FailureWall, p.FailureCost())
	}
}

// RenderFig7 writes Figure 7's data: memory share per view class at each
// simulation size.
func RenderFig7(w io.Writer, points []Fig7Point) {
	writeHeader(w, "Figure 7: MiniMD view census (memory share by class)",
		[]string{"sim_size", "views", "checkpointed_n", "alias_n", "skipped_n",
			"checkpointed_pct", "alias_pct", "skipped_pct"})
	for _, p := range points {
		fmt.Fprintf(w, "%d^3\t%d\t%d\t%d\t%d\t%.1f%%\t%.1f%%\t%.1f%%\n",
			p.Size, p.Views, p.CheckpointedN, p.AliasN, p.SkippedN,
			p.CheckpointedPct, p.AliasPct, p.SkippedPct)
	}
}

// RenderComplexity writes the Section VI-E complexity census.
func RenderComplexity(w io.Writer, c Complexity) {
	fmt.Fprintln(w, "Section VI-E: complexity of use (this repository's MiniMD port)")
	fmt.Fprintln(w, "===============================================================")
	fmt.Fprintf(w, "view objects captured:\t%d (paper: 61)\n", c.Views)
	fmt.Fprintf(w, "  checkpointed:\t%d (paper: 39)\n", c.Checkpointed)
	fmt.Fprintf(w, "  aliases:\t%d (paper: 3)\n", c.Aliases)
	fmt.Fprintf(w, "  skipped duplicates:\t%d (paper: 19)\n", c.Skipped)
	fmt.Fprintf(w, "MPI call sites:\t%d in %d of %d files (paper: 148 in 15 of 20+)\n",
		c.MPICallSites, c.MPIFiles, c.TotalFiles)
	fmt.Fprintf(w, "resilience-integration lines:\t%d (paper: <20 lines in one file)\n", c.ResilienceLines)
	fmt.Fprintln(w, "With Fenix, none of the MPI call sites needs ULFM error handling:")
	fmt.Fprintln(w, "the resilient communicator plus the single recovery exit point")
	fmt.Fprintln(w, "replace per-call error paths.")
}
