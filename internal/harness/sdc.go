// SDC detection-coverage × overhead matrix: the deliverable of the
// silent-data-corruption layer. Each cell runs one application under one
// detection policy with a fixed flip budget per run (one region flip, one
// checkpoint-blob flip) over several seeds, and reports what fraction of
// the injected flips the policy caught and what the policy cost in wall
// time relative to an unprotected, flip-free baseline of the same cell.
package harness

import (
	"fmt"
	"io"

	"repro/internal/chaos"
	"repro/internal/sim"
)

// SDCPolicies is the escalation ladder in coverage order (see DESIGN.md
// §11): each policy's coverage must dominate the previous one's.
var SDCPolicies = []string{"none", "checksum", "replay", "vote"}

// SDCPoint is one (app × policy) cell of the matrix.
type SDCPoint struct {
	App    string
	Policy string
	Runs   int

	// Flip accounting summed over the cell's runs.
	Injected  int
	Detected  int
	Corrected int
	Escaped   int
	Replays   int
	Votes     int

	// Coverage is Detected/Injected; Overhead is MeanWall/BaselineWall - 1,
	// against the flip-free policy-none baseline of the same app.
	Coverage     float64
	Overhead     float64
	MeanWall     float64
	BaselineWall float64

	// Violations aggregates campaign-invariant violations across the
	// cell's runs (empty on a healthy matrix).
	Violations []string
}

// SDCOptions configures the matrix sweep.
type SDCOptions struct {
	// SeedsPerCell is the number of runs per (app × policy) cell
	// (default 3).
	SeedsPerCell int
	// BaseSeed offsets the per-run seeds, for alternate draws.
	BaseSeed uint64
}

// sdcRunConfig builds one flip-only chaos run: the campaign's standard
// small cell (4 ranks, 24 iterations, checkpoint interval 6) with no
// kills, one bit flip in a resilient region mid-run, and one bit flip in
// a checkpoint blob in scratch.
func sdcRunConfig(app, policy string, seed uint64) chaos.RunConfig {
	cfg := chaos.BaseRunConfig(seed, app)
	cfg.Mode = "sdc-matrix"
	cfg.SDC = policy
	rng := sim.NewRNG(seed).Split(0x5dc)
	// Region flips draw from the sign/exponent bits (52-63), the strike
	// class a physical-bounds validator is built to catch; blob flips can
	// hit any bit — the CRC is position-blind.
	cfg.Schedule.Flips = []chaos.Flip{
		{Rank: rng.Intn(cfg.Ranks), Point: chaos.PointKokkosRegion,
			Hit: 2 + rng.Intn(18), Frac: rng.Float64(), Bit: 52 + rng.Intn(12)},
		{Rank: rng.Intn(cfg.Ranks), Point: chaos.PointScratchBlob,
			Hit: rng.Intn(3), Frac: rng.Float64(), Bit: rng.Intn(8)},
	}
	return cfg
}

// SDCMatrix sweeps the (app × policy) matrix and returns one point per
// cell, apps outermost, policies in SDCPolicies (escalation-ladder) order.
func SDCMatrix(opts SDCOptions) []SDCPoint {
	seeds := opts.SeedsPerCell
	if seeds <= 0 {
		seeds = 3
	}
	refs := chaos.NewRefCache()
	var out []SDCPoint
	for _, app := range []string{chaos.AppHeatdis, chaos.AppMiniMD} {
		// Flip-free, unprotected baseline: the denominator for overhead.
		base := chaos.BaseRunConfig(opts.BaseSeed, app)
		base.Mode = "sdc-baseline"
		baseRep := chaos.RunOne(base, refs, 0)
		baseline := baseRep.WallSeconds

		for _, policy := range SDCPolicies {
			pt := SDCPoint{App: app, Policy: policy, Runs: seeds, BaselineWall: baseline}
			pt.Violations = append(pt.Violations, baseRep.Violations...)
			wall := 0.0
			for i := 0; i < seeds; i++ {
				cfg := sdcRunConfig(app, policy, opts.BaseSeed+uint64(i))
				rep := chaos.RunOne(cfg, refs, 0)
				pt.Injected += rep.SDCInjected
				pt.Detected += rep.SDCDetected
				pt.Corrected += rep.SDCCorrected
				pt.Escaped += rep.SDCEscaped
				pt.Replays += rep.SDCReplays
				pt.Votes += rep.SDCVotes
				pt.Violations = append(pt.Violations, rep.Violations...)
				wall += rep.WallSeconds
			}
			pt.MeanWall = wall / float64(seeds)
			if pt.Injected > 0 {
				pt.Coverage = float64(pt.Detected) / float64(pt.Injected)
			}
			if baseline > 0 {
				pt.Overhead = pt.MeanWall/baseline - 1
			}
			out = append(out, pt)
		}
	}
	return out
}

// RenderSDC writes the matrix as a tab-separated table, one row per
// (app × policy) cell.
func RenderSDC(w io.Writer, points []SDCPoint) {
	writeHeader(w, "SDC detection coverage × overhead (per policy, vs flip-free unprotected baseline)",
		[]string{"app", "policy", "runs", "injected", "detected", "corrected", "escaped",
			"replays", "votes", "coverage", "wall_s", "baseline_s", "overhead"})
	for _, p := range points {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.3f\t%.3f\t%.3f\t%+.4f\n",
			p.App, p.Policy, p.Runs, p.Injected, p.Detected, p.Corrected, p.Escaped,
			p.Replays, p.Votes, p.Coverage, p.MeanWall, p.BaselineWall, p.Overhead)
	}
}

// CheckSDCLadder verifies the escalation-ladder ordering on a rendered
// matrix: within each app, coverage must be monotonically non-decreasing
// along SDCPolicies, with vote achieving full coverage. It returns the
// violations found (nil on a healthy matrix) so both the figure command
// and the tests can assert it.
func CheckSDCLadder(points []SDCPoint) []string {
	var errs []string
	byApp := map[string][]SDCPoint{}
	for _, p := range points {
		byApp[p.App] = append(byApp[p.App], p)
		if len(p.Violations) > 0 {
			errs = append(errs, fmt.Sprintf("%s/%s: %d invariant violations (first: %s)",
				p.App, p.Policy, len(p.Violations), p.Violations[0]))
		}
	}
	for app, pts := range byApp {
		for i := 1; i < len(pts); i++ {
			if pts[i].Coverage < pts[i-1].Coverage {
				errs = append(errs, fmt.Sprintf("%s: %s coverage %.3f < %s coverage %.3f",
					app, pts[i].Policy, pts[i].Coverage, pts[i-1].Policy, pts[i-1].Coverage))
			}
		}
		last := pts[len(pts)-1]
		if last.Policy == "vote" && last.Escaped != 0 {
			errs = append(errs, fmt.Sprintf("%s: vote let %d flips escape", app, last.Escaped))
		}
	}
	return errs
}
