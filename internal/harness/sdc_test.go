package harness

import "testing"

// TestSDCMatrixLadder pins the figure's acceptance property: along the
// escalation ladder coverage is monotone (vote >= replay >= checksum >=
// none), the unprotected cell catches nothing, vote catches everything,
// and no run violates a campaign invariant.
func TestSDCMatrixLadder(t *testing.T) {
	pts := SDCMatrix(SDCOptions{SeedsPerCell: 1})
	if len(pts) != 8 {
		t.Fatalf("matrix has %d cells, want 8 (2 apps x 4 policies)", len(pts))
	}
	for _, e := range CheckSDCLadder(pts) {
		t.Error(e)
	}
	for _, p := range pts {
		if p.Injected == 0 {
			t.Errorf("%s/%s: no flips injected", p.App, p.Policy)
		}
		switch p.Policy {
		case "none":
			if p.Detected != 0 || p.Escaped != p.Injected {
				t.Errorf("%s/none detected %d escaped %d of %d, want 0 detected",
					p.App, p.Detected, p.Escaped, p.Injected)
			}
			if p.Overhead > 0.01 {
				t.Errorf("%s/none overhead %.4f, want ~0", p.App, p.Overhead)
			}
		case "vote":
			if p.Detected != p.Injected || p.Corrected != p.Injected {
				t.Errorf("%s/vote detected %d corrected %d of %d, want all",
					p.App, p.Detected, p.Corrected, p.Injected)
			}
			if p.Overhead <= 0 {
				t.Errorf("%s/vote overhead %.4f, want > 0 (duplicate execution)", p.App, p.Overhead)
			}
		}
	}
}
