package kokkos

import (
	"fmt"
	"math"
)

// Clone returns a deep copy of the view with its own allocation identity:
// the copy never aliases the original (SameAllocation is false even for
// clones of Ref'd headers). Dry views clone as dry metadata.
func (v *F64View) Clone() *F64View {
	cp := &F64View{viewHeader: viewHeader{
		label: v.label, shape: append([]int(nil), v.shape...),
		dry: v.dry, id: &allocation{}, simBytes: v.simBytes,
	}}
	if !v.dry {
		cp.data = append([]float64(nil), v.data...)
	}
	return cp
}

// Equal reports whether o has the same shape and bitwise-identical
// contents. Comparison is by Float64bits, so NaN payloads and signed
// zeros are distinguished — a single flipped mantissa bit is never
// "equal enough". Dry views are equal iff both are dry with equal shape.
func (v *F64View) Equal(o *F64View) bool {
	if !shapeEqual(v.shape, o.shape) || v.dry != o.dry {
		return false
	}
	for i := range v.data {
		if math.Float64bits(v.data[i]) != math.Float64bits(o.data[i]) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy with its own allocation identity.
func (v *I32View) Clone() *I32View {
	cp := &I32View{viewHeader: viewHeader{
		label: v.label, shape: append([]int(nil), v.shape...),
		dry: v.dry, id: &allocation{}, simBytes: v.simBytes,
	}}
	if !v.dry {
		cp.data = append([]int32(nil), v.data...)
	}
	return cp
}

// Equal reports whether o has the same shape and identical contents.
func (v *I32View) Equal(o *I32View) bool {
	if !shapeEqual(v.shape, o.shape) || v.dry != o.dry {
		return false
	}
	for i := range v.data {
		if v.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

func shapeEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CloneView deep-copies a view through the kind-erased interface.
func CloneView(v View) View {
	switch t := v.(type) {
	case *F64View:
		return t.Clone()
	case *I32View:
		return t.Clone()
	default:
		panic(fmt.Sprintf("kokkos: cannot clone view kind %T", v))
	}
}

// CopyInto overwrites dst's contents from src. The views must be the same
// kind and length; labels and allocation identity are untouched.
func CopyInto(dst, src View) {
	switch d := dst.(type) {
	case *F64View:
		DeepCopyF64(d, src.(*F64View))
	case *I32View:
		DeepCopyI32(d, src.(*I32View))
	default:
		panic(fmt.Sprintf("kokkos: cannot copy view kind %T", dst))
	}
}

// ViewsEqual reports whether a and b are the same kind with the same shape
// and bitwise-identical contents.
func ViewsEqual(a, b View) bool {
	switch av := a.(type) {
	case *F64View:
		bv, ok := b.(*F64View)
		return ok && av.Equal(bv)
	case *I32View:
		bv, ok := b.(*I32View)
		return ok && av.Equal(bv)
	default:
		return false
	}
}
