package kokkos_test

import (
	"fmt"

	"repro/internal/kokkos"
)

// Views are labeled, shaped arrays; Ref creates a second header over the
// same allocation, which is how Kokkos Resilience detects duplicate
// captures.
func Example() {
	x := kokkos.NewF64("positions", 4, 3)
	x.Set2(2, 1, 7.5)

	captured := x.Ref("positions@force") // shares storage
	fmt.Println(captured.At2(2, 1))
	fmt.Println(kokkos.SameAllocation(x, captured))

	other := kokkos.NewF64("velocities", 4, 3)
	fmt.Println(kokkos.SameAllocation(x, other))
	// Output:
	// 7.5
	// true
	// false
}

// ParallelReduce is deterministic: partials combine in chunk order.
func ExampleExecSpace_ParallelReduce() {
	e := kokkos.NewExecSpace(4)
	sum := e.ParallelReduce(1000, func(i int) float64 { return float64(i) })
	fmt.Println(sum)
	// Output:
	// 499500
}

// Serialization round-trips view contents exactly.
func ExampleF64View_Serialize() {
	v := kokkos.NewF64("state", 3)
	v.Set(0, 1.5)
	v.Set(2, -2.25)

	w := kokkos.NewF64("state", 3)
	if err := w.Deserialize(v.Serialize()); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(w.At(0), w.At(1), w.At(2))
	// Output:
	// 1.5 0 -2.25
}
