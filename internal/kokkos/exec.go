package kokkos

import (
	"runtime"
	"sync"
)

// ExecSpace is a host execution space dispatching parallel patterns over a
// fixed worker count. Results are deterministic: ranges are partitioned into
// contiguous chunks and reduction partials are combined in chunk order
// regardless of completion order.
type ExecSpace struct {
	workers int
}

// DefaultExec is the process-wide execution space sized to the host CPU.
var DefaultExec = NewExecSpace(0)

// NewExecSpace creates an execution space with the given concurrency;
// workers <= 0 selects runtime.NumCPU().
func NewExecSpace(workers int) *ExecSpace {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &ExecSpace{workers: workers}
}

// Workers returns the space's concurrency.
func (e *ExecSpace) Workers() int { return e.workers }

// chunks partitions [0,n) into at most e.workers contiguous ranges.
func (e *ExecSpace) chunks(n int) [][2]int {
	if n <= 0 {
		return nil
	}
	w := e.workers
	if w > n {
		w = n
	}
	out := make([][2]int, 0, w)
	base, rem := n/w, n%w
	start := 0
	for i := 0; i < w; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, [2]int{start, start + size})
		start += size
	}
	return out
}

// ParallelFor applies f to every i in [0,n). f must only write state owned
// by index i (the usual Kokkos requirement).
func (e *ExecSpace) ParallelFor(n int, f func(i int)) {
	cs := e.chunks(n)
	if len(cs) <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	for _, c := range cs {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(i)
			}
		}(c[0], c[1])
	}
	wg.Wait()
}

// ParallelReduce sums f(i) over [0,n) deterministically: per-chunk partials
// are accumulated in index order within each chunk and combined in chunk
// order, so the result is bitwise reproducible for a given worker count.
func (e *ExecSpace) ParallelReduce(n int, f func(i int) float64) float64 {
	cs := e.chunks(n)
	if len(cs) == 0 {
		return 0
	}
	if len(cs) == 1 {
		var acc float64
		for i := 0; i < n; i++ {
			acc += f(i)
		}
		return acc
	}
	partials := make([]float64, len(cs))
	var wg sync.WaitGroup
	for ci, c := range cs {
		wg.Add(1)
		go func(ci, lo, hi int) {
			defer wg.Done()
			var acc float64
			for i := lo; i < hi; i++ {
				acc += f(i)
			}
			partials[ci] = acc
		}(ci, c[0], c[1])
	}
	wg.Wait()
	var acc float64
	for _, p := range partials {
		acc += p
	}
	return acc
}

// ParallelReduceMax returns the maximum of f(i) over [0,n), or 0 for an
// empty range.
func (e *ExecSpace) ParallelReduceMax(n int, f func(i int) float64) float64 {
	cs := e.chunks(n)
	if len(cs) == 0 {
		return 0
	}
	partials := make([]float64, len(cs))
	var wg sync.WaitGroup
	for ci, c := range cs {
		wg.Add(1)
		go func(ci, lo, hi int) {
			defer wg.Done()
			acc := f(lo)
			for i := lo + 1; i < hi; i++ {
				if v := f(i); v > acc {
					acc = v
				}
			}
			partials[ci] = acc
		}(ci, c[0], c[1])
	}
	wg.Wait()
	acc := partials[0]
	for _, p := range partials[1:] {
		if p > acc {
			acc = p
		}
	}
	return acc
}
