package kokkos

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestF64ViewBasics(t *testing.T) {
	v := NewF64("temps", 3, 4)
	if v.Label() != "temps" {
		t.Fatalf("label %q", v.Label())
	}
	if v.Len() != 12 || v.SizeBytes() != 96 || v.ElemSize() != 8 {
		t.Fatalf("len=%d bytes=%d", v.Len(), v.SizeBytes())
	}
	if !reflect.DeepEqual(v.Shape(), []int{3, 4}) {
		t.Fatalf("shape %v", v.Shape())
	}
	v.Set2(1, 2, 7.5)
	if v.At2(1, 2) != 7.5 || v.At(1*4+2) != 7.5 {
		t.Fatal("2-D indexing broken")
	}
	v.Set(0, -1)
	if v.Data()[0] != -1 {
		t.Fatal("Set/Data disagree")
	}
}

func TestI32ViewBasics(t *testing.T) {
	v := NewI32("neigh", 5)
	if v.ElemSize() != 4 || v.SizeBytes() != 20 {
		t.Fatalf("bytes=%d", v.SizeBytes())
	}
	v.Set(3, -9)
	if v.At(3) != -9 {
		t.Fatal("Set/At disagree")
	}
}

func TestShapeIsCopied(t *testing.T) {
	v := NewF64("x", 2, 2)
	s := v.Shape()
	s[0] = 99
	if v.Shape()[0] != 2 {
		t.Fatal("Shape() aliases internal slice")
	}
}

func TestNegativeDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative dim did not panic")
		}
	}()
	NewF64("bad", -1)
}

func TestRefSharesAllocation(t *testing.T) {
	v := NewF64("x", 4)
	r := v.Ref("x_captured")
	if !SameAllocation(v, r) {
		t.Fatal("Ref does not share allocation")
	}
	if r.Label() != "x_captured" {
		t.Fatal("Ref label not applied")
	}
	v.Set(2, 5)
	if r.At(2) != 5 {
		t.Fatal("Ref does not share storage")
	}
	other := NewF64("y", 4)
	if SameAllocation(v, other) {
		t.Fatal("distinct views report same allocation")
	}
}

func TestI32RefSharesAllocation(t *testing.T) {
	v := NewI32("n", 4)
	r := v.Ref("n2")
	if !SameAllocation(v, r) {
		t.Fatal("I32 Ref does not share allocation")
	}
}

func TestF64SerializeRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		v := NewF64("rt", len(vals))
		copy(v.Data(), vals)
		w := NewF64("rt2", len(vals))
		if err := w.Deserialize(v.Serialize()); err != nil {
			return false
		}
		for i := range vals {
			if math.Float64bits(w.At(i)) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestI32SerializeRoundTrip(t *testing.T) {
	f := func(vals []int32) bool {
		v := NewI32("rt", len(vals))
		copy(v.Data(), vals)
		w := NewI32("rt2", len(vals))
		if err := w.Deserialize(v.Serialize()); err != nil {
			return false
		}
		return reflect.DeepEqual(v.Data(), w.Data())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeserializeLengthMismatch(t *testing.T) {
	v := NewF64("x", 2)
	if err := v.Deserialize(make([]byte, 8)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	w := NewI32("y", 2)
	if err := w.Deserialize(make([]byte, 4)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestDryViews(t *testing.T) {
	v := NewF64Dry("huge", 400, 400, 400)
	if !v.Dry() {
		t.Fatal("not dry")
	}
	if v.SizeBytes() != 8*400*400*400 {
		t.Fatalf("dry size = %d", v.SizeBytes())
	}
	i := NewI32Dry("hugei", 1000)
	if i.SizeBytes() != 4000 {
		t.Fatalf("dry i32 size = %d", i.SizeBytes())
	}
	for _, fn := range []func(){
		func() { v.Data() },
		func() { v.Serialize() },
		func() { _ = v.Deserialize(nil) },
		func() { i.Data() },
		func() { i.Serialize() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("dry view data access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestDeepCopyF64(t *testing.T) {
	a := NewF64("a", 3)
	b := NewF64("b", 3)
	a.Set(1, 42)
	DeepCopyF64(b, a)
	if b.At(1) != 42 {
		t.Fatal("deep copy missed data")
	}
	if SameAllocation(a, b) {
		t.Fatal("deep copy aliased storage")
	}
}

func TestDeepCopyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched deep copy did not panic")
		}
	}()
	DeepCopyF64(NewF64("a", 2), NewF64("b", 3))
}

func TestParallelForCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		e := NewExecSpace(workers)
		n := 1000
		hit := make([]int32, n)
		e.ParallelFor(n, func(i int) { hit[i]++ })
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestParallelForEmptyAndTiny(t *testing.T) {
	e := NewExecSpace(4)
	e.ParallelFor(0, func(i int) { t.Fatal("called on empty range") })
	count := 0
	NewExecSpace(1).ParallelFor(3, func(i int) { count++ })
	if count != 3 {
		t.Fatalf("count=%d", count)
	}
}

func TestParallelReduceMatchesSerial(t *testing.T) {
	vals := make([]float64, 10007)
	for i := range vals {
		vals[i] = float64(i%97) * 0.125
	}
	var want float64
	for _, v := range vals {
		want += v
	}
	e := NewExecSpace(4)
	got := e.ParallelReduce(len(vals), func(i int) float64 { return vals[i] })
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("reduce = %v, want %v", got, want)
	}
}

func TestParallelReduceDeterministic(t *testing.T) {
	e := NewExecSpace(8)
	f := func(i int) float64 { return math.Sin(float64(i)) * 1e10 }
	a := e.ParallelReduce(5000, f)
	for k := 0; k < 10; k++ {
		if b := e.ParallelReduce(5000, f); b != a {
			t.Fatalf("non-deterministic reduce: %v vs %v", a, b)
		}
	}
}

func TestParallelReduceEmpty(t *testing.T) {
	if got := NewExecSpace(4).ParallelReduce(0, func(int) float64 { return 1 }); got != 0 {
		t.Fatalf("empty reduce = %v", got)
	}
}

func TestParallelReduceMax(t *testing.T) {
	e := NewExecSpace(3)
	vals := []float64{-5, 3, 9, -2, 9.5, 0}
	got := e.ParallelReduceMax(len(vals), func(i int) float64 { return vals[i] })
	if got != 9.5 {
		t.Fatalf("max = %v", got)
	}
	if NewExecSpace(2).ParallelReduceMax(0, func(int) float64 { return 1 }) != 0 {
		t.Fatal("empty max != 0")
	}
}

func TestChunksPartition(t *testing.T) {
	e := NewExecSpace(4)
	cs := e.chunks(10)
	if len(cs) != 4 {
		t.Fatalf("chunks = %d", len(cs))
	}
	next := 0
	total := 0
	for _, c := range cs {
		if c[0] != next {
			t.Fatalf("gap at %d", c[0])
		}
		next = c[1]
		total += c[1] - c[0]
	}
	if total != 10 || next != 10 {
		t.Fatalf("partition covers %d", total)
	}
}

func TestWorkersDefault(t *testing.T) {
	if NewExecSpace(0).Workers() <= 0 {
		t.Fatal("default workers not positive")
	}
	if NewExecSpace(5).Workers() != 5 {
		t.Fatal("explicit workers ignored")
	}
}

func Test3DIndexing(t *testing.T) {
	v := NewF64("cube", 2, 3, 4)
	v.Set3(1, 2, 3, 9.5)
	if v.At3(1, 2, 3) != 9.5 {
		t.Fatal("3-D indexing broken")
	}
	// Flat index: (1*3+2)*4+3 = 23.
	if v.At(23) != 9.5 {
		t.Fatal("3-D flat layout wrong")
	}
	if v.Len() != 24 {
		t.Fatalf("len %d", v.Len())
	}
}
