// Resilient execution: the silent-data-corruption (SDC) layer of the
// Kokkos model, mirroring hpx-kokkos-resilience's ResilientReplay
// execution-space wrapper (re-run a region until a user validator
// accepts) and ResilientDuplicatesSubscriber (duplicate-and-vote on the
// region's views). Both run the same deterministic body, so every retry
// and duplicate execution is bitwise reproducible under the simulator's
// virtual clocks.
package kokkos

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// SDCPolicy selects the detection strategy a resilient region runs under.
type SDCPolicy int

const (
	// SDCNone runs regions bare: corruption propagates undetected.
	SDCNone SDCPolicy = iota
	// SDCChecksum relies on checkpoint-blob checksums only (kr codec CRC
	// and the VeloC integrity verification); regions themselves run bare.
	SDCChecksum
	// SDCReplay validates the region's views after execution and re-runs
	// the region (from a pre-execution snapshot) until the validator
	// accepts, up to Retries times — Kokkos::ResilientReplay.
	SDCReplay
	// SDCVote executes the region on duplicated views and compares the
	// results element-wise; a mismatch triggers a third execution and an
	// element-wise majority vote, escalating on 3-way disagreement —
	// the ResilientDuplicatesSubscriber strategy.
	SDCVote
)

// String returns the policy's campaign/CLI name.
func (p SDCPolicy) String() string {
	switch p {
	case SDCNone:
		return "none"
	case SDCChecksum:
		return "checksum"
	case SDCReplay:
		return "replay"
	case SDCVote:
		return "vote"
	default:
		return fmt.Sprintf("sdc-policy-%d", int(p))
	}
}

// ParseSDCPolicy parses a policy name as printed by String.
func ParseSDCPolicy(s string) (SDCPolicy, error) {
	switch strings.ToLower(s) {
	case "", "none":
		return SDCNone, nil
	case "checksum":
		return SDCChecksum, nil
	case "replay":
		return SDCReplay, nil
	case "vote":
		return SDCVote, nil
	default:
		return SDCNone, fmt.Errorf("kokkos: unknown SDC policy %q (want none, checksum, replay, or vote)", s)
	}
}

// Detects reports whether the policy performs any in-region detection.
func (p SDCPolicy) Detects() bool { return p == SDCReplay || p == SDCVote }

// ErrSDCUnrecoverable is returned when a resilient region exhausts its
// retries without producing a result its validator (or majority vote)
// accepts — the escalation point to the control-flow rollback layer.
var ErrSDCUnrecoverable = errors.New("kokkos: resilient region exhausted retries without an accepted result")

// RegionReport accounts one resilient-region execution.
type RegionReport struct {
	// Injected counts bit flips the chaos hook applied to this execution.
	Injected int
	// Detected counts injected flips caught by the policy; Escaped counts
	// flips that survived undetected (Injected == Detected + Escaped).
	Detected int
	// Corrected counts detected flips whose damage was repaired (by a
	// clean re-execution or a winning majority vote).
	Corrected int
	// Escaped counts flips that propagated out of the region undetected.
	Escaped int
	// Replays counts extra body executions forced by a rejecting
	// validator (replay policy).
	Replays int
	// Votes counts duplicate body executions compared against the primary
	// (vote policy): 1 per region normally, 2 when a tie-break ran.
	Votes int
	// Escalated marks a region that could not self-repair (validator
	// still rejecting after Retries, or a 3-way vote disagreement).
	Escalated bool
}

// Region executes bodies under an SDC policy. The zero value runs bare.
type Region struct {
	// Policy selects the detection strategy.
	Policy SDCPolicy
	// Retries bounds replay re-executions (default 2).
	Retries int
	// Validate is the replay-policy acceptance check over the region's
	// views; nil accepts everything.
	Validate func(views []View) bool
	// Corrupt is the chaos hook, called exactly once per Run after the
	// primary execution; it may flip bits in the views and returns the
	// number of flips applied. nil injects nothing. Re-executions and
	// duplicate executions are never corrupted (the single-event-upset
	// model: one particle strike per region at most).
	Corrupt func(views []View) int
}

// Run executes body over views under the region's policy. views must list
// every view the body reads or writes (non-aliasing); body must be
// deterministic and communication-free, so re-executions are local.
func (r Region) Run(views []View, body func()) (RegionReport, error) {
	corrupt := func(rep *RegionReport) {
		if r.Corrupt != nil {
			rep.Injected += r.Corrupt(views)
		}
	}
	switch r.Policy {
	case SDCReplay:
		return r.runReplay(views, body, corrupt)
	case SDCVote:
		return r.runVote(views, body, corrupt)
	default:
		// Bare execution: any injected flip escapes the region.
		rep := RegionReport{}
		body()
		corrupt(&rep)
		rep.Escaped = rep.Injected
		return rep, nil
	}
}

func (r Region) runReplay(views []View, body func(), corrupt func(*RegionReport)) (RegionReport, error) {
	rep := RegionReport{}
	retries := r.Retries
	if retries <= 0 {
		retries = 2
	}
	snap := snapshot(views)
	body()
	corrupt(&rep)
	accepted := r.Validate == nil || r.Validate(views)
	for !accepted && rep.Replays < retries {
		restore(views, snap)
		body()
		rep.Replays++
		accepted = r.Validate == nil || r.Validate(views)
	}
	if rep.Replays > 0 {
		rep.Detected = rep.Injected
		if accepted {
			rep.Corrected = rep.Injected
		} else {
			rep.Escalated = true
			return rep, fmt.Errorf("%w: validator still rejecting after %d replays", ErrSDCUnrecoverable, rep.Replays)
		}
	} else {
		rep.Escaped = rep.Injected
	}
	return rep, nil
}

func (r Region) runVote(views []View, body func(), corrupt func(*RegionReport)) (RegionReport, error) {
	rep := RegionReport{}
	snap := snapshot(views)
	body()
	corrupt(&rep)
	primary := snapshot(views)
	restore(views, snap)
	body()
	rep.Votes = 1
	if equalAll(views, primary) {
		rep.Escaped = rep.Injected
		return rep, nil
	}
	// The duplicates disagree: run a tie-break execution and take the
	// element-wise majority. views currently holds the second execution's
	// results; keep them aside and produce a third.
	rep.Detected = rep.Injected
	secondary := snapshot(views)
	restore(views, snap)
	body()
	rep.Votes++
	if disagree := voteInto(views, primary, secondary); disagree {
		rep.Escalated = true
		return rep, fmt.Errorf("%w: 3-way disagreement in duplicate vote", ErrSDCUnrecoverable)
	}
	rep.Corrected = rep.Injected
	return rep, nil
}

func snapshot(views []View) []View {
	out := make([]View, len(views))
	for i, v := range views {
		out[i] = CloneView(v)
	}
	return out
}

func restore(views, snap []View) {
	for i := range views {
		CopyInto(views[i], snap[i])
	}
}

func equalAll(a, b []View) bool {
	for i := range a {
		if !ViewsEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// voteInto writes the element-wise majority of (cur, a, b) into cur,
// returning true if any element shows a 3-way disagreement. cur holds one
// execution's results and stays untouched wherever it already agrees with
// either other copy.
func voteInto(cur, a, b []View) bool {
	disagree := false
	for i := range cur {
		switch cv := cur[i].(type) {
		case *F64View:
			av, bv := a[i].(*F64View), b[i].(*F64View)
			cd, ad, bd := cv.Data(), av.Data(), bv.Data()
			for j := range cd {
				cb, ab, bb := math.Float64bits(cd[j]), math.Float64bits(ad[j]), math.Float64bits(bd[j])
				switch {
				case cb == ab || cb == bb:
					// cur is in the majority already.
				case ab == bb:
					cd[j] = ad[j]
				default:
					disagree = true
				}
			}
		case *I32View:
			av, bv := a[i].(*I32View), b[i].(*I32View)
			cd, ad, bd := cv.Data(), av.Data(), bv.Data()
			for j := range cd {
				switch {
				case cd[j] == ad[j] || cd[j] == bd[j]:
				case ad[j] == bd[j]:
					cd[j] = ad[j]
				default:
					disagree = true
				}
			}
		default:
			panic(fmt.Sprintf("kokkos: cannot vote over view kind %T", cur[i]))
		}
	}
	return disagree
}

// FlipBit flips one bit in the concatenated element payload of views:
// frac in [0,1) selects the element proportionally across the views (in
// order) and bit selects the bit within it (mod the element width). It
// returns the label of the view hit and the flat element index within it,
// or ("", -1) if the views hold no elements. Dry views are skipped.
func FlipBit(views []View, frac float64, bit int) (string, int) {
	total := 0
	for _, v := range views {
		if !v.Dry() {
			total += v.Len()
		}
	}
	if total == 0 {
		return "", -1
	}
	if frac < 0 {
		frac = 0
	}
	k := int(frac * float64(total))
	if k >= total {
		k = total - 1
	}
	for _, v := range views {
		if v.Dry() {
			continue
		}
		if k >= v.Len() {
			k -= v.Len()
			continue
		}
		switch t := v.(type) {
		case *F64View:
			d := t.Data()
			d[k] = math.Float64frombits(math.Float64bits(d[k]) ^ (1 << (uint(bit) % 64)))
		case *I32View:
			d := t.Data()
			d[k] ^= 1 << (uint(bit) % 32)
		default:
			panic(fmt.Sprintf("kokkos: cannot flip bits in view kind %T", v))
		}
		return v.Label(), k
	}
	return "", -1
}

// BoundsValidator returns a Validate function accepting views whose F64
// elements are all finite and within [min, max] — the generic validator a
// physics application pairs with ResilientReplay (temperatures, energies,
// and coordinates all have known physical ranges). I32 views are accepted
// unconditionally.
func BoundsValidator(min, max float64) func(views []View) bool {
	return func(views []View) bool {
		for _, v := range views {
			f, ok := v.(*F64View)
			if !ok || f.Dry() {
				continue
			}
			for _, x := range f.Data() {
				if math.IsNaN(x) || math.IsInf(x, 0) || x < min || x > max {
					return false
				}
			}
		}
		return true
	}
}
