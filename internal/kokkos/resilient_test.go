package kokkos

import (
	"errors"
	"math"
	"testing"
)

func TestCloneIsIndependent(t *testing.T) {
	v := NewF64("grid", 4, 4)
	for i := 0; i < v.Len(); i++ {
		v.Data()[i] = float64(i)
	}
	v.SetSimBytes(1 << 20)
	cp := v.Clone()
	if SameAllocation(v, cp) {
		t.Fatal("clone aliases the original allocation")
	}
	if !v.Equal(cp) {
		t.Fatal("clone differs from original")
	}
	if cp.SimBytes() != v.SimBytes() {
		t.Fatalf("clone simBytes %d, want %d", cp.SimBytes(), v.SimBytes())
	}
	cp.Data()[3] = -1
	if v.Data()[3] == -1 {
		t.Fatal("writing the clone mutated the original")
	}
	// A Ref shares the allocation, but its clone must not.
	ref := v.Ref("grid@capture")
	if !SameAllocation(v, ref) {
		t.Fatal("Ref should alias")
	}
	if SameAllocation(ref, ref.Clone()) {
		t.Fatal("clone of a Ref still aliases")
	}
}

func TestEqualIsBitwise(t *testing.T) {
	a := NewF64("a", 3)
	b := NewF64("b", 3)
	if !a.Equal(b) {
		t.Fatal("fresh equal-shaped views should be equal")
	}
	// NaN == NaN bitwise, unlike float comparison.
	a.Set(0, math.NaN())
	b.Set(0, math.NaN())
	if !a.Equal(b) {
		t.Fatal("identical NaN payloads should compare equal bitwise")
	}
	// Signed zero is distinguished.
	b.Set(1, math.Copysign(0, -1))
	if a.Equal(b) {
		t.Fatal("+0 and -0 should differ bitwise")
	}
	// Shape mismatch, even at equal length.
	c := NewF64("c", 1, 3)
	if ViewsEqual(a, c) {
		t.Fatal("different shapes should not be equal")
	}
	// Kind mismatch through the interface.
	if ViewsEqual(a, NewI32("i", 3)) {
		t.Fatal("different kinds should not be equal")
	}
	// Dry views compare by shape only.
	d1 := NewF64Dry("d", 5)
	d2 := NewF64Dry("d2", 5)
	if !ViewsEqual(d1, d2) {
		t.Fatal("dry views of equal shape should be equal")
	}
}

func TestFlipBitDeterministic(t *testing.T) {
	mk := func() []View {
		a := NewF64("a", 4)
		b := NewF64("b", 4)
		for i := 0; i < 4; i++ {
			a.Data()[i] = float64(i + 1)
			b.Data()[i] = float64(10 * (i + 1))
		}
		return []View{a, b}
	}
	v1, v2 := mk(), mk()
	l1, e1 := FlipBit(v1, 0.7, 3)
	l2, e2 := FlipBit(v2, 0.7, 3)
	if l1 != l2 || e1 != e2 {
		t.Fatalf("flip site not deterministic: (%s,%d) vs (%s,%d)", l1, e1, l2, e2)
	}
	// frac 0.7 of 8 elements = flat index 5 -> second view, element 1.
	if l1 != "b" || e1 != 1 {
		t.Fatalf("flip landed at (%s,%d), want (b,1)", l1, e1)
	}
	if !ViewsEqual(v1[1], v2[1]) {
		t.Fatal("identical flips should produce identical payloads")
	}
	if ViewsEqual(v1[1], mk()[1]) {
		t.Fatal("flip did not change the payload")
	}
	// Flipping the same bit twice restores the original exactly.
	FlipBit(v1, 0.7, 3)
	if !ViewsEqual(v1[1], mk()[1]) {
		t.Fatal("double flip should restore the original")
	}
	// Dry views are skipped; all-dry input reports no site.
	if l, e := FlipBit([]View{NewF64Dry("d", 8)}, 0.5, 0); l != "" || e != -1 {
		t.Fatalf("dry flip reported (%s,%d), want none", l, e)
	}
}

// countingCorrupt flips one bit in the first view on the first call only
// (the single-event-upset model used by the chaos scheduler).
func countingCorrupt(frac float64, bit int) func([]View) int {
	fired := false
	return func(views []View) int {
		if fired {
			return 0
		}
		fired = true
		if _, e := FlipBit(views, frac, bit); e < 0 {
			return 0
		}
		return 1
	}
}

func regionViews() []View {
	v := NewF64("state", 8)
	for i := 0; i < 8; i++ {
		v.Data()[i] = 1.0
	}
	return []View{v}
}

func squareBody(views []View) func() {
	v := views[0].(*F64View)
	return func() {
		for i := range v.Data() {
			v.Data()[i] = 2.0 // deterministic overwrite
		}
	}
}

func TestRegionReplayCorrects(t *testing.T) {
	views := regionViews()
	r := Region{
		Policy:   SDCReplay,
		Validate: BoundsValidator(0, 3),
		Corrupt:  countingCorrupt(0.5, 60), // exponent flip: way out of bounds
	}
	rep, err := r.Run(views, squareBody(views))
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep.Injected != 1 || rep.Detected != 1 || rep.Corrected != 1 || rep.Escaped != 0 {
		t.Fatalf("replay accounting = %+v", rep)
	}
	if rep.Replays != 1 {
		t.Fatalf("replays = %d, want 1", rep.Replays)
	}
	for _, x := range views[0].(*F64View).Data() {
		if x != 2.0 {
			t.Fatalf("replay left corrupted data: %v", x)
		}
	}
}

func TestRegionReplayEscape(t *testing.T) {
	views := regionViews()
	r := Region{
		Policy:   SDCReplay,
		Validate: BoundsValidator(0, 3),
		Corrupt:  countingCorrupt(0.5, 51), // top mantissa bit: 2.0 -> 3.0, in bounds
	}
	rep, err := r.Run(views, squareBody(views))
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep.Injected != 1 || rep.Detected != 0 || rep.Escaped != 1 || rep.Replays != 0 {
		t.Fatalf("in-bounds flip should escape replay: %+v", rep)
	}
}

func TestRegionVoteCorrects(t *testing.T) {
	// Vote detects even the in-bounds mantissa flip that escapes replay.
	views := regionViews()
	r := Region{Policy: SDCVote, Corrupt: countingCorrupt(0.5, 51)}
	rep, err := r.Run(views, squareBody(views))
	if err != nil {
		t.Fatalf("vote: %v", err)
	}
	if rep.Injected != 1 || rep.Detected != 1 || rep.Corrected != 1 || rep.Escaped != 0 {
		t.Fatalf("vote accounting = %+v", rep)
	}
	if rep.Votes != 2 {
		t.Fatalf("votes = %d, want 2 (duplicate + tie-break)", rep.Votes)
	}
	for _, x := range views[0].(*F64View).Data() {
		if x != 2.0 {
			t.Fatalf("vote left corrupted data: %v", x)
		}
	}
}

func TestRegionBareEscapes(t *testing.T) {
	for _, pol := range []SDCPolicy{SDCNone, SDCChecksum} {
		views := regionViews()
		r := Region{Policy: pol, Corrupt: countingCorrupt(0.25, 62)}
		rep, err := r.Run(views, squareBody(views))
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if rep.Injected != 1 || rep.Escaped != 1 || rep.Detected != 0 {
			t.Fatalf("%v accounting = %+v", pol, rep)
		}
	}
}

func TestRegionReplayEscalates(t *testing.T) {
	views := regionViews()
	// A corruptor that re-flips on every execution defeats replay: the
	// validator keeps rejecting until retries run out.
	r := Region{
		Policy:   SDCReplay,
		Retries:  2,
		Validate: func([]View) bool { return false },
	}
	rep, err := r.Run(views, squareBody(views))
	if !errors.Is(err, ErrSDCUnrecoverable) {
		t.Fatalf("err = %v, want ErrSDCUnrecoverable", err)
	}
	if !rep.Escalated || rep.Replays != 2 {
		t.Fatalf("escalation accounting = %+v", rep)
	}
}

func TestParseSDCPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SDCPolicy
	}{{"", SDCNone}, {"none", SDCNone}, {"checksum", SDCChecksum}, {"replay", SDCReplay}, {"VOTE", SDCVote}} {
		got, err := ParseSDCPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSDCPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if tc.in != "" && got.String() != "" && ParseMust(t, got.String()) != got {
			t.Fatalf("round-trip failed for %v", got)
		}
	}
	if _, err := ParseSDCPolicy("bogus"); err == nil {
		t.Fatal("bogus policy should not parse")
	}
}

func ParseMust(t *testing.T, s string) SDCPolicy {
	t.Helper()
	p, err := ParseSDCPolicy(s)
	if err != nil {
		t.Fatalf("ParseSDCPolicy(%q): %v", s, err)
	}
	return p
}
