package kokkos

import "testing"

func TestSimBytesDefaultsToActual(t *testing.T) {
	v := NewF64("x", 10)
	if v.SimBytes() != v.SizeBytes() {
		t.Fatalf("SimBytes %d != SizeBytes %d", v.SimBytes(), v.SizeBytes())
	}
	i := NewI32("y", 10)
	if i.SimBytes() != 40 {
		t.Fatalf("I32 SimBytes %d", i.SimBytes())
	}
}

func TestSetSimBytesOverrides(t *testing.T) {
	v := NewF64("x", 10)
	v.SetSimBytes(1 << 30)
	if v.SimBytes() != 1<<30 {
		t.Fatalf("SimBytes = %d", v.SimBytes())
	}
	if v.SizeBytes() != 80 {
		t.Fatal("SetSimBytes must not change actual size")
	}
	// Refs inherit the override (same header copy).
	r := v.Ref("x2")
	if r.SimBytes() != 1<<30 {
		t.Fatalf("Ref SimBytes = %d", r.SimBytes())
	}
}

func TestSetSimBytesI32(t *testing.T) {
	v := NewI32("x", 4)
	v.SetSimBytes(999)
	if v.SimBytes() != 999 {
		t.Fatalf("SimBytes = %d", v.SimBytes())
	}
}
