// Package kokkos is a minimal Kokkos-like programming model: labeled,
// shaped Views over flat allocations, plus deterministic host-parallel
// dispatch. It provides exactly the surface Kokkos Resilience needs —
// view identity for duplicate-capture detection, labels for aliasing, and
// byte serialization for checkpointing.
package kokkos

import (
	"encoding/binary"
	"fmt"
	"math"
)

// allocation is the identity token shared by every View header referencing
// the same underlying data, mirroring Kokkos's shared allocation records.
// Kokkos Resilience uses this identity to checkpoint each allocation once
// even when multiple View copies are captured ("skipped" views in the
// paper's Figure 7).
type allocation struct{ _ byte }

// View is the kind-erased interface over typed views.
type View interface {
	// Label returns the user-facing view name.
	Label() string
	// Shape returns the view's dimensions.
	Shape() []int
	// Len returns the flat element count.
	Len() int
	// ElemSize returns the element size in bytes.
	ElemSize() int
	// SizeBytes returns Len() * ElemSize().
	SizeBytes() int
	// SimBytes returns the view's size in the simulation's cost model. It
	// equals SizeBytes unless overridden: experiments at the paper's data
	// scales (up to gigabytes per rank) back a large simulated view with a
	// small real allocation and set SimBytes to the simulated footprint,
	// so checkpoint, network, and file system costs are charged at full
	// scale while the actual arithmetic runs on a sample.
	SimBytes() int
	// Dry reports whether this view carries metadata only (no storage);
	// used for the Figure 7 census at sizes too large to allocate.
	Dry() bool
	// Serialize returns the view contents as bytes. Panics on dry views.
	Serialize() []byte
	// Deserialize overwrites the view contents from bytes.
	Deserialize(b []byte) error
	// alloc returns the shared allocation identity.
	alloc() *allocation
}

// SameAllocation reports whether two views share underlying storage, i.e.
// one is a duplicate capture of the other.
func SameAllocation(a, b View) bool { return a.alloc() == b.alloc() }

func flatLen(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("kokkos: negative dimension %d", d))
		}
		n *= d
	}
	return n
}

type viewHeader struct {
	label    string
	shape    []int
	dry      bool
	id       *allocation
	simBytes int // 0 = same as actual
}

func (h *viewHeader) Label() string      { return h.label }
func (h *viewHeader) Shape() []int       { return append([]int(nil), h.shape...) }
func (h *viewHeader) Len() int           { return flatLen(h.shape) }
func (h *viewHeader) Dry() bool          { return h.dry }
func (h *viewHeader) alloc() *allocation { return h.id }

// F64View is a view of float64 elements.
type F64View struct {
	viewHeader
	data []float64
}

// NewF64 allocates a zeroed float64 view with the given label and shape.
func NewF64(label string, shape ...int) *F64View {
	v := &F64View{viewHeader: viewHeader{label: label, shape: append([]int(nil), shape...), id: &allocation{}}}
	v.data = make([]float64, v.Len())
	return v
}

// NewF64Dry creates a metadata-only float64 view (no storage).
func NewF64Dry(label string, shape ...int) *F64View {
	return &F64View{viewHeader: viewHeader{label: label, shape: append([]int(nil), shape...), dry: true, id: &allocation{}}}
}

// Ref returns a new View header sharing this view's storage, modeling the
// shallow copies the C++ compiler creates when a lambda captures a view
// that is also reachable through another object.
func (v *F64View) Ref(label string) *F64View {
	cp := *v
	cp.viewHeader.label = label
	return &cp
}

// Data returns the underlying storage. Panics on dry views.
func (v *F64View) Data() []float64 {
	v.mustWet("Data")
	return v.data
}

// At returns element i of the flattened view.
func (v *F64View) At(i int) float64 { return v.data[i] }

// Set assigns element i of the flattened view.
func (v *F64View) Set(i int, x float64) { v.data[i] = x }

// At2 indexes a 2-D view.
func (v *F64View) At2(i, j int) float64 { return v.data[i*v.shape[1]+j] }

// Set2 assigns into a 2-D view.
func (v *F64View) Set2(i, j int, x float64) { v.data[i*v.shape[1]+j] = x }

// At3 indexes a 3-D view.
func (v *F64View) At3(i, j, k int) float64 {
	return v.data[(i*v.shape[1]+j)*v.shape[2]+k]
}

// Set3 assigns into a 3-D view.
func (v *F64View) Set3(i, j, k int, x float64) {
	v.data[(i*v.shape[1]+j)*v.shape[2]+k] = x
}

// ElemSize returns 8.
func (v *F64View) ElemSize() int { return 8 }

// SizeBytes returns the storage footprint in bytes.
func (v *F64View) SizeBytes() int { return 8 * v.Len() }

// SimBytes returns the cost-model footprint (SizeBytes unless overridden).
func (v *F64View) SimBytes() int {
	if v.simBytes > 0 {
		return v.simBytes
	}
	return v.SizeBytes()
}

// SetSimBytes overrides the cost-model footprint (see View.SimBytes).
func (v *F64View) SetSimBytes(n int) { v.simBytes = n }

func (v *F64View) mustWet(op string) {
	if v.dry {
		panic(fmt.Sprintf("kokkos: %s on dry view %q", op, v.label))
	}
}

// Serialize returns the contents as little-endian bytes.
func (v *F64View) Serialize() []byte {
	v.mustWet("Serialize")
	out := make([]byte, 8*len(v.data))
	for i, x := range v.data {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

// Deserialize overwrites the contents from Serialize output.
func (v *F64View) Deserialize(b []byte) error {
	v.mustWet("Deserialize")
	if len(b) != 8*len(v.data) {
		return fmt.Errorf("kokkos: view %q expects %d bytes, got %d", v.label, 8*len(v.data), len(b))
	}
	for i := range v.data {
		v.data[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return nil
}

// I32View is a view of int32 elements (neighbor lists, bin indices).
type I32View struct {
	viewHeader
	data []int32
}

// NewI32 allocates a zeroed int32 view.
func NewI32(label string, shape ...int) *I32View {
	v := &I32View{viewHeader: viewHeader{label: label, shape: append([]int(nil), shape...), id: &allocation{}}}
	v.data = make([]int32, v.Len())
	return v
}

// NewI32Dry creates a metadata-only int32 view.
func NewI32Dry(label string, shape ...int) *I32View {
	return &I32View{viewHeader: viewHeader{label: label, shape: append([]int(nil), shape...), dry: true, id: &allocation{}}}
}

// Ref returns a shallow copy sharing storage.
func (v *I32View) Ref(label string) *I32View {
	cp := *v
	cp.viewHeader.label = label
	return &cp
}

// Data returns the underlying storage. Panics on dry views.
func (v *I32View) Data() []int32 {
	if v.dry {
		panic(fmt.Sprintf("kokkos: Data on dry view %q", v.label))
	}
	return v.data
}

// At returns element i.
func (v *I32View) At(i int) int32 { return v.data[i] }

// Set assigns element i.
func (v *I32View) Set(i int, x int32) { v.data[i] = x }

// ElemSize returns 4.
func (v *I32View) ElemSize() int { return 4 }

// SizeBytes returns the storage footprint in bytes.
func (v *I32View) SizeBytes() int { return 4 * v.Len() }

// SimBytes returns the cost-model footprint (SizeBytes unless overridden).
func (v *I32View) SimBytes() int {
	if v.simBytes > 0 {
		return v.simBytes
	}
	return v.SizeBytes()
}

// SetSimBytes overrides the cost-model footprint (see View.SimBytes).
func (v *I32View) SetSimBytes(n int) { v.simBytes = n }

// Serialize returns the contents as little-endian bytes.
func (v *I32View) Serialize() []byte {
	if v.dry {
		panic(fmt.Sprintf("kokkos: Serialize on dry view %q", v.label))
	}
	out := make([]byte, 4*len(v.data))
	for i, x := range v.data {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(x))
	}
	return out
}

// Deserialize overwrites the contents from Serialize output.
func (v *I32View) Deserialize(b []byte) error {
	if v.dry {
		panic(fmt.Sprintf("kokkos: Deserialize on dry view %q", v.label))
	}
	if len(b) != 4*len(v.data) {
		return fmt.Errorf("kokkos: view %q expects %d bytes, got %d", v.label, 4*len(v.data), len(b))
	}
	for i := range v.data {
		v.data[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return nil
}

// DeepCopyF64 copies src's contents into dst (Kokkos deep_copy). The views
// must have equal length.
func DeepCopyF64(dst, src *F64View) {
	if dst.Len() != src.Len() {
		panic(fmt.Sprintf("kokkos: deep_copy length mismatch %d vs %d", dst.Len(), src.Len()))
	}
	copy(dst.Data(), src.Data())
}

// DeepCopyI32 copies src's contents into dst.
func DeepCopyI32(dst, src *I32View) {
	if dst.Len() != src.Len() {
		panic(fmt.Sprintf("kokkos: deep_copy length mismatch %d vs %d", dst.Len(), src.Len()))
	}
	copy(dst.Data(), src.Data())
}
