package kr

import (
	"errors"
	"fmt"

	"repro/internal/fenix"
	"repro/internal/mpi"
	"repro/internal/veloc"
)

// blobRegion adapts the context's serialized view blob as a VeloC region.
// Unlike veloc.SliceRegion it accepts restores of any length: a recovered
// process restores before it has ever produced a blob of its own.
type blobRegion struct {
	b   *[]byte
	sim *int
}

func (r blobRegion) Bytes() []byte { return *r.b }

func (r blobRegion) Restore(data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	*r.b = cp
	return nil
}

func (r blobRegion) SimBytes() int {
	if *r.sim > 0 {
		return *r.sim
	}
	return len(*r.b)
}

// VeloCBackend connects a Context to a veloc.Client. In Collective mode it
// defers version selection to VeloC itself; in Single mode (the paper's
// modification) it performs the globally-best-version reduction manually
// over the communicator currently installed by the Context.
type VeloCBackend struct {
	client *veloc.Client
	name   string
	blob   []byte
	sim    int
}

// NewVeloCBackend creates the backend. name distinguishes checkpoint sets
// (VeloC checkpoint names).
func NewVeloCBackend(client *veloc.Client, name string) *VeloCBackend {
	b := &VeloCBackend{client: client, name: name}
	client.Protect(0, blobRegion{&b.blob, &b.sim})
	return b
}

// Client returns the underlying VeloC client.
func (b *VeloCBackend) Client() *veloc.Client { return b.client }

// Checkpoint persists blob as the given version via VeloC. A version
// discarded by VeloC's integrity verification surfaces as ErrRejected.
func (b *VeloCBackend) Checkpoint(version int, blob []byte, simBytes int) error {
	b.blob = blob
	b.sim = simBytes
	if err := b.client.Checkpoint(b.name, version); err != nil {
		if errors.Is(err, veloc.ErrRejected) {
			return fmt.Errorf("%w: version %d", ErrRejected, version)
		}
		return err
	}
	return nil
}

// Restore retrieves the blob for version via VeloC.
func (b *VeloCBackend) Restore(version int) ([]byte, error) {
	if err := b.client.Restart(b.name, version); err != nil {
		if errors.Is(err, veloc.ErrNoCheckpoint) {
			return nil, fmt.Errorf("%w: version %d", ErrNoCheckpoint, version)
		}
		return nil, err
	}
	return b.blob, nil
}

// LatestVersion returns the newest version restorable at every rank.
func (b *VeloCBackend) LatestVersion(comm *mpi.Comm) (int, error) {
	var v int
	var err error
	if b.client.Mode() == veloc.Collective {
		v, err = b.client.LatestVersion(b.name)
	} else {
		v, err = b.client.BestCommonVersion(b.name, comm)
	}
	if errors.Is(err, veloc.ErrNoCheckpoint) {
		return 0, ErrNoCheckpoint
	}
	return v, err
}

// SetComm updates the client's communicator after a repair.
func (b *VeloCBackend) SetComm(comm *mpi.Comm) { b.client.SetComm(comm) }

// SetRank updates the client's logical rank identity.
func (b *VeloCBackend) SetRank(rank int) { b.client.SetRank(rank) }

// IMRBackend connects a Context to Fenix's in-memory redundancy store.
// Restore is collective: all ranks of the resilient communicator must call
// it together (the buddy protocol requires the partner's participation).
type IMRBackend struct {
	imr *fenix.IMR
}

// NewIMRBackend wraps a fenix.IMR handle.
func NewIMRBackend(imr *fenix.IMR) *IMRBackend { return &IMRBackend{imr: imr} }

// Checkpoint stores blob in memory locally and at the buddy rank.
func (b *IMRBackend) Checkpoint(version int, blob []byte, simBytes int) error {
	return b.imr.CheckpointSized(version, blob, simBytes)
}

// Restore retrieves blob for version (collective).
func (b *IMRBackend) Restore(version int) ([]byte, error) {
	blob, err := b.imr.Restore(version)
	if errors.Is(err, fenix.ErrIMRNoCheckpoint) {
		return nil, ErrNoCheckpoint
	}
	return blob, err
}

// LatestVersion returns the newest version restorable at every rank
// (collective agreement).
func (b *IMRBackend) LatestVersion(comm *mpi.Comm) (int, error) {
	v, err := b.imr.LatestCommon()
	if errors.Is(err, fenix.ErrIMRNoCheckpoint) {
		return 0, ErrNoCheckpoint
	}
	return v, err
}

// SetComm is a no-op: the IMR handle always reads the current resilient
// communicator from its Fenix context.
func (b *IMRBackend) SetComm(comm *mpi.Comm) {}

// SetRank is a no-op for the same reason.
func (b *IMRBackend) SetRank(rank int) {}
