package kr

import "repro/internal/kokkos"

// Class is a view's checkpoint classification, matching the legend of the
// paper's Figure 7.
type Class int

const (
	// Checkpointed: the first-seen view of its allocation; serialized.
	Checkpointed Class = iota
	// Alias: a user-declared alias label (swap space); never serialized.
	Alias
	// Skipped: a duplicate capture of an allocation already checkpointed
	// (the copies the C++ compiler makes when a view is reachable through
	// multiple captured objects); automatically detected and serialized
	// only once.
	Skipped
)

func (c Class) String() string {
	switch c {
	case Checkpointed:
		return "Checkpointed"
	case Alias:
		return "Alias"
	case Skipped:
		return "Skipped"
	}
	return "Unknown"
}

// ViewRecord is one captured view's census entry.
type ViewRecord struct {
	Label string
	Bytes int
	Class Class
}

// Census summarizes the classification of a checkpoint region's captured
// views.
type Census struct {
	Records []ViewRecord

	checkpointed []kokkos.View // the unique views actually serialized
}

// Counts returns the number of views in each class.
func (c Census) Counts() (checkpointed, alias, skipped int) {
	for _, r := range c.Records {
		switch r.Class {
		case Checkpointed:
			checkpointed++
		case Alias:
			alias++
		case Skipped:
			skipped++
		}
	}
	return
}

// Bytes returns the total bytes in each class.
func (c Census) Bytes() (checkpointed, alias, skipped int) {
	for _, r := range c.Records {
		switch r.Class {
		case Checkpointed:
			checkpointed += r.Bytes
		case Alias:
			alias += r.Bytes
		case Skipped:
			skipped += r.Bytes
		}
	}
	return
}

// TotalViews returns the number of captured view objects.
func (c Census) TotalViews() int { return len(c.Records) }

// TotalBytes returns the memory footprint of all captured view objects.
func (c Census) TotalBytes() int {
	t := 0
	for _, r := range c.Records {
		t += r.Bytes
	}
	return t
}

// CheckpointedViews returns the unique views that are serialized into
// checkpoints, in capture order.
func (c Census) CheckpointedViews() []kokkos.View { return c.checkpointed }

// CensusOf classifies a capture list: the first view of each allocation is
// Checkpointed, later views of the same allocation are Skipped, and views
// whose label is in aliases are Alias (and never serialized). It works on
// dry views too, enabling the Figure 7 census at sizes too large to
// allocate.
func CensusOf(views []kokkos.View, aliases map[string]bool) Census {
	var c Census
	var reps []kokkos.View // representative view per allocation
	for _, v := range views {
		if aliases[v.Label()] {
			c.Records = append(c.Records, ViewRecord{Label: v.Label(), Bytes: v.SimBytes(), Class: Alias})
			continue
		}
		dup := false
		for _, r := range reps {
			if kokkos.SameAllocation(r, v) {
				dup = true
				break
			}
		}
		if dup {
			c.Records = append(c.Records, ViewRecord{Label: v.Label(), Bytes: v.SimBytes(), Class: Skipped})
			continue
		}
		reps = append(reps, v)
		c.Records = append(c.Records, ViewRecord{Label: v.Label(), Bytes: v.SimBytes(), Class: Checkpointed})
		c.checkpointed = append(c.checkpointed, v)
	}
	return c
}
