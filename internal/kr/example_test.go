package kr_test

import (
	"fmt"

	"repro/internal/kokkos"
	"repro/internal/kr"
)

// CensusOf classifies a checkpoint region's captured views the way Kokkos
// Resilience does: first sight of an allocation is checkpointed, later
// sights are skipped, declared swap-space labels are aliases.
func ExampleCensusOf() {
	x := kokkos.NewF64("x", 1000)
	v := kokkos.NewF64("v", 1000)
	xSwap := kokkos.NewF64("x_swap", 1000)

	capture := []kokkos.View{
		x, v, xSwap,
		x.Ref("x@force"), // duplicate capture through the force object
		x.Ref("x@comm"),  // ... and through the comm object
	}
	census := kr.CensusOf(capture, map[string]bool{"x_swap": true})

	ck, al, sk := census.Counts()
	fmt.Printf("checkpointed=%d alias=%d skipped=%d\n", ck, al, sk)
	fmt.Printf("serialized views: %d\n", len(census.CheckpointedViews()))
	// Output:
	// checkpointed=2 alias=1 skipped=2
	// serialized views: 2
}
