package kr

import (
	"testing"

	"repro/internal/kokkos"
)

// FuzzDeserializeViews hardens the checkpoint blob parser: arbitrary
// bytes must never panic, only error.
func FuzzDeserializeViews(f *testing.F) {
	a := kokkos.NewF64("a", 4)
	b := kokkos.NewI32("b", 3)
	f.Add(serializeViews([]kokkos.View{a, b}))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, blob []byte) {
		x := kokkos.NewF64("a", 4)
		y := kokkos.NewI32("b", 3)
		_ = deserializeViews(blob, []kokkos.View{x, y}) // must not panic
	})
}
