package kr

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/kokkos"
	"repro/internal/mpi"
)

// FuzzDeserializeViews hardens the checkpoint blob parser: arbitrary
// bytes must never panic, only error.
func FuzzDeserializeViews(f *testing.F) {
	a := kokkos.NewF64("a", 4)
	b := kokkos.NewI32("b", 3)
	f.Add(serializeViews([]kokkos.View{a, b}))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, blob []byte) {
		x := kokkos.NewF64("a", 4)
		y := kokkos.NewI32("b", 3)
		_ = deserializeViews(blob, []kokkos.View{x, y}) // must not panic
	})
}

// FuzzFlippedBlobRejected is the codec's SDC-detection property: any
// single bit flip in an encoded blob — header, label, payload, or the CRC
// field itself — must fail the codec checksum and must be rejected by
// deserializeViews before a single view element is overwritten.
func FuzzFlippedBlobRejected(f *testing.F) {
	f.Add(uint16(0), uint8(0))
	f.Add(uint16(3), uint8(7)) // top bit of the stored CRC
	f.Add(uint16(40), uint8(4))
	f.Fuzz(func(t *testing.T, site uint16, bit uint8) {
		a := kokkos.NewF64("a", 4)
		b := kokkos.NewI32("b", 3)
		for i := 0; i < 4; i++ {
			a.Set(i, float64(i)*1.5)
		}
		for i := 0; i < 3; i++ {
			b.Set(i, int32(i+1))
		}
		blob := serializeViews([]kokkos.View{a, b})
		blob[int(site)%len(blob)] ^= 1 << (bit % 8)

		if blobChecksumOK(blob) {
			t.Fatalf("flip at byte %d bit %d passed the codec checksum", int(site)%len(blob), bit%8)
		}
		x := kokkos.NewF64("a", 4)
		y := kokkos.NewI32("b", 3)
		x.Set(2, 99)
		y.Set(1, -7)
		if err := deserializeViews(blob, []kokkos.View{x, y}); !errors.Is(err, ErrCorruptBlob) {
			t.Fatalf("flipped blob not rejected: err = %v", err)
		}
		// Rejection must happen before any write-back.
		if x.At(2) != 99 || y.At(1) != -7 {
			t.Fatalf("rejected blob mutated views: x[2]=%v y[1]=%v", x.At(2), y.At(1))
		}
	})
}

// rejectingBackend is an in-memory Backend whose verification discards
// selected versions with ErrRejected — the kr-facing behaviour of VeloC
// when a scratch blob fails integrity verification.
type rejectingBackend struct {
	blobs  map[int][]byte
	reject map[int]bool
}

func newRejectingBackend(reject ...int) *rejectingBackend {
	b := &rejectingBackend{blobs: make(map[int][]byte), reject: make(map[int]bool)}
	for _, v := range reject {
		b.reject[v] = true
	}
	return b
}

func (b *rejectingBackend) Checkpoint(version int, blob []byte, simBytes int) error {
	if b.reject[version] {
		return fmt.Errorf("%w: version %d", ErrRejected, version)
	}
	b.blobs[version] = append([]byte(nil), blob...)
	return nil
}

func (b *rejectingBackend) Restore(version int) ([]byte, error) {
	blob, ok := b.blobs[version]
	if !ok {
		return nil, ErrNoCheckpoint
	}
	return blob, nil
}

func (b *rejectingBackend) LatestVersion(comm *mpi.Comm) (int, error) {
	best := -1
	for v := range b.blobs {
		if v > best {
			best = v
		}
	}
	if best < 0 {
		return 0, ErrNoCheckpoint
	}
	return best, nil
}

func (b *rejectingBackend) SetComm(comm *mpi.Comm) {}
func (b *rejectingBackend) SetRank(rank int)       {}

// TestRejectedCheckpointKeepsLastGood is the regression test for the
// rejection path: a version the data backend discards must never replace
// the previous good version — neither in the context's latest-version
// cache nor in what a later recovery restores.
func TestRejectedCheckpointKeepsLastGood(t *testing.T) {
	backend := newRejectingBackend(3)
	runRanks(t, 1, func(p *mpi.Proc) error {
		comm := p.World().CommWorld()
		ctx, err := MakeContext(p, comm, backend, Config{Interval: 2, RestoreSurvivors: true})
		if err != nil {
			return err
		}
		x := kokkos.NewF64("x", 4)
		for iter := 0; iter < 4; iter++ {
			err := ctx.Checkpoint("loop", iter, []kokkos.View{x}, func() error {
				for i := 0; i < x.Len(); i++ {
					x.Set(i, float64(iter))
				}
				return nil
			})
			if err != nil {
				return fmt.Errorf("iter %d: %v", iter, err)
			}
		}
		// Versions 1 and 3 match the interval; 3 was rejected, so the last
		// good version must still be 1.
		if got := ctx.LatestVersion(); got != 1 {
			return fmt.Errorf("latest = %d, want 1", got)
		}
		if _, ok := backend.blobs[3]; ok {
			return fmt.Errorf("rejected version 3 was stored anyway")
		}
		// A fresh context (relaunch) must arm recovery on version 1 and
		// restore the iter-1 data, not the rejected iter-3 data.
		ctx2, err := MakeContext(p, comm, backend, Config{Interval: 2, RestoreSurvivors: true})
		if err != nil {
			return err
		}
		if !ctx2.RecoveryPending() || ctx2.LatestVersion() != 1 {
			return fmt.Errorf("recovery armed=%v latest=%d, want true/1", ctx2.RecoveryPending(), ctx2.LatestVersion())
		}
		y := kokkos.NewF64("x", 4)
		executed := false
		if err := ctx2.Checkpoint("loop", 1, []kokkos.View{y}, func() error {
			executed = true
			return nil
		}); err != nil {
			return err
		}
		if executed {
			return fmt.Errorf("recovery iteration executed the body")
		}
		if y.At(0) != 1.0 {
			return fmt.Errorf("restored x[0] = %v, want 1 (the last good version)", y.At(0))
		}
		return nil
	})
}
