package kr

import (
	"sync"
	"testing"

	"repro/internal/fenix"
	"repro/internal/kokkos"
	"repro/internal/mpi"
	"repro/internal/veloc"
)

// runFenixRanks runs body under Fenix on a fresh world.
func runFenixRanks(t *testing.T, n, spares int, body fenix.Body) []error {
	t.Helper()
	w := newTestWorld(n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(p *mpi.Proc) {
			defer wg.Done()
			defer func() { recover() }() // absorb Exit unwinds
			errs[p.Rank()] = fenix.Run(p, fenix.Config{Spares: spares}, body)
		}(w.Proc(i))
	}
	wg.Wait()
	return errs
}

func newTestWorld(n int) *mpi.World {
	return mpi.NewWorld(clusterOf(n), n, 1, false, 1, 0)
}

// TestCollectiveModeBreaksAfterRepair reproduces the paper's motivation
// for the non-collective VeloC mode (Section V): a collective-mode client
// holds the original resilient communicator; after a failure that
// communicator is revoked, so every internal collective the client
// attempts fails. The single-mode client with the manual reduction keeps
// working.
func TestCollectiveModeBreaksAfterRepair(t *testing.T) {
	const n, spares = 4, 1
	var mu sync.Mutex
	sawRevoked := false
	singleOK := false

	errs := runFenixRanks(t, n, spares, func(ctx *fenix.Context) error {
		p := ctx.Proc()
		x := kokkos.NewF64("x", 4)

		if ctx.Role() == fenix.RoleInitial {
			// Build BOTH clients against the initial resilient comm.
			collClient, err := veloc.New(p, veloc.Config{Mode: veloc.Collective, Comm: ctx.Comm()})
			if err != nil {
				return err
			}
			collBackend := NewVeloCBackend(collClient, "coll")
			blob := serializeViews([]kokkos.View{x})
			if err := collBackend.Checkpoint(0, blob, len(blob)); err != nil {
				return err
			}

			if p.Rank() == 1 {
				p.Exit()
			}
			if err := ctx.Comm().Barrier(p); err != nil {
				// Stash the collective client for the post-recovery probe.
				probe := func() {
					_, verr := collClient.LatestVersion("coll")
					if mpi.IsRevoked(verr) || mpi.IsProcessFailure(verr) {
						mu.Lock()
						sawRevoked = true
						mu.Unlock()
					}
				}
				probeStash.Store(p.Rank(), probe)
				return err // jump to Fenix recovery
			}
			return nil
		}

		// Post-recovery: the collective-mode client is now unusable...
		if v, ok := probeStash.Load(p.Rank()); ok {
			v.(func())()
		}
		// ...but a single-mode client with the manual reduction over the
		// REPAIRED communicator works.
		single, err := veloc.New(p, veloc.Config{Mode: veloc.Single, Rank: ctx.Rank(), RankSet: true})
		if err != nil {
			return err
		}
		backend := NewVeloCBackend(single, "single")
		blob := serializeViews([]kokkos.View{x})
		if err := backend.Checkpoint(1, blob, len(blob)); err != nil {
			return err
		}
		if _, err := backend.LatestVersion(ctx.Comm()); err != nil {
			return err
		}
		mu.Lock()
		singleOK = true
		mu.Unlock()
		return nil
	})
	for i, e := range errs {
		if e != nil {
			t.Fatalf("world rank %d: %v", i, e)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if !sawRevoked {
		t.Fatal("collective-mode client survived the repair; the paper's modification would be unnecessary")
	}
	if !singleOK {
		t.Fatal("single-mode client did not work after repair")
	}
}

var probeStash sync.Map

// TestFullFig4PatternUnderFenix is the end-to-end Figure 4 flow at the kr
// package level: MakeContext on initial ranks, Reset on survivors, fresh
// MakeContext on the recovered spare, loop resumption from
// latest_version().
func TestFullFig4PatternUnderFenix(t *testing.T) {
	const n, spares, iters, interval = 4, 1, 12, 4 // n application ranks
	const worldN = n + spares
	type holder struct {
		ctx *Context
		x   *kokkos.F64View
	}
	holders := make([]*holder, worldN)
	var mu sync.Mutex
	finals := map[int]float64{}

	errs := runFenixRanks(t, worldN, spares, func(fctx *fenix.Context) error {
		p := fctx.Proc()
		var h *holder
		if fctx.Role() == fenix.RoleSurvivor && holders[p.Rank()] != nil {
			h = holders[p.Rank()]
			if err := h.ctx.Reset(fctx.Comm()); err != nil {
				return err
			}
		} else {
			client, err := veloc.New(p, veloc.Config{Mode: veloc.Single, Rank: fctx.Rank(), RankSet: true})
			if err != nil {
				return err
			}
			ctx, err := MakeContext(p, fctx.Comm(), NewVeloCBackend(client, "fig4"),
				Config{Interval: interval, RestoreSurvivors: true})
			if err != nil {
				return err
			}
			h = &holder{ctx: ctx, x: kokkos.NewF64("x", 2)}
			h.x.Set(0, float64(fctx.Rank()))
			holders[p.Rank()] = h
		}

		start := 0
		if h.ctx.RecoveryPending() {
			start = h.ctx.LatestVersion()
		}
		for i := start; i < iters; i++ {
			if fctx.Role() == fenix.RoleInitial && fctx.Rank() == 2 && i == 6 {
				p.Exit()
			}
			err := h.ctx.Checkpoint("loop", i, []kokkos.View{h.x}, func() error {
				sum, err := fctx.Comm().AllreduceF64(p, []float64{h.x.At(0)}, mpi.OpSum)
				if err != nil {
					return err
				}
				h.x.Set(0, h.x.At(0)+0.125*sum[0])
				return nil
			})
			if err = fctx.Check(err); err != nil {
				return err
			}
		}
		mu.Lock()
		finals[fctx.Rank()] = h.x.At(0)
		mu.Unlock()
		return nil
	})
	for i, e := range errs {
		if e != nil {
			t.Fatalf("world rank %d: %v", i, e)
		}
	}

	// Reference: failure-free sequential emulation.
	ref := make([]float64, n)
	for r := range ref {
		ref[r] = float64(r)
	}
	for i := 0; i < iters; i++ {
		var sum float64
		for _, v := range ref {
			sum += v
		}
		for r := range ref {
			ref[r] += 0.125 * sum
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for r := 0; r < n; r++ {
		got, ok := finals[r]
		if !ok {
			t.Fatalf("logical rank %d missing", r)
		}
		if got != ref[r] {
			t.Fatalf("logical rank %d: got %v want %v", r, got, ref[r])
		}
	}
}
