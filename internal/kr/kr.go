// Package kr reproduces Kokkos Resilience, the control-flow resilience
// layer of the paper's integrated system. Applications wrap each
// checkpoint region (typically a loop body) in Checkpoint; the context
// decides, per iteration, whether to execute the region, restore its data
// from a checkpoint (recovery), and/or write a new checkpoint through the
// configured data backend.
//
// The package includes the two modifications the paper contributes
// (Section V):
//
//   - The VeloC backend can be initialized in non-collective (single) mode
//     and performs the globally-best-checkpoint reduction manually over
//     whatever communicator the context currently holds, making it
//     compatible with Fenix's replaceable resilient communicator.
//   - Context.Reset accepts a new communicator: it clears the checkpoint
//     metadata cache (a checkpoint finished locally may not have finished
//     globally), updates the cached rank ID in itself and in VeloC, and
//     re-arms recovery — the operations Kokkos Resilience needs after a
//     Fenix repair.
//
// View capture mirrors Kokkos Resilience's automatic detection: every view
// reachable from the region is classified as checkpointed (first sight of
// its allocation), skipped (duplicate capture of an allocation already
// checkpointed), or alias (user-declared swap-space labels), reproducing
// the census in the paper's Figure 7.
package kr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/kokkos"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/trace"
)

// ErrNoCheckpoint is returned when recovery is requested but no version
// exists.
var ErrNoCheckpoint = errors.New("kr: no checkpoint available")

// ErrCorruptBlob is returned when a checkpoint blob fails the KR codec's
// own checksum — an integrity layer independent of (and above) the data
// backend's, so a flip that slips past VeloC is still caught before the
// views are overwritten with garbage.
var ErrCorruptBlob = errors.New("kr: checkpoint blob failed codec checksum")

// ErrRejected is returned by a backend whose integrity verification
// discarded the version before commit (see veloc.ErrRejected). Context
// treats it as "this checkpoint did not happen": the previous good
// version stays latest and the run carries on.
var ErrRejected = errors.New("kr: checkpoint version rejected by data backend")

// Backend is a data-resilience backend (VeloC or Fenix IMR).
type Backend interface {
	// Checkpoint persists blob as the given version. simBytes is the
	// blob's size in the simulation's cost model (see kokkos.View.SimBytes).
	Checkpoint(version int, blob []byte, simBytes int) error
	// Restore retrieves the blob for version.
	Restore(version int) ([]byte, error)
	// LatestVersion returns the newest version restorable at every rank of
	// comm, or ErrNoCheckpoint.
	LatestVersion(comm *mpi.Comm) (int, error)
	// SetComm installs a replacement communicator after a repair.
	SetComm(comm *mpi.Comm)
	// SetRank updates the logical rank identity (shrunk continuation).
	SetRank(rank int)
}

// Config configures a Context.
type Config struct {
	// Interval checkpoints every Interval-th iteration (counting from 1:
	// iterations Interval-1, 2*Interval-1, ... are checkpointed). Ignored
	// if Filter is set.
	Interval int
	// Filter, if non-nil, decides which iterations to checkpoint.
	Filter func(iter int) bool
	// RestoreSurvivors controls whether ranks whose memory survived the
	// failure restore checkpoint data during recovery. Setting it false
	// enables the paper's partial-rollback strategy: survivors keep their
	// in-progress data and only the recovered rank rolls back.
	RestoreSurvivors bool
	// Recovered reports whether this rank's memory was lost (Fenix role
	// Recovered). Consulted only when RestoreSurvivors is false.
	Recovered func() bool
	// Localized selects message-log-backed localized recovery (DESIGN.md
	// §12): on the restored iteration only the Recovered rank rolls back,
	// and — unlike partial rollback — the region body is NOT re-executed
	// collectively. The recovered rank re-executes forward alone, served
	// by the message log, while survivors skip already-executed iterations
	// (the session layer drives the skip and calls SkipRestore). Requires
	// RestoreSurvivors=false and a Recovered callback. When the message
	// log has been disabled (shrink compaction), recovery degrades to full
	// rollback: every rank restores and communication stays aligned.
	Localized bool
}

func (c Config) shouldCheckpoint(iter int) bool {
	if c.Filter != nil {
		return c.Filter(iter)
	}
	if c.Interval <= 0 {
		return false
	}
	return (iter+1)%c.Interval == 0
}

// Context is one rank's Kokkos Resilience handle.
type Context struct {
	p       *mpi.Proc
	comm    *mpi.Comm
	backend Backend
	cfg     Config

	latest          int // newest globally-available version; -1 if none
	recoveryPending bool
	aliases         map[string]bool
	census          Census
}

// perRegionOverhead is the control-flow bookkeeping cost of one checkpoint
// region invocation, in seconds; perViewOverhead is added per captured
// view. These are the small costs that make KR "no or negligible overhead"
// in Figure 5.
const (
	perRegionOverhead = 2e-5
	perViewOverhead   = 1e-6
)

// MakeContext creates a context over comm using the given backend. It
// queries the backend for existing checkpoints so that a relaunched
// (fail-restart) process resumes transparently: LatestVersion tells the
// application where to restart its loop.
func MakeContext(p *mpi.Proc, comm *mpi.Comm, backend Backend, cfg Config) (*Context, error) {
	if cfg.RestoreSurvivors && cfg.Recovered != nil {
		return nil, errors.New("kr: Recovered callback only meaningful with RestoreSurvivors=false")
	}
	if cfg.Localized && (cfg.RestoreSurvivors || cfg.Recovered == nil) {
		return nil, errors.New("kr: Localized requires RestoreSurvivors=false and a Recovered callback")
	}
	ctx := &Context{p: p, comm: comm, backend: backend, cfg: cfg, latest: -1, aliases: make(map[string]bool)}
	// Wire the communicator through to the backend from the start, not only
	// on Reset: the VeloC flush scheduler derives its PFS congestion share
	// from the comm size, and a fresh context (initial entry, or a recovered
	// replacement building its session from scratch) otherwise leaves the
	// client comm-less until the first repair.
	backend.SetComm(comm)
	p.ChargeTime(trace.ResilienceInit, perRegionOverhead)
	p.Event(obs.LayerKR, obs.EvKRInit, obs.KV("comm_size", comm.Size()))
	v, err := backend.LatestVersion(comm)
	switch {
	case err == nil:
		ctx.latest = v
		ctx.recoveryPending = true
		p.Event(obs.LayerKR, obs.EvKRRecoveryArmed, obs.KV("version", v))
	case errors.Is(err, ErrNoCheckpoint):
		// Fresh start.
	default:
		return nil, err
	}
	return ctx, nil
}

// Reset re-arms the context after a Fenix repair: install the new
// communicator, propagate it (and the rank ID) to the backend, drop the
// cached checkpoint metadata, and re-query the globally-best version.
func (c *Context) Reset(newComm *mpi.Comm) error {
	c.comm = newComm
	c.backend.SetComm(newComm)
	c.backend.SetRank(newComm.Rank(c.p))
	c.latest = -1
	c.recoveryPending = false
	c.p.ChargeTime(trace.ResilienceInit, perRegionOverhead)
	c.p.Event(obs.LayerKR, obs.EvKRReset, obs.KV("comm_size", newComm.Size()))
	v, err := c.backend.LatestVersion(newComm)
	switch {
	case err == nil:
		c.latest = v
		c.recoveryPending = true
		c.p.Event(obs.LayerKR, obs.EvKRRecoveryArmed, obs.KV("version", v))
		return nil
	case errors.Is(err, ErrNoCheckpoint):
		return nil
	default:
		return err
	}
}

// LatestVersion returns the newest globally-available checkpoint version,
// or -1 if none exists. After a failure the application restarts its loop
// from this iteration (Figure 4).
func (c *Context) LatestVersion() int { return c.latest }

// RecoveryPending reports whether the next matching Checkpoint call will
// restore instead of execute.
func (c *Context) RecoveryPending() bool { return c.recoveryPending }

// SkipRestore disarms a pending recovery without touching view data. The
// session layer calls it for a survivor that skips the restored iteration
// under localized recovery: its live data already reflects that iteration,
// so the pending restore must be consumed, not executed.
func (c *Context) SkipRestore() { c.recoveryPending = false }

// Comm returns the context's current communicator.
func (c *Context) Comm() *mpi.Comm { return c.comm }

// DeclareAliases marks `alias` as a user-declared alias of `primary`:
// the alias view is known to contain the same data (e.g. the back buffer
// of a swap pair) and is never checkpointed.
func (c *Context) DeclareAliases(primary, alias string) {
	_ = primary // recorded for documentation; exclusion is by alias label
	c.aliases[alias] = true
}

// Checkpoint wraps one iteration of a checkpoint region: the analogue of
// KokkosResilience::checkpoint(ctx, label, iter, lambda). views lists the
// Kokkos views the region's lambda captures (the simulation's stand-in for
// automatic capture detection). Behaviour per call:
//
//   - If recovery is pending and iter equals the restored version, the
//     region body is skipped and the views are overwritten from the
//     checkpoint (for survivors only if RestoreSurvivors).
//   - Otherwise the body runs.
//   - If the iteration matches the checkpoint filter, the captured views
//     are serialized and handed to the data backend.
func (c *Context) Checkpoint(label string, iter int, views []kokkos.View, body func() error) error {
	c.p.Inject("kr.region")
	cap := CensusOf(views, c.aliases)
	c.census = cap
	c.p.ChargeTime(trace.ResilienceInit, perRegionOverhead+perViewOverhead*float64(len(views)))
	c.p.Obs().Registry().Counter(obs.MKRRegions).Inc()

	if c.recoveryPending && iter == c.latest {
		c.recoveryPending = false
		if c.cfg.RestoreSurvivors || (c.cfg.Localized && !c.p.MsgLogActive()) {
			// Full rollback: every rank restores and the region body is
			// skipped for this iteration (its effects are the restored
			// data), keeping all ranks' communication aligned. Localized
			// recovery degrades to this path when the message log was
			// disabled (shrink compaction changed slot identity).
			c.p.Event(obs.LayerKR, obs.EvKRRestoreBegin,
				obs.KV("label", label), obs.KV("version", iter), obs.KV("views", len(cap.checkpointed)))
			blob, err := c.backend.Restore(iter)
			if err != nil {
				return err
			}
			if err := deserializeViews(blob, cap.checkpointed); err != nil {
				return err
			}
			c.p.Event(obs.LayerKR, obs.EvKRRestoreEnd,
				obs.KV("label", label), obs.KV("version", iter))
			return nil
		}
		if c.cfg.Localized {
			// Localized recovery: only the recovered rank restores, and the
			// region body is NOT re-executed collectively — the restored
			// data is this iteration's effect, and the recovered rank
			// re-executes forward alone, served by the message log, while
			// survivors pause in place (the session layer skips their
			// executed iterations via SkipRestore, so a survivor normally
			// never reaches this branch; one that does executes live).
			if c.cfg.Recovered() {
				c.p.Event(obs.LayerKR, obs.EvKRRestoreBegin,
					obs.KV("label", label), obs.KV("version", iter),
					obs.KV("views", len(cap.checkpointed)), obs.KV("mode", "localized"))
				blob, err := c.backend.Restore(iter)
				if err != nil {
					return err
				}
				if err := deserializeViews(blob, cap.checkpointed); err != nil {
					return err
				}
				c.p.Event(obs.LayerKR, obs.EvKRRestoreEnd,
					obs.KV("label", label), obs.KV("version", iter), obs.KV("mode", "localized"))
				return nil
			}
		} else if c.cfg.Recovered != nil && c.cfg.Recovered() {
			// Partial rollback: only the recovered rank rolls its data back,
			// then ALL ranks execute the body — survivors with their newer
			// in-progress data, the recovered rank with checkpoint data — so
			// collectives stay aligned while the solver re-converges.
			c.p.Event(obs.LayerKR, obs.EvKRRestoreBegin,
				obs.KV("label", label), obs.KV("version", iter), obs.KV("views", len(cap.checkpointed)))
			blob, err := c.backend.Restore(iter)
			if err != nil {
				return err
			}
			if err := deserializeViews(blob, cap.checkpointed); err != nil {
				return err
			}
			c.p.Event(obs.LayerKR, obs.EvKRRestoreEnd,
				obs.KV("label", label), obs.KV("version", iter))
		}
	}

	if err := body(); err != nil {
		return err
	}

	if c.cfg.shouldCheckpoint(iter) {
		blob := serializeViews(cap.checkpointed)
		simBytes := 0
		for _, v := range cap.checkpointed {
			simBytes += v.SimBytes()
		}
		c.p.Event(obs.LayerKR, obs.EvKRCheckpointBegin,
			obs.KV("label", label), obs.KV("version", iter),
			obs.KV("views", len(cap.checkpointed)), obs.KV("bytes", simBytes))
		// A kill here models a failure inside the checkpoint region after
		// the body ran but before the data backend commits the version.
		c.p.Inject("kr.commit")
		// Validate the blob against the codec checksum before handing it to
		// the data backend: a flip that hit the serialized bytes in memory
		// must never be committed as a restorable version.
		if !blobChecksumOK(blob) {
			c.p.Event(obs.LayerKR, obs.EvKRCheckpointRejected,
				obs.KV("label", label), obs.KV("version", iter), obs.KV("stage", "codec"))
			return fmt.Errorf("%w: %s version %d", ErrCorruptBlob, label, iter)
		}
		if err := c.backend.Checkpoint(iter, blob, simBytes); err != nil {
			if errors.Is(err, ErrRejected) {
				// The data layer's verification discarded this version
				// (persistent blob corruption in scratch). The previous good
				// version remains latest; the next matching iteration writes a
				// fresh checkpoint, so the run carries on with a wider
				// recompute window instead of aborting.
				c.p.Event(obs.LayerKR, obs.EvKRCheckpointRejected,
					obs.KV("label", label), obs.KV("version", iter), obs.KV("stage", "backend"))
				return nil
			}
			return err
		}
		c.latest = iter
		// Feed the message log's GC watermark: once every slot has
		// committed a version, entries from earlier epochs are unreachable
		// and can be trimmed. No-op when logging is off.
		c.p.MsgLogCommit(c.comm.Rank(c.p), iter)
		c.p.Event(obs.LayerKR, obs.EvKRCheckpointEnd,
			obs.KV("label", label), obs.KV("version", iter), obs.KV("bytes", simBytes))
	}
	return nil
}

// Census returns the view classification of the most recent Checkpoint
// call (the data behind the paper's Figure 7).
func (c *Context) Census() Census { return c.census }

// serializeViews encodes views as: u32 crc32 (IEEE, over the rest), u32
// count, then per view u32 label len, label, u32 data len, data. The CRC
// is the KR codec's own integrity check, verified before every commit and
// restore independently of the data backend's blob checksum.
func serializeViews(views []kokkos.View) []byte {
	out := make([]byte, 4)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(views)))
	out = append(out, hdr[:]...)
	for _, v := range views {
		label := v.Label()
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(label)))
		out = append(out, hdr[:]...)
		out = append(out, label...)
		data := v.Serialize()
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(data)))
		out = append(out, hdr[:]...)
		out = append(out, data...)
	}
	binary.LittleEndian.PutUint32(out[:4], crc32.ChecksumIEEE(out[4:]))
	return out
}

// blobChecksumOK verifies a serialized view blob against its codec CRC.
func blobChecksumOK(blob []byte) bool {
	return len(blob) >= 8 && crc32.ChecksumIEEE(blob[4:]) == binary.LittleEndian.Uint32(blob)
}

// deserializeViews restores blob into views, matching by label.
func deserializeViews(blob []byte, views []kokkos.View) error {
	if len(blob) < 8 {
		return errors.New("kr: truncated checkpoint blob")
	}
	if !blobChecksumOK(blob) {
		return ErrCorruptBlob
	}
	byLabel := make(map[string]kokkos.View, len(views))
	for _, v := range views {
		byLabel[v.Label()] = v
	}
	count := int(binary.LittleEndian.Uint32(blob[4:]))
	off := 8
	seen := 0
	for i := 0; i < count; i++ {
		if off+4 > len(blob) {
			return errors.New("kr: truncated label header")
		}
		n := int(binary.LittleEndian.Uint32(blob[off:]))
		off += 4
		if off+n > len(blob) {
			return errors.New("kr: truncated label")
		}
		label := string(blob[off : off+n])
		off += n
		if off+4 > len(blob) {
			return errors.New("kr: truncated data header")
		}
		dn := int(binary.LittleEndian.Uint32(blob[off:]))
		off += 4
		if off+dn > len(blob) {
			return errors.New("kr: truncated data")
		}
		v, ok := byLabel[label]
		if !ok {
			return fmt.Errorf("kr: checkpoint contains unknown view %q", label)
		}
		if err := v.Deserialize(blob[off : off+dn]); err != nil {
			return err
		}
		off += dn
		seen++
	}
	if seen != len(views) {
		return fmt.Errorf("kr: checkpoint restored %d of %d views", seen, len(views))
	}
	return nil
}
