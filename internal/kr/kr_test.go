package kr

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/kokkos"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/veloc"
)

func quietMachine() *sim.Machine {
	m := sim.DefaultMachine()
	m.NoiseAmplitude = 0
	return m
}

func runRanks(t *testing.T, n int, f func(p *mpi.Proc) error) *mpi.World {
	t.Helper()
	cl := cluster.New(n, quietMachine())
	w := mpi.NewWorld(cl, n, 1, false, 1, 0)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(p *mpi.Proc) {
			defer wg.Done()
			defer func() { recover() }()
			errs[p.Rank()] = f(p)
		}(w.Proc(i))
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			t.Fatalf("rank %d: %v", i, e)
		}
	}
	return w
}

// --- census ---

func TestCensusClassification(t *testing.T) {
	x := kokkos.NewF64("x", 100)        // checkpointed
	xDup := x.Ref("x_captured")         // skipped (same allocation)
	xOld := kokkos.NewF64("x_old", 100) // alias (declared)
	v := kokkos.NewF64("v", 50)         // checkpointed

	c := CensusOf([]kokkos.View{x, xDup, xOld, v}, map[string]bool{"x_old": true})
	ck, al, sk := c.Counts()
	if ck != 2 || al != 1 || sk != 1 {
		t.Fatalf("counts = %d/%d/%d", ck, al, sk)
	}
	ckB, alB, skB := c.Bytes()
	if ckB != 800+400 || alB != 800 || skB != 800 {
		t.Fatalf("bytes = %d/%d/%d", ckB, alB, skB)
	}
	if c.TotalViews() != 4 || c.TotalBytes() != 2800 {
		t.Fatalf("totals = %d views %d bytes", c.TotalViews(), c.TotalBytes())
	}
	cv := c.CheckpointedViews()
	if len(cv) != 2 || cv[0].Label() != "x" || cv[1].Label() != "v" {
		t.Fatalf("checkpointed views wrong: %v", cv)
	}
}

func TestCensusDryViews(t *testing.T) {
	big := kokkos.NewF64Dry("big", 400, 400, 400)
	dup := big.Ref("big2")
	c := CensusOf([]kokkos.View{big, dup}, nil)
	ck, _, sk := c.Counts()
	if ck != 1 || sk != 1 {
		t.Fatalf("dry census counts %d/%d", ck, sk)
	}
	ckB, _, skB := c.Bytes()
	want := 8 * 400 * 400 * 400
	if ckB != want || skB != want {
		t.Fatalf("dry census bytes %d/%d", ckB, skB)
	}
}

func TestCensusEmptyAndClassString(t *testing.T) {
	c := CensusOf(nil, nil)
	if c.TotalViews() != 0 || c.TotalBytes() != 0 {
		t.Fatal("empty census not empty")
	}
	if Checkpointed.String() != "Checkpointed" || Alias.String() != "Alias" || Skipped.String() != "Skipped" {
		t.Fatal("class strings wrong")
	}
}

// --- serialization ---

func TestViewBlobRoundTrip(t *testing.T) {
	a := kokkos.NewF64("a", 4)
	b := kokkos.NewI32("b", 3)
	for i := 0; i < 4; i++ {
		a.Set(i, float64(i)*1.5)
	}
	for i := 0; i < 3; i++ {
		b.Set(i, int32(-i))
	}
	blob := serializeViews([]kokkos.View{a, b})

	a2 := kokkos.NewF64("a", 4)
	b2 := kokkos.NewI32("b", 3)
	if err := deserializeViews(blob, []kokkos.View{a2, b2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if a2.At(i) != float64(i)*1.5 {
			t.Fatalf("a[%d] = %v", i, a2.At(i))
		}
	}
	for i := 0; i < 3; i++ {
		if b2.At(i) != int32(-i) {
			t.Fatalf("b[%d] = %v", i, b2.At(i))
		}
	}
}

func TestDeserializeUnknownView(t *testing.T) {
	a := kokkos.NewF64("a", 2)
	blob := serializeViews([]kokkos.View{a})
	other := kokkos.NewF64("other", 2)
	if err := deserializeViews(blob, []kokkos.View{other}); err == nil {
		t.Fatal("unknown view accepted")
	}
}

func TestDeserializeTruncated(t *testing.T) {
	a := kokkos.NewF64("a", 2)
	blob := serializeViews([]kokkos.View{a})
	for _, n := range []int{0, 3, 5, len(blob) - 1} {
		if err := deserializeViews(blob[:n], []kokkos.View{a}); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
}

// --- context over VeloC ---

func makeVeloCCtx(t *testing.T, p *mpi.Proc, comm *mpi.Comm, mode veloc.Mode, cfg Config) *Context {
	t.Helper()
	client, err := veloc.New(p, veloc.Config{Mode: mode, Comm: comm})
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := MakeContext(p, comm, NewVeloCBackend(client, "test"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestCheckpointRegionExecutesBody(t *testing.T) {
	runRanks(t, 2, func(p *mpi.Proc) error {
		ctx := makeVeloCCtx(t, p, p.World().CommWorld(), veloc.Collective, Config{Interval: 2, RestoreSurvivors: true})
		if ctx.LatestVersion() != -1 {
			t.Errorf("fresh context latest = %d", ctx.LatestVersion())
		}
		x := kokkos.NewF64("x", 8)
		ran := 0
		for i := 0; i < 4; i++ {
			err := ctx.Checkpoint("loop", i, []kokkos.View{x}, func() error {
				ran++
				x.Set(0, float64(i))
				return nil
			})
			if err != nil {
				return err
			}
		}
		if ran != 4 {
			t.Errorf("body ran %d times", ran)
		}
		if ctx.LatestVersion() != 3 { // iterations 1 and 3 checkpoint (interval 2)
			t.Errorf("latest = %d", ctx.LatestVersion())
		}
		return nil
	})
}

func TestRecoveryRestoresAndSkipsBody(t *testing.T) {
	runRanks(t, 2, func(p *mpi.Proc) error {
		comm := p.World().CommWorld()
		x := kokkos.NewF64("x", 8)

		ctx := makeVeloCCtx(t, p, comm, veloc.Collective, Config{Interval: 3, RestoreSurvivors: true})
		for i := 0; i < 6; i++ {
			if err := ctx.Checkpoint("loop", i, []kokkos.View{x}, func() error {
				x.Set(0, float64(i*10))
				return nil
			}); err != nil {
				return err
			}
		}
		// x now holds 50; checkpoints exist at iters 2 and 5 (value 20, 50).

		// Simulate a relaunch: fresh context discovers version 5 and the
		// loop resumes there; the body at iter 5 is skipped, data restored.
		x.Set(0, -1)
		ctx2 := makeVeloCCtx(t, p, comm, veloc.Collective, Config{Interval: 3, RestoreSurvivors: true})
		if !ctx2.RecoveryPending() || ctx2.LatestVersion() != 5 {
			t.Errorf("recovery state: pending=%v latest=%d", ctx2.RecoveryPending(), ctx2.LatestVersion())
		}
		ran := false
		if err := ctx2.Checkpoint("loop", 5, []kokkos.View{x}, func() error {
			ran = true
			return nil
		}); err != nil {
			return err
		}
		if ran {
			t.Error("body ran during recovery iteration")
		}
		if x.At(0) != 50 {
			t.Errorf("restored x = %v, want 50", x.At(0))
		}
		if ctx2.RecoveryPending() {
			t.Error("recovery still pending after restore")
		}
		return nil
	})
}

func TestPartialRollbackSkipsSurvivorRestore(t *testing.T) {
	runRanks(t, 2, func(p *mpi.Proc) error {
		comm := p.World().CommWorld()
		x := kokkos.NewF64("x", 4)
		ctx := makeVeloCCtx(t, p, comm, veloc.Collective, Config{Interval: 1, RestoreSurvivors: true})
		if err := ctx.Checkpoint("loop", 0, []kokkos.View{x}, func() error {
			x.Set(0, 100)
			return nil
		}); err != nil {
			return err
		}
		x.Set(0, 999) // in-progress data beyond the checkpoint

		recovered := p.Rank() == 1
		ctx2 := makeVeloCCtx(t, p, comm, veloc.Collective, Config{
			Interval: 1, RestoreSurvivors: false,
			Recovered: func() bool { return recovered },
		})
		ran := false
		if err := ctx2.Checkpoint("loop", 0, []kokkos.View{x}, func() error { ran = true; return nil }); err != nil {
			return err
		}
		if !ran {
			t.Error("all ranks must run the body under partial rollback (collective alignment)")
		}
		if recovered {
			if x.At(0) != 100 {
				t.Errorf("recovered rank x = %v, want 100 (restored)", x.At(0))
			}
		} else if x.At(0) != 999 {
			t.Errorf("survivor x = %v, want 999 (kept)", x.At(0))
		}
		return nil
	})
}

func TestSingleModeUsesManualReduction(t *testing.T) {
	runRanks(t, 3, func(p *mpi.Proc) error {
		comm := p.World().CommWorld()
		client, err := veloc.New(p, veloc.Config{Mode: veloc.Single, Rank: comm.Rank(p), RankSet: true})
		if err != nil {
			return err
		}
		backend := NewVeloCBackend(client, "t")
		x := kokkos.NewF64("x", 2)
		// Rank 2 checkpoints fewer versions.
		max := 4
		if p.Rank() == 2 {
			max = 2
		}
		for v := 0; v < max; v++ {
			blob := serializeViews([]kokkos.View{x})
			if err := backend.Checkpoint(v, blob, len(blob)); err != nil {
				return err
			}
		}
		ctx, err := MakeContext(p, comm, backend, Config{Interval: 1, RestoreSurvivors: true})
		if err != nil {
			return err
		}
		if ctx.LatestVersion() != 1 {
			t.Errorf("rank %d latest = %d, want 1 (global min)", p.Rank(), ctx.LatestVersion())
		}
		return nil
	})
}

func TestResetClearsMetadataAndRefetches(t *testing.T) {
	runRanks(t, 2, func(p *mpi.Proc) error {
		comm := p.World().CommWorld()
		client, err := veloc.New(p, veloc.Config{Mode: veloc.Single, Rank: comm.Rank(p), RankSet: true})
		if err != nil {
			return err
		}
		backend := NewVeloCBackend(client, "t")
		ctx, err := MakeContext(p, comm, backend, Config{Interval: 1, RestoreSurvivors: true})
		if err != nil {
			return err
		}
		x := kokkos.NewF64("x", 2)
		if err := ctx.Checkpoint("loop", 0, []kokkos.View{x}, func() error { return nil }); err != nil {
			return err
		}
		if ctx.LatestVersion() != 0 {
			t.Errorf("latest = %d", ctx.LatestVersion())
		}
		// Reset against the same comm (a repair would supply a new one):
		// metadata cache must be rebuilt from storage, recovery re-armed.
		if err := ctx.Reset(comm); err != nil {
			return err
		}
		if !ctx.RecoveryPending() || ctx.LatestVersion() != 0 {
			t.Errorf("after reset: pending=%v latest=%d", ctx.RecoveryPending(), ctx.LatestVersion())
		}
		return nil
	})
}

func TestDeclareAliasesExcludesFromBlob(t *testing.T) {
	runRanks(t, 1, func(p *mpi.Proc) error {
		ctx := makeVeloCCtx(t, p, p.World().CommWorld(), veloc.Collective, Config{Interval: 1, RestoreSurvivors: true})
		ctx.DeclareAliases("x", "x_swap")
		x := kokkos.NewF64("x", 4)
		xs := kokkos.NewF64("x_swap", 4)
		if err := ctx.Checkpoint("loop", 0, []kokkos.View{x, xs}, func() error { return nil }); err != nil {
			return err
		}
		_, al, _ := ctx.Census().Counts()
		if al != 1 {
			t.Errorf("alias count = %d", al)
		}
		if len(ctx.Census().CheckpointedViews()) != 1 {
			t.Errorf("checkpointed = %d views", len(ctx.Census().CheckpointedViews()))
		}
		return nil
	})
}

func TestBodyErrorPropagates(t *testing.T) {
	bodyErr := errors.New("body failed")
	runRanks(t, 1, func(p *mpi.Proc) error {
		ctx := makeVeloCCtx(t, p, p.World().CommWorld(), veloc.Collective, Config{Interval: 1, RestoreSurvivors: true})
		err := ctx.Checkpoint("loop", 0, nil, func() error { return bodyErr })
		if !errors.Is(err, bodyErr) {
			t.Errorf("err = %v", err)
		}
		return nil
	})
}

func TestFilterOverridesInterval(t *testing.T) {
	runRanks(t, 1, func(p *mpi.Proc) error {
		cfg := Config{
			Interval:         1,
			Filter:           func(iter int) bool { return iter == 2 },
			RestoreSurvivors: true,
		}
		ctx := makeVeloCCtx(t, p, p.World().CommWorld(), veloc.Collective, cfg)
		x := kokkos.NewF64("x", 2)
		for i := 0; i < 4; i++ {
			if err := ctx.Checkpoint("loop", i, []kokkos.View{x}, func() error { return nil }); err != nil {
				return err
			}
		}
		if ctx.LatestVersion() != 2 {
			t.Errorf("latest = %d, want 2 (filter)", ctx.LatestVersion())
		}
		return nil
	})
}

func TestConfigValidation(t *testing.T) {
	runRanks(t, 1, func(p *mpi.Proc) error {
		client, _ := veloc.New(p, veloc.Config{Mode: veloc.Single})
		_, err := MakeContext(p, p.World().CommWorld(), NewVeloCBackend(client, "x"),
			Config{RestoreSurvivors: true, Recovered: func() bool { return false }})
		if err == nil {
			t.Error("invalid config accepted")
		}
		return nil
	})
}

func TestShouldCheckpointIntervals(t *testing.T) {
	cfg := Config{Interval: 5}
	var got []int
	for i := 0; i < 20; i++ {
		if cfg.shouldCheckpoint(i) {
			got = append(got, i)
		}
	}
	want := []int{4, 9, 14, 19}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("checkpoint iters %v, want %v", got, want)
	}
	if (Config{}).shouldCheckpoint(0) {
		t.Fatal("zero interval should never checkpoint")
	}
}

func clusterOf(n int) *cluster.Cluster {
	return cluster.New(n, quietMachine())
}

func TestTwoIndependentContexts(t *testing.T) {
	// An application can manage two checkpoint sets (e.g. fields and
	// particles) with independent contexts, backends, and cadences.
	runRanks(t, 2, func(p *mpi.Proc) error {
		comm := p.World().CommWorld()
		mk := func(name string, interval int) *Context {
			client, err := veloc.New(p, veloc.Config{Mode: veloc.Single, Rank: comm.Rank(p), RankSet: true})
			if err != nil {
				t.Fatal(err)
			}
			ctx, err := MakeContext(p, comm, NewVeloCBackend(client, name), Config{Interval: interval, RestoreSurvivors: true})
			if err != nil {
				t.Fatal(err)
			}
			return ctx
		}
		fields := mk("fields", 2)
		parts := mk("particles", 3)

		a := kokkos.NewF64("a", 2)
		b := kokkos.NewF64("b", 2)
		for i := 0; i < 6; i++ {
			if err := fields.Checkpoint("f", i, []kokkos.View{a}, func() error {
				a.Set(0, float64(i))
				return nil
			}); err != nil {
				return err
			}
			if err := parts.Checkpoint("p", i, []kokkos.View{b}, func() error {
				b.Set(0, float64(i*100))
				return nil
			}); err != nil {
				return err
			}
		}
		if fields.LatestVersion() != 5 { // interval 2 -> 1,3,5
			t.Errorf("fields latest = %d", fields.LatestVersion())
		}
		if parts.LatestVersion() != 5 { // interval 3 -> 2,5
			t.Errorf("particles latest = %d", parts.LatestVersion())
		}
		// Restore each independently.
		a.Set(0, -1)
		b.Set(0, -1)
		f2 := mk("fields", 2)
		if f2.LatestVersion() != 5 {
			t.Errorf("recovered fields latest = %d", f2.LatestVersion())
		}
		if err := f2.Checkpoint("f", 5, []kokkos.View{a}, func() error { return nil }); err != nil {
			return err
		}
		if a.At(0) != 5 {
			t.Errorf("fields restored a=%v", a.At(0))
		}
		if b.At(0) != -1 {
			t.Errorf("particles state touched by fields restore: b=%v", b.At(0))
		}
		return nil
	})
}
