package mpi

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/trace"
)

func TestProcAccessors(t *testing.T) {
	w := testWorld(3)
	p := w.Proc(1)
	if p.Size() != 3 {
		t.Fatalf("Size = %d", p.Size())
	}
	if p.Machine() != w.Machine() {
		t.Fatal("Machine mismatch")
	}
	if p.Clock() == nil || p.RNG() == nil {
		t.Fatal("nil clock/rng")
	}
	if p.Exited() {
		t.Fatal("fresh proc marked exited")
	}
	before := p.Now()
	p.ChargeTime(trace.DataRecovery, 1.5)
	if p.Now() != before+1.5 {
		t.Fatalf("ChargeTime did not advance clock: %v", p.Now())
	}
	if p.Recorder().Get(trace.DataRecovery) != 1.5 {
		t.Fatal("ChargeTime did not record")
	}
	if w.Cluster() == nil {
		t.Fatal("nil cluster")
	}
}

func TestFailedErrorMessage(t *testing.T) {
	e := newFailedError([]int{3, 1})
	if !strings.Contains(e.Error(), "[1 3]") {
		t.Fatalf("error message %q not sorted", e.Error())
	}
}

func TestReduceOpString(t *testing.T) {
	if OpSum.String() != "sum" || OpMin.String() != "min" || OpMax.String() != "max" {
		t.Fatal("op strings wrong")
	}
	if ReduceOp(9).String() != "ReduceOp(9)" {
		t.Fatal("unknown op string wrong")
	}
}

func TestCartCommAccessor(t *testing.T) {
	w := testWorld(4)
	cart, err := NewCart(w.CommWorld(), []int{2, 2}, []bool{false, false})
	if err != nil {
		t.Fatal(err)
	}
	if cart.Comm() != w.CommWorld() {
		t.Fatal("Cart.Comm mismatch")
	}
}

func TestSendrecvF64(t *testing.T) {
	w := testWorld(2)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		other := 1 - p.Rank()
		out := []float64{float64(p.Rank()) + 0.25}
		in, err := c.SendrecvF64(p, other, 0, out, other, 0)
		if err != nil {
			return err
		}
		if in[0] != float64(other)+0.25 {
			t.Errorf("rank %d got %v", p.Rank(), in[0])
		}
		return nil
	})
}

func TestMailboxPending(t *testing.T) {
	w := testWorld(2)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		if p.Rank() == 0 {
			for i := 0; i < 3; i++ {
				if err := c.Send(p, 1, 9, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return c.Barrier(p)
		}
		if err := c.Barrier(p); err != nil {
			return err
		}
		key := msgKey{comm: c.ID(), src: 0, tag: 9}
		if got := p.mail.pending(key); got != 3 {
			t.Errorf("pending = %d, want 3", got)
		}
		for i := 0; i < 3; i++ {
			if _, err := c.Recv(p, 0, 9); err != nil {
				return err
			}
		}
		if got := p.mail.pending(key); got != 0 {
			t.Errorf("pending after drain = %d", got)
		}
		return nil
	})
}

func TestWorldRankOutOfRangePanics(t *testing.T) {
	w := testWorld(2)
	defer func() {
		if recover() == nil {
			t.Fatal("WorldRank(5) did not panic")
		}
	}()
	w.CommWorld().WorldRank(5)
}

func TestFailureDetectionLatency(t *testing.T) {
	m := quietMachine()
	m.FailureDetectionLatency = 0.5
	cl := cluster.New(2, m)
	w := NewWorld(cl, 2, 1, false, 1, 0)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		if p.Rank() == 1 {
			p.ComputeExact(2e9) // dies at t=1.0
			p.Exit()
		}
		_, err := c.Recv(p, 1, 0)
		if !IsProcessFailure(err) {
			t.Errorf("err = %v", err)
		}
		// Rank 0 cannot observe the failure before death (1.0) + 0.5.
		if p.Now() < 1.5 {
			t.Errorf("failure observed at %v, before detection floor 1.5", p.Now())
		}
		return nil
	})
}

func TestDetectionLatencyAppliesToCollectives(t *testing.T) {
	m := quietMachine()
	m.FailureDetectionLatency = 0.5
	cl := cluster.New(3, m)
	w := NewWorld(cl, 3, 1, false, 1, 0)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		if p.Rank() == 2 {
			p.ComputeExact(2e9)
			p.Exit()
		}
		err := c.Barrier(p)
		if !IsProcessFailure(err) {
			t.Errorf("err = %v", err)
		}
		if p.Now() < 1.5 {
			t.Errorf("collective failure observed at %v", p.Now())
		}
		return nil
	})
}
