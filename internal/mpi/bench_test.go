package mpi

import (
	"sync"
	"testing"
)

// Micro-benchmarks of the simulation substrate itself: real host time per
// simulated operation. They bound how large an experiment the harness can
// run, and catch regressions in the rendezvous/mailbox hot paths.

func benchWorld(n int) *World {
	return testWorld(n)
}

func BenchmarkP2PRoundTrip(b *testing.B) {
	w := benchWorld(2)
	c := w.CommWorld()
	payload := make([]byte, 1024)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p := w.Proc(0)
		for i := 0; i < b.N; i++ {
			if err := c.Send(p, 1, 0, payload); err != nil {
				b.Error(err)
				return
			}
			if _, err := c.Recv(p, 1, 1); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		p := w.Proc(1)
		for i := 0; i < b.N; i++ {
			if _, err := c.Recv(p, 0, 0); err != nil {
				b.Error(err)
				return
			}
			if err := c.Send(p, 0, 1, payload); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}

func benchCollective(b *testing.B, ranks int) {
	w := benchWorld(ranks)
	c := w.CommWorld()
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			buf := []float64{1, 2, 3, 4}
			for i := 0; i < b.N; i++ {
				if _, err := c.AllreduceF64(p, buf, OpSum); err != nil {
					b.Error(err)
					return
				}
			}
		}(w.Proc(r))
	}
	wg.Wait()
}

func BenchmarkAllreduce4(b *testing.B)  { benchCollective(b, 4) }
func BenchmarkAllreduce16(b *testing.B) { benchCollective(b, 16) }
func BenchmarkAllreduce64(b *testing.B) { benchCollective(b, 64) }

func BenchmarkBarrier16(b *testing.B) {
	w := benchWorld(16)
	c := w.CommWorld()
	var wg sync.WaitGroup
	for r := 0; r < 16; r++ {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				if err := c.Barrier(p); err != nil {
					b.Error(err)
					return
				}
			}
		}(w.Proc(r))
	}
	wg.Wait()
}

func BenchmarkEncodeDecodeF64(b *testing.B) {
	v := make([]float64, 4096)
	for i := range v {
		v[i] = float64(i) * 0.5
	}
	b.SetBytes(int64(8 * len(v)))
	for i := 0; i < b.N; i++ {
		enc := EncodeF64(v)
		if _, err := DecodeF64(enc); err != nil {
			b.Fatal(err)
		}
	}
}
