package mpi

import (
	"fmt"
	"sync"
	"testing"
)

// BenchmarkSimThroughput is the standing regression gate for the simulator
// hot path (see PERFORMANCE.md). Each iteration advances every rank of the
// world through one application step — an allreduce (the residual
// reduction every iterative solver in the evaluation performs) and a
// barrier — so one iteration costs 2·ranks rank-steps. Reported metrics:
//
//	events/sec    rank-steps (per-rank collective completions) per second
//	              of host time — the simulator's event throughput
//	ns/rank-step  host nanoseconds per rank-step
//	allocs/op     allocations per full-world step (pooling regressions
//	              show up here long before they show up in wall time)
//
// scripts/bench_gate.sh compares events/sec against the checked-in
// baseline and fails CI on a >20% regression.
func BenchmarkSimThroughput(b *testing.B) {
	for _, ranks := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			benchThroughput(b, ranks, EngineTree, ExecGoroutine)
		})
	}
}

// BenchmarkSimThroughputPool is the worker-pool execution mode at the
// widths where goroutine-per-rank scheduler pressure dominates
// (PERFORMANCE.md records the pool/goroutine ratio; scripts/bench_gate.sh
// gates it at 4096 ranks).
func BenchmarkSimThroughputPool(b *testing.B) {
	for _, ranks := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			benchThroughput(b, ranks, EngineTree, ExecPool)
		})
	}
}

// BenchmarkSimThroughputFlat is the legacy flat engine at the same sizes,
// kept so the tree engine's speedup stays measurable (PERFORMANCE.md
// records the ratio; the acceptance floor is 5x at 256 ranks). It also
// serves as bench_gate.sh's machine-speed probe for baseline
// normalization.
func BenchmarkSimThroughputFlat(b *testing.B) {
	for _, ranks := range []int{64, 256} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			benchThroughput(b, ranks, EngineFlat, ExecGoroutine)
		})
	}
}

func benchThroughput(b *testing.B, ranks int, e Engine, exec ExecMode) {
	w := benchWorld(ranks)
	w.SetEngine(e)
	w.SetExecMode(exec)
	c := w.CommWorld()
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			if w.pool != nil {
				p.poolEnter()
				defer p.poolExit()
			}
			buf := []float64{1, 2}
			for i := 0; i < b.N; i++ {
				if _, err := c.AllreduceF64(p, buf, OpSum); err != nil {
					b.Error(err)
					return
				}
				if err := c.Barrier(p); err != nil {
					b.Error(err)
					return
				}
			}
		}(w.Proc(r))
	}
	wg.Wait()
	b.StopTimer()
	rankSteps := float64(2*ranks) * float64(b.N)
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(rankSteps/sec, "events/sec")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/rankSteps, "ns/rank-step")
	}
}
