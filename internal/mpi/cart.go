package mpi

import "fmt"

// Cart is a Cartesian process topology over a communicator
// (MPI_Cart_create): ranks are mapped row-major onto an N-dimensional
// grid, with optional periodicity per dimension. It is a pure naming layer
// over the communicator — neighbor lookups translate to comm ranks.
type Cart struct {
	comm     *Comm
	dims     []int
	periodic []bool
}

// NewCart builds a topology over comm. The product of dims must equal the
// communicator size.
func NewCart(comm *Comm, dims []int, periodic []bool) (*Cart, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("mpi: cart needs at least one dimension")
	}
	if len(periodic) != len(dims) {
		return nil, fmt.Errorf("mpi: cart dims/periodic length mismatch %d vs %d", len(dims), len(periodic))
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("mpi: cart dimension %d invalid", d)
		}
		n *= d
	}
	if n != comm.Size() {
		return nil, fmt.Errorf("mpi: cart grid %v holds %d ranks, comm has %d", dims, n, comm.Size())
	}
	return &Cart{
		comm:     comm,
		dims:     append([]int(nil), dims...),
		periodic: append([]bool(nil), periodic...),
	}, nil
}

// Dims returns the grid shape.
func (c *Cart) Dims() []int { return append([]int(nil), c.dims...) }

// Comm returns the underlying communicator.
func (c *Cart) Comm() *Comm { return c.comm }

// Coords returns the grid coordinates of comm rank r (MPI_Cart_coords).
func (c *Cart) Coords(r int) []int {
	if r < 0 || r >= c.comm.Size() {
		panic(fmt.Sprintf("mpi: cart rank %d out of range", r))
	}
	out := make([]int, len(c.dims))
	for i := len(c.dims) - 1; i >= 0; i-- {
		out[i] = r % c.dims[i]
		r /= c.dims[i]
	}
	return out
}

// Rank returns the comm rank at the given grid coordinates
// (MPI_Cart_rank). Periodic dimensions wrap; non-periodic out-of-range
// coordinates return -1 (MPI_PROC_NULL).
func (c *Cart) Rank(coords []int) int {
	if len(coords) != len(c.dims) {
		panic(fmt.Sprintf("mpi: cart coords length %d, want %d", len(coords), len(c.dims)))
	}
	r := 0
	for i, x := range coords {
		d := c.dims[i]
		if x < 0 || x >= d {
			if !c.periodic[i] {
				return -1
			}
			x = ((x % d) + d) % d
		}
		r = r*d + x
	}
	return r
}

// Shift returns the source and destination comm ranks for a displacement
// along dimension dim (MPI_Cart_shift): src is the neighbor the caller
// receives from, dst the one it sends to, -1 where the grid ends.
func (c *Cart) Shift(rank, dim, disp int) (src, dst int) {
	coords := c.Coords(rank)
	up := append([]int(nil), coords...)
	up[dim] += disp
	down := append([]int(nil), coords...)
	down[dim] -= disp
	return c.Rank(down), c.Rank(up)
}

// BalancedDims factors n ranks into `ndims` near-equal grid dimensions
// (MPI_Dims_create): largest factors first.
func BalancedDims(n, ndims int) []int {
	if ndims <= 0 || n <= 0 {
		panic("mpi: BalancedDims needs positive arguments")
	}
	dims := make([]int, ndims)
	for i := range dims {
		dims[i] = 1
	}
	// Factorize n, then assign prime factors largest-first onto the
	// currently smallest dimension, which keeps the grid near-cubic.
	var factors []int
	rem := n
	for f := 2; f*f <= rem; {
		if rem%f == 0 {
			factors = append(factors, f)
			rem /= f
		} else {
			f++
		}
	}
	if rem > 1 {
		factors = append(factors, rem)
	}
	for i := len(factors) - 1; i >= 0; i-- {
		smallest := 0
		for j := 1; j < ndims; j++ {
			if dims[j] < dims[smallest] {
				smallest = j
			}
		}
		dims[smallest] *= factors[i]
	}
	// Sort descending for the conventional MPI_Dims_create output.
	for i := 0; i < ndims; i++ {
		for j := i + 1; j < ndims; j++ {
			if dims[j] > dims[i] {
				dims[i], dims[j] = dims[j], dims[i]
			}
		}
	}
	return dims
}
