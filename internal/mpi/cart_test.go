package mpi

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestCartCoordsRankRoundTrip(t *testing.T) {
	w := testWorld(12)
	cart, err := NewCart(w.CommWorld(), []int{3, 4}, []bool{false, false})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 12; r++ {
		coords := cart.Coords(r)
		if got := cart.Rank(coords); got != r {
			t.Fatalf("rank %d -> %v -> %d", r, coords, got)
		}
	}
	if !reflect.DeepEqual(cart.Coords(0), []int{0, 0}) {
		t.Fatalf("coords(0) = %v", cart.Coords(0))
	}
	if !reflect.DeepEqual(cart.Coords(11), []int{2, 3}) {
		t.Fatalf("coords(11) = %v", cart.Coords(11))
	}
	if !reflect.DeepEqual(cart.Dims(), []int{3, 4}) {
		t.Fatalf("dims = %v", cart.Dims())
	}
}

func TestCartSizeMismatch(t *testing.T) {
	w := testWorld(4)
	if _, err := NewCart(w.CommWorld(), []int{3, 2}, []bool{false, false}); err == nil {
		t.Fatal("6-cell grid over 4 ranks accepted")
	}
	if _, err := NewCart(w.CommWorld(), []int{2, 2}, []bool{false}); err == nil {
		t.Fatal("mismatched periodic length accepted")
	}
	if _, err := NewCart(w.CommWorld(), nil, nil); err == nil {
		t.Fatal("empty dims accepted")
	}
	if _, err := NewCart(w.CommWorld(), []int{-2, -2}, []bool{false, false}); err == nil {
		t.Fatal("negative dims accepted")
	}
}

func TestCartShiftNonPeriodic(t *testing.T) {
	w := testWorld(6)
	cart, err := NewCart(w.CommWorld(), []int{2, 3}, []bool{false, false})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 = (0,0): shifting up in dim 0 gives dst=(1,0)=rank 3, src
	// out of grid.
	src, dst := cart.Shift(0, 0, 1)
	if src != -1 || dst != 3 {
		t.Fatalf("shift(0,0,1) = %d,%d", src, dst)
	}
	// Middle of dim 1: rank 1 = (0,1).
	src, dst = cart.Shift(1, 1, 1)
	if src != 0 || dst != 2 {
		t.Fatalf("shift(1,1,1) = %d,%d", src, dst)
	}
}

func TestCartShiftPeriodic(t *testing.T) {
	w := testWorld(4)
	cart, err := NewCart(w.CommWorld(), []int{4}, []bool{true})
	if err != nil {
		t.Fatal(err)
	}
	src, dst := cart.Shift(0, 0, 1)
	if src != 3 || dst != 1 {
		t.Fatalf("periodic shift(0) = %d,%d", src, dst)
	}
	src, dst = cart.Shift(3, 0, 1)
	if src != 2 || dst != 0 {
		t.Fatalf("periodic shift(3) = %d,%d", src, dst)
	}
}

func TestCartHaloExchange2D(t *testing.T) {
	// A 2-D halo exchange over the topology: every rank sends its rank id
	// to its four neighbors and checks what it receives.
	const rows, cols = 2, 3
	w := testWorld(rows * cols)
	c := w.CommWorld()
	cart, err := NewCart(c, []int{rows, cols}, []bool{true, true})
	if err != nil {
		t.Fatal(err)
	}
	runWorld(w, func(p *Proc) error {
		me := c.Rank(p)
		for dim := 0; dim < 2; dim++ {
			src, dst := cart.Shift(me, dim, 1)
			got, err := c.Sendrecv(p, dst, 40+dim, []byte{byte(me)}, src, 40+dim)
			if err != nil {
				return err
			}
			if int(got[0]) != src {
				t.Errorf("rank %d dim %d: got %d want %d", me, dim, got[0], src)
			}
		}
		return nil
	})
}

func TestBalancedDims(t *testing.T) {
	cases := []struct {
		n, nd int
		want  []int
	}{
		{12, 2, []int{4, 3}},
		{64, 2, []int{8, 8}},
		{64, 3, []int{4, 4, 4}},
		{7, 2, []int{7, 1}},
		{1, 3, []int{1, 1, 1}},
		{30, 3, []int{5, 3, 2}},
	}
	for _, c := range cases {
		if got := BalancedDims(c.n, c.nd); !reflect.DeepEqual(got, c.want) {
			t.Errorf("BalancedDims(%d,%d) = %v, want %v", c.n, c.nd, got, c.want)
		}
	}
}

func TestBalancedDimsProductProperty(t *testing.T) {
	f := func(nRaw, ndRaw uint8) bool {
		n := int(nRaw)%100 + 1
		nd := int(ndRaw)%4 + 1
		dims := BalancedDims(n, nd)
		if len(dims) != nd {
			return false
		}
		prod := 1
		for _, d := range dims {
			if d <= 0 {
				return false
			}
			prod *= d
		}
		return prod == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitByColor(t *testing.T) {
	w := testWorld(6)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		color := p.Rank() % 2
		sub, err := c.Split(p, color, p.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 3 {
			t.Errorf("rank %d sub size %d", p.Rank(), sub.Size())
		}
		// Even ranks {0,2,4}, odd ranks {1,3,5}, ordered by key.
		want := []int{color, color + 2, color + 4}
		if !reflect.DeepEqual(sub.Group(), want) {
			t.Errorf("rank %d group %v, want %v", p.Rank(), sub.Group(), want)
		}
		// The sub-communicator is immediately usable.
		sum, err := sub.AllreduceInt(p, p.Rank(), OpSum)
		if err != nil {
			return err
		}
		if sum != want[0]+want[1]+want[2] {
			t.Errorf("sub allreduce = %d", sum)
		}
		return nil
	})
}

func TestSplitKeyReordersRanks(t *testing.T) {
	w := testWorld(3)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		// Reverse the ordering via keys.
		sub, err := c.Split(p, 0, -p.Rank())
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(sub.Group(), []int{2, 1, 0}) {
			t.Errorf("group %v", sub.Group())
		}
		return nil
	})
}

func TestSplitUndefinedColor(t *testing.T) {
	w := testWorld(4)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		color := 0
		if p.Rank() == 3 {
			color = -1 // MPI_UNDEFINED
		}
		sub, err := c.Split(p, color, 0)
		if err != nil {
			return err
		}
		if p.Rank() == 3 {
			if sub != nil {
				t.Error("undefined-color rank got a communicator")
			}
			return nil
		}
		if sub.Size() != 3 {
			t.Errorf("sub size %d", sub.Size())
		}
		return nil
	})
}

func TestSplitConsistentAcrossRanks(t *testing.T) {
	w := testWorld(4)
	c := w.CommWorld()
	ids := make([]int64, 4)
	runWorld(w, func(p *Proc) error {
		sub, err := c.Split(p, p.Rank()/2, 0)
		if err != nil {
			return err
		}
		ids[p.Rank()] = sub.ID()
		return nil
	})
	if ids[0] != ids[1] || ids[2] != ids[3] || ids[0] == ids[2] {
		t.Fatalf("split comm ids %v", ids)
	}
}

func TestSubCommFailureIsolation(t *testing.T) {
	// A failure in one split communicator poisons that comm's collectives
	// but not the sibling's: the surviving group keeps computing.
	w := testWorld(6)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		color := p.Rank() % 2
		sub, err := c.Split(p, color, p.Rank())
		if err != nil {
			return err
		}
		if p.Rank() == 1 { // a member of the odd group
			p.Exit()
		}
		if color == 1 {
			// Odd group: must observe the failure.
			if err := sub.Barrier(p); !IsProcessFailure(err) {
				t.Errorf("odd rank %d barrier err = %v", p.Rank(), err)
			}
			return nil
		}
		// Even group: unaffected, 10 collectives must all succeed.
		for i := 0; i < 10; i++ {
			if _, err := sub.AllreduceInt(p, 1, OpSum); err != nil {
				t.Errorf("even rank %d iter %d: %v", p.Rank(), i, err)
				return nil
			}
		}
		return nil
	})
}
