package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// EncodeF64 serializes a float64 slice to little-endian bytes.
func EncodeF64(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

// DecodeF64 deserializes little-endian bytes produced by EncodeF64.
func DecodeF64(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("mpi: float64 payload length %d not a multiple of 8", len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// SendF64 sends a float64 slice to comm rank dst.
func (c *Comm) SendF64(p *Proc, dst, tag int, data []float64) error {
	return c.Send(p, dst, tag, EncodeF64(data))
}

// RecvF64 receives a float64 slice from comm rank src.
func (c *Comm) RecvF64(p *Proc, src, tag int) ([]float64, error) {
	b, err := c.Recv(p, src, tag)
	if err != nil {
		return nil, err
	}
	return DecodeF64(b)
}

// SendrecvF64 performs a combined float64 send/receive.
func (c *Comm) SendrecvF64(p *Proc, dst, sendTag int, data []float64, src, recvTag int) ([]float64, error) {
	b, err := c.Sendrecv(p, dst, sendTag, EncodeF64(data), src, recvTag)
	if err != nil {
		return nil, err
	}
	return DecodeF64(b)
}
