package mpi

import (
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/trace"
)

// collKey identifies one collective operation instance: all members of a
// communicator call collectives in the same order, so (comm id, sequence
// number) names a unique rendezvous.
type collKey struct {
	comm int64
	seq  int64
}

// arrival is one process's entry into a rendezvous.
type arrival struct {
	commRank  int
	clock     float64
	congested bool
	payload   any
	bytes     int
}

// rendezvous synchronizes one collective. Processes register their arrival
// under world.mu; the rendezvous completes when every live member has
// arrived (or, upon a failure, when every remaining live member has
// arrived). Completion publishes the synchronized clock time, any error,
// and the frozen set of dead members, then closes done.
type rendezvous struct {
	comm     *Comm
	tolerant bool // Shrink/Agree: dead members do not poison the result
	arrivals map[int]*arrival
	done     chan struct{}

	completed bool
	err       error
	syncTime  float64
	deadAtEnd []int // world ranks dead at completion
	result    any   // memoized collective result (e.g. the shrunk comm)
}

func (r *rendezvous) hasMember(worldRank int) bool {
	_, ok := r.comm.index[worldRank]
	return ok
}

// finishLocked publishes completion. Caller holds world.mu.
func (r *rendezvous) finishLocked(syncTime float64) {
	if r.completed {
		return
	}
	r.completed = true
	r.syncTime = syncTime
	close(r.done)
}

// tryCompleteLocked completes the rendezvous once every member is
// accounted for: arrived, dead, or — for regular (non-tolerant)
// collectives — departed from the communicator. Tolerant collectives
// (Shrink/Agree) ignore departures: a member that abandoned the comm after
// an error still participates in the recovery-side agreement, as in ULFM.
// Caller holds world.mu.
func (w *World) tryCompleteLocked(key collKey, r *rendezvous) {
	if r.completed {
		return
	}
	var alive, dead []int
	for _, wr := range r.comm.group {
		if w.dead[wr] {
			dead = append(dead, wr)
		} else {
			alive = append(alive, wr)
		}
	}
	if len(alive) == 0 {
		return
	}
	departStamp, hasDeparted := 0.0, false
	for _, wr := range alive {
		if _, ok := r.arrivals[wr]; ok {
			continue
		}
		if !r.tolerant {
			if t, ok := r.comm.departed[wr]; ok {
				hasDeparted = true
				if t > departStamp {
					departStamp = t
				}
				continue
			}
		}
		return
	}
	r.deadAtEnd = dead
	if !r.tolerant && len(dead) > 0 {
		r.err = newFailedError(dead)
	} else if hasDeparted {
		r.err = ErrRevoked
	}
	maxClock, congested, bytes := 0.0, false, 0
	for _, a := range r.arrivals {
		if a.clock > maxClock {
			maxClock = a.clock
		}
		congested = congested || a.congested
		if a.bytes > bytes {
			bytes = a.bytes
		}
	}
	cost := w.machine.CollectiveTime(len(alive), bytes)
	if congested {
		// The whole rendezvous is slowed by one congested member; credit
		// the inflation to the MPI-visible flush wait counter.
		w.obs.Registry().Counter(obs.MFlushWaitSeconds).Add(cost * (w.machine.CongestionFactor - 1))
		cost *= w.machine.CongestionFactor
	}
	end := maxClock + cost
	if len(dead) > 0 {
		// Failures only become observable after the detector fires.
		if floor := w.detectionFloorLocked(dead); floor > end {
			end = floor
		}
	}
	if hasDeparted && departStamp > end {
		end = departStamp
	}
	delete(w.colls, key)
	r.finishLocked(end)
}

// collective runs one rendezvous for the calling process and returns the
// completed rendezvous. payload is this process's contribution; bytes is
// its wire size for the cost model.
func (c *Comm) collective(p *Proc, tolerant bool, payload any, bytes int) (*rendezvous, error) {
	p.Inject("mpi.collective")
	commRank := c.checkMember(p, "collective")
	// Tolerant collectives (Shrink/Agree) use a separate sequence space:
	// after a failure, survivors reach them having executed different
	// numbers of regular collectives, so they cannot share the counter.
	seqSpace := c.id
	if tolerant {
		seqSpace = -c.id
	}
	seq := p.nextSeq(seqSpace)
	key := collKey{comm: seqSpace, seq: seq}
	start := p.clock.Now()
	// Probed before taking the world lock: the congestion query may advance
	// the node's flush scheduler, which can fire observability callbacks.
	congested := p.node.CongestedAt(start)

	w := c.world
	w.mu.Lock()
	if !tolerant {
		// A process that has itself departed the communicator (its last
		// MPI error, or its own Revoke) fails fast; whether *other*
		// members departed is resolved by the rendezvous, deterministically.
		if _, gone := c.departed[p.rank]; gone {
			w.mu.Unlock()
			return nil, p.failMPI(ErrRevoked)
		}
	}
	r, ok := w.colls[key]
	if !ok {
		r = &rendezvous{
			comm:     c,
			tolerant: tolerant,
			arrivals: make(map[int]*arrival),
			done:     make(chan struct{}),
		}
		w.colls[key] = r
	}
	if r.tolerant != tolerant {
		w.mu.Unlock()
		panic(fmt.Sprintf("mpi: mismatched collective kinds on comm %d seq %d", c.id, seq))
	}
	r.arrivals[p.rank] = &arrival{
		commRank:  commRank,
		clock:     start,
		congested: congested,
		payload:   payload,
		bytes:     bytes,
	}
	w.tryCompleteLocked(key, r)
	w.mu.Unlock()

	<-r.done

	p.clock.AdvanceTo(r.syncTime)
	p.rec.Add(trace.AppMPI, p.clock.Now()-start)
	if r.err != nil {
		return nil, c.fail(p, r.err)
	}
	return r, nil
}

// orderedArrivals returns the rendezvous arrivals sorted by comm rank.
// Safe after done is closed (arrivals are frozen).
func (r *rendezvous) orderedArrivals() []*arrival {
	out := make([]*arrival, 0, len(r.arrivals))
	for cr := 0; cr < len(r.comm.group); cr++ {
		if a, ok := r.arrivals[r.comm.group[cr]]; ok {
			out = append(out, a)
		}
	}
	return out
}

// Barrier blocks until all live members arrive. It fails with FailedError
// if any member has died.
func (c *Comm) Barrier(p *Proc) error {
	_, err := c.collective(p, false, nil, 0)
	return err
}

// Bcast distributes root's buffer to every member and returns each
// process's copy. Non-root callers pass nil (or their stale buffer, which
// is ignored).
func (c *Comm) Bcast(p *Proc, root int, data []byte) ([]byte, error) {
	var payload any
	bytes := 0
	if c.Rank(p) == root {
		cp := make([]byte, len(data))
		copy(cp, data)
		payload = cp
		bytes = len(data)
	}
	r, err := c.collective(p, false, payload, bytes)
	if err != nil {
		return nil, err
	}
	rootW := c.WorldRank(root)
	a, ok := r.arrivals[rootW]
	if !ok || a.payload == nil {
		return nil, c.fail(p, newFailedError([]int{rootW}))
	}
	src := a.payload.([]byte)
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

// ReduceOp is a reduction operator for Allreduce/Reduce.
type ReduceOp int

const (
	// OpSum adds contributions element-wise.
	OpSum ReduceOp = iota
	// OpMin takes the element-wise minimum.
	OpMin
	// OpMax takes the element-wise maximum.
	OpMax
)

func (op ReduceOp) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	}
	return fmt.Sprintf("ReduceOp(%d)", int(op))
}

func (op ReduceOp) apply(acc, v float64) float64 {
	switch op {
	case OpSum:
		return acc + v
	case OpMin:
		return math.Min(acc, v)
	case OpMax:
		return math.Max(acc, v)
	}
	panic("mpi: unknown reduce op")
}

func reduceArrivals(r *rendezvous, op ReduceOp, n int) ([]float64, error) {
	out := make([]float64, n)
	first := true
	for _, a := range r.orderedArrivals() {
		vec := a.payload.([]float64)
		if len(vec) != n {
			return nil, fmt.Errorf("mpi: reduce length mismatch: %d vs %d", len(vec), n)
		}
		if first {
			copy(out, vec)
			first = false
			continue
		}
		for i, v := range vec {
			out[i] = op.apply(out[i], v)
		}
	}
	return out, nil
}

// AllreduceF64 reduces data element-wise across all members with op and
// returns the result at every member. Reduction order is deterministic
// (comm rank order), so results are bitwise reproducible.
func (c *Comm) AllreduceF64(p *Proc, data []float64, op ReduceOp) ([]float64, error) {
	cp := make([]float64, len(data))
	copy(cp, data)
	r, err := c.collective(p, false, cp, 8*len(data))
	if err != nil {
		return nil, err
	}
	out, rerr := reduceArrivals(r, op, len(data))
	if rerr != nil {
		return nil, rerr
	}
	return out, nil
}

// ReduceF64 reduces to root; non-root members receive nil.
func (c *Comm) ReduceF64(p *Proc, root int, data []float64, op ReduceOp) ([]float64, error) {
	cp := make([]float64, len(data))
	copy(cp, data)
	r, err := c.collective(p, false, cp, 8*len(data))
	if err != nil {
		return nil, err
	}
	if c.Rank(p) != root {
		return nil, nil
	}
	return reduceArrivals(r, op, len(data))
}

// AllreduceInt reduces a single integer across members (exact for values up
// to 2^53).
func (c *Comm) AllreduceInt(p *Proc, v int, op ReduceOp) (int, error) {
	out, err := c.AllreduceF64(p, []float64{float64(v)}, op)
	if err != nil {
		return 0, err
	}
	return int(out[0]), nil
}

// AllgatherB gathers each member's byte payload at every member, indexed by
// comm rank.
func (c *Comm) AllgatherB(p *Proc, data []byte) ([][]byte, error) {
	cp := make([]byte, len(data))
	copy(cp, data)
	r, err := c.collective(p, false, cp, len(data))
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(c.group))
	for wr, a := range r.arrivals {
		src := a.payload.([]byte)
		buf := make([]byte, len(src))
		copy(buf, src)
		out[c.index[wr]] = buf
	}
	return out, nil
}

// Shrink creates a new communicator containing the surviving members,
// densely re-ranked in old comm rank order (ULFM MPI_Comm_shrink). It is
// fault-tolerant: it succeeds even when members have failed, and all
// survivors agree on the membership of the result.
func (c *Comm) Shrink(p *Proc) (*Comm, error) {
	r, err := c.collective(p, true, nil, 0)
	if err != nil {
		return nil, err
	}
	w := c.world
	w.mu.Lock()
	if r.result == nil {
		deadSet := make(map[int]bool, len(r.deadAtEnd))
		for _, wr := range r.deadAtEnd {
			deadSet[wr] = true
		}
		var survivors []int
		for _, wr := range c.group {
			if !deadSet[wr] {
				survivors = append(survivors, wr)
			}
		}
		r.result = w.newCommLocked(survivors)
	}
	shrunk := r.result.(*Comm)
	w.mu.Unlock()
	// Emitted by every participant (rank attribute distinguishes them).
	p.Event(obs.LayerMPI, obs.EvShrink,
		obs.KV("comm", c.id), obs.KV("from_size", len(c.group)), obs.KV("to_size", shrunk.Size()))
	p.world.obs.Registry().Counter(obs.MShrinks).Inc()
	return shrunk, nil
}

// Agree performs a fault-tolerant agreement on the bitwise AND of flag
// across surviving members (ULFM MPI_Comm_agree). All survivors receive the
// same value and the same view of acknowledged failures.
func (c *Comm) Agree(p *Proc, flag uint32) (uint32, error) {
	r, err := c.collective(p, true, flag, 4)
	if err != nil {
		return 0, err
	}
	out := ^uint32(0)
	for _, a := range r.orderedArrivals() {
		out &= a.payload.(uint32)
	}
	p.Event(obs.LayerMPI, obs.EvAgree,
		obs.KV("comm", c.id), obs.KV("participants", len(r.arrivals)), obs.KV("failed", len(r.deadAtEnd)))
	p.world.obs.Registry().Counter(obs.MAgreements).Inc()
	return out, nil
}
