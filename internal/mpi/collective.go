package mpi

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/trace"
)

// collKey identifies one collective operation instance: all members of a
// communicator call collectives in the same order, so (comm id, sequence
// number) names a unique rendezvous.
type collKey struct {
	comm int64
	seq  int64
}

// memberState is one member's terminal state within a rendezvous.
type memberState uint8

const (
	// memberPending: no terminal event yet.
	memberPending memberState = iota
	// memberArrived: the member entered the collective.
	memberArrived
	// memberDead: the member died before arriving.
	memberDead
	// memberDeparted: the member departed the communicator before arriving
	// (regular collectives only; Shrink/Agree ignore departures).
	memberDeparted
)

// payload carries one member's collective contribution into its slot.
// It is a struct of typed fields rather than an `any`: boxing a slice
// header into an interface costs one heap allocation per arrival on the
// hot path ([]float64 reductions, []byte broadcasts), and under ExecPool
// it would defeat buffer recycling entirely. At most one field family is
// meaningful per collective kind; a/k pack the scalar contributions
// (Agree's flag, Split's color and key).
type payload struct {
	f64 []float64
	b   []byte
	bb  [][]byte
	a   int64 // Agree flag / Split color
	k   int64 // Split key
	has bool  // a contribution is present (rooted ops: only root carries data)
}

// slot records one member's terminal state, indexed by comm rank. The
// first terminal event per member wins; slots are only written under
// world.mu, from the goroutine that owns the event (the arriving, dying,
// or departing rank), which anchors every outcome in that rank's own
// program order and virtual clock.
type slot struct {
	state     memberState
	clock     float64 // arrival time (memberArrived)
	stamp     float64 // death time (memberDead) or departure stamp (memberDeparted)
	congested bool
	bytes     int
	pl        payload
}

// rendezvous synchronizes one collective. Members register terminal states
// under world.mu; the rendezvous completes when every member is accounted
// for. Completion publishes the synchronized clock time, any error, and
// the frozen set of dead members, then closes done. The struct is pooled:
// see acquireOpLocked / release in tree.go.
type rendezvous struct {
	comm     *Comm
	tolerant bool // Shrink/Agree: dead members do not poison the result
	key      collKey
	// done is the goroutine-mode completion signal; nil under ExecPool,
	// where completion instead enqueues the waiters list (exec.go) and the
	// per-op channel allocation disappears entirely.
	done chan struct{}
	// waiters holds the pool-mode members parked on this op, registered
	// under world.mu by the arriving rank itself. finishLocked enqueues
	// them as continuations.
	waiters []*Proc

	// slots and treeLeft are indexed by comm rank; treeLeft holds the
	// binomial tree's per-node pending counters (tree engine only).
	slots    []slot
	treeLeft []int32

	// Aggregate scalars maintained incrementally as terminal events land,
	// so completion needs no full-group scan in the failure-free case.
	nArrived    int
	nDead       int
	nDeparted   int
	maxClock    float64 // latest arrival clock
	maxDeadAt   float64 // latest death stamp among dead members
	departStamp float64 // latest departure stamp among departed members
	congested   bool
	maxBytes    int

	// refs counts arrived members that have not yet released the op back
	// to the pool (one reference per arrival).
	refs atomic.Int32

	completed bool
	err       error
	syncTime  float64
	deadAtEnd []int // world ranks dead at completion, in comm rank order
	result    any   // memoized collective result (e.g. the shrunk comm)

	// loggable marks a non-tolerant op on the registered resilient lineage:
	// finishLocked appends its result slots to the message log on success.
	loggable bool
	// replayed marks a synthetic rendezvous served from the message log:
	// its slots are owned by the log, so release is a no-op (never pooled).
	replayed bool

	// reduced memoizes the shared element-wise reduction so P members cost
	// one O(P·n) pass instead of P of them. Guarded by world.mu.
	reduced   []float64
	reduceErr error
	reducedOK bool
}

func (r *rendezvous) hasMember(worldRank int) bool {
	_, ok := r.comm.index[worldRank]
	return ok
}

// finishLocked publishes completion. Caller holds world.mu. Under
// ExecGoroutine it closes the done channel (waking every parked member
// at once — the herd the pool mode exists to avoid); under ExecPool it
// enqueues each parked waiter as a continuation on the world's slot
// scheduler. The channel close / resume send is the happens-before edge
// that publishes syncTime, err, and the frozen slots to the waiters.
func (r *rendezvous) finishLocked(w *World, syncTime float64) {
	if r.completed {
		return
	}
	r.completed = true
	r.syncTime = syncTime
	if r.loggable && r.err == nil && w.msglog.Active() {
		// Log the completed lineage collective for replay. Completion order
		// equals program order (a collective completes only when every
		// member arrived, and members arrive in program order), so the log
		// is the lineage's successful-collective sequence. Slots are
		// deep-copied: the op and its payload buffers are pooled.
		slots, bytes := cloneSlotsForLog(r.slots)
		w.msglog.AppendColl(slots, r.nArrived, bytes)
		w.obs.Emit(syncTime, -1, obs.LayerMPI, obs.EvMsgLogged,
			obs.KV("kind", "coll"), obs.KV("comm", r.comm.id), obs.KV("bytes", bytes))
		w.obs.Registry().Counter(obs.MMsgLogged).Inc()
	}
	if r.done != nil {
		close(r.done)
	}
	if w.pool != nil {
		w.pool.wakeAll(r.waiters)
		for i := range r.waiters {
			r.waiters[i] = nil
		}
		r.waiters = r.waiters[:0]
	}
}

// tryCompleteFlatLocked is the flat (legacy) engine: it re-derives the
// full classification — alive, dead, departed — from world state with an
// O(P) scan on every terminal event, completing the rendezvous once every
// member is accounted for: arrived, dead, or — for regular (non-tolerant)
// collectives — departed from the communicator. Tolerant collectives
// (Shrink/Agree) ignore departures: a member that abandoned the comm after
// an error still participates in the recovery-side agreement, as in ULFM.
// Caller holds world.mu.
func (w *World) tryCompleteFlatLocked(r *rendezvous) {
	if r.completed {
		return
	}
	var alive, dead []int
	for _, wr := range r.comm.group {
		if w.dead[wr] {
			dead = append(dead, wr)
		} else {
			alive = append(alive, wr)
		}
	}
	if len(alive) == 0 {
		return
	}
	departStamp, hasDeparted := 0.0, false
	for _, wr := range alive {
		if r.slots[r.comm.index[wr]].state == memberArrived {
			continue
		}
		if !r.tolerant {
			if t, ok := r.comm.departed[wr]; ok {
				hasDeparted = true
				if t > departStamp {
					departStamp = t
				}
				continue
			}
		}
		return
	}
	r.deadAtEnd = append(r.deadAtEnd[:0], dead...)
	if !r.tolerant && len(dead) > 0 {
		r.err = newFailedError(dead)
	} else if hasDeparted {
		r.err = ErrRevoked
	}
	maxClock, congested, bytes := 0.0, false, 0
	for i := range r.slots {
		s := &r.slots[i]
		if s.state != memberArrived {
			continue
		}
		if s.clock > maxClock {
			maxClock = s.clock
		}
		congested = congested || s.congested
		if s.bytes > bytes {
			bytes = s.bytes
		}
	}
	cost := w.machine.CollectiveTime(len(alive), bytes)
	if congested {
		// The whole rendezvous is slowed by one congested member; credit
		// the inflation to the MPI-visible flush wait counter.
		w.obs.Registry().Counter(obs.MFlushWaitSeconds).Add(cost * (w.machine.CongestionFactor - 1))
		cost *= w.machine.CongestionFactor
	}
	end := maxClock + cost
	if len(dead) > 0 {
		// Failures only become observable after the detector fires.
		if floor := w.detectionFloorLocked(dead); floor > end {
			end = floor
		}
	}
	if hasDeparted && departStamp > end {
		end = departStamp
	}
	delete(w.colls, r.key)
	r.finishLocked(w, end)
}

// collective runs one rendezvous for the calling process and returns the
// completed rendezvous. pl is this process's contribution; bytes is its
// wire size for the cost model. On success the caller owns one reference
// on the returned rendezvous and must release it (r.release) after
// extracting its results; on error the reference has already been
// released.
func (c *Comm) collective(p *Proc, tolerant bool, pl payload, bytes int) (*rendezvous, error) {
	return c.collectiveLog(p, tolerant, true, pl, bytes)
}

// collectiveLog is collective with an explicit message-log opt-out. Split
// passes logOK=false: its memoized result is a communicator, which cannot
// be replayed from logged bytes (and no lineage workload splits
// per-iteration).
func (c *Comm) collectiveLog(p *Proc, tolerant, logOK bool, pl payload, bytes int) (*rendezvous, error) {
	p.Inject("mpi.collective")
	commRank := c.checkMember(p, "collective")
	var l *MsgLog
	if !tolerant && logOK {
		l = p.msglogOn(c)
	}
	if l != nil {
		if e, ok := l.collAt(p.logColl); ok {
			// Served from the log: this collective completed in the epoch
			// being replayed, so its logged result slots are returned at
			// zero rendezvous cost — peers paused in place (or replaying
			// themselves) never need to arrive again. The cursor advances
			// without consuming a live sequence number: all members reach
			// the first never-completed collective with cursor == lineage
			// length and enter it live with aligned sequence numbers.
			p.logColl++
			p.Event(obs.LayerMPI, obs.EvMsgReplayed, obs.KV("kind", "coll"), obs.KV("comm", c.id))
			p.world.obs.Registry().Counter(obs.MMsgReplayed).Inc()
			fake := &rendezvous{comm: c, completed: true, syncTime: p.clock.Now(), replayed: true}
			fake.slots = e.slots
			fake.nArrived = e.nArrived
			fake.refs.Store(1)
			return fake, nil
		}
	}
	// Tolerant collectives (Shrink/Agree) use a separate sequence space:
	// after a failure, survivors reach them having executed different
	// numbers of regular collectives, so they cannot share the counter.
	seqSpace := c.id
	if tolerant {
		seqSpace = -c.id
	}
	seq := p.nextSeq(seqSpace)
	key := collKey{comm: seqSpace, seq: seq}
	start := p.clock.Now()
	// Probed before taking the world lock: the congestion query may advance
	// the node's flush scheduler, which can fire observability callbacks.
	congested := p.node.CongestedAt(start)

	w := c.world
	w.mu.Lock()
	if !tolerant {
		// A process that has itself departed the communicator (its last
		// MPI error, or its own Revoke) fails fast; whether *other*
		// members departed is resolved by the rendezvous, deterministically.
		if _, gone := c.departed[p.rank]; gone {
			w.mu.Unlock()
			return nil, p.failMPI(ErrRevoked)
		}
	}
	r, ok := w.colls[key]
	if !ok {
		r = w.acquireOpLocked(c, tolerant, key)
		r.loggable = l != nil
		w.colls[key] = r
		if w.engine == EngineTree {
			w.seedTerminalLocked(r)
		}
	}
	if r.tolerant != tolerant {
		w.mu.Unlock()
		panic(fmt.Sprintf("mpi: mismatched collective kinds on comm %d seq %d", c.id, seq))
	}
	r.refs.Add(1)
	if w.engine == EngineTree {
		w.accountArrivalLocked(r, commRank, start, congested, pl, bytes)
	} else {
		s := &r.slots[commRank]
		s.state, s.clock, s.congested, s.pl, s.bytes = memberArrived, start, congested, pl, bytes
		r.nArrived++
		w.tryCompleteFlatLocked(r)
	}
	// Pool mode: if this arrival did not complete the op, register as a
	// continuation under the same critical section as the arrival — the op
	// cannot complete between the accounting above and the append, so no
	// wake-up can be lost.
	parked := false
	if w.pool != nil && !r.completed {
		r.waiters = append(r.waiters, p)
		parked = true
	}
	w.mu.Unlock()

	if w.pool == nil {
		<-r.done
	} else if parked {
		w.pool.release()
		p.park()
	}

	p.clock.AdvanceTo(r.syncTime)
	p.rec.Add(trace.AppMPI, p.clock.Now()-start)
	if r.err != nil {
		err := c.fail(p, r.err)
		r.release(w)
		return nil, err
	}
	if l != nil {
		// This member completed one more logged lineage collective.
		p.logColl++
	}
	return r, nil
}

// cloneSlotsForLog deep-copies a completed rendezvous' slots for the
// message log (the originals and their payload buffers are pooled).
// Returns the copies and the total payload bytes held.
func cloneSlotsForLog(slots []slot) ([]slot, int) {
	out := make([]slot, len(slots))
	bytes := 0
	for i := range slots {
		s := slots[i]
		if len(s.pl.f64) > 0 {
			cp := make([]float64, len(s.pl.f64))
			copy(cp, s.pl.f64)
			s.pl.f64 = cp
			bytes += 8 * len(cp)
		}
		if len(s.pl.b) > 0 {
			cp := make([]byte, len(s.pl.b))
			copy(cp, s.pl.b)
			s.pl.b = cp
			bytes += len(cp)
		}
		if len(s.pl.bb) > 0 {
			cpp := make([][]byte, len(s.pl.bb))
			for j, b := range s.pl.bb {
				cb := make([]byte, len(b))
				copy(cb, b)
				cpp[j] = cb
				bytes += len(cb)
			}
			s.pl.bb = cpp
		}
		out[i] = s
	}
	return out, bytes
}

// Barrier blocks until all live members arrive. It fails with FailedError
// if any member has died.
func (c *Comm) Barrier(p *Proc) error {
	r, err := c.collective(p, false, payload{}, 0)
	if err != nil {
		return err
	}
	r.release(c.world)
	return nil
}

// Bcast distributes root's buffer to every member and returns each
// process's copy. Non-root callers pass nil (or their stale buffer, which
// is ignored).
func (c *Comm) Bcast(p *Proc, root int, data []byte) ([]byte, error) {
	var pl payload
	bytes := 0
	if c.Rank(p) == root {
		cp := c.world.payloadB(len(data))
		copy(cp, data)
		pl = payload{b: cp, has: true}
		bytes = len(data)
	}
	r, err := c.collective(p, false, pl, bytes)
	if err != nil {
		return nil, err
	}
	defer r.release(c.world)
	s := &r.slots[root]
	if s.state != memberArrived || !s.pl.has {
		return nil, c.fail(p, newFailedError([]int{c.WorldRank(root)}))
	}
	src := s.pl.b
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

// ReduceOp is a reduction operator for Allreduce/Reduce.
type ReduceOp int

const (
	// OpSum adds contributions element-wise.
	OpSum ReduceOp = iota
	// OpMin takes the element-wise minimum.
	OpMin
	// OpMax takes the element-wise maximum.
	OpMax
)

// String names the reduction operator (for logs and error messages).
func (op ReduceOp) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	}
	return fmt.Sprintf("ReduceOp(%d)", int(op))
}

func (op ReduceOp) apply(acc, v float64) float64 {
	switch op {
	case OpSum:
		return acc + v
	case OpMin:
		return math.Min(acc, v)
	case OpMax:
		return math.Max(acc, v)
	}
	panic("mpi: unknown reduce op")
}

// reduceShared computes the element-wise reduction over the rendezvous'
// arrived payloads exactly once and returns a fresh copy per caller.
// Reduction is in comm rank order regardless of engine or arrival order,
// so results are bitwise reproducible; memoization turns P members' O(P·n)
// passes into one.
func (c *Comm) reduceShared(r *rendezvous, op ReduceOp, n int) ([]float64, error) {
	w := c.world
	w.mu.Lock()
	if !r.reducedOK {
		r.reducedOK = true
		var out []float64
		if cap(r.reduced) >= n {
			out = r.reduced[:n]
		} else {
			out = make([]float64, n)
		}
		first := true
		for i := range r.slots {
			s := &r.slots[i]
			if s.state != memberArrived {
				continue
			}
			vec := s.pl.f64
			if len(vec) != n {
				r.reduceErr = fmt.Errorf("mpi: reduce length mismatch: %d vs %d", len(vec), n)
				break
			}
			if first {
				copy(out, vec)
				first = false
				continue
			}
			for j, v := range vec {
				out[j] = op.apply(out[j], v)
			}
		}
		r.reduced = out
	}
	res, err := r.reduced, r.reduceErr
	w.mu.Unlock()
	if err != nil {
		return nil, err
	}
	cp := make([]float64, n)
	copy(cp, res)
	return cp, nil
}

// AllreduceF64 reduces data element-wise across all members with op and
// returns the result at every member. Reduction order is deterministic
// (comm rank order), so results are bitwise reproducible.
func (c *Comm) AllreduceF64(p *Proc, data []float64, op ReduceOp) ([]float64, error) {
	cp := c.world.payloadF64(len(data))
	copy(cp, data)
	r, err := c.collective(p, false, payload{f64: cp, has: true}, 8*len(data))
	if err != nil {
		return nil, err
	}
	defer r.release(c.world)
	return c.reduceShared(r, op, len(data))
}

// ReduceF64 reduces to root; non-root members receive nil.
func (c *Comm) ReduceF64(p *Proc, root int, data []float64, op ReduceOp) ([]float64, error) {
	cp := c.world.payloadF64(len(data))
	copy(cp, data)
	r, err := c.collective(p, false, payload{f64: cp, has: true}, 8*len(data))
	if err != nil {
		return nil, err
	}
	defer r.release(c.world)
	if c.Rank(p) != root {
		return nil, nil
	}
	return c.reduceShared(r, op, len(data))
}

// AllreduceInt reduces a single integer across members (exact for values up
// to 2^53).
func (c *Comm) AllreduceInt(p *Proc, v int, op ReduceOp) (int, error) {
	out, err := c.AllreduceF64(p, []float64{float64(v)}, op)
	if err != nil {
		return 0, err
	}
	return int(out[0]), nil
}

// AllgatherB gathers each member's byte payload at every member, indexed by
// comm rank.
func (c *Comm) AllgatherB(p *Proc, data []byte) ([][]byte, error) {
	cp := c.world.payloadB(len(data))
	copy(cp, data)
	r, err := c.collective(p, false, payload{b: cp, has: true}, len(data))
	if err != nil {
		return nil, err
	}
	defer r.release(c.world)
	out := make([][]byte, len(c.group))
	for cr := range r.slots {
		s := &r.slots[cr]
		if s.state != memberArrived {
			continue
		}
		src := s.pl.b
		buf := make([]byte, len(src))
		copy(buf, src)
		out[cr] = buf
	}
	return out, nil
}

// Shrink creates a new communicator containing the surviving members,
// densely re-ranked in old comm rank order (ULFM MPI_Comm_shrink). It is
// fault-tolerant: it succeeds even when members have failed, and all
// survivors agree on the membership of the result.
func (c *Comm) Shrink(p *Proc) (*Comm, error) {
	r, err := c.collective(p, true, payload{}, 0)
	if err != nil {
		return nil, err
	}
	w := c.world
	w.mu.Lock()
	if r.result == nil {
		deadSet := make(map[int]bool, len(r.deadAtEnd))
		for _, wr := range r.deadAtEnd {
			deadSet[wr] = true
		}
		var survivors []int
		for _, wr := range c.group {
			if !deadSet[wr] {
				survivors = append(survivors, wr)
			}
		}
		r.result = w.newCommLocked(survivors)
	}
	shrunk := r.result.(*Comm)
	w.mu.Unlock()
	r.release(w)
	// Emitted by every participant (rank attribute distinguishes them).
	p.Event(obs.LayerMPI, obs.EvShrink,
		obs.KV("comm", c.id), obs.KV("from_size", len(c.group)), obs.KV("to_size", shrunk.Size()))
	p.world.obs.Registry().Counter(obs.MShrinks).Inc()
	return shrunk, nil
}

// Agree performs a fault-tolerant agreement on the bitwise AND of flag
// across surviving members (ULFM MPI_Comm_agree). All survivors receive the
// same value and the same view of acknowledged failures.
func (c *Comm) Agree(p *Proc, flag uint32) (uint32, error) {
	r, err := c.collective(p, true, payload{a: int64(flag), has: true}, 4)
	if err != nil {
		return 0, err
	}
	out := ^uint32(0)
	for cr := range r.slots {
		s := &r.slots[cr]
		if s.state == memberArrived {
			out &= uint32(s.pl.a)
		}
	}
	participants, failed := r.nArrived, len(r.deadAtEnd)
	r.release(c.world)
	p.Event(obs.LayerMPI, obs.EvAgree,
		obs.KV("comm", c.id), obs.KV("participants", participants), obs.KV("failed", failed))
	p.world.obs.Registry().Counter(obs.MAgreements).Inc()
	return out, nil
}
