package mpi

import (
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Comm is a communicator: an ordered group of world ranks with its own rank
// numbering, message matching space, and revocation state. Comm values are
// shared between the participating rank goroutines; all methods take the
// calling Proc explicitly (the simulation analogue of the implicit calling
// process in MPI).
type Comm struct {
	world   *World
	id      int64
	group   []int // comm rank -> world rank
	index   map[int]int
	revoked atomic.Bool
	// departed maps world rank -> the virtual time at which that member
	// abandoned the communicator (its last MPI error, or its own Revoke).
	// Guarded by world.mu. Operations blocked on a departed member are
	// released with ErrRevoked at the departure stamp, which keeps failure
	// propagation deterministic in virtual time (see Comm.fail).
	departed map[int]float64
	// treeLeft0 holds the initial binomial-tree pending counters for this
	// group size, computed once at comm creation and copied into each
	// pooled rendezvous (see tree.go). Immutable.
	treeLeft0 []int32
}

// Size returns the number of processes in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// ID returns the communicator's unique identifier (for tests and logs).
func (c *Comm) ID() int64 { return c.id }

// Rank returns p's rank within the communicator, or -1 if p is not a
// member.
func (c *Comm) Rank(p *Proc) int {
	if r, ok := c.index[p.rank]; ok {
		return r
	}
	return -1
}

// WorldRank translates a comm rank to a world rank.
func (c *Comm) WorldRank(commRank int) int {
	if commRank < 0 || commRank >= len(c.group) {
		panic(fmt.Sprintf("mpi: comm rank %d out of range [0,%d)", commRank, len(c.group)))
	}
	return c.group[commRank]
}

// Group returns a copy of the comm-rank -> world-rank mapping.
func (c *Comm) Group() []int {
	cp := make([]int, len(c.group))
	copy(cp, c.group)
	return cp
}

// Revoked reports whether the communicator has been revoked.
func (c *Comm) Revoked() bool { return c.revoked.Load() }

// recvGiveUp decides whether a receive blocked on world rank srcW can
// still be satisfied. It returns a non-nil error — and the virtual time at
// which the failure becomes observable — once srcW has died (FailedError
// at the detection floor) or departed the communicator (ErrRevoked at the
// departure stamp). Both conditions are functions of srcW's own program
// order and virtual clock, so the receiver's outcome does not depend on
// real-time goroutine scheduling.
func (c *Comm) recvGiveUp(srcW int) (error, float64) {
	w := c.world
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead[srcW] {
		return newFailedError([]int{srcW}), w.detectionFloorLocked([]int{srcW})
	}
	if t, ok := c.departed[srcW]; ok {
		return ErrRevoked, t
	}
	return nil, 0
}

// hasDeparted reports whether world rank wr has departed this
// communicator.
func (c *Comm) hasDeparted(wr int) bool {
	c.world.mu.Lock()
	defer c.world.mu.Unlock()
	_, ok := c.departed[wr]
	return ok
}

// fail funnels a communicator operation's error through failMPI, first
// recording the caller's departure from this communicator: a ULFM error
// diverts the process into the resilience layer, so it will never again
// service operations here, and peers blocked on it can be released at a
// deterministic virtual time. Departure — not the real-time visibility of
// a revocation flag — is what makes failure propagation reproducible: a
// peer's pending operation completes against the departing rank's program
// order and virtual clock, never against the wall-clock moment a shared
// flag happened to be written. Communicators created after recovery are
// untouched: departure is scoped to the communicator the error surfaced
// on.
func (c *Comm) fail(p *Proc, err error) error {
	if err != nil && IsULFMError(err) && !c.world.abortOnFailure {
		c.depart(p)
	}
	return p.failMPI(err)
}

// depart records p's departure from the communicator at its current
// virtual clock and wakes blocked members so they observe it.
func (c *Comm) depart(p *Proc) {
	w := c.world
	w.mu.Lock()
	c.departLocked(p.rank, p.clock.Now())
	w.mu.Unlock()
	for _, wr := range c.group {
		w.procs[wr].mail.wakeAll()
	}
}

// departLocked records wr's departure at the given stamp and re-checks
// pending collectives on this communicator. Caller holds world.mu.
func (c *Comm) departLocked(wr int, stamp float64) {
	if c.departed == nil {
		c.departed = make(map[int]float64)
	}
	if _, done := c.departed[wr]; done {
		return
	}
	c.departed[wr] = stamp
	w := c.world
	for _, rv := range w.colls {
		if rv.comm != c {
			continue
		}
		if w.engine == EngineTree {
			// Tolerant ops (Shrink/Agree) ignore departures: the departed
			// member still arrives on the recovery path.
			if !rv.tolerant {
				w.accountDepartedLocked(rv, c.index[wr], stamp)
			}
		} else {
			w.tryCompleteFlatLocked(rv)
		}
	}
}

func (c *Comm) checkMember(p *Proc, op string) int {
	r := c.Rank(p)
	if r < 0 {
		panic(fmt.Sprintf("mpi: %s by non-member world rank %d on comm %d", op, p.rank, c.id))
	}
	return r
}

// Send transmits data to comm rank dst with the given tag. It is eager,
// buffered, and locally complete: Send does not block waiting for the
// matching Recv, and a send races no global failure state — it fails fast
// only on this process's own knowledge, with FailedError once this process
// has already observed the destination's death, or ErrRevoked once it has
// itself departed the communicator (its last MPI error, or its own
// Revoke). A send to a peer that failed without this process knowing
// completes locally and the failure surfaces at the next completion point,
// keeping every operation's outcome a function of virtual time and program
// order only.
func (c *Comm) Send(p *Proc, dst, tag int, data []byte) error {
	return c.SendSized(p, dst, tag, data, len(data))
}

// SendSized is Send with the cost model charged for simBytes instead of the
// real buffer length, used when a small real buffer stands in for
// paper-scale data (see kokkos.View.SimBytes).
func (c *Comm) SendSized(p *Proc, dst, tag int, data []byte, simBytes int) error {
	me := c.checkMember(p, "Send")
	dstW := c.WorldRank(dst)
	if p.obsDead[dstW] {
		p.waitForDetection([]int{dstW})
		return c.fail(p, newFailedError([]int{dstW}))
	}
	if c.hasDeparted(p.rank) {
		return p.failMPI(ErrRevoked)
	}
	cost := p.congest(p.world.machine.TransferTime(simBytes))
	p.clock.Advance(cost)
	p.rec.Add(trace.AppMPI, cost)

	l := p.msglogOn(c)
	lkey := p2pKey{src: me, dst: dst, tag: tag}
	seq := -1
	if l != nil {
		seq = p.logSend[lkey]
		if seq < l.p2pLen(lkey) {
			// Replay: this message was delivered and logged by a previous
			// incarnation of this program point; suppress the duplicate.
			p.bumpSend(lkey, seq)
			p.noteReplay("send", dst, tag)
			return nil
		}
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.world.procs[dstW].mail.deliver(
		msgKey{comm: c.id, src: p.rank, tag: tag},
		message{data: cp, arriveAt: p.clock.Now(), seq: seq},
	)
	if l != nil {
		// Deliver before append: a receiver that sees the log entry is
		// guaranteed the mailbox copy exists too.
		l.AppendP2P(lkey, data, simBytes, p.clock.Now())
		p.bumpSend(lkey, seq)
		p.Event(obs.LayerMPI, obs.EvMsgLogged, obs.KV("peer", dst), obs.KV("tag", tag), obs.KV("bytes", simBytes))
		p.world.obs.Registry().Counter(obs.MMsgLogged).Inc()
		p.msglogGauges(l)
	}
	return nil
}

// bumpSend advances the send cursor for lkey past seq.
func (p *Proc) bumpSend(lkey p2pKey, seq int) {
	if p.logSend == nil {
		p.logSend = make(map[p2pKey]int)
	}
	p.logSend[lkey] = seq + 1
}

// noteReplay emits the replay event + counter for one suppressed/served
// operation.
func (p *Proc) noteReplay(kind string, peer, tag int) {
	p.Event(obs.LayerMPI, obs.EvMsgReplayed, obs.KV("kind", kind), obs.KV("peer", peer), obs.KV("tag", tag))
	p.world.obs.Registry().Counter(obs.MMsgReplayed).Inc()
}

// Recv blocks until a message with the given tag from comm rank src
// arrives. It fails with FailedError if the sender dies before a matching
// message is available, or ErrRevoked once the sender has departed the
// communicator (sends are eager, so a message posted before the sender's
// death or departure is always drained first).
func (c *Comm) Recv(p *Proc, src, tag int) ([]byte, error) {
	me := c.checkMember(p, "Recv")
	srcW := c.WorldRank(src)
	start := p.clock.Now()
	key := msgKey{comm: c.id, src: srcW, tag: tag}
	l := p.msglogOn(c)
	lkey := p2pKey{src: src, dst: me, tag: tag}
	if l != nil {
		seq := p.logRecv[lkey]
		if e, ok := l.p2pAt(lkey, seq); ok {
			return c.recvFromLog(p, l, key, lkey, seq, e, start), nil
		}
	}
	var release float64
	msg, err := p.mail.receive(p, key, func() error {
		e, rel := c.recvGiveUp(srcW)
		release = rel
		return e
	})
	if err != nil {
		// Failures only become observable at their virtual release time.
		p.clock.AdvanceTo(release)
		// Account the blocked time up to failure detection.
		p.rec.Add(trace.AppMPI, p.clock.Now()-start)
		return nil, c.fail(p, err)
	}
	p.clock.AdvanceTo(msg.arriveAt)
	recvOverhead := p.congest(p.world.machine.NetLatency)
	p.clock.Advance(recvOverhead)
	p.rec.Add(trace.AppMPI, p.clock.Now()-start)
	if l != nil {
		p.bumpRecv(l, lkey, msg.seq)
	}
	return msg.data, nil
}

// recvFromLog serves one logged message: it consumes the live mailbox copy
// (if the original send delivered on this communicator), reproduces the
// logged arrival time, and returns a fresh copy of the payload.
func (c *Comm) recvFromLog(p *Proc, l *MsgLog, key msgKey, lkey p2pKey, seq int, e p2pEntry, start float64) []byte {
	p.mail.dropThrough(key, seq)
	p.clock.AdvanceTo(e.arriveAt)
	recvOverhead := p.congest(p.world.machine.NetLatency)
	p.clock.Advance(recvOverhead)
	p.rec.Add(trace.AppMPI, p.clock.Now()-start)
	if replay := l.noteConsumed(lkey, seq); replay {
		p.noteReplay("recv", lkey.src, lkey.tag)
	}
	if p.logRecv == nil {
		p.logRecv = make(map[p2pKey]int)
	}
	p.logRecv[lkey] = seq + 1
	out := make([]byte, len(e.data))
	copy(out, e.data)
	return out
}

// bumpRecv advances the receive cursor for lkey after a live mailbox
// consumption of the message carrying absolute sequence seq (-1 when the
// send was unlogged, in which case the cursor simply increments).
func (p *Proc) bumpRecv(l *MsgLog, lkey p2pKey, seq int) {
	if p.logRecv == nil {
		p.logRecv = make(map[p2pKey]int)
	}
	if seq < 0 {
		seq = p.logRecv[lkey]
		p.logRecv[lkey] = seq + 1
		return
	}
	l.noteConsumed(lkey, seq)
	p.logRecv[lkey] = seq + 1
}

// Sendrecv performs a combined send to dst and receive from src, the idiom
// used by halo exchanges and buddy checkpointing. Sends are buffered, so
// paired Sendrecv calls cannot deadlock.
func (c *Comm) Sendrecv(p *Proc, dst, sendTag int, data []byte, src, recvTag int) ([]byte, error) {
	if err := c.Send(p, dst, sendTag, data); err != nil {
		return nil, err
	}
	return c.Recv(p, src, recvTag)
}

// SendrecvSized is Sendrecv with the send cost charged for simBytes.
func (c *Comm) SendrecvSized(p *Proc, dst, sendTag int, data []byte, simBytes, src, recvTag int) ([]byte, error) {
	if err := c.SendSized(p, dst, sendTag, data, simBytes); err != nil {
		return nil, err
	}
	return c.Recv(p, src, recvTag)
}

// Revoke marks the communicator revoked at all processes (ULFM
// MPI_Comm_revoke): every pending and future operation on it fails with
// ErrRevoked, except Shrink and Agree. Revocation is what turns one rank's
// local failure knowledge into a single global control-flow exit point.
//
// Mechanically, Revoke records the revoker's own departure from the
// communicator: the revoker will never again service operations on it, so
// peers blocked on the revoker release with ErrRevoked at the revocation
// stamp, and in a failure flow every other member departs deterministically
// through its own MPI error (Comm.fail). Pending operations are thus
// released by member departures — anchored in virtual time — rather than by
// the wall-clock moment the revocation flag becomes visible.
func (c *Comm) Revoke(p *Proc) {
	c.checkMember(p, "Revoke")
	if !c.revoked.Swap(true) {
		// The counter records the revocation once per communicator.
		p.world.obs.Registry().Counter(obs.MRevokes).Inc()
	}
	// Every caller pays its own propagation cost (a reliable broadcast
	// across the comm), emits its own mpi.revoke event, and records its own
	// departure. Attributing any of these to "the first caller to reach the
	// flag" would stamp them with whichever goroutine won the real-time
	// race, breaking replay determinism; per-caller emission keeps each
	// rank's revocation anchored to its own deterministic clock (and is
	// what ULFM semantics look like at the member: each process observes
	// the revocation on its own call path).
	p.Event(obs.LayerMPI, obs.EvRevoke, obs.KV("comm", c.id), obs.KV("size", len(c.group)))
	cost := p.world.machine.CollectiveTime(len(c.group), 4)
	p.clock.Advance(cost)
	p.rec.Add(trace.AppMPI, cost)

	c.world.mu.Lock()
	c.departLocked(p.rank, p.clock.Now())
	c.world.mu.Unlock()
	for _, wr := range c.group {
		c.world.procs[wr].mail.wakeAll()
	}
}

// Split partitions the communicator by color (MPI_Comm_split): members
// passing the same color form a new communicator, ordered by key (ties
// broken by old comm rank). Members passing a negative color receive nil
// (MPI_UNDEFINED). Split is collective.
func (c *Comm) Split(p *Proc, color, key int) (*Comm, error) {
	r, err := c.collectiveLog(p, false, false, payload{a: int64(color), k: int64(key), has: true}, 8)
	if err != nil {
		return nil, err
	}
	w := c.world
	w.mu.Lock()
	defer func() {
		w.mu.Unlock()
		r.release(w)
	}()
	if r.result == nil {
		// Build all sub-communicators once, deterministically.
		type member struct{ color, key, oldRank, worldRank int }
		var members []member
		for cr := range r.slots {
			s := &r.slots[cr]
			if s.state != memberArrived {
				continue
			}
			members = append(members, member{int(s.pl.a), int(s.pl.k), cr, c.group[cr]})
		}
		// Sort by (color, key, old rank).
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				a, b := members[i], members[j]
				if b.color < a.color || (b.color == a.color && (b.key < a.key || (b.key == a.key && b.oldRank < a.oldRank))) {
					members[i], members[j] = members[j], members[i]
				}
			}
		}
		comms := make(map[int]*Comm)
		var groups = make(map[int][]int)
		for _, m := range members {
			if m.color < 0 {
				continue
			}
			groups[m.color] = append(groups[m.color], m.worldRank)
		}
		// Deterministic creation order: ascending color.
		var colors []int
		for col := range groups {
			colors = append(colors, col)
		}
		for i := 0; i < len(colors); i++ {
			for j := i + 1; j < len(colors); j++ {
				if colors[j] < colors[i] {
					colors[i], colors[j] = colors[j], colors[i]
				}
			}
		}
		for _, col := range colors {
			comms[col] = w.newCommLocked(groups[col])
		}
		r.result = comms
	}
	comms := r.result.(map[int]*Comm)
	if color < 0 {
		return nil, nil
	}
	return comms[color], nil
}

// FailedRanks returns the comm ranks currently known to have failed, in
// comm rank order (ULFM MPI_Comm_failure_ack + get_acked).
func (c *Comm) FailedRanks(p *Proc) []int {
	c.checkMember(p, "FailedRanks")
	c.world.mu.Lock()
	defer c.world.mu.Unlock()
	var out []int
	for cr, wr := range c.group {
		if c.world.dead[wr] {
			out = append(out, cr)
		}
	}
	return out
}
