package mpi

import (
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Comm is a communicator: an ordered group of world ranks with its own rank
// numbering, message matching space, and revocation state. Comm values are
// shared between the participating rank goroutines; all methods take the
// calling Proc explicitly (the simulation analogue of the implicit calling
// process in MPI).
type Comm struct {
	world   *World
	id      int64
	group   []int // comm rank -> world rank
	index   map[int]int
	revoked atomic.Bool
}

// Size returns the number of processes in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// ID returns the communicator's unique identifier (for tests and logs).
func (c *Comm) ID() int64 { return c.id }

// Rank returns p's rank within the communicator, or -1 if p is not a
// member.
func (c *Comm) Rank(p *Proc) int {
	if r, ok := c.index[p.rank]; ok {
		return r
	}
	return -1
}

// WorldRank translates a comm rank to a world rank.
func (c *Comm) WorldRank(commRank int) int {
	if commRank < 0 || commRank >= len(c.group) {
		panic(fmt.Sprintf("mpi: comm rank %d out of range [0,%d)", commRank, len(c.group)))
	}
	return c.group[commRank]
}

// Group returns a copy of the comm-rank -> world-rank mapping.
func (c *Comm) Group() []int {
	cp := make([]int, len(c.group))
	copy(cp, c.group)
	return cp
}

// Revoked reports whether the communicator has been revoked.
func (c *Comm) Revoked() bool { return c.revoked.Load() }

func (c *Comm) checkMember(p *Proc, op string) int {
	r := c.Rank(p)
	if r < 0 {
		panic(fmt.Sprintf("mpi: %s by non-member world rank %d on comm %d", op, p.rank, c.id))
	}
	return r
}

// Send transmits data to comm rank dst with the given tag. It is eager and
// buffered: Send does not block waiting for the matching Recv. Send fails
// with FailedError if the destination has died, or ErrRevoked after
// revocation.
func (c *Comm) Send(p *Proc, dst, tag int, data []byte) error {
	return c.SendSized(p, dst, tag, data, len(data))
}

// SendSized is Send with the cost model charged for simBytes instead of the
// real buffer length, used when a small real buffer stands in for
// paper-scale data (see kokkos.View.SimBytes).
func (c *Comm) SendSized(p *Proc, dst, tag int, data []byte, simBytes int) error {
	c.checkMember(p, "Send")
	if c.revoked.Load() {
		return p.failMPI(ErrRevoked)
	}
	dstW := c.WorldRank(dst)
	if c.world.isDead(dstW) {
		p.waitForDetection([]int{dstW})
		return p.failMPI(newFailedError([]int{dstW}))
	}
	cost := p.world.machine.TransferTime(simBytes) * p.congestionFactor()
	p.clock.Advance(cost)
	p.rec.Add(trace.AppMPI, cost)

	cp := make([]byte, len(data))
	copy(cp, data)
	c.world.procs[dstW].mail.deliver(
		msgKey{comm: c.id, src: p.rank, tag: tag},
		message{data: cp, arriveAt: p.clock.Now()},
	)
	return nil
}

// Recv blocks until a message with the given tag from comm rank src
// arrives. It fails with FailedError if the sender dies before a matching
// message is available, or ErrRevoked after revocation.
func (c *Comm) Recv(p *Proc, src, tag int) ([]byte, error) {
	c.checkMember(p, "Recv")
	srcW := c.WorldRank(src)
	start := p.clock.Now()
	key := msgKey{comm: c.id, src: srcW, tag: tag}
	msg, err := p.mail.receive(key, func() error {
		if c.revoked.Load() {
			return ErrRevoked
		}
		if c.world.isDead(srcW) {
			return newFailedError([]int{srcW})
		}
		return nil
	})
	if err != nil {
		if IsProcessFailure(err) {
			p.waitForDetection([]int{srcW})
		}
		// Account the blocked time up to failure detection.
		p.rec.Add(trace.AppMPI, p.clock.Now()-start)
		return nil, p.failMPI(err)
	}
	p.clock.AdvanceTo(msg.arriveAt)
	recvOverhead := p.world.machine.NetLatency * p.congestionFactor()
	p.clock.Advance(recvOverhead)
	p.rec.Add(trace.AppMPI, p.clock.Now()-start)
	return msg.data, nil
}

// Sendrecv performs a combined send to dst and receive from src, the idiom
// used by halo exchanges and buddy checkpointing. Sends are buffered, so
// paired Sendrecv calls cannot deadlock.
func (c *Comm) Sendrecv(p *Proc, dst, sendTag int, data []byte, src, recvTag int) ([]byte, error) {
	if err := c.Send(p, dst, sendTag, data); err != nil {
		return nil, err
	}
	return c.Recv(p, src, recvTag)
}

// SendrecvSized is Sendrecv with the send cost charged for simBytes.
func (c *Comm) SendrecvSized(p *Proc, dst, sendTag int, data []byte, simBytes, src, recvTag int) ([]byte, error) {
	if err := c.SendSized(p, dst, sendTag, data, simBytes); err != nil {
		return nil, err
	}
	return c.Recv(p, src, recvTag)
}

// Revoke marks the communicator revoked at all processes (ULFM
// MPI_Comm_revoke): every pending and future operation on it fails with
// ErrRevoked, except Shrink and Agree. Revocation is what turns one rank's
// local failure knowledge into a single global control-flow exit point.
func (c *Comm) Revoke(p *Proc) {
	c.checkMember(p, "Revoke")
	if c.revoked.Swap(true) {
		return
	}
	p.Event(obs.LayerMPI, obs.EvRevoke, obs.KV("comm", c.id), obs.KV("size", len(c.group)))
	p.world.obs.Registry().Counter(obs.MRevokes).Inc()
	// Propagation cost: a reliable broadcast across the comm.
	cost := p.world.machine.CollectiveTime(len(c.group), 4)
	p.clock.Advance(cost)
	p.rec.Add(trace.AppMPI, cost)

	c.world.mu.Lock()
	for key, rv := range c.world.colls {
		// Tolerant collectives (Shrink/Agree) survive revocation, as in
		// ULFM; only regular operations are poisoned.
		if rv.comm == c && !rv.tolerant && !rv.completed {
			rv.err = ErrRevoked
			rv.finishLocked(p.clock.Now())
			delete(c.world.colls, key)
		}
	}
	c.world.mu.Unlock()
	for _, wr := range c.group {
		c.world.procs[wr].mail.wakeAll()
	}
}

// Split partitions the communicator by color (MPI_Comm_split): members
// passing the same color form a new communicator, ordered by key (ties
// broken by old comm rank). Members passing a negative color receive nil
// (MPI_UNDEFINED). Split is collective.
func (c *Comm) Split(p *Proc, color, key int) (*Comm, error) {
	payload := [2]int{color, key}
	r, err := c.collective(p, false, payload, 8)
	if err != nil {
		return nil, err
	}
	w := c.world
	w.mu.Lock()
	defer w.mu.Unlock()
	if r.result == nil {
		// Build all sub-communicators once, deterministically.
		type member struct{ color, key, oldRank, worldRank int }
		var members []member
		for wr, a := range r.arrivals {
			pl := a.payload.([2]int)
			members = append(members, member{pl[0], pl[1], c.index[wr], wr})
		}
		// Sort by (color, key, old rank).
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				a, b := members[i], members[j]
				if b.color < a.color || (b.color == a.color && (b.key < a.key || (b.key == a.key && b.oldRank < a.oldRank))) {
					members[i], members[j] = members[j], members[i]
				}
			}
		}
		comms := make(map[int]*Comm)
		var groups = make(map[int][]int)
		for _, m := range members {
			if m.color < 0 {
				continue
			}
			groups[m.color] = append(groups[m.color], m.worldRank)
		}
		// Deterministic creation order: ascending color.
		var colors []int
		for col := range groups {
			colors = append(colors, col)
		}
		for i := 0; i < len(colors); i++ {
			for j := i + 1; j < len(colors); j++ {
				if colors[j] < colors[i] {
					colors[i], colors[j] = colors[j], colors[i]
				}
			}
		}
		for _, col := range colors {
			comms[col] = w.newCommLocked(groups[col])
		}
		r.result = comms
	}
	comms := r.result.(map[int]*Comm)
	if color < 0 {
		return nil, nil
	}
	return comms[color], nil
}

// FailedRanks returns the comm ranks currently known to have failed, in
// comm rank order (ULFM MPI_Comm_failure_ack + get_acked).
func (c *Comm) FailedRanks(p *Proc) []int {
	c.checkMember(p, "FailedRanks")
	c.world.mu.Lock()
	defer c.world.mu.Unlock()
	var out []int
	for cr, wr := range c.group {
		if c.world.dead[wr] {
			out = append(out, cr)
		}
	}
	return out
}
