package mpi

import (
	"os"
	"strings"
	"testing"
)

// TestEngineDesignDocumented cross-checks the engine against DESIGN.md §10
// ("Simulator engine"), the way the obs taxonomy is cross-checked against
// OBSERVABILITY.md: the section must exist and must document the engine
// names, the execution modes and their blocking discipline, the
// throughput gate, and the determinism contract's total event order. This
// keeps the architecture document from silently drifting away from the
// code it describes.
func TestEngineDesignDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatalf("reading DESIGN.md: %v", err)
	}
	text := string(doc)
	if !strings.Contains(text, "## 10. Simulator engine") {
		t.Fatalf("DESIGN.md is missing the '## 10. Simulator engine' section")
	}
	sect := text[strings.Index(text, "## 10. Simulator engine"):]
	for _, anchor := range []string{
		"`EngineTree`",
		"`EngineFlat`",
		"`BenchmarkSimThroughput`",
		"(time, rank, seq)",
		"`sync.Pool`",
		"FailureDetectionLatency",
		"`ExecPool`",
		"`ExecGoroutine`",
		"SetExecMode",
		"BlockBegin",
		"TestScale8192HeatdisReplay",
	} {
		if !strings.Contains(sect, anchor) {
			t.Errorf("DESIGN.md §10 does not mention %s", anchor)
		}
	}
}
