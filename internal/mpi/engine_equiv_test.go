package mpi

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// Tree/flat collective-engine equivalence. EngineFlat is the executable
// specification of the rendezvous semantics; EngineTree must produce the
// same per-rank results, the same errors, the same final virtual clocks,
// and the same observability event stream for any failure-free program and
// for mid-program rank failures. These tests run one mixed collective
// program — every collective family, a Split, a mid-run failure, a Shrink,
// and an Agree — under both engines and compare the complete transcripts.

// engineTrace is everything observable about one scenario run.
type engineTrace struct {
	transcripts [][]string // per world rank, in program order
	clocks      []float64  // final virtual clock per rank
	events      []byte     // obs JSONL stream, (time, rank, seq)-ordered
}

// runEngineScenario executes the mixed collective program on a fresh world
// of n ranks using the given engine. Rank n-1 exits mid-program; the
// survivors observe the failure, shrink, and continue on the shrunk
// communicator.
func runEngineScenario(t *testing.T, n int, e Engine) engineTrace {
	return runScenario(t, n, e, ExecGoroutine, 0)
}

// runScenario is runEngineScenario with the execution mode as a second
// dimension (exec_equiv_test.go); workers <= 0 selects the default pool
// size.
func runScenario(t *testing.T, n int, e Engine, exec ExecMode, workers int) engineTrace {
	t.Helper()
	cl := cluster.New(n, quietMachine())
	w := NewWorld(cl, n, 1, false, 1, 0)
	w.SetEngine(e)
	w.SetExecModeWorkers(exec, workers)
	rec := obs.New()
	rec.SetRingCapacity(1 << 20)
	w.SetObs(rec)

	transcripts := make([][]string, n)
	var mu sync.Mutex
	note := func(p *Proc, format string, args ...any) {
		mu.Lock()
		transcripts[p.Rank()] = append(transcripts[p.Rank()], fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	runWorld(w, func(p *Proc) error {
		c := w.CommWorld()
		me := c.Rank(p)

		if err := c.Barrier(p); err != nil {
			return err
		}
		note(p, "barrier t=%.9f", p.Now())

		sum, err := c.AllreduceF64(p, []float64{float64(me), float64(2 * me)}, OpSum)
		if err != nil {
			return err
		}
		note(p, "allreduce %v t=%.9f", sum, p.Now())

		var seed []byte
		if me == 0 {
			seed = bytes.Repeat([]byte{7}, 64)
		}
		got, err := c.Bcast(p, 0, seed)
		if err != nil {
			return err
		}
		note(p, "bcast len=%d sum=%d t=%.9f", len(got), sumBytes(got), p.Now())

		all, err := c.AllgatherB(p, []byte{byte(me), byte(me + 1)})
		if err != nil {
			return err
		}
		note(p, "allgather %d t=%.9f", sumNested(all), p.Now())

		gathered, err := c.GatherB(p, 1, []byte{byte(me * 3)})
		if err != nil {
			return err
		}
		note(p, "gather %d t=%.9f", sumNested(gathered), p.Now())

		var chunks [][]byte
		if me == 1 {
			chunks = make([][]byte, c.Size())
			for i := range chunks {
				chunks[i] = []byte{byte(i), byte(i + 1)}
			}
		}
		chunk, err := c.ScatterB(p, 1, chunks)
		if err != nil {
			return err
		}
		note(p, "scatter %v t=%.9f", chunk, p.Now())

		out := make([][]byte, c.Size())
		for i := range out {
			out[i] = []byte{byte(me), byte(i)}
		}
		exch, err := c.AlltoallB(p, out)
		if err != nil {
			return err
		}
		note(p, "alltoall %d t=%.9f", sumNested(exch), p.Now())

		rs := make([]float64, c.Size())
		for i := range rs {
			rs[i] = float64(me + i)
		}
		mine, err := c.ReduceScatterF64(p, rs, OpMax)
		if err != nil {
			return err
		}
		note(p, "reducescatter %v t=%.9f", mine, p.Now())

		sub, err := c.Split(p, me%2, me)
		if err != nil {
			return err
		}
		subSum, err := sub.AllreduceF64(p, []float64{float64(me + 1)}, OpSum)
		if err != nil {
			return err
		}
		note(p, "split size=%d sum=%v t=%.9f", sub.Size(), subSum, p.Now())

		// Mid-program failure: the last rank dies instead of entering the
		// next collective; every survivor must observe the same FailedError.
		if me == c.Size()-1 {
			note(p, "exiting t=%.9f", p.Now())
			p.Exit()
		}
		_, err = c.AllreduceF64(p, []float64{1}, OpSum)
		note(p, "failed allreduce err=%v t=%.9f", err, p.Now())
		if err == nil {
			return fmt.Errorf("rank %d: allreduce with dead member succeeded", me)
		}

		shrunk, err := c.Shrink(p)
		if err != nil {
			return err
		}
		note(p, "shrink size=%d t=%.9f", shrunk.Size(), p.Now())

		flag, err := shrunk.Agree(p, uint32(1<<uint(me%8)))
		if err != nil {
			return err
		}
		note(p, "agree %#x t=%.9f", flag, p.Now())

		final, err := shrunk.AllreduceF64(p, []float64{float64(me)}, OpSum)
		if err != nil {
			return err
		}
		note(p, "final allreduce %v t=%.9f", final, p.Now())
		return nil
	})

	clocks := make([]float64, n)
	for i := 0; i < n; i++ {
		clocks[i] = w.Proc(i).Now()
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("obs recorder dropped %d events; raise the ring capacity", rec.Dropped())
	}
	return engineTrace{transcripts: transcripts, clocks: clocks, events: buf.Bytes()}
}

func sumBytes(b []byte) int {
	s := 0
	for _, v := range b {
		s += int(v)
	}
	return s
}

func sumNested(bs [][]byte) int {
	s := 0
	for _, b := range bs {
		s += sumBytes(b)
	}
	return s
}

func testEngineEquivalence(t *testing.T, n int) {
	tree := runEngineScenario(t, n, EngineTree)
	flat := runEngineScenario(t, n, EngineFlat)

	for r := 0; r < n; r++ {
		if got, want := tree.transcripts[r], flat.transcripts[r]; !equalStrings(got, want) {
			t.Errorf("rank %d transcripts differ:\ntree: %v\nflat: %v", r, got, want)
		}
		if tree.clocks[r] != flat.clocks[r] {
			t.Errorf("rank %d final clock: tree %.12f, flat %.12f", r, tree.clocks[r], flat.clocks[r])
		}
	}
	if !bytes.Equal(tree.events, flat.events) {
		t.Errorf("event streams differ: tree %d bytes, flat %d bytes", len(tree.events), len(flat.events))
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEngineEquivalence8(t *testing.T)  { testEngineEquivalence(t, 8) }
func TestEngineEquivalence64(t *testing.T) { testEngineEquivalence(t, 64) }

// TestEngineEquivalenceReplay runs the tree engine twice on the same
// scenario and requires byte-identical event streams: the pooled op state
// and atomic release path must not leak wall-clock scheduling into the
// virtual outcome.
func TestEngineEquivalenceReplay(t *testing.T) {
	a := runEngineScenario(t, 16, EngineTree)
	b := runEngineScenario(t, 16, EngineTree)
	if !bytes.Equal(a.events, b.events) {
		t.Fatal("tree engine event streams differ across replays of the same scenario")
	}
}

// TestTreeTopology pins the binomial-tree shape the engine propagates
// completion over.
func TestTreeTopology(t *testing.T) {
	for _, tc := range []struct {
		r, parent int
	}{{1, 0}, {2, 0}, {3, 2}, {4, 0}, {5, 4}, {6, 4}, {7, 6}, {12, 8}, {13, 12}} {
		if got := treeParent(tc.r); got != tc.parent {
			t.Errorf("treeParent(%d) = %d, want %d", tc.r, got, tc.parent)
		}
	}
	// In a binomial tree over p ranks, parent links cover every non-root
	// exactly once, and each node's pending counter is 1 + its child count.
	for _, p := range []int{1, 2, 3, 5, 8, 13, 64, 100} {
		counts := make([]int, p)
		for r := 1; r < p; r++ {
			counts[treeParent(r)]++
		}
		init := buildTreeInit(p)
		total := 0
		for r := 0; r < p; r++ {
			if want := int32(1 + counts[r]); init[r] != want {
				t.Errorf("p=%d: init[%d] = %d, want %d", p, r, init[r], want)
			}
			total += treeChildCount(r, p)
		}
		if total != p-1 {
			t.Errorf("p=%d: child links %d, want %d", p, total, p-1)
		}
	}
}
