package mpi

import (
	"errors"
	"fmt"
	"sort"
)

// FailedError is the simulation's MPI_ERR_PROC_FAILED: an operation could
// not complete because one or more participating processes have failed.
// WorldRanks lists the failed processes by world rank, sorted ascending.
type FailedError struct {
	WorldRanks []int
}

// Error implements the error interface.
func (e *FailedError) Error() string {
	return fmt.Sprintf("mpi: process failure detected (world ranks %v)", e.WorldRanks)
}

// ErrRevoked is the simulation's MPI_ERR_REVOKED: the communicator has been
// revoked and no further point-to-point or collective operations may use it.
var ErrRevoked = errors.New("mpi: communicator revoked")

// IsProcessFailure reports whether err indicates a process failure
// (MPI_ERR_PROC_FAILED in ULFM terms).
func IsProcessFailure(err error) bool {
	var fe *FailedError
	return errors.As(err, &fe)
}

// IsRevoked reports whether err indicates a revoked communicator.
func IsRevoked(err error) bool { return errors.Is(err, ErrRevoked) }

// IsULFMError reports whether err is either of the two ULFM error classes —
// the conditions Fenix's error handler intercepts.
func IsULFMError(err error) bool { return IsProcessFailure(err) || IsRevoked(err) }

func newFailedError(ranks []int) *FailedError {
	cp := make([]int, len(ranks))
	copy(cp, ranks)
	sort.Ints(cp)
	return &FailedError{WorldRanks: cp}
}

// processKilled is the panic payload used to unwind a rank goroutine whose
// process has been killed by failure injection. The launcher recovers it.
type processKilled struct{ rank int }

// jobAborted is the panic payload used under fail-restart semantics: a rank
// observed a peer failure and the MPI runtime aborts the whole job (the
// behaviour of a default, non-ULFM MPI).
type jobAborted struct {
	rank  int
	cause error
}
