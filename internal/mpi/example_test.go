package mpi_test

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// A minimal MPI program: 4 ranks allreduce their ranks and rank 0 reports.
func Example() {
	machine := sim.DefaultMachine()
	machine.NoiseAmplitude = 0
	res := mpi.RunJob(mpi.JobConfig{Ranks: 4, Machine: machine, Seed: 1}, func(p *mpi.Proc) error {
		comm := p.World().CommWorld()
		sum, err := comm.AllreduceInt(p, p.Rank(), mpi.OpSum)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			fmt.Println("sum of ranks:", sum)
		}
		return nil
	})
	fmt.Println("failed:", res.Failed)
	// Output:
	// sum of ranks: 6
	// failed: false
}

// ULFM semantics: a failure surfaces as an error at the surviving ranks,
// which can revoke, shrink, and continue on the smaller communicator.
func ExampleComm_Shrink() {
	machine := sim.DefaultMachine()
	machine.NoiseAmplitude = 0
	cl := cluster.New(3, machine)
	w := mpi.NewWorld(cl, 3, 1, false, 1, 0)
	c := w.CommWorld()

	var mu sync.Mutex
	var survivors []int
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(p *mpi.Proc) {
			defer wg.Done()
			defer func() { recover() }() // absorb the injected exit
			if p.Rank() == 1 {
				p.Exit() // simulate a process failure
			}
			if err := c.Barrier(p); mpi.IsProcessFailure(err) {
				c.Revoke(p)
				shrunk, err := c.Shrink(p)
				if err != nil {
					return
				}
				mu.Lock()
				survivors = append(survivors, shrunk.Rank(p))
				mu.Unlock()
			}
		}(w.Proc(i))
	}
	wg.Wait()
	sort.Ints(survivors)
	fmt.Println("survivor ranks in shrunk comm:", survivors)
	// Output:
	// survivor ranks in shrunk comm: [0 1]
}
