// Worker-pool execution mode.
//
// The simulator's original execution model — one free-running goroutine
// per rank — is semantically ideal (every rank is literally a thread of
// control, as in MPI) but costs the host scheduler O(world) pressure: a
// completed world-sized collective makes every member runnable at once,
// and past ~1k ranks the run-queue churn, wake-up herds, and per-op
// allocations dominate ns/rank-step (see PERFORMANCE.md). ExecPool keeps
// the rank goroutine as the carrier of the rank's stack (Go cannot
// suspend a stack without its cooperation) but takes scheduling away from
// the Go runtime: at most K = GOMAXPROCS ranks hold an execution slot at
// any moment, every blocking point in the simulator parks the rank on its
// own one-slot resume channel, and wake-ups become *continuation
// enqueues* — the parked rank is appended to a FIFO ready queue and
// resumed only when a slot frees up. The effect is an event-loop worker
// pool in which the "workers" are execution slots and the "continuation"
// is the rank's own parked goroutine: host cost is bounded by GOMAXPROCS,
// not world size.
//
// ExecGoroutine is retained unmodified as the executable specification
// and equivalence oracle for ExecPool, exactly as EngineFlat is for
// EngineTree: the equivalence tests run both modes over the same programs
// and require identical transcripts, clocks, and event-stream bytes.
//
// Blocking discipline. Every path that can block a rank on another
// rank's progress must, in pool mode, release its slot before parking
// and reacquire one after:
//
//   - Collectives use the continuation path: the arriving rank registers
//     itself on the rendezvous waiter list under world.mu and parks;
//     completion enqueues every waiter (no done channel exists in pool
//     mode, killing both the per-op allocation and the close() herd).
//   - Mailbox receives yield the slot before the first cond.Wait and
//     reacquire after the matching message (or giveUp error) is taken.
//   - Layers above mpi (the Fenix spare wait and repair rendezvous)
//     bracket their channel waits with Proc.BlockBegin/Proc.BlockEnd,
//     the exported form of the same discipline.
//
// A rank that holds a slot and only computes (including the kokkos
// parallel-region helper goroutines, which never touch simulation state)
// needs no bracketing: it cannot deadlock the pool, only keep its slot
// busy, which is the pool working as intended.
//
// Determinism is unaffected by construction: the pool changes only the
// wall-clock order in which rank segments execute, and every simulation
// outcome is a function of virtual clocks and per-rank program order
// (DESIGN.md §10). The equivalence and replay tests pin this.
package mpi

import (
	"fmt"
	"runtime"
	"sync"
)

// ExecMode selects how rank bodies are scheduled onto the host.
type ExecMode int

const (
	// ExecGoroutine (the default) runs every rank as a free-running
	// goroutine under the Go scheduler — the executable specification of
	// the execution model, retained as the equivalence oracle for
	// ExecPool.
	ExecGoroutine ExecMode = iota
	// ExecPool multiplexes rank continuations onto GOMAXPROCS execution
	// slots: at most that many ranks are runnable at once, blocked ranks
	// cost the host scheduler nothing, and collective wake-ups are FIFO
	// continuation enqueues instead of channel-close herds.
	ExecPool
)

// String names the execution mode (flag values and logs).
func (m ExecMode) String() string {
	switch m {
	case ExecGoroutine:
		return "goroutine"
	case ExecPool:
		return "pool"
	}
	return fmt.Sprintf("ExecMode(%d)", int(m))
}

// ParseExecMode parses a -exec flag value. The empty string selects
// ExecGoroutine.
func ParseExecMode(s string) (ExecMode, error) {
	switch s {
	case "", "goroutine":
		return ExecGoroutine, nil
	case "pool":
		return ExecPool, nil
	}
	return ExecGoroutine, fmt.Errorf("mpi: unknown exec mode %q (want goroutine or pool)", s)
}

// execPool is the slot scheduler for ExecPool. It is deliberately tiny:
// a count of free slots and a FIFO of parked ranks ready to run. Ranks
// park by receiving on their own one-slot resume channel; granting a
// slot is a single non-blocking send. All state is guarded by mu, whose
// critical sections are a few machine operations — the pool never holds
// mu across a park or a user callback.
type execPool struct {
	mu    sync.Mutex
	slots int // free execution slots
	ready []*Proc
	head  int // consume index into ready (amortized O(1) FIFO)
}

func newExecPool(workers int) *execPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &execPool{slots: workers}
}

// popLocked removes and returns the next ready rank, or nil.
func (ep *execPool) popLocked() *Proc {
	if ep.head == len(ep.ready) {
		return nil
	}
	p := ep.ready[ep.head]
	ep.ready[ep.head] = nil
	ep.head++
	if ep.head == len(ep.ready) {
		ep.ready = ep.ready[:0]
		ep.head = 0
	}
	return p
}

// wake makes p ready to run: it is granted a free slot immediately or
// joins the FIFO. Safe to call with world.mu or a mailbox lock held (it
// only takes ep.mu and performs a non-blocking send).
func (ep *execPool) wake(p *Proc) {
	ep.mu.Lock()
	if ep.slots > 0 {
		ep.slots--
		ep.mu.Unlock()
		p.resume <- struct{}{}
		return
	}
	ep.ready = append(ep.ready, p)
	ep.mu.Unlock()
}

// wakeAll is wake for a batch: completion of a world-sized collective
// readies O(world) parked members at once, and taking the scheduler lock
// per member would put O(world) lock acquisitions on the completing
// rank's critical path. Slots go to the front of the batch, the rest
// join the FIFO in order, all under one lock acquisition.
func (ep *execPool) wakeAll(ps []*Proc) {
	ep.mu.Lock()
	grant := ep.slots
	if grant > len(ps) {
		grant = len(ps)
	}
	ep.slots -= grant
	ep.ready = append(ep.ready, ps[grant:]...)
	ep.mu.Unlock()
	for _, p := range ps[:grant] {
		p.resume <- struct{}{}
	}
}

// release gives up the caller's slot, handing it to the next ready rank
// if one is queued. Never blocks.
func (ep *execPool) release() {
	ep.mu.Lock()
	if p := ep.popLocked(); p != nil {
		ep.mu.Unlock()
		p.resume <- struct{}{}
		return
	}
	ep.slots++
	ep.mu.Unlock()
}

// park blocks the calling rank until it is granted a slot. The caller
// must have been (or concurrently be) registered via wake, or must have
// arranged for a waker to enqueue it.
func (p *Proc) park() { <-p.resume }

// poolEnter admits the rank into the pool at launch: it queues for a
// slot and parks until granted one.
func (p *Proc) poolEnter() {
	if ep := p.world.pool; ep != nil {
		ep.wake(p)
		p.park()
	}
}

// poolExit releases the rank's slot when its body returns or unwinds.
func (p *Proc) poolExit() {
	if ep := p.world.pool; ep != nil {
		ep.release()
	}
}

// yieldSlot releases the caller's slot ahead of a wait that is not
// mediated by the pool (a mailbox cond.Wait). It reports whether a slot
// was actually yielded (false under ExecGoroutine), in which case the
// caller must reacquire via regainSlot once the wait is over. Safe to
// call with a mailbox lock held.
func (p *Proc) yieldSlot() bool {
	ep := p.world.pool
	if ep == nil {
		return false
	}
	ep.release()
	return true
}

// regainSlot queues the caller for a slot and parks until granted one.
// Must not be called with any simulation lock held.
func (p *Proc) regainSlot() {
	ep := p.world.pool
	ep.wake(p)
	p.park()
}

// BlockBegin releases the calling rank's execution slot before a wait on
// another rank's progress that is implemented outside the MPI core (the
// Fenix spare wait and repair rendezvous block on their own channels).
// It is a no-op under ExecGoroutine. Every BlockBegin must be paired
// with a BlockEnd after the wait returns; between the two the rank may
// only wait — running simulation code without a slot would defeat the
// pool's bounded-runnable invariant.
func (p *Proc) BlockBegin() {
	if ep := p.world.pool; ep != nil {
		ep.release()
	}
}

// BlockEnd reacquires an execution slot after a BlockBegin-bracketed
// wait. It is a no-op under ExecGoroutine.
func (p *Proc) BlockEnd() {
	if ep := p.world.pool; ep != nil {
		ep.wake(p)
		p.park()
	}
}

// bufFree recycles collective payload buffers in pool mode. It is a
// plain mutex-guarded freelist rather than a sync.Pool because Put-ing a
// slice into a sync.Pool boxes the slice header into an interface — one
// heap allocation per recycled buffer, which is exactly the allocation
// the recycling exists to remove. The mutex is a leaf lock: taken only
// here, never while holding it. Buffers whose capacity no longer fits
// are dropped on the floor and collected normally, so the list
// self-corrects when payload sizes grow.
type bufFree struct {
	mu  sync.Mutex
	f64 [][]float64
	b   [][]byte
}

// payloadF64 takes a recycled float64 payload buffer of length n. Pool
// mode only: the buffer is recycled by releaseOp once the op's last
// reference drops, which is safe because payload slices are only read
// while the rendezvous is live. Under ExecGoroutine the buffer is
// freshly allocated, preserving the specification mode's allocation
// behaviour unchanged.
func (w *World) payloadF64(n int) []float64 {
	if w.pool == nil {
		return make([]float64, n)
	}
	w.bufs.mu.Lock()
	if k := len(w.bufs.f64); k > 0 {
		buf := w.bufs.f64[k-1]
		w.bufs.f64[k-1] = nil
		w.bufs.f64 = w.bufs.f64[:k-1]
		w.bufs.mu.Unlock()
		if cap(buf) >= n {
			return buf[:n]
		}
		return make([]float64, n)
	}
	w.bufs.mu.Unlock()
	return make([]float64, n)
}

// payloadB is payloadF64 for byte payloads.
func (w *World) payloadB(n int) []byte {
	if w.pool == nil {
		return make([]byte, n)
	}
	w.bufs.mu.Lock()
	if k := len(w.bufs.b); k > 0 {
		buf := w.bufs.b[k-1]
		w.bufs.b[k-1] = nil
		w.bufs.b = w.bufs.b[:k-1]
		w.bufs.mu.Unlock()
		if cap(buf) >= n {
			return buf[:n]
		}
		return make([]byte, n)
	}
	w.bufs.mu.Unlock()
	return make([]byte, n)
}

// recyclePayload returns a slot's recyclable buffers (the typed f64/byte
// contributions taken via payloadF64/payloadB) to the freelist. No-op
// outside pool mode. The per-destination [][]byte contributions
// (Scatter/Alltoall) are not recycled: they are off the steady-state hot
// path and their jagged shapes defeat a simple freelist.
func (w *World) recyclePayload(pl *payload) {
	if w.pool == nil || (pl.f64 == nil && pl.b == nil) {
		return
	}
	w.bufs.mu.Lock()
	if pl.f64 != nil {
		w.bufs.f64 = append(w.bufs.f64, pl.f64)
	}
	if pl.b != nil {
		w.bufs.b = append(w.bufs.b, pl.b)
	}
	w.bufs.mu.Unlock()
}
