package mpi

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// Goroutine/pool execution-mode equivalence. ExecGoroutine is the
// executable specification of the execution model; ExecPool must produce
// the same per-rank transcripts, the same final virtual clocks, and the
// same observability event-stream bytes for any program, including
// mid-program rank failures — the worker pool may only change the
// wall-clock interleaving of rank segments, never a virtual outcome
// (DESIGN.md §10). These tests reuse the mixed collective scenario from
// the engine equivalence suite and add the pool dimension.

// testExecEquivalence compares ExecGoroutine against ExecPool (at the
// default slot count and at a deliberately starved one, which maximizes
// multiplexing and would deadlock on any blocking path that fails to
// yield its slot).
func testExecEquivalence(t *testing.T, n int) {
	spec := runScenario(t, n, EngineTree, ExecGoroutine, 0)
	for _, workers := range []int{0, 1, 2} {
		name := "default"
		if workers > 0 {
			name = fmt.Sprintf("%d", workers)
		}
		pool := runScenario(t, n, EngineTree, ExecPool, workers)
		for r := 0; r < n; r++ {
			if got, want := pool.transcripts[r], spec.transcripts[r]; !equalStrings(got, want) {
				t.Errorf("workers=%s rank %d transcripts differ:\npool:      %v\ngoroutine: %v", name, r, got, want)
			}
			if pool.clocks[r] != spec.clocks[r] {
				t.Errorf("workers=%s rank %d final clock: pool %.12f, goroutine %.12f", name, r, pool.clocks[r], spec.clocks[r])
			}
		}
		if !bytes.Equal(pool.events, spec.events) {
			t.Errorf("workers=%s event streams differ: pool %d bytes, goroutine %d bytes", name, len(pool.events), len(spec.events))
		}
	}
}

func TestExecEquivalence8(t *testing.T)  { testExecEquivalence(t, 8) }
func TestExecEquivalence64(t *testing.T) { testExecEquivalence(t, 64) }

// TestExecEquivalence1024 is the scale cell of the equivalence matrix:
// a world-sized mixed program with a mid-run failure, pool vs goroutine,
// compared byte-for-byte. It runs under -race in CI's test job.
func TestExecEquivalence1024(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-rank equivalence skipped in -short")
	}
	spec := runScenario(t, 1024, EngineTree, ExecGoroutine, 0)
	pool := runScenario(t, 1024, EngineTree, ExecPool, 0)
	for r := 0; r < 1024; r++ {
		if got, want := pool.transcripts[r], spec.transcripts[r]; !equalStrings(got, want) {
			t.Fatalf("rank %d transcripts differ:\npool:      %v\ngoroutine: %v", r, got, want)
		}
		if pool.clocks[r] != spec.clocks[r] {
			t.Fatalf("rank %d final clock: pool %.12f, goroutine %.12f", r, pool.clocks[r], spec.clocks[r])
		}
	}
	if !bytes.Equal(pool.events, spec.events) {
		t.Fatal("event streams differ between pool and goroutine mode at 1024 ranks")
	}
}

// TestExecPoolReplay runs the pool twice on the same scenario and
// requires byte-identical event streams: the slot scheduler's FIFO
// handoffs and the recycled payload buffers must not leak wall-clock
// scheduling into the virtual outcome.
func TestExecPoolReplay(t *testing.T) {
	a := runScenario(t, 64, EngineTree, ExecPool, 0)
	b := runScenario(t, 64, EngineTree, ExecPool, 3)
	if !bytes.Equal(a.events, b.events) {
		t.Fatal("pool event streams differ across replays (different slot counts) of the same scenario")
	}
}

// TestExecPoolEventOrder is the regression test for the global event
// order under pooled execution: the exported stream must be sorted by
// (time, rank, seq) — the within-rank Seq monotonicity that makes the
// sort deterministic holds regardless of how rank segments interleave on
// the host — and must match goroutine mode byte-for-byte.
func TestExecPoolEventOrder(t *testing.T) {
	trace := runScenario(t, 32, EngineTree, ExecPool, 2)
	lines := bytes.Split(bytes.TrimSpace(trace.events), []byte("\n"))
	if len(lines) < 32 {
		t.Fatalf("suspiciously small event stream: %d lines", len(lines))
	}
	spec := runScenario(t, 32, EngineTree, ExecGoroutine, 0)
	if !bytes.Equal(trace.events, spec.events) {
		t.Fatal("pool-mode event stream diverges from the goroutine-mode (time, rank, seq) order")
	}
}

// TestExecPoolRecorderOrder checks the (time, rank, seq) sort invariant
// directly on the recorder's event slice after a pool-mode run.
func TestExecPoolRecorderOrder(t *testing.T) {
	w := testWorld(16)
	w.SetExecModeWorkers(ExecPool, 2)
	rec := obs.New()
	rec.SetRingCapacity(1 << 16)
	w.SetObs(rec)
	runWorld(w, func(p *Proc) error {
		c := w.CommWorld()
		for i := 0; i < 4; i++ {
			if _, err := c.AllreduceF64(p, []float64{float64(p.Rank() + i)}, OpSum); err != nil {
				return err
			}
			if err := c.Barrier(p); err != nil {
				return err
			}
		}
		return nil
	})
	evs := rec.Events()
	for i := 1; i < len(evs); i++ {
		a, b := evs[i-1], evs[i]
		if a.Time > b.Time ||
			(a.Time == b.Time && a.Rank > b.Rank) ||
			(a.Time == b.Time && a.Rank == b.Rank && a.Seq > b.Seq) {
			t.Fatalf("events out of (time, rank, seq) order at %d: (%g,%d,%d) then (%g,%d,%d)",
				i, a.Time, a.Rank, a.Seq, b.Time, b.Rank, b.Seq)
		}
	}
}

// TestExecPoolFlushSchedule pins deterministic flush scheduling under
// pooled execution: co-resident ranks (4 per node — the configuration
// whose virtual skew would make the schedule wall-order dependent if the
// scheduler ever keyed on submission order, see cluster/flushsched.go)
// push coalescing windowed flushes through cluster.FlushSubmit — the
// deadline-ordered, fixed-Share path the VeloC policy layer uses — from
// their own virtual clocks, interleaved with collectives whose
// congestion probes advance the scheduler. The committed flush windows,
// coalesce counts, per-node queue depths, final clocks, and the event
// stream must be identical across execution modes and pool sizes: every
// scheduling input is a pure function of virtual time, so host-side slot
// scheduling must not be able to reorder the committed schedule.
func TestExecPoolFlushSchedule(t *testing.T) {
	const ranks, perNode, iters = 32, 4, 6
	type flushTrace struct {
		transcripts [][]string
		windows     map[string]string // "rank/version" -> committed [start, end)
		clocks      []float64
		queued      []int
		events      []byte
	}
	run := func(exec ExecMode, workers int) flushTrace {
		cl := cluster.New(ranks/perNode, quietMachine())
		cl.SetFlushPolicy(cluster.FlushPolicy{Window: 2, Coalesce: true})
		w := NewWorld(cl, ranks, perNode, false, 1, 0)
		w.SetExecModeWorkers(exec, workers)
		rec := obs.New()
		rec.SetRingCapacity(1 << 20)
		w.SetObs(rec)
		transcripts := make([][]string, ranks)
		windows := make(map[string]string)
		var mu sync.Mutex
		errs := runWorld(w, func(p *Proc) error {
			c := w.CommWorld()
			me := c.Rank(p)
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("ckpt-%d", me)
				data := bytes.Repeat([]byte{byte(me + i)}, 256)
				p.clock.Advance(p.node.ScratchWriteSized(key, data, 64<<20))
				now := p.clock.Now()
				id := fmt.Sprintf("%d/%d", me, i)
				req := cluster.FlushRequest{
					Key: key, PFSKey: fmt.Sprintf("pfs-%s", id),
					Owner:       me,
					Deadline:    now + 0.01,
					CoalesceKey: key,
					Version:     i,
					Share:       perNode,
					// Commit wall-order is scheduler-internal; collect the
					// windows keyed by identity and compare as a set.
					OnStart: func(start, end float64, _ int) {
						mu.Lock()
						windows[id] = fmt.Sprintf("[%.9f, %.9f)", start, end)
						mu.Unlock()
					},
				}
				_, _, coalesced, err := p.node.FlushSubmit(req, now)
				if err != nil {
					return err
				}
				mu.Lock()
				transcripts[p.Rank()] = append(transcripts[p.Rank()],
					fmt.Sprintf("submit %d t=%.9f coalesced=%d", i, now, coalesced))
				mu.Unlock()
				if _, err := c.AllreduceF64(p, []float64{float64(me + i)}, OpSum); err != nil {
					return err
				}
			}
			return c.Barrier(p)
		})
		for r, err := range errs {
			if err != nil {
				t.Fatalf("exec=%v workers=%d rank %d: %v", exec, workers, r, err)
			}
		}
		tr := flushTrace{transcripts: transcripts, windows: windows, clocks: make([]float64, ranks)}
		for i := 0; i < ranks; i++ {
			tr.clocks[i] = w.Proc(i).Now()
		}
		// Queue depths at the virtual end state, then drain the stragglers
		// so the committed-window set is complete.
		for nd := 0; nd < ranks/perNode; nd++ {
			tr.queued = append(tr.queued, cl.Node(nd).QueuedFlushes())
		}
		cl.AdvanceFlushes(tr.clocks[0] + 1e6)
		var buf bytes.Buffer
		if err := rec.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		tr.events = buf.Bytes()
		return tr
	}
	spec := run(ExecGoroutine, 0)
	for _, workers := range []int{0, 1, 3} {
		pool := run(ExecPool, workers)
		for r := 0; r < ranks; r++ {
			if !equalStrings(pool.transcripts[r], spec.transcripts[r]) {
				t.Errorf("workers=%d rank %d submissions differ:\npool:      %v\ngoroutine: %v",
					workers, r, pool.transcripts[r], spec.transcripts[r])
			}
			if pool.clocks[r] != spec.clocks[r] {
				t.Errorf("workers=%d rank %d final clock: pool %.12f, goroutine %.12f",
					workers, r, pool.clocks[r], spec.clocks[r])
			}
		}
		if len(pool.windows) != len(spec.windows) {
			t.Errorf("workers=%d committed flush count: pool %d, goroutine %d",
				workers, len(pool.windows), len(spec.windows))
		}
		for id, want := range spec.windows {
			if got := pool.windows[id]; got != want {
				t.Errorf("workers=%d flush %s window: pool %s, goroutine %s", workers, id, got, want)
			}
		}
		for nd := range spec.queued {
			if pool.queued[nd] != spec.queued[nd] {
				t.Errorf("workers=%d node %d queued flushes: pool %d, goroutine %d",
					workers, nd, pool.queued[nd], spec.queued[nd])
			}
		}
		if !bytes.Equal(pool.events, spec.events) {
			t.Errorf("workers=%d flush event streams differ: pool %d bytes, goroutine %d bytes",
				workers, len(pool.events), len(spec.events))
		}
	}
}

// TestExecModeParse pins the flag-value round trip.
func TestExecModeParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ExecMode
		ok   bool
	}{
		{"", ExecGoroutine, true},
		{"goroutine", ExecGoroutine, true},
		{"pool", ExecPool, true},
		{"threads", ExecGoroutine, false},
	} {
		got, err := ParseExecMode(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseExecMode(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if ExecPool.String() != "pool" || ExecGoroutine.String() != "goroutine" {
		t.Errorf("ExecMode.String() = %q / %q", ExecPool.String(), ExecGoroutine.String())
	}
}

// TestExecPoolP2P drives the point-to-point slot-yield path hard: a ring
// of ranks exchanging messages under a single-slot pool, where any
// receive that failed to yield its slot would deadlock the world.
func TestExecPoolP2P(t *testing.T) {
	const n = 16
	w := testWorld(n)
	w.SetExecModeWorkers(ExecPool, 1)
	errs := runWorld(w, func(p *Proc) error {
		c := w.CommWorld()
		me := c.Rank(p)
		next, prev := (me+1)%n, (me+n-1)%n
		for i := 0; i < 8; i++ {
			got, err := c.Sendrecv(p, next, i, []byte{byte(me), byte(i)}, prev, i)
			if err != nil {
				return err
			}
			if got[0] != byte(prev) || got[1] != byte(i) {
				return fmt.Errorf("rank %d round %d: got %v", me, i, got)
			}
		}
		return c.Barrier(p)
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}
