package mpi

import "testing"

// FuzzDecodeF64 hardens the float codec against arbitrary byte lengths.
func FuzzDecodeF64(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeF64([]float64{1, 2, 3}))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, b []byte) {
		v, err := DecodeF64(b)
		if err == nil && len(v) != len(b)/8 {
			t.Fatalf("decoded %d values from %d bytes", len(v), len(b))
		}
		if err == nil {
			// Round trip.
			if got := EncodeF64(v); len(got) != len(b) {
				t.Fatalf("re-encode length %d != %d", len(got), len(b))
			}
		}
	})
}
