package mpi

import "fmt"

// This file adds the rooted collectives Gather and Scatter plus
// AllgatherF64, rounding out the collective set the evaluation
// applications and examples draw on.

// GatherB gathers each member's byte payload at root, indexed by comm
// rank; non-root members receive nil.
func (c *Comm) GatherB(p *Proc, root int, data []byte) ([][]byte, error) {
	cp := c.world.payloadB(len(data))
	copy(cp, data)
	r, err := c.collective(p, false, payload{b: cp, has: true}, len(data))
	if err != nil {
		return nil, err
	}
	defer r.release(c.world)
	if c.Rank(p) != root {
		return nil, nil
	}
	out := make([][]byte, len(c.group))
	for cr := range r.slots {
		s := &r.slots[cr]
		if s.state != memberArrived {
			continue
		}
		src := s.pl.b
		buf := make([]byte, len(src))
		copy(buf, src)
		out[cr] = buf
	}
	return out, nil
}

// ScatterB distributes root's per-rank chunks: chunks[i] goes to comm rank
// i. Non-root members pass nil. Every member receives its chunk.
func (c *Comm) ScatterB(p *Proc, root int, chunks [][]byte) ([]byte, error) {
	var pl payload
	bytes := 0
	if c.Rank(p) == root {
		cp := make([][]byte, len(chunks))
		for i, ch := range chunks {
			cp[i] = make([]byte, len(ch))
			copy(cp[i], ch)
			if len(ch) > bytes {
				bytes = len(ch)
			}
		}
		pl = payload{bb: cp, has: true}
	}
	r, err := c.collective(p, false, pl, bytes)
	if err != nil {
		return nil, err
	}
	defer r.release(c.world)
	s := &r.slots[root]
	if s.state != memberArrived || !s.pl.has {
		return nil, c.fail(p, newFailedError([]int{c.WorldRank(root)}))
	}
	all := s.pl.bb
	me := c.Rank(p)
	if me >= len(all) {
		return nil, nil
	}
	out := make([]byte, len(all[me]))
	copy(out, all[me])
	return out, nil
}

// AlltoallB performs a full exchange: every member provides one chunk per
// destination rank (chunks[i] goes to comm rank i) and receives one chunk
// from every source rank (result[j] came from comm rank j).
func (c *Comm) AlltoallB(p *Proc, chunks [][]byte) ([][]byte, error) {
	if len(chunks) != c.Size() {
		return nil, fmt.Errorf("mpi: alltoall needs %d chunks, got %d", c.Size(), len(chunks))
	}
	cp := make([][]byte, len(chunks))
	total := 0
	for i, ch := range chunks {
		cp[i] = make([]byte, len(ch))
		copy(cp[i], ch)
		total += len(ch)
	}
	r, err := c.collective(p, false, payload{bb: cp, has: true}, total)
	if err != nil {
		return nil, err
	}
	defer r.release(c.world)
	me := c.Rank(p)
	out := make([][]byte, c.Size())
	for cr := range r.slots {
		s := &r.slots[cr]
		if s.state != memberArrived {
			continue
		}
		src := s.pl.bb
		buf := make([]byte, len(src[me]))
		copy(buf, src[me])
		out[cr] = buf
	}
	return out, nil
}

// ReduceScatterF64 reduces data element-wise across all members, then
// scatters equal blocks of the result: member i receives elements
// [i*blk, (i+1)*blk) of the reduction, where blk = len(data)/size.
// len(data) must be a multiple of the communicator size.
func (c *Comm) ReduceScatterF64(p *Proc, data []float64, op ReduceOp) ([]float64, error) {
	if len(data)%c.Size() != 0 {
		return nil, fmt.Errorf("mpi: reduce-scatter length %d not a multiple of comm size %d", len(data), c.Size())
	}
	cp := c.world.payloadF64(len(data))
	copy(cp, data)
	r, err := c.collective(p, false, payload{f64: cp, has: true}, 8*len(data))
	if err != nil {
		return nil, err
	}
	defer r.release(c.world)
	full, rerr := c.reduceShared(r, op, len(data))
	if rerr != nil {
		return nil, rerr
	}
	blk := len(data) / c.Size()
	me := c.Rank(p)
	out := make([]float64, blk)
	copy(out, full[me*blk:(me+1)*blk])
	return out, nil
}

// AllgatherF64 gathers each member's float64 payload at every member,
// indexed by comm rank.
func (c *Comm) AllgatherF64(p *Proc, data []float64) ([][]float64, error) {
	raw, err := c.AllgatherB(p, EncodeF64(data))
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(raw))
	for i, b := range raw {
		v, err := DecodeF64(b)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
