package mpi

import "repro/internal/obs"

// Injector receives control at named execution points inside the
// resilience stack. The chaos engine (internal/chaos) implements it to
// kill processes at adversarial moments — inside checkpoint regions,
// during asynchronous flush windows, or in the middle of a Fenix repair —
// generalizing the single iteration-boundary injection of
// core.FailurePlan.
//
// At is called on the visited rank's own goroutine with no runtime locks
// held, so an implementation may call Proc.Exit / Proc.ExitInjected to
// terminate the rank at that exact point. Implementations must be safe
// for concurrent calls from all rank goroutines.
//
// The well-known point names threaded through the stack are:
//
//	mpi.collective        entry into any collective rendezvous
//	core.iteration        top of core.Session.Checkpoint (one per iteration)
//	kr.region             entry into a KR checkpoint region
//	kr.commit             immediately before a KR checkpoint is written
//	veloc.checkpoint      entry into veloc.Client.Checkpoint
//	veloc.flush           just after the asynchronous flush is scheduled
//	                      (a kill here dies with its own flush in flight)
//	fenix.recover         entry into Fenix failure recovery, before the
//	                      revoke (a kill here is a nested failure)
//	fenix.spare_wait      a spare about to block in Fenix init awaiting
//	                      activation
//	fenix.spare_activate  a spare just activated as a replacement, before
//	                      it re-enters the application body
//
// Corruption points (see Corruptor) model silent data corruption rather
// than process death:
//
//	kokkos.region         a parallel region's primary execution finished;
//	                      a scheduled flip lands in its views
//	veloc.scratch_blob    a serialized checkpoint blob is about to be
//	                      written to node-local scratch; a scheduled flip
//	                      corrupts the stored bytes
type Injector interface {
	At(p *Proc, point string)
}

// Corruptor is the silent-data-corruption face of an injector: instead of
// killing the visiting rank it may schedule a bit flip for the visit. The
// injector only decides the site abstractly — frac in [0,1) selects the
// position proportionally within the caller's payload and bit the bit
// index — so the caller (a kokkos resilient region, the VeloC blob
// writer) maps it onto its own representation. Visit counting follows the
// same per-rank (point, hit) discipline as kills, so flip sites replay
// byte-identically with the seed.
type Corruptor interface {
	FlipAt(rank int, point string) (frac float64, bit int, ok bool)
}

// SetInjector installs the fault injector. Like SetObs it must be called
// before any rank goroutine starts (RunJob does this); nil disables
// injection.
func (w *World) SetInjector(inj Injector) { w.injector = inj }

// Inject gives the job's injector, if any, control at a named execution
// point. It is a no-op without an injector and may not return if the
// injector kills the process.
func (p *Proc) Inject(point string) {
	if inj := p.world.injector; inj != nil {
		inj.At(p, point)
	}
}

// FlipAt asks the job's injector whether a bit flip is scheduled for this
// rank's current visit of the named corruption point. It is a no-flip
// no-op when no injector is installed or the injector does not implement
// Corruptor. Unlike Inject it always returns: corruption never kills.
func (p *Proc) FlipAt(point string) (frac float64, bit int, ok bool) {
	if c, cok := p.world.injector.(Corruptor); cok {
		return c.FlipAt(p.Rank(), point)
	}
	return 0, 0, false
}

// ExitInjected is Exit with chaos attribution: it records the injection
// in the observability stream before dying. spare marks kills of ranks
// that are not members of the resilient communicator (a blocked spare);
// those deaths trigger no repair and are accounted separately from
// application failures.
func (p *Proc) ExitInjected(point string, spare bool) {
	p.Event(obs.LayerChaos, obs.EvChaosKill, obs.KV("point", point), obs.KV("spare", spare))
	if !spare {
		p.Obs().Registry().Counter(obs.MFailuresInjected).Inc()
	}
	p.Exit()
}
