package mpi

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// RankFunc is the body of one MPI process, the analogue of main() in an
// MPI program. It is invoked once per rank per launch.
type RankFunc func(p *Proc) error

// JobConfig describes one simulated `mpirun` invocation.
type JobConfig struct {
	// Ranks is the number of MPI processes.
	Ranks int
	// RanksPerNode controls placement; defaults to 1 (the paper's Heatdis
	// configuration runs one rank per node).
	RanksPerNode int
	// Machine is the cost model; defaults to sim.DefaultMachine.
	Machine *sim.Machine
	// Cluster, if non-nil, is reused (and persists scratch/PFS state);
	// otherwise a cluster just large enough for the job is created.
	Cluster *cluster.Cluster
	// FailRestart selects classic checkpoint/restart semantics: any process
	// failure aborts the job, which is then relaunched up to MaxRestarts
	// times. When false, failures surface as ULFM errors for Fenix.
	FailRestart bool
	// MaxRestarts bounds relaunches under FailRestart.
	MaxRestarts int
	// Seed makes per-rank compute jitter deterministic.
	Seed uint64
	// Obs, if non-nil, receives structured observability events and
	// metrics from every layer of every launch (see internal/obs). Nil
	// disables recording at near-zero cost.
	Obs *obs.Recorder
	// ObsStream, if non-nil alongside Obs, streams the event log to this
	// writer incrementally as JSONL during the run (obs.StreamJSONL with
	// ObsWindow as the reorder window; obs.DefaultReorderWindow when
	// zero). RunJob drains the stream's reorder buffer before returning;
	// check Obs.FlushStream for sticky write errors afterwards. Combine
	// with Obs.SetRingCapacity to bound recorder memory on long runs.
	ObsStream io.Writer
	// ObsWindow is the virtual-seconds reorder window for ObsStream.
	ObsWindow float64
	// Inject, if non-nil, receives control at named execution points in
	// every launch (see Injector); the chaos engine uses it to kill ranks
	// at adversarial moments. Nil disables injection at near-zero cost.
	Inject Injector
	// Flush configures the per-node checkpoint flush scheduler
	// (cluster.FlushPolicy). The zero value keeps the unscheduled
	// start-immediately behaviour; a positive Window bounds in-flight
	// flushes per node, with optional coalescing of superseded versions.
	Flush cluster.FlushPolicy
	// Engine selects the collective rendezvous engine (see tree.go). The
	// zero value, EngineTree, is the production engine; EngineFlat is the
	// legacy reference kept for equivalence testing.
	Engine Engine
	// Exec selects the execution scheduling mode (see exec.go). The zero
	// value, ExecGoroutine, runs one free goroutine per rank (the
	// executable spec); ExecPool multiplexes rank continuations onto
	// GOMAXPROCS execution slots for O(10k)-rank worlds.
	Exec ExecMode
	// MsgLog enables the sender-based message log (msglog.go) on every
	// launch's world, the capture side of localized recovery. The process
	// resilience layer registers its lineage communicators with it.
	MsgLog bool
}

func (cfg *JobConfig) normalize() {
	if cfg.Ranks <= 0 {
		panic("mpi: JobConfig.Ranks must be positive")
	}
	if cfg.RanksPerNode <= 0 {
		cfg.RanksPerNode = 1
	}
	if cfg.Machine == nil {
		cfg.Machine = sim.DefaultMachine()
	}
}

// Nodes returns the number of nodes the job occupies.
func (cfg JobConfig) Nodes() int {
	cfg.normalize()
	n := (cfg.Ranks + cfg.RanksPerNode - 1) / cfg.RanksPerNode
	return n
}

// JobResult is the outcome of a job: wall time as the paper's `time mpirun`
// would report it (including launch, teardown, and relaunch overheads),
// per-rank category times summed across launches, and final errors.
type JobResult struct {
	// WallTime is the virtual end-to-end job duration in seconds.
	WallTime float64
	// Launches counts job launches (1 for a failure-free run).
	Launches int
	// PerRank holds each rank's category times summed across launches.
	PerRank []trace.Times
	// Failed reports whether the job ultimately ended in an unrecovered
	// failure.
	Failed bool
	// RankErrs holds the per-rank errors from the final launch.
	RankErrs []error
	// Cluster is the cluster the job ran on (exposes PFS/scratch state for
	// inspection by tests and the harness).
	Cluster *cluster.Cluster
}

// Err returns the first non-nil rank error, if any.
func (r *JobResult) Err() error {
	for _, e := range r.RankErrs {
		if e != nil {
			return e
		}
	}
	if r.Failed {
		return errors.New("mpi: job failed")
	}
	return nil
}

// MeanTimes returns the across-rank mean of each category, the aggregation
// the paper's stacked bars use.
func (r *JobResult) MeanTimes() trace.Times {
	var sum trace.Times
	for _, t := range r.PerRank {
		sum = sum.Add(t)
	}
	return sum.Scale(1 / float64(len(r.PerRank)))
}

// rankOutcome classifies how one rank goroutine ended.
type rankOutcome struct {
	err      error
	killed   bool
	aborted  bool
	panicked any // programmer panic, re-raised on the caller's goroutine
}

// RunJob launches the job and runs f as every rank's body, relaunching
// under FailRestart semantics when a failure occurs. It blocks until the
// job completes and returns the aggregated result.
func RunJob(cfg JobConfig, f RankFunc) *JobResult {
	cfg.normalize()
	nodes := cfg.Nodes()
	cl := cfg.Cluster
	if cl == nil {
		cl = cluster.New(nodes, cfg.Machine)
	}
	cl.SetFlushPolicy(cfg.Flush)

	res := &JobResult{
		PerRank: make([]trace.Times, cfg.Ranks),
		Cluster: cl,
	}
	if cfg.Obs != nil && cfg.ObsStream != nil && !cfg.Obs.Streaming() {
		cfg.Obs.StreamJSONL(cfg.ObsStream, cfg.ObsWindow)
	}
	jobTime := 0.0

	for attempt := 0; ; attempt++ {
		start := jobTime + cfg.Machine.LaunchTime(nodes)
		w := NewWorld(cl, cfg.Ranks, cfg.RanksPerNode, cfg.FailRestart, cfg.Seed+uint64(attempt)*1e9, start)
		w.SetObs(cfg.Obs)
		w.SetInjector(cfg.Inject)
		w.SetEngine(cfg.Engine)
		w.SetExecMode(cfg.Exec)
		if cfg.MsgLog {
			w.EnableMsgLog()
		}
		res.Launches++
		cfg.Obs.Emit(start, -1, obs.LayerMPI, obs.EvJobLaunch,
			obs.KV("attempt", attempt), obs.KV("ranks", cfg.Ranks), obs.KV("nodes", nodes))
		cfg.Obs.Registry().Counter(obs.MJobLaunches).Inc()

		outcomes := runRanks(w, f)
		for _, o := range outcomes {
			if o.panicked != nil {
				panic(o.panicked)
			}
		}

		anyKilled, anyAborted := false, false
		res.RankErrs = make([]error, cfg.Ranks)
		endTime := start
		for i, o := range outcomes {
			res.PerRank[i] = res.PerRank[i].Add(w.procs[i].rec.Snapshot())
			res.RankErrs[i] = o.err
			anyKilled = anyKilled || o.killed
			anyAborted = anyAborted || o.aborted
			if t := w.procs[i].clock.Now(); t > endTime {
				endTime = t
			}
		}
		jobTime = endTime

		// Finalize barrier for the flush scheduler (VELOC_Finalize waits out
		// async flushes): commit every still-queued flush so its events and
		// metrics land in the log deterministically. Rank clocks are final;
		// draining does not extend the job's wall time, matching the
		// unscheduled model where flush windows may outlive the job.
		cl.AdvanceFlushes(math.Inf(1))

		emitEnd := func() {
			cfg.Obs.Emit(res.WallTime, -1, obs.LayerMPI, obs.EvJobEnd,
				obs.KV("launches", res.Launches), obs.KV("failed", res.Failed),
				obs.KV("wall_seconds", res.WallTime))
			// Drain the incremental export's reorder buffer so callers see
			// the complete log as soon as RunJob returns. Sticky write
			// errors stay retrievable via Obs.FlushStream.
			cfg.Obs.FlushStream() //nolint:errcheck
		}
		failed := anyKilled || anyAborted
		if !failed {
			res.WallTime = jobTime
			emitEnd()
			return res
		}
		if !cfg.FailRestart {
			// ULFM semantics: a killed rank alone does not fail the job —
			// if the surviving ranks completed cleanly, Fenix recovered it.
			for _, o := range outcomes {
				if o.err != nil || o.aborted {
					res.Failed = true
				}
			}
			res.WallTime = jobTime
			emitEnd()
			return res
		}
		if attempt >= cfg.MaxRestarts {
			res.Failed = true
			res.WallTime = jobTime
			emitEnd()
			return res
		}
		// Fail-restart: tear down and relaunch. Node scratch and PFS state
		// persist (same allocation), as with VeloC restarting in place.
		jobTime += cfg.Machine.TeardownTime(nodes)
	}
}

// runRanks executes one launch: a goroutine per rank, recovering the
// processKilled/jobAborted unwinds used for failure simulation.
func runRanks(w *World, f RankFunc) []rankOutcome {
	outcomes := make([]rankOutcome, len(w.procs))
	var wg sync.WaitGroup
	for i := range w.procs {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			if w.pool != nil {
				// Admission: queue for an execution slot before running the
				// body; the slot is released when the body returns or
				// unwinds — after the recover handler below, so failure
				// accounting (markDead) still runs slot-held.
				p.poolEnter()
				defer p.poolExit()
			}
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				switch v := r.(type) {
				case processKilled:
					outcomes[p.rank].killed = true
				case jobAborted:
					outcomes[p.rank].aborted = true
					outcomes[p.rank].err = v.cause
					// The aborting runtime kills this process too, so
					// peers blocked on it are released.
					w.markDead(p.rank)
				default:
					// A programmer error: record it for re-raising on the
					// caller's goroutine, and mark this rank dead so peers
					// blocked on it are released rather than deadlocking.
					outcomes[p.rank].panicked = fmt.Sprintf("mpi: rank %d panicked: %v", p.rank, r)
					w.markDead(p.rank)
				}
			}()
			outcomes[p.rank].err = f(p)
		}(w.procs[i])
	}
	wg.Wait()
	return outcomes
}
