package mpi

import (
	"errors"
	"testing"

	"repro/internal/trace"
)

func TestRunJobCleanRun(t *testing.T) {
	cfg := JobConfig{Ranks: 4, Machine: quietMachine(), Seed: 1}
	res := RunJob(cfg, func(p *Proc) error {
		p.ComputeExact(1e9)
		return p.World().CommWorld().Barrier(p)
	})
	if res.Failed || res.Err() != nil {
		t.Fatalf("clean run failed: %v", res.Err())
	}
	if res.Launches != 1 {
		t.Fatalf("Launches = %d", res.Launches)
	}
	// Wall time includes launch overhead plus ~0.5s compute.
	minWall := cfg.Machine.LaunchTime(4) + 0.5
	if res.WallTime < minWall {
		t.Fatalf("WallTime = %v, want >= %v", res.WallTime, minWall)
	}
	if res.MeanTimes().Get(trace.AppCompute) <= 0 {
		t.Fatal("no compute time recorded")
	}
}

func TestRunJobNodesComputation(t *testing.T) {
	cfg := JobConfig{Ranks: 10, RanksPerNode: 4}
	if got := cfg.Nodes(); got != 3 {
		t.Fatalf("Nodes() = %d, want 3", got)
	}
}

func TestRunJobFailRestartRelaunches(t *testing.T) {
	// Rank 1 dies on the first launch only; the relaunch completes. The
	// "already failed" marker lives in PFS state, mimicking a checkpoint.
	cfg := JobConfig{Ranks: 2, Machine: quietMachine(), FailRestart: true, MaxRestarts: 2, Seed: 1}
	res := RunJob(cfg, func(p *Proc) error {
		c := p.World().CommWorld()
		if err := c.Barrier(p); err != nil {
			return err
		}
		pfs := p.World().Cluster().PFS()
		if _, ok := pfs.Exists("attempt-marker"); !ok {
			if p.Rank() == 1 {
				pfs.Write("attempt-marker", []byte{1}, p.Now())
				p.Exit()
			}
			// Rank 0 continues; its next MPI op aborts the job.
			err := c.Barrier(p)
			return err
		}
		return c.Barrier(p)
	})
	if res.Failed {
		t.Fatalf("job failed: %v", res.RankErrs)
	}
	if res.Launches != 2 {
		t.Fatalf("Launches = %d, want 2", res.Launches)
	}
	for _, e := range res.RankErrs {
		if e != nil {
			t.Fatalf("final launch error: %v", e)
		}
	}
}

func TestRunJobFailRestartExhaustsRestarts(t *testing.T) {
	cfg := JobConfig{Ranks: 2, Machine: quietMachine(), FailRestart: true, MaxRestarts: 1, Seed: 1}
	launches := 0
	res := RunJob(cfg, func(p *Proc) error {
		if p.Rank() == 0 {
			launches++
			p.Exit()
		}
		return p.World().CommWorld().Barrier(p)
	})
	if !res.Failed {
		t.Fatal("job should have failed after exhausting restarts")
	}
	if res.Launches != 2 {
		t.Fatalf("Launches = %d, want 2", res.Launches)
	}
}

func TestRunJobULFMFailureSurfacesAsError(t *testing.T) {
	// Without Fenix, a ULFM-mode job whose survivor returns the failure
	// error counts as failed.
	cfg := JobConfig{Ranks: 2, Machine: quietMachine(), Seed: 1}
	res := RunJob(cfg, func(p *Proc) error {
		if p.Rank() == 1 {
			p.Exit()
		}
		return p.World().CommWorld().Barrier(p)
	})
	if !res.Failed {
		t.Fatal("unhandled ULFM failure should fail the job")
	}
	if !IsProcessFailure(res.Err()) {
		t.Fatalf("Err() = %v", res.Err())
	}
}

func TestRunJobULFMHandledFailureSucceeds(t *testing.T) {
	// A survivor that handles the error (Fenix-style) ends the job cleanly.
	cfg := JobConfig{Ranks: 2, Machine: quietMachine(), Seed: 1}
	res := RunJob(cfg, func(p *Proc) error {
		if p.Rank() == 1 {
			p.Exit()
		}
		if err := p.World().CommWorld().Barrier(p); !IsProcessFailure(err) {
			return errors.New("expected failure")
		}
		return nil // handled
	})
	if res.Failed {
		t.Fatalf("handled failure marked job failed: %v", res.RankErrs)
	}
	if res.Launches != 1 {
		t.Fatalf("Launches = %d", res.Launches)
	}
}

func TestRunJobRelaunchCostsAppearInWallTime(t *testing.T) {
	m := quietMachine()
	clean := RunJob(JobConfig{Ranks: 2, Machine: m, Seed: 1}, func(p *Proc) error {
		return nil
	})
	withRestart := RunJob(JobConfig{Ranks: 2, Machine: m, FailRestart: true, MaxRestarts: 1, Seed: 1},
		func(p *Proc) error {
			pfs := p.World().Cluster().PFS()
			if _, ok := pfs.Exists("m"); !ok {
				if p.Rank() == 0 {
					pfs.Write("m", []byte{1}, p.Now())
					p.Exit()
				}
				return p.World().CommWorld().Barrier(p)
			}
			return nil
		})
	// The restarted job must pay at least one extra launch + teardown.
	minExtra := m.LaunchTime(2) + m.TeardownTime(2)
	if withRestart.WallTime < clean.WallTime+minExtra*0.9 {
		t.Fatalf("relaunch overhead missing: clean=%v restart=%v", clean.WallTime, withRestart.WallTime)
	}
}

func TestRunJobDeterministic(t *testing.T) {
	run := func() float64 {
		res := RunJob(JobConfig{Ranks: 4, Seed: 42}, func(p *Proc) error {
			p.Compute(1e8)
			_, err := p.World().CommWorld().AllreduceInt(p, p.Rank(), OpSum)
			return err
		})
		return res.WallTime
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different wall times: %v vs %v", a, b)
	}
}

func TestRunJobSeedChangesJitter(t *testing.T) {
	run := func(seed uint64) float64 {
		res := RunJob(JobConfig{Ranks: 2, Seed: seed}, func(p *Proc) error {
			p.Compute(1e9)
			return nil
		})
		return res.WallTime
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical jitter (suspicious)")
	}
}

func TestRunJobPanicsPropagate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("programmer panic was swallowed")
		}
	}()
	RunJob(JobConfig{Ranks: 1, Seed: 1}, func(p *Proc) error {
		panic("bug in app")
	})
}

func TestMeanTimesAveragesRanks(t *testing.T) {
	res := RunJob(JobConfig{Ranks: 2, Machine: quietMachine(), Seed: 1}, func(p *Proc) error {
		if p.Rank() == 0 {
			p.ComputeExact(2e9) // 1s
		}
		return nil
	})
	got := res.MeanTimes().Get(trace.AppCompute)
	if got < 0.49 || got > 0.51 {
		t.Fatalf("mean compute = %v, want ~0.5", got)
	}
}
