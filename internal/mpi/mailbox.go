package mpi

import "sync"

// msgKey addresses a mailbox queue: messages are matched by communicator,
// sending world rank, and tag, as in MPI point-to-point matching.
type msgKey struct {
	comm int64
	src  int
	tag  int
}

// message is an in-flight point-to-point payload. arriveAt is the virtual
// time at which the message is available at the receiver. seq is the
// message's absolute sequence number in the sender-based message log's
// stream for this (sender, receiver, tag), or -1 when the send was not
// logged; a receiver that serves the same message from the log drops the
// mailbox copy by seq (dropThrough).
type message struct {
	data     []byte
	arriveAt float64
	seq      int
}

// msgQueue is one matching queue: a slice consumed from head so dequeue
// never reallocates, recycled through the mailbox freelist once drained.
type msgQueue struct {
	head int
	msgs []message
}

// mailbox is a process's incoming message store. Senders enqueue without
// blocking (eager protocol); receivers block on the condition variable
// until a matching message arrives, the sender dies, or the communicator
// is revoked.
//
// Queue blocks are pooled: a queue drained by receive is reset and parked
// on a freelist for the next burst on any key, so steady-state
// point-to-point traffic (for example the per-step halo exchanges of a
// Cartesian stencil) does not allocate a fresh slice per message.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    map[msgKey]*msgQueue
	free []*msgQueue
}

func (m *mailbox) init() {
	m.cond = sync.NewCond(&m.mu)
	m.q = make(map[msgKey]*msgQueue)
}

// getQueueLocked returns the queue for key, reusing a drained block from
// the freelist when one is available. Caller holds m.mu.
func (m *mailbox) getQueueLocked(key msgKey) *msgQueue {
	if q, ok := m.q[key]; ok {
		return q
	}
	var q *msgQueue
	if n := len(m.free); n > 0 {
		q = m.free[n-1]
		m.free[n-1] = nil
		m.free = m.free[:n-1]
	} else {
		q = &msgQueue{}
	}
	m.q[key] = q
	return q
}

// deliver enqueues a message and wakes any blocked receivers.
func (m *mailbox) deliver(key msgKey, msg message) {
	m.mu.Lock()
	q := m.getQueueLocked(key)
	q.msgs = append(q.msgs, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// wakeAll wakes all blocked receivers so they re-check failure/revocation
// state.
func (m *mailbox) wakeAll() { m.cond.Broadcast() }

// receive blocks until a message matching key is available or giveUp
// returns a non-nil error (sender died, communicator revoked). giveUp is
// evaluated while holding the mailbox lock; state changes that could make
// it fire (markDead, Revoke) broadcast the condition variable only after
// publishing their state, so wakeups are never lost.
//
// p is the receiving process: under ExecPool the receiver yields its
// execution slot before the first cond.Wait — a rank blocked on a
// message must not pin one of the GOMAXPROCS slots, or a world of
// blocked receivers would starve the senders they wait on — and
// reacquires a slot after the wait resolves. The post-broadcast re-check
// of the queue runs without a slot; it is a bounded map probe, not
// simulation progress.
func (m *mailbox) receive(p *Proc, key msgKey, giveUp func() error) (message, error) {
	m.mu.Lock()
	yielded := false
	var msg message
	var err error
	for {
		if q, ok := m.q[key]; ok && q.head < len(q.msgs) {
			msg = q.msgs[q.head]
			q.msgs[q.head] = message{} // drop the payload reference
			q.head++
			if q.head == len(q.msgs) {
				q.head, q.msgs = 0, q.msgs[:0]
				delete(m.q, key)
				m.free = append(m.free, q)
			}
			break
		}
		if err = giveUp(); err != nil {
			break
		}
		if !yielded {
			yielded = p.yieldSlot()
		}
		m.cond.Wait()
	}
	m.mu.Unlock()
	if yielded {
		p.regainSlot()
	}
	return msg, err
}

// dropThrough removes queued messages for key whose log sequence number is
// <= maxSeq. When a receiver serves a message from the sender-based log,
// the live mailbox copy (delivered by the original send on the same
// communicator) must be consumed too, or it would satisfy a later receive
// out of order. Messages with seq -1 (unlogged sends) are never dropped.
func (m *mailbox) dropThrough(key msgKey, maxSeq int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	q, ok := m.q[key]
	if !ok {
		return
	}
	for q.head < len(q.msgs) && q.msgs[q.head].seq >= 0 && q.msgs[q.head].seq <= maxSeq {
		q.msgs[q.head] = message{}
		q.head++
	}
	if q.head == len(q.msgs) {
		q.head, q.msgs = 0, q.msgs[:0]
		delete(m.q, key)
		m.free = append(m.free, q)
	}
}

// pending reports the number of queued messages for key (for tests).
func (m *mailbox) pending(key msgKey) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if q, ok := m.q[key]; ok {
		return len(q.msgs) - q.head
	}
	return 0
}
