package mpi

import "sync"

// msgKey addresses a mailbox queue: messages are matched by communicator,
// sending world rank, and tag, as in MPI point-to-point matching.
type msgKey struct {
	comm int64
	src  int
	tag  int
}

// message is an in-flight point-to-point payload. arriveAt is the virtual
// time at which the message is available at the receiver.
type message struct {
	data     []byte
	arriveAt float64
}

// mailbox is a process's incoming message store. Senders enqueue without
// blocking (eager protocol); receivers block on the condition variable
// until a matching message arrives, the sender dies, or the communicator
// is revoked.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    map[msgKey][]message
}

func (m *mailbox) init() {
	m.cond = sync.NewCond(&m.mu)
	m.q = make(map[msgKey][]message)
}

// deliver enqueues a message and wakes any blocked receivers.
func (m *mailbox) deliver(key msgKey, msg message) {
	m.mu.Lock()
	m.q[key] = append(m.q[key], msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// wakeAll wakes all blocked receivers so they re-check failure/revocation
// state.
func (m *mailbox) wakeAll() { m.cond.Broadcast() }

// receive blocks until a message matching key is available or giveUp
// returns a non-nil error (sender died, communicator revoked). giveUp is
// evaluated while holding the mailbox lock; state changes that could make
// it fire (markDead, Revoke) broadcast the condition variable only after
// publishing their state, so wakeups are never lost.
func (m *mailbox) receive(key msgKey, giveUp func() error) (message, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if q := m.q[key]; len(q) > 0 {
			msg := q[0]
			if len(q) == 1 {
				delete(m.q, key)
			} else {
				m.q[key] = q[1:]
			}
			return msg, nil
		}
		if err := giveUp(); err != nil {
			return message{}, err
		}
		m.cond.Wait()
	}
}

// pending reports the number of queued messages for key (for tests).
func (m *mailbox) pending(key msgKey) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.q[key])
}
