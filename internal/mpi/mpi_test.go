package mpi

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/trace"
)

// quietMachine returns a cost model with no jitter for deterministic tests.
func quietMachine() *sim.Machine {
	m := sim.DefaultMachine()
	m.NoiseAmplitude = 0
	return m
}

// testWorld spins up a world of n ranks with ULFM semantics.
func testWorld(n int) *World {
	cl := cluster.New(n, quietMachine())
	return NewWorld(cl, n, 1, false, 1, 0)
}

// runWorld runs f on every rank of w and returns per-rank errors.
// It recovers the kill/abort unwinds like the launcher does.
func runWorld(w *World, f RankFunc) []error {
	outcomes := runRanks(w, f)
	errs := make([]error, len(outcomes))
	for i, o := range outcomes {
		errs[i] = o.err
	}
	return errs
}

func TestWorldConstruction(t *testing.T) {
	w := testWorld(4)
	if w.Size() != 4 {
		t.Fatalf("Size() = %d", w.Size())
	}
	if w.CommWorld().Size() != 4 {
		t.Fatalf("CommWorld size = %d", w.CommWorld().Size())
	}
	for i := 0; i < 4; i++ {
		if w.Proc(i).Rank() != i {
			t.Fatalf("proc %d rank %d", i, w.Proc(i).Rank())
		}
		if got := w.CommWorld().Rank(w.Proc(i)); got != i {
			t.Fatalf("comm rank of proc %d = %d", i, got)
		}
	}
}

func TestRankPlacement(t *testing.T) {
	cl := cluster.New(2, quietMachine())
	w := NewWorld(cl, 4, 2, false, 1, 0)
	if w.Proc(0).Node().ID() != 0 || w.Proc(1).Node().ID() != 0 {
		t.Fatal("ranks 0,1 should share node 0")
	}
	if w.Proc(2).Node().ID() != 1 || w.Proc(3).Node().ID() != 1 {
		t.Fatal("ranks 2,3 should share node 1")
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	w := testWorld(2)
	c := w.CommWorld()
	payload := []byte("halo row")
	errs := runWorld(w, func(p *Proc) error {
		if p.Rank() == 0 {
			return c.Send(p, 1, 7, payload)
		}
		got, err := c.Recv(p, 0, 7)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("recv %q, want %q", got, payload)
		}
		return nil
	})
	for i, e := range errs {
		if e != nil {
			t.Fatalf("rank %d: %v", i, e)
		}
	}
}

func TestSendRecvAdvancesClocks(t *testing.T) {
	w := testWorld(2)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		if p.Rank() == 0 {
			return c.Send(p, 1, 0, make([]byte, 1<<20))
		}
		_, err := c.Recv(p, 0, 0)
		return err
	})
	if w.Proc(0).Now() <= 0 {
		t.Fatal("sender clock did not advance")
	}
	if w.Proc(1).Now() < w.Proc(0).Now() {
		t.Fatal("receiver clock behind sender")
	}
	if w.Proc(1).Recorder().Get(trace.AppMPI) <= 0 {
		t.Fatal("receiver MPI time not recorded")
	}
}

func TestTagMatching(t *testing.T) {
	w := testWorld(2)
	c := w.CommWorld()
	errs := runWorld(w, func(p *Proc) error {
		if p.Rank() == 0 {
			if err := c.Send(p, 1, 1, []byte("one")); err != nil {
				return err
			}
			return c.Send(p, 1, 2, []byte("two"))
		}
		// Receive out of order: tag 2 first.
		got2, err := c.Recv(p, 0, 2)
		if err != nil {
			return err
		}
		got1, err := c.Recv(p, 0, 1)
		if err != nil {
			return err
		}
		if string(got2) != "two" || string(got1) != "one" {
			t.Errorf("tag matching broken: %q %q", got1, got2)
		}
		return nil
	})
	for _, e := range errs {
		if e != nil {
			t.Fatal(e)
		}
	}
}

func TestMessageOrderingSameTag(t *testing.T) {
	w := testWorld(2)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		if p.Rank() == 0 {
			for i := 0; i < 10; i++ {
				if err := c.Send(p, 1, 0, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 10; i++ {
			got, err := c.Recv(p, 0, 0)
			if err != nil {
				return err
			}
			if got[0] != byte(i) {
				t.Errorf("message %d arrived out of order: %d", i, got[0])
			}
		}
		return nil
	})
}

func TestSendrecvPairNoDeadlock(t *testing.T) {
	w := testWorld(2)
	c := w.CommWorld()
	errs := runWorld(w, func(p *Proc) error {
		other := 1 - p.Rank()
		out := []byte{byte(p.Rank())}
		in, err := c.Sendrecv(p, other, 0, out, other, 0)
		if err != nil {
			return err
		}
		if in[0] != byte(other) {
			t.Errorf("rank %d got %d", p.Rank(), in[0])
		}
		return nil
	})
	for _, e := range errs {
		if e != nil {
			t.Fatal(e)
		}
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	w := testWorld(4)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		p.ComputeExact(float64(p.Rank()+1) * 1e9) // ranks finish at different times
		return c.Barrier(p)
	})
	t3 := w.Proc(3).Now()
	for i := 0; i < 4; i++ {
		if w.Proc(i).Now() < t3 {
			t.Fatalf("rank %d clock %v behind slowest rank %v", i, w.Proc(i).Now(), t3)
		}
	}
}

func TestBcast(t *testing.T) {
	w := testWorld(4)
	c := w.CommWorld()
	errs := runWorld(w, func(p *Proc) error {
		var in []byte
		if p.Rank() == 2 {
			in = []byte("config blob")
		}
		got, err := c.Bcast(p, 2, in)
		if err != nil {
			return err
		}
		if string(got) != "config blob" {
			t.Errorf("rank %d bcast got %q", p.Rank(), got)
		}
		return nil
	})
	for _, e := range errs {
		if e != nil {
			t.Fatal(e)
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	w := testWorld(4)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		in := []float64{float64(p.Rank()), 1}
		out, err := c.AllreduceF64(p, in, OpSum)
		if err != nil {
			return err
		}
		if out[0] != 6 || out[1] != 4 {
			t.Errorf("rank %d allreduce sum = %v", p.Rank(), out)
		}
		return nil
	})
}

func TestAllreduceMinMax(t *testing.T) {
	w := testWorld(4)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		in := []float64{float64(p.Rank())}
		mn, err := c.AllreduceF64(p, in, OpMin)
		if err != nil {
			return err
		}
		mx, err := c.AllreduceF64(p, in, OpMax)
		if err != nil {
			return err
		}
		if mn[0] != 0 || mx[0] != 3 {
			t.Errorf("min/max = %v/%v", mn[0], mx[0])
		}
		return nil
	})
}

func TestAllreduceInt(t *testing.T) {
	w := testWorld(3)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		v, err := c.AllreduceInt(p, p.Rank()+10, OpMin)
		if err != nil {
			return err
		}
		if v != 10 {
			t.Errorf("AllreduceInt min = %d", v)
		}
		return nil
	})
}

func TestReduceF64OnlyRoot(t *testing.T) {
	w := testWorld(3)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		out, err := c.ReduceF64(p, 1, []float64{2}, OpSum)
		if err != nil {
			return err
		}
		if p.Rank() == 1 {
			if out[0] != 6 {
				t.Errorf("root reduce = %v", out)
			}
		} else if out != nil {
			t.Errorf("non-root got %v", out)
		}
		return nil
	})
}

func TestAllgather(t *testing.T) {
	w := testWorld(3)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		out, err := c.AllgatherB(p, []byte{byte(p.Rank() * 10)})
		if err != nil {
			return err
		}
		for i, b := range out {
			if b[0] != byte(i*10) {
				t.Errorf("allgather[%d] = %d", i, b[0])
			}
		}
		return nil
	})
}

func TestAllreduceDeterministicOrder(t *testing.T) {
	// Summation order must be comm-rank order for bitwise reproducibility.
	vals := []float64{1e16, 1, -1e16, 1}
	want := ((vals[0] + vals[1]) + vals[2]) + vals[3]
	w := testWorld(4)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		out, err := c.AllreduceF64(p, []float64{vals[p.Rank()]}, OpSum)
		if err != nil {
			return err
		}
		if out[0] != want {
			t.Errorf("non-deterministic sum: got %v want %v", out[0], want)
		}
		return nil
	})
}

func TestSubCommunicator(t *testing.T) {
	w := testWorld(4)
	sub := w.NewComm([]int{1, 3})
	runWorld(w, func(p *Proc) error {
		if p.Rank()%2 == 0 {
			if sub.Rank(p) != -1 {
				t.Errorf("rank %d should not be in sub comm", p.Rank())
			}
			return nil
		}
		v, err := sub.AllreduceInt(p, 1, OpSum)
		if err != nil {
			return err
		}
		if v != 2 {
			t.Errorf("sub comm allreduce = %d", v)
		}
		return nil
	})
	if sub.WorldRank(0) != 1 || sub.WorldRank(1) != 3 {
		t.Fatal("sub comm group mapping wrong")
	}
}

func TestDuplicateGroupPanics(t *testing.T) {
	w := testWorld(2)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate group did not panic")
		}
	}()
	w.NewComm([]int{0, 0})
}

// --- failure semantics ---

func TestSendToDeadRankFails(t *testing.T) {
	// Sends are locally complete and fail fast only on the sender's own
	// failure knowledge: rank 0 first observes rank 1's death through a
	// failed Recv, after which its sends to the dead rank fail.
	w := testWorld(2)
	c := w.CommWorld()
	errs := runWorld(w, func(p *Proc) error {
		if p.Rank() == 1 {
			p.Exit()
		}
		if _, err := c.Recv(p, 1, 0); !IsProcessFailure(err) {
			t.Errorf("recv from dead rank: %v", err)
		}
		return c.Send(p, 1, 0, []byte("x"))
	})
	if !IsProcessFailure(errs[0]) {
		t.Fatalf("send to dead rank: err = %v", errs[0])
	}
}

func TestRecvFromDeadRankFails(t *testing.T) {
	w := testWorld(2)
	c := w.CommWorld()
	errs := runWorld(w, func(p *Proc) error {
		if p.Rank() == 1 {
			p.Exit()
		}
		_, err := c.Recv(p, 1, 0)
		return err
	})
	if !IsProcessFailure(errs[0]) {
		t.Fatalf("recv from dead rank: err = %v", errs[0])
	}
}

func TestRecvDrainsBufferedBeforeFailing(t *testing.T) {
	// A message sent before the sender died must still be receivable
	// (eager/buffered semantics).
	w := testWorld(2)
	c := w.CommWorld()
	errs := runWorld(w, func(p *Proc) error {
		if p.Rank() == 1 {
			if err := c.Send(p, 0, 0, []byte("last words")); err != nil {
				return err
			}
			p.Exit()
		}
		got, err := c.Recv(p, 1, 0)
		if err != nil {
			return err
		}
		if string(got) != "last words" {
			t.Errorf("got %q", got)
		}
		// The next recv must fail.
		_, err = c.Recv(p, 1, 0)
		if !IsProcessFailure(err) {
			t.Errorf("second recv: %v", err)
		}
		return nil
	})
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
}

func TestCollectiveFailsOnDeadMember(t *testing.T) {
	w := testWorld(4)
	c := w.CommWorld()
	errs := runWorld(w, func(p *Proc) error {
		if p.Rank() == 2 {
			p.Exit()
		}
		return c.Barrier(p)
	})
	for i, e := range errs {
		if i == 2 {
			continue
		}
		if !IsProcessFailure(e) {
			t.Fatalf("rank %d barrier err = %v", i, e)
		}
	}
}

func TestFailedErrorListsDeadRanks(t *testing.T) {
	w := testWorld(3)
	c := w.CommWorld()
	errs := runWorld(w, func(p *Proc) error {
		if p.Rank() == 1 {
			p.Exit()
		}
		return c.Barrier(p)
	})
	var fe *FailedError
	if !errorsAs(errs[0], &fe) {
		t.Fatalf("err = %v", errs[0])
	}
	if !reflect.DeepEqual(fe.WorldRanks, []int{1}) {
		t.Fatalf("failed ranks %v", fe.WorldRanks)
	}
}

func errorsAs(err error, target *(*FailedError)) bool {
	fe, ok := err.(*FailedError)
	if ok {
		*target = fe
	}
	return ok
}

func TestDeadRanksAndAliveCount(t *testing.T) {
	w := testWorld(3)
	runWorld(w, func(p *Proc) error {
		if p.Rank() == 0 {
			p.Exit()
		}
		for !w.isDead(0) {
		}
		return nil
	})
	if got := w.DeadRanks(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("DeadRanks = %v", got)
	}
	if w.AliveCount() != 2 {
		t.Fatalf("AliveCount = %d", w.AliveCount())
	}
}

// --- ULFM operations ---

func TestRevokePoisonsPendingAndFutureOps(t *testing.T) {
	w := testWorld(3)
	c := w.CommWorld()
	errs := runWorld(w, func(p *Proc) error {
		switch p.Rank() {
		case 0:
			// Block in a recv that nobody will satisfy.
			_, err := c.Recv(p, 1, 99)
			if !IsRevoked(err) {
				t.Errorf("pending recv after revoke: %v", err)
			}
			return nil
		case 1:
			c.Revoke(p)
			// Future op fails.
			if err := c.Send(p, 2, 0, nil); !IsRevoked(err) {
				t.Errorf("send after revoke: %v", err)
			}
			return nil
		default:
			for !c.Revoked() {
			}
			if err := c.Barrier(p); !IsRevoked(err) {
				t.Errorf("barrier after revoke: %v", err)
			}
			return nil
		}
	})
	for _, e := range errs {
		if e != nil {
			t.Fatal(e)
		}
	}
}

func TestShrinkExcludesDeadRanks(t *testing.T) {
	w := testWorld(4)
	c := w.CommWorld()
	var shrunk *Comm
	runWorld(w, func(p *Proc) error {
		if p.Rank() == 1 {
			p.Exit()
		}
		if err := c.Barrier(p); !IsProcessFailure(err) {
			t.Errorf("rank %d expected failure, got %v", p.Rank(), err)
		}
		c.Revoke(p)
		s, err := c.Shrink(p)
		if err != nil {
			return err
		}
		shrunk = s
		// Survivors: world ranks 0,2,3 densely ranked.
		if s.Size() != 3 {
			t.Errorf("shrunk size = %d", s.Size())
		}
		// The shrunk comm must be immediately usable.
		v, err := s.AllreduceInt(p, 1, OpSum)
		if err != nil {
			return err
		}
		if v != 3 {
			t.Errorf("allreduce on shrunk = %d", v)
		}
		return nil
	})
	if got := shrunk.Group(); !reflect.DeepEqual(got, []int{0, 2, 3}) {
		t.Fatalf("shrunk group = %v", got)
	}
}

func TestShrinkIsConsistentAcrossRanks(t *testing.T) {
	w := testWorld(4)
	c := w.CommWorld()
	ids := make([]int64, 4)
	runWorld(w, func(p *Proc) error {
		if p.Rank() == 3 {
			p.Exit()
		}
		for !w.isDead(3) {
		}
		s, err := c.Shrink(p)
		if err != nil {
			return err
		}
		ids[p.Rank()] = s.ID()
		return nil
	})
	if ids[0] == 0 || ids[0] != ids[1] || ids[1] != ids[2] {
		t.Fatalf("shrink returned different comms: %v", ids[:3])
	}
}

func TestAgreeAndsFlagsAcrossSurvivors(t *testing.T) {
	w := testWorld(3)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		if p.Rank() == 2 {
			p.Exit()
		}
		for !w.isDead(2) {
		}
		flag := uint32(0b111)
		if p.Rank() == 1 {
			flag = 0b101
		}
		got, err := c.Agree(p, flag)
		if err != nil {
			return err
		}
		if got != 0b101 {
			t.Errorf("agree = %b", got)
		}
		return nil
	})
}

func TestAgreeWorksOnRevokedComm(t *testing.T) {
	w := testWorld(2)
	c := w.CommWorld()
	errs := runWorld(w, func(p *Proc) error {
		if p.Rank() == 0 {
			c.Revoke(p)
		}
		for !c.Revoked() {
		}
		_, err := c.Agree(p, 1)
		return err
	})
	for _, e := range errs {
		if e != nil {
			t.Fatalf("agree on revoked comm: %v", e)
		}
	}
}

func TestFailedRanksReportsCommRanks(t *testing.T) {
	w := testWorld(4)
	sub := w.NewComm([]int{3, 1}) // comm rank 0 -> world 3, comm rank 1 -> world 1
	runWorld(w, func(p *Proc) error {
		if p.Rank() == 3 {
			p.Exit()
		}
		for !w.isDead(3) {
		}
		if p.Rank() == 1 {
			got := sub.FailedRanks(p)
			if !reflect.DeepEqual(got, []int{0}) {
				t.Errorf("FailedRanks = %v", got)
			}
		}
		return nil
	})
}

// --- codec ---

func TestF64CodecRoundTrip(t *testing.T) {
	f := func(v []float64) bool {
		// NaN breaks reflect.DeepEqual; compare bitwise instead.
		dec, err := DecodeF64(EncodeF64(v))
		if err != nil || len(dec) != len(v) {
			return false
		}
		for i := range v {
			if math.Float64bits(dec[i]) != math.Float64bits(v[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeF64RejectsBadLength(t *testing.T) {
	if _, err := DecodeF64(make([]byte, 7)); err == nil {
		t.Fatal("DecodeF64 accepted length 7")
	}
}

func TestSendRecvF64(t *testing.T) {
	w := testWorld(2)
	c := w.CommWorld()
	want := []float64{1.5, -2.25, math.Pi}
	runWorld(w, func(p *Proc) error {
		if p.Rank() == 0 {
			return c.SendF64(p, 1, 0, want)
		}
		got, err := c.RecvF64(p, 0, 0)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("got %v", got)
		}
		return nil
	})
}
