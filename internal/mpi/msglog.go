package mpi

import (
	"fmt"
	"sync"
)

// MsgLog is the world-level sender-based message log backing localized
// recovery (DESIGN.md §12). While enabled it records, per checkpoint epoch:
//
//   - every point-to-point payload sent on a registered (lineage)
//     communicator, keyed by (sender slot, receiver slot, tag) in send
//     order — the sender-based log of Dichev & Nikolopoulos;
//   - the result slots of every completed non-tolerant collective on the
//     lineage, in completion order (which equals program order, because a
//     collective only completes when all members arrived);
//   - per-slot cursor snapshots taken at each checkpoint-region boundary,
//     recording how far into the log that slot's traffic had progressed
//     when it entered iteration `iter`.
//
// After a failure, the replacement rank restores its own checkpoint and
// re-executes forward: its sends are suppressed (they were already
// delivered and logged), its receives and collectives are served from the
// log, and survivors pause in place, skipping already-executed iterations
// while their collective cursor replays the logged lineage. Replay is
// deterministic because the log stores the exact bytes and virtual arrival
// times of the original exchange.
//
// Garbage collection: when every slot has committed checkpoint version W
// (the watermark), all log entries belonging to iterations before W are
// unreachable — replay can never start earlier than the best common
// version — and are trimmed using the boundary-W cursor snapshots.
//
// "Slot" throughout means the logical rank: the rank within the lineage
// communicator, which Fenix keeps stable across spare substitution and
// re-hosting. Compaction (true shrink) changes slot identity, so the log
// disables itself and localized recovery degrades to global rollback.
type MsgLog struct {
	mu       sync.Mutex
	enabled  bool
	disabled bool // sticky: set on shrink compaction
	nSlots   int  // lineage width (set at first RegisterComm)
	comms    map[int64]bool
	p2p      map[p2pKey]*p2pLog
	coll     collLog
	snaps    map[snapKey]*CursorSnap
	commit   map[int]int // slot -> latest committed checkpoint version
	water    int         // min committed version over all slots, -1 until all committed
	resetGen int         // highest repair generation that triggered a full reset

	entries int   // live p2p entries + collective entries
	bytes   int64 // sim payload bytes held (p2p data + collective slots)
	trimmed int64 // total entries removed by GC
}

// p2pKey identifies one sender->receiver message stream. Ranks are logical
// slots (lineage comm ranks), so the stream survives spare substitution.
type p2pKey struct {
	src, dst, tag int
}

type p2pEntry struct {
	data     []byte
	simBytes int
	arriveAt float64
}

// p2pLog is one stream's entries. base is the absolute sequence number of
// entries[0]; absolute seq = base + position. maxSeen is the highest
// absolute receive cursor any incarnation of the receiver ever reached —
// consumption below it is a replay, at it a first consumption.
type p2pLog struct {
	base    int
	entries []p2pEntry
	maxSeen int
}

type collEntry struct {
	slots    []slot
	nArrived int
	simBytes int
}

type collLog struct {
	base    int
	entries []collEntry
}

type snapKey struct {
	slot, iter int
}

// CursorSnap records one slot's log cursors at a checkpoint-region
// boundary: how many messages it had sent/received per stream and how many
// lineage collectives it had completed when it entered that iteration.
type CursorSnap struct {
	Send map[p2pKey]int
	Recv map[p2pKey]int
	Coll int
}

func (s *CursorSnap) clone() *CursorSnap {
	cp := &CursorSnap{Send: make(map[p2pKey]int, len(s.Send)), Recv: make(map[p2pKey]int, len(s.Recv)), Coll: s.Coll}
	for k, v := range s.Send {
		cp.Send[k] = v
	}
	for k, v := range s.Recv {
		cp.Recv[k] = v
	}
	return cp
}

// NewMsgLog returns an enabled, empty message log.
func NewMsgLog() *MsgLog {
	return &MsgLog{
		enabled: true,
		comms:   make(map[int64]bool),
		p2p:     make(map[p2pKey]*p2pLog),
		snaps:   make(map[snapKey]*CursorSnap),
		commit:  make(map[int]int),
		water:   -1,
	}
}

// active reports whether logging/replay should happen. Caller holds mu.
func (l *MsgLog) activeLocked() bool { return l.enabled && !l.disabled }

// Active reports whether the log is live (enabled and not disabled by a
// shrink compaction).
func (l *MsgLog) Active() bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.activeLocked()
}

// RegisterComm marks a communicator id as part of the resilient lineage;
// only traffic on registered comms is logged. width is the communicator
// size (the number of logical slots).
func (l *MsgLog) RegisterComm(id int64, width int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.activeLocked() {
		return
	}
	if l.nSlots == 0 {
		l.nSlots = width
	} else if l.nSlots != width {
		// Width change means slot identity changed (compaction); the log's
		// slot-keyed streams are meaningless now.
		l.disableLocked()
		return
	}
	l.comms[id] = true
}

// registered reports whether comm id is part of the logged lineage.
func (l *MsgLog) registered(id int64) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.activeLocked() && l.comms[id]
}

// Disable permanently turns the log off (shrink compaction changed slot
// identity). Entries are released; localized recovery degrades to global
// rollback from here on.
func (l *MsgLog) Disable() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.disableLocked()
}

func (l *MsgLog) disableLocked() {
	l.disabled = true
	l.p2p = make(map[p2pKey]*p2pLog)
	l.coll = collLog{}
	l.snaps = make(map[snapKey]*CursorSnap)
	l.entries = 0
	l.bytes = 0
}

// ResetOnce clears the whole log if generation `gen` has not already
// triggered a reset. It is called by every rank when a recovery finds no
// committed checkpoint (best common version -1): the run re-executes from
// scratch, so the aborted epoch's log is garbage. Returns true for the
// caller that performed the reset (or if this generation already reset —
// callers must still zero their own cursors either way).
func (l *MsgLog) ResetOnce(gen int) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.activeLocked() || gen <= l.resetGen {
		return false
	}
	l.resetGen = gen
	l.p2p = make(map[p2pKey]*p2pLog)
	l.coll = collLog{}
	l.snaps = make(map[snapKey]*CursorSnap)
	l.commit = make(map[int]int)
	l.water = -1
	l.entries = 0
	l.bytes = 0
	return true
}

// AppendP2P logs one sent message and returns its absolute sequence
// number. The caller must have already delivered the payload (deliver
// before append: a receiver that sees the entry is guaranteed the mailbox
// copy exists too).
func (l *MsgLog) AppendP2P(key p2pKey, data []byte, simBytes int, arriveAt float64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	pl := l.p2p[key]
	if pl == nil {
		pl = &p2pLog{}
		l.p2p[key] = pl
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	pl.entries = append(pl.entries, p2pEntry{data: cp, simBytes: simBytes, arriveAt: arriveAt})
	l.entries++
	l.bytes += int64(simBytes)
	return pl.base + len(pl.entries) - 1
}

// p2pAt returns the entry with absolute sequence seq for key, if logged
// and not yet trimmed.
func (l *MsgLog) p2pAt(key p2pKey, seq int) (p2pEntry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	pl := l.p2p[key]
	if pl == nil || seq >= pl.base+len(pl.entries) {
		return p2pEntry{}, false
	}
	if seq < pl.base {
		panic(fmt.Sprintf("mpi: msglog replay below GC watermark: key %+v seq %d base %d", key, seq, pl.base))
	}
	return pl.entries[seq-pl.base], true
}

// p2pLen returns the absolute length (next sequence number) of key's
// stream.
func (l *MsgLog) p2pLen(key p2pKey) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	pl := l.p2p[key]
	if pl == nil {
		return 0
	}
	return pl.base + len(pl.entries)
}

// noteConsumed records that absolute seq was consumed by the receiver and
// reports whether this was a replay (a previous incarnation had already
// consumed it).
func (l *MsgLog) noteConsumed(key p2pKey, seq int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	pl := l.p2p[key]
	if pl == nil {
		return false
	}
	if seq < pl.maxSeen {
		return true
	}
	pl.maxSeen = seq + 1
	return false
}

// AppendColl logs one completed non-tolerant lineage collective.
func (l *MsgLog) AppendColl(slots []slot, nArrived, simBytes int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.coll.entries = append(l.coll.entries, collEntry{slots: slots, nArrived: nArrived, simBytes: simBytes})
	l.entries++
	l.bytes += int64(simBytes)
	return l.coll.base + len(l.coll.entries) - 1
}

// collAt returns logged collective idx (absolute index).
func (l *MsgLog) collAt(idx int) (collEntry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if idx >= l.coll.base+len(l.coll.entries) {
		return collEntry{}, false
	}
	if idx < l.coll.base {
		panic(fmt.Sprintf("mpi: msglog collective replay below GC watermark: idx %d base %d", idx, l.coll.base))
	}
	return l.coll.entries[idx-l.coll.base], true
}

// collLen returns the absolute lineage length.
func (l *MsgLog) collLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.coll.base + len(l.coll.entries)
}

// Snapshot records slot's boundary cursors for iteration iter, unless a
// snapshot for that boundary already exists (the first incarnation to
// reach a boundary owns its snapshot).
func (l *MsgLog) Snapshot(slot, iter int, cur *CursorSnap) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.activeLocked() {
		return
	}
	k := snapKey{slot: slot, iter: iter}
	if _, ok := l.snaps[k]; ok {
		return
	}
	l.snaps[k] = cur.clone()
}

// SnapshotAt returns the recorded boundary snapshot for (slot, iter), or
// nil if none was recorded.
func (l *MsgLog) SnapshotAt(slot, iter int) *CursorSnap {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s, ok := l.snaps[snapKey{slot: slot, iter: iter}]
	if !ok {
		return nil
	}
	return s.clone()
}

// frontier returns, for every stream touching `slot`, the stream's
// absolute length — the cursor values of a rank that has sent and consumed
// everything logged for it. Used to fast-forward a replacement over a
// restored iteration whose successor boundary was never reached.
func (l *MsgLog) frontier(slot int) *CursorSnap {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := &CursorSnap{Send: make(map[p2pKey]int), Recv: make(map[p2pKey]int), Coll: l.coll.base + len(l.coll.entries)}
	for k, pl := range l.p2p {
		n := pl.base + len(pl.entries)
		if k.src == slot {
			s.Send[k] = n
		}
		if k.dst == slot {
			s.Recv[k] = n
		}
	}
	return s
}

// NoteCommit records that `slot` committed checkpoint version `version`
// and runs GC if the watermark advanced. It returns the new watermark and
// the number of entries trimmed by this call (0 if the watermark did not
// move).
func (l *MsgLog) NoteCommit(slot, version int) (watermark int, trimmed int) {
	if l == nil {
		return -1, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.activeLocked() {
		return l.water, 0
	}
	if v, ok := l.commit[slot]; !ok || version > v {
		l.commit[slot] = version
	}
	if l.nSlots == 0 || len(l.commit) < l.nSlots {
		return l.water, 0
	}
	w := -1
	for s := 0; s < l.nSlots; s++ {
		v, ok := l.commit[s]
		if !ok {
			return l.water, 0
		}
		if w == -1 || v < w {
			w = v
		}
	}
	if w <= l.water {
		return l.water, 0
	}
	l.water = w
	return w, l.trimLocked(w)
}

// trimLocked drops every entry that belongs to an iteration before the
// watermark W, using the boundary-W snapshots: a stream's prefix below the
// sender's boundary-W send cursor was sent before iteration W and can
// never be replayed (replay never starts before the best common version,
// which is >= W). Caller holds mu.
func (l *MsgLog) trimLocked(w int) int {
	trimmed := 0
	for key, pl := range l.p2p {
		snap, ok := l.snaps[snapKey{slot: key.src, iter: w}]
		if !ok {
			continue
		}
		keep := snap.Send[key]
		if keep <= pl.base {
			continue
		}
		n := keep - pl.base
		if n > len(pl.entries) {
			n = len(pl.entries)
		}
		for i := 0; i < n; i++ {
			l.bytes -= int64(pl.entries[i].simBytes)
		}
		pl.entries = append(pl.entries[:0:0], pl.entries[n:]...)
		pl.base += n
		l.entries -= n
		trimmed += n
	}
	// All boundary-W collective cursors are equal across slots (SPMD);
	// use slot 0's.
	if snap, ok := l.snaps[snapKey{slot: 0, iter: w}]; ok && snap.Coll > l.coll.base {
		n := snap.Coll - l.coll.base
		if n > len(l.coll.entries) {
			n = len(l.coll.entries)
		}
		for i := 0; i < n; i++ {
			l.bytes -= int64(l.coll.entries[i].simBytes)
		}
		l.coll.entries = append(l.coll.entries[:0:0], l.coll.entries[n:]...)
		l.coll.base += n
		l.entries -= n
		trimmed += n
	}
	for k := range l.snaps {
		if k.iter < w {
			delete(l.snaps, k)
		}
	}
	l.trimmed += int64(trimmed)
	return trimmed
}

// Stats returns the current entry count, held payload bytes, total trimmed
// entries, and GC watermark.
func (l *MsgLog) Stats() (entries int, bytes int64, trimmed int64, watermark int) {
	if l == nil {
		return 0, 0, 0, -1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.entries, l.bytes, l.trimmed, l.water
}
