package mpi

import "testing"

// White-box unit tests for the sender-based message log: the GC trim
// arithmetic, the once-per-generation reset, the replay frontier, and the
// width-mismatch self-disable. The end-to-end replay behaviour is covered
// by internal/core's localized-recovery tests; these pin the log's own
// bookkeeping against a synthetic two-slot lineage.

// logKey builds the canonical stream key used throughout.
func logKey(src, dst, tag int) p2pKey { return p2pKey{src: src, dst: dst, tag: tag} }

// seedEpoch appends one p2p message per direction and one collective, then
// snapshots both slots' cursors at the boundary of iteration iter with
// everything so far sent/consumed.
func seedEpoch(l *MsgLog, iter int) {
	l.AppendP2P(logKey(0, 1, 7), []byte{1}, 100, 1.0)
	l.AppendP2P(logKey(1, 0, 7), []byte{2}, 100, 1.0)
	l.AppendColl(nil, 2, 50)
	for s := 0; s < 2; s++ {
		l.Snapshot(s, iter, &CursorSnap{
			Send: map[p2pKey]int{logKey(s, 1-s, 7): l.p2pLen(logKey(s, 1-s, 7))},
			Recv: map[p2pKey]int{logKey(1-s, s, 7): l.p2pLen(logKey(1-s, s, 7))},
			Coll: l.collLen(),
		})
	}
}

func TestMsgLogTrimMath(t *testing.T) {
	l := NewMsgLog()
	l.RegisterComm(1, 2)
	// Epoch 0 traffic, boundary snapshots at iter 5, epoch 1 traffic.
	seedEpoch(l, 5)
	seedEpoch(l, 10)
	if entries, bytes, trimmed, w := l.Stats(); entries != 6 || bytes != 500 || trimmed != 0 || w != -1 {
		t.Fatalf("pre-GC stats = (%d, %d, %d, %d), want (6, 500, 0, -1)", entries, bytes, trimmed, w)
	}

	// One slot committing moves nothing: the watermark is a min over all.
	if w, n := l.NoteCommit(0, 5); w != -1 || n != 0 {
		t.Fatalf("single-slot commit advanced the watermark: (%d, %d)", w, n)
	}
	// The second commit completes version 5 everywhere: the epoch-0 prefix
	// (2 p2p + 1 coll, 250 sim bytes) is below every boundary-5 cursor and
	// must go; the epoch-1 entries survive.
	w, n := l.NoteCommit(1, 5)
	if w != 5 || n != 3 {
		t.Fatalf("full commit -> (watermark %d, trimmed %d), want (5, 3)", w, n)
	}
	entries, bytes, trimmed, _ := l.Stats()
	if entries != 3 || bytes != 250 || trimmed != 3 {
		t.Fatalf("post-GC stats = (%d, %d, %d), want (3, 250, 3)", entries, bytes, trimmed)
	}
	// Absolute sequence numbers survive the trim: seq 1 (epoch 1's message)
	// is still served, and stream length counts trimmed entries.
	if _, ok := l.p2pAt(logKey(0, 1, 7), 1); !ok {
		t.Fatal("post-watermark entry lost by the trim")
	}
	if got := l.p2pLen(logKey(0, 1, 7)); got != 2 {
		t.Fatalf("stream length = %d, want 2 (absolute, trim-invariant)", got)
	}
	// Replaying below the watermark is a protocol violation, not a miss.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("replay below the GC watermark did not panic")
			}
		}()
		l.p2pAt(logKey(0, 1, 7), 0)
	}()

	// A stale commit (version <= watermark) never re-trims or regresses.
	if w, n := l.NoteCommit(0, 4); w != 5 || n != 0 {
		t.Fatalf("stale commit moved the watermark: (%d, %d)", w, n)
	}
}

func TestMsgLogResetOnce(t *testing.T) {
	l := NewMsgLog()
	l.RegisterComm(1, 2)
	seedEpoch(l, 5)
	if !l.ResetOnce(1) {
		t.Fatal("first reset for generation 1 reported false")
	}
	if entries, bytes, _, w := l.Stats(); entries != 0 || bytes != 0 || w != -1 {
		t.Fatalf("reset left stats (%d, %d, watermark %d)", entries, bytes, w)
	}
	// Same or older generation: the log was already reset; no second wipe.
	l.AppendP2P(logKey(0, 1, 7), []byte{9}, 10, 2.0)
	if l.ResetOnce(1) || l.ResetOnce(0) {
		t.Fatal("repeat reset for an already-reset generation reported true")
	}
	if entries, _, _, _ := l.Stats(); entries != 1 {
		t.Fatalf("repeat ResetOnce wiped the new epoch: %d entries", entries)
	}
	// A later generation resets again; a disabled log never does.
	if !l.ResetOnce(2) {
		t.Fatal("reset for a newer generation reported false")
	}
	l.Disable()
	if l.ResetOnce(3) {
		t.Fatal("disabled log accepted a reset")
	}
}

func TestMsgLogFrontier(t *testing.T) {
	l := NewMsgLog()
	l.RegisterComm(1, 2)
	seedEpoch(l, 5)
	l.AppendP2P(logKey(0, 1, 7), []byte{3}, 100, 2.0)
	f := l.frontier(0)
	if got := f.Send[logKey(0, 1, 7)]; got != 2 {
		t.Errorf("frontier send cursor = %d, want the stream length 2", got)
	}
	if got := f.Recv[logKey(1, 0, 7)]; got != 1 {
		t.Errorf("frontier recv cursor = %d, want 1", got)
	}
	if f.Coll != 1 {
		t.Errorf("frontier coll cursor = %d, want 1", f.Coll)
	}
	// Streams not touching the slot are absent in both directions.
	if _, ok := f.Send[logKey(1, 0, 7)]; ok {
		t.Error("frontier for slot 0 includes slot 1's send stream")
	}
}

func TestMsgLogWidthMismatchDisables(t *testing.T) {
	l := NewMsgLog()
	l.RegisterComm(1, 4)
	if !l.Active() || !l.registered(1) {
		t.Fatal("log inactive after first RegisterComm")
	}
	seedEpoch(l, 5)
	// A different width means slot identity changed (shrink compaction):
	// the slot-keyed streams are meaningless and the log must gut itself.
	l.RegisterComm(2, 3)
	if l.Active() {
		t.Fatal("log still active after a lineage width change")
	}
	if l.registered(1) || l.registered(2) {
		t.Fatal("disabled log still reports registered comms")
	}
	if entries, bytes, _, _ := l.Stats(); entries != 0 || bytes != 0 {
		t.Fatalf("disable retained (%d entries, %d bytes)", entries, bytes)
	}
	// The disable is sticky: re-registering the original width cannot
	// resurrect slot-keyed state.
	l.RegisterComm(3, 4)
	if l.Active() {
		t.Fatal("disable was not sticky")
	}
}

func TestMsgLogNoteConsumedReplayDetection(t *testing.T) {
	l := NewMsgLog()
	l.RegisterComm(1, 2)
	k := logKey(0, 1, 7)
	l.AppendP2P(k, []byte{1}, 10, 1.0)
	l.AppendP2P(k, []byte{2}, 10, 1.5)
	if l.noteConsumed(k, 0) {
		t.Error("first consumption of seq 0 flagged as replay")
	}
	if l.noteConsumed(k, 1) {
		t.Error("first consumption of seq 1 flagged as replay")
	}
	// A replacement re-reading the stream from the start is replaying.
	if !l.noteConsumed(k, 0) {
		t.Error("re-consumption below maxSeen not flagged as replay")
	}
	// Replay does not move the high-water mark backwards.
	if l.noteConsumed(k, 2) {
		t.Error("first consumption of seq 2 flagged as replay after a replay")
	}
}
