package mpi

import (
	"errors"

	"repro/internal/obs"
	"repro/internal/trace"
)

// This file adds nonblocking point-to-point operations (MPI_Isend /
// MPI_Irecv / MPI_Wait). In the virtual-time model a nonblocking send
// posts the message immediately and records the time at which the NIC
// would be done with it; Wait only charges the portion of that transfer
// not already hidden behind subsequent computation — reproducing
// communication/computation overlap.

// Request is a pending nonblocking operation handle.
type Request struct {
	p    *Proc
	comm *Comm

	// send-side
	isSend     bool
	completeAt float64

	// recv-side
	key msgKey
	src int // world rank

	// message-log stream key (valid when logged is true): the sender-based
	// log consulted by Wait on the receive side.
	lkey   p2pKey
	logged bool

	done bool
	data []byte
	err  error
}

var errRequestReused = errors.New("mpi: Wait called twice on the same request")

// Isend posts a buffered nonblocking send to comm rank dst. The message
// becomes available to the receiver after the full transfer time, but the
// sender is free immediately; Wait settles any un-hidden transfer cost.
func (c *Comm) Isend(p *Proc, dst, tag int, data []byte) (*Request, error) {
	return c.IsendSized(p, dst, tag, data, len(data))
}

// IsendSized is Isend with the cost model charged for simBytes. Like Send,
// it is locally complete and fails fast only on the sender's own knowledge
// of the destination's death or of its own departure from the communicator
// (see Comm.Send).
func (c *Comm) IsendSized(p *Proc, dst, tag int, data []byte, simBytes int) (*Request, error) {
	me := c.checkMember(p, "Isend")
	dstW := c.WorldRank(dst)
	if p.obsDead[dstW] {
		p.waitForDetection([]int{dstW})
		return nil, c.fail(p, newFailedError([]int{dstW}))
	}
	if c.hasDeparted(p.rank) {
		return nil, p.failMPI(ErrRevoked)
	}
	cost := p.congest(p.world.machine.TransferTime(simBytes))
	// Post overhead only; the transfer itself proceeds in the background.
	post := p.world.machine.NetLatency
	p.clock.Advance(post)
	p.rec.Add(trace.AppMPI, post)

	l := p.msglogOn(c)
	lkey := p2pKey{src: me, dst: dst, tag: tag}
	seq := -1
	if l != nil {
		seq = p.logSend[lkey]
		if seq < l.p2pLen(lkey) {
			// Replay: already delivered and logged; suppress the duplicate
			// but keep the send's timing contract (Wait settles to arrive).
			p.bumpSend(lkey, seq)
			p.noteReplay("send", dst, tag)
			return &Request{p: p, comm: c, isSend: true, completeAt: p.clock.Now() + cost}, nil
		}
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	arrive := p.clock.Now() + cost
	c.world.procs[dstW].mail.deliver(
		msgKey{comm: c.id, src: p.rank, tag: tag},
		message{data: cp, arriveAt: arrive, seq: seq},
	)
	if l != nil {
		l.AppendP2P(lkey, data, simBytes, arrive)
		p.bumpSend(lkey, seq)
		p.Event(obs.LayerMPI, obs.EvMsgLogged, obs.KV("peer", dst), obs.KV("tag", tag), obs.KV("bytes", simBytes))
		p.world.obs.Registry().Counter(obs.MMsgLogged).Inc()
		p.msglogGauges(l)
	}
	return &Request{p: p, comm: c, isSend: true, completeAt: arrive}, nil
}

// Irecv posts a nonblocking receive for a message from comm rank src with
// the given tag. The data is produced by Wait.
func (c *Comm) Irecv(p *Proc, src, tag int) (*Request, error) {
	me := c.checkMember(p, "Irecv")
	srcW := c.WorldRank(src)
	return &Request{
		p:      p,
		comm:   c,
		key:    msgKey{comm: c.id, src: srcW, tag: tag},
		src:    srcW,
		lkey:   p2pKey{src: src, dst: me, tag: tag},
		logged: p.msglogOn(c) != nil,
	}, nil
}

// Wait completes the request: for sends it settles any transfer time not
// hidden behind computation executed since the post; for receives it
// blocks until the message arrives and returns the payload.
func (r *Request) Wait() ([]byte, error) {
	if r.done {
		return nil, errRequestReused
	}
	r.done = true
	p := r.p

	if r.isSend {
		waited := p.clock.AdvanceTo(r.completeAt)
		p.rec.Add(trace.AppMPI, waited)
		return nil, nil
	}

	start := p.clock.Now()
	var l *MsgLog
	if r.logged {
		l = p.msglogOn(r.comm)
	}
	if l != nil {
		seq := p.logRecv[r.lkey]
		if e, ok := l.p2pAt(r.lkey, seq); ok {
			// Served from the sender-based log (same path as Comm.Recv, but
			// with Wait's un-congested completion overhead).
			p.mail.dropThrough(r.key, seq)
			p.clock.AdvanceTo(e.arriveAt)
			p.clock.Advance(p.world.machine.NetLatency)
			p.rec.Add(trace.AppMPI, p.clock.Now()-start)
			if replay := l.noteConsumed(r.lkey, seq); replay {
				p.noteReplay("recv", r.lkey.src, r.lkey.tag)
			}
			if p.logRecv == nil {
				p.logRecv = make(map[p2pKey]int)
			}
			p.logRecv[r.lkey] = seq + 1
			out := make([]byte, len(e.data))
			copy(out, e.data)
			return out, nil
		}
	}
	var release float64
	msg, err := p.mail.receive(p, r.key, func() error {
		e, rel := r.comm.recvGiveUp(r.src)
		release = rel
		return e
	})
	if err != nil {
		p.clock.AdvanceTo(release)
		p.rec.Add(trace.AppMPI, p.clock.Now()-start)
		return nil, r.comm.fail(p, err)
	}
	p.clock.AdvanceTo(msg.arriveAt)
	p.clock.Advance(p.world.machine.NetLatency)
	p.rec.Add(trace.AppMPI, p.clock.Now()-start)
	if l != nil {
		p.bumpRecv(l, r.lkey, msg.seq)
	}
	return msg.data, nil
}

// WaitAll completes all requests in order and returns the first error.
// Received payloads are returned positionally (nil for sends).
func WaitAll(reqs []*Request) ([][]byte, error) {
	out := make([][]byte, len(reqs))
	var firstErr error
	for i, r := range reqs {
		data, err := r.Wait()
		out[i] = data
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return out, firstErr
}
