package mpi

import (
	"errors"

	"repro/internal/trace"
)

// This file adds nonblocking point-to-point operations (MPI_Isend /
// MPI_Irecv / MPI_Wait). In the virtual-time model a nonblocking send
// posts the message immediately and records the time at which the NIC
// would be done with it; Wait only charges the portion of that transfer
// not already hidden behind subsequent computation — reproducing
// communication/computation overlap.

// Request is a pending nonblocking operation handle.
type Request struct {
	p    *Proc
	comm *Comm

	// send-side
	isSend     bool
	completeAt float64

	// recv-side
	key msgKey
	src int // world rank

	done bool
	data []byte
	err  error
}

var errRequestReused = errors.New("mpi: Wait called twice on the same request")

// Isend posts a buffered nonblocking send to comm rank dst. The message
// becomes available to the receiver after the full transfer time, but the
// sender is free immediately; Wait settles any un-hidden transfer cost.
func (c *Comm) Isend(p *Proc, dst, tag int, data []byte) (*Request, error) {
	return c.IsendSized(p, dst, tag, data, len(data))
}

// IsendSized is Isend with the cost model charged for simBytes. Like Send,
// it is locally complete and fails fast only on the sender's own knowledge
// of the destination's death or of its own departure from the communicator
// (see Comm.Send).
func (c *Comm) IsendSized(p *Proc, dst, tag int, data []byte, simBytes int) (*Request, error) {
	c.checkMember(p, "Isend")
	dstW := c.WorldRank(dst)
	if p.obsDead[dstW] {
		p.waitForDetection([]int{dstW})
		return nil, c.fail(p, newFailedError([]int{dstW}))
	}
	if c.hasDeparted(p.rank) {
		return nil, p.failMPI(ErrRevoked)
	}
	cost := p.congest(p.world.machine.TransferTime(simBytes))
	// Post overhead only; the transfer itself proceeds in the background.
	post := p.world.machine.NetLatency
	p.clock.Advance(post)
	p.rec.Add(trace.AppMPI, post)

	cp := make([]byte, len(data))
	copy(cp, data)
	arrive := p.clock.Now() + cost
	c.world.procs[dstW].mail.deliver(
		msgKey{comm: c.id, src: p.rank, tag: tag},
		message{data: cp, arriveAt: arrive},
	)
	return &Request{p: p, comm: c, isSend: true, completeAt: arrive}, nil
}

// Irecv posts a nonblocking receive for a message from comm rank src with
// the given tag. The data is produced by Wait.
func (c *Comm) Irecv(p *Proc, src, tag int) (*Request, error) {
	c.checkMember(p, "Irecv")
	srcW := c.WorldRank(src)
	return &Request{
		p:    p,
		comm: c,
		key:  msgKey{comm: c.id, src: srcW, tag: tag},
		src:  srcW,
	}, nil
}

// Wait completes the request: for sends it settles any transfer time not
// hidden behind computation executed since the post; for receives it
// blocks until the message arrives and returns the payload.
func (r *Request) Wait() ([]byte, error) {
	if r.done {
		return nil, errRequestReused
	}
	r.done = true
	p := r.p

	if r.isSend {
		waited := p.clock.AdvanceTo(r.completeAt)
		p.rec.Add(trace.AppMPI, waited)
		return nil, nil
	}

	start := p.clock.Now()
	var release float64
	msg, err := p.mail.receive(p, r.key, func() error {
		e, rel := r.comm.recvGiveUp(r.src)
		release = rel
		return e
	})
	if err != nil {
		p.clock.AdvanceTo(release)
		p.rec.Add(trace.AppMPI, p.clock.Now()-start)
		return nil, r.comm.fail(p, err)
	}
	p.clock.AdvanceTo(msg.arriveAt)
	p.clock.Advance(p.world.machine.NetLatency)
	p.rec.Add(trace.AppMPI, p.clock.Now()-start)
	return msg.data, nil
}

// WaitAll completes all requests in order and returns the first error.
// Received payloads are returned positionally (nil for sends).
func WaitAll(reqs []*Request) ([][]byte, error) {
	out := make([][]byte, len(reqs))
	var firstErr error
	for i, r := range reqs {
		data, err := r.Wait()
		out[i] = data
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return out, firstErr
}
