package mpi

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"repro/internal/trace"
)

func TestIsendIrecvRoundTrip(t *testing.T) {
	w := testWorld(2)
	c := w.CommWorld()
	payload := []byte("nonblocking payload")
	runWorld(w, func(p *Proc) error {
		if p.Rank() == 0 {
			req, err := c.Isend(p, 1, 5, payload)
			if err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		}
		req, err := c.Irecv(p, 0, 5)
		if err != nil {
			return err
		}
		got, err := req.Wait()
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("got %q", got)
		}
		return nil
	})
}

func TestIsendOverlapsComputation(t *testing.T) {
	// A sender that computes after Isend hides the transfer: its Wait is
	// nearly free. A blocking Send charges the transfer up front.
	size := 1 << 24 // 16 MB -> ~2ms transfer

	blocking := testWorld(2)
	runWorld(blocking, func(p *Proc) error {
		if p.Rank() == 0 {
			if err := blocking.CommWorld().Send(p, 1, 0, make([]byte, size)); err != nil {
				return err
			}
			p.ComputeExact(1e7) // 5 ms of compute after the send
			return nil
		}
		_, err := blocking.CommWorld().Recv(p, 0, 0)
		return err
	})

	overlapped := testWorld(2)
	runWorld(overlapped, func(p *Proc) error {
		if p.Rank() == 0 {
			req, err := overlapped.CommWorld().Isend(p, 1, 0, make([]byte, size))
			if err != nil {
				return err
			}
			p.ComputeExact(1e7) // compute while the transfer proceeds
			_, err = req.Wait()
			return err
		}
		_, err := overlapped.CommWorld().Recv(p, 0, 0)
		return err
	})

	tb := blocking.Proc(0).Now()
	to := overlapped.Proc(0).Now()
	if to >= tb {
		t.Fatalf("overlapped sender (%v) not faster than blocking (%v)", to, tb)
	}
	// The overlapped sender's MPI time is just post+settle overhead.
	if mpiT := overlapped.Proc(0).Recorder().Get(trace.AppMPI); mpiT > 1e-4 {
		t.Fatalf("overlapped sender charged %v MPI time", mpiT)
	}
}

func TestIrecvFromDeadRankFails(t *testing.T) {
	w := testWorld(2)
	c := w.CommWorld()
	errs := runWorld(w, func(p *Proc) error {
		if p.Rank() == 1 {
			p.Exit()
		}
		req, err := c.Irecv(p, 1, 0)
		if err != nil {
			return err
		}
		_, err = req.Wait()
		return err
	})
	if !IsProcessFailure(errs[0]) {
		t.Fatalf("err = %v", errs[0])
	}
}

func TestIsendToDeadRankFails(t *testing.T) {
	// Isend fails fast only once the sender has itself observed the
	// destination's death (here via a failed Recv), like Send.
	w := testWorld(2)
	c := w.CommWorld()
	errs := runWorld(w, func(p *Proc) error {
		if p.Rank() == 1 {
			p.Exit()
		}
		if _, err := c.Recv(p, 1, 0); !IsProcessFailure(err) {
			t.Errorf("recv from dead rank: %v", err)
		}
		_, err := c.Isend(p, 1, 0, []byte{1})
		return err
	})
	if !IsProcessFailure(errs[0]) {
		t.Fatalf("err = %v", errs[0])
	}
}

func TestRequestDoubleWait(t *testing.T) {
	w := testWorld(2)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		if p.Rank() == 0 {
			req, err := c.Isend(p, 1, 0, []byte{1})
			if err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			if _, err := req.Wait(); err == nil {
				t.Error("second Wait succeeded")
			}
			return nil
		}
		_, err := c.Recv(p, 0, 0)
		return err
	})
}

func TestWaitAll(t *testing.T) {
	w := testWorld(3)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		if p.Rank() == 0 {
			var reqs []*Request
			for dst := 1; dst <= 2; dst++ {
				r, err := c.Isend(p, dst, 0, []byte{byte(dst)})
				if err != nil {
					return err
				}
				reqs = append(reqs, r)
			}
			_, err := WaitAll(reqs)
			return err
		}
		r, err := c.Irecv(p, 0, 0)
		if err != nil {
			return err
		}
		out, err := WaitAll([]*Request{r})
		if err != nil {
			return err
		}
		if out[0][0] != byte(p.Rank()) {
			t.Errorf("rank %d got %v", p.Rank(), out[0])
		}
		return nil
	})
}

func TestGatherAtRoot(t *testing.T) {
	w := testWorld(3)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		out, err := c.GatherB(p, 1, []byte{byte(p.Rank() * 3)})
		if err != nil {
			return err
		}
		if p.Rank() == 1 {
			for i, b := range out {
				if b[0] != byte(i*3) {
					t.Errorf("gather[%d] = %d", i, b[0])
				}
			}
		} else if out != nil {
			t.Errorf("non-root got %v", out)
		}
		return nil
	})
}

func TestScatterFromRoot(t *testing.T) {
	w := testWorld(3)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		var chunks [][]byte
		if p.Rank() == 0 {
			chunks = [][]byte{{10}, {11}, {12}}
		}
		got, err := c.ScatterB(p, 0, chunks)
		if err != nil {
			return err
		}
		if got[0] != byte(10+p.Rank()) {
			t.Errorf("rank %d got %d", p.Rank(), got[0])
		}
		return nil
	})
}

func TestScatterChunkIsolation(t *testing.T) {
	w := testWorld(2)
	c := w.CommWorld()
	src := [][]byte{{1}, {2}}
	runWorld(w, func(p *Proc) error {
		var chunks [][]byte
		if p.Rank() == 0 {
			chunks = src
		}
		got, err := c.ScatterB(p, 0, chunks)
		if err != nil {
			return err
		}
		got[0] = 99 // must not alias root's buffers
		return nil
	})
	if src[0][0] != 1 || src[1][0] != 2 {
		t.Fatal("scatter aliased root chunks")
	}
}

func TestAllgatherF64(t *testing.T) {
	w := testWorld(3)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		out, err := c.AllgatherF64(p, []float64{float64(p.Rank()) + 0.5})
		if err != nil {
			return err
		}
		want := [][]float64{{0.5}, {1.5}, {2.5}}
		if !reflect.DeepEqual(out, want) {
			t.Errorf("allgather = %v", out)
		}
		return nil
	})
}

func TestGatherFailsOnDeadMember(t *testing.T) {
	w := testWorld(3)
	c := w.CommWorld()
	errs := runWorld(w, func(p *Proc) error {
		if p.Rank() == 2 {
			p.Exit()
		}
		_, err := c.GatherB(p, 0, []byte{1})
		return err
	})
	if !IsProcessFailure(errs[0]) || !IsProcessFailure(errs[1]) {
		t.Fatalf("errs = %v", errs[:2])
	}
}

func TestAlltoall(t *testing.T) {
	w := testWorld(3)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		// chunks[i] = [10*me + i]
		chunks := make([][]byte, 3)
		for i := range chunks {
			chunks[i] = []byte{byte(10*p.Rank() + i)}
		}
		out, err := c.AlltoallB(p, chunks)
		if err != nil {
			return err
		}
		// out[j] came from rank j and is j's chunk for me.
		for j, b := range out {
			want := byte(10*j + p.Rank())
			if b[0] != want {
				t.Errorf("rank %d out[%d] = %d, want %d", p.Rank(), j, b[0], want)
			}
		}
		return nil
	})
}

func TestAlltoallWrongChunkCount(t *testing.T) {
	w := testWorld(2)
	c := w.CommWorld()
	errs := make([]error, 2)
	runWorld(w, func(p *Proc) error {
		if p.Rank() == 0 {
			_, err := c.AlltoallB(p, [][]byte{{1}})
			errs[0] = err
			// Recover the collective schedule for rank 1's matching call.
			_, err2 := c.AlltoallB(p, [][]byte{{1}, {2}})
			return err2
		}
		_, err := c.AlltoallB(p, [][]byte{{3}, {4}})
		return err
	})
	if errs[0] == nil {
		t.Fatal("wrong chunk count accepted")
	}
}

func TestReduceScatter(t *testing.T) {
	w := testWorld(2)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		// Rank r contributes [r+1, r+1, r+1, r+1]; sum = [3,3,3,3];
		// each rank gets a block of 2.
		data := []float64{float64(p.Rank() + 1), float64(p.Rank() + 1), float64(p.Rank() + 1), float64(p.Rank() + 1)}
		out, err := c.ReduceScatterF64(p, data, OpSum)
		if err != nil {
			return err
		}
		if len(out) != 2 || out[0] != 3 || out[1] != 3 {
			t.Errorf("rank %d reduce-scatter = %v", p.Rank(), out)
		}
		return nil
	})
}

func TestReduceScatterBadLength(t *testing.T) {
	w := testWorld(3)
	c := w.CommWorld()
	var mu sync.Mutex
	errCount := 0
	runWorld(w, func(p *Proc) error {
		if _, err := c.ReduceScatterF64(p, []float64{1, 2}, OpSum); err != nil {
			mu.Lock()
			errCount++
			mu.Unlock()
		}
		return nil
	})
	if errCount != 3 {
		t.Fatalf("bad length accepted at %d ranks", 3-errCount)
	}
}
