package mpi

import (
	"errors"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Proc is one simulated MPI process: a goroutine with a virtual clock, a
// node placement, a mailbox for point-to-point messages, and a per-category
// time recorder. A Proc is owned by its rank goroutine; only the mailbox
// and world-level failure state are shared.
type Proc struct {
	world *World
	rank  int
	node  *cluster.Node
	clock *sim.Clock
	rec   *trace.Recorder
	rng   *sim.RNG

	mail    mailbox
	collSeq map[int64]int64
	exited  bool

	// resume is the rank's park/wake channel under ExecPool (see exec.go):
	// the rank parks by receiving, the pool grants an execution slot with a
	// single buffered send. Nil under ExecGoroutine; allocated by
	// SetExecMode before ranks start.
	resume chan struct{}

	// obsDead tracks which failed world ranks this process has observed
	// (through an MPI error): each failure is emitted once per rank, and
	// sends to a rank known dead fail fast deterministically. Owned by the
	// rank goroutine; no lock needed.
	obsDead map[int]bool

	// Message-log cursors (msglog.go), owned by the rank goroutine. They
	// track how far this process has progressed through each logged stream:
	// a send below the stream length is suppressed (already delivered), a
	// receive below it is served from the log, a collective cursor below
	// the lineage length returns the logged result. logExempt marks
	// sections (e.g. the recovery-time version agreement) whose traffic is
	// outside the replayed program order and must stay live and unlogged.
	logSend   map[p2pKey]int
	logRecv   map[p2pKey]int
	logColl   int
	logExempt int
}

func newProc(w *World, rank int, node *cluster.Node, rng *sim.RNG, startTime float64) *Proc {
	p := &Proc{
		world:   w,
		rank:    rank,
		node:    node,
		clock:   sim.NewClockAt(startTime),
		rec:     trace.NewRecorder(),
		rng:     rng,
		collSeq: make(map[int64]int64),
	}
	p.mail.init()
	return p
}

// Rank returns the process's world rank.
func (p *Proc) Rank() int { return p.rank }

// Size returns the world size.
func (p *Proc) Size() int { return p.world.Size() }

// World returns the enclosing world.
func (p *Proc) World() *World { return p.world }

// Node returns the compute node hosting this process.
func (p *Proc) Node() *cluster.Node { return p.node }

// Machine returns the cost model.
func (p *Proc) Machine() *sim.Machine { return p.world.machine }

// Clock returns the process's virtual clock.
func (p *Proc) Clock() *sim.Clock { return p.clock }

// Recorder returns the process's time recorder.
func (p *Proc) Recorder() *trace.Recorder { return p.rec }

// RNG returns the process's deterministic random stream.
func (p *Proc) RNG() *sim.RNG { return p.rng }

// Obs returns the job's observability recorder (nil when the run is
// uninstrumented; all recorder methods are nil-safe).
func (p *Proc) Obs() *obs.Recorder { return p.world.obs }

// Event emits a structured observability event stamped with this process's
// world rank and current virtual time. It is a no-op without a recorder.
func (p *Proc) Event(layer, name string, attrs ...obs.Attr) {
	p.world.obs.Emit(p.clock.Now(), p.rank, layer, name, attrs...)
}

// Now returns the current virtual time (MPI_Wtime).
func (p *Proc) Now() float64 { return p.clock.Now() }

// Compute charges `units` of application work to the clock, with the
// machine's noise jitter applied, attributed to AppCompute (or the active
// section/recompute redirection).
func (p *Proc) Compute(units float64) {
	d := p.world.machine.ComputeTime(units) * p.rng.Jitter(p.world.machine.NoiseAmplitude)
	p.clock.Advance(d)
	p.rec.Add(trace.AppCompute, d)
}

// ComputeExact charges `units` of work with no jitter, for deterministic
// unit tests.
func (p *Proc) ComputeExact(units float64) {
	d := p.world.machine.ComputeTime(units)
	p.clock.Advance(d)
	p.rec.Add(trace.AppCompute, d)
}

// ChargeTime advances the clock by d seconds attributed to category c.
func (p *Proc) ChargeTime(c trace.Category, d float64) {
	p.clock.Advance(d)
	p.rec.Add(c, d)
}

// Exit kills this process, modeling a rank failure (the paper injects
// failures by a rank exiting early). It marks the process dead so peers
// observe the failure, then unwinds the rank goroutine; the launcher
// recovers the unwind. Exit never returns.
func (p *Proc) Exit() {
	p.exited = true
	p.world.markDead(p.rank)
	panic(processKilled{rank: p.rank})
}

// CrashNode models the loss of this process's entire compute node, as
// opposed to Exit's process-only failure (after which the node's VeloC
// server daemon survives and completes in-flight flushes). A node crash
// destroys node-local scratch and aborts every checkpoint flush the node's
// ranks had in flight: those PFS copies never become readable, and the
// data resiliency layer must fall back to an older complete version.
// CrashNode only damages storage; callers (the chaos engine) must still
// kill each of the node's ranks via Exit.
func (p *Proc) CrashNode() {
	now := p.clock.Now()
	// Settle the flush queue as of the crash instant before wiping scratch:
	// flushes that had started by now die as interrupted PFS writes
	// (FailPending below); the rest are discarded unstarted.
	p.node.CrashFlushes(now)
	p.node.ScratchClear()
	pfs := p.world.cluster.PFS()
	for _, q := range p.world.procs {
		if q.node == p.node {
			pfs.FailPending(q.rank, now)
		}
	}
}

// Exited reports whether this process has been killed.
func (p *Proc) Exited() bool { return p.exited }

// waitForDetection advances the clock to the failure-detection floor of
// the given dead world ranks: peers cannot act on a failure before the
// detector (heartbeat timeout) reports it.
func (p *Proc) waitForDetection(ranks []int) {
	p.clock.AdvanceTo(p.world.detectionFloor(ranks))
}

// congestionFactor returns the MPI cost multiplier in effect right now for
// this process: >1 while its node's asynchronous checkpoint flush is in
// flight.
func (p *Proc) congestionFactor() float64 {
	if p.node.CongestedAt(p.clock.Now()) {
		return p.world.machine.CongestionFactor
	}
	return 1
}

// congest inflates a base MPI cost by the congestion factor in effect at
// the process's current time, crediting the inflation to the
// veloc_flush_wait_seconds counter — the MPI-visible time cost of
// in-flight checkpoint flushes.
func (p *Proc) congest(base float64) float64 {
	f := p.congestionFactor()
	if f <= 1 {
		return base
	}
	p.world.obs.Registry().Counter(obs.MFlushWaitSeconds).Add(base * (f - 1))
	return base * f
}

// failMPI funnels every MPI error through the world's failure disposition:
// under fail-restart semantics a process failure aborts the whole job
// (panic recovered by the launcher); under ULFM semantics the error is
// returned for the process resilience layer to handle. Communicator
// operations funnel through Comm.fail instead, which additionally records
// the caller's departure from that communicator.
func (p *Proc) failMPI(err error) error {
	if err == nil {
		return nil
	}
	p.noteFailures(err)
	if p.world.abortOnFailure && IsULFMError(err) {
		panic(jobAborted{rank: p.rank, cause: err})
	}
	return err
}

// noteFailures records the failed ranks this process has now observed
// (p.obsDead gates deterministic send fail-fasts) and emits
// mpi.failure_detected for each one. Every MPI error funnels through
// failMPI, so this is the single place failure observation becomes visible
// to the event stream, deduplicated per (observer, failed rank).
func (p *Proc) noteFailures(err error) {
	var fe *FailedError
	if !errors.As(err, &fe) {
		return
	}
	for _, wr := range fe.WorldRanks {
		if p.obsDead[wr] {
			continue
		}
		if p.obsDead == nil {
			p.obsDead = make(map[int]bool)
		}
		p.obsDead[wr] = true
		p.Event(obs.LayerMPI, obs.EvFailureDetected, obs.KV("failed_rank", wr))
		p.world.obs.Registry().Counter(obs.MFailuresDetected).Inc()
	}
}

// msglogOn returns the world's message log when it should mediate traffic
// on c for this process: the log is live, c is part of the registered
// resilient lineage, and the process is not inside an exempt section.
func (p *Proc) msglogOn(c *Comm) *MsgLog {
	l := p.world.msglog
	if l == nil || p.logExempt > 0 || !l.registered(c.id) {
		return nil
	}
	return l
}

// LogExemptBegin marks the start of a message-log-exempt section: traffic
// until the matching LogExemptEnd is neither logged nor replayed. Recovery
// infrastructure (the checkpoint version agreement) uses this so its
// collectives do not shift the replayed lineage's cursor space.
func (p *Proc) LogExemptBegin() { p.logExempt++ }

// LogExemptEnd closes the innermost exempt section.
func (p *Proc) LogExemptEnd() {
	if p.logExempt == 0 {
		panic("mpi: unbalanced LogExemptEnd")
	}
	p.logExempt--
}

// MsgLogActive reports whether the world's message log is live (enabled
// and not disabled by a shrink compaction). Localized recovery is only
// possible while it is.
func (p *Proc) MsgLogActive() bool { return p.world.msglog.Active() }

// msglogCursors builds a snapshot of this process's current log cursors.
func (p *Proc) msglogCursors() *CursorSnap {
	s := &CursorSnap{Send: make(map[p2pKey]int, len(p.logSend)), Recv: make(map[p2pKey]int, len(p.logRecv)), Coll: p.logColl}
	for k, v := range p.logSend {
		s.Send[k] = v
	}
	for k, v := range p.logRecv {
		s.Recv[k] = v
	}
	return s
}

// installCursors replaces this process's log cursors with s (p2p only when
// p2pToo; the collective cursor is always installed).
func (p *Proc) installCursors(s *CursorSnap, p2pToo bool) {
	p.logColl = s.Coll
	if !p2pToo {
		return
	}
	p.logSend = make(map[p2pKey]int, len(s.Send))
	for k, v := range s.Send {
		p.logSend[k] = v
	}
	p.logRecv = make(map[p2pKey]int, len(s.Recv))
	for k, v := range s.Recv {
		p.logRecv[k] = v
	}
}

// MsgLogRecord records this process's cursors as logical slot `slot`'s
// boundary snapshot for iteration iter (first incarnation to reach the
// boundary wins). No-op when the log is inactive.
func (p *Proc) MsgLogRecord(slot, iter int) {
	l := p.world.msglog
	if !l.Active() {
		return
	}
	l.Snapshot(slot, iter, p.msglogCursors())
}

// MsgLogInstall installs the boundary snapshot for (slot, iter) into this
// process's cursors and reports whether one existed. p2pToo selects
// whether point-to-point cursors are rewound as well (replaying
// replacements) or only the collective cursor (paused survivors, whose
// live p2p cursors are ground truth).
func (p *Proc) MsgLogInstall(slot, iter int, p2pToo bool) bool {
	l := p.world.msglog
	if !l.Active() {
		return false
	}
	s := l.SnapshotAt(slot, iter)
	if s == nil {
		return false
	}
	p.installCursors(s, p2pToo)
	return true
}

// MsgLogHasSnapshot reports whether a boundary snapshot exists for (slot,
// iter).
func (p *Proc) MsgLogHasSnapshot(slot, iter int) bool {
	l := p.world.msglog
	return l.Active() && l.SnapshotAt(slot, iter) != nil
}

// MsgLogFastForward sets this process's cursors to the frontier of every
// stream touching slot: the state of a rank that has sent and consumed
// everything logged for it. A replacement whose restored checkpoint
// version V covers a fully-executed iteration with no recorded successor
// boundary (the predecessor died right after committing V) uses this to
// jump over the restored iteration's traffic.
func (p *Proc) MsgLogFastForward(slot int) {
	l := p.world.msglog
	if !l.Active() {
		return
	}
	p.installCursors(l.frontier(slot), true)
}

// MsgLogResetCursors zeroes this process's log cursors.
func (p *Proc) MsgLogResetCursors() {
	p.logSend, p.logRecv, p.logColl = nil, nil, 0
}

// MsgLogResetOnce clears the whole world log for repair generation gen
// (first caller wins) and zeroes this process's cursors. Used when a
// recovery finds no committed checkpoint: the run re-executes from
// scratch, so the aborted epoch's log is garbage everywhere.
func (p *Proc) MsgLogResetOnce(gen int) {
	l := p.world.msglog
	if !l.Active() {
		return
	}
	l.ResetOnce(gen)
	p.MsgLogResetCursors()
}

// MsgLogCommit records that logical slot `slot` committed checkpoint
// version `version`, advancing the GC watermark and trimming unreachable
// entries when every slot has committed. It updates the log-size gauges
// and emits mpi.msg_log_trim when entries were dropped.
func (p *Proc) MsgLogCommit(slot, version int) {
	l := p.world.msglog
	if !l.Active() {
		return
	}
	water, trimmed := l.NoteCommit(slot, version)
	p.msglogGauges(l)
	if trimmed > 0 {
		reg := p.world.obs.Registry()
		reg.Counter(obs.MMsgLogTrimmed).Add(float64(trimmed))
		entries, bytes, _, _ := l.Stats()
		p.Event(obs.LayerMPI, obs.EvMsgLogTrim,
			obs.KV("watermark", water), obs.KV("trimmed", trimmed),
			obs.KV("entries", entries), obs.KV("bytes", bytes))
	}
}

// msglogGauges publishes the log's current size to the metrics registry.
func (p *Proc) msglogGauges(l *MsgLog) {
	entries, bytes, _, _ := l.Stats()
	reg := p.world.obs.Registry()
	reg.Gauge(obs.MMsgLogEntries).Set(float64(entries))
	reg.Gauge(obs.MMsgLogBytes).Set(float64(bytes))
}

// nextSeq returns the process's next collective sequence number on comm id.
// Collectives must be called in the same order by all participants, as in
// MPI.
func (p *Proc) nextSeq(comm int64) int64 {
	s := p.collSeq[comm]
	p.collSeq[comm] = s + 1
	return s
}
