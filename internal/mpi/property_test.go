package mpi

import (
	"math"
	"testing"
	"testing/quick"
)

// collect runs an allreduce over ranks' generated vectors and compares
// against a sequential reference reduction.
func allreduceMatchesReference(vals [][]float64, op ReduceOp) bool {
	n := len(vals)
	if n == 0 {
		return true
	}
	width := len(vals[0])
	for _, v := range vals {
		if len(v) != width {
			return true // skip ragged inputs
		}
	}
	// Sequential reference in rank order.
	ref := make([]float64, width)
	copy(ref, vals[0])
	for r := 1; r < n; r++ {
		for i, x := range vals[r] {
			ref[i] = op.apply(ref[i], x)
		}
	}

	w := testWorld(n)
	c := w.CommWorld()
	results := make([][]float64, n)
	errs := runWorld(w, func(p *Proc) error {
		out, err := c.AllreduceF64(p, vals[p.Rank()], op)
		if err != nil {
			return err
		}
		results[p.Rank()] = out
		return nil
	})
	for _, e := range errs {
		if e != nil {
			return false
		}
	}
	for _, got := range results {
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				return false
			}
		}
	}
	return true
}

func clampVals(a, b, c []float64, width int) [][]float64 {
	clamp := func(v []float64) []float64 {
		out := make([]float64, width)
		for i := 0; i < width && i < len(v); i++ {
			x := v[i]
			if math.IsNaN(x) {
				x = 0
			}
			out[i] = x
		}
		return out
	}
	return [][]float64{clamp(a), clamp(b), clamp(c)}
}

func TestAllreduceSumProperty(t *testing.T) {
	f := func(a, b, c []float64) bool {
		return allreduceMatchesReference(clampVals(a, b, c, 5), OpSum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMinMaxProperty(t *testing.T) {
	fMin := func(a, b, c []float64) bool {
		return allreduceMatchesReference(clampVals(a, b, c, 3), OpMin)
	}
	fMax := func(a, b, c []float64) bool {
		return allreduceMatchesReference(clampVals(a, b, c, 3), OpMax)
	}
	if err := quick.Check(fMin, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(fMax, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBcastProperty(t *testing.T) {
	// Any payload from any root reaches every rank intact.
	f := func(payload []byte, rootSeed uint8) bool {
		const n = 4
		root := int(rootSeed) % n
		w := testWorld(n)
		c := w.CommWorld()
		ok := true
		runWorld(w, func(p *Proc) error {
			var in []byte
			if c.Rank(p) == root {
				in = payload
			}
			got, err := c.Bcast(p, root, in)
			if err != nil {
				ok = false
				return err
			}
			if len(got) != len(payload) {
				ok = false
				return nil
			}
			for i := range payload {
				if got[i] != payload[i] {
					ok = false
				}
			}
			return nil
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatterInverseProperty(t *testing.T) {
	// Scatter then gather reproduces the root's chunk list.
	f := func(a, b, c byte) bool {
		const n = 3
		chunks := [][]byte{{a}, {b}, {c}}
		w := testWorld(n)
		comm := w.CommWorld()
		ok := true
		runWorld(w, func(p *Proc) error {
			var in [][]byte
			if p.Rank() == 0 {
				in = chunks
			}
			mine, err := comm.ScatterB(p, 0, in)
			if err != nil {
				ok = false
				return err
			}
			back, err := comm.GatherB(p, 0, mine)
			if err != nil {
				ok = false
				return err
			}
			if p.Rank() == 0 {
				for i := range chunks {
					if back[i][0] != chunks[i][0] {
						ok = false
					}
				}
			}
			return nil
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestClockMonotonicityUnderTraffic(t *testing.T) {
	// Property: virtual clocks never move backwards regardless of message
	// pattern.
	w := testWorld(4)
	c := w.CommWorld()
	runWorld(w, func(p *Proc) error {
		last := p.Now()
		check := func() error {
			if p.Now() < last {
				t.Errorf("rank %d clock went backwards: %v -> %v", p.Rank(), last, p.Now())
			}
			last = p.Now()
			return nil
		}
		for i := 0; i < 20; i++ {
			dst := (p.Rank() + 1) % 4
			src := (p.Rank() + 3) % 4
			if _, err := c.Sendrecv(p, dst, 0, []byte{byte(i)}, src, 0); err != nil {
				return err
			}
			check()
			if _, err := c.AllreduceInt(p, i, OpSum); err != nil {
				return err
			}
			check()
			p.Compute(1e5)
			check()
		}
		return nil
	})
}
