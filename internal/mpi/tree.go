// Binomial-tree collective engine.
//
// A collective rendezvous must decide, for every member of the
// communicator, how that member is accounted for — arrived, dead, or (for
// regular collectives) departed — and complete once every member has a
// terminal state. The flat engine re-derives that classification with an
// O(P) scan of the whole group on every arrival, so a world-sized
// collective costs O(P²) work under the world lock. The tree engine
// instead records each member's first terminal event in a per-op slot and
// propagates *completion* up a binomial tree over comm ranks: each tree
// node holds a counter of unaccounted members in its subtree, a member's
// terminal event decrements the counters on its root path until one stays
// positive, and a subtree that empties sends exactly one completion edge
// to its parent. Total accounting work per collective is O(P) counter
// decrements + O(P) tree edges (each edge fires once), with an O(log P)
// worst-case walk per event — the execution-model analogue of the
// log-P collective topology the cost model already charges for.
//
// Op state (slots, counters, aggregate scalars) is pooled and reused
// across collectives (sync.Pool with a reference count: one reference per
// arrived member, released after the member extracts its results), so the
// steady-state allocation cost of a collective does not grow with the
// number of collectives already run. The done channel is the only per-op
// allocation: a closed channel cannot be reused.
//
// Determinism: every slot is written under world.mu from the terminal
// event's own goroutine — an arrival from the arriving rank, a death from
// the dying rank (markDead), a departure from the departing rank
// (Comm.fail/Revoke) — so each member's terminal state is a function of
// that member's own program order and virtual clock, never of the
// wall-clock order in which unrelated goroutines observed it. The first
// terminal event per member wins; in particular a member that departs a
// communicator and later dies is accounted as departed, by its own program
// order (the flat engine classifies that corner by whichever event the
// completing scan happened to observe first — the tree engine is the more
// deterministic of the two).
package mpi

import (
	"repro/internal/obs"
)

// Engine selects the collective rendezvous algorithm for a World.
type Engine int

const (
	// EngineTree (the default) accounts collective arrivals over a binomial
	// tree with pooled per-operation state: O(P log P) work per world-sized
	// collective. See the package comment in tree.go.
	EngineTree Engine = iota
	// EngineFlat is the legacy reference engine: every terminal event
	// re-scans the whole group under the world lock (O(P²) per collective).
	// It is retained for the tree/flat equivalence tests and as the
	// executable specification of the rendezvous semantics.
	EngineFlat
)

// treeParent returns the binomial-tree parent of comm rank r: r with its
// lowest set bit cleared. Rank 0 is the root.
func treeParent(r int) int { return r & (r - 1) }

// treeChildCount returns the number of direct children of comm rank r in a
// binomial tree over p ranks. The children of r are r|1<<k for every k
// below r's lowest set bit (every k for the root) with r|1<<k < p.
func treeChildCount(r, p int) int {
	n := 0
	for k := uint(0); ; k++ {
		bit := 1 << k
		if r != 0 && bit >= r&-r {
			break
		}
		if r|bit >= p {
			break
		}
		n++
	}
	return n
}

// treeInit returns the initial per-node pending counters for a binomial
// tree over the comm's group: 1 (the node's own member) plus one per direct
// child subtree. The slice is computed once per communicator and must not
// be mutated by callers.
func (c *Comm) treeInit() []int32 {
	return c.treeLeft0
}

func buildTreeInit(p int) []int32 {
	init := make([]int32, p)
	for r := 0; r < p; r++ {
		init[r] = int32(1 + treeChildCount(r, p))
	}
	return init
}

// acquireOpLocked takes a rendezvous from the world's pool (or allocates
// one) and resets it for a new collective on c. Caller holds world.mu.
func (w *World) acquireOpLocked(c *Comm, tolerant bool, key collKey) *rendezvous {
	var r *rendezvous
	if v := w.opPool.Get(); v != nil {
		r = v.(*rendezvous)
	} else {
		r = &rendezvous{}
	}
	n := len(c.group)
	if cap(r.slots) < n {
		r.slots = make([]slot, n)
		r.treeLeft = make([]int32, n)
	} else {
		r.slots = r.slots[:n]
		r.treeLeft = r.treeLeft[:n]
		for i := range r.slots {
			r.slots[i] = slot{}
		}
	}
	copy(r.treeLeft, c.treeInit())
	r.comm, r.tolerant, r.key = c, tolerant, key
	if w.pool == nil {
		// The done channel is goroutine mode's one unavoidable per-op
		// allocation (a closed channel cannot be reused). Pool mode
		// completes through the waiters list instead and skips it.
		r.done = make(chan struct{})
	}
	r.waiters = r.waiters[:0]
	r.refs.Store(0)
	r.nArrived, r.nDead, r.nDeparted = 0, 0, 0
	r.maxClock, r.maxDeadAt, r.departStamp = 0, 0, 0
	r.congested, r.maxBytes = false, 0
	r.completed, r.err, r.syncTime = false, nil, 0
	r.deadAtEnd = r.deadAtEnd[:0]
	r.result = nil
	r.loggable, r.replayed = false, false
	r.reduced, r.reduceErr, r.reducedOK = r.reduced[:0], nil, false
	return r
}

// releaseOp clears payload references and returns the rendezvous to the
// pool. Called by the last member to release its reference; at that point
// no goroutine can reach r (completion removed it from w.colls before
// closing done).
func (w *World) releaseOp(r *rendezvous) {
	for i := range r.slots {
		w.recyclePayload(&r.slots[i].pl)
		r.slots[i] = slot{}
	}
	r.comm = nil
	r.done = nil
	r.err = nil
	r.result = nil
	r.reduceErr = nil
	w.opPool.Put(r)
}

// release drops one member's reference to the rendezvous; the last release
// returns the op state to the pool. Each arrived member must call it
// exactly once, after extracting everything it needs. References are taken
// under world.mu at registration; by the time any member can release (done
// is closed), no further references are taken, so the atomic decrement
// alone decides the last reader.
func (r *rendezvous) release(w *World) {
	if r.replayed {
		// Synthetic log-served op: its slots are owned by the message log
		// and it was never pooled — recycling would poison the log.
		return
	}
	if r.refs.Add(-1) == 0 {
		w.releaseOp(r)
	}
}

// seedTerminalLocked accounts members that already hold a terminal state
// when the op is created: dead members, and — for regular collectives —
// members that have departed the communicator. Later deaths/departures
// arrive as events through markDead/departLocked. Departure is checked
// before death: a member can only depart while alive, so for a member that
// did both, the departure came first in its program order — seeding must
// classify it the same way the event path would have, or the member's
// state would depend on whether the op was created before or after the
// death in wall-clock time. Caller holds world.mu.
func (w *World) seedTerminalLocked(r *rendezvous) {
	c := r.comm
	for cr, wr := range c.group {
		if !r.tolerant {
			if t, ok := c.departed[wr]; ok {
				w.accountDepartedLocked(r, cr, t)
				continue
			}
		}
		if w.dead[wr] {
			w.accountDeadLocked(r, cr, w.deadAt[wr])
		}
	}
}

// accountArrivalLocked records comm rank cr's arrival and propagates it up
// the tree. Caller holds world.mu.
func (w *World) accountArrivalLocked(r *rendezvous, cr int, clock float64, congested bool, pl payload, bytes int) {
	s := &r.slots[cr]
	if s.state != memberPending {
		return
	}
	s.state, s.clock, s.congested, s.pl, s.bytes = memberArrived, clock, congested, pl, bytes
	r.nArrived++
	if clock > r.maxClock {
		r.maxClock = clock
	}
	r.congested = r.congested || congested
	if bytes > r.maxBytes {
		r.maxBytes = bytes
	}
	w.propagateLocked(r, cr)
}

// accountDeadLocked records comm rank cr's death (stamped with the dying
// rank's own virtual clock) if cr has no terminal state yet. Caller holds
// world.mu.
func (w *World) accountDeadLocked(r *rendezvous, cr int, deadAt float64) {
	s := &r.slots[cr]
	if s.state != memberPending {
		return
	}
	s.state, s.stamp = memberDead, deadAt
	r.nDead++
	if deadAt > r.maxDeadAt {
		r.maxDeadAt = deadAt
	}
	w.propagateLocked(r, cr)
}

// accountDepartedLocked records comm rank cr's departure from the
// communicator (non-tolerant ops only: Shrink/Agree ignore departures).
// Caller holds world.mu.
func (w *World) accountDepartedLocked(r *rendezvous, cr int, stamp float64) {
	s := &r.slots[cr]
	if s.state != memberPending {
		return
	}
	s.state, s.stamp = memberDeparted, stamp
	r.nDeparted++
	if stamp > r.departStamp {
		r.departStamp = stamp
	}
	w.propagateLocked(r, cr)
}

// propagateLocked walks cr's terminal event up the binomial tree: the
// counters on the root path are decremented until one stays positive; a
// subtree that empties fires exactly one completion edge to its parent,
// and an empty root completes the rendezvous. Caller holds world.mu.
func (w *World) propagateLocked(r *rendezvous, cr int) {
	for i := cr; ; {
		r.treeLeft[i]--
		if r.treeLeft[i] > 0 {
			return
		}
		if i == 0 {
			w.completeTreeLocked(r)
			return
		}
		i = treeParent(i)
	}
}

// completeTreeLocked publishes the rendezvous outcome from the aggregate
// scalars maintained during accounting. It runs exactly once per op (when
// the tree root empties) and is O(1) in the failure-free case — the O(P)
// slot scan only runs to list dead members. Caller holds world.mu.
func (w *World) completeTreeLocked(r *rendezvous) {
	if r.completed {
		return
	}
	alive := len(r.slots) - r.nDead
	if r.nDead > 0 {
		for cr := range r.slots {
			if r.slots[cr].state == memberDead {
				r.deadAtEnd = append(r.deadAtEnd, r.comm.group[cr])
			}
		}
	}
	if !r.tolerant {
		if r.nDead > 0 {
			r.err = newFailedError(r.deadAtEnd)
		} else if r.nDeparted > 0 {
			r.err = ErrRevoked
		}
	}
	cost := w.machine.CollectiveTime(alive, r.maxBytes)
	if r.congested {
		// The whole rendezvous is slowed by one congested member; credit
		// the inflation to the MPI-visible flush wait counter.
		w.obs.Registry().Counter(obs.MFlushWaitSeconds).Add(cost * (w.machine.CongestionFactor - 1))
		cost *= w.machine.CongestionFactor
	}
	end := r.maxClock + cost
	if r.nDead > 0 {
		// Failures only become observable after the detector fires.
		if floor := r.maxDeadAt + w.machine.FailureDetectionLatency; floor > end {
			end = floor
		}
	}
	if r.departStamp > end {
		end = r.departStamp
	}
	delete(w.colls, r.key)
	r.finishLocked(w, end)
}
