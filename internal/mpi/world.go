// Package mpi is a simulated message-passing runtime with ULFM-style fault
// tolerance, standing in for MPI + MPI-ULFM on the paper's Cray XC40.
//
// Each rank is a goroutine owning a virtual clock. Point-to-point messages
// and collectives synchronize clocks according to the sim.Machine cost
// model. Process failure is injected by a rank calling Proc.Exit; all peers
// subsequently observe FailedError from operations involving the failed
// rank, exactly as ULFM raises MPI_ERR_PROC_FAILED. Communicators support
// Revoke, Shrink, and Agree, the ULFM primitives Fenix is built on.
//
// Two failure dispositions are supported, selected per job:
//
//   - fail-restart (abortOnFailure): any observed failure aborts the whole
//     job, and the launcher may relaunch it — classic checkpoint/restart.
//   - ULFM (the default): failures surface as errors for the process
//     resilience layer (Fenix) to handle online.
package mpi

import (
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/sim"
)

// World is one launch of an MPI job: a fixed set of processes and the
// global failure state. A World is created by RunJob; tests may construct
// one directly with NewWorld.
type World struct {
	cluster        *cluster.Cluster
	machine        *sim.Machine
	procs          []*Proc
	abortOnFailure bool
	// obs, when non-nil, receives structured observability events from
	// every layer running on this world. Set once before ranks start (via
	// SetObs); read-only afterwards.
	obs *obs.Recorder
	// injector, when non-nil, is consulted at named execution points (see
	// inject.go). Set once before ranks start; read-only afterwards.
	injector Injector
	// engine selects the collective rendezvous algorithm (see tree.go).
	// The zero value is EngineTree; set via SetEngine before ranks start.
	engine Engine
	// pool, when non-nil, is the ExecPool slot scheduler (see exec.go);
	// nil selects ExecGoroutine. Set via SetExecMode before ranks start.
	pool *execPool
	// opPool recycles rendezvous state across collectives (tree.go).
	opPool sync.Pool
	// bufs recycles collective payload buffers under ExecPool (see
	// exec.go); unused in goroutine mode, which keeps the specification
	// mode's allocation behaviour untouched.
	bufs bufFree
	// msglog, when non-nil, is the sender-based message log backing
	// localized recovery (msglog.go). Set via EnableMsgLog before ranks
	// start; nil keeps every hot path untouched.
	msglog *MsgLog

	mu     sync.Mutex
	dead   []bool
	deadAt []float64 // virtual death time per rank (valid where dead)
	nComm  int64
	colls  map[collKey]*rendezvous
	nDead  int
	deadLs []int // world ranks, in failure order
	hooks  []func(worldRank int)

	commWorld *Comm
}

// RegisterDeathHook installs f to be called (outside the world lock) each
// time a process fails. The process-resilience layer uses this to re-check
// its repair rendezvous when a failure occurs mid-recovery.
func (w *World) RegisterDeathHook(f func(worldRank int)) {
	w.mu.Lock()
	w.hooks = append(w.hooks, f)
	w.mu.Unlock()
}

// NewWorld creates a world of `ranks` processes placed round-robin across
// the cluster's nodes with `ranksPerNode` ranks per node. Every process
// clock starts at startTime (the virtual time at which the job launch
// completed). abortOnFailure selects fail-restart semantics.
func NewWorld(cl *cluster.Cluster, ranks, ranksPerNode int, abortOnFailure bool, seed uint64, startTime float64) *World {
	if ranks <= 0 {
		panic("mpi: rank count must be positive")
	}
	if ranksPerNode <= 0 {
		ranksPerNode = 1
	}
	w := &World{
		cluster:        cl,
		machine:        cl.Machine(),
		abortOnFailure: abortOnFailure,
		dead:           make([]bool, ranks),
		deadAt:         make([]float64, ranks),
		colls:          make(map[collKey]*rendezvous),
	}
	root := sim.NewRNG(seed)
	w.procs = make([]*Proc, ranks)
	for i := range w.procs {
		node := cl.Node((i / ranksPerNode) % cl.Size())
		w.procs[i] = newProc(w, i, node, root.Split(uint64(i)), startTime)
	}
	w.commWorld = w.newCommLocked(identityGroup(ranks))
	return w
}

func identityGroup(n int) []int {
	g := make([]int, n)
	for i := range g {
		g[i] = i
	}
	return g
}

// SetObs installs the observability recorder. It must be called before any
// rank goroutine starts (RunJob does this); a nil recorder disables
// recording.
func (w *World) SetObs(r *obs.Recorder) { w.obs = r }

// SetEngine selects the collective rendezvous engine. It must be called
// before any rank goroutine starts; the zero value (EngineTree) is the
// default. EngineFlat is the legacy reference implementation kept for
// equivalence testing.
func (w *World) SetEngine(e Engine) { w.engine = e }

// CollectiveEngine returns the world's collective engine.
func (w *World) CollectiveEngine() Engine { return w.engine }

// SetExecMode selects the execution scheduling mode (see exec.go). It
// must be called before any rank goroutine starts; the zero value
// (ExecGoroutine) is the default. Under ExecPool the slot count is
// GOMAXPROCS; tests use SetExecModeWorkers to force maximal
// multiplexing with a tiny pool.
func (w *World) SetExecMode(m ExecMode) { w.SetExecModeWorkers(m, 0) }

// SetExecModeWorkers is SetExecMode with an explicit execution-slot
// count (workers <= 0 selects GOMAXPROCS).
func (w *World) SetExecModeWorkers(m ExecMode, workers int) {
	if m != ExecPool {
		w.pool = nil
		return
	}
	w.pool = newExecPool(workers)
	for _, p := range w.procs {
		if p.resume == nil {
			p.resume = make(chan struct{}, 1)
		}
	}
}

// ExecutionMode returns the world's execution scheduling mode.
func (w *World) ExecutionMode() ExecMode {
	if w.pool != nil {
		return ExecPool
	}
	return ExecGoroutine
}

// Obs returns the world's observability recorder (possibly nil).
func (w *World) Obs() *obs.Recorder { return w.obs }

// EnableMsgLog installs a fresh sender-based message log (msglog.go). It
// must be called before any rank goroutine starts; without it, logging and
// replay are disabled and no hot path pays any cost.
func (w *World) EnableMsgLog() { w.msglog = NewMsgLog() }

// MsgLog returns the world's message log, or nil when disabled.
func (w *World) MsgLog() *MsgLog { return w.msglog }

// RegisterLineageComm marks c as part of the resilient lineage for the
// message log: traffic on it is recorded for localized recovery. The
// process resilience layer calls this for the initial resilient
// communicator and for every repaired successor. A no-op when the log is
// disabled; a width change (shrink compaction) disables the log.
func (w *World) RegisterLineageComm(c *Comm) {
	if w.msglog == nil || c == nil {
		return
	}
	w.msglog.RegisterComm(c.id, len(c.group))
}

// Size returns the number of processes in the world.
func (w *World) Size() int { return len(w.procs) }

// Machine returns the cost model.
func (w *World) Machine() *sim.Machine { return w.machine }

// Cluster returns the underlying cluster.
func (w *World) Cluster() *cluster.Cluster { return w.cluster }

// Proc returns process i (world rank i).
func (w *World) Proc(i int) *Proc {
	if i < 0 || i >= len(w.procs) {
		panic(fmt.Sprintf("mpi: proc %d out of range [0,%d)", i, len(w.procs)))
	}
	return w.procs[i]
}

// CommWorld returns the communicator spanning all processes
// (MPI_COMM_WORLD).
func (w *World) CommWorld() *Comm { return w.commWorld }

// NewComm creates a communicator over the given world ranks. It is the
// simulation analogue of MPI_Comm_create and is used by Fenix to build the
// resilient communicator excluding spare ranks.
func (w *World) NewComm(group []int) *Comm {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.newCommLocked(group)
}

func (w *World) newCommLocked(group []int) *Comm {
	cp := make([]int, len(group))
	copy(cp, group)
	idx := make(map[int]int, len(cp))
	for i, r := range cp {
		if r < 0 || r >= len(w.procs) {
			panic(fmt.Sprintf("mpi: comm group rank %d out of world range", r))
		}
		if _, dup := idx[r]; dup {
			panic(fmt.Sprintf("mpi: duplicate rank %d in comm group", r))
		}
		idx[r] = i
	}
	w.nComm++
	return &Comm{world: w, id: w.nComm, group: cp, index: idx, treeLeft0: buildTreeInit(len(cp))}
}

// isDead reports whether world rank r has failed.
func (w *World) isDead(r int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dead[r]
}

// DeadRanks returns the failed world ranks in failure order.
func (w *World) DeadRanks() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	cp := make([]int, len(w.deadLs))
	copy(cp, w.deadLs)
	return cp
}

// AliveCount returns the number of live processes.
func (w *World) AliveCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.procs) - w.nDead
}

// detectionFloor returns the earliest virtual time at which the failure of
// the given world ranks is observable: death time plus the machine's
// failure-detection latency (heartbeat timeout).
func (w *World) detectionFloor(ranks []int) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.detectionFloorLocked(ranks)
}

// DetectionFloor returns the earliest virtual time at which the failures of
// the given world ranks are observable (death time plus detection latency;
// ranks still alive contribute nothing). The process resilience layer uses
// it to stamp repairs: a rebuild that disposed of a failure cannot complete
// before that failure was detectable.
func (w *World) DetectionFloor(ranks []int) float64 {
	return w.detectionFloor(ranks)
}

func (w *World) detectionFloorLocked(ranks []int) float64 {
	var floor float64
	for _, r := range ranks {
		if w.dead[r] && w.deadAt[r] > floor {
			floor = w.deadAt[r]
		}
	}
	return floor + w.machine.FailureDetectionLatency
}

// markDead records the failure of world rank r, completes every pending
// collective that involves it (waiters observe FailedError), and wakes all
// blocked receivers so they can re-check failure state. It must be called
// from rank r's own goroutine (the dying process), whose clock stamps the
// death time.
func (w *World) markDead(r int) {
	w.mu.Lock()
	if w.dead[r] {
		w.mu.Unlock()
		return
	}
	// Emitted from the dying rank's own goroutine, so its clock stamps the
	// virtual death time (the recorder has its own lock).
	w.procs[r].Event(obs.LayerMPI, obs.EvRankExit)
	w.dead[r] = true
	w.deadAt[r] = w.procs[r].clock.Now()
	w.nDead++
	w.deadLs = append(w.deadLs, r)
	for _, rv := range w.colls {
		if !rv.hasMember(r) {
			continue
		}
		if w.engine == EngineTree {
			w.accountDeadLocked(rv, rv.comm.index[r], w.deadAt[r])
		} else {
			w.tryCompleteFlatLocked(rv)
		}
	}
	hooks := make([]func(int), len(w.hooks))
	copy(hooks, w.hooks)
	w.mu.Unlock()
	for _, p := range w.procs {
		p.mail.wakeAll()
	}
	for _, h := range hooks {
		h(r)
	}
}

// deadMembersLocked returns the subset of group that has failed. Caller
// holds w.mu.
func (w *World) deadMembersLocked(group []int) []int {
	var out []int
	for _, r := range group {
		if w.dead[r] {
			out = append(out, r)
		}
	}
	return out
}
