// Package analyze turns the raw resilience event stream of internal/obs
// into the paper's evaluation currency: typed recovery spans — one per
// communicator repair (or fail-restart relaunch) — segmented into
// detection, communicator repair, rebuild, state restoration, and
// recompute phases, plus aggregate per-phase totals and per-generation
// checkpoint/flush accounting. Spans are reconstructed purely from the
// ordered event log, so the same analysis applies to an in-memory
// []obs.Event (tests, harnesses) and to an events JSONL file read back
// with ReadJSONL (the cmd/obsreport CLI).
//
// The span semantics and the report schema are documented in the
// "Analysis" section of OBSERVABILITY.md; PhaseNames is its
// machine-readable form, cross-checked by a test the same way EventNames
// is.
package analyze

import (
	"errors"
	"math"
	"sort"

	"repro/internal/obs"
)

// Phase names, in causal order. Each names one segment of a recovery span.
const (
	PhaseDetection  = "detection"   // failure injection -> first peer detection
	PhaseCommRepair = "comm_repair" // first detection -> last revoke/shrink/agree
	PhaseRebuild    = "rebuild"     // ULFM ops done -> repaired communicator in place
	PhaseRestore    = "restore"     // repair -> last checkpoint restore committed
	PhaseRecompute  = "recompute"   // first re-executed iteration -> last one done
)

// PhaseNames returns every span phase in causal order, the
// machine-readable form of the Analysis section in OBSERVABILITY.md.
func PhaseNames() []string {
	return []string{PhaseDetection, PhaseCommRepair, PhaseRebuild, PhaseRestore, PhaseRecompute}
}

// PhaseBreakdown holds one duration per recovery phase, in virtual
// seconds.
type PhaseBreakdown struct {
	Detection  float64 `json:"detection_s"`
	CommRepair float64 `json:"comm_repair_s"`
	Rebuild    float64 `json:"rebuild_s"`
	Restore    float64 `json:"restore_s"`
	Recompute  float64 `json:"recompute_s"`
}

// Get returns the duration of the named phase (0 for unknown names).
func (p PhaseBreakdown) Get(phase string) float64 {
	switch phase {
	case PhaseDetection:
		return p.Detection
	case PhaseCommRepair:
		return p.CommRepair
	case PhaseRebuild:
		return p.Rebuild
	case PhaseRestore:
		return p.Restore
	case PhaseRecompute:
		return p.Recompute
	}
	return 0
}

// Total returns the sum over all phases.
func (p PhaseBreakdown) Total() float64 {
	return p.Detection + p.CommRepair + p.Rebuild + p.Restore + p.Recompute
}

func (p *PhaseBreakdown) accumulate(q PhaseBreakdown) {
	p.Detection += q.Detection
	p.CommRepair += q.CommRepair
	p.Rebuild += q.Rebuild
	p.Restore += q.Restore
	p.Recompute += q.Recompute
}

// RankPhases is one rank's view of a recovery span: how long until this
// rank observed the failure, how long its own state restoration took, and
// how much wall time it spent re-executing iterations.
type RankPhases struct {
	Rank      int     `json:"rank"`
	Detection float64 `json:"detection_s,omitempty"`
	Restore   float64 `json:"restore_s,omitempty"`
	Recompute float64 `json:"recompute_s,omitempty"`
}

// Span is one reconstructed recovery episode: a set of injected failures
// repaired together by one Fenix communicator rebuild (Kind "fenix") or
// one fail-restart relaunch (Kind "relaunch").
type Span struct {
	Index int `json:"index"`
	// Kind is "fenix" for an online communicator repair, "relaunch" for a
	// fail-restart job relaunch.
	Kind string `json:"kind"`
	// Generation is the Fenix repair generation, or the launch attempt for
	// relaunch spans.
	Generation int `json:"generation"`
	// FailedSlots lists the logical ranks whose failures this span
	// repairs, in injection order.
	FailedSlots []int `json:"failed_slots,omitempty"`
	// Replaced and Shrunk count how the rebuild disposed of the failed
	// slots (spare substitution vs compaction); relaunch spans report all
	// failures as Replaced.
	Replaced int `json:"replaced"`
	Shrunk   int `json:"shrunk"`
	// Start is the first failure injection, Repair the moment the repaired
	// communicator (or relaunched job) was in place, End the end of the
	// last restoration or recompute activity — all absolute virtual times.
	Start  float64 `json:"start_s"`
	Repair float64 `json:"repair_s"`
	End    float64 `json:"end_s"`
	// CriticalPath is End - Start: the wall-clock recovery cost along the
	// slowest chain, the quantity the paper's failure-cost bars stack.
	CriticalPath float64 `json:"critical_path_s"`
	// RecomputedIters counts re-executed iterations attributed to this
	// span, across all ranks.
	RecomputedIters int `json:"recomputed_iters"`
	// ReplayedMsgs counts message-log replay deliveries (mpi.msg_replayed
	// events) attributed to this span's recompute window: under localized
	// recovery the replacement's re-execution is fed from the log, so a
	// span with replayed messages recomputed on one rank while survivors
	// paused in place.
	ReplayedMsgs int `json:"replayed_msgs,omitempty"`
	// FlushWaitSeconds sums the scheduler queue wait (flush_start
	// wait_seconds) of flushes started inside the span's window — how much
	// flush backlog overlapped this recovery episode.
	FlushWaitSeconds float64 `json:"flush_wait_seconds,omitempty"`
	// Phases is the critical-path duration of each recovery phase.
	Phases PhaseBreakdown `json:"phases"`
	// PerRank breaks detection/restore/recompute down by world rank.
	PerRank []RankPhases `json:"per_rank,omitempty"`
}

// CheckpointGen aggregates the veloc.* data-layer events of one checkpoint
// version (generation): scratch-copy and flush accounting, and how often
// the version was used for restart.
type CheckpointGen struct {
	Version          int     `json:"version"`
	Checkpoints      int     `json:"checkpoints"`
	Bytes            int64   `json:"bytes"`
	ScratchSeconds   float64 `json:"scratch_seconds"`
	Flushes          int     `json:"flushes"`
	FlushesCompleted int     `json:"flushes_completed"`
	FlushSeconds     float64 `json:"flush_seconds"`
	Restores         int     `json:"restores"`
	// Flush-scheduler accounting (zero when scheduling is off). A flush
	// queued but never started was either coalesced away by a newer
	// version (no event: the submitter's counter carries it) or discarded
	// with its node — daemon crash or scratch loss, e.g. the owner rank
	// shrunk away mid-queue — which emits veloc.flush_discarded:
	// FlushesQueued - FlushesStarted = coalesced + FlushesDiscarded.
	FlushesQueued    int     `json:"flushes_queued,omitempty"`
	FlushesStarted   int     `json:"flushes_started,omitempty"`
	FlushesDiscarded int     `json:"flushes_discarded,omitempty"`
	QueueWaitSeconds float64 `json:"queue_wait_seconds,omitempty"`
}

// HistStats summarizes one latency distribution through an obs.Histogram:
// sample count, mean, and bucket-interpolated p50/p99 via
// obs.Histogram.Quantile over obs.TimeBuckets.
type HistStats struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

// histStats snapshots a histogram, or nil when it never observed (its
// quantiles would be NaN, which the report's JSON form cannot carry).
func histStats(h *obs.Histogram) *HistStats {
	n := h.Count()
	if n == 0 {
		return nil
	}
	return &HistStats{
		Count: n,
		Mean:  h.Sum() / float64(n),
		P50:   h.Quantile(0.5),
		P99:   h.Quantile(0.99),
	}
}

// Report is the full analysis of one event log.
type Report struct {
	Events             int     `json:"events"`
	Ranks              int     `json:"ranks"`
	Launches           int     `json:"launches"`
	WallSeconds        float64 `json:"wall_seconds"`
	JobFailed          bool    `json:"job_failed"`
	FailuresInjected   int     `json:"failures_injected"`
	FailuresRepaired   int     `json:"failures_repaired"`
	FailuresUnrepaired int     `json:"failures_unrepaired"`
	// SpareKills counts chaos kills of spare ranks still blocked in Fenix
	// initialization. A dead spare is pruned from the pool, never joins the
	// communicator, and so is not a failure the repair protocol must
	// survive; it is accounted separately from FailuresInjected.
	SpareKills int `json:"spare_kills,omitempty"`
	// Shrinks counts mpi.shrink events: explicit ULFM shrink collectives
	// plus the implicit compaction a Fenix rebuild performs when the spare
	// pool is exhausted with ShrinkOnExhaustion enabled.
	Shrinks int `json:"mpi_shrinks,omitempty"`
	// SDC lifecycle counts from the chaos.sdc_* event stream. Injected must
	// equal Detected + Escaped (every flip is resolved somewhere); Replays
	// and Votes sum the extra executions carried on detection events.
	SDCInjected  int             `json:"sdc_injected,omitempty"`
	SDCDetected  int             `json:"sdc_detected,omitempty"`
	SDCCorrected int             `json:"sdc_corrected,omitempty"`
	SDCEscaped   int             `json:"sdc_escaped,omitempty"`
	SDCReplays   int             `json:"sdc_replays,omitempty"`
	SDCVotes     int             `json:"sdc_votes,omitempty"`
	Spans        []Span          `json:"spans"`
	PhaseTotals  PhaseBreakdown  `json:"phase_totals"`
	Checkpoints  []CheckpointGen `json:"checkpoints,omitempty"`
	// FlushSeconds and FlushQueueWait are the per-flush latency
	// distributions reconstructed from the event stream — flush duration
	// from every veloc.flush_end (the veloc_flush_seconds histogram's event
	// mirror) and scheduler queue wait from every veloc.flush_start
	// wait_seconds (mirroring veloc_flush_queue_wait_seconds) — summarized
	// through obs.Histogram.Quantile. Nil when the run had no such events.
	FlushSeconds   *HistStats `json:"veloc_flush_seconds,omitempty"`
	FlushQueueWait *HistStats `json:"veloc_flush_queue_wait_seconds,omitempty"`
}

// failure is one observed failure injection awaiting repair.
type failure struct {
	time     float64
	slot     int
	assigned bool
}

// anchor is one repair completion: a Fenix rebuild or a relaunch.
type anchor struct {
	kind     string
	time     float64
	gen      int
	replaced int
	shrunk   int
}

// Analyze reconstructs recovery spans and aggregate accounting from an
// event log. The input may come from Recorder.Events (already ordered) or
// ReadJSONL; it is re-sorted by (time, seq) defensively.
func Analyze(events []obs.Event) (*Report, error) {
	if len(events) == 0 {
		return nil, errors.New("analyze: empty event log")
	}
	sorted := make([]obs.Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Time != sorted[j].Time {
			return sorted[i].Time < sorted[j].Time
		}
		return sorted[i].Seq < sorted[j].Seq
	})
	events = sorted

	rep := &Report{Events: len(events)}

	// Pass 1: job shape, failures, repair anchors, checkpoint accounting.
	// A private registry rebuilds the flush-latency histograms from event
	// attributes so the report can surface Quantile estimates without the
	// run's own metrics snapshot.
	var failures []*failure
	var anchors []anchor
	hists := obs.NewRegistry()
	flushDur := hists.Histogram(obs.MFlushSeconds, nil)
	queueWait := hists.Histogram(obs.MFlushQueueWaitSeconds, nil)
	gens := map[int]*CheckpointGen{}
	gen := func(e obs.Event) *CheckpointGen {
		v, _ := attrInt(e, "version")
		g, ok := gens[v]
		if !ok {
			g = &CheckpointGen{Version: v}
			gens[v] = g
		}
		return g
	}
	for _, e := range events {
		switch e.Name {
		case obs.EvJobLaunch:
			rep.Launches++
			if rep.Ranks == 0 {
				rep.Ranks, _ = attrInt(e, "ranks")
			}
			if attempt, ok := attrInt(e, "attempt"); ok && attempt >= 1 {
				anchors = append(anchors, anchor{kind: "relaunch", time: e.Time, gen: attempt})
			}
		case obs.EvJobEnd:
			rep.WallSeconds = e.Time
			if w, ok := attrNum(e, "wall_seconds"); ok {
				rep.WallSeconds = w
			}
			rep.JobFailed, _ = attrBool(e, "failed")
		case obs.EvFailureInjected:
			slot, _ := attrInt(e, "slot")
			failures = append(failures, &failure{time: e.Time, slot: slot})
		case obs.EvChaosKill:
			// Chaos-engine kills at arbitrary execution points. Spare kills
			// never enter the repair protocol; member kills are failures like
			// core.failure_injected ones (slot = the victim's world rank).
			if spare, _ := attrBool(e, "spare"); spare {
				rep.SpareKills++
				break
			}
			failures = append(failures, &failure{time: e.Time, slot: e.Rank})
		case obs.EvShrink:
			rep.Shrinks++
		case obs.EvSDCInjected:
			rep.SDCInjected++
		case obs.EvSDCDetected:
			rep.SDCDetected++
			if n, ok := attrInt(e, "replays"); ok {
				rep.SDCReplays += n
			}
			if n, ok := attrInt(e, "votes"); ok {
				rep.SDCVotes += n
			}
		case obs.EvSDCCorrected:
			rep.SDCCorrected++
		case obs.EvSDCEscaped:
			rep.SDCEscaped++
		case obs.EvFenixRebuild:
			a := anchor{kind: "fenix", time: e.Time}
			a.gen, _ = attrInt(e, "generation")
			a.replaced, _ = attrInt(e, "replaced")
			a.shrunk, _ = attrInt(e, "shrunk")
			anchors = append(anchors, a)
		case obs.EvVeloCCheckpoint:
			g := gen(e)
			g.Checkpoints++
			if b, ok := attrNum(e, "bytes"); ok {
				g.Bytes += int64(b)
			}
			if s, ok := attrNum(e, "scratch_seconds"); ok {
				g.ScratchSeconds += s
			}
		case obs.EvVeloCFlushBegin:
			gen(e).Flushes++
		case obs.EvVeloCFlushQueued:
			gen(e).FlushesQueued++
		case obs.EvVeloCFlushStart:
			g := gen(e)
			g.FlushesStarted++
			if w, ok := attrNum(e, "wait_seconds"); ok {
				g.QueueWaitSeconds += w
				queueWait.Observe(w)
			}
		case obs.EvVeloCFlushEnd:
			g := gen(e)
			g.FlushesCompleted++
			if s, ok := attrNum(e, "seconds"); ok {
				g.FlushSeconds += s
				flushDur.Observe(s)
			}
		case obs.EvVeloCFlushDiscarded:
			gen(e).FlushesDiscarded++
		case obs.EvVeloCRestart:
			gen(e).Restores++
		}
	}
	if rep.WallSeconds == 0 {
		rep.WallSeconds = events[len(events)-1].Time
	}
	rep.FailuresInjected = len(failures)
	sort.Slice(anchors, func(i, j int) bool { return anchors[i].time < anchors[j].time })

	// Pass 2: assign failures to the next repair anchor and segment each
	// episode into phases.
	for i, a := range anchors {
		var spanFailures []*failure
		for _, f := range failures {
			if !f.assigned && f.time <= a.time {
				f.assigned = true
				spanFailures = append(spanFailures, f)
			}
		}
		// A repair without an observed injection (e.g. a ring-truncated log)
		// anchors the span at the repair itself: start stays a.time.
		start := a.time
		var slots []int
		for _, f := range spanFailures {
			if f.time < start {
				start = f.time
			}
			slots = append(slots, f.slot)
		}
		// The episode's post-repair activity ends where the next failure
		// begins (or at the end of the log).
		windowEnd := math.Inf(1)
		for _, f := range failures {
			if !f.assigned && f.time > a.time && f.time < windowEnd {
				windowEnd = f.time
			}
		}
		if i+1 < len(anchors) && anchors[i+1].time < windowEnd {
			windowEnd = anchors[i+1].time
		}

		sp := buildSpan(events, a, start, windowEnd)
		sp.Index = len(rep.Spans)
		sp.FailedSlots = slots
		if a.kind == "relaunch" {
			sp.Replaced = len(spanFailures)
		}
		rep.FailuresRepaired += sp.Replaced + sp.Shrunk
		rep.PhaseTotals.accumulate(sp.Phases)
		rep.Spans = append(rep.Spans, sp)
	}
	for _, f := range failures {
		if !f.assigned {
			rep.FailuresUnrepaired++
		}
	}

	for _, g := range gens {
		rep.Checkpoints = append(rep.Checkpoints, *g)
	}
	sort.Slice(rep.Checkpoints, func(i, j int) bool {
		return rep.Checkpoints[i].Version < rep.Checkpoints[j].Version
	})
	rep.FlushSeconds = histStats(flushDur)
	rep.FlushQueueWait = histStats(queueWait)
	return rep, nil
}

// buildSpan segments one recovery episode. Pre-repair events (detection,
// ULFM revoke/shrink/agree) are scanned in [start, a.time]; post-repair
// events (restores, recompute) in [a.time, windowEnd).
func buildSpan(events []obs.Event, a anchor, start, windowEnd float64) Span {
	sp := Span{
		Kind:       a.kind,
		Generation: a.gen,
		Replaced:   a.replaced,
		Shrunk:     a.shrunk,
		Start:      start,
		Repair:     a.time,
	}
	perRank := map[int]*RankPhases{}
	rank := func(r int) *RankPhases {
		rp, ok := perRank[r]
		if !ok {
			rp = &RankPhases{Rank: r}
			perRank[r] = rp
		}
		return rp
	}

	firstDetect, lastComm := math.Inf(1), math.Inf(-1)
	restoreEnd := math.Inf(-1)
	firstRecompute, lastRecompute := math.Inf(1), math.Inf(-1)
	restoreBegin := map[int]float64{}   // rank -> open kr.restore_begin time
	recomputeBegin := map[int]float64{} // rank -> open core.recompute_begin time

	for _, e := range events {
		if e.Time < start || e.Time >= windowEnd {
			continue
		}
		switch e.Name {
		case obs.EvFailureDetected:
			if e.Time > a.time {
				break
			}
			if e.Time < firstDetect {
				firstDetect = e.Time
			}
			if rp := rank(e.Rank); rp.Detection == 0 {
				rp.Detection = e.Time - start
			}
		case obs.EvRevoke, obs.EvShrink, obs.EvAgree:
			if e.Time <= a.time && e.Time > lastComm {
				lastComm = e.Time
			}
		case obs.EvKRRestoreBegin:
			if e.Time >= a.time {
				restoreBegin[e.Rank] = e.Time
			}
		case obs.EvKRRestoreEnd:
			if e.Time < a.time {
				break
			}
			if b, ok := restoreBegin[e.Rank]; ok {
				rank(e.Rank).Restore += e.Time - b
				delete(restoreBegin, e.Rank)
			}
			if e.Time > restoreEnd {
				restoreEnd = e.Time
			}
		case obs.EvVeloCRestart, obs.EvFenixIMRRestore:
			if e.Time < a.time {
				break
			}
			if e.Time > restoreEnd {
				restoreEnd = e.Time
			}
			// Without a surrounding KR region (manual control flow), the
			// restart's own duration is the rank's restore time.
			if _, open := restoreBegin[e.Rank]; !open && e.Name == obs.EvVeloCRestart {
				if s, ok := attrNum(e, "seconds"); ok {
					rank(e.Rank).Restore += s
				}
			}
		case obs.EvVeloCFlushStart:
			if w, ok := attrNum(e, "wait_seconds"); ok {
				sp.FlushWaitSeconds += w
			}
		case obs.EvMsgReplayed:
			if e.Time >= a.time {
				sp.ReplayedMsgs++
			}
		case obs.EvRecomputeBegin:
			if e.Time < a.time {
				break
			}
			sp.RecomputedIters++
			recomputeBegin[e.Rank] = e.Time
			if e.Time < firstRecompute {
				firstRecompute = e.Time
			}
		case obs.EvRecomputeEnd:
			if e.Time < a.time {
				break
			}
			if b, ok := recomputeBegin[e.Rank]; ok {
				rank(e.Rank).Recompute += e.Time - b
				delete(recomputeBegin, e.Rank)
			}
			if e.Time > lastRecompute {
				lastRecompute = e.Time
			}
		}
	}

	detectAt := firstDetect
	if math.IsInf(detectAt, 1) {
		detectAt = start // never observed: detection phase collapses to 0
	}
	commAt := lastComm
	if math.IsInf(commAt, -1) || commAt < detectAt {
		commAt = detectAt // no ULFM ops recorded: comm repair collapses to 0
	}
	sp.Phases.Detection = detectAt - start
	sp.Phases.CommRepair = commAt - detectAt
	sp.Phases.Rebuild = a.time - commAt
	if restoreEnd > a.time {
		sp.Phases.Restore = restoreEnd - a.time
	}
	if lastRecompute > firstRecompute {
		sp.Phases.Recompute = lastRecompute - firstRecompute
	}

	sp.End = a.time
	if restoreEnd > sp.End {
		sp.End = restoreEnd
	}
	if lastRecompute > sp.End {
		sp.End = lastRecompute
	}
	sp.CriticalPath = sp.End - sp.Start

	for _, rp := range perRank {
		sp.PerRank = append(sp.PerRank, *rp)
	}
	sort.Slice(sp.PerRank, func(i, j int) bool { return sp.PerRank[i].Rank < sp.PerRank[j].Rank })
	return sp
}
