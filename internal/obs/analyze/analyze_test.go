package analyze

import (
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/obs"
)

// evb builds ordered event logs for tests; times are chosen binary-exact
// so phase assertions can compare with ==.
type evb struct {
	seq    uint64
	events []obs.Event
}

func (b *evb) add(t float64, rank int, layer, name string, attrs ...obs.Attr) {
	b.seq++
	b.events = append(b.events, obs.Event{
		Seq: b.seq, Time: t, Rank: rank, Layer: layer, Name: name, Attrs: attrs,
	})
}

// fenixEpisode emits a complete single-failure recovery at binary-exact
// times:
//
//	3.0     failure injected (slot 1) + rank_exit
//	3.125   first detection (rank 0); 3.1875 second (rank 2)
//	3.25    revoke
//	3.5     rebuild (gen 1, spare replacement)
//	3.5     restore_begin x2; commits at 3.625 (rank 0) and 3.75 (rank 4)
//	4.0-4.75 two recomputed iterations on the recovered rank
func fenixEpisode(b *evb) {
	b.add(3.0, 1, obs.LayerCore, obs.EvFailureInjected, obs.KV("slot", 1), obs.KV("iter", 13))
	b.add(3.0, 1, obs.LayerMPI, obs.EvRankExit)
	b.add(3.125, 0, obs.LayerMPI, obs.EvFailureDetected, obs.KV("failed_rank", 1))
	b.add(3.1875, 2, obs.LayerMPI, obs.EvFailureDetected, obs.KV("failed_rank", 1))
	b.add(3.25, 0, obs.LayerMPI, obs.EvRevoke, obs.KV("comm", 2), obs.KV("size", 4))
	b.add(3.5, -1, obs.LayerFenix, obs.EvFenixRebuild,
		obs.KV("generation", 1), obs.KV("replaced", 1), obs.KV("shrunk", 0), obs.KV("size", 4))
	b.add(3.5, 0, obs.LayerKR, obs.EvKRRestoreBegin, obs.KV("label", "app"), obs.KV("version", 9))
	b.add(3.5, 4, obs.LayerKR, obs.EvKRRestoreBegin, obs.KV("label", "app"), obs.KV("version", 9))
	b.add(3.5625, 0, obs.LayerVeloC, obs.EvVeloCRestart,
		obs.KV("name", "app"), obs.KV("version", 9), obs.KV("source", "scratch"),
		obs.KV("seconds", 0.0625), obs.KV("bytes", 1024))
	b.add(3.625, 0, obs.LayerKR, obs.EvKRRestoreEnd, obs.KV("label", "app"), obs.KV("version", 9))
	b.add(3.6875, 4, obs.LayerVeloC, obs.EvVeloCRestart,
		obs.KV("name", "app"), obs.KV("version", 9), obs.KV("source", "pfs"),
		obs.KV("seconds", 0.1875), obs.KV("bytes", 1024))
	b.add(3.75, 4, obs.LayerKR, obs.EvKRRestoreEnd, obs.KV("label", "app"), obs.KV("version", 9))
	b.add(4.0, 4, obs.LayerCore, obs.EvRecomputeBegin, obs.KV("slot", 1), obs.KV("iter", 10))
	b.add(4.25, 4, obs.LayerCore, obs.EvRecomputeEnd, obs.KV("slot", 1), obs.KV("iter", 10))
	b.add(4.5, 4, obs.LayerCore, obs.EvRecomputeBegin, obs.KV("slot", 1), obs.KV("iter", 11))
	b.add(4.75, 4, obs.LayerCore, obs.EvRecomputeEnd, obs.KV("slot", 1), obs.KV("iter", 11))
}

func TestAnalyzeFenixSpanPhases(t *testing.T) {
	var b evb
	b.add(0, -1, obs.LayerMPI, obs.EvJobLaunch,
		obs.KV("attempt", 0), obs.KV("ranks", 5), obs.KV("nodes", 5))
	// One pre-failure checkpoint generation with an async flush.
	for rank := 0; rank < 4; rank++ {
		b.add(1.0, rank, obs.LayerVeloC, obs.EvVeloCCheckpoint,
			obs.KV("name", "app"), obs.KV("version", 9), obs.KV("bytes", 1024),
			obs.KV("scratch_seconds", 0.25))
		b.add(1.0, rank, obs.LayerVeloC, obs.EvVeloCFlushBegin,
			obs.KV("name", "app"), obs.KV("version", 9), obs.KV("bytes", 1024))
		b.add(1.5, rank, obs.LayerVeloC, obs.EvVeloCFlushEnd,
			obs.KV("name", "app"), obs.KV("version", 9), obs.KV("bytes", 1024),
			obs.KV("seconds", 0.5))
	}
	fenixEpisode(&b)
	b.add(6.0, -1, obs.LayerMPI, obs.EvJobEnd,
		obs.KV("launches", 1), obs.KV("failed", false), obs.KV("wall_seconds", 6.0))

	rep, err := Analyze(b.events)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ranks != 5 || rep.Launches != 1 || rep.WallSeconds != 6.0 || rep.JobFailed {
		t.Errorf("job summary wrong: %+v", rep)
	}
	if rep.FailuresInjected != 1 || rep.FailuresRepaired != 1 || rep.FailuresUnrepaired != 0 {
		t.Errorf("failure accounting: injected %d repaired %d unrepaired %d",
			rep.FailuresInjected, rep.FailuresRepaired, rep.FailuresUnrepaired)
	}
	if len(rep.Spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(rep.Spans))
	}
	sp := rep.Spans[0]
	if sp.Kind != "fenix" || sp.Generation != 1 || sp.Replaced != 1 || sp.Shrunk != 0 {
		t.Errorf("span identity: %+v", sp)
	}
	if len(sp.FailedSlots) != 1 || sp.FailedSlots[0] != 1 {
		t.Errorf("failed slots = %v, want [1]", sp.FailedSlots)
	}

	// Exact phase durations (all times binary-exact).
	want := PhaseBreakdown{
		Detection:  0.125, // 3.0 -> 3.125
		CommRepair: 0.125, // 3.125 -> 3.25 (revoke)
		Rebuild:    0.25,  // 3.25 -> 3.5
		Restore:    0.25,  // 3.5 -> 3.75 (last restore_commit)
		Recompute:  0.75,  // 4.0 -> 4.75
	}
	if sp.Phases != want {
		t.Errorf("phases = %+v, want %+v", sp.Phases, want)
	}
	// The pre-repair phases partition [start, repair] exactly, and the
	// phase sum accounts for the whole critical path minus the idle gaps
	// between restoration and recompute.
	if got := sp.Phases.Detection + sp.Phases.CommRepair + sp.Phases.Rebuild; got != sp.Repair-sp.Start {
		t.Errorf("pre-repair phases sum to %v, want repair-start = %v", got, sp.Repair-sp.Start)
	}
	if sp.Start != 3.0 || sp.Repair != 3.5 || sp.End != 4.75 || sp.CriticalPath != 1.75 {
		t.Errorf("span timeline: start %v repair %v end %v critical %v",
			sp.Start, sp.Repair, sp.End, sp.CriticalPath)
	}
	if sp.RecomputedIters != 2 {
		t.Errorf("recomputed iters = %d, want 2", sp.RecomputedIters)
	}
	if sp.Phases.Total() != 1.5 {
		t.Errorf("phase total = %v, want 1.5", sp.Phases.Total())
	}
	if rep.PhaseTotals != want {
		t.Errorf("report phase totals = %+v, want %+v", rep.PhaseTotals, want)
	}

	// Per-rank breakdowns: detection on the observers, restore on the
	// restoring ranks (begin->commit), recompute on the recovered rank.
	byRank := map[int]RankPhases{}
	for _, rp := range sp.PerRank {
		byRank[rp.Rank] = rp
	}
	if got := byRank[0]; got.Detection != 0.125 || got.Restore != 0.125 || got.Recompute != 0 {
		t.Errorf("rank 0 phases: %+v", got)
	}
	if got := byRank[2]; got.Detection != 0.1875 {
		t.Errorf("rank 2 detection = %v, want 0.1875", got.Detection)
	}
	if got := byRank[4]; got.Restore != 0.25 || got.Recompute != 0.5 {
		t.Errorf("rank 4 phases: %+v", got)
	}

	// Checkpoint generation accounting from the veloc.* events.
	if len(rep.Checkpoints) != 1 {
		t.Fatalf("got %d checkpoint generations, want 1", len(rep.Checkpoints))
	}
	g := rep.Checkpoints[0]
	if g.Version != 9 || g.Checkpoints != 4 || g.Bytes != 4096 || g.ScratchSeconds != 1.0 ||
		g.Flushes != 4 || g.FlushesCompleted != 4 || g.FlushSeconds != 2.0 || g.Restores != 2 {
		t.Errorf("checkpoint generation: %+v", g)
	}
}

func TestAnalyzeMultiRepairSpans(t *testing.T) {
	var b evb
	b.add(0, -1, obs.LayerMPI, obs.EvJobLaunch,
		obs.KV("attempt", 0), obs.KV("ranks", 7), obs.KV("nodes", 7))
	// Generation 1: two simultaneous failures repaired by one rebuild.
	b.add(2.0, 1, obs.LayerCore, obs.EvFailureInjected, obs.KV("slot", 1), obs.KV("iter", 8))
	b.add(2.0, 2, obs.LayerCore, obs.EvFailureInjected, obs.KV("slot", 2), obs.KV("iter", 8))
	b.add(2.25, 0, obs.LayerMPI, obs.EvFailureDetected, obs.KV("failed_rank", 1))
	b.add(2.5, 0, obs.LayerMPI, obs.EvRevoke, obs.KV("comm", 2), obs.KV("size", 4))
	b.add(3.0, -1, obs.LayerFenix, obs.EvFenixRebuild,
		obs.KV("generation", 1), obs.KV("replaced", 2), obs.KV("shrunk", 0), obs.KV("size", 4))
	b.add(3.25, 5, obs.LayerCore, obs.EvRecomputeBegin, obs.KV("slot", 1), obs.KV("iter", 5))
	b.add(3.5, 5, obs.LayerCore, obs.EvRecomputeEnd, obs.KV("slot", 1), obs.KV("iter", 5))
	// Generation 2: a repeated kill of slot 1, repaired by a second rebuild.
	b.add(5.0, 5, obs.LayerCore, obs.EvFailureInjected, obs.KV("slot", 1), obs.KV("iter", 12))
	b.add(5.25, 0, obs.LayerMPI, obs.EvFailureDetected, obs.KV("failed_rank", 5))
	b.add(6.0, -1, obs.LayerFenix, obs.EvFenixRebuild,
		obs.KV("generation", 2), obs.KV("replaced", 1), obs.KV("shrunk", 0), obs.KV("size", 4))
	b.add(6.5, 6, obs.LayerCore, obs.EvRecomputeBegin, obs.KV("slot", 1), obs.KV("iter", 10))
	b.add(6.75, 6, obs.LayerCore, obs.EvRecomputeEnd, obs.KV("slot", 1), obs.KV("iter", 10))
	b.add(8.0, -1, obs.LayerMPI, obs.EvJobEnd,
		obs.KV("launches", 1), obs.KV("failed", false), obs.KV("wall_seconds", 8.0))

	rep, err := Analyze(b.events)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Spans) != 2 {
		t.Fatalf("got %d spans, want one per repair (2)", len(rep.Spans))
	}
	s0, s1 := rep.Spans[0], rep.Spans[1]
	if len(s0.FailedSlots) != 2 || s0.Replaced != 2 || s0.Generation != 1 {
		t.Errorf("span 0 should carry both simultaneous failures: %+v", s0)
	}
	if len(s1.FailedSlots) != 1 || s1.FailedSlots[0] != 1 || s1.Generation != 2 {
		t.Errorf("span 1 should carry the repeated kill: %+v", s1)
	}
	if rep.FailuresRepaired != 3 || rep.FailuresInjected != 3 || rep.FailuresUnrepaired != 0 {
		t.Errorf("repair accounting: %+v", rep)
	}
	// The first span's window ends at the second failure: its recompute
	// activity must not leak into span 1 (and vice versa).
	if s0.RecomputedIters != 1 || s1.RecomputedIters != 1 {
		t.Errorf("recompute attribution: span0 %d, span1 %d, want 1 and 1",
			s0.RecomputedIters, s1.RecomputedIters)
	}
	if s0.End >= 5.0 {
		t.Errorf("span 0 end %v leaked past the next failure at 5.0", s0.End)
	}
}

// TestAnalyzeTwoWaveShrink pins the report's shrunk-slot arithmetic over
// multiple shrink waves: wave 1 both substitutes the last spare and
// shrinks one slot, wave 2 shrinks two more with the pool empty. The
// analyzer must count one mpi.shrink per wave and the table's "slots
// shrunk away" figure must sum every wave's compaction, not just the
// last one.
func TestAnalyzeTwoWaveShrink(t *testing.T) {
	rep, err := Analyze(twoWaveShrinkLog())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shrinks != 2 {
		t.Errorf("shrinks = %d, want one per wave (2)", rep.Shrinks)
	}
	if len(rep.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(rep.Spans))
	}
	s0, s1 := rep.Spans[0], rep.Spans[1]
	if s0.Replaced != 1 || s0.Shrunk != 1 {
		t.Errorf("span 0 disposed (replaced %d, shrunk %d), want the mixed wave (1, 1)",
			s0.Replaced, s0.Shrunk)
	}
	if s1.Replaced != 0 || s1.Shrunk != 2 {
		t.Errorf("span 1 disposed (replaced %d, shrunk %d), want the pure shrink wave (0, 2)",
			s1.Replaced, s1.Shrunk)
	}
	if rep.FailuresInjected != 4 || rep.FailuresRepaired != 4 {
		t.Errorf("failure accounting: injected %d repaired %d, want 4/4",
			rep.FailuresInjected, rep.FailuresRepaired)
	}
	var tbl strings.Builder
	if err := rep.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	if want := "shrink events: 2 (communicator compacted; 3 slots shrunk away)"; !strings.Contains(tbl.String(), want) {
		t.Errorf("table shrink line wrong: want %q in:\n%s", want, tbl.String())
	}
}

// twoWaveShrinkLog is the TestAnalyzeTwoWaveShrink fixture: a 7-rank job
// compacted to 3 slots over two shrink waves.
func twoWaveShrinkLog() []obs.Event {
	var b evb
	b.add(0, -1, obs.LayerMPI, obs.EvJobLaunch,
		obs.KV("attempt", 0), obs.KV("ranks", 7), obs.KV("nodes", 7))
	b.add(2.0, 1, obs.LayerCore, obs.EvFailureInjected, obs.KV("slot", 1), obs.KV("iter", 8))
	b.add(2.0, 3, obs.LayerCore, obs.EvFailureInjected, obs.KV("slot", 3), obs.KV("iter", 8))
	b.add(2.25, 0, obs.LayerMPI, obs.EvFailureDetected, obs.KV("failed_rank", 1))
	b.add(2.5, 0, obs.LayerMPI, obs.EvRevoke, obs.KV("comm", 2), obs.KV("size", 6))
	b.add(2.75, -1, obs.LayerMPI, obs.EvShrink, obs.KV("from_size", 6), obs.KV("to_size", 5))
	b.add(3.0, -1, obs.LayerFenix, obs.EvFenixRebuild,
		obs.KV("generation", 1), obs.KV("replaced", 1), obs.KV("shrunk", 1), obs.KV("size", 5))
	b.add(3.25, 6, obs.LayerCore, obs.EvRecomputeBegin, obs.KV("slot", 1), obs.KV("iter", 5))
	b.add(3.5, 6, obs.LayerCore, obs.EvRecomputeEnd, obs.KV("slot", 1), obs.KV("iter", 5))
	b.add(5.0, 2, obs.LayerCore, obs.EvFailureInjected, obs.KV("slot", 2), obs.KV("iter", 12))
	b.add(5.0, 4, obs.LayerCore, obs.EvFailureInjected, obs.KV("slot", 4), obs.KV("iter", 12))
	b.add(5.25, 0, obs.LayerMPI, obs.EvFailureDetected, obs.KV("failed_rank", 2))
	b.add(5.5, 0, obs.LayerMPI, obs.EvRevoke, obs.KV("comm", 3), obs.KV("size", 5))
	b.add(5.75, -1, obs.LayerMPI, obs.EvShrink, obs.KV("from_size", 5), obs.KV("to_size", 3))
	b.add(6.0, -1, obs.LayerFenix, obs.EvFenixRebuild,
		obs.KV("generation", 2), obs.KV("replaced", 0), obs.KV("shrunk", 2), obs.KV("size", 3))
	b.add(6.5, 0, obs.LayerCore, obs.EvRecomputeBegin, obs.KV("slot", 0), obs.KV("iter", 10))
	b.add(6.75, 0, obs.LayerCore, obs.EvRecomputeEnd, obs.KV("slot", 0), obs.KV("iter", 10))
	b.add(8.0, -1, obs.LayerMPI, obs.EvJobEnd,
		obs.KV("launches", 1), obs.KV("failed", false), obs.KV("wall_seconds", 8.0))
	return b.events
}

// TestDiffRankAlignmentAcrossWorldSizes pins the -baseline per-rank delta
// table for runs that end at different world sizes: a 5-rank baseline
// whose single failure is spare-repaired (ranks 0, 2, 4 have phase data)
// against a 7-rank subject compacted to 3 slots over two shrink waves
// (ranks 0, 6 have phase data). Rows must align by rank id — never by
// table position — and ranks with data on only one side must carry an
// explicit note instead of a fabricated zero-baseline delta.
func TestDiffRankAlignmentAcrossWorldSizes(t *testing.T) {
	var base evb
	base.add(0, -1, obs.LayerMPI, obs.EvJobLaunch,
		obs.KV("attempt", 0), obs.KV("ranks", 5), obs.KV("nodes", 5))
	fenixEpisode(&base)
	base.add(6.0, -1, obs.LayerMPI, obs.EvJobEnd,
		obs.KV("launches", 1), obs.KV("failed", false), obs.KV("wall_seconds", 6.0))
	baseline, err := Analyze(base.events)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Analyze(twoWaveShrinkLog())
	if err != nil {
		t.Fatal(err)
	}

	d := Diff(run, baseline)
	// Union of ranks with phase data: baseline {0, 2, 4}, run {0, 6}.
	wantRows := []RankDelta{
		// Rank 0 appears on both sides: detection 0.25+0.25 vs 0.125,
		// restore 0 vs 0.125, recompute 0.25 vs 0. No note.
		{Rank: 0, Detection: 0.375, Restore: -0.125, Recompute: 0.25},
		// Ranks 2 and 4 have baseline data only; the run shrank three
		// slots away, so the missing side is labeled as compacted.
		{Rank: 2, Detection: -0.1875, Note: "shrunk away in run"},
		{Rank: 4, Restore: -0.25, Recompute: -0.5, Note: "shrunk away in run"},
		// Rank 6 (the activated spare) exists in the run only; the
		// baseline did not shrink, so it is merely one-sided.
		{Rank: 6, Recompute: 0.25, Note: "run only"},
	}
	if len(d.PerRank) != len(wantRows) {
		t.Fatalf("per-rank rows = %+v, want %d rows", d.PerRank, len(wantRows))
	}
	for i, want := range wantRows {
		if d.PerRank[i] != want {
			t.Errorf("row %d = %+v, want %+v", i, d.PerRank[i], want)
		}
	}

	var tbl strings.Builder
	if err := d.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"per-rank phase deltas", "shrunk away in run", "run only"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("delta table missing %q:\n%s", want, tbl.String())
		}
	}

	// The reverse diff labels the shrunk side symmetrically: rank 2 is
	// missing because the (now-)baseline compacted it away; rank 6 never
	// existed on the run side at all.
	rev := Diff(baseline, run)
	for _, rd := range rev.PerRank {
		if rd.Rank == 2 && rd.Note != "shrunk away in baseline" {
			t.Errorf("reverse diff rank 2 note = %q, want shrunk away in baseline", rd.Note)
		}
		if rd.Rank == 6 && rd.Note != "baseline only" {
			t.Errorf("reverse diff rank 6 note = %q, want baseline only", rd.Note)
		}
	}
}

func TestAnalyzeRelaunchSpan(t *testing.T) {
	var b evb
	b.add(0, -1, obs.LayerMPI, obs.EvJobLaunch,
		obs.KV("attempt", 0), obs.KV("ranks", 4), obs.KV("nodes", 4))
	b.add(2.0, 1, obs.LayerCore, obs.EvFailureInjected, obs.KV("slot", 1), obs.KV("iter", 13))
	b.add(2.125, 0, obs.LayerMPI, obs.EvFailureDetected, obs.KV("failed_rank", 1))
	b.add(3.0, -1, obs.LayerMPI, obs.EvJobLaunch,
		obs.KV("attempt", 1), obs.KV("ranks", 4), obs.KV("nodes", 4))
	b.add(3.25, 0, obs.LayerVeloC, obs.EvVeloCRestart,
		obs.KV("name", "app"), obs.KV("version", 9), obs.KV("source", "scratch"),
		obs.KV("seconds", 0.25), obs.KV("bytes", 512))
	b.add(3.5, 1, obs.LayerCore, obs.EvRecomputeBegin, obs.KV("slot", 1), obs.KV("iter", 10))
	b.add(3.75, 1, obs.LayerCore, obs.EvRecomputeEnd, obs.KV("slot", 1), obs.KV("iter", 10))
	b.add(5.0, -1, obs.LayerMPI, obs.EvJobEnd,
		obs.KV("launches", 2), obs.KV("failed", false), obs.KV("wall_seconds", 5.0))

	rep, err := Analyze(b.events)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Launches != 2 {
		t.Errorf("launches = %d", rep.Launches)
	}
	if len(rep.Spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(rep.Spans))
	}
	sp := rep.Spans[0]
	if sp.Kind != "relaunch" || sp.Generation != 1 || sp.Replaced != 1 {
		t.Errorf("relaunch span: %+v", sp)
	}
	if sp.Phases.Detection != 0.125 {
		t.Errorf("detection = %v", sp.Phases.Detection)
	}
	// No ULFM ops under fail-restart: the whole detect->relaunch gap is
	// the rebuild (teardown + relaunch) phase.
	if sp.Phases.CommRepair != 0 || sp.Phases.Rebuild != 0.875 {
		t.Errorf("comm/rebuild = %v/%v, want 0/0.875", sp.Phases.CommRepair, sp.Phases.Rebuild)
	}
	if sp.Phases.Restore != 0.25 || sp.Phases.Recompute != 0.25 {
		t.Errorf("restore/recompute = %v/%v", sp.Phases.Restore, sp.Phases.Recompute)
	}
	// Manual control flow: the rank's restore time comes from the
	// veloc.restart seconds attribute.
	if len(sp.PerRank) == 0 || sp.PerRank[0].Rank != 0 || sp.PerRank[0].Restore != 0.25 {
		t.Errorf("per-rank restore: %+v", sp.PerRank)
	}
}

func TestAnalyzeEmptyLog(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Error("empty log accepted")
	}
}

func TestReadJSONLRoundTrip(t *testing.T) {
	r := obs.New()
	r.Emit(1.5, 0, obs.LayerVeloC, obs.EvVeloCCheckpoint,
		obs.KV("name", "app"), obs.KV("version", 3), obs.KV("bytes", 1024),
		obs.KV("ok", true), obs.KV("cost", 0.25))
	r.Emit(0.5, -1, obs.LayerMPI, obs.EvJobLaunch)
	r.Emit(2.5, 0, obs.LayerVeloC, obs.EvVeloCRestart, obs.KV("seconds", math.NaN()))

	var buf strings.Builder
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJSONL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if events[0].Name != obs.EvJobLaunch || events[0].Time != 0.5 || events[0].Rank != -1 {
		t.Errorf("event 0: %+v", events[0])
	}
	if v, ok := attrInt(events[1], "version"); !ok || v != 3 {
		t.Errorf("version attr = %v", v)
	}
	if v, ok := attrNum(events[1], "cost"); !ok || v != 0.25 {
		t.Errorf("cost attr = %v", v)
	}
	if v, ok := attrBool(events[1], "ok"); !ok || !v {
		t.Errorf("ok attr = %v", v)
	}
	// The quoted NaN revives as a real NaN float.
	if v, ok := attrNum(events[2], "seconds"); !ok || !math.IsNaN(v) {
		t.Errorf("NaN attr = %v, ok=%v", v, ok)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"t\":1}\nnot json\n")); err == nil {
		t.Error("garbage line accepted")
	}
}

func TestReportJSONSchemaStable(t *testing.T) {
	var b evb
	b.add(0, -1, obs.LayerMPI, obs.EvJobLaunch, obs.KV("attempt", 0), obs.KV("ranks", 5), obs.KV("nodes", 5))
	fenixEpisode(&b)
	b.add(6.0, -1, obs.LayerMPI, obs.EvJobEnd, obs.KV("launches", 1), obs.KV("failed", false), obs.KV("wall_seconds", 6.0))
	rep, err := Analyze(b.events)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := rep.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	// The documented top-level and span keys must be present (the schema
	// OBSERVABILITY.md promises to obsreport consumers).
	var decoded map[string]any
	if err := json.Unmarshal([]byte(out.String()), &decoded); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	for _, key := range []string{
		"events", "ranks", "launches", "wall_seconds", "job_failed",
		"failures_injected", "failures_repaired", "failures_unrepaired",
		"spans", "phase_totals",
	} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("report JSON missing key %q", key)
		}
	}
	spans := decoded["spans"].([]any)
	span := spans[0].(map[string]any)
	for _, key := range []string{
		"index", "kind", "generation", "replaced", "shrunk",
		"start_s", "repair_s", "end_s", "critical_path_s", "recomputed_iters", "phases",
	} {
		if _, ok := span[key]; !ok {
			t.Errorf("span JSON missing key %q", key)
		}
	}
	phases := span["phases"].(map[string]any)
	for _, name := range PhaseNames() {
		if _, ok := phases[name+"_s"]; !ok {
			t.Errorf("span phases missing %q", name+"_s")
		}
	}
}

func TestWriteTableMentionsEverySpanAndPhase(t *testing.T) {
	var b evb
	b.add(0, -1, obs.LayerMPI, obs.EvJobLaunch, obs.KV("attempt", 0), obs.KV("ranks", 5), obs.KV("nodes", 5))
	b.add(1.0, 0, obs.LayerVeloC, obs.EvVeloCCheckpoint,
		obs.KV("name", "app"), obs.KV("version", 9), obs.KV("bytes", 1024), obs.KV("scratch_seconds", 0.25))
	fenixEpisode(&b)
	b.add(6.0, -1, obs.LayerMPI, obs.EvJobEnd, obs.KV("launches", 1), obs.KV("failed", false), obs.KV("wall_seconds", 6.0))
	rep, err := Analyze(b.events)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := rep.WriteTable(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"recovery spans", "fenix", "detect", "rebuild", "restore", "recompute", "checkpoint generations", "phase totals"} {
		if !strings.Contains(text, want) {
			t.Errorf("table output missing %q:\n%s", want, text)
		}
	}
}

func TestDiffAgainstBaseline(t *testing.T) {
	run := &Report{WallSeconds: 12, FailuresRepaired: 1,
		PhaseTotals: PhaseBreakdown{Recompute: 2},
		Checkpoints: []CheckpointGen{{Version: 1, Checkpoints: 8}}}
	base := &Report{WallSeconds: 10,
		Checkpoints: []CheckpointGen{{Version: 1, Checkpoints: 6}}}
	d := Diff(run, base)
	if d.WallSeconds != 2 || d.WallPct != 20 {
		t.Errorf("wall delta %v (%v%%)", d.WallSeconds, d.WallPct)
	}
	if d.PhaseTotals.Recompute != 2 || d.FailuresRepaired != 1 || d.CheckpointsWritten != 2 {
		t.Errorf("delta: %+v", d)
	}
	var out strings.Builder
	if err := d.WriteTable(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "vs baseline") {
		t.Errorf("delta table: %s", out.String())
	}
}

// TestPhaseNamesDocumented cross-checks the span taxonomy against the
// Analysis section of OBSERVABILITY.md, exactly as EventNames is checked.
func TestPhaseNamesDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../../OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("reading OBSERVABILITY.md: %v", err)
	}
	text := string(doc)
	for _, name := range PhaseNames() {
		if !strings.Contains(text, "`"+name+"`") {
			t.Errorf("phase %s is not documented in OBSERVABILITY.md", name)
		}
	}
}
