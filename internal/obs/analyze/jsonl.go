package analyze

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"repro/internal/obs"
)

// wireEvent mirrors the JSONL export schema of obs.Event.appendJSON.
type wireEvent struct {
	T     float64        `json:"t"`
	Rank  int            `json:"rank"`
	Layer string         `json:"layer"`
	Event string         `json:"event"`
	Attrs map[string]any `json:"attrs"`
}

// ReadJSONL parses an events JSONL stream (the output of
// Recorder.WriteJSONL or Recorder.StreamJSONL) back into events. JSON
// objects lose attribute order, so attributes are re-sorted by key; the
// emission sequence is reconstructed from line order, preserving the
// file's tie-break order for equal timestamps. Quoted non-finite floats
// ("NaN", "+Inf", "-Inf") are converted back to float64.
func ReadJSONL(r io.Reader) ([]obs.Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []obs.Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var we wireEvent
		if err := json.Unmarshal(raw, &we); err != nil {
			return nil, fmt.Errorf("analyze: line %d: %w", line, err)
		}
		e := obs.Event{
			Seq:   uint64(line),
			Time:  we.T,
			Rank:  we.Rank,
			Layer: we.Layer,
			Name:  we.Event,
		}
		if len(we.Attrs) > 0 {
			keys := make([]string, 0, len(we.Attrs))
			for k := range we.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				e.Attrs = append(e.Attrs, obs.KV(k, reviveValue(we.Attrs[k])))
			}
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	return events, nil
}

// reviveValue undoes the export encodings that have no JSON literal:
// non-finite floats exported as quoted strings.
func reviveValue(v any) any {
	s, ok := v.(string)
	if !ok {
		return v
	}
	switch s {
	case "NaN":
		return math.NaN()
	case "+Inf":
		return math.Inf(1)
	case "-Inf":
		return math.Inf(-1)
	}
	return v
}

// attr returns the value of the named attribute.
func attr(e obs.Event, key string) (any, bool) {
	for _, a := range e.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

// attrNum returns a numeric attribute as float64, accepting every numeric
// type the emitter may use and the float64 the JSON decoder produces.
func attrNum(e obs.Event, key string) (float64, bool) {
	v, ok := attr(e, key)
	if !ok {
		return 0, false
	}
	switch x := v.(type) {
	case float64:
		return x, true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case uint64:
		return float64(x), true
	case string:
		if f, err := strconv.ParseFloat(x, 64); err == nil {
			return f, true
		}
	}
	return 0, false
}

// attrInt returns a numeric attribute as int.
func attrInt(e obs.Event, key string) (int, bool) {
	f, ok := attrNum(e, key)
	if !ok {
		return 0, false
	}
	return int(f), true
}

// attrBool returns a boolean attribute.
func attrBool(e obs.Event, key string) (bool, bool) {
	v, ok := attr(e, key)
	if !ok {
		return false, false
	}
	b, ok := v.(bool)
	return b, ok
}

// attrString returns a string attribute.
func attrString(e obs.Event, key string) (string, bool) {
	v, ok := attr(e, key)
	if !ok {
		return "", false
	}
	s, ok := v.(string)
	return s, ok
}
