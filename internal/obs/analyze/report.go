package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteJSON writes the report as indented JSON, the machine-readable
// mirror of the table (schema documented in OBSERVABILITY.md).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable writes the human-readable breakdown: job summary, one row
// per recovery span with its phase durations, phase totals, and the
// per-generation checkpoint/flush accounting.
func (r *Report) WriteTable(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "events %d   ranks %d   launches %d   wall %.3fs   failed %v\n",
		r.Events, r.Ranks, r.Launches, r.WallSeconds, r.JobFailed)
	fmt.Fprintf(&b, "failures: injected %d, repaired %d, unrepaired %d\n",
		r.FailuresInjected, r.FailuresRepaired, r.FailuresUnrepaired)
	if r.SDCInjected > 0 {
		fmt.Fprintf(&b, "sdc: injected %d, detected %d, corrected %d, escaped %d (%d replays, %d votes)\n",
			r.SDCInjected, r.SDCDetected, r.SDCCorrected, r.SDCEscaped, r.SDCReplays, r.SDCVotes)
	}
	if r.SpareKills > 0 {
		fmt.Fprintf(&b, "spare kills (never in communicator): %d\n", r.SpareKills)
	}
	if r.Shrinks > 0 {
		shrunk := 0
		for _, sp := range r.Spans {
			shrunk += sp.Shrunk
		}
		fmt.Fprintf(&b, "shrink events: %d (communicator compacted; %d slots shrunk away)\n",
			r.Shrinks, shrunk)
	}

	if len(r.Spans) > 0 {
		fmt.Fprintf(&b, "\nrecovery spans (virtual seconds):\n")
		fmt.Fprintf(&b, "%-5s %-9s %-4s %-10s %4s %6s %-10s %10s %10s %10s %10s %10s %10s\n",
			"span", "kind", "gen", "slots", "repl", "shrunk", "start", "detect", "comm", "rebuild", "restore", "recompute", "critical")
		for _, sp := range r.Spans {
			fmt.Fprintf(&b, "%-5d %-9s %-4d %-10s %4d %6d %-10.3f %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f\n",
				sp.Index, sp.Kind, sp.Generation, intsString(sp.FailedSlots),
				sp.Replaced, sp.Shrunk, sp.Start,
				sp.Phases.Detection, sp.Phases.CommRepair, sp.Phases.Rebuild,
				sp.Phases.Restore, sp.Phases.Recompute, sp.CriticalPath)
		}
		fmt.Fprintf(&b, "\nphase totals:")
		for _, name := range PhaseNames() {
			fmt.Fprintf(&b, "  %s %.4f", name, r.PhaseTotals.Get(name))
		}
		fmt.Fprintf(&b, "  (sum %.4f)\n", r.PhaseTotals.Total())
	}

	if len(r.Checkpoints) > 0 {
		scheduled := false
		for _, g := range r.Checkpoints {
			if g.FlushesQueued > 0 {
				scheduled = true
				break
			}
		}
		fmt.Fprintf(&b, "\ncheckpoint generations (veloc):\n")
		if scheduled {
			fmt.Fprintf(&b, "%-8s %6s %10s %10s %8s %7s %6s %10s %10s %8s\n",
				"version", "ckpts", "MiB", "scratch-s", "queued", "started", "done", "queue-s", "flush-s", "restores")
			for _, g := range r.Checkpoints {
				fmt.Fprintf(&b, "%-8d %6d %10.1f %10.4f %8d %7d %6d %10.4f %10.4f %8d\n",
					g.Version, g.Checkpoints, float64(g.Bytes)/(1<<20), g.ScratchSeconds,
					g.FlushesQueued, g.FlushesStarted, g.FlushesCompleted,
					g.QueueWaitSeconds, g.FlushSeconds, g.Restores)
			}
		} else {
			fmt.Fprintf(&b, "%-8s %6s %10s %10s %8s %6s %10s %8s\n",
				"version", "ckpts", "MiB", "scratch-s", "flushes", "done", "flush-s", "restores")
			for _, g := range r.Checkpoints {
				fmt.Fprintf(&b, "%-8d %6d %10.1f %10.4f %8d %6d %10.4f %8d\n",
					g.Version, g.Checkpoints, float64(g.Bytes)/(1<<20), g.ScratchSeconds,
					g.Flushes, g.FlushesCompleted, g.FlushSeconds, g.Restores)
			}
		}
	}

	if r.FlushSeconds != nil || r.FlushQueueWait != nil {
		fmt.Fprintf(&b, "\nflush latency quantiles (obs.Histogram.Quantile, bucket-interpolated):\n")
		writeHistStats := func(name string, h *HistStats) {
			if h == nil {
				return
			}
			fmt.Fprintf(&b, "%-32s %6d %10.4f %10.4f %10.4f\n", name, h.Count, h.Mean, h.P50, h.P99)
		}
		fmt.Fprintf(&b, "%-32s %6s %10s %10s %10s\n", "histogram", "count", "mean", "p50", "p99")
		writeHistStats("veloc_flush_seconds", r.FlushSeconds)
		writeHistStats("veloc_flush_queue_wait_seconds", r.FlushQueueWait)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func intsString(xs []int) string {
	if len(xs) == 0 {
		return "-"
	}
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	return b.String()
}

// Delta is the overhead comparison between an instrumented run and a
// baseline run (typically failure-injected vs failure-free, or the same
// cell under two strategies).
type Delta struct {
	WallSeconds        float64        `json:"wall_seconds_delta"`
	WallPct            float64        `json:"wall_pct"`
	FailuresRepaired   int            `json:"failures_repaired_delta"`
	PhaseTotals        PhaseBreakdown `json:"phase_totals_delta"`
	CheckpointsWritten int            `json:"checkpoints_delta"`
	// PerRank compares recovery-phase time by world rank. Rows are keyed
	// and aligned by rank id, never by table position: with shrink-mode
	// repairs the two runs can end at different world sizes, so position-
	// based alignment would pair unrelated ranks (or index out of range).
	// Ranks with data on only one side carry an explicit Note instead of a
	// silently misleading zero baseline.
	PerRank []RankDelta `json:"per_rank,omitempty"`
}

// RankDelta is one world rank's phase-time comparison (run - baseline),
// summed over every recovery span the rank participated in.
type RankDelta struct {
	Rank      int     `json:"rank"`
	Detection float64 `json:"detection_s_delta"`
	Restore   float64 `json:"restore_s_delta"`
	Recompute float64 `json:"recompute_s_delta"`
	// Note is empty when both runs have phase data for the rank.
	// "shrunk away in run" / "shrunk away in baseline" marks a rank whose
	// side compacted slots away and has no data for it; "run only" /
	// "baseline only" marks one-sided data without a shrink to blame
	// (e.g. a failure-free baseline has no recovery activity at all).
	Note string `json:"note,omitempty"`
}

// rankPhaseTotals aggregates a report's per-span, per-rank phase times
// into one total per world rank.
func rankPhaseTotals(r *Report) map[int]RankPhases {
	m := map[int]RankPhases{}
	for _, sp := range r.Spans {
		for _, rp := range sp.PerRank {
			agg := m[rp.Rank]
			agg.Rank = rp.Rank
			agg.Detection += rp.Detection
			agg.Restore += rp.Restore
			agg.Recompute += rp.Recompute
			m[rp.Rank] = agg
		}
	}
	return m
}

// shrunkSlots sums the slots a report's repairs compacted away.
func shrunkSlots(r *Report) int {
	n := 0
	for _, sp := range r.Spans {
		n += sp.Shrunk
	}
	return n
}

// diffPerRank builds the rank-aligned phase comparison. The union of
// ranks from both reports is walked in rank order; a rank missing from
// one side still yields a row (its missing side contributes zero) with a
// Note naming which side lacks it and whether that side shrank.
func diffPerRank(run, baseline *Report) []RankDelta {
	rt, bt := rankPhaseTotals(run), rankPhaseTotals(baseline)
	if len(rt) == 0 && len(bt) == 0 {
		return nil
	}
	ranks := make([]int, 0, len(rt)+len(bt))
	for r := range rt {
		ranks = append(ranks, r)
	}
	for r := range bt {
		if _, dup := rt[r]; !dup {
			ranks = append(ranks, r)
		}
	}
	sort.Ints(ranks)
	out := make([]RankDelta, 0, len(ranks))
	for _, rank := range ranks {
		rv, rok := rt[rank]
		bv, bok := bt[rank]
		rd := RankDelta{
			Rank:      rank,
			Detection: rv.Detection - bv.Detection,
			Restore:   rv.Restore - bv.Restore,
			Recompute: rv.Recompute - bv.Recompute,
		}
		switch {
		case rok && bok:
			// both sides present: plain delta, no note
		case bok: // baseline only
			if shrunkSlots(run) > 0 {
				rd.Note = "shrunk away in run"
			} else {
				rd.Note = "baseline only"
			}
		default: // run only
			if shrunkSlots(baseline) > 0 {
				rd.Note = "shrunk away in baseline"
			} else {
				rd.Note = "run only"
			}
		}
		out = append(out, rd)
	}
	return out
}

// Diff returns run - baseline: positive wall delta means the run was
// slower than the baseline.
func Diff(run, baseline *Report) Delta {
	d := Delta{
		WallSeconds:      run.WallSeconds - baseline.WallSeconds,
		FailuresRepaired: run.FailuresRepaired - baseline.FailuresRepaired,
	}
	if baseline.WallSeconds > 0 {
		d.WallPct = 100 * d.WallSeconds / baseline.WallSeconds
	}
	d.PhaseTotals = run.PhaseTotals
	d.PhaseTotals.Detection -= baseline.PhaseTotals.Detection
	d.PhaseTotals.CommRepair -= baseline.PhaseTotals.CommRepair
	d.PhaseTotals.Rebuild -= baseline.PhaseTotals.Rebuild
	d.PhaseTotals.Restore -= baseline.PhaseTotals.Restore
	d.PhaseTotals.Recompute -= baseline.PhaseTotals.Recompute
	for _, g := range run.Checkpoints {
		d.CheckpointsWritten += g.Checkpoints
	}
	for _, g := range baseline.Checkpoints {
		d.CheckpointsWritten -= g.Checkpoints
	}
	d.PerRank = diffPerRank(run, baseline)
	return d
}

// WriteTable writes the delta in the same human-readable style.
func (d Delta) WriteTable(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "\nvs baseline: wall %+.3fs (%+.2f%%)   repaired %+d   checkpoints %+d\n",
		d.WallSeconds, d.WallPct, d.FailuresRepaired, d.CheckpointsWritten)
	fmt.Fprintf(&b, "phase deltas:")
	for _, name := range PhaseNames() {
		fmt.Fprintf(&b, "  %s %+.4f", name, d.PhaseTotals.Get(name))
	}
	fmt.Fprintf(&b, "\n")
	if len(d.PerRank) > 0 {
		fmt.Fprintf(&b, "\nper-rank phase deltas (run - baseline, virtual seconds):\n")
		fmt.Fprintf(&b, "%-5s %10s %10s %10s  %s\n",
			"rank", "detect", "restore", "recompute", "note")
		for _, rd := range d.PerRank {
			fmt.Fprintf(&b, "%-5d %+10.4f %+10.4f %+10.4f  %s\n",
				rd.Rank, rd.Detection, rd.Restore, rd.Recompute, rd.Note)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
