package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteJSON writes the report as indented JSON, the machine-readable
// mirror of the table (schema documented in OBSERVABILITY.md).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable writes the human-readable breakdown: job summary, one row
// per recovery span with its phase durations, phase totals, and the
// per-generation checkpoint/flush accounting.
func (r *Report) WriteTable(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "events %d   ranks %d   launches %d   wall %.3fs   failed %v\n",
		r.Events, r.Ranks, r.Launches, r.WallSeconds, r.JobFailed)
	fmt.Fprintf(&b, "failures: injected %d, repaired %d, unrepaired %d\n",
		r.FailuresInjected, r.FailuresRepaired, r.FailuresUnrepaired)
	if r.SpareKills > 0 {
		fmt.Fprintf(&b, "spare kills (never in communicator): %d\n", r.SpareKills)
	}
	if r.Shrinks > 0 {
		shrunk := 0
		for _, sp := range r.Spans {
			shrunk += sp.Shrunk
		}
		fmt.Fprintf(&b, "shrink events: %d (communicator compacted; %d slots shrunk away)\n",
			r.Shrinks, shrunk)
	}

	if len(r.Spans) > 0 {
		fmt.Fprintf(&b, "\nrecovery spans (virtual seconds):\n")
		fmt.Fprintf(&b, "%-5s %-9s %-4s %-10s %4s %6s %-10s %10s %10s %10s %10s %10s %10s\n",
			"span", "kind", "gen", "slots", "repl", "shrunk", "start", "detect", "comm", "rebuild", "restore", "recompute", "critical")
		for _, sp := range r.Spans {
			fmt.Fprintf(&b, "%-5d %-9s %-4d %-10s %4d %6d %-10.3f %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f\n",
				sp.Index, sp.Kind, sp.Generation, intsString(sp.FailedSlots),
				sp.Replaced, sp.Shrunk, sp.Start,
				sp.Phases.Detection, sp.Phases.CommRepair, sp.Phases.Rebuild,
				sp.Phases.Restore, sp.Phases.Recompute, sp.CriticalPath)
		}
		fmt.Fprintf(&b, "\nphase totals:")
		for _, name := range PhaseNames() {
			fmt.Fprintf(&b, "  %s %.4f", name, r.PhaseTotals.Get(name))
		}
		fmt.Fprintf(&b, "  (sum %.4f)\n", r.PhaseTotals.Total())
	}

	if len(r.Checkpoints) > 0 {
		scheduled := false
		for _, g := range r.Checkpoints {
			if g.FlushesQueued > 0 {
				scheduled = true
				break
			}
		}
		fmt.Fprintf(&b, "\ncheckpoint generations (veloc):\n")
		if scheduled {
			fmt.Fprintf(&b, "%-8s %6s %10s %10s %8s %7s %6s %10s %10s %8s\n",
				"version", "ckpts", "MiB", "scratch-s", "queued", "started", "done", "queue-s", "flush-s", "restores")
			for _, g := range r.Checkpoints {
				fmt.Fprintf(&b, "%-8d %6d %10.1f %10.4f %8d %7d %6d %10.4f %10.4f %8d\n",
					g.Version, g.Checkpoints, float64(g.Bytes)/(1<<20), g.ScratchSeconds,
					g.FlushesQueued, g.FlushesStarted, g.FlushesCompleted,
					g.QueueWaitSeconds, g.FlushSeconds, g.Restores)
			}
		} else {
			fmt.Fprintf(&b, "%-8s %6s %10s %10s %8s %6s %10s %8s\n",
				"version", "ckpts", "MiB", "scratch-s", "flushes", "done", "flush-s", "restores")
			for _, g := range r.Checkpoints {
				fmt.Fprintf(&b, "%-8d %6d %10.1f %10.4f %8d %6d %10.4f %8d\n",
					g.Version, g.Checkpoints, float64(g.Bytes)/(1<<20), g.ScratchSeconds,
					g.Flushes, g.FlushesCompleted, g.FlushSeconds, g.Restores)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func intsString(xs []int) string {
	if len(xs) == 0 {
		return "-"
	}
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	return b.String()
}

// Delta is the overhead comparison between an instrumented run and a
// baseline run (typically failure-injected vs failure-free, or the same
// cell under two strategies).
type Delta struct {
	WallSeconds        float64        `json:"wall_seconds_delta"`
	WallPct            float64        `json:"wall_pct"`
	FailuresRepaired   int            `json:"failures_repaired_delta"`
	PhaseTotals        PhaseBreakdown `json:"phase_totals_delta"`
	CheckpointsWritten int            `json:"checkpoints_delta"`
}

// Diff returns run - baseline: positive wall delta means the run was
// slower than the baseline.
func Diff(run, baseline *Report) Delta {
	d := Delta{
		WallSeconds:      run.WallSeconds - baseline.WallSeconds,
		FailuresRepaired: run.FailuresRepaired - baseline.FailuresRepaired,
	}
	if baseline.WallSeconds > 0 {
		d.WallPct = 100 * d.WallSeconds / baseline.WallSeconds
	}
	d.PhaseTotals = run.PhaseTotals
	d.PhaseTotals.Detection -= baseline.PhaseTotals.Detection
	d.PhaseTotals.CommRepair -= baseline.PhaseTotals.CommRepair
	d.PhaseTotals.Rebuild -= baseline.PhaseTotals.Rebuild
	d.PhaseTotals.Restore -= baseline.PhaseTotals.Restore
	d.PhaseTotals.Recompute -= baseline.PhaseTotals.Recompute
	for _, g := range run.Checkpoints {
		d.CheckpointsWritten += g.Checkpoints
	}
	for _, g := range baseline.Checkpoints {
		d.CheckpointsWritten -= g.Checkpoints
	}
	return d
}

// WriteTable writes the delta in the same human-readable style.
func (d Delta) WriteTable(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "\nvs baseline: wall %+.3fs (%+.2f%%)   repaired %+d   checkpoints %+d\n",
		d.WallSeconds, d.WallPct, d.FailuresRepaired, d.CheckpointsWritten)
	fmt.Fprintf(&b, "phase deltas:")
	for _, name := range PhaseNames() {
		fmt.Fprintf(&b, "  %s %+.4f", name, d.PhaseTotals.Get(name))
	}
	fmt.Fprintf(&b, "\n")
	_, err := io.WriteString(w, b.String())
	return err
}
