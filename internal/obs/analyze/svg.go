package analyze

import (
	"fmt"
	"strings"
)

// SVG geometry and palette. The categorical phase hues are assigned in
// fixed causal order (identity follows the phase, never its rank in the
// chart) and were validated for adjacent-pair CVD separation and contrast
// against the light surface; the kill marker uses the reserved serious-
// status red, never recycled as a sixth series.
const (
	svgLaneH   = 24
	svgBarH    = 14
	svgLeftW   = 170
	svgPlotW   = 860
	svgRightW  = 20
	svgTopH    = 64
	svgAxisH   = 34
	svgSurface = "#fcfcfb"
	svgInk     = "#0b0b0b"
	svgInkSoft = "#52514e"
	svgGrid    = "#e4e3df"
	svgKill    = "#e34948"
)

// svgPhaseColor maps each segment kind to its categorical hue.
var svgPhaseColor = map[string]string{
	PhaseDetection:  "#2a78d6",
	PhaseCommRepair: "#eb6834",
	PhaseRebuild:    "#1baf7a",
	PhaseRestore:    "#eda100",
	PhaseRecompute:  "#e87ba4",
	SegFlush:        "#8a8988", // neutral: data movement, not a recovery phase
}

// svgLegend lists the legend entries in fixed order.
var svgLegend = []struct{ kind, label string }{
	{PhaseDetection, "detection"},
	{PhaseCommRepair, "comm repair"},
	{PhaseRebuild, "rebuild"},
	{PhaseRestore, "restore"},
	{PhaseRecompute, "recompute"},
	{SegFlush, "flush"},
}

func svgNum(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
}

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// svgX maps a time to a plot x coordinate.
func (t *Timeline) svgX(x float64) float64 {
	span := t.End - t.Start
	if span <= 0 {
		return svgLeftW
	}
	return svgLeftW + (x-t.Start)/span*svgPlotW
}

// RenderSVG renders the timeline as a standalone SVG document: one lane
// per process under the world lane, phase-colored span segments, flush
// bars, and kill/checkpoint markers, with a time axis in virtual seconds.
// Output is deterministic for a given timeline.
func (t *Timeline) RenderSVG(title string) string {
	width := svgLeftW + svgPlotW + svgRightW
	height := svgTopH + len(t.Lanes)*svgLaneH + svgAxisH
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, sans-serif">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", width, height, svgSurface)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" font-weight="600" fill="%s">%s</text>`+"\n",
		svgLeftW, svgInk, svgEscape(title))

	// Legend: a swatch plus a visible text label per entry (identity is
	// never color-alone).
	x := svgLeftW
	for _, le := range svgLegend {
		fmt.Fprintf(&b, `<rect x="%d" y="32" width="12" height="12" rx="2" fill="%s"/>`+"\n", x, svgPhaseColor[le.kind])
		fmt.Fprintf(&b, `<text x="%d" y="42" font-size="11" fill="%s">%s</text>`+"\n", x+16, svgInkSoft, le.label)
		x += 16 + 8*len(le.label) + 18
	}
	fmt.Fprintf(&b, `<line x1="%d" y1="32" x2="%d" y2="44" stroke="%s" stroke-width="2"/>`+"\n", x+4, x+4, svgKill)
	fmt.Fprintf(&b, `<text x="%d" y="42" font-size="11" fill="%s">kill</text>`+"\n", x+12, svgInkSoft)

	// Time axis: five gridlines with labels in virtual seconds.
	plotBottom := svgTopH + len(t.Lanes)*svgLaneH
	for i := 0; i <= 4; i++ {
		tx := t.Start + (t.End-t.Start)*float64(i)/4
		px := t.svgX(tx)
		fmt.Fprintf(&b, `<line x1="%s" y1="%d" x2="%s" y2="%d" stroke="%s" stroke-width="1"/>`+"\n",
			svgNum(px), svgTopH, svgNum(px), plotBottom, svgGrid)
		fmt.Fprintf(&b, `<text x="%s" y="%d" font-size="10" text-anchor="middle" fill="%s">%ss</text>`+"\n",
			svgNum(px), plotBottom+16, svgInkSoft, svgNum(tx))
	}

	for i, l := range t.Lanes {
		laneTop := svgTopH + i*svgLaneH
		barY := laneTop + (svgLaneH-svgBarH)/2
		mid := laneTop + svgLaneH/2
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" text-anchor="end" fill="%s">%s</text>`+"\n",
			svgLeftW-8, mid+4, svgInk, svgEscape(l.Label))
		// A recessive baseline so empty lanes still read as lanes.
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1"/>`+"\n",
			svgLeftW, mid, svgLeftW+svgPlotW, mid, svgGrid)
		for _, s := range l.Segments {
			color, ok := svgPhaseColor[s.Kind]
			if !ok {
				continue
			}
			x0, x1 := t.svgX(s.Start), t.svgX(s.End)
			w := x1 - x0
			if w < 1 {
				w = 1 // a sub-pixel phase still deserves a visible sliver
			}
			fmt.Fprintf(&b, `<rect x="%s" y="%d" width="%s" height="%d" rx="2" fill="%s"><title>%s [%s, %s]s</title></rect>`+"\n",
				svgNum(x0), barY, svgNum(w), svgBarH, color,
				svgEscape(s.Kind), svgNum(s.Start), svgNum(s.End))
		}
		for _, m := range l.Marks {
			px := t.svgX(m.Time)
			switch m.Kind {
			case MarkKill:
				fmt.Fprintf(&b, `<line x1="%s" y1="%d" x2="%s" y2="%d" stroke="%s" stroke-width="2"><title>kill @%ss</title></line>`+"\n",
					svgNum(px), laneTop+2, svgNum(px), laneTop+svgLaneH-2, svgKill, svgNum(m.Time))
			case MarkRebuild, MarkShrink:
				fmt.Fprintf(&b, `<line x1="%s" y1="%d" x2="%s" y2="%d" stroke="%s" stroke-width="1.5" stroke-dasharray="3,2"><title>%s @%ss</title></line>`+"\n",
					svgNum(px), laneTop+2, svgNum(px), laneTop+svgLaneH-2, svgInkSoft,
					m.Kind, svgNum(m.Time))
			case MarkCheckpoint:
				fmt.Fprintf(&b, `<line x1="%s" y1="%d" x2="%s" y2="%d" stroke="%s" stroke-width="1.5"><title>checkpoint @%ss</title></line>`+"\n",
					svgNum(px), mid-3, svgNum(px), mid+3, svgInkSoft, svgNum(m.Time))
			}
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}
