package analyze

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/obs"
)

// ManifestName is the file a sweep directory may carry to tag each events
// file with the run that produced it. `cmd/chaos -out dir/` writes one;
// LoadSweep falls back to globbing *.jsonl when it is absent.
const ManifestName = "manifest.json"

// RunMeta tags one events file of a sweep directory with the campaign cell
// that produced it. Only Events is required; untagged runs aggregate under
// an unknown (mode × app) group.
type RunMeta struct {
	Seed  uint64 `json:"seed"`
	Mode  string `json:"mode,omitempty"`
	App   string `json:"app,omitempty"`
	Ranks int    `json:"ranks,omitempty"`
	// Events is the events JSONL file name, relative to the sweep
	// directory.
	Events string `json:"events"`
}

// Manifest is the schema of a sweep directory's manifest.json.
type Manifest struct {
	Runs []RunMeta `json:"runs"`
}

// WriteManifest writes the manifest as indented JSON.
func (m *Manifest) WriteManifest(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// Stats summarizes one sample set with the sweep's standard moments:
// count, mean, exact (order-statistic interpolated) p50/p99, and max. The
// zero value means "no samples"; quantiles over raw samples are exact,
// unlike the bucketed obs.Histogram.Quantile estimate used where samples
// are not retained.
type Stats struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// NewStats computes the summary of a sample set (zero Stats when empty).
func NewStats(samples []float64) Stats {
	if len(samples) == 0 {
		return Stats{}
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return Stats{
		Count: len(sorted),
		Mean:  sum / float64(len(sorted)),
		P50:   sampleQuantile(sorted, 0.5),
		P99:   sampleQuantile(sorted, 0.99),
		Max:   sorted[len(sorted)-1],
	}
}

// sampleQuantile interpolates linearly between order statistics (the
// "R-7" estimator), deterministic for a given sorted sample set.
func sampleQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	return sorted[lo] + (sorted[hi]-sorted[lo])*(pos-float64(lo))
}

// Span dispositions: how a recovery generation disposed of its failed
// slots. Mirrors the shrink-semantics taxonomy in OBSERVABILITY.md.
const (
	DispositionSpare  = "spare"  // every failed slot replaced by a spare
	DispositionMixed  = "mixed"  // last spares consumed, overflow compacted
	DispositionShrink = "shrink" // pure compaction, no spare left
)

// disposition classifies one span.
func disposition(sp Span) string {
	switch {
	case sp.Shrunk == 0:
		return DispositionSpare
	case sp.Replaced == 0:
		return DispositionShrink
	default:
		return DispositionMixed
	}
}

// SweepGroup aggregates the runs of one (mode × app) cell — or, for the
// overall group, every run of the sweep. Phase and critical-path stats are
// over spans; wall stats over runs; checkpoint/flush stats over the raw
// per-event samples of the group's runs.
type SweepGroup struct {
	Mode string `json:"mode,omitempty"`
	App  string `json:"app,omitempty"`

	Runs       int `json:"runs"`
	JobsFailed int `json:"jobs_failed,omitempty"`
	Spans      int `json:"spans"`

	FailuresInjected   int `json:"failures_injected"`
	FailuresRepaired   int `json:"failures_repaired"`
	FailuresUnrepaired int `json:"failures_unrepaired,omitempty"`
	SlotsShrunk        int `json:"slots_shrunk,omitempty"`

	// Span dispositions: spare-substitution vs mixed vs pure-shrink
	// recovery generations (see OBSERVABILITY.md's shrink semantics).
	SpareSpans  int `json:"spare_spans,omitempty"`
	MixedSpans  int `json:"mixed_spans,omitempty"`
	ShrinkSpans int `json:"shrink_spans,omitempty"`

	// Phases maps each analyze phase name to its per-span duration stats;
	// CriticalPath summarizes end-to-end span cost, with the
	// per-disposition split in CriticalByDisposition.
	Phases                map[string]Stats `json:"phases"`
	CriticalPath          Stats            `json:"critical_path"`
	CriticalByDisposition map[string]Stats `json:"critical_by_disposition,omitempty"`

	// Wall is per-run wall seconds. The remaining stats are per-sample
	// checkpoint/flush latencies across the group's event logs: scratch
	// copy seconds per veloc.checkpoint, flush duration per
	// veloc.flush_end, scheduler queue wait per veloc.flush_start.
	Wall           Stats `json:"wall_seconds"`
	ScratchSeconds Stats `json:"scratch_seconds,omitempty"`
	FlushSeconds   Stats `json:"flush_seconds,omitempty"`
	QueueWait      Stats `json:"flush_queue_wait_seconds,omitempty"`

	// SDC ledger totals summed across the group's runs (zero unless the
	// sweep injected bit flips; see OBSERVABILITY.md's SDC events).
	SDCInjected  int `json:"sdc_injected,omitempty"`
	SDCDetected  int `json:"sdc_detected,omitempty"`
	SDCCorrected int `json:"sdc_corrected,omitempty"`
	SDCEscaped   int `json:"sdc_escaped,omitempty"`
	SDCReplays   int `json:"sdc_replays,omitempty"`
	SDCVotes     int `json:"sdc_votes,omitempty"`

	// Checkpoint/flush ledger totals summed across the group's runs.
	Checkpoints      int `json:"checkpoints"`
	Flushes          int `json:"flushes"`
	FlushesCompleted int `json:"flushes_completed"`
	FlushesQueued    int `json:"flushes_queued,omitempty"`
	FlushesStarted   int `json:"flushes_started,omitempty"`
	FlushesDiscarded int `json:"flushes_discarded,omitempty"`
	Restores         int `json:"restores"`
}

// SweepRun is one ingested run: its manifest tags and its single-run
// analysis.
type SweepRun struct {
	Meta   RunMeta `json:"meta"`
	Report *Report `json:"report"`

	// Raw latency samples retained for exact group quantiles.
	scratch, flushDur, queueWait []float64
}

// SweepReport is the cross-run aggregation of a sweep directory: the
// overall group plus one group per (mode × app) cell, sorted by mode then
// app.
type SweepReport struct {
	Dir      string       `json:"dir,omitempty"`
	Runs     int          `json:"runs"`
	Manifest bool         `json:"manifest"`
	Overall  SweepGroup   `json:"overall"`
	Groups   []SweepGroup `json:"groups"`
}

// LoadSweep ingests a directory of events JSONL files — `cmd/chaos -out
// dir/` output, or any collection of single-run logs — and aggregates
// them. With a manifest.json each run is tagged by its (mode × app) cell;
// without one every *.jsonl file (sorted by name) joins the sweep
// untagged.
func LoadSweep(dir string) (*SweepReport, error) {
	metas, hasManifest, err := sweepMetas(dir)
	if err != nil {
		return nil, err
	}
	if len(metas) == 0 {
		return nil, fmt.Errorf("analyze: no events files in %s", dir)
	}
	runs := make([]SweepRun, 0, len(metas))
	for _, meta := range metas {
		run, err := loadSweepRun(dir, meta)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	rep := SweepFromRuns(runs)
	rep.Dir = dir
	rep.Manifest = hasManifest
	return rep, nil
}

// sweepMetas resolves the directory's run list: manifest order when a
// manifest exists, otherwise every *.jsonl sorted by name.
func sweepMetas(dir string) ([]RunMeta, bool, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	switch {
	case err == nil:
		var m Manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, false, fmt.Errorf("analyze: %s: %w", ManifestName, err)
		}
		return m.Runs, true, nil
	case errors.Is(err, os.ErrNotExist):
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, false, fmt.Errorf("analyze: %w", err)
		}
		var metas []RunMeta
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".jsonl") {
				continue
			}
			metas = append(metas, RunMeta{Events: e.Name()})
		}
		sort.Slice(metas, func(i, j int) bool { return metas[i].Events < metas[j].Events })
		return metas, false, nil
	default:
		return nil, false, fmt.Errorf("analyze: %w", err)
	}
}

func loadSweepRun(dir string, meta RunMeta) (SweepRun, error) {
	f, err := os.Open(filepath.Join(dir, meta.Events))
	if err != nil {
		return SweepRun{}, fmt.Errorf("analyze: %w", err)
	}
	defer f.Close()
	events, err := ReadJSONL(f)
	if err != nil {
		return SweepRun{}, fmt.Errorf("analyze: %s: %w", meta.Events, err)
	}
	rep, err := Analyze(events)
	if err != nil {
		return SweepRun{}, fmt.Errorf("analyze: %s: %w", meta.Events, err)
	}
	run := SweepRun{Meta: meta, Report: rep}
	for _, e := range events {
		switch e.Name {
		case obs.EvVeloCCheckpoint:
			if s, ok := attrNum(e, "scratch_seconds"); ok {
				run.scratch = append(run.scratch, s)
			}
		case obs.EvVeloCFlushEnd:
			if s, ok := attrNum(e, "seconds"); ok {
				run.flushDur = append(run.flushDur, s)
			}
		case obs.EvVeloCFlushStart:
			if w, ok := attrNum(e, "wait_seconds"); ok {
				run.queueWait = append(run.queueWait, w)
			}
		}
	}
	return run, nil
}

// SweepFromRuns aggregates already-analyzed runs: the entry point for
// in-process sweeps (tests, the chaos engine) that never touch disk.
func SweepFromRuns(runs []SweepRun) *SweepReport {
	rep := &SweepReport{Runs: len(runs)}
	rep.Overall = buildGroup("", "", runs)
	byCell := map[[2]string][]SweepRun{}
	for _, r := range runs {
		key := [2]string{r.Meta.Mode, r.Meta.App}
		byCell[key] = append(byCell[key], r)
	}
	keys := make([][2]string, 0, len(byCell))
	for k := range byCell {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		rep.Groups = append(rep.Groups, buildGroup(k[0], k[1], byCell[k]))
	}
	return rep
}

func buildGroup(mode, app string, runs []SweepRun) SweepGroup {
	g := SweepGroup{Mode: mode, App: app, Runs: len(runs), Phases: map[string]Stats{}}
	phaseSamples := map[string][]float64{}
	var critical, wall []float64
	critByDisp := map[string][]float64{}
	var scratch, flushDur, queueWait []float64
	for _, r := range runs {
		rep := r.Report
		if rep.JobFailed {
			g.JobsFailed++
		}
		g.FailuresInjected += rep.FailuresInjected
		g.FailuresRepaired += rep.FailuresRepaired
		g.FailuresUnrepaired += rep.FailuresUnrepaired
		g.SDCInjected += rep.SDCInjected
		g.SDCDetected += rep.SDCDetected
		g.SDCCorrected += rep.SDCCorrected
		g.SDCEscaped += rep.SDCEscaped
		g.SDCReplays += rep.SDCReplays
		g.SDCVotes += rep.SDCVotes
		wall = append(wall, rep.WallSeconds)
		for _, sp := range rep.Spans {
			g.Spans++
			g.SlotsShrunk += sp.Shrunk
			d := disposition(sp)
			switch d {
			case DispositionSpare:
				g.SpareSpans++
			case DispositionMixed:
				g.MixedSpans++
			case DispositionShrink:
				g.ShrinkSpans++
			}
			for _, name := range PhaseNames() {
				phaseSamples[name] = append(phaseSamples[name], sp.Phases.Get(name))
			}
			critical = append(critical, sp.CriticalPath)
			critByDisp[d] = append(critByDisp[d], sp.CriticalPath)
		}
		for _, cg := range rep.Checkpoints {
			g.Checkpoints += cg.Checkpoints
			g.Flushes += cg.Flushes
			g.FlushesCompleted += cg.FlushesCompleted
			g.FlushesQueued += cg.FlushesQueued
			g.FlushesStarted += cg.FlushesStarted
			g.FlushesDiscarded += cg.FlushesDiscarded
			g.Restores += cg.Restores
		}
		scratch = append(scratch, r.scratch...)
		flushDur = append(flushDur, r.flushDur...)
		queueWait = append(queueWait, r.queueWait...)
	}
	for _, name := range PhaseNames() {
		g.Phases[name] = NewStats(phaseSamples[name])
	}
	g.CriticalPath = NewStats(critical)
	if len(critByDisp) > 0 {
		g.CriticalByDisposition = map[string]Stats{}
		for d, samples := range critByDisp {
			g.CriticalByDisposition[d] = NewStats(samples)
		}
	}
	g.Wall = NewStats(wall)
	g.ScratchSeconds = NewStats(scratch)
	g.FlushSeconds = NewStats(flushDur)
	g.QueueWait = NewStats(queueWait)
	return g
}

// WriteJSON writes the sweep report as indented JSON.
func (s *SweepReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// groupName renders a group's cell for the table ("?" for untagged runs).
func groupCell(g *SweepGroup) (mode, app string) {
	mode, app = g.Mode, g.App
	if mode == "" {
		mode = "?"
	}
	if app == "" {
		app = "?"
	}
	return mode, app
}

// WriteTable writes the human-readable sweep breakdown: the run roster
// summary, the overall phase-duration distribution, the per-(mode × app)
// phase table, and the checkpoint/flush latency distributions.
func (s *SweepReport) WriteTable(w io.Writer) error {
	var b strings.Builder
	src := "unmanifested *.jsonl"
	if s.Manifest {
		src = ManifestName
	}
	fmt.Fprintf(&b, "sweep: %d runs", s.Runs)
	if s.Dir != "" {
		fmt.Fprintf(&b, " from %s", s.Dir)
	}
	fmt.Fprintf(&b, " (%s)\n", src)
	o := &s.Overall
	fmt.Fprintf(&b, "failures: injected %d, repaired %d, unrepaired %d; jobs failed %d\n",
		o.FailuresInjected, o.FailuresRepaired, o.FailuresUnrepaired, o.JobsFailed)
	fmt.Fprintf(&b, "spans: %d (disposition: %d spare, %d mixed, %d shrink; %d slots shrunk away)\n",
		o.Spans, o.SpareSpans, o.MixedSpans, o.ShrinkSpans, o.SlotsShrunk)
	if o.SDCInjected > 0 {
		fmt.Fprintf(&b, "sdc: injected %d, detected %d, corrected %d, escaped %d (%d replays, %d votes)\n",
			o.SDCInjected, o.SDCDetected, o.SDCCorrected, o.SDCEscaped, o.SDCReplays, o.SDCVotes)
	}

	fmt.Fprintf(&b, "\noverall phase durations (virtual seconds, per span):\n")
	writePhaseStats(&b, o)

	if len(s.Groups) > 1 || (len(s.Groups) == 1 && (s.Groups[0].Mode != "" || s.Groups[0].App != "")) {
		fmt.Fprintf(&b, "\nper-(mode × app) phase durations (virtual seconds, per span):\n")
		fmt.Fprintf(&b, "%-14s %-9s %5s %5s %-12s %6s %10s %10s %10s %10s\n",
			"mode", "app", "runs", "spans", "phase", "count", "mean", "p50", "p99", "max")
		for i := range s.Groups {
			g := &s.Groups[i]
			mode, app := groupCell(g)
			rows := append(PhaseNames(), "critical_path")
			for _, name := range rows {
				st := g.CriticalPath
				if name != "critical_path" {
					st = g.Phases[name]
				}
				fmt.Fprintf(&b, "%-14s %-9s %5d %5d %-12s %6d %10.4f %10.4f %10.4f %10.4f\n",
					mode, app, g.Runs, g.Spans, name, st.Count, st.Mean, st.P50, st.P99, st.Max)
			}
		}

		fmt.Fprintf(&b, "\nper-(mode × app) summary:\n")
		fmt.Fprintf(&b, "%-14s %-9s %5s %5s %6s %6s %6s %7s %10s %10s\n",
			"mode", "app", "runs", "spans", "spare", "mixed", "shrink", "failed", "wall(mean)", "crit(p99)")
		for i := range s.Groups {
			g := &s.Groups[i]
			mode, app := groupCell(g)
			fmt.Fprintf(&b, "%-14s %-9s %5d %5d %6d %6d %6d %7d %10.3f %10.4f\n",
				mode, app, g.Runs, g.Spans, g.SpareSpans, g.MixedSpans, g.ShrinkSpans,
				g.JobsFailed, g.Wall.Mean, g.CriticalPath.P99)
		}
	}

	if o.SDCInjected > 0 {
		fmt.Fprintf(&b, "\nper-(mode × app) SDC ledger:\n")
		fmt.Fprintf(&b, "%-14s %-9s %5s %9s %9s %9s %8s %8s %6s\n",
			"mode", "app", "runs", "injected", "detected", "corrected", "escaped", "replays", "votes")
		for i := range s.Groups {
			g := &s.Groups[i]
			if g.SDCInjected == 0 {
				continue
			}
			mode, app := groupCell(g)
			fmt.Fprintf(&b, "%-14s %-9s %5d %9d %9d %9d %8d %8d %6d\n",
				mode, app, g.Runs, g.SDCInjected, g.SDCDetected, g.SDCCorrected,
				g.SDCEscaped, g.SDCReplays, g.SDCVotes)
		}
	}

	fmt.Fprintf(&b, "\ncheckpoint/flush latency distributions (virtual seconds, per sample):\n")
	fmt.Fprintf(&b, "%-26s %6s %10s %10s %10s %10s\n", "sample", "count", "mean", "p50", "p99", "max")
	for _, row := range []struct {
		name string
		st   Stats
	}{
		{"scratch_seconds", o.ScratchSeconds},
		{"flush_seconds", o.FlushSeconds},
		{"flush_queue_wait_seconds", o.QueueWait},
	} {
		if row.st.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-26s %6d %10.4f %10.4f %10.4f %10.4f\n",
			row.name, row.st.Count, row.st.Mean, row.st.P50, row.st.P99, row.st.Max)
	}
	fmt.Fprintf(&b, "flush ledger: %d checkpoints, %d flushes (%d completed", o.Checkpoints, o.Flushes, o.FlushesCompleted)
	if o.FlushesQueued > 0 {
		fmt.Fprintf(&b, "; scheduler: %d queued, %d started, %d discarded", o.FlushesQueued, o.FlushesStarted, o.FlushesDiscarded)
	}
	fmt.Fprintf(&b, "), %d restores\n", o.Restores)
	_, err := io.WriteString(w, b.String())
	return err
}

func writePhaseStats(b *strings.Builder, g *SweepGroup) {
	fmt.Fprintf(b, "%-14s %6s %10s %10s %10s %10s\n", "phase", "count", "mean", "p50", "p99", "max")
	for _, name := range PhaseNames() {
		st := g.Phases[name]
		fmt.Fprintf(b, "%-14s %6d %10.4f %10.4f %10.4f %10.4f\n",
			name, st.Count, st.Mean, st.P50, st.P99, st.Max)
	}
	st := g.CriticalPath
	fmt.Fprintf(b, "%-14s %6d %10.4f %10.4f %10.4f %10.4f\n",
		"critical_path", st.Count, st.Mean, st.P50, st.P99, st.Max)
	for _, d := range []string{DispositionSpare, DispositionMixed, DispositionShrink} {
		if st, ok := g.CriticalByDisposition[d]; ok {
			fmt.Fprintf(b, "%-14s %6d %10.4f %10.4f %10.4f %10.4f\n",
				"  crit/"+d, st.Count, st.Mean, st.P50, st.P99, st.Max)
		}
	}
}
