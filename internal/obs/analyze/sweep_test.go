package analyze

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// writeRunFile re-emits an event log through a Recorder into
// <dir>/<name>, the JSONL layout LoadSweep ingests.
func writeRunFile(t *testing.T, dir, name string, events []obs.Event) {
	t.Helper()
	r := obs.New()
	for _, e := range events {
		r.Emit(e.Time, e.Rank, e.Layer, e.Name, e.Attrs...)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := r.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
}

// spareEpisodeLog is a single spare-substitution run (one fenix span,
// disposition "spare") at binary-exact times.
func spareEpisodeLog() []obs.Event {
	var b evb
	b.add(0, -1, obs.LayerMPI, obs.EvJobLaunch,
		obs.KV("attempt", 0), obs.KV("ranks", 5), obs.KV("nodes", 5))
	b.add(1.0, 0, obs.LayerVeloC, obs.EvVeloCCheckpoint,
		obs.KV("name", "app"), obs.KV("version", 9), obs.KV("bytes", 1024),
		obs.KV("scratch_seconds", 0.25))
	b.add(1.0, 0, obs.LayerVeloC, obs.EvVeloCFlushBegin,
		obs.KV("name", "app"), obs.KV("version", 9), obs.KV("bytes", 1024))
	b.add(1.5, 0, obs.LayerVeloC, obs.EvVeloCFlushEnd,
		obs.KV("name", "app"), obs.KV("version", 9), obs.KV("bytes", 1024),
		obs.KV("seconds", 0.5))
	fenixEpisode(&b)
	b.add(6.0, -1, obs.LayerMPI, obs.EvJobEnd,
		obs.KV("launches", 1), obs.KV("failed", false), obs.KV("wall_seconds", 6.0))
	return b.events
}

func TestNewStatsExact(t *testing.T) {
	st := NewStats([]float64{4, 1, 3, 2})
	if st.Count != 4 || st.Mean != 2.5 || st.Max != 4 {
		t.Errorf("stats = %+v", st)
	}
	if st.P50 != 2.5 {
		t.Errorf("p50 = %v, want 2.5 (R-7 midpoint)", st.P50)
	}
	// R-7 on n=4: pos = 0.99*3 lands between the 3rd and 4th order
	// statistics; 0.99 is not binary-exact, so compare with a tolerance.
	if math.Abs(st.P99-3.97) > 1e-12 {
		t.Errorf("p99 = %v, want ~3.97", st.P99)
	}
	if one := NewStats([]float64{7}); one.P50 != 7 || one.P99 != 7 || one.Max != 7 {
		t.Errorf("single-sample stats = %+v", one)
	}
	if zero := NewStats(nil); zero != (Stats{}) {
		t.Errorf("empty stats = %+v, want zero value", zero)
	}
}

func TestSweepManifestGrouping(t *testing.T) {
	dir := t.TempDir()
	writeRunFile(t, dir, "seed-0.jsonl", spareEpisodeLog())
	writeRunFile(t, dir, "seed-20.jsonl", spareEpisodeLog())
	writeRunFile(t, dir, "seed-7.jsonl", twoWaveShrinkLog())
	m := Manifest{Runs: []RunMeta{
		{Seed: 0, Mode: "iteration", App: "heatdis", Ranks: 4, Events: "seed-0.jsonl"},
		{Seed: 20, Mode: "iteration", App: "minimd", Ranks: 4, Events: "seed-20.jsonl"},
		{Seed: 7, Mode: "storm-shrink", App: "heatdis", Ranks: 4, Events: "seed-7.jsonl"},
	}}
	f, err := os.Create(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteManifest(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	sweep, err := LoadSweep(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !sweep.Manifest || sweep.Runs != 3 {
		t.Fatalf("sweep = runs %d manifest %v", sweep.Runs, sweep.Manifest)
	}
	// Overall: 2 spare spans (the two episodes) + mixed + pure-shrink from
	// the two-wave log.
	o := sweep.Overall
	if o.Spans != 4 || o.SpareSpans != 2 || o.MixedSpans != 1 || o.ShrinkSpans != 1 {
		t.Errorf("overall spans: %+v", o)
	}
	if o.SlotsShrunk != 3 || o.FailuresInjected != 6 || o.FailuresRepaired != 6 {
		t.Errorf("overall failure accounting: %+v", o)
	}
	if got := o.Phases[PhaseDetection]; got.Count != 4 {
		t.Errorf("detection stats = %+v, want one sample per span", got)
	}
	if o.CriticalPath.Count != 4 || o.Wall.Count != 3 {
		t.Errorf("critical %d / wall %d samples", o.CriticalPath.Count, o.Wall.Count)
	}
	if o.CriticalByDisposition[DispositionSpare].Count != 2 {
		t.Errorf("crit by disposition: %+v", o.CriticalByDisposition)
	}
	// Per-sample latency stats come from the raw event attributes of every
	// run: two spare episodes contribute one scratch/flush sample each.
	if o.ScratchSeconds.Count != 2 || o.ScratchSeconds.Mean != 0.25 {
		t.Errorf("scratch stats = %+v", o.ScratchSeconds)
	}
	if o.FlushSeconds.Count != 2 || o.FlushSeconds.Max != 0.5 {
		t.Errorf("flush stats = %+v", o.FlushSeconds)
	}

	// Groups sort by (mode, app): iteration/heatdis, iteration/minimd,
	// storm-shrink/heatdis.
	if len(sweep.Groups) != 3 {
		t.Fatalf("got %d groups, want 3: %+v", len(sweep.Groups), sweep.Groups)
	}
	wantCells := [][2]string{
		{"iteration", "heatdis"}, {"iteration", "minimd"}, {"storm-shrink", "heatdis"},
	}
	for i, want := range wantCells {
		g := sweep.Groups[i]
		if g.Mode != want[0] || g.App != want[1] {
			t.Errorf("group %d = (%s, %s), want %v", i, g.Mode, g.App, want)
		}
	}
	if g := sweep.Groups[2]; g.Runs != 1 || g.Spans != 2 || g.MixedSpans != 1 || g.ShrinkSpans != 1 {
		t.Errorf("storm-shrink group: %+v", g)
	}

	var tbl strings.Builder
	if err := sweep.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	text := tbl.String()
	for _, want := range []string{
		"sweep: 3 runs", ManifestName,
		"per-(mode × app) phase durations", "storm-shrink", "minimd",
		"critical_path", "crit/spare", "crit/shrink",
		"checkpoint/flush latency distributions", "flush ledger",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("sweep table missing %q:\n%s", want, text)
		}
	}
}

func TestSweepNoManifestFallback(t *testing.T) {
	dir := t.TempDir()
	writeRunFile(t, dir, "b.jsonl", spareEpisodeLog())
	writeRunFile(t, dir, "a.jsonl", spareEpisodeLog())
	sweep, err := LoadSweep(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Manifest || sweep.Runs != 2 {
		t.Fatalf("sweep = runs %d manifest %v, want unmanifested pair", sweep.Runs, sweep.Manifest)
	}
	if len(sweep.Groups) != 1 || sweep.Groups[0].Mode != "" || sweep.Groups[0].App != "" {
		t.Errorf("untagged runs must pool into one unknown cell: %+v", sweep.Groups)
	}
	var tbl strings.Builder
	if err := sweep.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "unmanifested") {
		t.Errorf("table does not flag the missing manifest:\n%s", tbl.String())
	}
}

func TestSweepEmptyDir(t *testing.T) {
	if _, err := LoadSweep(t.TempDir()); err == nil {
		t.Error("empty sweep directory accepted")
	}
	if _, err := LoadSweep(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("nonexistent sweep directory accepted")
	}
}

func TestSweepJSONSchema(t *testing.T) {
	dir := t.TempDir()
	writeRunFile(t, dir, "seed-0.jsonl", spareEpisodeLog())
	sweep, err := LoadSweep(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := sweep.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(out.String()), &decoded); err != nil {
		t.Fatalf("sweep JSON does not parse: %v", err)
	}
	for _, key := range []string{"dir", "runs", "manifest", "overall", "groups"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("sweep JSON missing key %q", key)
		}
	}
	overall := decoded["overall"].(map[string]any)
	for _, key := range []string{"phases", "critical_path", "wall_seconds", "spans"} {
		if _, ok := overall[key]; !ok {
			t.Errorf("overall group JSON missing key %q", key)
		}
	}
	phases := overall["phases"].(map[string]any)
	for _, name := range PhaseNames() {
		if _, ok := phases[name]; !ok {
			t.Errorf("phases JSON missing %q", name)
		}
	}
}
