package analyze

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Timeline is the Gantt-style view of one run: a world lane carrying each
// recovery span's phase segments, plus one lane per process (world rank)
// with its restore/recompute/flush activity and kill/detect/checkpoint
// marks. It is built purely from the ordered event log plus the span
// analysis, so the same timeline renders identically for a live run and a
// replayed events file — byte-identical output is a test invariant.
type Timeline struct {
	// Start and End bound the rendered window in virtual seconds (the
	// first event time and the job's wall clock).
	Start float64 `json:"start_s"`
	End   float64 `json:"end_s"`
	Lanes []Lane  `json:"lanes"`
}

// Lane is one horizontal band of the timeline.
type Lane struct {
	// Rank is the world rank, or -1 for the world lane.
	Rank int `json:"rank"`
	// Label annotates the lane: "world", "rank 3", a spare's adopted
	// logical slot ("rank 4 → slot 1 g1"), or a shrunk-away slot
	// ("rank 2 (shrunk g2)").
	Label    string    `json:"label"`
	Segments []Segment `json:"segments,omitempty"`
	Marks    []Mark    `json:"marks,omitempty"`
}

// Segment is one colored interval of a lane. World-lane kinds are the
// five phase names; rank lanes reuse PhaseRestore/PhaseRecompute for
// their own restore/recompute activity and add SegFlush.
type Segment struct {
	Kind  string  `json:"kind"`
	Start float64 `json:"start_s"`
	End   float64 `json:"end_s"`
}

// SegFlush is the rank-lane segment kind for an in-flight PFS flush.
const SegFlush = "flush"

// Mark is one point annotation on a lane.
type Mark struct {
	Kind string  `json:"kind"`
	Time float64 `json:"time_s"`
}

// Mark kinds.
const (
	MarkKill       = "kill"       // mpi.rank_exit: the process died
	MarkDetect     = "detect"     // mpi.failure_detected at the observing rank
	MarkCheckpoint = "checkpoint" // veloc.checkpoint committed to scratch
	MarkRebuild    = "rebuild"    // fenix.rebuild (spare substitution), world lane
	MarkShrink     = "shrink"     // a rebuild that compacted slots away, world lane
)

// BuildTimeline derives the Gantt view from an event log and its span
// analysis (rep must be Analyze's output over the same events).
func BuildTimeline(events []obs.Event, rep *Report) *Timeline {
	sorted := make([]obs.Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Time != sorted[j].Time {
			return sorted[i].Time < sorted[j].Time
		}
		return sorted[i].Seq < sorted[j].Seq
	})
	events = sorted

	tl := &Timeline{End: rep.WallSeconds}
	if len(events) > 0 {
		tl.Start = events[0].Time
		if last := events[len(events)-1].Time; last > tl.End {
			tl.End = last
		}
	}

	// World lane: per-span phase segments and the repair marker.
	world := Lane{Rank: -1, Label: "world"}
	for _, sp := range rep.Spans {
		t := sp.Start
		for _, name := range PhaseNames() {
			d := sp.Phases.Get(name)
			if name == PhaseRecompute {
				// Recompute is anchored to the span end, not chained after
				// restore: restoration and re-execution overlap across ranks.
				if d > 0 {
					world.Segments = append(world.Segments, Segment{Kind: name, Start: sp.End - d, End: sp.End})
				}
				continue
			}
			if d > 0 {
				world.Segments = append(world.Segments, Segment{Kind: name, Start: t, End: t + d})
			}
			t += d
		}
		kind := MarkRebuild
		if sp.Shrunk > 0 {
			kind = MarkShrink
		}
		world.Marks = append(world.Marks, Mark{Kind: kind, Time: sp.Repair})
	}

	// Rank lanes: pair begin/end events per rank, collect point marks.
	lanes := map[int]*Lane{}
	lane := func(r int) *Lane {
		l, ok := lanes[r]
		if !ok {
			l = &Lane{Rank: r, Label: fmt.Sprintf("rank %d", r)}
			lanes[r] = l
		}
		return l
	}
	// The world's original members always get a lane, even when idle.
	for r := 0; r < rep.Ranks; r++ {
		lane(r)
	}
	restoreBegin := map[int]float64{}
	recomputeBegin := map[int]float64{}
	type flushKey struct{ rank, version int }
	flushBegin := map[flushKey]float64{}
	adopted := map[int]string{} // world rank -> promotion note
	for _, e := range events {
		switch e.Name {
		case obs.EvRankExit:
			lane(e.Rank).Marks = append(lane(e.Rank).Marks, Mark{Kind: MarkKill, Time: e.Time})
		case obs.EvFailureDetected:
			lane(e.Rank).Marks = append(lane(e.Rank).Marks, Mark{Kind: MarkDetect, Time: e.Time})
		case obs.EvVeloCCheckpoint:
			lane(e.Rank).Marks = append(lane(e.Rank).Marks, Mark{Kind: MarkCheckpoint, Time: e.Time})
		case obs.EvKRRestoreBegin:
			restoreBegin[e.Rank] = e.Time
		case obs.EvKRRestoreEnd:
			if b, ok := restoreBegin[e.Rank]; ok {
				lane(e.Rank).Segments = append(lane(e.Rank).Segments, Segment{Kind: PhaseRestore, Start: b, End: e.Time})
				delete(restoreBegin, e.Rank)
			}
		case obs.EvRecomputeBegin:
			recomputeBegin[e.Rank] = e.Time
		case obs.EvRecomputeEnd:
			if b, ok := recomputeBegin[e.Rank]; ok {
				lane(e.Rank).Segments = append(lane(e.Rank).Segments, Segment{Kind: PhaseRecompute, Start: b, End: e.Time})
				delete(recomputeBegin, e.Rank)
			}
		case obs.EvVeloCFlushBegin, obs.EvVeloCFlushStart:
			// Classic flushes emit flush_begin only; scheduled ones emit
			// flush_begin at submit and flush_start when the daemon picks the
			// job up — the later open wins, so the segment shows I/O time,
			// not queue time.
			v, _ := attrInt(e, "version")
			flushBegin[flushKey{e.Rank, v}] = e.Time
		case obs.EvVeloCFlushEnd:
			v, _ := attrInt(e, "version")
			if b, ok := flushBegin[flushKey{e.Rank, v}]; ok {
				lane(e.Rank).Segments = append(lane(e.Rank).Segments, Segment{Kind: SegFlush, Start: b, End: e.Time})
				delete(flushBegin, flushKey{e.Rank, v})
			}
		case obs.EvFenixRoleChange:
			if to, ok := attrString(e, "to"); ok && to == "recovered" {
				logical, _ := attrInt(e, "logical_rank")
				gen, _ := attrInt(e, "generation")
				if _, dup := adopted[e.Rank]; !dup {
					adopted[e.Rank] = fmt.Sprintf("rank %d → slot %d g%d", e.Rank, logical, gen)
				}
			}
		}
	}
	for r, label := range adopted {
		lane(r).Label = label
	}

	// Shrunk-away slots: failed slots of a compacting span that no spare
	// re-adopted keep their lane but are labeled with the compacting
	// generation (world rank == logical slot for original members).
	for _, sp := range rep.Spans {
		if sp.Shrunk == 0 {
			continue
		}
		refilled := map[int]bool{}
		for _, e := range events {
			if e.Name != obs.EvFenixRoleChange {
				continue
			}
			to, _ := attrString(e, "to")
			gen, _ := attrInt(e, "generation")
			if to == "recovered" && gen == sp.Generation {
				logical, _ := attrInt(e, "logical_rank")
				refilled[logical] = true
			}
		}
		for _, slot := range sp.FailedSlots {
			if !refilled[slot] && slot < rep.Ranks {
				lane(slot).Label = fmt.Sprintf("rank %d (shrunk g%d)", slot, sp.Generation)
			}
		}
	}

	ranks := make([]int, 0, len(lanes))
	for r := range lanes {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	tl.Lanes = append(tl.Lanes, world)
	for _, r := range ranks {
		tl.Lanes = append(tl.Lanes, *lanes[r])
	}
	return tl
}

// ASCII cell characters, one per segment/mark kind. Marks paint over
// segments; within each class, later table entries win on collision.
var asciiSegment = map[string]byte{
	PhaseDetection:  'd',
	PhaseCommRepair: 'c',
	PhaseRebuild:    'b',
	PhaseRestore:    'r',
	PhaseRecompute:  'w',
	SegFlush:        'f',
}

var asciiMark = map[string]byte{
	MarkCheckpoint: 'o',
	MarkDetect:     '!',
	MarkRebuild:    '^',
	MarkShrink:     'v',
	MarkKill:       'X',
}

// col maps a time to a plot column in [0, width).
func (t *Timeline) col(x float64, width int) int {
	span := t.End - t.Start
	if span <= 0 {
		return 0
	}
	c := int((x - t.Start) / span * float64(width))
	if c < 0 {
		c = 0
	}
	if c >= width {
		c = width - 1
	}
	return c
}

// RenderASCII renders the timeline as a fixed-width Gantt chart (width
// plot columns; 100 when width <= 0). Output is deterministic for a given
// timeline: same run, same bytes.
func (t *Timeline) RenderASCII(width int) string {
	if width <= 0 {
		width = 100
	}
	var b strings.Builder
	span := t.End - t.Start
	fmt.Fprintf(&b, "timeline [%.3f, %.3f]s  (1 col ≈ %.4fs)\n", t.Start, t.End, span/float64(width))

	labelW := 0
	for _, l := range t.Lanes {
		if len(l.Label) > labelW {
			labelW = len(l.Label)
		}
	}
	for _, l := range t.Lanes {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range l.Segments {
			ch, ok := asciiSegment[s.Kind]
			if !ok {
				continue
			}
			for c := t.col(s.Start, width); c <= t.col(s.End, width); c++ {
				row[c] = ch
			}
		}
		for _, m := range l.Marks {
			if ch, ok := asciiMark[m.Kind]; ok {
				row[t.col(m.Time, width)] = ch
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", labelW, l.Label, row)
	}
	b.WriteString("legend: d detection  c comm_repair  b rebuild  r restore  w recompute  f flush\n")
	b.WriteString("        o checkpoint  ! detect  X kill  ^ rebuild  v shrink  . idle\n")
	return b.String()
}
