package analyze

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// spareTimelineLog is the fenixEpisode run with the spare's role_change,
// so the adopted-slot lane label applies.
func spareTimelineLog() []obs.Event {
	var b evb
	b.add(0, -1, obs.LayerMPI, obs.EvJobLaunch,
		obs.KV("attempt", 0), obs.KV("ranks", 5), obs.KV("nodes", 5))
	b.add(1.0, 0, obs.LayerVeloC, obs.EvVeloCCheckpoint,
		obs.KV("name", "app"), obs.KV("version", 9), obs.KV("bytes", 1024),
		obs.KV("scratch_seconds", 0.25))
	b.add(1.0, 0, obs.LayerVeloC, obs.EvVeloCFlushBegin,
		obs.KV("name", "app"), obs.KV("version", 9), obs.KV("bytes", 1024))
	b.add(1.5, 0, obs.LayerVeloC, obs.EvVeloCFlushEnd,
		obs.KV("name", "app"), obs.KV("version", 9), obs.KV("bytes", 1024),
		obs.KV("seconds", 0.5))
	fenixEpisode(&b)
	b.add(3.5, 4, obs.LayerFenix, obs.EvFenixRoleChange,
		obs.KV("from", "spare"), obs.KV("to", "recovered"),
		obs.KV("logical_rank", 1), obs.KV("generation", 1))
	b.add(6.0, -1, obs.LayerMPI, obs.EvJobEnd,
		obs.KV("launches", 1), obs.KV("failed", false), obs.KV("wall_seconds", 6.0))
	return b.events
}

func buildTL(t *testing.T, events []obs.Event) *Timeline {
	t.Helper()
	rep, err := Analyze(events)
	if err != nil {
		t.Fatal(err)
	}
	return BuildTimeline(events, rep)
}

func laneByLabel(tl *Timeline, label string) *Lane {
	for i := range tl.Lanes {
		if tl.Lanes[i].Label == label {
			return &tl.Lanes[i]
		}
	}
	return nil
}

func hasSegment(l *Lane, kind string, start, end float64) bool {
	for _, s := range l.Segments {
		if s.Kind == kind && s.Start == start && s.End == end {
			return true
		}
	}
	return false
}

func hasMark(l *Lane, kind string, at float64) bool {
	for _, m := range l.Marks {
		if m.Kind == kind && m.Time == at {
			return true
		}
	}
	return false
}

func TestBuildTimelineSpareEpisode(t *testing.T) {
	tl := buildTL(t, spareTimelineLog())
	if tl.Start != 0 || tl.End != 6.0 {
		t.Errorf("window = [%v, %v], want [0, 6]", tl.Start, tl.End)
	}
	// World lane first, then ranks 0..4 in order.
	if len(tl.Lanes) != 6 || tl.Lanes[0].Rank != -1 || tl.Lanes[0].Label != "world" {
		t.Fatalf("lane roster: %+v", tl.Lanes)
	}
	for i, want := range []int{-1, 0, 1, 2, 3, 4} {
		if tl.Lanes[i].Rank != want {
			t.Errorf("lane %d rank = %d, want %d", i, tl.Lanes[i].Rank, want)
		}
	}

	// World lane: the five phases at the analyzed positions — recompute
	// anchored to the span end, the earlier phases chained from the start.
	world := &tl.Lanes[0]
	for _, want := range []Segment{
		{PhaseDetection, 3.0, 3.125},
		{PhaseCommRepair, 3.125, 3.25},
		{PhaseRebuild, 3.25, 3.5},
		{PhaseRestore, 3.5, 3.75},
		{PhaseRecompute, 4.0, 4.75},
	} {
		if !hasSegment(world, want.Kind, want.Start, want.End) {
			t.Errorf("world lane missing %+v; have %+v", want, world.Segments)
		}
	}
	if !hasMark(world, MarkRebuild, 3.5) {
		t.Errorf("world lane missing rebuild mark at repair time: %+v", world.Marks)
	}

	// Rank lanes: kill on the dead rank, detects on the observers,
	// checkpoint + flush on rank 0, restore/recompute pairs.
	if l := laneByLabel(tl, "rank 1"); l == nil || !hasMark(l, MarkKill, 3.0) {
		t.Errorf("rank 1 lane lacks the kill mark")
	}
	r0 := laneByLabel(tl, "rank 0")
	if r0 == nil || !hasMark(r0, MarkDetect, 3.125) || !hasMark(r0, MarkCheckpoint, 1.0) {
		t.Errorf("rank 0 lane marks wrong: %+v", r0)
	}
	if !hasSegment(r0, SegFlush, 1.0, 1.5) || !hasSegment(r0, PhaseRestore, 3.5, 3.625) {
		t.Errorf("rank 0 lane segments wrong: %+v", r0.Segments)
	}
	// The spare that adopted slot 1 carries the promotion label.
	spare := laneByLabel(tl, "rank 4 → slot 1 g1")
	if spare == nil {
		t.Fatalf("adopted-spare label missing; lanes: %+v", tl.Lanes)
	}
	if !hasSegment(spare, PhaseRestore, 3.5, 3.75) ||
		!hasSegment(spare, PhaseRecompute, 4.0, 4.25) ||
		!hasSegment(spare, PhaseRecompute, 4.5, 4.75) {
		t.Errorf("spare lane segments wrong: %+v", spare.Segments)
	}
}

func TestBuildTimelineShrunkLabels(t *testing.T) {
	events := twoWaveShrinkLog()
	// Wave 1 promotes the spare (world rank 6) into failed slot 1; slot 3
	// and wave 2's slots 2 and 4 compact away with no replacement.
	events = append(events, obs.Event{
		Seq: uint64(len(events) + 1), Time: 3.0, Rank: 6,
		Layer: obs.LayerFenix, Name: obs.EvFenixRoleChange,
		Attrs: []obs.Attr{
			obs.KV("from", "spare"), obs.KV("to", "recovered"),
			obs.KV("logical_rank", 1), obs.KV("generation", 1),
		},
	})
	tl := buildTL(t, events)

	for _, label := range []string{
		"rank 6 → slot 1 g1",
		"rank 3 (shrunk g1)",
		"rank 2 (shrunk g2)",
		"rank 4 (shrunk g2)",
	} {
		if laneByLabel(tl, label) == nil {
			t.Errorf("missing lane label %q; lanes: %+v", label, tl.Lanes)
		}
	}
	world := &tl.Lanes[0]
	if !hasMark(world, MarkShrink, 3.0) || !hasMark(world, MarkShrink, 6.0) {
		t.Errorf("world lane shrink marks wrong: %+v", world.Marks)
	}
	if hasMark(world, MarkRebuild, 3.0) {
		t.Errorf("compacting wave must mark shrink, not rebuild")
	}
}

func TestRenderASCIIDeterministic(t *testing.T) {
	events := spareTimelineLog()
	a := buildTL(t, events).RenderASCII(100)
	b := buildTL(t, events).RenderASCII(100)
	if a != b {
		t.Fatalf("ASCII render is not deterministic:\n%s\n--- vs ---\n%s", a, b)
	}
	for _, want := range []string{
		"timeline [0.000, 6.000]s",
		"world", "rank 4 → slot 1 g1",
		"legend: d detection  c comm_repair  b rebuild  r restore  w recompute  f flush",
		"o checkpoint  ! detect  X kill  ^ rebuild  v shrink  . idle",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("ASCII timeline missing %q:\n%s", want, a)
		}
	}
	// The dead rank's row paints the kill mark.
	for _, line := range strings.Split(a, "\n") {
		if strings.HasPrefix(line, "rank 1") && !strings.Contains(line, "X") {
			t.Errorf("rank 1 row lacks the X kill mark: %s", line)
		}
	}
	if def := buildTL(t, events).RenderASCII(0); def != a {
		t.Errorf("width 0 must select the default 100 columns")
	}
}

func TestRenderSVG(t *testing.T) {
	events := spareTimelineLog()
	svg := buildTL(t, events).RenderSVG(`seed <7> & "friends"`)
	if svg != buildTL(t, events).RenderSVG(`seed <7> & "friends"`) {
		t.Fatal("SVG render is not deterministic")
	}
	for _, want := range []string{
		`<svg xmlns="http://www.w3.org/2000/svg"`, "</svg>",
		"seed &lt;7&gt; &amp; &quot;friends&quot;", // title is escaped
		">detection<", ">recompute<", ">kill<", // visible legend labels
		"rank 4 → slot 1 g1",
		"<title>", // native hover tooltips on segments
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Contains(svg, "NaN") {
		t.Error("SVG contains NaN coordinates")
	}
}
