package obs

// Layer names, used as the Event.Layer field and as the "layer" metric
// label where a metric is shared between data backends.
const (
	LayerMPI     = "mpi"
	LayerFenix   = "fenix"
	LayerKR      = "kr"
	LayerVeloC   = "veloc"
	LayerCore    = "core"
	LayerChaos   = "chaos"
	LayerCluster = "cluster"
)

// Event names. The authoritative documentation — which layer emits each
// event, when, and with which attributes — is OBSERVABILITY.md at the
// repository root; a test cross-checks that every name below appears
// there, and the integration test cross-checks that instrumented runs emit
// only names from this list.
const (
	// mpi: job lifecycle and ULFM failure propagation.
	EvJobLaunch       = "mpi.job_launch"
	EvJobEnd          = "mpi.job_end"
	EvRankExit        = "mpi.rank_exit"
	EvFailureDetected = "mpi.failure_detected"
	EvRevoke          = "mpi.revoke"
	EvShrink          = "mpi.shrink"
	EvAgree           = "mpi.agree"

	// mpi message log: sender-based logging for localized recovery. A send
	// on the resilient lineage is logged (msg_logged); during recovery,
	// suppressed re-sends, log-served receives, and log-served collectives
	// are replays (msg_replayed, attr kind=send|recv|coll); msg_log_trim
	// marks a garbage-collection pass after the commit watermark advanced.
	EvMsgLogged   = "mpi.msg_logged"
	EvMsgReplayed = "mpi.msg_replayed"
	EvMsgLogTrim  = "mpi.msg_log_trim"

	// cluster: flush-scheduler anomalies. flush_reorder flags the DESIGN
	// §10 deep-skew corner: a virtually-earlier superseding submission
	// arrived after a virtually-later same-node observer had already
	// forced commitment of the version it would have replaced.
	EvFlushReorder = "cluster.flush_reorder"

	// fenix: process-resilience lifecycle.
	EvFenixInit        = "fenix.init"
	EvFenixRebuild     = "fenix.rebuild"
	EvFenixRoleChange  = "fenix.role_change"
	EvFenixIMRExchange = "fenix.imr_exchange"
	EvFenixIMRRestore  = "fenix.imr_restore"

	// kr: control-flow checkpoint regions.
	EvKRInit            = "kr.init"
	EvKRRecoveryArmed   = "kr.recovery_armed"
	EvKRReset           = "kr.reset"
	EvKRCheckpointBegin = "kr.checkpoint_begin"
	EvKRCheckpointEnd   = "kr.checkpoint_commit"
	EvKRRestoreBegin    = "kr.restore_begin"
	EvKRRestoreEnd      = "kr.restore_commit"
	// EvKRCheckpointRejected marks a checkpoint version discarded before
	// commit: the blob failed the KR codec checksum (stage=codec) or the
	// data backend's integrity verification (stage=backend). The previous
	// good version stays latest.
	EvKRCheckpointRejected = "kr.checkpoint_rejected"

	// veloc: data layer (scratch copy + asynchronous flush).
	EvVeloCInit           = "veloc.init"
	EvVeloCCheckpoint     = "veloc.checkpoint"
	EvVeloCFlushBegin     = "veloc.flush_begin"
	EvVeloCFlushQueued    = "veloc.flush_queued"
	EvVeloCFlushStart     = "veloc.flush_start"
	EvVeloCFlushEnd       = "veloc.flush_end"
	EvVeloCFlushDiscarded = "veloc.flush_discarded"
	EvVeloCRestart        = "veloc.restart"

	// core: integrated-session lifecycle.
	EvSessionStart    = "core.session_start"
	EvFailureInjected = "core.failure_injected"
	EvRecomputeBegin  = "core.recompute_begin"
	EvRecomputeEnd    = "core.recompute_end"

	// chaos: adversarial fault injection (internal/chaos).
	EvChaosKill = "chaos.kill"

	// chaos SDC: silent-data-corruption lifecycle. Injection is chaos's
	// doing; detection/correction/escape are emitted by whichever layer
	// resolved the flip (the kokkos resilient region or the VeloC blob
	// verifier), all under the chaos taxonomy so one invariant —
	// sdc_injected == sdc_detected + sdc_escaped — reads off the stream.
	EvSDCInjected  = "chaos.sdc_injected"
	EvSDCDetected  = "chaos.sdc_detected"
	EvSDCCorrected = "chaos.sdc_corrected"
	EvSDCEscaped   = "chaos.sdc_escaped"
)

// EventNames returns every defined event name, the machine-readable form
// of the taxonomy in OBSERVABILITY.md.
func EventNames() []string {
	return []string{
		EvJobLaunch, EvJobEnd, EvRankExit, EvFailureDetected, EvRevoke, EvShrink, EvAgree,
		EvMsgLogged, EvMsgReplayed, EvMsgLogTrim, EvFlushReorder,
		EvFenixInit, EvFenixRebuild, EvFenixRoleChange, EvFenixIMRExchange, EvFenixIMRRestore,
		EvKRInit, EvKRRecoveryArmed, EvKRReset, EvKRCheckpointBegin, EvKRCheckpointEnd,
		EvKRRestoreBegin, EvKRRestoreEnd, EvKRCheckpointRejected,
		EvVeloCInit, EvVeloCCheckpoint, EvVeloCFlushBegin, EvVeloCFlushQueued,
		EvVeloCFlushStart, EvVeloCFlushEnd, EvVeloCFlushDiscarded, EvVeloCRestart,
		EvSessionStart, EvFailureInjected, EvRecomputeBegin, EvRecomputeEnd,
		EvChaosKill,
		EvSDCInjected, EvSDCDetected, EvSDCCorrected, EvSDCEscaped,
	}
}

// Metric names recorded by the built-in instrumentation (the metrics
// catalogue in OBSERVABILITY.md). Metrics shared between data layers carry
// a layer label (veloc or imr).
const (
	MJobLaunches      = "job_launches_total"
	MFailuresInjected = "failures_injected_total"
	MFailuresDetected = "failures_detected_total"
	MFailuresSurvived = "failures_survived_total"
	MRevokes          = "mpi_revokes_total"
	MShrinks          = "mpi_shrinks_total"
	MAgreements       = "mpi_agreements_total"

	MMsgLogged     = "mpi_msgs_logged_total"
	MMsgReplayed   = "mpi_msgs_replayed_total"
	MMsgLogTrimmed = "mpi_msg_log_trimmed_total"
	MMsgLogEntries = "mpi_msg_log_entries" // gauge: live log entries (p2p + collective)
	MMsgLogBytes   = "mpi_msg_log_bytes"   // gauge: sim payload bytes held by the log
	MReplaySeconds = "mpi_replay_seconds"  // histogram: virtual time from recovery re-entry to first live iteration
	MFlushReorders = "cluster_flush_reorders_total"

	MRebuilds        = "fenix_rebuilds_total"
	MSparesActivated = "fenix_spares_activated_total"
	MRehosts         = "fenix_rehosts_total"

	MCheckpoints           = "checkpoints_total"       // label: layer
	MCheckpointBytes       = "checkpoint_bytes_total"  // label: layer
	MCheckpointSyncSeconds = "checkpoint_sync_seconds" // histogram; label: layer
	MRestores              = "restores_total"          // label: layer
	MRestoreBytes          = "restore_bytes_total"     // label: layer
	MRestoreSeconds        = "restore_seconds"         // histogram; label: layer
	MKRRegions             = "kr_regions_total"

	MFlushes               = "veloc_flushes_total"
	MFlushSeconds          = "veloc_flush_seconds"            // histogram
	MFlushQueueDepth       = "veloc_flush_queue_depth"        // gauge, sampled at flush submit, completion, and discard
	MFlushCoalesced        = "veloc_flush_coalesced_total"    // scheduler: superseded versions cancelled
	MFlushDiscarded        = "veloc_flush_discarded_total"    // scheduler: queued flushes lost with their node (crash / scratch loss)
	MFlushWaitSeconds      = "veloc_flush_wait_seconds"       // counter: MPI-visible flush wait (congestion inflation + restore stalls)
	MFlushQueueWaitSeconds = "veloc_flush_queue_wait_seconds" // histogram: scheduler queue wait per flush

	MRecomputeIters = "recompute_iterations_total"

	MSDCInjected  = "sdc_injected_total"
	MSDCDetected  = "sdc_detected_total"
	MSDCCorrected = "sdc_corrected_total"
	MSDCEscaped   = "sdc_escaped_total"
	MSDCReplays   = "sdc_replays_total" // extra region executions forced by a rejecting validator
	MSDCVotes     = "sdc_votes_total"   // duplicate executions compared in vote mode
)

// MetricNames returns every metric name the built-in instrumentation may
// record.
func MetricNames() []string {
	return []string{
		MJobLaunches, MFailuresInjected, MFailuresDetected, MFailuresSurvived,
		MRevokes, MShrinks, MAgreements,
		MMsgLogged, MMsgReplayed, MMsgLogTrimmed, MMsgLogEntries, MMsgLogBytes,
		MReplaySeconds, MFlushReorders,
		MRebuilds, MSparesActivated, MRehosts,
		MCheckpoints, MCheckpointBytes, MCheckpointSyncSeconds,
		MRestores, MRestoreBytes, MRestoreSeconds, MKRRegions,
		MFlushes, MFlushSeconds, MFlushQueueDepth,
		MFlushCoalesced, MFlushDiscarded, MFlushWaitSeconds, MFlushQueueWaitSeconds,
		MRecomputeIters,
		MSDCInjected, MSDCDetected, MSDCCorrected, MSDCEscaped, MSDCReplays, MSDCVotes,
	}
}
