package obs_test

import (
	"fmt"
	"os"

	"repro/internal/obs"
)

// Recording a failure-recovery sequence and exporting it as JSONL. In a
// real run the recorder is injected via mpi.JobConfig.Obs and every layer
// emits through mpi.Proc.Event; here we emit directly.
func ExampleRecorder() {
	rec := obs.New()
	rec.Emit(1.00, 0, obs.LayerMPI, obs.EvFailureDetected, obs.KV("failed_rank", 1))
	rec.Emit(1.00, 0, obs.LayerMPI, obs.EvRevoke, obs.KV("comm", 2), obs.KV("size", 4))
	rec.Emit(1.25, -1, obs.LayerFenix, obs.EvFenixRebuild,
		obs.KV("generation", 1), obs.KV("replaced", 1), obs.KV("shrunk", 0), obs.KV("size", 4))

	rec.WriteJSONL(os.Stdout)
	// Output:
	// {"t":1,"rank":0,"layer":"mpi","event":"mpi.failure_detected","attrs":{"failed_rank":1}}
	// {"t":1,"rank":0,"layer":"mpi","event":"mpi.revoke","attrs":{"comm":2,"size":4}}
	// {"t":1.25,"rank":-1,"layer":"fenix","event":"fenix.rebuild","attrs":{"generation":1,"replaced":1,"shrunk":0,"size":4}}
}

// Counting and timing checkpoints, then exporting the snapshot in
// Prometheus text exposition format.
func ExampleRegistry() {
	reg := obs.NewRegistry()
	layer := obs.L("layer", "veloc")
	for i := 0; i < 3; i++ {
		reg.Counter(obs.MCheckpoints, layer).Inc()
		reg.Counter(obs.MCheckpointBytes, layer).Add(64 << 20)
	}
	reg.Gauge(obs.MFlushQueueDepth).Set(2)

	reg.WritePrometheus(os.Stdout)
	// Output:
	// # TYPE checkpoint_bytes_total counter
	// checkpoint_bytes_total{layer="veloc"} 2.01326592e+08
	// # TYPE checkpoints_total counter
	// checkpoints_total{layer="veloc"} 3
	// # TYPE veloc_flush_queue_depth gauge
	// veloc_flush_queue_depth 2
}

// Histograms bucket observations under Prometheus le semantics: each
// bucket counts samples at or below its bound, cumulatively.
func ExampleHistogram() {
	reg := obs.NewRegistry()
	h := reg.Histogram("restore_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.004, 0.05, 0.07, 2.5} {
		h.Observe(v)
	}
	reg.WritePrometheus(os.Stdout)
	// Output:
	// # TYPE restore_seconds histogram
	// restore_seconds_bucket{le="0.01"} 1
	// restore_seconds_bucket{le="0.1"} 3
	// restore_seconds_bucket{le="1"} 3
	// restore_seconds_bucket{le="+Inf"} 4
	// restore_seconds_sum 2.624
	// restore_seconds_count 4
}

// A nil recorder is the disabled default: every method is a no-op, so
// instrumentation sites cost a nil check when observability is off.
func ExampleRecorder_Enabled() {
	var rec *obs.Recorder // what an uninstrumented job carries
	rec.Emit(1, 0, obs.LayerMPI, obs.EvRevoke)
	rec.Registry().Counter(obs.MRevokes).Inc()
	fmt.Println(rec.Enabled(), rec.Len())
	// Output:
	// false 0
}
