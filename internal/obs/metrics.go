package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one metric label pair. Series with the same name but different
// labels are distinct (Prometheus semantics).
type Label struct{ Key, Value string }

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Default histogram bucket bounds, in ascending order (+Inf is implicit).
var (
	// TimeBuckets suits virtual-second latencies (checkpoint sync cost,
	// flush duration).
	TimeBuckets = []float64{1e-4, 1e-3, 1e-2, 0.1, 1, 10, 60, 600}
	// SizeBuckets suits byte sizes at the paper's 64 MB–4 GB-per-rank
	// scales.
	SizeBuckets = []float64{1 << 10, 1 << 16, 1 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30, 4 << 30}
)

// Counter is a monotonically increasing metric. A nil Counter (from a nil
// Registry) discards all updates.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Add increases the counter by d (d must be non-negative).
func (c *Counter) Add(d float64) {
	if c == nil {
		return
	}
	if d < 0 {
		panic(fmt.Sprintf("obs: negative counter increment %v", d))
	}
	c.mu.Lock()
	c.v += d
	c.mu.Unlock()
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a metric that can go up and down. A nil Gauge discards updates.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v += d
	g.mu.Unlock()
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram accumulates observations into cumulative buckets
// (Prometheus-style le bounds). A nil Histogram discards observations.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending; +Inf implicit
	counts []uint64  // len(bounds)+1, non-cumulative per bucket
	sum    float64
	n      uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution by linear interpolation inside the bucket that contains the
// target rank, mirroring Prometheus's histogram_quantile: the first bucket
// interpolates from zero (observations are non-negative virtual seconds or
// bytes), and a rank landing in the +Inf overflow bucket clamps to the
// highest finite bound (or the empirical mean when the histogram has no
// finite bounds at all). The estimate is exact whenever the target rank
// falls on a bucket boundary and never leaves the bucket's bounds, so it
// is safe for p50/p99 reporting without retaining raw samples.
//
// It is NaN-safe in both directions: a nil or empty histogram returns NaN
// (there is no distribution to summarize), as does a q outside [0, 1] or a
// NaN q.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(h.n)
	cum := uint64(0)
	for i, count := range h.counts {
		if count == 0 {
			continue
		}
		prev := float64(cum)
		cum += count
		if float64(cum) < rank {
			continue
		}
		if i == len(h.bounds) {
			// Overflow bucket: no finite upper bound to interpolate toward.
			if len(h.bounds) == 0 {
				// A bound-less histogram puts every observation in its sole
				// (+Inf) bucket. The empirical mean is the only point
				// estimate available, and being constant in q it keeps
				// quantiles monotone instead of collapsing to NaN.
				return h.sum / float64(h.n)
			}
			return h.bounds[len(h.bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = h.bounds[i-1]
		}
		return lower + (h.bounds[i]-lower)*(rank-prev)/float64(count)
	}
	return math.NaN() // unreachable: n > 0 guarantees a non-empty bucket
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// series identifies one metric time series for export.
type series struct {
	name   string
	labels []Label // sorted by key
}

// Registry holds the metric series of one run. All methods are safe for
// concurrent use and nil-safe: a nil *Registry hands out nil metrics whose
// update methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	meta     map[string]series
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		meta:     make(map[string]series),
	}
}

func seriesKey(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	b.WriteByte('}')
	return b.String(), sorted
}

// Counter returns (creating on first use) the counter series for
// name+labels.
func (g *Registry) Counter(name string, labels ...Label) *Counter {
	if g == nil {
		return nil
	}
	key, sorted := seriesKey(name, labels)
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.counters[key]
	if !ok {
		c = &Counter{}
		g.counters[key] = c
		g.meta[key] = series{name: name, labels: sorted}
	}
	return c
}

// Gauge returns (creating on first use) the gauge series for name+labels.
func (g *Registry) Gauge(name string, labels ...Label) *Gauge {
	if g == nil {
		return nil
	}
	key, sorted := seriesKey(name, labels)
	g.mu.Lock()
	defer g.mu.Unlock()
	ga, ok := g.gauges[key]
	if !ok {
		ga = &Gauge{}
		g.gauges[key] = ga
		g.meta[key] = series{name: name, labels: sorted}
	}
	return ga
}

// Histogram returns (creating on first use) the histogram series for
// name+labels. bounds applies on first creation only; nil selects
// TimeBuckets.
func (g *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if g == nil {
		return nil
	}
	key, sorted := seriesKey(name, labels)
	g.mu.Lock()
	defer g.mu.Unlock()
	h, ok := g.hists[key]
	if !ok {
		if bounds == nil {
			bounds = TimeBuckets
		}
		cp := make([]float64, len(bounds))
		copy(cp, bounds)
		h = &Histogram{bounds: cp, counts: make([]uint64, len(cp)+1)}
		g.hists[key] = h
		g.meta[key] = series{name: name, labels: sorted}
	}
	return h
}

// CounterValue returns the current value of a counter series, or 0 if the
// series does not exist.
func (g *Registry) CounterValue(name string, labels ...Label) float64 {
	if g == nil {
		return 0
	}
	key, _ := seriesKey(name, labels)
	g.mu.Lock()
	c := g.counters[key]
	g.mu.Unlock()
	return c.Value()
}

// GaugeValue returns the current value of a gauge series, or 0 if absent.
func (g *Registry) GaugeValue(name string, labels ...Label) float64 {
	if g == nil {
		return 0
	}
	key, _ := seriesKey(name, labels)
	g.mu.Lock()
	ga := g.gauges[key]
	g.mu.Unlock()
	return ga.Value()
}

func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes every series in Prometheus text exposition
// format, grouped by metric name with # TYPE headers, sorted for
// deterministic output.
func (g *Registry) WritePrometheus(w io.Writer) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	type entry struct {
		kind string // counter, gauge, histogram
		key  string
		s    series
	}
	var entries []entry
	for k := range g.counters {
		entries = append(entries, entry{"counter", k, g.meta[k]})
	}
	for k := range g.gauges {
		entries = append(entries, entry{"gauge", k, g.meta[k]})
	}
	for k := range g.hists {
		entries = append(entries, entry{"histogram", k, g.meta[k]})
	}
	g.mu.Unlock()

	sort.Slice(entries, func(i, j int) bool {
		if entries[i].s.name != entries[j].s.name {
			return entries[i].s.name < entries[j].s.name
		}
		return entries[i].key < entries[j].key
	})

	lastName := ""
	var b strings.Builder
	for _, e := range entries {
		if e.s.name != lastName {
			fmt.Fprintf(&b, "# TYPE %s %s\n", e.s.name, e.kind)
			lastName = e.s.name
		}
		switch e.kind {
		case "counter":
			fmt.Fprintf(&b, "%s%s %s\n", e.s.name, renderLabels(e.s.labels), formatValue(g.counters[e.key].Value()))
		case "gauge":
			fmt.Fprintf(&b, "%s%s %s\n", e.s.name, renderLabels(e.s.labels), formatValue(g.gauges[e.key].Value()))
		case "histogram":
			h := g.hists[e.key]
			h.mu.Lock()
			cum := uint64(0)
			for i, bound := range h.bounds {
				cum += h.counts[i]
				le := strconv.FormatFloat(bound, 'g', -1, 64)
				fmt.Fprintf(&b, "%s_bucket%s %d\n", e.s.name, renderLabels(e.s.labels, L("le", le)), cum)
			}
			cum += h.counts[len(h.bounds)]
			fmt.Fprintf(&b, "%s_bucket%s %d\n", e.s.name, renderLabels(e.s.labels, L("le", "+Inf")), cum)
			fmt.Fprintf(&b, "%s_sum%s %s\n", e.s.name, renderLabels(e.s.labels), formatValue(h.sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", e.s.name, renderLabels(e.s.labels), h.n)
			h.mu.Unlock()
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
