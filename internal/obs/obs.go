// Package obs is the resilience observability layer: a low-overhead,
// concurrency-safe structured event log plus a metrics registry, shared by
// every layer of the stack (mpi, fenix, kr, veloc, core).
//
// Where internal/trace answers "where did the time go" as post-hoc
// aggregate buckets (the paper's Figures 5 and 6), obs answers "what
// happened, in what order": each resilience lifecycle step — failure
// detection, communicator revocation, Fenix rebuild, checkpoint restart,
// recompute — is recorded as a typed Event carrying the emitting rank, the
// virtual time, the layer, and key/value attributes. The event taxonomy is
// documented in OBSERVABILITY.md at the repository root; EventNames lists
// every name programmatically.
//
// A nil *Recorder is the no-op recorder: every method is nil-safe, so
// uninstrumented runs pay only a nil check per instrumentation site. Layers
// never construct recorders; one is injected per job via
// mpi.JobConfig.Obs and reached through mpi.Proc.
//
// Events export as JSONL (one JSON object per line, ordered by virtual
// time) and metrics as Prometheus-style text; see Recorder.WriteJSONL and
// Registry.WritePrometheus.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
)

// Attr is one key/value attribute of an event. Values are restricted to
// strings, booleans, integers, and floats; anything else is stringified on
// export.
type Attr struct {
	Key   string
	Value any
}

// KV builds an attribute.
func KV(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Event is one structured observability record.
type Event struct {
	// Seq is a process-global emission sequence number, used to break
	// virtual-time ties deterministically. Within one rank goroutine Seq
	// order is program order.
	Seq uint64
	// Time is the emitting rank's virtual clock, in seconds. Events that
	// describe an asynchronous completion (veloc.flush_end) carry the
	// virtual completion time, which may lie ahead of the emitter's clock.
	Time float64
	// Rank is the emitting world rank, or -1 for job-level events.
	Rank int
	// Layer is the emitting layer (mpi, fenix, kr, veloc, core).
	Layer string
	// Name is the event name, e.g. "fenix.rebuild"; see EventNames.
	Name  string
	Attrs []Attr
}

// appendJSON renders the event as a single JSON object with attributes in
// emission order (deterministic, unlike a map).
func (e *Event) appendJSON(b []byte) []byte {
	b = append(b, `{"t":`...)
	b = strconv.AppendFloat(b, e.Time, 'g', 9, 64)
	b = append(b, `,"rank":`...)
	b = strconv.AppendInt(b, int64(e.Rank), 10)
	b = append(b, `,"layer":`...)
	b = strconv.AppendQuote(b, e.Layer)
	b = append(b, `,"event":`...)
	b = strconv.AppendQuote(b, e.Name)
	if len(e.Attrs) > 0 {
		b = append(b, `,"attrs":{`...)
		for i, a := range e.Attrs {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendQuote(b, a.Key)
			b = append(b, ':')
			b = appendJSONValue(b, a.Value)
		}
		b = append(b, '}')
	}
	return append(b, '}')
}

func appendJSONValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		return strconv.AppendQuote(b, x)
	case bool:
		return strconv.AppendBool(b, x)
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case float64:
		// JSON has no NaN/Inf literals; quote them so the line stays
		// parseable (analyze.ReadJSONL converts them back).
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return strconv.AppendQuote(b, strconv.FormatFloat(x, 'g', -1, 64))
		}
		return strconv.AppendFloat(b, x, 'g', 9, 64)
	default:
		return strconv.AppendQuote(b, fmt.Sprint(v))
	}
}

// Recorder collects events and owns a metrics registry. All methods are
// safe for concurrent use by many rank goroutines, and all are nil-safe:
// a nil *Recorder records nothing and is the disabled default.
//
// By default every event is retained in memory for post-run export. Two
// additional modes bound memory for long runs: StreamJSONL attaches an
// incremental JSONL sink (with a reorder window for the out-of-order
// veloc.flush_end stamps), and SetRingCapacity caps the in-memory log at
// the most recent N events.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	seq    uint64
	reg    *Registry

	// Ring-buffer mode: when ringCap > 0 and the log is full, the oldest
	// event is overwritten in place; ringStart indexes the oldest retained
	// event and dropped counts the overwritten ones.
	ringCap   int
	ringStart int
	dropped   uint64

	stream *jsonlStream // non-nil once StreamJSONL has been attached
}

// New creates an enabled recorder with an empty registry.
func New() *Recorder { return &Recorder{reg: NewRegistry()} }

// Enabled reports whether the recorder actually records (false for nil).
// Instrumentation sites that would do nontrivial work to assemble
// attributes should guard on it.
func (r *Recorder) Enabled() bool { return r != nil }

// Registry returns the recorder's metrics registry (nil for a nil
// recorder; the registry's methods are themselves nil-safe).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Emit records one event. attrs are retained, not copied; callers must not
// mutate them afterwards (variadic call sites never do).
func (r *Recorder) Emit(time float64, rank int, layer, name string, attrs ...Attr) {
	if r == nil {
		return
	}
	e := Event{Time: time, Rank: rank, Layer: layer, Name: name, Attrs: attrs}
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	if r.ringCap > 0 && len(r.events) >= r.ringCap {
		r.events[r.ringStart] = e
		r.ringStart = (r.ringStart + 1) % r.ringCap
		r.dropped++
	} else {
		r.events = append(r.events, e)
	}
	if r.stream != nil {
		r.stream.push(e)
	}
	r.mu.Unlock()
}

// SetRingCapacity bounds the in-memory event log to the most recent n
// events; older events are overwritten and counted by Dropped. n <= 0
// restores unbounded retention (the default). Attached JSONL streams are
// unaffected: they observe every event regardless of the ring. Changing
// the capacity of a non-empty recorder panics; configure the ring before
// the run starts.
func (r *Recorder) SetRingCapacity(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.events) > 0 {
		panic("obs: SetRingCapacity on a non-empty recorder")
	}
	if n <= 0 {
		n = 0
	}
	r.ringCap = n
}

// Dropped returns the number of events overwritten by ring-buffer mode.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len returns the number of events currently retained in memory.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of the retained log ordered by (virtual time,
// emission sequence). Within one rank the order is causal; across ranks
// virtual time is the shared ordering the simulation guarantees. Attribute
// slices are deep-copied, so callers may inspect and mutate the result
// without aliasing the recorder's (caller-retained) attrs.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	r.mu.Unlock()
	for i := range out {
		if len(out[i].Attrs) > 0 {
			out[i].Attrs = append([]Attr(nil), out[i].Attrs...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		// Same-instant events from different ranks have no causal order; the
		// emission sequence reflects the racy real-time arrival of their
		// goroutines, so rank breaks the tie to keep the log replay-stable
		// (Seq stays the within-rank causal order).
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// WriteJSONL writes the time-ordered event log as JSON Lines.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b []byte
	for _, e := range r.Events() {
		b = e.appendJSON(b[:0])
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}
