package obs

import (
	"os"
	"strings"
	"sync"
	"testing"
)

func TestEventsOrderedByTimeThenSeq(t *testing.T) {
	r := New()
	r.Emit(2.0, 0, LayerMPI, EvRevoke)
	r.Emit(1.0, 1, LayerCore, EvSessionStart)
	r.Emit(2.0, 2, LayerFenix, EvFenixRebuild) // same time as the revoke, later seq
	r.Emit(0.5, 3, LayerMPI, EvJobLaunch)

	got := r.Events()
	want := []string{EvJobLaunch, EvSessionStart, EvRevoke, EvFenixRebuild}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.Name != want[i] {
			t.Errorf("event %d: got %s, want %s", i, e.Name, want[i])
		}
	}
	// The tie at t=2.0 must break on emission order.
	if got[2].Seq > got[3].Seq {
		t.Errorf("tie at t=2.0 broke out of emission order: seq %d before %d", got[2].Seq, got[3].Seq)
	}
}

func TestWriteJSONLDeterministic(t *testing.T) {
	r := New()
	r.Emit(1.5, 0, LayerVeloC, EvVeloCCheckpoint,
		KV("name", "app"), KV("version", 3), KV("bytes", 1024), KV("ok", true), KV("cost", 0.25))
	r.Emit(0.5, -1, LayerMPI, EvJobLaunch)

	var b strings.Builder
	if err := r.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	want := `{"t":0.5,"rank":-1,"layer":"mpi","event":"mpi.job_launch"}
{"t":1.5,"rank":0,"layer":"veloc","event":"veloc.checkpoint","attrs":{"name":"app","version":3,"bytes":1024,"ok":true,"cost":0.25}}
`
	if b.String() != want {
		t.Errorf("JSONL mismatch:\ngot:\n%swant:\n%s", b.String(), want)
	}
}

func TestAppendJSONValueStringifiesUnknownTypes(t *testing.T) {
	got := string(appendJSONValue(nil, []int{1, 2}))
	if got != `"[1 2]"` {
		t.Errorf("unknown type rendered as %s, want quoted stringification", got)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	r.Emit(1, 0, LayerMPI, EvRevoke) // must not panic
	if r.Len() != 0 || r.Events() != nil {
		t.Error("nil recorder retained events")
	}
	if err := r.WriteJSONL(os.Stderr); err != nil {
		t.Errorf("nil WriteJSONL: %v", err)
	}

	reg := r.Registry()
	if reg != nil {
		t.Fatal("nil recorder handed out a registry")
	}
	reg.Counter("x").Inc()
	reg.Counter("x").Add(5)
	reg.Gauge("y").Set(3)
	reg.Gauge("y").Add(-1)
	reg.Histogram("z", nil).Observe(0.5)
	if reg.CounterValue("x") != 0 || reg.GaugeValue("y") != 0 {
		t.Error("nil registry returned nonzero values")
	}
	if err := reg.WritePrometheus(os.Stderr); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative counter increment did not panic")
		}
	}()
	NewRegistry().Counter("c").Add(-1)
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []float64{1, 10})
	for _, v := range []float64{0.5, 1.0, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 106.5 {
		t.Errorf("sum = %v, want 106.5", h.Sum())
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE lat histogram
lat_bucket{le="1"} 2
lat_bucket{le="10"} 3
lat_bucket{le="+Inf"} 4
lat_sum 106.5
lat_count 4
`
	if b.String() != want {
		t.Errorf("histogram exposition mismatch:\ngot:\n%swant:\n%s", b.String(), want)
	}
}

func TestWritePrometheusSortedWithLabels(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("checkpoints_total", L("layer", "veloc")).Add(3)
	reg.Counter("checkpoints_total", L("layer", "imr")).Add(2)
	reg.Gauge("depth").Set(1)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE checkpoints_total counter
checkpoints_total{layer="imr"} 2
checkpoints_total{layer="veloc"} 3
# TYPE depth gauge
depth 1
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%swant:\n%s", b.String(), want)
	}
}

func TestSeriesIdentityIgnoresLabelOrder(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", L("a", "1"), L("b", "2")).Inc()
	reg.Counter("m", L("b", "2"), L("a", "1")).Inc()
	if v := reg.CounterValue("m", L("a", "1"), L("b", "2")); v != 2 {
		t.Errorf("label order created distinct series: value %v, want 2", v)
	}
	// Distinct label values are distinct series.
	reg.Counter("m", L("a", "other")).Inc()
	if v := reg.CounterValue("m", L("a", "other")); v != 1 {
		t.Errorf("distinct labels collapsed: value %v, want 1", v)
	}
}

func TestHistogramBoundsFixedAtCreation(t *testing.T) {
	reg := NewRegistry()
	h1 := reg.Histogram("h", []float64{1, 2, 3})
	h2 := reg.Histogram("h", []float64{100}) // bounds ignored: series exists
	if h1 != h2 {
		t.Error("same series returned distinct histograms")
	}
}

// TestConcurrentRanks exercises the recorder and registry from 16 rank
// goroutines under -race, the way a simulated job uses them.
func TestConcurrentRanks(t *testing.T) {
	const ranks = 16
	const perRank = 200
	r := New()
	reg := r.Registry()
	var wg sync.WaitGroup
	for rank := 0; rank < ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < perRank; i++ {
				r.Emit(float64(i), rank, LayerVeloC, EvVeloCCheckpoint, KV("version", i))
				reg.Counter(MCheckpoints, L("layer", "veloc")).Inc()
				reg.Gauge(MFlushQueueDepth).Set(float64(i % 4))
				reg.Histogram(MFlushSeconds, TimeBuckets).Observe(float64(i) * 1e-3)
			}
		}(rank)
	}
	wg.Wait()

	if r.Len() != ranks*perRank {
		t.Errorf("recorded %d events, want %d", r.Len(), ranks*perRank)
	}
	if v := reg.CounterValue(MCheckpoints, L("layer", "veloc")); v != ranks*perRank {
		t.Errorf("counter = %v, want %d", v, ranks*perRank)
	}
	if n := reg.Histogram(MFlushSeconds, TimeBuckets).Count(); n != ranks*perRank {
		t.Errorf("histogram count = %d, want %d", n, ranks*perRank)
	}
	events := r.Events()
	for i := 1; i < len(events); i++ {
		a, b := events[i-1], events[i]
		if a.Time > b.Time ||
			(a.Time == b.Time && a.Rank > b.Rank) ||
			(a.Time == b.Time && a.Rank == b.Rank && a.Seq > b.Seq) {
			t.Fatalf("events out of order at %d: (%v,r%d,%d) before (%v,r%d,%d)",
				i, a.Time, a.Rank, a.Seq, b.Time, b.Rank, b.Seq)
		}
	}
}

// TestTaxonomyDocumented cross-checks the machine-readable taxonomy against
// OBSERVABILITY.md: every event and metric name must be documented there.
func TestTaxonomyDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("reading OBSERVABILITY.md: %v", err)
	}
	text := string(doc)
	for _, name := range EventNames() {
		if !strings.Contains(text, "`"+name+"`") {
			t.Errorf("event %s is not documented in OBSERVABILITY.md", name)
		}
	}
	for _, name := range MetricNames() {
		if !strings.Contains(text, "`"+name+"`") {
			t.Errorf("metric %s is not documented in OBSERVABILITY.md", name)
		}
	}
}

func TestEventNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range EventNames() {
		if seen[n] {
			t.Errorf("duplicate event name %s", n)
		}
		seen[n] = true
		dot := strings.IndexByte(n, '.')
		if dot <= 0 {
			t.Errorf("event %s lacks a layer. prefix", n)
			continue
		}
		switch layer := n[:dot]; layer {
		case LayerMPI, LayerFenix, LayerKR, LayerVeloC, LayerCore, LayerChaos, LayerCluster:
		default:
			t.Errorf("event %s has unknown layer prefix %q", n, layer)
		}
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	var r *Recorder
	for i := 0; i < b.N; i++ {
		if r.Enabled() {
			r.Emit(1, 0, LayerMPI, EvRevoke, KV("comm", 1))
		}
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	r := New()
	for i := 0; i < b.N; i++ {
		r.Emit(float64(i), 0, LayerMPI, EvRevoke, KV("comm", 1))
	}
}

var sinkErr error

func BenchmarkWriteJSONL(b *testing.B) {
	r := New()
	for i := 0; i < 1000; i++ {
		r.Emit(float64(i), i%16, LayerVeloC, EvVeloCCheckpoint,
			KV("name", "app"), KV("version", i), KV("bytes", 1<<20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkErr = r.WriteJSONL(discard{})
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
