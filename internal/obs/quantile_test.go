package obs

import (
	"math"
	"testing"
)

// quantHist builds a histogram with the given bounds through a registry,
// the only construction path instrumentation uses.
func quantHist(bounds []float64) *Histogram {
	return NewRegistry().Histogram("q_test_seconds", bounds)
}

func TestQuantileKnownDistribution(t *testing.T) {
	// One observation per bucket of {1, 2, 4}: the distribution is pinned,
	// so every quantile is a closed-form interpolation.
	h := quantHist([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3} {
		h.Observe(v)
	}
	cases := []struct{ q, want float64 }{
		{0, 0},       // first bucket interpolates from zero
		{0.25, 0.75}, // rank 0.75 of 1 in bucket [0,1)
		{0.5, 1.5},   // rank 1.5: halfway through bucket [1,2)
		{0.75, 2.5},  // rank 2.25: an eighth into bucket [2,4)
		{1, 4},       // rank 3: top of the last occupied bucket
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileUniform(t *testing.T) {
	// 100 uniform samples over [0, 100) with bucket bounds every 25: the
	// interpolated p50 and p99 are exact.
	h := quantHist([]float64{25, 50, 75, 100})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) + 0.5)
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Errorf("p50 = %v, want 50", got)
	}
	if got := h.Quantile(0.99); got != 99 {
		t.Errorf("p99 = %v, want 99", got)
	}
	if got := h.Quantile(0.25); got != 25 {
		t.Errorf("p25 = %v, want 25", got)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	// Samples beyond the last finite bound clamp to it (Prometheus
	// histogram_quantile semantics for the +Inf bucket).
	h := quantHist([]float64{1, 2, 4})
	h.Observe(10)
	h.Observe(20)
	if got := h.Quantile(0.5); got != 4 {
		t.Errorf("overflow p50 = %v, want the top finite bound 4", got)
	}
	if got := h.Quantile(1); got != 4 {
		t.Errorf("overflow p100 = %v, want 4", got)
	}
}

// TestQuantileAllSamplesInOverflowNoBounds pins the bound-less edge: a
// histogram created with zero finite bounds puts every observation in its
// sole +Inf bucket. There is no bound to clamp to, but the estimator must
// not collapse to NaN with real observations present — it falls back to
// the empirical mean, which is constant in q and therefore monotone.
func TestQuantileAllSamplesInOverflowNoBounds(t *testing.T) {
	h := quantHist([]float64{}) // non-nil empty: no TimeBuckets default
	h.Observe(2)
	h.Observe(4)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 3 {
			t.Errorf("Quantile(%v) = %v, want the empirical mean 3", q, got)
		}
	}
	// Quantiles must never come back out of order.
	if p50, p99 := h.Quantile(0.5), h.Quantile(0.99); p50 > p99 {
		t.Errorf("p50 %v > p99 %v", p50, p99)
	}
	// Before any observation the distribution is genuinely undefined.
	if got := quantHist([]float64{}).Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty bound-less histogram Quantile = %v, want NaN", got)
	}
}

func TestQuantileNaNSafety(t *testing.T) {
	var nilHist *Histogram
	if got := nilHist.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("nil histogram Quantile = %v, want NaN", got)
	}
	empty := quantHist(nil)
	if got := empty.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram Quantile = %v, want NaN", got)
	}
	h := quantHist([]float64{1})
	h.Observe(0.5)
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Errorf("Quantile(%v) = %v, want NaN", q, got)
		}
	}
	// Observing NaN must not poison the estimator for other samples: NaN
	// sorts into the overflow bucket (SearchFloat64s returns len(bounds)).
	h.Observe(math.NaN())
	if got := h.Quantile(0); !math.IsNaN(got) && got < 0 {
		t.Errorf("Quantile(0) after NaN observation = %v", got)
	}
}

func TestQuantileDefaultTimeBuckets(t *testing.T) {
	// The registry's default bounds: a latency profile with most samples at
	// ~10ms and a 1s tail keeps p50 in the 10ms bucket and p99 in the tail.
	h := NewRegistry().Histogram("lat_seconds", nil)
	for i := 0; i < 98; i++ {
		h.Observe(0.005)
	}
	h.Observe(0.5)
	h.Observe(5)
	p50, p99 := h.Quantile(0.5), h.Quantile(0.99)
	if p50 < 1e-3 || p50 > 1e-2 {
		t.Errorf("p50 = %v, want within the (1e-3, 1e-2] bucket", p50)
	}
	if p99 < 0.1 || p99 > 1 {
		t.Errorf("p99 = %v, want within the (0.1, 1] bucket", p99)
	}
	if p50 >= p99 {
		t.Errorf("p50 %v >= p99 %v", p50, p99)
	}
}
