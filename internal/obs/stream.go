package obs

import "io"

// DefaultReorderWindow is the reorder window, in virtual seconds, used by
// StreamJSONL when the caller passes a non-positive window. It must cover
// the largest lead an out-of-order completion stamp can have over the
// emitting clock (veloc.flush_end is stamped at the flush's virtual
// completion time); flushes at the paper's data scales complete well
// within this bound.
const DefaultReorderWindow = 30.0

// jsonlStream is an incremental JSONL sink with a time-based reorder
// window. Events are buffered in a min-heap ordered by (Time, Rank, Seq)
// and written once the watermark — the maximum event time seen so far —
// has advanced past their time by at least the window, which restores the
// global (time, rank, seq) sort order as long as no event is stamped more
// than `window` virtual seconds behind the watermark. All fields are
// guarded by the owning Recorder's mutex.
type jsonlStream struct {
	w       io.Writer
	window  float64
	heap    []Event // min-heap by (Time, Rank, Seq)
	highest float64 // watermark: max event time pushed
	wrote   bool    // at least one event written
	last    Event   // ordering key of the last written event (late detection)
	late    uint64
	written uint64
	err     error // sticky write error
	buf     []byte
}

// StreamJSONL attaches an incremental JSONL sink to the recorder: every
// event — past and future — is written to w as one JSON line, ordered by
// (virtual time, rank, emission sequence) under a reorder window of `window`
// virtual seconds (DefaultReorderWindow if window <= 0). The window
// absorbs the documented out-of-order case, veloc.flush_end being stamped
// ahead of the emitting rank's clock; an event arriving more than a window
// late is still written (immediately, out of order) and counted by
// StreamLate. Call FlushStream after the run to drain the buffered tail.
// Write errors are sticky and reported by FlushStream.
//
// Combined with SetRingCapacity, streaming lets long availability-study
// runs export the full log without accumulating it in memory.
func (r *Recorder) StreamJSONL(w io.Writer, window float64) {
	if r == nil {
		return
	}
	if window <= 0 {
		window = DefaultReorderWindow
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stream != nil {
		panic("obs: StreamJSONL called twice")
	}
	s := &jsonlStream{w: w, window: window}
	// Events recorded before the stream was attached enter the window too.
	// A wrapped ring is rotated in place — the oldest retained event sits
	// at ringStart — so the backlog must be pushed chronologically from
	// there: raw slice order would feed the newest tail first, advance the
	// watermark past the older head, and write the head out of order as
	// spurious "late" events.
	for i := range r.events {
		s.push(r.events[(r.ringStart+i)%len(r.events)])
	}
	r.stream = s
}

// Streaming reports whether a JSONL stream is attached.
func (r *Recorder) Streaming() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stream != nil
}

// FlushStream drains every buffered event to the attached stream and
// returns the first write error encountered since the stream was attached.
// The stream stays attached; subsequent events keep streaming. It is a
// no-op without an attached stream. mpi.RunJob calls it at job end when
// the stream was attached through JobConfig.
func (r *Recorder) FlushStream() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stream == nil {
		return nil
	}
	r.stream.drain(len(r.stream.heap))
	return r.stream.err
}

// StreamLate returns how many events arrived more than a reorder window
// late and were therefore written out of order (0 when the window covers
// the run's worst-case reordering).
func (r *Recorder) StreamLate() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stream == nil {
		return 0
	}
	return r.stream.late
}

// StreamWritten returns how many events the attached stream has written.
func (r *Recorder) StreamWritten() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stream == nil {
		return 0
	}
	return r.stream.written
}

// push admits one event and writes everything that has fallen out of the
// reorder window. Caller holds the recorder's mutex.
func (s *jsonlStream) push(e Event) {
	s.heapPush(e)
	if e.Time > s.highest {
		s.highest = e.Time
	}
	for len(s.heap) > 0 && s.heap[0].Time <= s.highest-s.window {
		s.writeOne(s.heapPop())
	}
}

// drain writes the n oldest buffered events regardless of the window.
func (s *jsonlStream) drain(n int) {
	for i := 0; i < n && len(s.heap) > 0; i++ {
		s.writeOne(s.heapPop())
	}
}

func (s *jsonlStream) writeOne(e Event) {
	if s.wrote && eventLess(e, s.last) {
		s.late++
	}
	s.wrote, s.last = true, Event{Time: e.Time, Rank: e.Rank, Seq: e.Seq}
	s.written++
	if s.err != nil {
		return
	}
	s.buf = e.appendJSON(s.buf[:0])
	s.buf = append(s.buf, '\n')
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = err
	}
}

// eventLess orders the heap by (Time, Rank, Seq), matching
// Recorder.Events: rank breaks same-instant ties between causally
// unordered emitters, Seq keeps the within-rank causal order.
func eventLess(a, b Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	return a.Seq < b.Seq
}

func (s *jsonlStream) heapPush(e Event) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(s.heap[i], s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *jsonlStream) heapPop() Event {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap[last] = Event{} // release attrs for GC
	s.heap = s.heap[:last]
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		small := i
		if l < len(s.heap) && eventLess(s.heap[l], s.heap[small]) {
			small = l
		}
		if rr < len(s.heap) && eventLess(s.heap[rr], s.heap[small]) {
			small = rr
		}
		if small == i {
			break
		}
		s.heap[i], s.heap[small] = s.heap[small], s.heap[i]
		i = small
	}
	return top
}
