package obs

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// TestStreamMatchesWriteJSONL checks the acceptance property directly on
// a synthetic log with an out-of-order completion stamp: after the final
// flush, the streamed bytes equal a post-hoc WriteJSONL of the same
// recorder.
func TestStreamMatchesWriteJSONL(t *testing.T) {
	r := New()
	var stream strings.Builder
	r.StreamJSONL(&stream, 2.0)

	// A flush_end stamped 1.5s ahead of the emitter's clock, followed by
	// events from other ranks at earlier times — the documented reorder.
	r.Emit(1.0, 0, LayerVeloC, EvVeloCCheckpoint, KV("version", 1))
	r.Emit(2.6, 0, LayerVeloC, EvVeloCFlushEnd, KV("version", 1), KV("seconds", 1.5))
	r.Emit(1.2, 1, LayerVeloC, EvVeloCCheckpoint, KV("version", 1))
	r.Emit(2.0, 1, LayerMPI, EvRevoke)
	r.Emit(2.4, 0, LayerFenix, EvFenixRebuild)
	r.Emit(5.0, -1, LayerMPI, EvJobEnd)
	if err := r.FlushStream(); err != nil {
		t.Fatal(err)
	}

	var post strings.Builder
	if err := r.WriteJSONL(&post); err != nil {
		t.Fatal(err)
	}
	if stream.String() != post.String() {
		t.Errorf("streamed output differs from post-hoc export:\nstream:\n%s\npost-hoc:\n%s",
			stream.String(), post.String())
	}
	if got := r.StreamLate(); got != 0 {
		t.Errorf("late events = %d, want 0", got)
	}
	if got := r.StreamWritten(); got != 6 {
		t.Errorf("written = %d, want 6", got)
	}
}

// TestStreamReorderWindowHoldsFlushEnd checks the window mechanics: an
// event is not written until the watermark has moved a full window past
// it, so a flush_end stamped ahead of the clock is held long enough for
// the intervening earlier-stamped events to arrive and sort before it.
func TestStreamReorderWindowHoldsFlushEnd(t *testing.T) {
	r := New()
	var stream strings.Builder
	r.StreamJSONL(&stream, 1.0)

	r.Emit(1.0, 0, LayerVeloC, EvVeloCFlushBegin, KV("version", 3))
	// Completion stamp 0.8s ahead; advances the watermark to 1.8.
	r.Emit(1.8, 0, LayerVeloC, EvVeloCFlushEnd, KV("version", 3))
	if got := strings.Count(stream.String(), "\n"); got != 0 {
		t.Fatalf("window leaked %d events before watermark advanced", got)
	}
	// An earlier-stamped event arrives after the future-stamped one...
	r.Emit(1.4, 1, LayerVeloC, EvVeloCCheckpoint, KV("version", 3))
	// ...and a later tick pushes the watermark (to 2.7) far enough to
	// release events up to t=1.7 — the first two but not the flush_end.
	r.Emit(2.7, 1, LayerMPI, EvAgree)
	out := stream.String()
	if !strings.Contains(out, EvVeloCFlushBegin) || !strings.Contains(out, EvVeloCCheckpoint) {
		t.Fatalf("events within the window not released:\n%s", out)
	}
	if strings.Contains(out, EvVeloCFlushEnd) {
		t.Fatalf("flush_end released before its window expired:\n%s", out)
	}
	if err := r.FlushStream(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(stream.String()), "\n")
	wantOrder := []string{EvVeloCFlushBegin, EvVeloCCheckpoint, EvVeloCFlushEnd, EvAgree}
	if len(lines) != len(wantOrder) {
		t.Fatalf("got %d lines, want %d", len(lines), len(wantOrder))
	}
	for i, name := range wantOrder {
		if !strings.Contains(lines[i], name) {
			t.Errorf("line %d = %s, want %s", i, lines[i], name)
		}
	}
	if r.StreamLate() != 0 {
		t.Errorf("late = %d, want 0", r.StreamLate())
	}
}

// TestStreamLateEvent checks that an event arriving more than a window
// behind the watermark is still written and counted as late.
func TestStreamLateEvent(t *testing.T) {
	r := New()
	var stream strings.Builder
	r.StreamJSONL(&stream, 0.5)
	r.Emit(10.0, 0, LayerMPI, EvJobLaunch)
	r.Emit(20.0, 0, LayerMPI, EvRevoke) // releases the t=10 event
	r.Emit(1.0, 1, LayerCore, EvSessionStart)
	if err := r.FlushStream(); err != nil {
		t.Fatal(err)
	}
	if got := r.StreamLate(); got != 1 {
		t.Errorf("late = %d, want 1", got)
	}
	if got := r.StreamWritten(); got != 3 {
		t.Errorf("written = %d, want 3", got)
	}
}

// TestStreamAttachAfterEmit checks that events recorded before the stream
// was attached are replayed through the window.
func TestStreamAttachAfterEmit(t *testing.T) {
	r := New()
	r.Emit(2.0, 0, LayerMPI, EvRevoke)
	r.Emit(1.0, 1, LayerCore, EvSessionStart)
	var stream strings.Builder
	r.StreamJSONL(&stream, 1.0)
	if err := r.FlushStream(); err != nil {
		t.Fatal(err)
	}
	var post strings.Builder
	if err := r.WriteJSONL(&post); err != nil {
		t.Fatal(err)
	}
	if stream.String() != post.String() {
		t.Errorf("replayed stream differs:\n%s\nvs\n%s", stream.String(), post.String())
	}
}

type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestStreamWriteErrorSticky(t *testing.T) {
	r := New()
	w := &failingWriter{n: 1}
	r.StreamJSONL(w, 0.1)
	r.Emit(1, 0, LayerMPI, EvJobLaunch)
	r.Emit(2, 0, LayerMPI, EvRevoke)
	r.Emit(9, 0, LayerMPI, EvJobEnd)
	if err := r.FlushStream(); err == nil {
		t.Fatal("write error not surfaced by FlushStream")
	}
	// The error is sticky across further flushes.
	if err := r.FlushStream(); err == nil {
		t.Fatal("write error not sticky")
	}
}

func TestStreamDoubleAttachPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("second StreamJSONL did not panic")
		}
	}()
	r := New()
	var a, b strings.Builder
	r.StreamJSONL(&a, 1)
	r.StreamJSONL(&b, 1)
}

func TestNilRecorderStreamSafe(t *testing.T) {
	var r *Recorder
	var b strings.Builder
	r.StreamJSONL(&b, 1) // must not panic
	if r.Streaming() {
		t.Error("nil recorder reports streaming")
	}
	if err := r.FlushStream(); err != nil {
		t.Errorf("nil FlushStream: %v", err)
	}
	if r.StreamLate() != 0 || r.StreamWritten() != 0 {
		t.Error("nil recorder reports stream activity")
	}
	r.SetRingCapacity(4) // must not panic
	if r.Dropped() != 0 {
		t.Error("nil recorder reports drops")
	}
}

func TestRingCapacityBoundsMemory(t *testing.T) {
	r := New()
	r.SetRingCapacity(3)
	for i := 0; i < 10; i++ {
		r.Emit(float64(i), 0, LayerMPI, EvRevoke, KV("i", i))
	}
	if r.Len() != 3 {
		t.Fatalf("ring retained %d events, want 3", r.Len())
	}
	if r.Dropped() != 7 {
		t.Errorf("dropped = %d, want 7", r.Dropped())
	}
	events := r.Events()
	for i, e := range events {
		if want := 7 + i; int(e.Time) != want {
			t.Errorf("retained event %d has time %v, want %d (newest three)", i, e.Time, want)
		}
	}
}

// TestRingWithStreamKeepsFullLog checks the long-run mode: a bounded ring
// plus a stream still exports every event.
func TestRingWithStreamKeepsFullLog(t *testing.T) {
	r := New()
	r.SetRingCapacity(2)
	var stream strings.Builder
	r.StreamJSONL(&stream, 0.5)
	for i := 0; i < 20; i++ {
		r.Emit(float64(i), 0, LayerMPI, EvRevoke)
	}
	if err := r.FlushStream(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(stream.String(), "\n"); got != 20 {
		t.Errorf("stream exported %d events, want all 20 despite ring cap 2", got)
	}
	if r.Len() != 2 {
		t.Errorf("ring retained %d, want 2", r.Len())
	}
}

// TestStreamAttachAfterRingWrap pins the rotated-backlog edge: attaching a
// stream to a recorder whose ring has wrapped mid-rotation must push the
// retained events chronologically from ringStart. Feeding the slice in raw
// order would hand the newest tail to the window first, advance the
// watermark past the older head, and emit the head out of order as
// spurious late events.
func TestStreamAttachAfterRingWrap(t *testing.T) {
	r := New()
	r.SetRingCapacity(4)
	// Seven events: the ring holds t=3..6 rotated in place (ringStart != 0).
	for i := 0; i < 7; i++ {
		r.Emit(float64(i), 0, LayerMPI, EvRevoke)
	}
	var stream strings.Builder
	r.StreamJSONL(&stream, 1.0)
	if err := r.FlushStream(); err != nil {
		t.Fatal(err)
	}
	if got := r.StreamLate(); got != 0 {
		t.Errorf("late events = %d, want 0 (backlog must stream chronologically)", got)
	}
	var post strings.Builder
	if err := r.WriteJSONL(&post); err != nil {
		t.Fatal(err)
	}
	if stream.String() != post.String() {
		t.Errorf("wrapped-ring backlog streamed out of order:\nstream:\n%s\npost-hoc:\n%s",
			stream.String(), post.String())
	}
}

func TestSetRingCapacityAfterEmitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetRingCapacity on non-empty recorder did not panic")
		}
	}()
	r := New()
	r.Emit(1, 0, LayerMPI, EvRevoke)
	r.SetRingCapacity(8)
}

// TestEventsCopiesAttrs is the aliasing regression test: mutating the
// slice returned by Events must not corrupt the recorder's log (Emit
// retains caller-owned attr slices, so export paths must copy).
func TestEventsCopiesAttrs(t *testing.T) {
	r := New()
	attrs := []Attr{KV("failed_rank", 1)}
	r.Emit(1.0, 0, LayerMPI, EvFailureDetected, attrs...)

	got := r.Events()
	got[0].Attrs[0] = KV("failed_rank", 999)

	again := r.Events()
	if v := again[0].Attrs[0].Value; v != 1 {
		t.Errorf("mutating Events() result corrupted the log: attr = %v, want 1", v)
	}
	// The caller-owned slice passed to Emit is also isolated from Events
	// consumers.
	if attrs[0].Value != 1 {
		t.Errorf("caller slice mutated: %v", attrs[0].Value)
	}
}

func TestAppendJSONValueNonFiniteFloats(t *testing.T) {
	cases := []struct {
		v    any
		want string
	}{
		{math.NaN(), `"NaN"`},
		{math.Inf(1), `"+Inf"`},
		{math.Inf(-1), `"-Inf"`},
		{1.5, "1.5"},
	}
	for _, c := range cases {
		if got := string(appendJSONValue(nil, c.v)); got != c.want {
			t.Errorf("appendJSONValue(%v) = %s, want %s", c.v, got, c.want)
		}
	}
}

// TestAppendJSONQuotesFallbackStrings checks that fallback-stringified
// values with JSON-hostile characters stay correctly quoted.
func TestAppendJSONQuotesFallbackStrings(t *testing.T) {
	type weird struct{ S string }
	got := string(appendJSONValue(nil, weird{S: "a\"b\nc"}))
	want := `"{a\"b\nc}"`
	if got != want {
		t.Errorf("fallback quoting: got %s, want %s", got, want)
	}
	// NaN inside an event line keeps the whole line valid JSON.
	r := New()
	r.Emit(1.0, 0, LayerVeloC, EvVeloCRestart, KV("seconds", math.NaN()))
	var b strings.Builder
	if err := r.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	want = `{"t":1,"rank":0,"layer":"veloc","event":"veloc.restart","attrs":{"seconds":"NaN"}}` + "\n"
	if b.String() != want {
		t.Errorf("JSONL with NaN:\ngot:  %swant: %s", b.String(), want)
	}
}
