// Package sim provides the virtual-time substrate for the simulated cluster.
//
// Every rank in the simulated MPI runtime carries a Clock measuring virtual
// seconds. Compute work, message transfers, collective operations, file
// system flushes, and job launch overheads all advance virtual time according
// to the cost model in Machine. Using virtual time keeps experiments
// deterministic and lets a laptop reproduce the *shape* of results measured
// on a 100-node Cray XC40 without wall-clock sleeps.
package sim

import "fmt"

// Clock is a single rank's virtual clock, in seconds. Clocks are not safe for
// concurrent use; each rank goroutine owns exactly one.
type Clock struct {
	now float64
}

// NewClock returns a clock set to time zero.
func NewClock() *Clock { return &Clock{} }

// NewClockAt returns a clock set to t seconds.
func NewClockAt(t float64) *Clock { return &Clock{now: t} }

// Now reports the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Advance moves the clock forward by d seconds. Negative d panics: virtual
// time never runs backwards.
func (c *Clock) Advance(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative clock advance %v", d))
	}
	c.now += d
}

// AdvanceTo moves the clock forward to t if t is later than the current
// time; otherwise it is a no-op. It returns the amount of time waited.
func (c *Clock) AdvanceTo(t float64) float64 {
	if t <= c.now {
		return 0
	}
	d := t - c.now
	c.now = t
	return d
}

// Set forces the clock to t, forwards or backwards. It is intended for the
// launcher when re-initializing ranks across relaunches; application code
// should use Advance/AdvanceTo.
func (c *Clock) Set(t float64) { c.now = t }
