package sim

import "math"

// Machine is the cost model for the simulated cluster. All rates are in
// bytes/second (bandwidths) or seconds (latencies); compute throughput is in
// abstract work units/second, where applications define their own unit (e.g.
// one stencil cell update, one pairwise force evaluation).
//
// The default values are calibrated loosely against the paper's platform —
// a Cray XC40 with 32-core Haswell nodes and a Lustre parallel file system —
// to reproduce the relative magnitudes in Figures 5 and 6, not the absolute
// numbers.
type Machine struct {
	// ComputeRate is application work units per second per rank.
	ComputeRate float64

	// NetLatency is the one-way point-to-point message latency in seconds.
	NetLatency float64
	// NetBandwidth is the per-link point-to-point bandwidth in bytes/second.
	NetBandwidth float64

	// MemBandwidth is the node-local memory copy bandwidth in bytes/second,
	// used for checkpoint scratch copies.
	MemBandwidth float64

	// PFSAggregateBandwidth is the total write bandwidth of the parallel
	// file system in bytes/second. It is shared by all concurrent writers,
	// modeling the fixed number of filesystem management nodes the paper
	// identifies as the VeloC flush bottleneck.
	PFSAggregateBandwidth float64
	// PFSPerClientBandwidth caps a single node's PFS write stream.
	PFSPerClientBandwidth float64
	// PFSReadBandwidth is the per-client read bandwidth for restarts.
	PFSReadBandwidth float64
	// PFSLatency is the fixed per-operation file system latency in seconds.
	PFSLatency float64

	// CongestionFactor multiplies MPI communication costs on a node whose
	// asynchronous checkpoint flush is in flight. The paper observes VeloC's
	// background writes delaying application MPI calls; this factor models
	// that contention.
	CongestionFactor float64

	// LaunchBase and LaunchPerNode model the cost of `mpirun` job startup:
	// total = LaunchBase + LaunchPerNode*nodes. Charged on every (re)launch.
	LaunchBase    float64
	LaunchPerNode float64
	// TeardownBase and TeardownPerNode model job shutdown after a failure
	// under fail-restart semantics.
	TeardownBase    float64
	TeardownPerNode float64

	// CollectiveLatency is the per-hop latency of tree-based collectives in
	// seconds; a P-rank collective costs ceil(log2(P)) hops.
	CollectiveLatency float64

	// FenixRepairBase and FenixRepairPerRank model the cost of Fenix
	// communicator repair (failure propagation, agreement, spare
	// substitution) after a process failure.
	FenixRepairBase    float64
	FenixRepairPerRank float64

	// FailureDetectionLatency is the delay between a process dying and its
	// peers being able to observe the failure (heartbeat timeout in a real
	// ULFM failure detector). Operations that would report the failure
	// block until death time + this latency.
	FailureDetectionLatency float64

	// NoiseAmplitude scales per-rank compute-time jitter as a fraction of
	// the nominal cost (OS noise / performance variability). The paper notes
	// this variability partially hides asynchronous checkpoint congestion at
	// larger node counts.
	NoiseAmplitude float64
}

// DefaultMachine returns the cost model used by all experiments unless a
// test overrides specific fields.
func DefaultMachine() *Machine {
	return &Machine{
		ComputeRate:             2.0e9,  // work units (e.g. cell updates) per second
		NetLatency:              2e-6,   // 2 us
		NetBandwidth:            8.0e9,  // 8 GB/s per link (Aries-class)
		MemBandwidth:            5.0e10, // 50 GB/s memcpy
		PFSAggregateBandwidth:   6.0e9,  // 6 GB/s Lustre aggregate
		PFSPerClientBandwidth:   1.5e9,  // 1.5 GB/s per client stream
		PFSReadBandwidth:        1.5e9,
		PFSLatency:              5e-4,
		CongestionFactor:        2.5,
		LaunchBase:              2.0,
		LaunchPerNode:           0.05,
		TeardownBase:            1.0,
		TeardownPerNode:         0.02,
		CollectiveLatency:       3e-6,
		FenixRepairBase:         0.25,
		FenixRepairPerRank:      0.002,
		FailureDetectionLatency: 0.05,
		NoiseAmplitude:          0.02,
	}
}

// ComputeTime returns the virtual time to execute the given number of work
// units on one rank.
func (m *Machine) ComputeTime(units float64) float64 {
	if units <= 0 {
		return 0
	}
	return units / m.ComputeRate
}

// TransferTime returns the virtual time for a point-to-point message of the
// given size in bytes, before congestion adjustment.
func (m *Machine) TransferTime(bytes int) float64 {
	return m.NetLatency + float64(bytes)/m.NetBandwidth
}

// MemcpyTime returns the virtual time for a node-local copy of the given
// size, e.g. a VeloC scratch checkpoint.
func (m *Machine) MemcpyTime(bytes int) float64 {
	return float64(bytes) / m.MemBandwidth
}

// CollectiveTime returns the virtual time for a tree collective across p
// ranks moving the given payload per rank.
func (m *Machine) CollectiveTime(p, bytes int) float64 {
	if p <= 1 {
		return 0
	}
	hops := math.Ceil(math.Log2(float64(p)))
	return hops * (m.CollectiveLatency + float64(bytes)/m.NetBandwidth)
}

// LaunchTime returns the virtual cost of starting an MPI job on n nodes.
func (m *Machine) LaunchTime(nodes int) float64 {
	return m.LaunchBase + m.LaunchPerNode*float64(nodes)
}

// TeardownTime returns the virtual cost of tearing down a failed job on n
// nodes prior to relaunch.
func (m *Machine) TeardownTime(nodes int) float64 {
	return m.TeardownBase + m.TeardownPerNode*float64(nodes)
}

// RepairTime returns the virtual cost of a Fenix communicator repair across
// p ranks.
func (m *Machine) RepairTime(p int) float64 {
	return m.FenixRepairBase + m.FenixRepairPerRank*float64(p)
}
