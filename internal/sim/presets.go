package sim

// Machine presets: named calibrations for platforms of interest. The
// default (Cray XC40 class) drives all paper reproductions; the others
// exist for sensitivity studies — e.g. how the VeloC-vs-IMR trade-off
// shifts on a commodity cluster with a weak parallel file system, or on an
// exascale-class machine with a fast burst-buffer tier.

// MachineXC40 is the paper's platform class: Aries-class interconnect,
// Lustre PFS. Identical to DefaultMachine.
func MachineXC40() *Machine { return DefaultMachine() }

// MachineCommodity models a commodity Ethernet cluster with an NFS-class
// file system: high latency, thin PFS, strong congestion coupling.
func MachineCommodity() *Machine {
	m := DefaultMachine()
	m.NetLatency = 50e-6
	m.NetBandwidth = 1.25e9 // 10 GbE
	m.PFSAggregateBandwidth = 1.0e9
	m.PFSPerClientBandwidth = 0.5e9
	m.PFSReadBandwidth = 0.5e9
	m.PFSLatency = 5e-3
	m.CongestionFactor = 4.0
	m.CollectiveLatency = 60e-6
	m.LaunchBase = 5.0
	m.LaunchPerNode = 0.1
	return m
}

// MachineExascale models a newer system with a node-local burst buffer
// standing in for scratch and a much fatter parallel store.
func MachineExascale() *Machine {
	m := DefaultMachine()
	m.ComputeRate = 2.0e10
	m.NetLatency = 1e-6
	m.NetBandwidth = 25e9
	m.MemBandwidth = 2e11
	m.PFSAggregateBandwidth = 50e9
	m.PFSPerClientBandwidth = 5e9
	m.PFSReadBandwidth = 5e9
	m.CongestionFactor = 1.5
	m.CollectiveLatency = 1.5e-6
	return m
}

// Presets maps preset names to constructors, for command-line selection.
var Presets = map[string]func() *Machine{
	"xc40":      MachineXC40,
	"commodity": MachineCommodity,
	"exascale":  MachineExascale,
}
