package sim

// RNG is a small deterministic pseudo-random generator (SplitMix64). It is
// used for per-rank compute-noise jitter and synthetic workload
// initialization. Unlike math/rand it is trivially splittable per rank so
// experiments are reproducible regardless of goroutine scheduling.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with the given value.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Split derives an independent generator for a sub-stream (e.g. one rank).
func (r *RNG) Split(stream uint64) *RNG {
	return NewRNG(r.state ^ (stream+1)*0x9E3779B97F4A7C15)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Jitter returns a multiplicative noise factor in [1-amp, 1+amp].
func (r *RNG) Jitter(amp float64) float64 {
	if amp <= 0 {
		return 1
	}
	return 1 + amp*(2*r.Float64()-1)
}
