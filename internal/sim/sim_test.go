package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(1.5)
	c.Advance(0.5)
	if got := c.Now(); got != 2.0 {
		t.Fatalf("Now() = %v, want 2.0", got)
	}
}

func TestClockAdvanceZero(t *testing.T) {
	c := NewClockAt(3)
	c.Advance(0)
	if c.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", c.Now())
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClockAt(5)
	if waited := c.AdvanceTo(8); waited != 3 {
		t.Fatalf("AdvanceTo(8) waited %v, want 3", waited)
	}
	if waited := c.AdvanceTo(2); waited != 0 {
		t.Fatalf("AdvanceTo(2) waited %v, want 0 (no backwards travel)", waited)
	}
	if c.Now() != 8 {
		t.Fatalf("Now() = %v, want 8", c.Now())
	}
}

func TestClockSet(t *testing.T) {
	c := NewClockAt(9)
	c.Set(1)
	if c.Now() != 1 {
		t.Fatalf("Set(1) then Now() = %v", c.Now())
	}
}

func TestClockAdvanceToMonotone(t *testing.T) {
	// Property: after AdvanceTo(t), Now() >= t and Now() never decreased.
	f := func(start, target float64) bool {
		start = math.Abs(start)
		target = math.Abs(target)
		c := NewClockAt(start)
		c.AdvanceTo(target)
		return c.Now() >= start && c.Now() >= target
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultMachineSane(t *testing.T) {
	m := DefaultMachine()
	if m.ComputeRate <= 0 || m.NetBandwidth <= 0 || m.PFSAggregateBandwidth <= 0 {
		t.Fatal("default machine has non-positive rates")
	}
	if m.PFSPerClientBandwidth > m.PFSAggregateBandwidth {
		t.Fatal("per-client PFS bandwidth exceeds aggregate")
	}
	if m.CongestionFactor < 1 {
		t.Fatal("congestion factor must be >= 1")
	}
}

func TestComputeTime(t *testing.T) {
	m := &Machine{ComputeRate: 100}
	if got := m.ComputeTime(50); got != 0.5 {
		t.Fatalf("ComputeTime(50) = %v, want 0.5", got)
	}
	if got := m.ComputeTime(0); got != 0 {
		t.Fatalf("ComputeTime(0) = %v, want 0", got)
	}
	if got := m.ComputeTime(-5); got != 0 {
		t.Fatalf("ComputeTime(-5) = %v, want 0", got)
	}
}

func TestTransferTime(t *testing.T) {
	m := &Machine{NetLatency: 1e-6, NetBandwidth: 1e9}
	got := m.TransferTime(1e6)
	want := 1e-6 + 1e-3
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
}

func TestCollectiveTimeScalesLogarithmically(t *testing.T) {
	m := DefaultMachine()
	t2 := m.CollectiveTime(2, 8)
	t4 := m.CollectiveTime(4, 8)
	t8 := m.CollectiveTime(8, 8)
	if !(t2 < t4 && t4 < t8) {
		t.Fatalf("collective time not increasing: %v %v %v", t2, t4, t8)
	}
	if m.CollectiveTime(1, 8) != 0 {
		t.Fatal("single-rank collective should be free")
	}
	// log2 scaling: 8 ranks = 3 hops, 2 ranks = 1 hop.
	if math.Abs(t8/t2-3) > 1e-9 {
		t.Fatalf("t8/t2 = %v, want 3", t8/t2)
	}
}

func TestLaunchAndTeardownScaleWithNodes(t *testing.T) {
	m := DefaultMachine()
	if !(m.LaunchTime(64) > m.LaunchTime(4)) {
		t.Fatal("launch time must grow with node count")
	}
	if !(m.TeardownTime(64) > m.TeardownTime(4)) {
		t.Fatal("teardown time must grow with node count")
	}
}

func TestRepairTimeScalesWithRanks(t *testing.T) {
	m := DefaultMachine()
	if !(m.RepairTime(64) > m.RepairTime(2)) {
		t.Fatal("repair time must grow with rank count")
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	root := NewRNG(7)
	s1 := root.Split(1)
	s2 := root.Split(2)
	same := 0
	for i := 0; i < 64; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestJitterBounds(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		j := r.Jitter(0.1)
		if j < 0.9 || j > 1.1 {
			t.Fatalf("Jitter(0.1) = %v out of bounds", j)
		}
	}
	if NewRNG(1).Jitter(0) != 1 {
		t.Fatal("Jitter(0) must be exactly 1")
	}
	if NewRNG(1).Jitter(-1) != 1 {
		t.Fatal("Jitter(<0) must be exactly 1")
	}
}

func TestRNGUniformity(t *testing.T) {
	// Coarse chi-square style sanity check over 16 buckets.
	r := NewRNG(99)
	const n = 160000
	var buckets [16]int
	for i := 0; i < n; i++ {
		buckets[r.Intn(16)]++
	}
	want := n / 16
	for i, c := range buckets {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d count %d deviates >10%% from %d", i, c, want)
		}
	}
}

func TestPresetsAreDistinctAndSane(t *testing.T) {
	seen := map[float64]string{}
	for name, mk := range Presets {
		m := mk()
		if m.ComputeRate <= 0 || m.NetBandwidth <= 0 || m.PFSAggregateBandwidth <= 0 {
			t.Fatalf("preset %q has non-positive rates", name)
		}
		if m.PFSPerClientBandwidth > m.PFSAggregateBandwidth {
			t.Fatalf("preset %q per-client PFS exceeds aggregate", name)
		}
		if prev, dup := seen[m.NetBandwidth+m.PFSAggregateBandwidth]; dup {
			t.Fatalf("presets %q and %q look identical", name, prev)
		}
		seen[m.NetBandwidth+m.PFSAggregateBandwidth] = name
	}
	if len(Presets) < 3 {
		t.Fatalf("expected >=3 presets, got %d", len(Presets))
	}
}

func TestCommoditySlowerThanXC40(t *testing.T) {
	x, c := MachineXC40(), MachineCommodity()
	if !(c.TransferTime(1<<20) > x.TransferTime(1<<20)) {
		t.Fatal("commodity transfer not slower")
	}
	if !(c.NetLatency > x.NetLatency) {
		t.Fatal("commodity latency not higher")
	}
}

func TestExascaleFasterThanXC40(t *testing.T) {
	x, e := MachineXC40(), MachineExascale()
	if !(e.ComputeTime(1e9) < x.ComputeTime(1e9)) {
		t.Fatal("exascale compute not faster")
	}
	if !(e.TransferTime(1<<20) < x.TransferTime(1<<20)) {
		t.Fatal("exascale transfer not faster")
	}
}
